// Ablation: IRQ routing policy (paper §III.b). The shipped design forwards
// every device IRQ through the primary VM; the future-work design routes
// device SPIs directly to the super-secondary. This bench drives a device
// interrupt storm and compares primary-side overhead and compute-VM noise.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_args.h"
#include "core/harness.h"
#include "core/node.h"
#include "core/parallel.h"
#include "obs/report.h"
#include "workloads/selfish.h"

namespace {

using namespace hpcsec;

struct Result {
    std::uint64_t delivered = 0;
    std::uint64_t primary_forwards = 0;
    std::uint64_t spm_forwards = 0;
    double compute_lost_us = 0.0;
    double primary_overhead_ms = 0.0;
};

Result run(hafnium::IrqRoutingPolicy policy, double irq_rate_hz, double seconds) {
    core::NodeConfig cfg =
        core::Harness::default_config(core::SchedulerKind::kKittenPrimary, 4242);
    cfg.with_super_secondary = true;
    cfg.routing = policy;
    core::Node node(cfg);
    node.boot();

    // Device interrupt storm on the emac SPI (114), like a NIC under load.
    auto& engine = node.platform().engine();
    const auto period = engine.clock().period_of_hz(irq_rate_hz);
    std::function<void()> storm = [&] {
        node.platform().irqc().raise_external(114);
        engine.after(period, storm);
    };
    engine.after(period, storm);

    wl::SelfishBenchmark selfish(4, engine.clock());
    node.run_selfish(selfish, seconds);

    Result r;
    // Handler invocations in the login VM; pending SPIs coalesce while the
    // login VCPU waits for its time slice, like a real vGIC list register.
    r.delivered = node.login_guest()->stats().device_irqs;
    r.primary_forwards = node.kitten()->stats().forwarded_irqs;
    r.spm_forwards = node.spm()->stats().forwarded_device_irqs;
    for (int t = 0; t < 4; ++t) r.compute_lost_us += selfish.recorder(t).total_detour_us();
    r.primary_overhead_ms =
        engine.clock().to_millis(node.platform().total_usage().overhead);
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    const int jobs = hpcsec::benchargs::parse_jobs(argc, argv);
    std::printf("== Ablation: device-IRQ routing policy (paper SIII.b) ==\n");
    std::printf("(10 s simulated, IRQ storm on the NIC SPI, login VM on core 0)\n\n");
    std::printf("%-10s %-12s %10s %10s %10s %14s %16s\n", "policy", "irq[Hz]",
                "handled", "fwd(prim)", "fwd(spm)", "lost[us]", "ovh[ms,all]");
    obs::BenchReport report("abl_irq_routing");
    struct Combo {
        hafnium::IrqRoutingPolicy policy;
        double rate;
    };
    std::vector<Combo> combos;
    for (const double rate : {100.0, 1000.0, 5000.0}) {
        for (const auto policy : {hafnium::IrqRoutingPolicy::kAllToPrimary,
                                  hafnium::IrqRoutingPolicy::kSelective}) {
            combos.push_back({policy, rate});
        }
    }
    // Every combo builds a private Node inside run(), so the storm runs fan
    // across workers; the table prints after the fan-in, in sweep order.
    std::vector<Result> results(combos.size());
    {
        core::ThreadPool pool(jobs);
        core::parallel_for_indexed(pool, combos.size(), [&](std::size_t i) {
            results[i] = run(combos[i].policy, combos[i].rate, 10.0);
        });
    }
    for (std::size_t i = 0; i < combos.size(); ++i) {
        const Result& r = results[i];
        const char* name =
            combos[i].policy == hafnium::IrqRoutingPolicy::kAllToPrimary
                ? "forward"
                : "selective";
        std::printf("%-10s %-12.0f %10llu %10llu %10llu %14.1f %16.2f\n", name,
                    combos[i].rate, static_cast<unsigned long long>(r.delivered),
                    static_cast<unsigned long long>(r.primary_forwards),
                    static_cast<unsigned long long>(r.spm_forwards),
                    r.compute_lost_us, r.primary_overhead_ms);
        const std::string tag = std::string(name) + "." +
                                std::to_string(static_cast<int>(combos[i].rate));
        report.add(tag + ".lost_us", r.compute_lost_us, 0.0, 1);
        report.add(tag + ".overhead_ms", r.primary_overhead_ms, 0.0, 1);
    }
    report.write_default();
    std::printf(
        "\nTakeaway: forwarding through the primary burns primary-VM cycles and\n"
        "adds compute-VM detours per device IRQ; selective routing (the paper's\n"
        "future work) removes the primary from the path entirely.\n");
    return 0;
}
