// Ablation: background-noise intensity vs synchronization-sensitive
// application performance (paper §III.a: Kitten "has little to no
// background tasks … nor does it have deferred work"). Sweeps the Linux
// primary's kworker wake rate and reports LU (fine-grained sync) vs EP
// (no sync) — noise amplification in action.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_args.h"
#include "core/harness.h"
#include "obs/report.h"
#include "workloads/nas.h"

int main(int argc, char** argv) {
    using namespace hpcsec;
    const int jobs = benchargs::parse_jobs(argc, argv);
    std::printf("== Ablation: background-noise rate vs BSP amplification ==\n");
    std::printf("(Linux primary; LU syncs per wavefront, EP only joins once)\n\n");
    std::printf("%-14s %12s %12s %14s\n", "kworker[Hz]", "LU[Mop/s]", "EP[Mop/s]",
                "LU/EP norm");

    wl::WorkloadSpec lu = wl::nas_lu_spec();
    wl::WorkloadSpec ep = wl::nas_ep_spec();
    lu.units_per_thread_step /= 2;
    ep.units_per_thread_step /= 2;

    obs::BenchReport report("abl_noise");
    double lu_base = 0.0, ep_base = 0.0;
    for (const double rate : {0.0, 2.0, 10.0, 50.0, 200.0}) {
        core::Harness::Options opt;
        opt.trials = 3;
        opt.jobs = jobs;
        opt.measurement_noise = false;
        opt.config_factory = [rate](core::SchedulerKind kind, std::uint64_t seed) {
            core::NodeConfig cfg = core::Harness::default_config(kind, seed);
            cfg.linux.kworker_rate_hz = rate;
            cfg.linux.noise_enabled = rate > 0.0;
            return cfg;
        };
        core::Harness h(opt);
        std::vector<std::uint64_t> lu_seeds, ep_seeds;
        for (int t = 0; t < opt.trials; ++t) {
            lu_seeds.push_back(1000 + static_cast<std::uint64_t>(t));
            ep_seeds.push_back(2000 + static_cast<std::uint64_t>(t));
        }
        sim::RunningStats lu_s, ep_s;
        for (const auto& r : h.run_trials(core::SchedulerKind::kLinuxPrimary, lu,
                                          lu_seeds)) {
            lu_s.add(r.score);
        }
        for (const auto& r : h.run_trials(core::SchedulerKind::kLinuxPrimary, ep,
                                          ep_seeds)) {
            ep_s.add(r.score);
        }
        if (rate == 0.0) {
            lu_base = lu_s.mean();
            ep_base = ep_s.mean();
        }
        std::printf("%-14.0f %12.2f %12.4f %14.3f\n", rate, lu_s.mean(), ep_s.mean(),
                    (lu_s.mean() / lu_base) / (ep_s.mean() / ep_base));
        const std::string tag = "kworker_hz." + std::to_string(static_cast<int>(rate));
        report.add(tag + ".lu_mops", lu_s);
        report.add(tag + ".ep_mops", ep_s);
    }
    report.write_default();
    std::printf(
        "\nTakeaway: as deferred-work rate grows, LU degrades faster than EP —\n"
        "a detour on one core stalls all cores at the next wavefront barrier.\n");
    return 0;
}
