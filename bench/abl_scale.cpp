// Ablation: projected parallel efficiency at scale (paper §VII: "we intend
// to not only study the scalability but also the performance isolation
// capabilities of our approach").
//
// Composes detailed single-node superstep traces into N-node BSP runs
// (max-over-nodes per step + log2(N) allreduce). OS noise that looks
// harmless on one node is amplified by the max() — the classic reason LWKs
// matter at scale, and the projection of where the paper's approach pays.
#include <cstdio>

#include <string>
#include <vector>

#include "bench_args.h"
#include "cluster/scale_model.h"
#include "cluster/trace_collect.h"
#include "core/harness.h"
#include "core/parallel.h"
#include "obs/report.h"
#include "workloads/nas.h"

int main(int argc, char** argv) {
    using namespace hpcsec;
    const int jobs = benchargs::parse_jobs(argc, argv);
    const int samples = argc > 1 ? std::atoi(argv[1]) : 6;

    // LU is the sync-heavy workload; shrink for trace collection speed.
    wl::WorkloadSpec spec = wl::nas_lu_spec();
    spec.units_per_thread_step /= 4;
    spec.supersteps = 400;

    std::printf("== Ablation: projected efficiency at scale (NAS LU class) ==\n");
    std::printf("(%d detailed node traces per config; dissemination allreduce "
                "2us/hop)\n\n",
                samples);

    const std::vector<int> nodes = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
    const sim::ClockSpec clock{1'100'000'000};

    std::printf("%8s", "nodes");
    for (const auto kind : core::kAllConfigs) {
        std::printf(" %14s", core::to_string(kind).c_str());
    }
    std::printf("   (parallel efficiency)\n");

    // Trace collection builds private Nodes per config, so the three
    // configurations fan across workers; results land in config order.
    std::vector<std::vector<cluster::ScaleResult>> results(3);
    {
        core::ThreadPool pool(jobs);
        core::parallel_for_indexed(pool, core::kAllConfigs.size(), [&](std::size_t k) {
            const auto traces =
                cluster::collect_traces(core::kAllConfigs[k], spec, samples, 555);
            cluster::ScaleModel model(traces, clock);
            results[k] = model.sweep(nodes, 5, 777);
        });
    }
    obs::BenchReport report("abl_scale");
    static constexpr const char* kTags[3] = {"native", "kitten", "linux"};
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        std::printf("%8d", nodes[i]);
        for (std::size_t k = 0; k < results.size(); ++k) {
            std::printf(" %14.4f", results[k][i].efficiency);
            report.add(std::string(kTags[k]) + ".eff." + std::to_string(nodes[i]),
                       results[k][i].efficiency, 0.0, 1);
        }
        std::printf("\n");
    }
    report.write_default();
    std::printf(
        "\nTakeaway: per-node noise compounds as max() across nodes. The Linux-\n"
        "scheduled configuration sheds efficiency with node count while the\n"
        "Kitten-scheduled secure configuration tracks native — the scalability\n"
        "argument for LWK scheduling of secure partitions.\n");
    return 0;
}
