// Ablation: TrustZone secure-world placement of the compute VM.
//
// Paper §II.b: TrustZone partitioning is "enforced entirely at the firmware
// layer" — once the static secure/non-secure split is configured at boot,
// a secure partition's memory accesses take the same translation path as a
// non-secure one's. This bench verifies that claim holds in the model:
// running the compute VM in the secure world costs nothing beyond the
// ordinary Hafnium virtualization overhead.
#include <cstdio>
#include <vector>

#include "bench_args.h"
#include "core/harness.h"
#include "obs/report.h"
#include "workloads/hpcg.h"
#include "workloads/randomaccess.h"

int main(int argc, char** argv) {
    using namespace hpcsec;
    const int jobs = benchargs::parse_jobs(argc, argv);
    std::printf("== Ablation: secure-world vs non-secure compute partition ==\n");
    std::printf("(Kitten primary; TrustZone carve-out configured at boot)\n\n");
    std::printf("%-14s %18s %18s %10s\n", "workload", "non-secure", "secure",
                "ratio");

    obs::BenchReport report("abl_secure_world");
    for (const bool tlb_heavy : {false, true}) {
        wl::WorkloadSpec spec = tlb_heavy ? wl::randomaccess_spec() : wl::hpcg_spec();
        spec.units_per_thread_step /= 4;

        double scores[2];
        for (const bool secure : {false, true}) {
            core::Harness::Options opt;
            opt.trials = 3;
            opt.jobs = jobs;
            opt.measurement_noise = false;
            opt.config_factory = [secure](core::SchedulerKind kind,
                                          std::uint64_t seed) {
                core::NodeConfig cfg = core::Harness::default_config(kind, seed);
                cfg.secure_compute_vm = secure;
                return cfg;
            };
            core::Harness h(opt);
            std::vector<std::uint64_t> seeds;
            for (int t = 0; t < opt.trials; ++t)
                seeds.push_back(100 + static_cast<std::uint64_t>(t));
            sim::RunningStats s;
            for (const auto& r :
                 h.run_trials(core::SchedulerKind::kKittenPrimary, spec, seeds)) {
                s.add(r.score);
            }
            scores[secure ? 1 : 0] = s.mean();
        }
        std::printf("%-14s %18.6g %18.6g %10.4f\n", spec.name.c_str(), scores[0],
                    scores[1], scores[1] / scores[0]);
        report.add(spec.name + ".nonsecure", scores[0], 0.0, 3);
        report.add(spec.name + ".secure", scores[1], 0.0, 3);
        report.add(spec.name + ".ratio", scores[1] / scores[0], 0.0, 1);
    }
    report.write_default();
    std::printf(
        "\nTakeaway: ratio == 1.0 — world membership is a boot-time attribute\n"
        "of the frames, not a per-access toll. The cost of TrustZone here is\n"
        "flexibility (static partitioning), not performance.\n");
    return 0;
}
