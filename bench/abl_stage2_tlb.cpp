// Ablation: nested-walk cost vs RandomAccess degradation (paper §V.b:
// "memory operations from a secure VM will be required to traverse two sets
// of page tables … particularly noticeable in the RandomAccess benchmark
// due to its low TLB hit rates"). Sweeps the modeled stage-2 walk penalty;
// the native configuration is unaffected, so the normalized curve isolates
// the virtualization cost.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_args.h"
#include "core/harness.h"
#include "core/parallel.h"
#include "obs/report.h"
#include "workloads/randomaccess.h"
#include "workloads/stream.h"

int main(int argc, char** argv) {
    using namespace hpcsec;
    const int jobs = benchargs::parse_jobs(argc, argv);
    std::printf("== Ablation: stage-2 nested-walk penalty vs workload TLB behaviour ==\n\n");
    std::printf("%-18s %16s %16s\n", "nested walk [cyc]", "RandomAccess norm",
                "Stream norm");

    wl::WorkloadSpec ra = wl::randomaccess_spec();
    ra.units_per_thread_step /= 4;
    wl::WorkloadSpec st = wl::stream_spec();
    st.units_per_thread_step /= 4;

    obs::BenchReport report("abl_stage2_tlb");
    const std::vector<sim::Cycles> walks = {35, 80, 165, 330, 660};
    struct Point {
        double ra_norm = 0.0;
        double st_norm = 0.0;
    };
    std::vector<Point> points(walks.size());
    {
        // Each walk value runs a private Harness (and thus private Nodes), so
        // the sweep points fan across workers without sharing any state; the
        // table below is printed after the fan-in, in sweep order.
        core::ThreadPool pool(jobs);
        core::parallel_for_indexed(pool, walks.size(), [&](std::size_t i) {
            const sim::Cycles walk = walks[i];
            core::Harness::Options opt;
            opt.trials = 1;
            opt.measurement_noise = false;
            opt.config_factory = [walk](core::SchedulerKind kind,
                                        std::uint64_t seed) {
                core::NodeConfig cfg = core::Harness::default_config(kind, seed);
                cfg.platform.perf.nested_walk = walk;
                return cfg;
            };
            core::Harness h(opt);
            const double ra_native =
                h.run_trial(core::SchedulerKind::kNativeKitten, ra, 9).score;
            const double ra_virt =
                h.run_trial(core::SchedulerKind::kKittenPrimary, ra, 9).score;
            const double st_native =
                h.run_trial(core::SchedulerKind::kNativeKitten, st, 9).score;
            const double st_virt =
                h.run_trial(core::SchedulerKind::kKittenPrimary, st, 9).score;
            points[i] = {ra_virt / ra_native, st_virt / st_native};
        });
    }
    for (std::size_t i = 0; i < walks.size(); ++i) {
        std::printf("%-18llu %16.4f %16.4f\n",
                    static_cast<unsigned long long>(walks[i]), points[i].ra_norm,
                    points[i].st_norm);
        const std::string tag = "walk_cyc." + std::to_string(walks[i]);
        report.add(tag + ".gups_norm", points[i].ra_norm, 0.0, 1);
        report.add(tag + ".stream_norm", points[i].st_norm, 0.0, 1);
    }
    report.write_default();
    std::printf(
        "\nTakeaway: RandomAccess degradation scales with the nested-walk cost\n"
        "(every update misses the TLB); Stream barely moves (page-sequential).\n"
        "At 35 cycles (= stage-1 cost, i.e. free stage 2) both are ~1.0.\n");
    return 0;
}
