// Ablation: scheduler tick rate vs guest noise (paper §III.a — Kitten wins
// because of "significantly larger time slices … and thus lower timer tick
// rates"). Sweeps the primary VM's tick frequency under both primary
// kernels and reports the secondary VM's detour profile.
#include <cstdio>
#include <string>

#include "core/harness.h"
#include "obs/report.h"

int main() {
    using namespace hpcsec;
    std::printf("== Ablation: primary tick rate vs secondary-VM noise ==\n");
    std::printf("(selfish-detour, 10 s simulated, Pine A64 model)\n\n");
    std::printf("%-8s %-10s %12s %14s %14s\n", "primary", "tick[Hz]", "detours",
                "lost[us/core]", "max[us]");

    obs::BenchReport report("abl_tick_rate");
    const auto record = [&report](const char* primary, double hz,
                                  const core::SelfishSeries& s) {
        const std::string tag =
            std::string(primary) + "." + std::to_string(static_cast<int>(hz));
        report.add(tag + ".detours", static_cast<double>(s.detours_all_cores), 0.0, 1);
        report.add(tag + ".lost_us_per_core", s.total_detour_us_all / 4.0, 0.0, 1);
        report.add(tag + ".max_detour_us", s.max_detour_us, 0.0, 1);
    };
    const double kitten_rates[] = {1, 10, 100, 250};
    for (const double hz : kitten_rates) {
        core::NodeConfig cfg =
            core::Harness::default_config(core::SchedulerKind::kKittenPrimary, 42);
        cfg.kitten.tick_hz = hz;
        const auto s = core::run_selfish_experiment(
            core::SchedulerKind::kKittenPrimary, 10.0, 42, &cfg);
        std::printf("%-8s %-10.0f %12zu %14.1f %14.2f\n", "Kitten", hz,
                    static_cast<std::size_t>(s.detours_all_cores),
                    s.total_detour_us_all / 4.0, s.max_detour_us);
        record("kitten", hz, s);
    }
    const double linux_rates[] = {100, 250, 1000};
    for (const double hz : linux_rates) {
        core::NodeConfig cfg =
            core::Harness::default_config(core::SchedulerKind::kLinuxPrimary, 42);
        cfg.linux.tick_hz = hz;
        const auto s = core::run_selfish_experiment(
            core::SchedulerKind::kLinuxPrimary, 10.0, 42, &cfg);
        std::printf("%-8s %-10.0f %12zu %14.1f %14.2f\n", "Linux", hz,
                    static_cast<std::size_t>(s.detours_all_cores),
                    s.total_detour_us_all / 4.0, s.max_detour_us);
        record("linux", hz, s);
    }
    report.write_default();
    std::printf(
        "\nTakeaway: noise scales with tick rate; the LWK's low-rate ticks are\n"
        "the first-order reason Fig. 5 looks like Fig. 4.\n");
    return 0;
}
