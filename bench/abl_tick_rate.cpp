// Ablation: scheduler tick rate vs guest noise (paper §III.a — Kitten wins
// because of "significantly larger time slices … and thus lower timer tick
// rates"). Sweeps the primary VM's tick frequency under both primary
// kernels and reports the secondary VM's detour profile.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_args.h"
#include "core/harness.h"
#include "obs/report.h"

int main(int argc, char** argv) {
    using namespace hpcsec;
    const int jobs = benchargs::parse_jobs(argc, argv);
    std::printf("== Ablation: primary tick rate vs secondary-VM noise ==\n");
    std::printf("(selfish-detour, 10 s simulated, Pine A64 model)\n\n");
    std::printf("%-8s %-10s %12s %14s %14s\n", "primary", "tick[Hz]", "detours",
                "lost[us/core]", "max[us]");

    obs::BenchReport report("abl_tick_rate");
    const auto record = [&report](const char* primary, double hz,
                                  const core::SelfishSeries& s) {
        const std::string tag =
            std::string(primary) + "." + std::to_string(static_cast<int>(hz));
        report.add(tag + ".detours", static_cast<double>(s.detours_all_cores), 0.0, 1);
        report.add(tag + ".lost_us_per_core", s.total_detour_us_all / 4.0, 0.0, 1);
        report.add(tag + ".max_detour_us", s.max_detour_us, 0.0, 1);
    };
    struct Sweep {
        const char* primary;
        const char* tag;
        double hz;
    };
    std::vector<Sweep> sweeps;
    for (const double hz : {1.0, 10.0, 100.0, 250.0})
        sweeps.push_back({"Kitten", "kitten", hz});
    for (const double hz : {100.0, 250.0, 1000.0})
        sweeps.push_back({"Linux", "linux", hz});

    std::vector<core::SelfishJob> runs;
    for (const auto& sw : sweeps) {
        const auto kind = sw.tag[0] == 'k' ? core::SchedulerKind::kKittenPrimary
                                           : core::SchedulerKind::kLinuxPrimary;
        core::NodeConfig cfg = core::Harness::default_config(kind, 42);
        if (kind == core::SchedulerKind::kKittenPrimary) {
            cfg.kitten.tick_hz = sw.hz;
        } else {
            cfg.linux.tick_hz = sw.hz;
        }
        runs.push_back({kind, 10.0, 42, cfg});
    }
    const auto series = core::run_selfish_experiments(runs, jobs);
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const auto& sw = sweeps[i];
        const auto& s = series[i];
        std::printf("%-8s %-10.0f %12zu %14.1f %14.2f\n", sw.primary, sw.hz,
                    static_cast<std::size_t>(s.detours_all_cores),
                    s.total_detour_us_all / 4.0, s.max_detour_us);
        record(sw.tag, sw.hz, s);
    }
    report.write_default();
    std::printf(
        "\nTakeaway: noise scales with tick rate; the LWK's low-rate ticks are\n"
        "the first-order reason Fig. 5 looks like Fig. 4.\n");
    return 0;
}
