// Shared argv handling for the bench binaries: every sweep accepts
// `--jobs N` (N = worker threads for fanning independent runs; 0 = one per
// hardware thread, 1 = legacy serial). The flag is extracted in place so
// each bench's positional arguments keep their indices.
#pragma once

#include <cstdlib>
#include <cstring>

namespace hpcsec::benchargs {

inline int parse_jobs(int& argc, char** argv, int def = 1) {
    int jobs = def;
    int w = 1;
    for (int r = 1; r < argc; ++r) {
        if (std::strcmp(argv[r], "--jobs") == 0 && r + 1 < argc) {
            jobs = std::atoi(argv[++r]);
        } else if (std::strncmp(argv[r], "--jobs=", 7) == 0) {
            jobs = std::atoi(argv[r] + 7);
        } else {
            argv[w++] = argv[r];
        }
    }
    argc = w;
    return jobs;
}

}  // namespace hpcsec::benchargs
