// Regenerates Figs. 4-6: selfish-detour noise profiles.
//
//   Fig. 4 — native Kitten:           sparse detours (10 Hz LWK ticks only)
//   Fig. 5 — Kitten VM on Kitten SPM: same count order, slightly larger
//                                     amplitudes (world-switch on each tick)
//   Fig. 6 — Kitten VM on Linux:      frequent, randomly distributed noise
//                                     (250 Hz CFS ticks, kworkers, softirqs)
#include <cstdio>
#include <cstdlib>

#include "core/harness.h"

int main(int argc, char** argv) {
    using namespace hpcsec;
    const double seconds = argc > 1 ? std::atof(argv[1]) : 60.0;
    const std::uint64_t seed = 20211114;

    struct FigDef {
        const char* fig;
        core::SchedulerKind kind;
    };
    const FigDef figs[] = {
        {"Fig. 4 (native Kitten)", core::SchedulerKind::kNativeKitten},
        {"Fig. 5 (Kitten VM, Kitten scheduler)", core::SchedulerKind::kKittenPrimary},
        {"Fig. 6 (Kitten VM, Linux scheduler)", core::SchedulerKind::kLinuxPrimary},
    };

    std::printf("== Selfish-detour benchmark, %.0f s simulated per config ==\n\n",
                seconds);
    for (const auto& fig : figs) {
        const auto series = core::run_selfish_experiment(fig.kind, seconds, seed);
        std::printf("---- %s ----\n", fig.fig);
        std::printf("%s\n", core::format_selfish(series).c_str());
    }
    return 0;
}
