// Regenerates Figs. 4-6: selfish-detour noise profiles.
//
//   Fig. 4 — native Kitten:           sparse detours (10 Hz LWK ticks only)
//   Fig. 5 — Kitten VM on Kitten SPM: same count order, slightly larger
//                                     amplitudes (world-switch on each tick)
//   Fig. 6 — Kitten VM on Linux:      frequent, randomly distributed noise
//                                     (250 Hz CFS ticks, kworkers, softirqs)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_args.h"
#include "core/harness.h"
#include "obs/report.h"

int main(int argc, char** argv) {
    using namespace hpcsec;
    const int jobs = benchargs::parse_jobs(argc, argv);
    const double seconds = argc > 1 ? std::atof(argv[1]) : 60.0;
    const std::uint64_t seed = 20211114;

    struct FigDef {
        const char* fig;
        const char* tag;
        core::SchedulerKind kind;
    };
    const FigDef figs[] = {
        {"Fig. 4 (native Kitten)", "native", core::SchedulerKind::kNativeKitten},
        {"Fig. 5 (Kitten VM, Kitten scheduler)", "kitten",
         core::SchedulerKind::kKittenPrimary},
        {"Fig. 6 (Kitten VM, Linux scheduler)", "linux",
         core::SchedulerKind::kLinuxPrimary},
    };

    obs::BenchReport report("fig04_06_selfish");
    std::printf("== Selfish-detour benchmark, %.0f s simulated per config ==\n\n",
                seconds);
    std::vector<core::SelfishJob> runs;
    for (const auto& fig : figs) runs.push_back({fig.kind, seconds, seed, {}});
    const auto all = core::run_selfish_experiments(runs, jobs);
    for (std::size_t i = 0; i < all.size(); ++i) {
        const auto& series = all[i];
        std::printf("---- %s ----\n", figs[i].fig);
        std::printf("%s\n", core::format_selfish(series).c_str());
        const std::string tag = figs[i].tag;
        report.add(tag + ".detours",
                   static_cast<double>(series.detours_all_cores), 0.0, 1);
        report.add(tag + ".lost_us", series.total_detour_us_all, 0.0, 1);
        report.add(tag + ".max_detour_us", series.max_detour_us, 0.0, 1);
    }
    report.write_default();
    return 0;
}
