// Regenerates Fig. 7 (normalized) and Fig. 8 (raw table): HPCG, Stream and
// RandomAccess across the Native / Kitten / Linux configurations.
//
// Paper reference values (Fig. 8):
//             HPCG (GFlops)      Stream (MB/s)     RandomAccess (GUP/s)
//   Native    0.0018 / 3e-5      59.6 / 0.14       6.5e-5  / 5.7e-10
//   Kitten    0.0019 / 3e-5      59.8 / 0.14       6.2e-5  / 3.4e-8
//   Linux     0.0018 / 3e-5      60.2 / 0.42       6.04e-5 / 3.6e-9
#include <cstdio>
#include <cstdlib>

#include "bench_args.h"
#include "core/harness.h"
#include "workloads/hpcg.h"
#include "workloads/randomaccess.h"
#include "workloads/stream.h"

int main(int argc, char** argv) {
    using namespace hpcsec;
    core::Harness::Options opt;
    opt.jobs = benchargs::parse_jobs(argc, argv);
    opt.trials = argc > 1 ? std::atoi(argv[1]) : 10;
    core::Harness harness(opt);

    const std::vector<wl::WorkloadSpec> specs = {
        wl::hpcg_spec(), wl::stream_spec(), wl::randomaccess_spec()};

    std::printf("== Fig. 8: HPCG, Stream, RandomAccess raw performance ==\n");
    std::printf("(%d trials per cell; simulated Pine A64-LTS, 4x A53 @1.1GHz)\n\n",
                opt.trials);
    const auto rows = harness.run_rows(specs);
    std::printf("%s\n", core::Harness::format_raw(rows).c_str());
    std::printf("== Fig. 7: normalized performance ==\n");
    std::printf("%s\n", core::Harness::format_normalized(rows).c_str());
    core::Harness::write_bench_report("fig07_08_memory", rows);
    return 0;
}
