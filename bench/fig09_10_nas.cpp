// Regenerates Fig. 9 (normalized) and Fig. 10 (raw Mop/s): the NAS Parallel
// Benchmark subset LU, BT, CG, EP, SP.
//
// Paper reference values (Fig. 10, Mop/s):
//             LU       BT       CG     EP     SP
//   Native    33.16    34.214   4.38   0.77   15.084
//   Kitten    33.116   34.2     4.38   0.77   15.08
//   Linux     32.06    34.142   4.37   0.77   15.1
#include <cstdio>
#include <cstdlib>

#include "bench_args.h"
#include "core/harness.h"
#include "workloads/nas.h"

int main(int argc, char** argv) {
    using namespace hpcsec;
    core::Harness::Options opt;
    opt.jobs = benchargs::parse_jobs(argc, argv);
    opt.trials = argc > 1 ? std::atoi(argv[1]) : 5;
    core::Harness harness(opt);

    std::printf("== Fig. 10: NAS Parallel Benchmarks raw performance (Mop/s) ==\n");
    std::printf("(%d trials per cell; simulated Pine A64-LTS, 4x A53 @1.1GHz)\n\n",
                opt.trials);
    const auto rows = harness.run_rows(wl::nas_suite());
    std::printf("%s\n", core::Harness::format_raw(rows).c_str());
    std::printf("== Fig. 9: normalized performance ==\n");
    std::printf("%s\n", core::Harness::format_normalized(rows).c_str());
    core::Harness::write_bench_report("fig09_10_nas", rows);
    return 0;
}
