// Fleet scaling sweep: zero-alloc steady state at 10..10,000 nodes.
//
// Each fleet node is a full detailed simulation — platform, SPM, Kitten
// primary + secure compute partition — booted from an external arena that
// is reused (reset, not reallocated) across every trial a worker runs, so
// the per-node footprint and teardown cost stay flat no matter how many
// nodes the sweep pushes through. The per-node superstep traces then feed
// the cluster scale model (max-over-nodes + log2(N) allreduce), projecting
// the fleet's BSP efficiency at each size.
//
// Reported per fleet size: aggregate simulated events/s of wall time, mean
// arena bytes/node, projected parallel efficiency, and peak RSS. The trial
// fan-out goes through core::ThreadPool; results are merged in node-index
// order, and the sweep is run at --jobs 1 and at the requested --jobs with
// the deterministic outputs compared byte-for-byte (wall-clock metrics are
// reported separately and excluded from the comparison).
//
// Usage: fleet_scaling [--jobs N] [--floor FILE] [counts...]
//   counts  fleet sizes to sweep (default: 10 100 1000 10000)
//   --floor FILE  read a reference events/s; exit 1 if the measured
//                 aggregate falls below 0.9x the reference (the CI
//                 regression gate).
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_args.h"
#include "cluster/scale_model.h"
#include "core/harness.h"
#include "core/node.h"
#include "core/parallel.h"
#include "obs/report.h"
#include "sim/arena.h"
#include "workloads/nas.h"

namespace {

using namespace hpcsec;

// Per-node workload: LU-shaped (the sync-heavy suite member), trimmed so a
// node trial is milliseconds — the sweep's cost is nodes, not node depth.
wl::WorkloadSpec fleet_node_spec() {
    wl::WorkloadSpec spec = wl::nas_lu_spec();
    spec.supersteps = 64;
    return spec;
}

struct NodeSample {
    std::uint64_t events = 0;        ///< engine events this node executed
    std::uint64_t batched_pops = 0;  ///< timer-wheel batched dispatches
    std::size_t arena_bytes = 0;     ///< arena footprint at teardown
    cluster::NodeTrace trace;        ///< superstep trace for the scale model
};

/// One fleet point: `nodes` detailed trials fanned across the pool, each
/// worker reusing a thread-local arena (reset between trials = the O(1)
/// teardown this PR buys), then a scale-model projection over the traces.
struct FleetPoint {
    int nodes = 0;
    std::uint64_t total_events = 0;
    std::uint64_t total_batched_pops = 0;
    double mean_bytes_per_node = 0.0;
    cluster::ScaleResult projection;
    double wall_s = 0.0;  ///< detailed-trial phase only (excluded from witness)
};

FleetPoint run_fleet(core::ThreadPool& pool, int nodes,
                     const wl::WorkloadSpec& spec, std::uint64_t base_seed) {
    std::vector<NodeSample> samples(static_cast<std::size_t>(nodes));
    const auto t0 = std::chrono::steady_clock::now();
    core::parallel_for_indexed(pool, static_cast<std::size_t>(nodes),
                               [&](std::size_t i) {
        // One arena per worker thread, reused for every trial the worker
        // picks up: teardown is Node dtor + arena.reset() (dtor sweep +
        // pointer rewind), and the warmed chunks serve the next trial.
        static thread_local sim::Arena arena;
        core::NodeConfig cfg = core::Harness::default_config(
            core::SchedulerKind::kKittenPrimary,
            base_seed + 6151ull * static_cast<std::uint64_t>(i));
        cfg.platform.arena = &arena;
        NodeSample& out = samples[i];
        {
            core::Node node(std::move(cfg));
            node.boot();
            wl::ParallelWorkload w(spec);
            const sim::SimTime start = node.platform().engine().now();
            (void)node.run_workload(w);
            out.events = node.platform().engine().events_executed();
            out.batched_pops = node.platform().engine().timer_batched_pops();
            out.trace = cluster::trace_from_step_times(
                w.step_completion_times(), start);
        }
        // The external arena outlives the Platform; bytes_used at this
        // point is the node's whole long-lived footprint (cores, VMs,
        // VCPUs, grants) — deterministic per seed, so it goes in the
        // witness string.
        out.arena_bytes = arena.bytes_used();
        arena.reset();
    });
    const auto t1 = std::chrono::steady_clock::now();

    FleetPoint pt;
    pt.nodes = nodes;
    pt.wall_s = std::chrono::duration<double>(t1 - t0).count();
    std::vector<cluster::NodeTrace> traces;
    traces.reserve(samples.size());
    double bytes_sum = 0.0;
    for (auto& s : samples) {
        pt.total_events += s.events;
        pt.total_batched_pops += s.batched_pops;
        bytes_sum += static_cast<double>(s.arena_bytes);
        traces.push_back(std::move(s.trace));
    }
    pt.mean_bytes_per_node = bytes_sum / static_cast<double>(nodes);
    const cluster::ScaleModel model(std::move(traces),
                                    sim::ClockSpec{1'100'000'000});
    pt.projection = model.project(nodes, /*seed=*/777);
    return pt;
}

struct SweepRun {
    std::vector<FleetPoint> points;
    double wall_s = 0.0;
    std::string witness;  ///< deterministic outputs only — the jobs invariant
};

SweepRun run_sweep(int jobs, const std::vector<int>& counts,
                   const wl::WorkloadSpec& spec) {
    SweepRun run;
    const auto t0 = std::chrono::steady_clock::now();
    core::ThreadPool pool(jobs);
    run.points.reserve(counts.size());
    for (const int n : counts) {
        run.points.push_back(run_fleet(pool, n, spec, /*base_seed=*/20210101));
    }
    const auto t1 = std::chrono::steady_clock::now();
    run.wall_s = std::chrono::duration<double>(t1 - t0).count();

    std::ostringstream w;
    for (const FleetPoint& pt : run.points) {
        char line[256];
        std::snprintf(line, sizeof line,
                      "nodes=%d events=%llu batched_pops=%llu bytes/node=%.1f "
                      "eff=%.6f step_us=%.4f\n",
                      pt.nodes,
                      static_cast<unsigned long long>(pt.total_events),
                      static_cast<unsigned long long>(pt.total_batched_pops),
                      pt.mean_bytes_per_node, pt.projection.efficiency,
                      pt.projection.mean_step_us);
        w << line;
    }
    run.witness = w.str();
    return run;
}

double peak_rss_mib() {
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

}  // namespace

int main(int argc, char** argv) {
    int jobs = benchargs::parse_jobs(argc, argv, 8);
    if (jobs <= 0) jobs = core::ThreadPool::default_jobs();

    std::string floor_file;
    std::vector<int> counts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--floor") == 0 && i + 1 < argc) {
            floor_file = argv[++i];
        } else {
            counts.push_back(std::atoi(argv[i]));
        }
    }
    if (counts.empty()) counts = {10, 100, 1000, 10000};

    const wl::WorkloadSpec spec = fleet_node_spec();
    std::printf("== Fleet scaling: arena-backed nodes at 10..10k ==\n");
    std::printf("(per-node: %s x%d supersteps; jobs=%d)\n\n", spec.name.c_str(),
                spec.supersteps, jobs);

    // The determinism invariant: the whole sweep at --jobs 1 and at the
    // requested jobs must agree byte-for-byte on every deterministic output.
    std::vector<int> jobs_values = {1};
    if (jobs != 1) jobs_values.push_back(jobs);

    obs::BenchReport report("fleet_scaling");
    std::vector<SweepRun> runs;
    runs.reserve(jobs_values.size());
    for (const int j : jobs_values) {
        runs.push_back(run_sweep(j, counts, spec));
        report.add("jobs" + std::to_string(j) + ".wall_s", runs.back().wall_s,
                   0.0, 1);
    }
    const SweepRun& run = runs.back();  // the requested-jobs run

    std::printf("%8s %14s %14s %12s %10s %10s\n", "nodes", "events", "events/s",
                "bytes/node", "eff", "step_us");
    std::uint64_t total_events = 0;
    double total_wall = 0.0;
    for (const FleetPoint& pt : run.points) {
        const double evps =
            pt.wall_s > 0.0 ? static_cast<double>(pt.total_events) / pt.wall_s
                            : 0.0;
        std::printf("%8d %14llu %14.0f %12.1f %10.4f %10.2f\n", pt.nodes,
                    static_cast<unsigned long long>(pt.total_events), evps,
                    pt.mean_bytes_per_node, pt.projection.efficiency,
                    pt.projection.mean_step_us);
        const std::string tag = "fleet." + std::to_string(pt.nodes);
        report.add(tag + ".events", static_cast<double>(pt.total_events), 0.0, 1);
        report.add(tag + ".events_per_s", evps, 0.0, 1);
        report.add(tag + ".bytes_per_node", pt.mean_bytes_per_node, 0.0, 1);
        report.add(tag + ".efficiency", pt.projection.efficiency, 0.0, 1);
        report.add(tag + ".step_us", pt.projection.mean_step_us, 0.0, 1);
        report.add(tag + ".batched_pops",
                   static_cast<double>(pt.total_batched_pops), 0.0, 1);
        total_events += pt.total_events;
        total_wall += pt.wall_s;
    }
    const double rss = peak_rss_mib();
    const double agg_evps =
        total_wall > 0.0 ? static_cast<double>(total_events) / total_wall : 0.0;
    report.add("events_per_s", agg_evps, 0.0, 1);
    report.add("peak_rss_mib", rss, 0.0, 1);
    std::printf("\naggregate: %.0f events/s, peak RSS %.1f MiB\n", agg_evps, rss);

    bool ok = true;
    bool identical = true;
    for (std::size_t i = 1; i < runs.size(); ++i) {
        identical = identical && runs[i].witness == runs.front().witness;
    }
    report.add("deterministic", identical ? 1.0 : 0.0, 0.0, 1);
    if (identical) {
        std::printf("Deterministic outputs bit-identical across jobs values\n");
    } else {
        std::fprintf(stderr,
                     "FAIL: outputs differ between --jobs 1 and --jobs %d\n",
                     jobs);
        ok = false;
    }

    if (!floor_file.empty()) {
        std::ifstream in(floor_file);
        double floor = 0.0;
        if (!(in >> floor) || floor <= 0.0) {
            std::fprintf(stderr, "FAIL: cannot read floor from %s\n",
                         floor_file.c_str());
            ok = false;
        } else if (agg_evps < 0.9 * floor) {
            std::fprintf(stderr,
                         "FAIL: %.0f events/s is below 90%% of the recorded "
                         "floor (%.0f)\n",
                         agg_evps, floor);
            ok = false;
        } else {
            std::printf("Floor gate: %.0f events/s >= 0.9 x %.0f recorded\n",
                        agg_evps, floor);
        }
    }

    report.write_default();
    return ok ? 0 : 1;
}
