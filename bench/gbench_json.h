// Tee google-benchmark console output into a machine-readable
// BENCH_<name>.json (obs::BenchReport), so the micro benches feed the same
// perf-trajectory tracking as the figure/ablation benches.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "obs/report.h"

namespace hpcsec::benchutil {

/// Console reporter that also accumulates every non-errored iteration run
/// into an obs::BenchReport row (metric = benchmark name, mean = adjusted
/// real time per iteration in the run's time unit, n = iterations).
class JsonTeeReporter : public benchmark::ConsoleReporter {
public:
    explicit JsonTeeReporter(std::string bench_name)
        : report_(std::move(bench_name)) {}

    void ReportRuns(const std::vector<Run>& runs) override {
        for (const auto& run : runs) {
            if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
            report_.add(run.benchmark_name(), run.GetAdjustedRealTime(), 0.0,
                        static_cast<std::size_t>(run.iterations));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    [[nodiscard]] const obs::BenchReport& report() const { return report_; }

private:
    obs::BenchReport report_;
};

/// Drop-in BENCHMARK_MAIN() body that writes BENCH_<bench_name>.json on exit.
inline int run_and_report(const std::string& bench_name, int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    JsonTeeReporter reporter(bench_name);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    reporter.report().write_default();
    benchmark::Shutdown();
    return 0;
}

}  // namespace hpcsec::benchutil
