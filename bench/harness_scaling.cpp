// Harness scaling: wall-clock for the same experiment row at --jobs 1 vs
// --jobs N (default 4). Every jobs value runs the identical trial set (one
// private Node per trial, merged in trial order), so this doubles as a
// determinism check: the aggregated tables must match bit-for-bit before the
// timing numbers mean anything.
//
// Writes BENCH_harness_scaling.json with, per jobs value, wall-clock
// seconds, simulated events per wall-clock second, and speedup vs serial.
// Speedup tracks host cores: a 1-core container reports ~1.0 by
// construction, a 4-core host ~3x+ at --jobs 4 (trials are embarrassingly
// parallel; the residual is the serialized merge + pool fan-in).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.h"
#include "core/harness.h"
#include "obs/report.h"
#include "workloads/nas.h"

namespace {

using namespace hpcsec;

struct Run {
    double wall_s = 0.0;
    double events = 0.0;  ///< simulated events executed, summed over trials
    std::string raw;      ///< format_raw of the row (determinism witness)
    std::string metrics_json;
};

Run run_once(const wl::WorkloadSpec& spec, int trials, int jobs) {
    core::Harness::Options opt;
    opt.trials = trials;
    opt.jobs = jobs;
    core::Harness h(opt);

    const auto t0 = std::chrono::steady_clock::now();
    const auto rows = h.run_rows({spec});
    const auto t1 = std::chrono::steady_clock::now();

    Run r;
    r.wall_s = std::chrono::duration<double>(t1 - t0).count();
    for (const auto& agg : rows.front().metrics) {
        for (const auto& row : agg.rows()) {
            if (row.name == "engine.events") r.events += row.stats.sum();
        }
    }
    r.raw = core::Harness::format_raw(rows);
    r.metrics_json = core::Harness::format_metrics_json(rows);
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace hpcsec;
    const int jobs = benchargs::parse_jobs(argc, argv, 4);
    const int trials = argc > 1 ? std::atoi(argv[1]) : 10;

    wl::WorkloadSpec spec = wl::nas_lu_spec();
    spec.units_per_thread_step /= 2;

    std::printf("== Harness scaling: %d-trial x 3-config LU row ==\n", trials);
    std::printf("(host: %u hardware threads)\n\n",
                std::thread::hardware_concurrency());
    std::printf("%-8s %12s %16s %10s\n", "jobs", "wall[s]", "events/s", "speedup");

    obs::BenchReport report("harness_scaling");
    const Run serial = run_once(spec, trials, 1);
    double best_speedup = 1.0;
    bool identical = true;
    for (const int j : {1, jobs}) {
        const Run r = j == 1 ? serial : run_once(spec, trials, j);
        const double speedup = serial.wall_s / r.wall_s;
        if (j != 1) best_speedup = speedup;
        identical = identical && r.raw == serial.raw &&
                    r.metrics_json == serial.metrics_json;
        std::printf("%-8d %12.3f %16.3e %10.2f\n", j, r.wall_s,
                    r.events / r.wall_s, speedup);
        const std::string tag = "jobs." + std::to_string(j);
        report.add(tag + ".wall_s", r.wall_s, 0.0, 1);
        report.add(tag + ".events_per_s", r.events / r.wall_s, 0.0, 1);
        report.add(tag + ".speedup", speedup, 0.0, 1);
    }
    report.add("host_threads",
               static_cast<double>(std::thread::hardware_concurrency()), 0.0, 1);
    report.add("deterministic", identical ? 1.0 : 0.0, 0.0, 1);
    report.write_default();

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: --jobs %d output differs from serial run\n", jobs);
        return 1;
    }
    std::printf(
        "\nOutputs bit-identical across jobs values; speedup scales with host\n"
        "cores (a single-core host pins it at ~1.0 regardless of --jobs).\n");
    return 0;
}
