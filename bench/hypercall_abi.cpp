// Dispatch-overhead micro-bench for the typed hypercall ABI (ISSUE 5
// acceptance): table-driven dispatch vs a bench-local replica of the
// monolithic switch it displaced, the typed hf:: wrapper path, the
// interceptor chain off/on, and the unknown-call reject path. Written to
// BENCH_hypercall_abi.json so the perf trajectory keeps the comparison
// measured, not asserted (the LegacyEventQueue discipline).
#include <benchmark/benchmark.h>

#include "arch/platform.h"
#include "check/check.h"
#include "gbench_json.h"
#include "hafnium/abi.h"
#include "hafnium/intercept.h"
#include "hafnium/spm.h"
#include "obs/metrics.h"

namespace {

using namespace hpcsec;
using hafnium::Call;
using hafnium::HfArgs;
using hafnium::HfError;
using hafnium::HfResult;

struct SpmBench {
    arch::Platform platform{arch::PlatformConfig::pine_a64()};
    hafnium::Spm spm;

    SpmBench() : spm(platform, make_manifest()) { spm.boot(); }

    static hafnium::Manifest make_manifest() {
        hafnium::Manifest m;
        hafnium::VmSpec p;
        p.name = "primary";
        p.role = hafnium::VmRole::kPrimary;
        p.mem_bytes = 64ull << 20;
        p.vcpu_count = 4;
        hafnium::VmSpec s;
        s.name = "compute";
        s.role = hafnium::VmRole::kSecondary;
        s.mem_bytes = 64ull << 20;
        s.vcpu_count = 4;
        m.vms = {p, s};
        return m;
    }
};

// Bench-local replica of the pre-refactor dispatch shape: one monolithic
// switch, per-case argument casts, no table indirection. Only the info
// calls are replicated (the hot ones in the fig benches); the point is the
// *dispatch* cost — switch + casts vs index + thunk decode.
HfResult legacy_switch_dispatch(hafnium::Spm& spm, arch::VmId caller,
                                Call call, const HfArgs& args) {
    switch (call) {
        case Call::kVersion:
            return {HfError::kOk, (1 << 16) | 1};  // SPM version 1.1
        case Call::kVmGetCount:
            return {HfError::kOk, spm.vm_count()};
        case Call::kVcpuGetCount: {
            const auto vm = static_cast<arch::VmId>(args.a0);
            if (vm == 0 || vm > static_cast<arch::VmId>(spm.vm_count())) {
                return {HfError::kNotFound, 0};
            }
            return {HfError::kOk, spm.vm(vm).vcpu_count()};
        }
        case Call::kVmGetInfo: {
            const auto id = static_cast<arch::VmId>(args.a0);
            if (id == 0 || id > static_cast<arch::VmId>(spm.vm_count())) {
                return {HfError::kNotFound, 0};
            }
            hafnium::Vm& vm = spm.vm(id);
            return {HfError::kOk,
                    hafnium::abi::encode_vm_info(vm.role(), vm.world(),
                                                 vm.vcpu_count())};
        }
        default:
            (void)caller;
            return {HfError::kInvalid, 0};
    }
}

void BM_DispatchLegacySwitch(benchmark::State& state) {
    SpmBench b;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            legacy_switch_dispatch(b.spm, 1, Call::kVmGetInfo, {2, 0, 0, 0}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchLegacySwitch);

// The full new gate: stats, empty-chain branch, table index, privilege
// mask, typed decode, handler. Acceptance: within 2% of the pre-refactor
// inline switch (BM_HypercallDispatchInfo in micro_paths is the other
// longitudinal anchor).
void BM_DispatchTable(benchmark::State& state) {
    SpmBench b;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            b.spm.hypercall(0, 1, Call::kVmGetInfo, {2, 0, 0, 0}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchTable);

void BM_DispatchTypedWrapper(benchmark::State& state) {
    SpmBench b;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hf::vm_get_info(b.spm, 0, 1, 2));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchTypedWrapper);

// Malformed guest input: unknown call number stops at the gate.
void BM_DispatchUnknownCall(benchmark::State& state) {
    SpmBench b;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            b.spm.hypercall(0, 1, static_cast<Call>(0x2a), {}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchUnknownCall);

void BM_DispatchInterceptorsTelemetryMasked(benchmark::State& state) {
    SpmBench b;
    hafnium::TelemetryInterceptor telemetry(b.platform);  // mask 0: filtered
    b.spm.attach_interceptor(&telemetry);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            b.spm.hypercall(0, 1, Call::kVmGetInfo, {2, 0, 0, 0}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchInterceptorsTelemetryMasked);

void BM_DispatchInterceptorsFullChain(benchmark::State& state) {
    SpmBench b;
    hafnium::TelemetryInterceptor telemetry(b.platform);
    hafnium::CallMetricsInterceptor metrics(b.platform.metrics());
    check::Auditor auditor(
        b.spm, {check::Mode::kSampled, /*period=*/64, /*event_period=*/0});
    hafnium::HypercallLog log;
    log.start_record();
    b.spm.attach_interceptor(&telemetry);
    b.spm.attach_interceptor(&metrics);
    b.spm.attach_interceptor(&log);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            b.spm.hypercall(0, 1, Call::kVmGetInfo, {2, 0, 0, 0}));
        if (log.tape().size() >= (1u << 20)) {
            state.PauseTiming();
            log.start_record();  // cap the tape so memory stays bounded
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["audits"] = static_cast<double>(auditor.audits());
}
BENCHMARK(BM_DispatchInterceptorsFullChain);

}  // namespace

int main(int argc, char** argv) {
    return hpcsec::benchutil::run_and_report("hypercall_abi", argc, argv);
}
