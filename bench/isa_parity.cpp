// Cross-ISA parity sweep: the Figs. 4-6 selfish-detour experiment run on
// both machine-model backends (ARMv8+GIC and RISC-V H-extension+PLIC).
//
// The performance model prices privilege transitions and nested walks the
// same way on both ISAs (the paper's costs are transition counts, not
// ISA-specific microarchitecture), so detour counts and lost time should
// match across backends for every scheduler configuration. The report
// records both sides plus the deltas so CI can watch parity drift.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "arch/isa.h"
#include "bench_args.h"
#include "core/harness.h"
#include "obs/report.h"

int main(int argc, char** argv) {
    using namespace hpcsec;
    const int jobs = benchargs::parse_jobs(argc, argv);
    const double seconds = argc > 1 ? std::atof(argv[1]) : 60.0;
    const std::uint64_t seed = 20211114;

    struct ConfigDef {
        const char* tag;
        core::SchedulerKind kind;
    };
    const ConfigDef configs[] = {
        {"native", core::SchedulerKind::kNativeKitten},
        {"kitten", core::SchedulerKind::kKittenPrimary},
        {"linux", core::SchedulerKind::kLinuxPrimary},
    };
    const arch::Isa isas[] = {arch::Isa::kArm, arch::Isa::kRiscv};

    // One job per (ISA, config) cell, fanned out together; a cell's node
    // is private, so cross-ISA runs can share the worker pool.
    std::vector<core::SelfishJob> runs;
    for (const arch::Isa isa : isas) {
        for (const auto& cfg : configs) {
            core::NodeConfig base = core::Harness::default_config(cfg.kind, seed);
            base.platform.isa = isa;
            runs.push_back({cfg.kind, seconds, seed, base});
        }
    }

    obs::BenchReport report("isa_parity");
    std::printf("== Cross-ISA selfish-detour parity, %.0f s simulated per cell ==\n\n",
                seconds);
    const auto all = core::run_selfish_experiments(runs, jobs);
    const std::size_t nconfigs = std::size(configs);
    bool parity = true;
    for (std::size_t c = 0; c < nconfigs; ++c) {
        const auto& arm = all[c];
        const auto& riscv = all[nconfigs + c];
        const std::string tag = configs[c].tag;
        for (const auto* side : {&arm, &riscv}) {
            const std::string isa_tag =
                side == &arm ? "arm." + tag : "riscv." + tag;
            report.add(isa_tag + ".detours",
                       static_cast<double>(side->detours_all_cores), 0.0, 1);
            report.add(isa_tag + ".lost_us", side->total_detour_us_all, 0.0, 1);
            report.add(isa_tag + ".max_detour_us", side->max_detour_us, 0.0, 1);
        }
        const double d_detours =
            static_cast<double>(arm.detours_all_cores) -
            static_cast<double>(riscv.detours_all_cores);
        const double d_lost = arm.total_detour_us_all - riscv.total_detour_us_all;
        report.add("delta." + tag + ".detours", d_detours, 0.0, 1);
        report.add("delta." + tag + ".lost_us", d_lost, 0.0, 1);
        if (d_detours != 0.0 || d_lost != 0.0) parity = false;
        std::printf("---- %s ----\n", configs[c].tag);
        std::printf("  arm:   %8llu detours, %10.2f us lost, max %8.2f us\n",
                    static_cast<unsigned long long>(arm.detours_all_cores),
                    arm.total_detour_us_all, arm.max_detour_us);
        std::printf("  riscv: %8llu detours, %10.2f us lost, max %8.2f us\n",
                    static_cast<unsigned long long>(riscv.detours_all_cores),
                    riscv.total_detour_us_all, riscv.max_detour_us);
    }
    std::printf("\ncross-ISA parity: %s\n", parity ? "EXACT" : "DRIFTED");
    report.write_default();
    return 0;
}
