// Crypto micro-benchmarks (google-benchmark): SHA-256 throughput, HMAC,
// Lamport keygen/sign/verify, attestation-chain extension — the costs
// behind the §VII signature-verification design.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/attest.h"
#include "gbench_json.h"
#include "crypto/lamport.h"
#include "crypto/sha256.h"

namespace {

using namespace hpcsec;

void BM_Sha256(benchmark::State& state) {
    const std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xab);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::Sha256::hash(data));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_HmacSha256(benchmark::State& state) {
    const std::vector<std::uint8_t> key(32, 0x11);
    const std::vector<std::uint8_t> msg(4096, 0x22);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::hmac_sha256(key, msg));
    }
    state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HmacSha256);

void BM_LamportKeygen(benchmark::State& state) {
    const std::vector<std::uint8_t> seed(32, 0x33);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::LamportKeyPair::generate(seed));
    }
}
// Keygen = 1024 HMAC+SHA ops; cap iterations to keep the suite fast.
BENCHMARK(BM_LamportKeygen)->Iterations(50);

void BM_LamportSign(benchmark::State& state) {
    // One-time keys: pre-generate a pool outside the timed region.
    const std::vector<std::uint8_t> seed(32, 0x44);
    const crypto::Digest msg = crypto::Sha256::hash("image");
    std::vector<crypto::LamportKeyPair> pool;
    for (int i = 0; i < 64; ++i) pool.push_back(crypto::LamportKeyPair::generate(seed));
    std::size_t next = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pool[next++].sign(msg));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LamportSign)->Iterations(64);

void BM_LamportVerify(benchmark::State& state) {
    const std::vector<std::uint8_t> seed(32, 0x55);
    auto kp = crypto::LamportKeyPair::generate(seed);
    const crypto::Digest msg = crypto::Sha256::hash("image");
    const auto sig = kp.sign(msg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::lamport_verify(kp.public_key(), msg, *sig));
    }
}
BENCHMARK(BM_LamportVerify);

void BM_AttestationExtend(benchmark::State& state) {
    const std::vector<std::uint8_t> image(64 * 1024, 0x66);
    for (auto _ : state) {
        core::AttestationChain chain;
        for (int i = 0; i < 6; ++i) chain.extend("stage", image);
        benchmark::DoNotOptimize(chain.accumulator());
    }
}
BENCHMARK(BM_AttestationExtend);

}  // namespace

int main(int argc, char** argv) {
    return hpcsec::benchutil::run_and_report("micro_crypto", argc, argv);
}
