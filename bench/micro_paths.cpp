// Micro-benchmarks (google-benchmark) of the simulator's hot paths and the
// modeled architectural operations: event scheduling, page-table walks,
// one- vs two-stage translation, TLB operations, hypercall dispatch, full
// boot. These characterize the *simulator* cost (host-side), and document
// the modeled cycle costs of the paths the paper discusses (§II.a).
#include <benchmark/benchmark.h>

#include "arch/mmu.h"
#include "arch/platform.h"
#include "check/check.h"
#include "core/harness.h"
#include "core/node.h"
#include "gbench_json.h"
#include "hafnium/spm.h"
#include "obs/recorder.h"
#include "resil/resil.h"
#include "sim/engine.h"
#include "sim/event_queue.h"

#include <queue>
#include <unordered_set>

namespace {

using namespace hpcsec;

void BM_EventScheduleAndRun(benchmark::State& state) {
    for (auto _ : state) {
        sim::Engine e;
        for (int i = 0; i < 1000; ++i) e.after(static_cast<sim::Cycles>(i + 1), [] {});
        e.run();
        benchmark::DoNotOptimize(e.events_executed());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventScheduleAndRun);

// --- event-queue regression baseline -----------------------------------------
// The pre-slab EventQueue: std::priority_queue of value entries plus two
// unordered_sets for O(1) cancellation via tombstones. Kept here verbatim so
// the slab queue's win stays *measured* against the design it replaced
// (schedule/pop allocation churn, tombstone-set growth, callback copies on
// pop) rather than asserted.
class LegacyEventQueue {
public:
    sim::EventId schedule(sim::SimTime when, int priority, sim::EventFn fn) {
        const std::uint64_t seq = next_seq_++;
        heap_.push(Entry{when, priority, seq, std::move(fn)});
        pending_.insert(seq);
        ++live_;
        return sim::EventId{seq};
    }

    bool cancel(sim::EventId id) {
        if (!id.valid()) return false;
        const auto it = pending_.find(id.seq);
        if (it == pending_.end()) return false;
        pending_.erase(it);
        cancelled_.insert(id.seq);
        --live_;
        return true;
    }

    [[nodiscard]] bool empty() const { return live_ == 0; }

    struct Popped {
        sim::SimTime when;
        int priority;
        sim::EventFn fn;
    };
    Popped pop() {
        drop_tombstones();
        auto& top = const_cast<Entry&>(heap_.top());
        Popped out{top.when, top.priority, std::move(top.fn)};
        pending_.erase(top.seq);
        heap_.pop();
        --live_;
        return out;
    }

private:
    struct Entry {
        sim::SimTime when;
        int priority;
        std::uint64_t seq;
        sim::EventFn fn;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.when != b.when) return a.when > b.when;
            if (a.priority != b.priority) return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    void drop_tombstones() {
        while (!heap_.empty()) {
            auto it = cancelled_.find(heap_.top().seq);
            if (it == cancelled_.end()) return;
            cancelled_.erase(it);
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::unordered_set<std::uint64_t> pending_;
    std::uint64_t next_seq_ = 1;
    std::size_t live_ = 0;
};

// Deterministic timestamp scramble so heap order differs from insert order.
constexpr sim::SimTime scrambled_when(int i) {
    return static_cast<sim::SimTime>((i * 2654435761u) & 0xffff) + 1;
}

// Schedule/drain churn: the pattern the engine's run loop produces. The
// capture makes the callback large enough that a copying pop() pays a heap
// allocation per event.
template <typename Queue>
void queue_schedule_drain(benchmark::State& state, Queue& q, std::uint64_t& sink) {
    std::uint64_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    for (int i = 0; i < 1000; ++i) {
        q.schedule(scrambled_when(i), i & 3,
                   [payload, &sink] { sink += payload[0]; });
    }
    while (!q.empty()) {
        auto popped = q.pop();
        popped.fn();
    }
    benchmark::DoNotOptimize(sink);
}

void BM_EventQueueScheduleDrain(benchmark::State& state) {
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sim::EventQueue q;
        queue_schedule_drain(state, q, sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleDrain);

void BM_LegacyQueueScheduleDrain(benchmark::State& state) {
    std::uint64_t sink = 0;
    for (auto _ : state) {
        LegacyEventQueue q;
        queue_schedule_drain(state, q, sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LegacyQueueScheduleDrain);

// Cancellation-heavy churn: timers that are armed and mostly disarmed before
// firing (watchdogs, preemption timers). Half the scheduled events are
// cancelled; the legacy queue grows tombstone sets and still sifts the dead
// entries through the heap.
template <typename Queue>
void queue_cancel_heavy(benchmark::State& state, Queue& q, std::uint64_t& sink) {
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
        ids.push_back(q.schedule(scrambled_when(i), 0, [&sink] { ++sink; }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
    while (!q.empty()) {
        auto popped = q.pop();
        popped.fn();
    }
    benchmark::DoNotOptimize(sink);
}

void BM_EventQueueCancelHeavy(benchmark::State& state) {
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sim::EventQueue q;
        queue_cancel_heavy(state, q, sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_LegacyQueueCancelHeavy(benchmark::State& state) {
    std::uint64_t sink = 0;
    for (auto _ : state) {
        LegacyEventQueue q;
        queue_cancel_heavy(state, q, sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LegacyQueueCancelHeavy);

// Tick-storm: the periodic-cadence pattern kernels generate — N cores each
// re-arming a fixed-period timer forever. Deliberately collision-heavy
// (shared periods) so the wheel's batched same-slot pops are exercised; the
// heap variant re-sifts every re-arm through the binary heap. Both run the
// identical storm through a real Engine, so the ratio is the tick-path
// speedup, with dispatch order proven identical by tests/test_alloc.cpp.
template <bool kUseWheel>
void engine_tick_storm(benchmark::State& state, std::uint64_t& sink) {
    const int kCores = static_cast<int>(state.range(0));
    constexpr sim::SimTime kHorizon = 200'000;
    sim::Engine e;
    std::vector<std::function<void()>> ticks(kCores);
    for (int core = 0; core < kCores; ++core) {
        const sim::Cycles period = 100 + 10 * (core % 3);
        ticks[core] = [&e, &sink, &ticks, core, period] {
            ++sink;
            const sim::SimTime next = e.now() + period;
            if (next > kHorizon) return;
            if constexpr (kUseWheel) {
                e.at_timer(next, [&ticks, core] { ticks[core](); });
            } else {
                e.at(next, [&ticks, core] { ticks[core](); },
                     sim::kPrioInterrupt);
            }
        };
        if constexpr (kUseWheel) {
            e.at_timer(100, [&ticks, core] { ticks[core](); });
        } else {
            e.at(100, [&ticks, core] { ticks[core](); }, sim::kPrioInterrupt);
        }
    }
    e.run();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(e.events_executed()));
}

void BM_TimerWheelTickStorm(benchmark::State& state) {
    std::uint64_t sink = 0;
    for (auto _ : state) engine_tick_storm<true>(state, sink);
}
BENCHMARK(BM_TimerWheelTickStorm)->Arg(8)->Arg(64)->Arg(256);

void BM_HeapQueueTickStorm(benchmark::State& state) {
    std::uint64_t sink = 0;
    for (auto _ : state) engine_tick_storm<false>(state, sink);
}
BENCHMARK(BM_HeapQueueTickStorm)->Arg(8)->Arg(64)->Arg(256);

void BM_PageTableWalk4Level(benchmark::State& state) {
    arch::PageTable pt;
    pt.map(0x10'0000, 0x8000'0000, 64 * arch::kPageSize, arch::kPermRW, false,
           /*force_pages=*/true);
    std::uint64_t addr = 0x10'0000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pt.walk(addr));
        addr = 0x10'0000 + ((addr + arch::kPageSize) & 0x3ffff);
    }
}
BENCHMARK(BM_PageTableWalk4Level);

void BM_PageTableWalkBlock(benchmark::State& state) {
    arch::PageTable pt;
    pt.map(0, 0x4000'0000, 1ull << 30, arch::kPermRWX);  // 1 GiB block
    for (auto _ : state) {
        benchmark::DoNotOptimize(pt.walk(0x1234'5678 & 0x3fff'ffff));
    }
}
BENCHMARK(BM_PageTableWalkBlock);

void BM_MmuTranslateTwoStageCold(benchmark::State& state) {
    arch::MemoryMap mem;
    mem.add_region({"ram", 0x4000'0000, 1ull << 30, arch::RegionKind::kRam,
                    arch::World::kNonSecure});
    arch::PageTable s1, s2;
    s1.map(0, 0x1000'0000, 16ull << 20, arch::kPermRW);
    s2.map(0x1000'0000, 0x4000'0000, 16ull << 20, arch::kPermRW);
    arch::Mmu mmu(mem);
    mmu.set_context(&s1, &s2, 1, 1, arch::World::kNonSecure);
    std::uint64_t va = 0;
    for (auto _ : state) {
        mmu.tlb().flush_all();
        benchmark::DoNotOptimize(mmu.translate(va, arch::Access::kRead));
        va = (va + arch::kPageSize) & ((16ull << 20) - 1);
    }
}
BENCHMARK(BM_MmuTranslateTwoStageCold);

void BM_MmuTranslateTlbHit(benchmark::State& state) {
    arch::MemoryMap mem;
    mem.add_region({"ram", 0x4000'0000, 1ull << 30, arch::RegionKind::kRam,
                    arch::World::kNonSecure});
    arch::PageTable s1;
    s1.map(0, 0x4000'0000, 1ull << 20, arch::kPermRW);
    arch::Mmu mmu(mem);
    mmu.set_context(&s1, nullptr, 0, 1, arch::World::kNonSecure);
    (void)mmu.translate(0, arch::Access::kRead);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mmu.translate(0x40, arch::Access::kRead));
    }
}
BENCHMARK(BM_MmuTranslateTlbHit);

void BM_TlbFlushVmid(benchmark::State& state) {
    arch::Tlb tlb(512, 4);
    for (auto _ : state) {
        state.PauseTiming();
        for (std::uint64_t p = 0; p < 256; ++p) {
            tlb.insert({true, static_cast<arch::VmId>(p % 3), 0, p, p, arch::kPermRW,
                        false});
        }
        state.ResumeTiming();
        tlb.flush_vmid(1);
    }
}
BENCHMARK(BM_TlbFlushVmid);

struct SpmBench {
    arch::Platform platform{arch::PlatformConfig::pine_a64()};
    hafnium::Spm spm;

    SpmBench() : spm(platform, make_manifest()) { spm.boot(); }

    static hafnium::Manifest make_manifest() {
        hafnium::Manifest m;
        hafnium::VmSpec p;
        p.name = "primary";
        p.role = hafnium::VmRole::kPrimary;
        p.mem_bytes = 64ull << 20;
        p.vcpu_count = 4;
        hafnium::VmSpec s;
        s.name = "compute";
        s.role = hafnium::VmRole::kSecondary;
        s.mem_bytes = 64ull << 20;
        s.vcpu_count = 4;
        m.vms = {p, s};
        return m;
    }
};

void BM_HypercallDispatchInfo(benchmark::State& state) {
    SpmBench b;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            b.spm.hypercall(0, 1, hafnium::Call::kVmGetInfo, {2, 0, 0, 0}));
    }
}
BENCHMARK(BM_HypercallDispatchInfo);

void BM_GuestFunctionalWrite(benchmark::State& state) {
    SpmBench b;
    std::uint64_t addr = 0;
    for (auto _ : state) {
        b.spm.vm_write64(2, addr, addr);
        addr = (addr + 8) & 0xfffff;
    }
}
BENCHMARK(BM_GuestFunctionalWrite);

// Invariant-auditor overhead on the hypercall path (ISSUE acceptance:
// audit-off must cost one predicted branch per hook site — the obs recorder
// discipline). Off = no auditor attached; sampled amortizes a full scan
// over the period; strict runs every scan rule on every hypercall.
void BM_HypercallAuditOff(benchmark::State& state) {
    SpmBench b;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            b.spm.hypercall(0, 1, hafnium::Call::kVmGetInfo, {2, 0, 0, 0}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HypercallAuditOff);

void BM_HypercallAuditSampled(benchmark::State& state) {
    SpmBench b;
    check::Auditor auditor(
        b.spm, {check::Mode::kSampled, /*period=*/64, /*event_period=*/0});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            b.spm.hypercall(0, 1, hafnium::Call::kVmGetInfo, {2, 0, 0, 0}));
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["audits"] = static_cast<double>(auditor.audits());
}
BENCHMARK(BM_HypercallAuditSampled);

void BM_HypercallAuditStrict(benchmark::State& state) {
    SpmBench b;
    check::Auditor auditor(b.spm, {check::Mode::kStrict});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            b.spm.hypercall(0, 1, hafnium::Call::kVmGetInfo, {2, 0, 0, 0}));
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["audits"] = static_cast<double>(auditor.audits());
}
BENCHMARK(BM_HypercallAuditStrict);

// The structured recorder must cost one predicted branch per call site when
// its category is masked off (ISSUE acceptance: instrumentation is free in
// ordinary runs). Compare against the enabled path, which appends an Event.
void BM_RecorderDisabled(benchmark::State& state) {
    obs::SpanRecorder rec;  // mask defaults to 0: everything filtered
    sim::SimTime t = 0;
    for (auto _ : state) {
        rec.instant(++t, obs::EventType::kVmExit, 0, 1, 2, 3);
        benchmark::DoNotOptimize(rec.events().size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecorderDisabled);

void BM_RecorderEnabled(benchmark::State& state) {
    obs::SpanRecorder rec;
    rec.set_mask(obs::to_mask(obs::Category::kAll));
    sim::SimTime t = 0;
    for (auto _ : state) {
        rec.instant(++t, obs::EventType::kVmExit, 0, 1, 2, 3);
        benchmark::DoNotOptimize(rec.events().size());
        if (rec.events().size() >= (1u << 20)) {
            state.PauseTiming();
            rec.clear();
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecorderEnabled);

// Heartbeat-watchdog overhead on the hypercall path (ISSUE acceptance:
// detection is event-driven, so an armed watchdog must leave the hypercall
// hot path within noise of the audit-off baseline — nothing resil-related
// executes per call, only per scan tick and per guest timer tick).
void BM_HypercallWatchdogOff(benchmark::State& state) {
    core::Node node(
        core::Harness::default_config(core::SchedulerKind::kKittenPrimary, 7));
    node.boot();
    for (auto _ : state) {
        benchmark::DoNotOptimize(node.spm()->hypercall(
            0, 1, hafnium::Call::kVmGetInfo, {2, 0, 0, 0}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HypercallWatchdogOff);

void BM_HypercallWatchdogArmed(benchmark::State& state) {
    core::Node node(
        core::Harness::default_config(core::SchedulerKind::kKittenPrimary, 7));
    node.boot();
    resil::Supervisor sup(node);
    sup.supervise(node.compute_vm()->id());
    sup.start();
    for (auto _ : state) {
        benchmark::DoNotOptimize(node.spm()->hypercall(
            0, 1, hafnium::Call::kVmGetInfo, {2, 0, 0, 0}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HypercallWatchdogArmed);

void BM_SpmFullBoot(benchmark::State& state) {
    for (auto _ : state) {
        arch::Platform platform(arch::PlatformConfig::pine_a64());
        hafnium::Spm spm(platform, SpmBench::make_manifest());
        spm.boot();
        benchmark::DoNotOptimize(spm.vm_count());
    }
}
BENCHMARK(BM_SpmFullBoot);

}  // namespace

int main(int argc, char** argv) {
    return hpcsec::benchutil::run_and_report("micro_paths", argc, argv);
}
