// Observability off-mode parity bench (ISSUE 6 acceptance): the cycle
// profiler and flight recorder ride the same hot paths PR 1's recorder
// does, so their *disabled* cost must stay within noise of the
// recorder-off baseline. Rows pair each path off/on: the hypercall gate
// with no observation vs the profiling interceptor attached, the recorder
// instant with the flight rings disarmed vs armed, and the raw profiler
// charge hook both ways. Written to BENCH_obs_overhead.json (schema
// checked by tools/lint.py) so regressions in the one-predicted-branch
// discipline show up in the perf trajectory, not in code review.
#include <benchmark/benchmark.h>

#include "arch/platform.h"
#include "gbench_json.h"
#include "hafnium/intercept.h"
#include "hafnium/spm.h"
#include "obs/flight.h"
#include "obs/profiler.h"
#include "obs/recorder.h"

namespace {

using namespace hpcsec;
using hafnium::Call;

struct SpmBench {
    arch::Platform platform;
    hafnium::Spm spm;

    explicit SpmBench(bool profile = false)
        : platform(make_config(profile)), spm(platform, make_manifest()) {
        spm.boot();
    }

    static arch::PlatformConfig make_config(bool profile) {
        arch::PlatformConfig c = arch::PlatformConfig::pine_a64();
        c.profile = profile;
        return c;
    }

    static hafnium::Manifest make_manifest() {
        hafnium::Manifest m;
        hafnium::VmSpec p;
        p.name = "primary";
        p.role = hafnium::VmRole::kPrimary;
        p.mem_bytes = 64ull << 20;
        p.vcpu_count = 4;
        hafnium::VmSpec s;
        s.name = "compute";
        s.role = hafnium::VmRole::kSecondary;
        s.mem_bytes = 64ull << 20;
        s.vcpu_count = 4;
        m.vms = {p, s};
        return m;
    }
};

// PR 1's recorder-off baseline shape: bare gate, empty interceptor chain,
// recorder mask 0, profiler disabled, flight disarmed. Every observability
// hook added since is compiled in — this row measures their off-mode sum.
void BM_HypercallRecorderOff(benchmark::State& state) {
    SpmBench b;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            b.spm.hypercall(0, 1, Call::kVmGetInfo, {2, 0, 0, 0}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HypercallRecorderOff);

// Profiler armed + ProfilingInterceptor attached: the opt-in cost.
void BM_HypercallProfileOn(benchmark::State& state) {
    SpmBench b(/*profile=*/true);
    hafnium::ProfilingInterceptor profiling(b.platform);
    b.spm.attach_interceptor(&profiling);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            b.spm.hypercall(0, 1, Call::kVmGetInfo, {2, 0, 0, 0}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HypercallProfileOn);

// Recorder instant with everything off: must stay one predicted branch
// (the (mask_ | flight_mask_) combined gate).
void BM_RecorderInstantOff(benchmark::State& state) {
    obs::SpanRecorder rec;
    sim::SimTime t = 0;
    for (auto _ : state) {
        rec.instant(++t, obs::EventType::kHypercall, 0, 1, 2);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecorderInstantOff);

// Same instant with the flight rings armed: O(1) ring overwrite per event,
// retained set still empty (mask 0).
void BM_RecorderInstantFlightOn(benchmark::State& state) {
    obs::SpanRecorder rec;
    obs::FlightRecorder flight;
    flight.arm(/*ncores=*/4, /*depth=*/256);
    rec.set_flight(&flight);
    sim::SimTime t = 0;
    for (auto _ : state) {
        rec.instant(++t, obs::EventType::kHypercall, 0, 1, 2);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["recorded"] = static_cast<double>(flight.total_recorded());
}
BENCHMARK(BM_RecorderInstantFlightOn);

// The raw profiler charge hook, disabled: one predicted branch.
void BM_ProfilerChargeOff(benchmark::State& state) {
    obs::CycleProfiler prof;
    for (auto _ : state) {
        prof.charge(0, obs::ProfPath::kWorldSwitch, 2600);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerChargeOff);

void BM_ProfilerChargeOn(benchmark::State& state) {
    obs::CycleProfiler prof;
    prof.enable(/*ncores=*/4);
    for (auto _ : state) {
        prof.charge(0, obs::ProfPath::kWorldSwitch, 2600);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerChargeOn);

}  // namespace

int main(int argc, char** argv) {
    return hpcsec::benchutil::run_and_report("obs_overhead", argc, argv);
}
