// Integrity-tag overhead micro-benchmarks (google-benchmark).
//
// ISSUE acceptance: with no frame tagged, every translate / guest-memory
// path must sit at its pre-tag floor — the whole feature behind one
// predicted branch (`MemoryMap::has_integrity_tags`). These benches pin
// that floor next to the armed-but-clean cost (tags exist, target frame is
// not tagged: one hash-set probe) and the violation cost (tagged frame hit:
// fault construction, stats, event record), host-side, alongside
// BENCH_micro_paths' untouched baselines.
#include <benchmark/benchmark.h>

#include "arch/mmu.h"
#include "arch/platform.h"
#include "check/corrupt.h"
#include "gbench_json.h"
#include "hafnium/spm.h"

namespace {

using namespace hpcsec;

// --- MMU translate paths -----------------------------------------------------

struct MmuBench {
    arch::MemoryMap mem;
    arch::PageTable s1;
    arch::Mmu mmu{mem};

    MmuBench() {
        mem.add_region({"ram", 0x4000'0000, 1ull << 30, arch::RegionKind::kRam,
                        arch::World::kNonSecure});
        s1.map(0, 0x4000'0000, 1ull << 20, arch::kPermRW);
        // A guest VMID: the hypervisor itself (kHypervisorId) is exempt from
        // tag checks and would measure the floor even with tags armed.
        mmu.set_context(&s1, nullptr, /*vmid=*/1, /*asid=*/1,
                        arch::World::kNonSecure);
        (void)mmu.translate(0, arch::Access::kRead);
    }
};

// Floor: not a single tagged frame in the map — the tags-off hot path.
void BM_TranslateTagsOff(benchmark::State& state) {
    MmuBench b;
    for (auto _ : state) {
        benchmark::DoNotOptimize(b.mmu.translate(0x40, arch::Access::kRead));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranslateTagsOff);

// Armed but clean: tags exist elsewhere, the accessed frame is untagged.
// Adds one hash-set probe to the L0-hit path.
void BM_TranslateTagsArmedClean(benchmark::State& state) {
    MmuBench b;
    b.mem.set_integrity_tag(0x4000'0000 + (512ull << 12), 1, true);
    (void)b.mmu.translate(0, arch::Access::kRead);  // refill after shootdown
    for (auto _ : state) {
        benchmark::DoNotOptimize(b.mmu.translate(0x40, arch::Access::kRead));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranslateTagsArmedClean);

// Violation: every translate resolves onto a tagged frame and faults.
void BM_TranslateTagViolation(benchmark::State& state) {
    MmuBench b;
    b.mem.set_integrity_tag(0x4000'0000, 1, true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(b.mmu.translate(0x40, arch::Access::kRead));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranslateTagViolation);

// --- SPM guest-memory paths --------------------------------------------------

struct SpmBench {
    arch::Platform platform{arch::PlatformConfig::pine_a64()};
    hafnium::Spm spm;

    SpmBench() : spm(platform, make_manifest()) { spm.boot(); }

    static hafnium::Manifest make_manifest() {
        hafnium::Manifest m;
        hafnium::VmSpec p;
        p.name = "primary";
        p.role = hafnium::VmRole::kPrimary;
        p.mem_bytes = 64ull << 20;
        p.vcpu_count = 4;
        hafnium::VmSpec s;
        s.name = "compute";
        s.role = hafnium::VmRole::kSecondary;
        s.mem_bytes = 64ull << 20;
        s.vcpu_count = 4;
        m.vms = {p, s};
        return m;
    }
};

// Floor: critical state unprotected (the default); must match
// BENCH_micro_paths' BM_GuestFunctionalWrite.
void BM_GuestWriteTagsOff(benchmark::State& state) {
    SpmBench b;
    std::uint64_t addr = 0;
    for (auto _ : state) {
        b.spm.vm_write64(2, addr, addr);
        addr = (addr + 8) & 0xfffff;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuestWriteTagsOff);

// Armed but clean: critical state protected, guest writes its own RAM.
void BM_GuestWriteTagsArmed(benchmark::State& state) {
    SpmBench b;
    b.spm.protect_critical_state();
    std::uint64_t addr = 0;
    for (auto _ : state) {
        b.spm.vm_write64(2, addr, addr);
        addr = (addr + 8) & 0xfffff;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuestWriteTagsArmed);

// Violation: every write lands on a tagged frame through a rogue stage-2
// window — the full detect cost (stats, event record, denial).
void BM_GuestWriteViolation(benchmark::State& state) {
    SpmBench b;
    b.spm.protect_critical_state();
    const auto* region = b.spm.find_critical("manifest");
    const arch::IpaAddr window =
        check::CorruptionAccess::map_rogue_window(b.spm, 2, region->base);
    for (auto _ : state) {
        b.spm.vm_write64(2, window, 0xdeadbeef);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["violations"] =
        static_cast<double>(b.spm.stats().tag_violations);
}
BENCHMARK(BM_GuestWriteViolation);

}  // namespace

int main(int argc, char** argv) {
    return hpcsec::benchutil::run_and_report("tag_overhead", argc, argv);
}
