file(REMOVE_RECURSE
  "CMakeFiles/abl_irq_routing.dir/abl_irq_routing.cpp.o"
  "CMakeFiles/abl_irq_routing.dir/abl_irq_routing.cpp.o.d"
  "abl_irq_routing"
  "abl_irq_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_irq_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
