# Empty dependencies file for abl_irq_routing.
# This may be replaced when dependencies are built.
