file(REMOVE_RECURSE
  "CMakeFiles/abl_noise.dir/abl_noise.cpp.o"
  "CMakeFiles/abl_noise.dir/abl_noise.cpp.o.d"
  "abl_noise"
  "abl_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
