# Empty dependencies file for abl_scale.
# This may be replaced when dependencies are built.
