file(REMOVE_RECURSE
  "CMakeFiles/abl_secure_world.dir/abl_secure_world.cpp.o"
  "CMakeFiles/abl_secure_world.dir/abl_secure_world.cpp.o.d"
  "abl_secure_world"
  "abl_secure_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_secure_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
