# Empty dependencies file for abl_secure_world.
# This may be replaced when dependencies are built.
