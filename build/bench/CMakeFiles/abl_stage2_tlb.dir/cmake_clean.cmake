file(REMOVE_RECURSE
  "CMakeFiles/abl_stage2_tlb.dir/abl_stage2_tlb.cpp.o"
  "CMakeFiles/abl_stage2_tlb.dir/abl_stage2_tlb.cpp.o.d"
  "abl_stage2_tlb"
  "abl_stage2_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_stage2_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
