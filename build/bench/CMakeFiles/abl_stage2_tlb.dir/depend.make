# Empty dependencies file for abl_stage2_tlb.
# This may be replaced when dependencies are built.
