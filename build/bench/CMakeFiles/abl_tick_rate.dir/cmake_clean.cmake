file(REMOVE_RECURSE
  "CMakeFiles/abl_tick_rate.dir/abl_tick_rate.cpp.o"
  "CMakeFiles/abl_tick_rate.dir/abl_tick_rate.cpp.o.d"
  "abl_tick_rate"
  "abl_tick_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tick_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
