# Empty dependencies file for abl_tick_rate.
# This may be replaced when dependencies are built.
