file(REMOVE_RECURSE
  "CMakeFiles/fig04_06_selfish.dir/fig04_06_selfish.cpp.o"
  "CMakeFiles/fig04_06_selfish.dir/fig04_06_selfish.cpp.o.d"
  "fig04_06_selfish"
  "fig04_06_selfish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_06_selfish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
