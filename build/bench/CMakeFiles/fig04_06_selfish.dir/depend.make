# Empty dependencies file for fig04_06_selfish.
# This may be replaced when dependencies are built.
