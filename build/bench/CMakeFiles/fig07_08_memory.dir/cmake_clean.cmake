file(REMOVE_RECURSE
  "CMakeFiles/fig07_08_memory.dir/fig07_08_memory.cpp.o"
  "CMakeFiles/fig07_08_memory.dir/fig07_08_memory.cpp.o.d"
  "fig07_08_memory"
  "fig07_08_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_08_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
