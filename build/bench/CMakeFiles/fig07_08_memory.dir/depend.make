# Empty dependencies file for fig07_08_memory.
# This may be replaced when dependencies are built.
