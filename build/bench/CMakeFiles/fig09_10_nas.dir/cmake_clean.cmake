file(REMOVE_RECURSE
  "CMakeFiles/fig09_10_nas.dir/fig09_10_nas.cpp.o"
  "CMakeFiles/fig09_10_nas.dir/fig09_10_nas.cpp.o.d"
  "fig09_10_nas"
  "fig09_10_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_10_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
