file(REMOVE_RECURSE
  "CMakeFiles/dynamic_partition.dir/dynamic_partition.cpp.o"
  "CMakeFiles/dynamic_partition.dir/dynamic_partition.cpp.o.d"
  "dynamic_partition"
  "dynamic_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
