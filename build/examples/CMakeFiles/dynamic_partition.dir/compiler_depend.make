# Empty compiler generated dependencies file for dynamic_partition.
# This may be replaced when dependencies are built.
