file(REMOVE_RECURSE
  "CMakeFiles/hpcsec_cli.dir/hpcsec_cli.cpp.o"
  "CMakeFiles/hpcsec_cli.dir/hpcsec_cli.cpp.o.d"
  "hpcsec_cli"
  "hpcsec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
