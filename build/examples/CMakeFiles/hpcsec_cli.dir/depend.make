# Empty dependencies file for hpcsec_cli.
# This may be replaced when dependencies are built.
