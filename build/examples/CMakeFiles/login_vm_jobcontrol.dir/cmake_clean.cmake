file(REMOVE_RECURSE
  "CMakeFiles/login_vm_jobcontrol.dir/login_vm_jobcontrol.cpp.o"
  "CMakeFiles/login_vm_jobcontrol.dir/login_vm_jobcontrol.cpp.o.d"
  "login_vm_jobcontrol"
  "login_vm_jobcontrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/login_vm_jobcontrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
