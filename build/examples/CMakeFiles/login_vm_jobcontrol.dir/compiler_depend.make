# Empty compiler generated dependencies file for login_vm_jobcontrol.
# This may be replaced when dependencies are built.
