file(REMOVE_RECURSE
  "CMakeFiles/measured_boot.dir/measured_boot.cpp.o"
  "CMakeFiles/measured_boot.dir/measured_boot.cpp.o.d"
  "measured_boot"
  "measured_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measured_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
