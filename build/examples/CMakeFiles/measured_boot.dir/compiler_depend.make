# Empty compiler generated dependencies file for measured_boot.
# This may be replaced when dependencies are built.
