file(REMOVE_RECURSE
  "CMakeFiles/noise_comparison.dir/noise_comparison.cpp.o"
  "CMakeFiles/noise_comparison.dir/noise_comparison.cpp.o.d"
  "noise_comparison"
  "noise_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
