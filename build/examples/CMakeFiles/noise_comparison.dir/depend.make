# Empty dependencies file for noise_comparison.
# This may be replaced when dependencies are built.
