
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cache.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/cache.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/cache.cpp.o.d"
  "/root/repo/src/arch/core.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/core.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/core.cpp.o.d"
  "/root/repo/src/arch/devicetree.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/devicetree.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/devicetree.cpp.o.d"
  "/root/repo/src/arch/exec.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/exec.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/exec.cpp.o.d"
  "/root/repo/src/arch/gic.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/gic.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/gic.cpp.o.d"
  "/root/repo/src/arch/memory_map.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/memory_map.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/memory_map.cpp.o.d"
  "/root/repo/src/arch/mmu.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/mmu.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/mmu.cpp.o.d"
  "/root/repo/src/arch/monitor.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/monitor.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/monitor.cpp.o.d"
  "/root/repo/src/arch/page_table.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/page_table.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/page_table.cpp.o.d"
  "/root/repo/src/arch/platform.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/platform.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/platform.cpp.o.d"
  "/root/repo/src/arch/timer.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/timer.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/timer.cpp.o.d"
  "/root/repo/src/arch/tlb.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/tlb.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/tlb.cpp.o.d"
  "/root/repo/src/arch/types.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/types.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/types.cpp.o.d"
  "/root/repo/src/arch/uart.cpp" "src/arch/CMakeFiles/hpcsec_arch.dir/uart.cpp.o" "gcc" "src/arch/CMakeFiles/hpcsec_arch.dir/uart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpcsec_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
