file(REMOVE_RECURSE
  "CMakeFiles/hpcsec_arch.dir/cache.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/cache.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/core.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/core.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/devicetree.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/devicetree.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/exec.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/exec.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/gic.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/gic.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/memory_map.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/memory_map.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/mmu.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/mmu.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/monitor.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/monitor.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/page_table.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/page_table.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/platform.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/platform.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/timer.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/timer.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/tlb.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/tlb.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/types.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/types.cpp.o.d"
  "CMakeFiles/hpcsec_arch.dir/uart.cpp.o"
  "CMakeFiles/hpcsec_arch.dir/uart.cpp.o.d"
  "libhpcsec_arch.a"
  "libhpcsec_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsec_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
