file(REMOVE_RECURSE
  "libhpcsec_arch.a"
)
