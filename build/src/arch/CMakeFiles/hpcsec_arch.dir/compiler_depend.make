# Empty compiler generated dependencies file for hpcsec_arch.
# This may be replaced when dependencies are built.
