file(REMOVE_RECURSE
  "CMakeFiles/hpcsec_cluster.dir/scale_model.cpp.o"
  "CMakeFiles/hpcsec_cluster.dir/scale_model.cpp.o.d"
  "CMakeFiles/hpcsec_cluster.dir/trace_collect.cpp.o"
  "CMakeFiles/hpcsec_cluster.dir/trace_collect.cpp.o.d"
  "libhpcsec_cluster.a"
  "libhpcsec_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsec_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
