file(REMOVE_RECURSE
  "libhpcsec_cluster.a"
)
