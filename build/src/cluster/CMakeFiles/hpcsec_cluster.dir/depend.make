# Empty dependencies file for hpcsec_cluster.
# This may be replaced when dependencies are built.
