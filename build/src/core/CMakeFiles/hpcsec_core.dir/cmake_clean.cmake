file(REMOVE_RECURSE
  "CMakeFiles/hpcsec_core.dir/attest.cpp.o"
  "CMakeFiles/hpcsec_core.dir/attest.cpp.o.d"
  "CMakeFiles/hpcsec_core.dir/harness.cpp.o"
  "CMakeFiles/hpcsec_core.dir/harness.cpp.o.d"
  "CMakeFiles/hpcsec_core.dir/jobproto.cpp.o"
  "CMakeFiles/hpcsec_core.dir/jobproto.cpp.o.d"
  "CMakeFiles/hpcsec_core.dir/jobs.cpp.o"
  "CMakeFiles/hpcsec_core.dir/jobs.cpp.o.d"
  "CMakeFiles/hpcsec_core.dir/node.cpp.o"
  "CMakeFiles/hpcsec_core.dir/node.cpp.o.d"
  "CMakeFiles/hpcsec_core.dir/signature.cpp.o"
  "CMakeFiles/hpcsec_core.dir/signature.cpp.o.d"
  "libhpcsec_core.a"
  "libhpcsec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
