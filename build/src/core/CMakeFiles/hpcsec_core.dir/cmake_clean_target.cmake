file(REMOVE_RECURSE
  "libhpcsec_core.a"
)
