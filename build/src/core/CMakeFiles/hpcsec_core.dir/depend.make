# Empty dependencies file for hpcsec_core.
# This may be replaced when dependencies are built.
