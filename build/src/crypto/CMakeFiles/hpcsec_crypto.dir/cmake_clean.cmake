file(REMOVE_RECURSE
  "CMakeFiles/hpcsec_crypto.dir/lamport.cpp.o"
  "CMakeFiles/hpcsec_crypto.dir/lamport.cpp.o.d"
  "CMakeFiles/hpcsec_crypto.dir/sha256.cpp.o"
  "CMakeFiles/hpcsec_crypto.dir/sha256.cpp.o.d"
  "libhpcsec_crypto.a"
  "libhpcsec_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsec_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
