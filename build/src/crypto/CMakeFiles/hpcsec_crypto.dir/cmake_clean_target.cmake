file(REMOVE_RECURSE
  "libhpcsec_crypto.a"
)
