# Empty dependencies file for hpcsec_crypto.
# This may be replaced when dependencies are built.
