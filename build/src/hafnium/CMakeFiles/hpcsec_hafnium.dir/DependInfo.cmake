
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hafnium/hypercall.cpp" "src/hafnium/CMakeFiles/hpcsec_hafnium.dir/hypercall.cpp.o" "gcc" "src/hafnium/CMakeFiles/hpcsec_hafnium.dir/hypercall.cpp.o.d"
  "/root/repo/src/hafnium/manifest.cpp" "src/hafnium/CMakeFiles/hpcsec_hafnium.dir/manifest.cpp.o" "gcc" "src/hafnium/CMakeFiles/hpcsec_hafnium.dir/manifest.cpp.o.d"
  "/root/repo/src/hafnium/spm.cpp" "src/hafnium/CMakeFiles/hpcsec_hafnium.dir/spm.cpp.o" "gcc" "src/hafnium/CMakeFiles/hpcsec_hafnium.dir/spm.cpp.o.d"
  "/root/repo/src/hafnium/vm.cpp" "src/hafnium/CMakeFiles/hpcsec_hafnium.dir/vm.cpp.o" "gcc" "src/hafnium/CMakeFiles/hpcsec_hafnium.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/hpcsec_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hpcsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcsec_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
