file(REMOVE_RECURSE
  "CMakeFiles/hpcsec_hafnium.dir/hypercall.cpp.o"
  "CMakeFiles/hpcsec_hafnium.dir/hypercall.cpp.o.d"
  "CMakeFiles/hpcsec_hafnium.dir/manifest.cpp.o"
  "CMakeFiles/hpcsec_hafnium.dir/manifest.cpp.o.d"
  "CMakeFiles/hpcsec_hafnium.dir/spm.cpp.o"
  "CMakeFiles/hpcsec_hafnium.dir/spm.cpp.o.d"
  "CMakeFiles/hpcsec_hafnium.dir/vm.cpp.o"
  "CMakeFiles/hpcsec_hafnium.dir/vm.cpp.o.d"
  "libhpcsec_hafnium.a"
  "libhpcsec_hafnium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsec_hafnium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
