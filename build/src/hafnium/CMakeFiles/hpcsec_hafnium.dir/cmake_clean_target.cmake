file(REMOVE_RECURSE
  "libhpcsec_hafnium.a"
)
