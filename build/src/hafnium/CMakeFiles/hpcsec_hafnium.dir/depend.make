# Empty dependencies file for hpcsec_hafnium.
# This may be replaced when dependencies are built.
