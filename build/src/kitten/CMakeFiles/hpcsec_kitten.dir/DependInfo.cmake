
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kitten/aspace.cpp" "src/kitten/CMakeFiles/hpcsec_kitten.dir/aspace.cpp.o" "gcc" "src/kitten/CMakeFiles/hpcsec_kitten.dir/aspace.cpp.o.d"
  "/root/repo/src/kitten/buddy.cpp" "src/kitten/CMakeFiles/hpcsec_kitten.dir/buddy.cpp.o" "gcc" "src/kitten/CMakeFiles/hpcsec_kitten.dir/buddy.cpp.o.d"
  "/root/repo/src/kitten/guest.cpp" "src/kitten/CMakeFiles/hpcsec_kitten.dir/guest.cpp.o" "gcc" "src/kitten/CMakeFiles/hpcsec_kitten.dir/guest.cpp.o.d"
  "/root/repo/src/kitten/kitten.cpp" "src/kitten/CMakeFiles/hpcsec_kitten.dir/kitten.cpp.o" "gcc" "src/kitten/CMakeFiles/hpcsec_kitten.dir/kitten.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hafnium/CMakeFiles/hpcsec_hafnium.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hpcsec_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcsec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hpcsec_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
