file(REMOVE_RECURSE
  "CMakeFiles/hpcsec_kitten.dir/aspace.cpp.o"
  "CMakeFiles/hpcsec_kitten.dir/aspace.cpp.o.d"
  "CMakeFiles/hpcsec_kitten.dir/buddy.cpp.o"
  "CMakeFiles/hpcsec_kitten.dir/buddy.cpp.o.d"
  "CMakeFiles/hpcsec_kitten.dir/guest.cpp.o"
  "CMakeFiles/hpcsec_kitten.dir/guest.cpp.o.d"
  "CMakeFiles/hpcsec_kitten.dir/kitten.cpp.o"
  "CMakeFiles/hpcsec_kitten.dir/kitten.cpp.o.d"
  "libhpcsec_kitten.a"
  "libhpcsec_kitten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsec_kitten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
