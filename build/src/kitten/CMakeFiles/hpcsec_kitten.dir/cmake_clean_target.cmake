file(REMOVE_RECURSE
  "libhpcsec_kitten.a"
)
