# Empty dependencies file for hpcsec_kitten.
# This may be replaced when dependencies are built.
