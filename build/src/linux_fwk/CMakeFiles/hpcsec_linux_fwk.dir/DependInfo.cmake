
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linux_fwk/cfs.cpp" "src/linux_fwk/CMakeFiles/hpcsec_linux_fwk.dir/cfs.cpp.o" "gcc" "src/linux_fwk/CMakeFiles/hpcsec_linux_fwk.dir/cfs.cpp.o.d"
  "/root/repo/src/linux_fwk/guest.cpp" "src/linux_fwk/CMakeFiles/hpcsec_linux_fwk.dir/guest.cpp.o" "gcc" "src/linux_fwk/CMakeFiles/hpcsec_linux_fwk.dir/guest.cpp.o.d"
  "/root/repo/src/linux_fwk/linux.cpp" "src/linux_fwk/CMakeFiles/hpcsec_linux_fwk.dir/linux.cpp.o" "gcc" "src/linux_fwk/CMakeFiles/hpcsec_linux_fwk.dir/linux.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hafnium/CMakeFiles/hpcsec_hafnium.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hpcsec_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcsec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hpcsec_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
