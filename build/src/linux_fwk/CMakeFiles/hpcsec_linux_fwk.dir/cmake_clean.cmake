file(REMOVE_RECURSE
  "CMakeFiles/hpcsec_linux_fwk.dir/cfs.cpp.o"
  "CMakeFiles/hpcsec_linux_fwk.dir/cfs.cpp.o.d"
  "CMakeFiles/hpcsec_linux_fwk.dir/guest.cpp.o"
  "CMakeFiles/hpcsec_linux_fwk.dir/guest.cpp.o.d"
  "CMakeFiles/hpcsec_linux_fwk.dir/linux.cpp.o"
  "CMakeFiles/hpcsec_linux_fwk.dir/linux.cpp.o.d"
  "libhpcsec_linux_fwk.a"
  "libhpcsec_linux_fwk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsec_linux_fwk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
