file(REMOVE_RECURSE
  "libhpcsec_linux_fwk.a"
)
