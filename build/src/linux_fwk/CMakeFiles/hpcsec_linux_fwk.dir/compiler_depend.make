# Empty compiler generated dependencies file for hpcsec_linux_fwk.
# This may be replaced when dependencies are built.
