# CMake generated Testfile for 
# Source directory: /root/repo/src/linux_fwk
# Build directory: /root/repo/build/src/linux_fwk
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
