file(REMOVE_RECURSE
  "CMakeFiles/hpcsec_sim.dir/engine.cpp.o"
  "CMakeFiles/hpcsec_sim.dir/engine.cpp.o.d"
  "CMakeFiles/hpcsec_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hpcsec_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/hpcsec_sim.dir/rng.cpp.o"
  "CMakeFiles/hpcsec_sim.dir/rng.cpp.o.d"
  "CMakeFiles/hpcsec_sim.dir/stats.cpp.o"
  "CMakeFiles/hpcsec_sim.dir/stats.cpp.o.d"
  "CMakeFiles/hpcsec_sim.dir/timeline.cpp.o"
  "CMakeFiles/hpcsec_sim.dir/timeline.cpp.o.d"
  "CMakeFiles/hpcsec_sim.dir/trace.cpp.o"
  "CMakeFiles/hpcsec_sim.dir/trace.cpp.o.d"
  "libhpcsec_sim.a"
  "libhpcsec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
