file(REMOVE_RECURSE
  "libhpcsec_sim.a"
)
