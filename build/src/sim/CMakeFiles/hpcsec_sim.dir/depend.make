# Empty dependencies file for hpcsec_sim.
# This may be replaced when dependencies are built.
