
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/hpcg.cpp" "src/workloads/CMakeFiles/hpcsec_workloads.dir/hpcg.cpp.o" "gcc" "src/workloads/CMakeFiles/hpcsec_workloads.dir/hpcg.cpp.o.d"
  "/root/repo/src/workloads/nas.cpp" "src/workloads/CMakeFiles/hpcsec_workloads.dir/nas.cpp.o" "gcc" "src/workloads/CMakeFiles/hpcsec_workloads.dir/nas.cpp.o.d"
  "/root/repo/src/workloads/randomaccess.cpp" "src/workloads/CMakeFiles/hpcsec_workloads.dir/randomaccess.cpp.o" "gcc" "src/workloads/CMakeFiles/hpcsec_workloads.dir/randomaccess.cpp.o.d"
  "/root/repo/src/workloads/selfish.cpp" "src/workloads/CMakeFiles/hpcsec_workloads.dir/selfish.cpp.o" "gcc" "src/workloads/CMakeFiles/hpcsec_workloads.dir/selfish.cpp.o.d"
  "/root/repo/src/workloads/stream.cpp" "src/workloads/CMakeFiles/hpcsec_workloads.dir/stream.cpp.o" "gcc" "src/workloads/CMakeFiles/hpcsec_workloads.dir/stream.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/hpcsec_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/hpcsec_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/hpcsec_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcsec_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
