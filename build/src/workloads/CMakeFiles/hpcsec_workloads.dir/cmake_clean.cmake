file(REMOVE_RECURSE
  "CMakeFiles/hpcsec_workloads.dir/hpcg.cpp.o"
  "CMakeFiles/hpcsec_workloads.dir/hpcg.cpp.o.d"
  "CMakeFiles/hpcsec_workloads.dir/nas.cpp.o"
  "CMakeFiles/hpcsec_workloads.dir/nas.cpp.o.d"
  "CMakeFiles/hpcsec_workloads.dir/randomaccess.cpp.o"
  "CMakeFiles/hpcsec_workloads.dir/randomaccess.cpp.o.d"
  "CMakeFiles/hpcsec_workloads.dir/selfish.cpp.o"
  "CMakeFiles/hpcsec_workloads.dir/selfish.cpp.o.d"
  "CMakeFiles/hpcsec_workloads.dir/stream.cpp.o"
  "CMakeFiles/hpcsec_workloads.dir/stream.cpp.o.d"
  "CMakeFiles/hpcsec_workloads.dir/workload.cpp.o"
  "CMakeFiles/hpcsec_workloads.dir/workload.cpp.o.d"
  "libhpcsec_workloads.a"
  "libhpcsec_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcsec_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
