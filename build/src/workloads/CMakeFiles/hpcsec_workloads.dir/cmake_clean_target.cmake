file(REMOVE_RECURSE
  "libhpcsec_workloads.a"
)
