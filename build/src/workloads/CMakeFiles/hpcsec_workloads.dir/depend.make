# Empty dependencies file for hpcsec_workloads.
# This may be replaced when dependencies are built.
