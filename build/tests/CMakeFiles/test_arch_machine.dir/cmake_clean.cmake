file(REMOVE_RECURSE
  "CMakeFiles/test_arch_machine.dir/test_arch_machine.cpp.o"
  "CMakeFiles/test_arch_machine.dir/test_arch_machine.cpp.o.d"
  "test_arch_machine"
  "test_arch_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
