# Empty dependencies file for test_arch_machine.
# This may be replaced when dependencies are built.
