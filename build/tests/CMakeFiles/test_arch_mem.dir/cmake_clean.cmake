file(REMOVE_RECURSE
  "CMakeFiles/test_arch_mem.dir/test_arch_mem.cpp.o"
  "CMakeFiles/test_arch_mem.dir/test_arch_mem.cpp.o.d"
  "test_arch_mem"
  "test_arch_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
