# Empty dependencies file for test_arch_mem.
# This may be replaced when dependencies are built.
