file(REMOVE_RECURSE
  "CMakeFiles/test_guest_sched.dir/test_guest_sched.cpp.o"
  "CMakeFiles/test_guest_sched.dir/test_guest_sched.cpp.o.d"
  "test_guest_sched"
  "test_guest_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guest_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
