# Empty dependencies file for test_guest_sched.
# This may be replaced when dependencies are built.
