file(REMOVE_RECURSE
  "CMakeFiles/test_hafnium.dir/test_hafnium.cpp.o"
  "CMakeFiles/test_hafnium.dir/test_hafnium.cpp.o.d"
  "test_hafnium"
  "test_hafnium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hafnium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
