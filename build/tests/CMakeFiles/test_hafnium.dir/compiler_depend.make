# Empty compiler generated dependencies file for test_hafnium.
# This may be replaced when dependencies are built.
