file(REMOVE_RECURSE
  "CMakeFiles/test_kitten.dir/test_kitten.cpp.o"
  "CMakeFiles/test_kitten.dir/test_kitten.cpp.o.d"
  "test_kitten"
  "test_kitten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kitten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
