# Empty dependencies file for test_kitten.
# This may be replaced when dependencies are built.
