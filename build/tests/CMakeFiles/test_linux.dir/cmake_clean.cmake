file(REMOVE_RECURSE
  "CMakeFiles/test_linux.dir/test_linux.cpp.o"
  "CMakeFiles/test_linux.dir/test_linux.cpp.o.d"
  "test_linux"
  "test_linux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
