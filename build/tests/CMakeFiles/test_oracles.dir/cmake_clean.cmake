file(REMOVE_RECURSE
  "CMakeFiles/test_oracles.dir/test_oracles.cpp.o"
  "CMakeFiles/test_oracles.dir/test_oracles.cpp.o.d"
  "test_oracles"
  "test_oracles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
