
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/test_stress.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/test_stress.dir/test_stress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hpcsec_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpcsec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hpcsec_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/kitten/CMakeFiles/hpcsec_kitten.dir/DependInfo.cmake"
  "/root/repo/build/src/linux_fwk/CMakeFiles/hpcsec_linux_fwk.dir/DependInfo.cmake"
  "/root/repo/build/src/hafnium/CMakeFiles/hpcsec_hafnium.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hpcsec_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hpcsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcsec_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
