// Dynamic partitioning: the paper's §VII future-work design, working.
//
// Hafnium-as-shipped requires every partition to exist at boot. This
// example shows the extension this library implements on top: signed VM
// images launched at runtime, verified against keys provisioned into the
// trusted boot sequence, measured into a runtime attestation register, and
// torn down with their memory scrubbed and reclaimed.
#include <cstdio>

#include "core/harness.h"
#include "core/node.h"
#include "core/signature.h"
#include "workloads/nas.h"

int main() {
    using namespace hpcsec;

    // Provisioning: three one-time signing keys (one per launchable image).
    core::ImageSigner key_a(std::vector<std::uint8_t>(32, 0xa1));
    core::ImageSigner key_b(std::vector<std::uint8_t>(32, 0xb2));
    core::ImageSigner key_evil(std::vector<std::uint8_t>(32, 0xee));

    core::NodeConfig cfg =
        core::Harness::default_config(core::SchedulerKind::kKittenPrimary, 2026);
    cfg.trusted_keys = {key_a.public_key(), key_b.public_key()};
    cfg.verify_signatures = false;
    core::Node node(cfg);
    node.boot();
    node.verifier().enroll(key_a.public_key());
    node.verifier().enroll(key_b.public_key());
    // key_evil is deliberately NOT enrolled.

    const auto frames0 = node.platform().mem().allocated_frames();
    std::printf("booted with %d VMs, %llu frames allocated\n\n",
                node.spm()->vm_count(),
                static_cast<unsigned long long>(frames0));

    // 1. Launch a signed batch job at runtime and run NAS CG in it.
    auto img_a = key_a.sign("batch-cg", core::Node::make_image("batch-cg"));
    const arch::VmId job = node.launch_dynamic_vm(*img_a, 128ull << 20, 4);
    std::printf("launched 'batch-cg' as vm%d (%d vcpus, 128 MiB)\n", job,
                node.spm()->vm(job).vcpu_count());

    wl::WorkloadSpec spec = wl::nas_cg_spec();
    spec.units_per_thread_step /= 4;
    wl::ParallelWorkload cg(spec);
    const double secs = node.run_workload_on(job, cg);
    std::printf("  NAS CG inside the dynamic partition: %.2f Mop/s in %.2f s\n",
                cg.score(secs), secs);

    // 2. An image signed with an unenrolled key is refused.
    auto img_evil = key_evil.sign("trojan", core::Node::make_image("trojan"));
    try {
        node.launch_dynamic_vm(*img_evil, 64ull << 20, 1);
        std::printf("\ntrojan launched — BUG!\n");
    } catch (const std::exception& e) {
        std::printf("\nunenrolled image refused: %s\n", e.what());
    }

    // 3. Tear the job down; memory is scrubbed and reclaimed.
    node.destroy_dynamic_vm(job);
    std::printf("\ndestroyed vm%d; frames back to %llu (started at %llu)\n", job,
                static_cast<unsigned long long>(node.platform().mem().allocated_frames()),
                static_cast<unsigned long long>(frames0));

    // 4. The attestation log records the runtime launch forever.
    std::printf("\nruntime attestation log entries:\n");
    for (const auto& stage : node.attestation().log()) {
        if (stage.name.rfind("runtime:", 0) == 0) {
            std::printf("  %-24s %.16s...\n", stage.name.c_str(),
                        crypto::to_hex(stage.measurement).c_str());
        }
    }

    // 5. Reuse the freed memory for the next signed job.
    auto img_b = key_b.sign("batch-lu", core::Node::make_image("batch-lu"));
    const arch::VmId job2 = node.launch_dynamic_vm(*img_b, 128ull << 20, 4);
    std::printf("\nrelaunched as vm%d at PA %#llx (window reused: %s)\n", job2,
                static_cast<unsigned long long>(node.spm()->vm(job2).mem_base),
                node.spm()->vm(job2).mem_base == node.spm()->vm(job).mem_base
                    ? "yes"
                    : "no");
    return 0;
}
