// hpcsec_cli — run any paper workload on any node configuration from the
// command line.
//
//   hpcsec_cli [--workload hpcg|stream|gups|lu|bt|cg|ep|sp|selfish]
//              [--config native|kitten|linux] [--trials N] [--seed S]
//              [--seconds S]            (selfish duration)
//              [--super-secondary] [--secure] [--selective-routing]
//              [--tick-hz HZ]           (primary tick rate override)
//
// Examples:
//   hpcsec_cli --workload gups --config linux --trials 5
//   hpcsec_cli --workload selfish --config kitten --seconds 30
//   hpcsec_cli --workload lu --config kitten --secure
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/harness.h"
#include "workloads/hpcg.h"
#include "workloads/nas.h"
#include "workloads/randomaccess.h"
#include "workloads/stream.h"

namespace {

using namespace hpcsec;

struct CliOptions {
    std::string workload = "hpcg";
    std::string config = "kitten";
    int trials = 3;
    std::uint64_t seed = 42;
    double seconds = 10.0;
    bool super_secondary = false;
    bool secure = false;
    bool selective = false;
    double tick_hz = 0.0;  // 0 = default
};

void usage() {
    std::fprintf(stderr,
                 "usage: hpcsec_cli [--workload hpcg|stream|gups|lu|bt|cg|ep|sp|"
                 "selfish]\n                  [--config native|kitten|linux] "
                 "[--trials N] [--seed S]\n                  [--seconds S] "
                 "[--super-secondary] [--secure]\n                  "
                 "[--selective-routing] [--tick-hz HZ]\n");
}

bool parse(int argc, char** argv, CliOptions& opt) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--workload") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.workload = v;
        } else if (arg == "--config") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.config = v;
        } else if (arg == "--trials") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.trials = std::atoi(v);
        } else if (arg == "--seed") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--seconds") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.seconds = std::atof(v);
        } else if (arg == "--tick-hz") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.tick_hz = std::atof(v);
        } else if (arg == "--super-secondary") {
            opt.super_secondary = true;
        } else if (arg == "--secure") {
            opt.secure = true;
        } else if (arg == "--selective-routing") {
            opt.selective = true;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

bool pick_workload(const std::string& name, wl::WorkloadSpec& out) {
    if (name == "hpcg") out = wl::hpcg_spec();
    else if (name == "stream") out = wl::stream_spec();
    else if (name == "gups" || name == "randomaccess") out = wl::randomaccess_spec();
    else if (name == "lu") out = wl::nas_lu_spec();
    else if (name == "bt") out = wl::nas_bt_spec();
    else if (name == "cg") out = wl::nas_cg_spec();
    else if (name == "ep") out = wl::nas_ep_spec();
    else if (name == "sp") out = wl::nas_sp_spec();
    else return false;
    return true;
}

bool pick_config(const std::string& name, core::SchedulerKind& out) {
    if (name == "native") out = core::SchedulerKind::kNativeKitten;
    else if (name == "kitten") out = core::SchedulerKind::kKittenPrimary;
    else if (name == "linux") out = core::SchedulerKind::kLinuxPrimary;
    else return false;
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    CliOptions opt;
    if (!parse(argc, argv, opt)) {
        usage();
        return 2;
    }
    core::SchedulerKind kind{};
    if (!pick_config(opt.config, kind)) {
        usage();
        return 2;
    }

    auto factory = [&opt](core::SchedulerKind k, std::uint64_t seed) {
        core::NodeConfig cfg = core::Harness::default_config(k, seed);
        cfg.with_super_secondary = opt.super_secondary;
        cfg.secure_compute_vm = opt.secure;
        if (opt.selective) cfg.routing = hafnium::IrqRoutingPolicy::kSelective;
        if (opt.tick_hz > 0.0) {
            cfg.kitten.tick_hz = opt.tick_hz;
            cfg.linux.tick_hz = opt.tick_hz;
        }
        return cfg;
    };

    if (opt.workload == "selfish") {
        const core::NodeConfig cfg = factory(kind, opt.seed);
        const auto series =
            core::run_selfish_experiment(kind, opt.seconds, opt.seed, &cfg);
        std::printf("%s\n", core::format_selfish(series).c_str());
        return 0;
    }

    wl::WorkloadSpec spec;
    if (!pick_workload(opt.workload, spec)) {
        usage();
        return 2;
    }

    core::Harness::Options hopt;
    hopt.trials = opt.trials;
    hopt.base_seed = opt.seed;
    hopt.config_factory = factory;
    core::Harness harness(hopt);

    sim::RunningStats stats;
    sim::RunningStats runtime;
    for (int t = 0; t < opt.trials; ++t) {
        const auto r = harness.run_trial(
            kind, spec, opt.seed + 7919ull * static_cast<std::uint64_t>(t));
        stats.add(r.score);
        runtime.add(r.seconds);
    }
    std::printf("%s on %s (%d trial%s%s%s%s): %.6g %s (stdev %.3g), "
                "%.3f s simulated each\n",
                spec.name.c_str(), opt.config.c_str(), opt.trials,
                opt.trials == 1 ? "" : "s",
                opt.secure ? ", secure world" : "",
                opt.super_secondary ? ", login VM" : "",
                opt.selective ? ", selective routing" : "", stats.mean(),
                spec.metric.c_str(), stats.stddev(), runtime.mean());
    return 0;
}
