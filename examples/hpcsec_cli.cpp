// hpcsec_cli — run any paper workload on any node configuration from the
// command line.
//
//   hpcsec_cli [--workload hpcg|stream|gups|lu|bt|cg|ep|sp|selfish]
//              [--config native|kitten|linux] [--trials N] [--seed S]
//              [--isa arm|riscv]        (machine-model backend: ARMv8+GIC or
//                                        RISC-V H-extension+PLIC; default arm)
//              [--jobs N]               (worker threads for trial fan-out;
//                                        default = hardware threads, 1 =
//                                        legacy serial path; outputs are
//                                        bit-identical for every N)
//              [--seconds S]            (selfish duration)
//              [--super-secondary] [--secure] [--selective-routing]
//              [--tick-hz HZ]           (primary tick rate override)
//              [--trace-out FILE]       (Perfetto/Chrome trace JSON; runs all
//                                        three configs, one trial each)
//              [--metrics-out FILE]     (aggregated metrics JSON, all configs)
//              [--trace-mask CATS]      (comma list: irq,sched,hyp,vm,mmu,
//                                        workload,boot,channel,check,resil,all
//                                        — or a raw bitmask like 0x305)
//              [--profile[=FILE]]       (cycle-attribution profiler: prints a
//                                        perf-top table; FILE gets collapsed
//                                        stacks for flamegraph.pl/speedscope)
//              [--flight-depth N]       (always-on flight recorder: last N
//                                        events per core, auto-dumped on
//                                        check violations/watchdog actions)
//              [--obs-window N]         (close a windowed metrics-aggregate
//                                        snapshot every N trials)
//              [--check[=strict|sampled]]  (isolation-invariant auditor;
//                                        bare --check means strict)
//              [--check-period N]       (sampled mode: scan every N hypercalls)
//              [--call-metrics]         (per-hypercall counters: hf.call.*,
//                                        hf.call_err.* in --metrics-out)
//              [--chaos[=RATE]]         (seed-deterministic fault injection at
//                                        RATE faults/s of sim time; default 10)
//              [--restart-policy[=N]]   (heartbeat watchdog + restart engine on
//                                        the compute VM; N = restart budget)
//              [--adversary[=SHAPE]]    (memory-integrity attack suite: arms
//                                        HDFI-style tags + containment, then
//                                        runs an attacker partition; SHAPE is
//                                        heartbleed (default), vtable or srop)
//
// Examples:
//   hpcsec_cli --workload gups --config linux --trials 5
//   hpcsec_cli --workload selfish --config kitten --seconds 30
//   hpcsec_cli --workload lu --config kitten --secure
//   hpcsec_cli --workload hpcg --trace-out trace.json --metrics-out metrics.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "arch/isa.h"
#include "check/check.h"
#include "core/harness.h"
#include "core/parallel.h"
#include "hafnium/hypercall.h"
#include "obs/events.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"
#include "resil/chaos.h"
#include "resil/contain.h"
#include "resil/resil.h"
#include "workloads/attack.h"
#include "workloads/hpcg.h"
#include "workloads/nas.h"
#include "workloads/randomaccess.h"
#include "workloads/stream.h"

namespace {

using namespace hpcsec;

struct CliOptions {
    std::string workload = "hpcg";
    std::string config = "kitten";
    arch::Isa isa = arch::Isa::kArm;
    int trials = 3;
    int jobs = 0;  // 0 = one worker per hardware thread
    std::uint64_t seed = 42;
    double seconds = 10.0;
    bool super_secondary = false;
    bool secure = false;
    bool selective = false;
    double tick_hz = 0.0;  // 0 = default
    std::string trace_out;
    std::string metrics_out;
    std::string trace_mask = "irq,sched,hyp,vm,workload";
    check::Mode check_mode = check::Mode::kOff;
    int check_period = 64;
    bool call_metrics = false;
    double chaos_rate_hz = 0.0;  // 0 = off
    bool restart_policy = false;
    int restart_budget = 3;
    bool adversary = false;
    wl::AttackKind adversary_kind = wl::AttackKind::kHeartbleed;
    bool profile = false;
    std::string profile_out;       // collapsed-stack file ("" = print only)
    std::size_t flight_depth = 0;  // 0 = flight recorder disarmed
    int obs_window = 0;            // 0 = totals only
};

void usage() {
    std::fprintf(stderr,
                 "usage: hpcsec_cli [--workload hpcg|stream|gups|lu|bt|cg|ep|sp|"
                 "selfish]\n                  [--config native|kitten|linux] "
                 "[--isa arm|riscv]\n                  "
                 "[--trials N] [--jobs N] [--seed S]\n                  [--seconds S] "
                 "[--super-secondary] [--secure]\n                  "
                 "[--selective-routing] [--tick-hz HZ]\n                  "
                 "[--trace-out FILE] [--metrics-out FILE] [--trace-mask CATS]\n"
                 "                  [--check[=strict|sampled]] "
                 "[--check-period N]\n                  [--call-metrics] "
                 "[--chaos[=RATE]] [--restart-policy[=N]]\n"
                 "                  [--adversary[=heartbleed|vtable|srop]]\n"
                 "                  [--profile[=FILE]] [--flight-depth N] "
                 "[--obs-window N]\n");
}

bool parse(int argc, char** argv, CliOptions& opt) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--workload") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.workload = v;
        } else if (arg == "--config") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.config = v;
        } else if (arg == "--isa") {
            const char* v = next();
            if (v == nullptr) return false;
            std::string error;
            if (!arch::parse_isa(v, opt.isa, error)) {
                std::fprintf(stderr, "%s\n", error.c_str());
                return false;
            }
        } else if (arg == "--trials") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.trials = std::atoi(v);
        } else if (arg == "--jobs") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.jobs = std::atoi(v);
            if (opt.jobs < 0) return false;
        } else if (arg == "--seed") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--seconds") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.seconds = std::atof(v);
        } else if (arg == "--tick-hz") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.tick_hz = std::atof(v);
        } else if (arg == "--trace-out") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.trace_out = v;
        } else if (arg == "--metrics-out") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.metrics_out = v;
        } else if (arg == "--trace-mask") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.trace_mask = v;
        } else if (arg == "--check" || arg == "--check=strict") {
            opt.check_mode = check::Mode::kStrict;
        } else if (arg == "--check=sampled") {
            opt.check_mode = check::Mode::kSampled;
        } else if (arg == "--check=off") {
            opt.check_mode = check::Mode::kOff;
        } else if (arg == "--check-period") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.check_period = std::atoi(v);
        } else if (arg == "--call-metrics") {
            opt.call_metrics = true;
        } else if (arg == "--chaos") {
            opt.chaos_rate_hz = 10.0;
        } else if (arg.rfind("--chaos=", 0) == 0) {
            const char* tok = arg.c_str() + 8;
            char* end = nullptr;
            opt.chaos_rate_hz = std::strtod(tok, &end);
            if (end == tok || *end != '\0' || opt.chaos_rate_hz <= 0.0) {
                std::fprintf(stderr,
                             "bad --chaos rate '%s' (valid: a positive "
                             "faults/s value like --chaos=10, or bare "
                             "--chaos for the default of 10)\n",
                             tok);
                return false;
            }
        } else if (arg == "--restart-policy") {
            opt.restart_policy = true;
        } else if (arg.rfind("--restart-policy=", 0) == 0) {
            const char* tok = arg.c_str() + 17;
            char* end = nullptr;
            const long budget = std::strtol(tok, &end, 10);
            if (end == tok || *end != '\0' || budget <= 0) {
                std::fprintf(stderr,
                             "bad --restart-policy budget '%s' (valid: a "
                             "positive restart count like "
                             "--restart-policy=3, or bare --restart-policy "
                             "for the default of 3)\n",
                             tok);
                return false;
            }
            opt.restart_policy = true;
            opt.restart_budget = static_cast<int>(budget);
        } else if (arg == "--adversary") {
            opt.adversary = true;
        } else if (arg.rfind("--adversary=", 0) == 0) {
            opt.adversary = true;
            std::string error;
            if (!wl::parse_attack_kind(arg.substr(12), opt.adversary_kind,
                                       error)) {
                std::fprintf(stderr, "%s\n", error.c_str());
                return false;
            }
        } else if (arg == "--profile") {
            opt.profile = true;
        } else if (arg.rfind("--profile=", 0) == 0) {
            opt.profile = true;
            opt.profile_out = arg.substr(10);
            if (opt.profile_out.empty()) return false;
        } else if (arg == "--flight-depth") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.flight_depth = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
            if (opt.flight_depth == 0) return false;
        } else if (arg == "--obs-window") {
            const char* v = next();
            if (v == nullptr) return false;
            opt.obs_window = std::atoi(v);
            if (opt.obs_window <= 0) return false;
        } else if (arg == "--super-secondary") {
            opt.super_secondary = true;
        } else if (arg == "--secure") {
            opt.secure = true;
        } else if (arg == "--selective-routing") {
            opt.selective = true;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

bool pick_workload(const std::string& name, wl::WorkloadSpec& out) {
    if (name == "hpcg") out = wl::hpcg_spec();
    else if (name == "stream") out = wl::stream_spec();
    else if (name == "gups" || name == "randomaccess") out = wl::randomaccess_spec();
    else if (name == "lu") out = wl::nas_lu_spec();
    else if (name == "bt") out = wl::nas_bt_spec();
    else if (name == "cg") out = wl::nas_cg_spec();
    else if (name == "ep") out = wl::nas_ep_spec();
    else if (name == "sp") out = wl::nas_sp_spec();
    else return false;
    return true;
}

bool pick_config(const std::string& name, core::SchedulerKind& out) {
    if (name == "native") out = core::SchedulerKind::kNativeKitten;
    else if (name == "kitten") out = core::SchedulerKind::kKittenPrimary;
    else if (name == "linux") out = core::SchedulerKind::kLinuxPrimary;
    else return false;
    return true;
}

constexpr const char* kConfigNames[3] = {"native", "kitten", "linux"};

// --- profiler / flight harvesting -------------------------------------------

/// Cross-trial profiler totals plus flight-recorder dump bookkeeping,
/// folded in from each trial node via post_trial (nodes die per trial).
struct ObsHarvest {
    obs::CycleProfiler prof;
    std::uint64_t flight_dumps = 0;
    std::string last_dump_path;

    void collect(core::Node& node) {
        if (node.platform().config().profile) {
            prof.merge(node.platform().profiler());
        }
        if (node.platform().flight().armed()) {
            const auto& fi = node.platform().flight().info();
            flight_dumps += fi.dumps;
            if (!fi.last_path.empty()) last_dump_path = fi.last_path;
        }
    }
};

int report_obs(const CliOptions& opt, ObsHarvest& harvest,
               std::uint64_t clock_hz) {
    if (opt.profile) {
        harvest.prof.set_call_namer([](unsigned n) {
            return hafnium::to_string(static_cast<hafnium::Call>(n));
        });
        std::printf("%s", harvest.prof.perf_top(sim::ClockSpec{clock_hz}).c_str());
        if (!opt.profile_out.empty()) {
            std::ofstream f(opt.profile_out);
            if (!f) {
                std::fprintf(stderr, "failed to write %s\n",
                             opt.profile_out.c_str());
                return 1;
            }
            harvest.prof.write_collapsed(f);
            std::printf("collapsed stacks written to %s\n",
                        opt.profile_out.c_str());
        }
    }
    if (opt.flight_depth > 0) {
        std::printf("flight: %llu dump%s%s%s\n",
                    static_cast<unsigned long long>(harvest.flight_dumps),
                    harvest.flight_dumps == 1 ? "" : "s",
                    harvest.last_dump_path.empty() ? "" : ", last: ",
                    harvest.last_dump_path.c_str());
    }
    return 0;
}

/// Per-path profiler counter tracks for one trial node's Perfetto process.
std::vector<obs::TraceExporter::CounterTrack> profiler_tracks(
    const obs::CycleProfiler& prof) {
    std::vector<obs::TraceExporter::CounterTrack> tracks(obs::kProfPathCount);
    for (std::size_t p = 0; p < obs::kProfPathCount; ++p) {
        tracks[p].name =
            std::string("prof.") + obs::to_string(static_cast<obs::ProfPath>(p));
    }
    for (const auto& s : prof.samples()) {
        for (std::size_t p = 0; p < obs::kProfPathCount; ++p) {
            tracks[p].samples.emplace_back(s.when,
                                           static_cast<double>(s.cycles[p]));
        }
    }
    return tracks;
}

// --- resilience rigging ------------------------------------------------------

struct ResilTotals {
    resil::Supervisor::Stats sup;
    resil::ChaosInjector::Stats chaos;
    resil::ContainmentEngine::Stats contain;
    wl::AdversaryWorkload::Stats attack;
    std::uint64_t attacks_run = 0;
    std::uint64_t attacks_defeated = 0;
};

/// Per-trial attachment: a watchdog/restart supervisor and/or a chaos
/// injector riding on the trial node. The destructor (which Harness runs
/// before the node dies) folds the trial's stats into the shared totals.
struct ResilRig {
    std::unique_ptr<resil::Supervisor> sup;
    std::unique_ptr<resil::ChaosInjector> chaos;
    std::unique_ptr<resil::ContainmentEngine> contain;
    std::unique_ptr<wl::AdversaryWorkload> adversary;
    ResilTotals* totals = nullptr;
    ~ResilRig() {
        if (adversary) {
            adversary->stop();
            const auto& a = adversary->stats();
            totals->attack.attempts += a.attempts;
            totals->attack.denied += a.denied;
            totals->attack.leaked_words += a.leaked_words;
            totals->attack.corrupted_words += a.corrupted_words;
            ++totals->attacks_run;
            if (adversary->defeated()) ++totals->attacks_defeated;
        }
        if (contain) {
            contain->disarm();
            const auto& c = contain->stats();
            totals->contain.violations += c.violations;
            totals->contain.dumps += c.dumps;
            totals->contain.quarantines += c.quarantines;
            totals->contain.reverified += c.reverified;
            totals->contain.embargoes += c.embargoes;
        }
        if (sup) {
            sup->stop();
            const auto& s = sup->stats();
            totals->sup.scans += s.scans;
            totals->sup.heartbeats += s.heartbeats;
            totals->sup.crashes += s.crashes;
            totals->sup.hangs += s.hangs;
            totals->sup.restarts += s.restarts;
            totals->sup.restart_failures += s.restart_failures;
            totals->sup.quarantines += s.quarantines;
        }
        if (chaos) {
            chaos->stop();
            const auto& c = chaos->stats();
            totals->chaos.injections += c.injections;
            totals->chaos.vcpu_kills += c.vcpu_kills;
            totals->chaos.vcpu_wedges += c.vcpu_wedges;
            totals->chaos.frames_dropped += c.frames_dropped;
            totals->chaos.frames_garbled += c.frames_garbled;
            totals->chaos.spurious_virqs += c.spurious_virqs;
            totals->chaos.no_target += c.no_target;
        }
    }
};

std::function<std::shared_ptr<void>(core::SchedulerKind, std::uint64_t,
                                    core::Node&)>
make_pre_trial(const CliOptions& opt, ResilTotals& totals) {
    if (opt.chaos_rate_hz <= 0.0 && !opt.restart_policy && !opt.adversary) {
        return nullptr;
    }
    return [&opt, &totals](core::SchedulerKind, std::uint64_t,
                           core::Node& node) -> std::shared_ptr<void> {
        auto rig = std::make_shared<ResilRig>();
        rig->totals = &totals;
        // The adversary axis: an attacker partition (a secondary with no
        // guest personality — the exploit drives SPM access paths directly)
        // plus the detect → contain → recover pipeline around it. Native
        // config has no SPM and hence no trust boundary to attack.
        if (opt.adversary && node.spm() != nullptr) {
            hafnium::VmSpec aspec;
            aspec.name = "attacker";
            aspec.role = hafnium::VmRole::kSecondary;
            aspec.mem_bytes = 4ull << 20;
            aspec.vcpu_count = 1;
            aspec.image = core::Node::make_image("attacker");
            const arch::VmId attacker = node.spm()->create_vm(aspec);
            rig->contain = std::make_unique<resil::ContainmentEngine>(node);
            rig->contain->arm();
            wl::AttackConfig ac;
            ac.kind = opt.adversary_kind;
            rig->adversary = std::make_unique<wl::AdversaryWorkload>(
                *node.spm(), attacker, ac);
            rig->adversary->start();
        }
        // The native baseline has no hypervisor, hence nothing to supervise;
        // the chaos injector still runs there (and counts no_target draws).
        if (opt.restart_policy && node.spm() != nullptr &&
            node.compute_vm() != nullptr) {
            resil::PolicyConfig pc;
            pc.restart_budget = opt.restart_budget;
            rig->sup = std::make_unique<resil::Supervisor>(node, pc);
            rig->sup->supervise(node.compute_vm()->id());
            rig->sup->start();
        }
        if (opt.chaos_rate_hz > 0.0) {
            resil::ChaosConfig cc;
            cc.rate_hz = opt.chaos_rate_hz;
            rig->chaos = std::make_unique<resil::ChaosInjector>(node, cc);
            rig->chaos->start();
        }
        return rig;
    };
}

void print_resil_totals(const CliOptions& opt, const ResilTotals& totals) {
    if (opt.restart_policy) {
        std::printf(
            "resil: %llu crashes, %llu hangs, %llu restarts "
            "(%llu failed), %llu quarantines\n",
            static_cast<unsigned long long>(totals.sup.crashes),
            static_cast<unsigned long long>(totals.sup.hangs),
            static_cast<unsigned long long>(totals.sup.restarts),
            static_cast<unsigned long long>(totals.sup.restart_failures),
            static_cast<unsigned long long>(totals.sup.quarantines));
    }
    if (opt.chaos_rate_hz > 0.0) {
        std::printf(
            "chaos: %llu faults (%llu kills, %llu wedges, %llu drops, "
            "%llu garbles, %llu spurious virqs, %llu no-target)\n",
            static_cast<unsigned long long>(totals.chaos.injections),
            static_cast<unsigned long long>(totals.chaos.vcpu_kills),
            static_cast<unsigned long long>(totals.chaos.vcpu_wedges),
            static_cast<unsigned long long>(totals.chaos.frames_dropped),
            static_cast<unsigned long long>(totals.chaos.frames_garbled),
            static_cast<unsigned long long>(totals.chaos.spurious_virqs),
            static_cast<unsigned long long>(totals.chaos.no_target));
    }
    if (opt.adversary) {
        std::printf(
            "adversary (%s): %llu attack%s, %llu defeated — %llu attempts, "
            "%llu denied, %llu leaked, %llu corrupted\n",
            wl::to_string(opt.adversary_kind),
            static_cast<unsigned long long>(totals.attacks_run),
            totals.attacks_run == 1 ? "" : "s",
            static_cast<unsigned long long>(totals.attacks_defeated),
            static_cast<unsigned long long>(totals.attack.attempts),
            static_cast<unsigned long long>(totals.attack.denied),
            static_cast<unsigned long long>(totals.attack.leaked_words),
            static_cast<unsigned long long>(totals.attack.corrupted_words));
        std::printf(
            "contain: %llu violations, %llu dumps, %llu quarantines, "
            "%llu reverified, %llu embargoes\n",
            static_cast<unsigned long long>(totals.contain.violations),
            static_cast<unsigned long long>(totals.contain.dumps),
            static_cast<unsigned long long>(totals.contain.quarantines),
            static_cast<unsigned long long>(totals.contain.reverified),
            static_cast<unsigned long long>(totals.contain.embargoes));
    }
}

/// Observability run: all three scheduler configs, one trial each, with the
/// structured recorder enabled. Writes a multi-process Perfetto trace
/// and/or an aggregated metrics JSON.
int run_observed(const CliOptions& opt, const wl::WorkloadSpec* spec,
                 const std::function<core::NodeConfig(core::SchedulerKind,
                                                      std::uint64_t)>& factory,
                 std::uint32_t mask) {
    const core::NodeConfig probe = factory(core::SchedulerKind::kKittenPrimary,
                                           opt.seed);
    obs::TraceExporter exporter(sim::ClockSpec{probe.platform.clock_hz});
    core::ExperimentRow row;
    ResilTotals totals;
    ObsHarvest harvest;
    if (opt.obs_window > 0) {
        for (auto& agg : row.metrics) {
            agg.set_window(static_cast<std::size_t>(opt.obs_window));
        }
    }

    for (std::size_t c = 0; c < core::kAllConfigs.size(); ++c) {
        const core::SchedulerKind kind = core::kAllConfigs[c];
        if (spec != nullptr) {
            core::Harness::Options hopt;
            hopt.trials = 1;
            hopt.jobs = 1;  // exporter processes must append in config order
            hopt.base_seed = opt.seed;
            hopt.config_factory = factory;
            hopt.obs_mask = mask;
            hopt.pre_trial = make_pre_trial(opt, totals);
            hopt.post_trial = [&](core::SchedulerKind, std::uint64_t,
                                  core::Node& node) {
                exporter.add_process(static_cast<int>(c), kConfigNames[c],
                                     node.platform().ncores(),
                                     node.platform().recorder().events());
                if (node.platform().config().profile) {
                    exporter.add_counter_tracks(
                        static_cast<int>(c),
                        profiler_tracks(node.platform().profiler()));
                }
                harvest.collect(node);
            };
            core::Harness harness(hopt);
            const auto r = harness.run_trial(kind, *spec, opt.seed);
            row.workload = spec->name;
            row.metric = spec->metric;
            row.cells[c] = {r.score, 0.0, 1};
            row.metrics[c].add(r.metrics);
            std::printf("%s on %s: %.6g %s (%.3f s simulated)\n",
                        spec->name.c_str(), kConfigNames[c], r.score,
                        spec->metric.c_str(), r.seconds);
        } else {
            core::NodeConfig cfg = factory(kind, opt.seed);
            cfg.platform.obs_mask |= mask;
            const auto series =
                core::run_selfish_experiment(kind, opt.seconds, opt.seed, &cfg);
            exporter.add_process(static_cast<int>(c), kConfigNames[c],
                                 series.ncores, series.events);
            row.workload = "selfish";
            row.metric = "detours";
            row.cells[c] = {static_cast<double>(series.detours_all_cores), 0.0, 1};
            row.metrics[c].add(series.metrics);
            std::printf("selfish on %s: %llu detours, %.3g us lost\n",
                        kConfigNames[c],
                        static_cast<unsigned long long>(series.detours_all_cores),
                        series.total_detour_us_all);
        }
    }

    if (!opt.trace_out.empty()) {
        if (!exporter.write_file(opt.trace_out)) {
            std::fprintf(stderr, "failed to write %s\n", opt.trace_out.c_str());
            return 1;
        }
        std::printf("trace written to %s\n", opt.trace_out.c_str());
    }
    if (!opt.metrics_out.empty()) {
        std::ofstream f(opt.metrics_out);
        if (!f) {
            std::fprintf(stderr, "failed to write %s\n", opt.metrics_out.c_str());
            return 1;
        }
        f << core::Harness::format_metrics_json({row});
        std::printf("metrics written to %s\n", opt.metrics_out.c_str());
    }
    print_resil_totals(opt, totals);
    return report_obs(opt, harvest, probe.platform.clock_hz);
}

}  // namespace

int main(int argc, char** argv) {
    CliOptions opt;
    if (!parse(argc, argv, opt)) {
        usage();
        return 2;
    }
    core::SchedulerKind kind{};
    if (!pick_config(opt.config, kind)) {
        usage();
        return 2;
    }

    auto factory = [&opt](core::SchedulerKind k, std::uint64_t seed) {
        core::NodeConfig cfg = core::Harness::default_config(k, seed);
        cfg.platform.isa = opt.isa;
        cfg.with_super_secondary = opt.super_secondary;
        cfg.secure_compute_vm = opt.secure;
        if (opt.selective) cfg.routing = hafnium::IrqRoutingPolicy::kSelective;
        if (opt.tick_hz > 0.0) {
            cfg.kitten.tick_hz = opt.tick_hz;
            cfg.linux.tick_hz = opt.tick_hz;
        }
        cfg.check_mode = opt.check_mode;
        cfg.check_period = opt.check_period;
        cfg.call_metrics = opt.call_metrics;
        cfg.protect_critical = opt.adversary;
        cfg.platform.profile = opt.profile;
        cfg.platform.flight_depth = opt.flight_depth;
        if (opt.flight_depth > 0) cfg.platform.flight_dump_prefix = "flight";
        return cfg;
    };

    const bool observed = !opt.trace_out.empty() || !opt.metrics_out.empty();
    if (observed) {
        std::uint32_t mask = 0;
        std::string mask_error;
        if (!obs::parse_category_list(opt.trace_mask, mask, mask_error)) {
            std::fprintf(stderr, "%s\n", mask_error.c_str());
            usage();
            return 2;
        }
        if (opt.workload == "selfish") return run_observed(opt, nullptr, factory, mask);
        wl::WorkloadSpec spec;
        if (!pick_workload(opt.workload, spec)) {
            usage();
            return 2;
        }
        return run_observed(opt, &spec, factory, mask);
    }

    if (opt.workload == "selfish") {
        const core::NodeConfig cfg = factory(kind, opt.seed);
        const auto series =
            core::run_selfish_experiment(kind, opt.seconds, opt.seed, &cfg);
        std::printf("%s\n", core::format_selfish(series).c_str());
        return 0;
    }

    wl::WorkloadSpec spec;
    if (!pick_workload(opt.workload, spec)) {
        usage();
        return 2;
    }

    core::Harness::Options hopt;
    hopt.trials = opt.trials;
    hopt.jobs = opt.jobs;  // 0 = one worker per hardware thread
    hopt.base_seed = opt.seed;
    hopt.config_factory = factory;
    hopt.obs_window = opt.obs_window;
    ResilTotals totals;
    hopt.pre_trial = make_pre_trial(opt, totals);
    ObsHarvest harvest;
    if (opt.profile || opt.flight_depth > 0) {
        // post_trial runs serialized under the harness callback mutex, so
        // the merge order (and thus the totals) is well-defined at any jobs.
        hopt.post_trial = [&harvest](core::SchedulerKind, std::uint64_t,
                                     core::Node& node) { harvest.collect(node); };
    }
    core::Harness harness(hopt);

    std::vector<std::uint64_t> seeds;
    seeds.reserve(static_cast<std::size_t>(opt.trials));
    for (int t = 0; t < opt.trials; ++t) {
        seeds.push_back(opt.seed + 7919ull * static_cast<std::uint64_t>(t));
    }
    const auto results = harness.run_trials(kind, spec, seeds);

    sim::RunningStats stats;
    sim::RunningStats runtime;
    std::size_t check_failures = 0;
    for (int t = 0; t < opt.trials; ++t) {
        const auto& r = results[static_cast<std::size_t>(t)];
        stats.add(r.score);
        runtime.add(r.seconds);
        if (r.check_failures != 0) {
            check_failures += r.check_failures;
            std::fprintf(stderr, "trial %d check findings:\n%s", t,
                         r.check_report.c_str());
        }
    }
    std::printf("%s on %s (%d trial%s%s%s%s): %.6g %s (stdev %.3g), "
                "%.3f s simulated each\n",
                spec.name.c_str(), opt.config.c_str(), opt.trials,
                opt.trials == 1 ? "" : "s",
                opt.secure ? ", secure world" : "",
                opt.super_secondary ? ", login VM" : "",
                opt.selective ? ", selective routing" : "", stats.mean(),
                spec.metric.c_str(), stats.stddev(), runtime.mean());
    print_resil_totals(opt, totals);
    const int obs_rc =
        report_obs(opt, harvest, factory(kind, opt.seed).platform.clock_hz);
    if (opt.check_mode != check::Mode::kOff) {
        std::printf("check (%s): %zu finding%s\n", to_string(opt.check_mode),
                    check_failures, check_failures == 1 ? "" : "s");
        if (check_failures != 0) return 1;
    }
    return obs_rc;
}
