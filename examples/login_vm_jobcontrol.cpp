// Login-VM job control: the paper's super-secondary design in action.
//
// Boots a node with the Linux "login" VM owning the devices, then drives
// the full job-control path: login VM -> secure mailbox channel -> Kitten
// control task -> Hafnium hypercalls. Demonstrates ping, VM query, VCPU
// migration, and stop/relaunch of the compute VM — plus the privilege
// boundary (the login VM cannot call HF_VCPU_RUN itself).
#include <cstdio>

#include "core/harness.h"
#include "core/jobs.h"
#include "core/node.h"

int main() {
    using namespace hpcsec;

    core::NodeConfig cfg =
        core::Harness::default_config(core::SchedulerKind::kKittenPrimary, 99);
    cfg.with_super_secondary = true;
    core::Node node(cfg);
    node.boot();

    std::printf("node up: %d VMs\n", node.spm()->vm_count());
    for (int id = 1; id <= node.spm()->vm_count(); ++id) {
        hafnium::Vm& vm = node.spm()->vm(static_cast<arch::VmId>(id));
        std::printf("  vm%d %-16s role=%-15s devices=%zu\n", id, vm.name().c_str(),
                    to_string(vm.role()).c_str(),
                    node.spm()->devices_of(vm.id()).size());
    }

    // The privilege boundary first: a direct HF_VCPU_RUN from the login VM
    // must be refused by the SPM ("does not have ... the ability to assume
    // control over CPU cores").
    const auto denied = hf::vcpu_run(*node.spm(), 0, node.login_vm()->id(),
                                     node.compute_vm()->id(), /*vcpu=*/0);
    std::printf("\nlogin VM calling HF_VCPU_RUN directly: %s\n",
                to_string(denied.error).c_str());

    // Now the sanctioned path: the job-control channel.
    core::JobControl jobs(node);

    auto request = [&](core::JobCommand cmd, const char* what) {
        const auto reply = jobs.request(cmd, 3.0);
        if (reply) {
            std::printf("  %-28s -> status=%lld value=%#llx\n", what,
                        static_cast<long long>(reply->status),
                        static_cast<unsigned long long>(reply->value));
        } else {
            std::printf("  %-28s -> TIMEOUT\n", what);
        }
    };

    std::printf("\njob-control session from the login VM:\n");
    core::JobCommand ping;
    ping.op = core::JobOp::kPing;
    request(ping, "ping");

    core::JobCommand query;
    query.op = core::JobOp::kQueryVm;
    query.vm = node.compute_vm()->id();
    request(query, "query compute VM");

    core::JobCommand migrate;
    migrate.op = core::JobOp::kMigrateVcpu;
    migrate.vm = node.compute_vm()->id();
    migrate.vcpu = 3;
    migrate.arg = 1;
    request(migrate, "migrate vcpu3 -> core1");
    std::printf("    vcpu3 now assigned to core %d\n",
                node.compute_vm()->vcpu(3).assigned_core);

    core::JobCommand stop;
    stop.op = core::JobOp::kStopVm;
    stop.vm = node.compute_vm()->id();
    request(stop, "stop compute VM");

    core::JobCommand launch;
    launch.op = core::JobOp::kLaunchVm;
    launch.vm = node.compute_vm()->id();
    request(launch, "relaunch compute VM");

    std::printf("\ncontrol task processed %llu commands; SPM saw %llu messages\n",
                static_cast<unsigned long long>(jobs.commands_processed()),
                static_cast<unsigned long long>(node.spm()->stats().messages));
    return 0;
}
