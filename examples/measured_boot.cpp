// Measured boot + VM image signatures: the trusted-computing side.
//
// Shows the full provenance story the paper sketches in §II.b and §VII:
//   1. images are signed off-node with one-time keys;
//   2. the verifier keys are enrolled and *measured into the boot chain*;
//   3. boot refuses tampered images;
//   4. a remote verifier checks a signed attestation quote against the
//      expected accumulator value, detecting any substituted boot stage.
#include <cstdio>

#include "core/harness.h"
#include "core/node.h"
#include "core/signature.h"

int main() {
    using namespace hpcsec;

    // --- provisioning (build system, off node) -----------------------------
    const std::vector<std::uint8_t> seed(32, 0x42);
    core::ImageSigner signer(seed);
    const auto compute_image = core::Node::make_image("kitten-guest-signed");
    auto signed_img = signer.sign("compute", compute_image);
    std::printf("signed compute image (%zu bytes), key fp %.16s...\n",
                signed_img->bytes.size(),
                crypto::to_hex(signed_img->key_fingerprint).c_str());

    // --- boot with signature enforcement ----------------------------------
    core::NodeConfig cfg =
        core::Harness::default_config(core::SchedulerKind::kKittenPrimary, 7);
    cfg.verify_signatures = true;
    cfg.trusted_keys = {signer.public_key()};
    cfg.signed_images = {*signed_img};
    core::Node node(cfg);
    node.boot();
    std::printf("\nboot OK; event log:\n");
    for (const auto& stage : node.attestation().log()) {
        std::printf("  %-16s %.16s...\n", stage.name.c_str(),
                    crypto::to_hex(stage.measurement).c_str());
    }
    std::printf("accumulator: %.32s...\n",
                crypto::to_hex(node.attestation().accumulator()).c_str());
    std::printf("log replay matches accumulator: %s\n",
                node.attestation().replay_matches() ? "yes" : "NO (bug!)");

    // --- a tampered image must be refused ----------------------------------
    auto evil = *signed_img;
    evil.bytes[100] ^= 0x01;
    core::NodeConfig evil_cfg = cfg;
    evil_cfg.signed_images = {evil};
    core::Node evil_node(evil_cfg);
    bool refused = false;
    try {
        evil_node.boot();
    } catch (const std::exception& e) {
        refused = true;
        std::printf("\ntampered image refused at boot: %s\n", e.what());
    }

    // --- remote attestation -------------------------------------------------
    // The device quote key is provisioned at manufacture; the verifier knows
    // its public half and the golden accumulator value.
    auto device_key = crypto::LamportKeyPair::generate(
        std::vector<std::uint8_t>(32, 0x99));
    const crypto::Digest nonce = crypto::Sha256::hash("verifier-challenge-0001");
    const auto quote = node.attestation().quote(device_key, nonce);
    const bool verified = core::AttestationChain::verify_quote(
        *quote, node.attestation().accumulator(), device_key.public_key());
    std::printf("\nremote verifier accepts quote: %s\n",
                verified ? "yes" : "NO (bug!)");

    // A verifier expecting a *different* software stack rejects the quote.
    core::AttestationChain other;
    other.extend("some-other-kernel", core::Node::make_image("other"));
    const bool rejected = !core::AttestationChain::verify_quote(
        *quote, other.accumulator(), device_key.public_key());
    std::printf("verifier with different golden values rejects it: %s\n",
                rejected ? "yes" : "NO (bug!)");

    return refused && verified && rejected ? 0 : 1;
}
