// Multi-tenant isolation: two tenants on one node, one of them in the
// TrustZone secure world, with a demonstration that
//   (a) both make progress under the Kitten scheduler,
//   (b) neither can reach the other's memory,
//   (c) an explicit FFA memory share opens exactly one window, and
//   (d) reclaiming it closes the window again.
#include <cstdio>

#include "arch/platform.h"
#include "hafnium/spm.h"
#include "kitten/guest.h"
#include "kitten/kitten.h"
#include "workloads/workload.h"

int main() {
    using namespace hpcsec;

    // Hand-build the manifest: this example uses the hafnium/kitten layers
    // directly instead of core::Node, showing the lower-level API.
    arch::PlatformConfig pcfg = arch::PlatformConfig::pine_a64();
    pcfg.secure_ram_bytes = 256ull << 20;  // static TrustZone carve-out
    arch::Platform platform(pcfg, 77);

    hafnium::Manifest manifest;
    {
        hafnium::VmSpec primary;
        primary.name = "kitten-primary";
        primary.role = hafnium::VmRole::kPrimary;
        primary.mem_bytes = 64ull << 20;
        primary.vcpu_count = 4;
        manifest.vms.push_back(primary);
        for (int t = 0; t < 2; ++t) {
            hafnium::VmSpec tenant;
            tenant.name = "tenant" + std::to_string(t);
            tenant.role = hafnium::VmRole::kSecondary;
            tenant.mem_bytes = 64ull << 20;
            tenant.vcpu_count = 2;
            tenant.world = t == 1 ? arch::World::kSecure : arch::World::kNonSecure;
            manifest.vms.push_back(tenant);
        }
    }

    hafnium::Spm spm(platform, manifest);
    kitten::KittenKernel kernel(platform, spm, kitten::KittenConfig{});
    spm.boot();
    kernel.boot();

    hafnium::Vm& t0 = *spm.find_vm("tenant0");
    hafnium::Vm& t1 = *spm.find_vm("tenant1");
    std::printf("tenant0: %s world, PA window [%#llx, +%lluMiB)\n",
                to_string(t0.world()).c_str(),
                static_cast<unsigned long long>(t0.mem_base),
                static_cast<unsigned long long>(t0.mem_bytes() >> 20));
    std::printf("tenant1: %s world, PA window [%#llx, +%lluMiB)\n\n",
                to_string(t1.world()).c_str(),
                static_cast<unsigned long long>(t1.mem_base),
                static_cast<unsigned long long>(t1.mem_bytes() >> 20));

    // (a) run both tenants concurrently, two VCPUs each.
    kitten::KittenGuestOs g0(spm, t0), g1(spm, t1);
    auto make_work = [](const char* name) {
        wl::WorkloadSpec s;
        s.name = name;
        s.nthreads = 2;
        s.supersteps = 4;
        s.units_per_thread_step = 2'000'000;
        s.profile.cycles_per_unit = 2.0;
        return s;
    };
    wl::ParallelWorkload w0(make_work("tenant0-job")), w1(make_work("tenant1-job"));
    w0.set_mode(arch::TranslationMode::kTwoStage);
    w1.set_mode(arch::TranslationMode::kTwoStage);
    for (int i = 0; i < 2; ++i) {
        g0.set_thread(i, &w0.thread(i));
        g1.set_thread(i, &w1.thread(i));
    }
    g0.start();
    g1.start();
    w0.on_release = [&] { g0.wake_runnable_vcpus(); };
    w1.on_release = [&] { g1.wake_runnable_vcpus(); };
    kernel.launch_vm(t0.id());
    kernel.launch_vm(t1.id());

    platform.engine().run_until(platform.engine().clock().from_seconds(2.0));
    std::printf("(a) progress: tenant0 %s, tenant1 %s\n",
                w0.finished() ? "finished" : "running",
                w1.finished() ? "finished" : "running");

    // (b) tenant0 writes a secret; prove tenant1 cannot read it.
    spm.vm_write64(t0.id(), 0x4000, 0x5ec2e7);
    std::uint64_t leak = 0;
    const bool direct = spm.vm_read64(t1.id(), t0.mem_base, leak);
    // (t1's stage-2 has no mapping at the PA-shaped IPA beyond its window;
    // inside its window everything resolves to its own frames.)
    const arch::WalkResult probe = t1.stage2().walk(0x4000);
    const bool same_frame = probe.out == t0.mem_base + 0x4000;
    std::printf("(b) cross-tenant read via PA-guess: %s; IPA 0x4000 resolves to "
                "tenant1's own frame: %s\n",
                direct ? "LEAKED (bug!)" : "denied",
                same_frame ? "NO (bug!)" : "yes");

    // TrustZone: a non-secure master cannot touch tenant1's secure frames.
    const auto tz = platform.mem().check_physical_access(t1.mem_base,
                                                         arch::World::kNonSecure);
    std::printf("    non-secure access to secure tenant's frame: %s\n",
                to_string(tz).c_str());

    // (c) explicit share: tenant0 lends one page to tenant1.
    const auto share = hf::mem_share(spm, 0, t0.id(), t1.id(),
                                     /*owner_ipa=*/0x4000, /*pages=*/1,
                                     /*borrower_ipa=*/0x7000'0000);
    std::uint64_t shared = 0;
    const bool ok = spm.vm_read64(t1.id(), 0x7000'0000, shared);
    std::printf("(c) after FFA_MEM_SHARE (%s): tenant1 reads %#llx through the "
                "granted window\n",
                to_string(share.error).c_str(),
                static_cast<unsigned long long>(shared));

    // (d) reclaim closes it.
    hf::mem_reclaim(spm, 0, t0.id(), t1.id(), /*owner_ipa=*/0x4000);
    const bool after = spm.vm_read64(t1.id(), 0x7000'0000, shared);
    std::printf("(d) after FFA_MEM_RECLAIM: window read %s\n",
                after ? "still works (bug!)" : "denied");
    return ok && !after && !direct && !same_frame ? 0 : 1;
}
