// Noise comparison: the paper's core argument, interactively.
//
// Runs the selfish-detour benchmark under all three schedulers and prints
// side-by-side noise profiles plus a detour-duration histogram — the
// textual equivalent of Figs. 4-6.
#include <cstdio>

#include "core/harness.h"
#include "sim/stats.h"

int main(int argc, char** argv) {
    using namespace hpcsec;
    const double seconds = argc > 1 ? std::atof(argv[1]) : 30.0;

    std::printf("selfish-detour, %.0f s simulated per configuration\n\n", seconds);
    std::printf("%-26s %10s %12s %12s %12s\n", "configuration", "detours",
                "rate[/s]", "lost[ppm]", "max[us]");

    for (const auto kind : core::kAllConfigs) {
        const auto s = core::run_selfish_experiment(kind, seconds, 31337);
        const double lost_ppm =
            s.total_detour_us_all / (4.0 * seconds * 1e6) * 1e6;
        std::printf("%-26s %10zu %12.1f %12.1f %12.1f\n",
                    core::to_string(kind).c_str(),
                    static_cast<std::size_t>(s.detours_all_cores),
                    static_cast<double>(s.detours_all_cores) / seconds, lost_ppm,
                    s.max_detour_us);
    }

    std::printf("\ndetour-duration histograms (all cores):\n");
    for (const auto kind : core::kAllConfigs) {
        const auto s = core::run_selfish_experiment(kind, seconds, 31337);
        sim::LogHistogram hist(1.0, 4.0, 8);
        // core 0 series is representative; aggregate view via the summary.
        for (const auto& d : s.detours) hist.add(d.duration_us);
        std::printf("\n%s (core 0, %zu detours):\n%s",
                    core::to_string(kind).c_str(), s.detours.size(),
                    hist.format("us").c_str());
    }
    std::printf(
        "\nReading: Native and Kitten-scheduled profiles are both dominated by\n"
        "the 10 Hz LWK tick (Kitten adds the EL2 world-switch to each detour);\n"
        "the Linux-scheduled profile shows 250 Hz tick noise plus long kworker\n"
        "bursts — the \"more frequent and more randomly distributed\" noise of\n"
        "Fig. 6.\n");
    return 0;
}
