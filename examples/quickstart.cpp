// Quickstart: boot a securely partitioned node, run an HPC workload inside
// an isolated secondary VM, and inspect what happened.
//
//   $ ./examples/quickstart
//
// This walks the library's main path end to end:
//   NodeConfig -> Node::boot() (measured boot, SPM, Kitten primary, guest)
//   -> run_workload() -> scores + hypervisor statistics.
#include <cstdio>

#include "core/node.h"
#include "workloads/hpcg.h"

int main() {
    using namespace hpcsec;

    // 1. Describe the node: a Pine A64-class board, Kitten as the Hafnium
    //    scheduling VM (the paper's proposed configuration).
    core::NodeConfig cfg;
    cfg.platform = arch::PlatformConfig::pine_a64();
    cfg.scheduler = core::SchedulerKind::kKittenPrimary;
    cfg.compute_mem_bytes = 256ull << 20;
    cfg.seed = 2021;

    // 2. Boot. This runs the measured boot chain, brings up the SPM at EL2,
    //    builds the stage-2 isolation tables, and starts the Kitten primary.
    core::Node node(cfg);
    node.boot();

    std::printf("booted '%s': %d cores @ %.1f GHz, %d VMs\n",
                node.platform().config().name.c_str(), node.platform().ncores(),
                node.platform().config().clock_hz / 1e9, node.spm()->vm_count());
    for (const auto& [name, digest] : node.spm()->measurements()) {
        std::printf("  measured %-16s %.16s...\n", name.c_str(),
                    crypto::to_hex(digest).c_str());
    }

    // 3. Run HPCG inside the isolated compute VM.
    wl::ParallelWorkload hpcg(wl::hpcg_spec());
    const double seconds = node.run_workload(hpcg);
    std::printf("\nHPCG finished in %.2f simulated seconds: %.6f %s\n", seconds,
                hpcg.score(seconds), hpcg.spec().metric.c_str());

    // 4. What the hypervisor did meanwhile.
    const auto& st = node.spm()->stats();
    std::printf("\nSPM activity: %llu hypercalls, %llu world switches, "
                "%llu VM exits (%llu preempted), %llu virq injections\n",
                static_cast<unsigned long long>(st.hypercalls),
                static_cast<unsigned long long>(st.world_switches),
                static_cast<unsigned long long>(st.vm_exits),
                static_cast<unsigned long long>(st.exits_preempted),
                static_cast<unsigned long long>(st.virq_injections));

    // 5. The same workload natively (no hypervisor) for comparison.
    core::NodeConfig native_cfg = cfg;
    native_cfg.scheduler = core::SchedulerKind::kNativeKitten;
    core::Node native(native_cfg);
    native.boot();
    wl::ParallelWorkload hpcg_native(wl::hpcg_spec());
    const double native_seconds = native.run_workload(hpcg_native);
    std::printf("\nnative Kitten: %.6f GFlops | secure VM: %.6f GFlops "
                "(%.2f%% overhead)\n",
                hpcg_native.score(native_seconds), hpcg.score(seconds),
                100.0 * (1.0 - hpcg.score(seconds) / hpcg_native.score(native_seconds)));
    return 0;
}
