// Timeline trace: *see* the scheduler noise.
//
// Attaches a timeline recorder to every core, runs the spinner under the
// Kitten and Linux schedulers, and renders a 60 ms execution strip:
//   '#' workload cycles   'o' kernel/hypervisor overhead
//   't' TLB-refill transients   '.' idle
// Kitten shows solid workload bars; Linux shows the 250 Hz tick picket
// fence plus kworker slabs — Figs. 5 and 6 in ASCII.
#include <cstdio>

#include "core/harness.h"
#include "core/node.h"
#include "sim/timeline.h"
#include "workloads/selfish.h"

namespace {

using namespace hpcsec;

void run_one(core::SchedulerKind kind, double window_ms) {
    core::Node node(core::Harness::default_config(kind, 7777));
    node.boot();
    sim::Timeline timeline;
    for (int c = 0; c < node.platform().ncores(); ++c) {
        node.platform().core(c).exec().set_timeline(&timeline);
    }
    wl::SelfishBenchmark selfish(4, node.platform().engine().clock());
    // Warm up past boot transients, then capture the window.
    node.run_selfish(selfish, 0.5);
    const sim::SimTime from = node.platform().engine().now();
    timeline.clear();
    node.run_for(window_ms * 1e-3);
    const sim::SimTime to = node.platform().engine().now();
    // Flush the still-running chunks so their spans reach the recorder
    // (reprice is a zero-cost preempt+resume).
    for (int c = 0; c < node.platform().ncores(); ++c) {
        node.platform().core(c).exec().reprice();
    }

    std::printf("---- %s (%.0f ms window) ----\n", core::to_string(kind).c_str(),
                window_ms);
    std::printf("%s", timeline.render(from, to, node.platform().ncores(), 110).c_str());
    const auto& clk = node.platform().engine().clock();
    std::printf("  work %.2f ms  overhead %.3f ms  transients %.3f ms\n\n",
                clk.to_millis(timeline.total('W', -1, from, to)),
                clk.to_millis(timeline.total('O', -1, from, to)),
                clk.to_millis(timeline.total('T', -1, from, to)));
}

}  // namespace

int main(int argc, char** argv) {
    const double window_ms = argc > 1 ? std::atof(argv[1]) : 8.0;
    std::printf("execution timeline: '#' workload  'o' kernel/hyp  't' tlb refill  "
                "'.' idle\n\n");
    run_one(core::SchedulerKind::kNativeKitten, window_ms);
    run_one(core::SchedulerKind::kKittenPrimary, window_ms);
    run_one(core::SchedulerKind::kLinuxPrimary, window_ms);
    return 0;
}
