#include "arch/arm/gic.h"

#include <stdexcept>

namespace hpcsec::arch {

Gic::Gic(int ncores, int nspis) : irqs_(kSpiBase + nspis), cpu_(ncores) {
    if (ncores <= 0) throw std::invalid_argument("Gic: need at least one core");
    if (kSpiBase + nspis > IrqBitset::kBits) {
        throw std::invalid_argument("Gic: irq id space exceeds IrqBitset::kBits");
    }
}

void Gic::enable_irq(int irq) { irqs_.at(irq).enabled = true; }
void Gic::disable_irq(int irq) { irqs_.at(irq).enabled = false; }
bool Gic::irq_enabled(int irq) const { return irqs_.at(irq).enabled; }

void Gic::set_external_target(int irq, CoreId core) {
    if (irq < kSpiBase) {
        throw std::invalid_argument("set_external_target: not an SPI");
    }
    if (core < 0 || core >= ncores()) throw std::invalid_argument("bad core");
    irqs_.at(irq).target = core;
}

CoreId Gic::external_target(int irq) const { return irqs_.at(irq).target; }

void Gic::set_priority(int irq, std::uint8_t prio) { irqs_.at(irq).priority = prio; }

void Gic::make_pending(CoreId core, int irq) {
    auto& cs = cpu_.at(core);
    cs.pending.insert(irq);
    if (irqs_.at(irq).enabled && signal_) signal_(core);
}

void Gic::raise_external(int irq) {
    if (irq < kSpiBase) throw std::invalid_argument("raise_external: not an SPI");
    make_pending(irqs_.at(irq).target, irq);
}

void Gic::raise_private(CoreId core, int irq) {
    if (irq < kPpiBase || irq >= kSpiBase) {
        // sca-suppress(no-throw-guest-path): every caller passes a
        // compile-time PPI constant (timer PPIs), never guest input; a bad
        // id is a host wiring bug worth fail-stopping.
        throw std::invalid_argument("raise_private: not a PPI");
    }
    make_pending(core, irq);
}

void Gic::send_ipi(CoreId target, int irq) {
    // sca-suppress(no-throw-guest-path): SGI ids come from kernel wakeup
    // constants, never guest registers; a bad id is a host wiring bug.
    if (irq < 0 || irq >= kPpiBase) throw std::invalid_argument("send_ipi: not an SGI");
    make_pending(target, irq);
}

void Gic::clear_pending(CoreId core, int irq) {
    cpu_.at(core).pending.erase(irq);
}

bool Gic::has_deliverable(CoreId core) const {
    for (const int irq : cpu_.at(core).pending) {
        if (irqs_[static_cast<std::size_t>(irq)].enabled) return true;
    }
    return false;
}

int Gic::ack(CoreId core) {
    auto& cs = cpu_.at(core);
    // Minimum over (priority, irq) of pending ∩ enabled. Scanning ids in
    // ascending order with a strict compare keeps the lowest id on priority
    // ties — the exact order the (priority, irq)-keyed set produced.
    int best_irq = kSpurious;
    int best_prio = 256;
    for (const int irq : cs.pending) {
        const IrqState& s = irqs_[static_cast<std::size_t>(irq)];
        if (!s.enabled) continue;
        if (s.priority < best_prio) {
            best_prio = s.priority;
            best_irq = irq;
        }
    }
    if (best_irq == kSpurious) return kSpurious;
    cs.pending.erase(best_irq);
    cs.active = best_irq;
    ++delivered_;
    return best_irq;
}

void Gic::eoi(CoreId core, int irq) {
    auto& cs = cpu_.at(core);
    if (cs.active == irq) cs.active = kSpurious;
    // Deliverable interrupts may still be queued; re-signal.
    if (has_deliverable(core) && signal_) signal_(core);
}

}  // namespace hpcsec::arch
