#include "arch/cache.h"

#include <stdexcept>

namespace hpcsec::arch {

CacheLevel::CacheLevel(CacheGeometry geometry) : geom_(geometry) {
    if (geom_.size_bytes == 0 || geom_.line_bytes == 0 || geom_.ways == 0 ||
        geom_.size_bytes % (geom_.line_bytes * geom_.ways) != 0) {
        throw std::invalid_argument("CacheLevel: inconsistent geometry");
    }
    lines_.resize(geom_.sets() * geom_.ways);
}

bool CacheLevel::access(PhysAddr addr, bool is_write) {
    const std::uint64_t set = set_of(addr);
    const std::uint64_t tag = tag_of(addr);
    Line* base = &lines_[set * geom_.ways];
    ++tick_;

    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        Line& line = base[w];
        if (line.valid && line.tag == tag) {
            ++stats_.hits;
            line.lru = tick_;
            line.dirty |= is_write;
            return true;
        }
    }
    ++stats_.misses;
    // Fill: pick an invalid way, else true-LRU victim.
    Line* victim = nullptr;
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
    }
    if (victim == nullptr) {
        victim = base;
        for (std::uint32_t w = 1; w < geom_.ways; ++w) {
            if (base[w].lru < victim->lru) victim = &base[w];
        }
        ++stats_.evictions;
        if (victim->dirty) ++stats_.writebacks;
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lru = tick_;
    return false;
}

bool CacheLevel::contains(PhysAddr addr) const {
    const std::uint64_t set = set_of(addr);
    const std::uint64_t tag = tag_of(addr);
    const Line* base = &lines_[set * geom_.ways];
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) return true;
    }
    return false;
}

void CacheLevel::flush_all() {
    ++stats_.flushes;
    for (auto& line : lines_) {
        if (line.valid && line.dirty) ++stats_.writebacks;
        line.valid = false;
        line.dirty = false;
    }
}

void CacheLevel::flush_range(PhysAddr base, std::uint64_t len) {
    for (PhysAddr a = base & ~(geom_.line_bytes - 1); a < base + len;
         a += geom_.line_bytes) {
        const std::uint64_t set = set_of(a);
        const std::uint64_t tag = tag_of(a);
        Line* lines = &lines_[set * geom_.ways];
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            if (lines[w].valid && lines[w].tag == tag) {
                if (lines[w].dirty) ++stats_.writebacks;
                lines[w].valid = false;
                lines[w].dirty = false;
            }
        }
    }
}

std::uint64_t CacheLevel::valid_lines() const {
    std::uint64_t n = 0;
    for (const auto& line : lines_) n += line.valid ? 1 : 0;
    return n;
}

CacheHierarchy::AccessResult CacheHierarchy::access(PhysAddr addr, bool is_write) {
    AccessResult r;
    r.l1_hit = l1_.access(addr, is_write);
    if (!r.l1_hit) {
        r.l2_hit = l2_.access(addr, is_write);
    } else {
        r.l2_hit = true;  // inclusive view
    }
    return r;
}

void CacheHierarchy::flush_all() {
    l1_.flush_all();
    l2_.flush_all();
}

}  // namespace hpcsec::arch
