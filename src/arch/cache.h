// Set-associative cache model (A53-style L1D/L2 hierarchy).
//
// Functional LRU caches used by the machine model's functional memory path:
// every Mmu::read64/write64 probes the attached hierarchy, giving tests and
// micro-benchmarks real hit/miss behaviour (and giving context switches a
// concrete working-set eviction story). The *statistical* performance model
// keeps its own calibrated memory costs — see DESIGN.md §5 — so attaching a
// cache never changes benchmark timings; it provides observability.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/types.h"

namespace hpcsec::arch {

struct CacheGeometry {
    std::uint64_t size_bytes = 32 * 1024;
    std::uint64_t line_bytes = 64;
    std::uint32_t ways = 4;

    [[nodiscard]] std::uint64_t sets() const {
        return size_bytes / (line_bytes * ways);
    }
};

struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t flushes = 0;

    [[nodiscard]] double hit_rate() const {
        const auto total = hits + misses;
        return total != 0 ? static_cast<double>(hits) / static_cast<double>(total)
                          : 0.0;
    }
};

/// One cache level with true-LRU replacement and write-back/write-allocate
/// policy (what the A53 implements for L1D).
class CacheLevel {
public:
    explicit CacheLevel(CacheGeometry geometry);

    /// Probe for a physical address. Returns true on hit; on miss the line
    /// is filled (possibly evicting; dirty evictions count as writebacks).
    bool access(PhysAddr addr, bool is_write);

    /// Probe without filling (used by inclusive-hierarchy lookups).
    [[nodiscard]] bool contains(PhysAddr addr) const;

    void flush_all();
    /// Invalidate every line in [base, base+len) (DC IVAC-by-range).
    void flush_range(PhysAddr base, std::uint64_t len);

    [[nodiscard]] const CacheStats& stats() const { return stats_; }
    [[nodiscard]] const CacheGeometry& geometry() const { return geom_; }
    [[nodiscard]] std::uint64_t valid_lines() const;

private:
    struct Line {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;  // larger == more recently used
    };

    [[nodiscard]] std::uint64_t set_of(PhysAddr a) const {
        return (a / geom_.line_bytes) % geom_.sets();
    }
    [[nodiscard]] std::uint64_t tag_of(PhysAddr a) const {
        return a / geom_.line_bytes / geom_.sets();
    }

    CacheGeometry geom_;
    std::vector<Line> lines_;  // sets x ways
    std::uint64_t tick_ = 0;
    CacheStats stats_;
};

/// L1D + unified L2 hierarchy with the A53's default geometries.
class CacheHierarchy {
public:
    CacheHierarchy()
        : l1_({32 * 1024, 64, 4}), l2_({512 * 1024, 64, 16}) {}
    CacheHierarchy(CacheGeometry l1, CacheGeometry l2) : l1_(l1), l2_(l2) {}

    struct AccessResult {
        bool l1_hit = false;
        bool l2_hit = false;
    };

    AccessResult access(PhysAddr addr, bool is_write);

    void flush_all();

    CacheLevel& l1() { return l1_; }
    CacheLevel& l2() { return l2_; }

private:
    CacheLevel l1_;
    CacheLevel l2_;
};

}  // namespace hpcsec::arch
