#include "arch/core.h"

namespace hpcsec::arch {

Core::Core(sim::Engine& engine, const PerfModel& perf, IrqController& irqc,
           MemoryMap& mem, CoreId id, const IrqLayout& layout)
    : engine_(&engine),
      irqc_(&irqc),
      id_(id),
      mmu_(mem),
      timer_(engine, irqc, id, layout),
      exec_(engine, perf, id) {}

void Core::power_off() {
    powered_ = false;
    exec_.preempt();
    timer_.cancel(TimerChannel::kPhys);
    timer_.cancel(TimerChannel::kVirt);
}

void Core::set_irq_masked(bool masked) {
    irq_masked_ = masked;
    if (!masked) deliver_pending();
}

void Core::signal_irq() {
    if (!powered_ || irq_masked_ || in_handler_) return;
    deliver_pending();
}

void Core::deliver_pending() {
    if (!powered_ || !handler_) return;
    while (!irq_masked_ && irqc_->has_deliverable(id_)) {
        const int irq = irqc_->ack(id_);
        if (irq == IrqController::kSpurious) return;
        in_handler_ = true;
        handler_(irq);
        in_handler_ = false;
    }
}

}  // namespace hpcsec::arch
