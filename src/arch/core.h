// A CPU core: privilege-level state, interrupt line, MMU, timer, executor.
//
// Software layers (hypervisor, kernels) install the IRQ handler — the model
// equivalent of owning the exception vector table. Only one handler exists
// per core at a time: under Hafnium it is the hypervisor's vector (ARM EL2 /
// RISC-V HS), and guest kernels receive interrupts only via forwarding and
// injection, exactly as on real hardware.
#pragma once

#include <functional>
#include <memory>

#include "arch/exec.h"
#include "arch/irq_controller.h"
#include "arch/isa.h"
#include "arch/mmu.h"
#include "arch/timer.h"
#include "arch/types.h"
#include "sim/engine.h"

namespace hpcsec::arch {

class Core {
public:
    using IrqHandler = std::function<void(int irq)>;

    Core(sim::Engine& engine, const PerfModel& perf, IrqController& irqc,
         MemoryMap& mem, CoreId id, const IrqLayout& layout);

    [[nodiscard]] CoreId id() const { return id_; }

    // --- power (PSCI/SBI-HSM-managed) --------------------------------------
    [[nodiscard]] bool powered() const { return powered_; }
    void power_on() { powered_ = true; }
    void power_off();

    // --- privilege state ------------------------------------------------------
    [[nodiscard]] El el() const { return el_; }
    void set_el(El el) { el_ = el; }
    [[nodiscard]] World world() const { return world_; }
    void set_world(World w) { world_ = w; }

    // --- interrupts -----------------------------------------------------------
    /// Install the exception-vector owner. Replaces any previous handler.
    void set_irq_handler(IrqHandler handler) { handler_ = std::move(handler); }

    /// Interrupt mask bit (ARM PSTATE.I / RISC-V sstatus.SIE): true masks
    /// IRQ delivery. Unmasking drains pending IRQs.
    void set_irq_masked(bool masked);
    [[nodiscard]] bool irq_masked() const { return irq_masked_; }

    /// Called by the interrupt controller when this core has a deliverable
    /// interrupt.
    void signal_irq();

    // --- attached units ---------------------------------------------------------
    Mmu& mmu() { return mmu_; }
    GenericTimer& timer() { return timer_; }
    Executor& exec() { return exec_; }
    const Executor& exec() const { return exec_; }
    IrqController& irqc() { return *irqc_; }

private:
    void deliver_pending();

    sim::Engine* engine_;
    IrqController* irqc_;
    CoreId id_;
    bool powered_ = false;
    El el_ = El::kEl3;  // reset state: highest implemented privilege level
    World world_ = World::kNonSecure;
    bool irq_masked_ = true;
    bool in_handler_ = false;
    IrqHandler handler_;

    Mmu mmu_;
    GenericTimer timer_;
    Executor exec_;
};

}  // namespace hpcsec::arch
