#include "arch/devicetree.h"

#include <sstream>
#include <utility>

namespace hpcsec::arch {

DtNode& DtNode::add_child(std::string name) {
    children_.push_back(std::make_unique<DtNode>(std::move(name)));
    return *children_.back();
}

DtNode* DtNode::child(const std::string& name) {
    for (auto& c : children_) {
        if (c->name() == name) return c.get();
    }
    return nullptr;
}

const DtNode* DtNode::child(const std::string& name) const {
    for (const auto& c : children_) {
        if (c->name() == name) return c.get();
    }
    return nullptr;
}

bool DtNode::remove_child(const std::string& name) {
    for (auto it = children_.begin(); it != children_.end(); ++it) {
        if ((*it)->name() == name) {
            children_.erase(it);
            return true;
        }
    }
    return false;
}

std::optional<std::uint64_t> DtNode::get_u64(const std::string& key) const {
    const auto it = props_.find(key);
    if (it == props_.end()) return std::nullopt;
    if (const auto* v = std::get_if<std::uint64_t>(&it->second)) return *v;
    return std::nullopt;
}

std::optional<std::string> DtNode::get_string(const std::string& key) const {
    const auto it = props_.find(key);
    if (it == props_.end()) return std::nullopt;
    if (const auto* v = std::get_if<std::string>(&it->second)) return *v;
    return std::nullopt;
}

std::optional<std::vector<std::uint64_t>> DtNode::get_array(
    const std::string& key) const {
    const auto it = props_.find(key);
    if (it == props_.end()) return std::nullopt;
    if (const auto* v = std::get_if<std::vector<std::uint64_t>>(&it->second)) return *v;
    return std::nullopt;
}

DtNode* DtNode::find(const std::string& path) {
    return const_cast<DtNode*>(std::as_const(*this).find(path));
}

const DtNode* DtNode::find(const std::string& path) const {
    const DtNode* node = this;
    std::size_t pos = 0;
    while (pos < path.size() && node != nullptr) {
        const std::size_t slash = path.find('/', pos);
        const std::string part =
            slash == std::string::npos ? path.substr(pos) : path.substr(pos, slash - pos);
        if (!part.empty()) node = node->child(part);
        if (slash == std::string::npos) break;
        pos = slash + 1;
    }
    return node;
}

std::string DtNode::to_string(int indent) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    std::ostringstream os;
    os << pad << name_ << " {\n";
    for (const auto& [key, value] : props_) {
        os << pad << "  " << key << " = ";
        if (const auto* u = std::get_if<std::uint64_t>(&value)) {
            os << "<0x" << std::hex << *u << std::dec << ">";
        } else if (const auto* s = std::get_if<std::string>(&value)) {
            os << '"' << *s << '"';
        } else if (const auto* a = std::get_if<std::vector<std::uint64_t>>(&value)) {
            os << "<";
            for (std::size_t i = 0; i < a->size(); ++i) {
                os << (i ? " " : "") << "0x" << std::hex << (*a)[i] << std::dec;
            }
            os << ">";
        }
        os << ";\n";
    }
    for (const auto& c : children_) os << c->to_string(indent + 1);
    os << pad << "};\n";
    return os.str();
}

}  // namespace hpcsec::arch
