// Minimal device-tree model.
//
// Hafnium's boot-time configuration (VM images, memory partitions, device
// assignments) is expressed as a device tree on real systems; the manifest
// module builds one of these and the hypervisor consumes it. The paper's
// super-secondary work requires "appropriate updates made to the device tree
// configuration to reflect which I/O devices are actually available in the
// super-secondary partition" — tests assert exactly that.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace hpcsec::arch {

class DtNode {
public:
    using Value = std::variant<std::uint64_t, std::string, std::vector<std::uint64_t>>;

    explicit DtNode(std::string name) : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const { return name_; }

    DtNode& add_child(std::string name);
    [[nodiscard]] DtNode* child(const std::string& name);
    [[nodiscard]] const DtNode* child(const std::string& name) const;
    [[nodiscard]] const std::vector<std::unique_ptr<DtNode>>& children() const {
        return children_;
    }
    bool remove_child(const std::string& name);

    void set(const std::string& key, Value v) { props_[key] = std::move(v); }
    [[nodiscard]] bool has(const std::string& key) const { return props_.contains(key); }
    [[nodiscard]] std::optional<std::uint64_t> get_u64(const std::string& key) const;
    [[nodiscard]] std::optional<std::string> get_string(const std::string& key) const;
    [[nodiscard]] std::optional<std::vector<std::uint64_t>> get_array(
        const std::string& key) const;

    /// Resolve a slash-separated path relative to this node ("vm1/memory").
    [[nodiscard]] DtNode* find(const std::string& path);
    [[nodiscard]] const DtNode* find(const std::string& path) const;

    /// Render as .dts-style text (stable ordering, for golden tests).
    [[nodiscard]] std::string to_string(int indent = 0) const;

private:
    std::string name_;
    std::map<std::string, Value> props_;
    std::vector<std::unique_ptr<DtNode>> children_;
};

}  // namespace hpcsec::arch
