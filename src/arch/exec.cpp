#include "arch/exec.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpcsec::arch {

Executor::Executor(sim::Engine& engine, const PerfModel& perf, CoreId core)
    : engine_(&engine), perf_(&perf), core_(core) {}

void Executor::charge(sim::Cycles overhead) {
    if (state_ == State::kRunning) {
        throw std::logic_error("Executor::charge: preempt the runnable first");
    }
    const sim::SimTime start = std::max(busy_until_, engine_->now());
    busy_until_ = start + overhead;
    usage_.overhead += overhead;
    if (timeline_ != nullptr) {
        timeline_->record(core_, start, busy_until_, 'O', "kernel");
    }
    if (state_ == State::kPendingBegin) {
        // Push the pending start out past the new charge.
        engine_->cancel(pending_event_);
        schedule_start();
    }
}

void Executor::begin(Runnable* r) {
    if (state_ == State::kRunning) {
        // sca-suppress(no-throw-guest-path): Spm::on_vcpu_run returns kBusy
        // before enter_vcpu when the core is running; reaching this on a
        // busy core is a scheduler invariant break worth fail-stopping.
        throw std::logic_error("Executor::begin: core already running");
    }
    if (state_ == State::kPendingBegin) {
        engine_->cancel(pending_event_);
        state_ = State::kIdle;
    }
    current_ = r;
    if (r == nullptr) return;
    if (busy_until_ <= engine_->now()) {
        start_chunk();
    } else {
        state_ = State::kPendingBegin;
        schedule_start();
    }
}

void Executor::schedule_start() {
    pending_event_ =
        engine_->at(std::max(busy_until_, engine_->now()),
                    [this] { start_chunk(); }, sim::kPrioKernel);
}

void Executor::start_chunk() {
    Runnable* r = current_;
    state_ = State::kRunning;
    chunk_start_ = engine_->now();
    chunk_transient_ = pending_transient_;
    pending_transient_ = 0;
    rate_ = perf_->unit_cost(r->profile(), r->mode());
    if (rate_ <= 0.0) rate_ = 1.0;

    const double remaining = r->remaining_units();
    if (!std::isfinite(remaining) || remaining > 1e15) {
        // Run-forever loop: no completion event; only preemption stops it.
        pending_event_ = sim::EventId{};
        return;
    }
    const double cycles = remaining * rate_ + static_cast<double>(chunk_transient_);
    const auto delay = static_cast<sim::Cycles>(std::ceil(cycles));
    pending_event_ =
        engine_->after(delay, [this] { finish_chunk(); }, sim::kPrioCompletion);
}

Runnable* Executor::preempt() {
    switch (state_) {
        case State::kIdle:
            return nullptr;
        case State::kPendingBegin: {
            engine_->cancel(pending_event_);
            Runnable* r = current_;
            current_ = nullptr;
            state_ = State::kIdle;
            return r;
        }
        case State::kRunning: {
            if (pending_event_.valid()) engine_->cancel(pending_event_);
            const sim::SimTime now = engine_->now();
            const sim::Cycles elapsed = now - chunk_start_;
            const sim::Cycles transient_used = std::min(elapsed, chunk_transient_);
            const sim::Cycles effective = elapsed - transient_used;
            usage_.transient += transient_used;
            usage_.work += effective;
            // Unconsumed transient carries over: the TLB is still cold.
            pending_transient_ += chunk_transient_ - transient_used;
            chunk_transient_ = 0;

            Runnable* r = current_;
            if (profiler_ != nullptr) [[unlikely]] {
                profile_walk(r, transient_used, effective);
            }
            const double units = static_cast<double>(effective) / rate_;
            if (units > 0.0) r->advance(units, now);
            if (now > chunk_start_) r->on_interval(chunk_start_, now);
            if (timeline_ != nullptr && now > chunk_start_) {
                const sim::SimTime split = chunk_start_ + transient_used;
                if (transient_used > 0) {
                    timeline_->record(core_, chunk_start_, split, 'T', "tlb-refill");
                }
                if (now > split) timeline_->record(core_, split, now, 'W', r->label());
            }
            if (now > chunk_start_) observe_chunk(chunk_start_ + transient_used, now);
            current_ = nullptr;
            state_ = State::kIdle;
            busy_until_ = std::max(busy_until_, now);
            return r;
        }
    }
    return nullptr;
}

void Executor::observe_chunk(sim::SimTime split, sim::SimTime now) {
    if (recorder_ != nullptr && now > split) {
        recorder_->span(split, now, obs::EventType::kWorkChunk, core_);
    }
    if (metrics_ != nullptr) {
        metrics_->observe(chunk_hist_,
                          engine_->clock().to_micros(now - chunk_start_));
    }
}

// Stage-2 walk attribution: the TLB-refill transient the chunk consumed
// plus the nested-walk share of its steady-state cost (the walk term of
// PerfModel::unit_cost). Native stage-1 walks are not attributed — the
// profiler's tree mirrors the paper's virtualization-overhead breakdown.
void Executor::profile_walk(Runnable* r, sim::Cycles transient_used,
                            sim::Cycles effective) {
    if (r == nullptr || r->mode() != TranslationMode::kTwoStage) return;
    sim::Cycles walk = transient_used;
    const WorkProfile& p = r->profile();
    const double walk_per_unit =
        p.mem_refs_per_unit * p.tlb_miss_rate *
        static_cast<double>(perf_->walk_penalty(TranslationMode::kTwoStage));
    if (rate_ > 0.0 && walk_per_unit > 0.0) {
        walk += static_cast<sim::Cycles>(static_cast<double>(effective) *
                                         (walk_per_unit / rate_));
    }
    if (walk > 0) profiler_->charge(core_, obs::ProfPath::kStage2Walk, walk);
}

void Executor::reprice() {
    if (state_ != State::kRunning) return;
    Runnable* r = preempt();
    begin(r);
}

void Executor::finish_chunk() {
    const sim::SimTime now = engine_->now();
    const sim::Cycles elapsed = now - chunk_start_;
    const sim::Cycles transient_used = std::min(elapsed, chunk_transient_);
    usage_.transient += transient_used;
    usage_.work += elapsed - transient_used;
    chunk_transient_ = 0;
    if (profiler_ != nullptr) [[unlikely]] {
        profile_walk(current_, transient_used, elapsed - transient_used);
    }
    if (timeline_ != nullptr && now > chunk_start_) {
        const sim::SimTime split = chunk_start_ + transient_used;
        if (transient_used > 0) {
            timeline_->record(core_, chunk_start_, split, 'T', "tlb-refill");
        }
        if (now > split) {
            timeline_->record(core_, split, now, 'W', current_->label());
        }
    }
    if (now > chunk_start_) observe_chunk(chunk_start_ + transient_used, now);

    Runnable* r = current_;
    current_ = nullptr;
    state_ = State::kIdle;
    pending_event_ = sim::EventId{};
    busy_until_ = std::max(busy_until_, now);

    r->advance(r->remaining_units(), now);
    if (now > chunk_start_) r->on_interval(chunk_start_, now);
    if (on_complete_) on_complete_(r);
}

}  // namespace hpcsec::arch
