// Core execution model: Runnable work and the per-core Executor.
//
// The Executor is the single consumer of a core's cycles. Kernels and the
// hypervisor drive it with two verbs:
//   charge(c) — the core spends c cycles on a kernel/hypervisor path
//               (trap, world switch, tick handler, ...);
//   begin(r)  — workload r starts running once all charged time has
//               elapsed, and keeps running until preempt() or completion.
// Work progression is continuous-rate: a runnable's remaining units drain
// at a rate priced by the PerfModel for its translation mode, with a
// one-off TLB-refill transient after preemptions/world switches.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "arch/perfmodel.h"
#include "arch/types.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "sim/engine.h"
#include "sim/timeline.h"

namespace hpcsec::arch {

/// Something that consumes CPU time on a core.
class Runnable {
public:
    virtual ~Runnable() = default;

    [[nodiscard]] virtual std::string_view label() const = 0;

    /// Abstract work units left; may be infinity for run-forever loops.
    [[nodiscard]] virtual double remaining_units() const = 0;

    /// Consume `units` of progress. `now` is current simulated time.
    virtual void advance(double units, sim::SimTime now) = 0;

    /// Statistical profile used to price this runnable's work.
    [[nodiscard]] virtual const WorkProfile& profile() const = 0;

    /// Translation regime the work executes under.
    [[nodiscard]] virtual TranslationMode mode() const = 0;

    /// Called for every on-CPU interval [start, end) this runnable got.
    /// Selfish-detour uses this to find gaps in its own execution.
    virtual void on_interval(sim::SimTime start, sim::SimTime end) {
        (void)start;
        (void)end;
    }
};

/// Per-core cycle accounting buckets.
struct CoreUsage {
    sim::Cycles work = 0;       ///< productive workload cycles
    sim::Cycles transient = 0;  ///< TLB re-warm transients
    sim::Cycles overhead = 0;   ///< kernel/hypervisor path costs
};

class Executor {
public:
    Executor(sim::Engine& engine, const PerfModel& perf, CoreId core);

    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    /// The core spends `overhead` cycles on a kernel/hypervisor path before
    /// anything else can run. Illegal while a runnable is running (preempt
    /// first). Charges stack: consecutive charges serialize.
    void charge(sim::Cycles overhead);

    /// Start running `r` once charged time has elapsed. Illegal while
    /// running. Replaces any not-yet-started runnable.
    void begin(Runnable* r);

    /// Stop the current (or pending) runnable, charging partial progress.
    /// Returns what was running/about to run, or nullptr.
    Runnable* preempt();

    /// Re-price the current chunk after the runnable's remaining work
    /// changed externally (e.g. a busy-wait barrier released). Zero cost:
    /// progress is charged and the chunk restarts at the new rate/length.
    void reprice();

    /// Add a one-off transient (e.g. TLB refill after a world switch) that
    /// is consumed at the start of the next chunk.
    void add_transient(sim::Cycles extra) { pending_transient_ += extra; }

    /// Transient priced from a profile for a translation mode.
    void add_refill_transient(const WorkProfile& p, TranslationMode m) {
        pending_transient_ += perf_->refill_transient(p, m);
    }

    [[nodiscard]] bool running() const { return state_ == State::kRunning; }
    [[nodiscard]] bool occupied() const { return state_ != State::kIdle; }
    [[nodiscard]] Runnable* current() const { return current_; }
    [[nodiscard]] CoreId core() const { return core_; }
    [[nodiscard]] sim::SimTime busy_until() const { return busy_until_; }

    /// Invoked (from event context) when the current runnable's units reach
    /// zero. The runnable has been detached; the core is idle.
    void set_on_complete(std::function<void(Runnable*)> fn) {
        on_complete_ = std::move(fn);
    }

    [[nodiscard]] const CoreUsage& usage() const { return usage_; }

    /// Attach a timeline recorder (purely observational).
    void set_timeline(sim::Timeline* timeline) { timeline_ = timeline; }

    /// Attach the structured span recorder (purely observational; one
    /// branch per chunk boundary when the workload category is off).
    void set_recorder(obs::SpanRecorder* recorder) { recorder_ = recorder; }

    /// Record on-CPU chunk durations (µs) into a registry histogram.
    void set_chunk_metrics(obs::MetricsRegistry* metrics,
                           obs::MetricsRegistry::Handle chunk_hist) {
        metrics_ = metrics;
        chunk_hist_ = chunk_hist;
    }

    /// Attach the cycle profiler (purely observational). Stage-2 walk
    /// cycles — the refill transient plus the nested-walk share of each
    /// chunk's steady-state cost — attribute to ProfPath::kStage2Walk at
    /// chunk boundaries. Only attach an enabled profiler: detached (the
    /// default) the accounting costs one predicted branch per boundary.
    void set_profiler(obs::CycleProfiler* profiler) { profiler_ = profiler; }

private:
    enum class State { kIdle, kPendingBegin, kRunning };

    void schedule_start();
    void start_chunk();  // start event body
    void finish_chunk(); // completion event body

    sim::Engine* engine_;
    const PerfModel* perf_;
    CoreId core_;

    State state_ = State::kIdle;
    Runnable* current_ = nullptr;
    sim::EventId pending_event_{};     // start or completion event
    sim::SimTime busy_until_ = 0;      // end of charged kernel time
    sim::SimTime chunk_start_ = 0;
    sim::Cycles chunk_transient_ = 0;  // transient charged to current chunk
    double rate_ = 1.0;                // cycles per unit for current chunk
    sim::Cycles pending_transient_ = 0;

    void observe_chunk(sim::SimTime split, sim::SimTime now);
    void profile_walk(Runnable* r, sim::Cycles transient_used,
                      sim::Cycles effective);

    std::function<void(Runnable*)> on_complete_;
    CoreUsage usage_;
    sim::Timeline* timeline_ = nullptr;
    obs::SpanRecorder* recorder_ = nullptr;
    obs::MetricsRegistry* metrics_ = nullptr;
    obs::MetricsRegistry::Handle chunk_hist_ = 0;
    obs::CycleProfiler* profiler_ = nullptr;
};

}  // namespace hpcsec::arch
