// Fixed 256-bit interrupt-id set.
//
// Replaces std::set<int> in the per-core/per-VCPU interrupt hot paths: the
// full GIC id space (16 SGIs + 16 PPIs + 224 SPIs) fits in four words, so
// membership, insert and erase are one masked OR/AND with no heap node
// traffic, and intersection (pending ∩ enabled) is four ANDs. Iteration
// yields ids in ascending order — the same order std::set<int> gave — so
// every consumer that walked the set stays deterministic unchanged.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace hpcsec::arch {

class IrqBitset {
public:
    static constexpr int kBits = 256;
    static constexpr int kWords = kBits / 64;

    /// Returns true when the id was newly inserted (std::set semantics).
    bool insert(int irq) {
        const std::uint64_t bit = 1ull << (irq & 63);
        std::uint64_t& w = words_[word_of(irq)];
        const bool fresh = (w & bit) == 0;
        w |= bit;
        return fresh;
    }

    /// Returns true when the id was present (std::set::erase count).
    bool erase(int irq) {
        const std::uint64_t bit = 1ull << (irq & 63);
        std::uint64_t& w = words_[word_of(irq)];
        const bool had = (w & bit) != 0;
        w &= ~bit;
        return had;
    }

    [[nodiscard]] bool contains(int irq) const {
        return (words_[word_of(irq)] & 1ull << (irq & 63)) != 0;
    }

    void clear() {
        for (auto& w : words_) w = 0;
    }

    [[nodiscard]] bool empty() const {
        std::uint64_t any = 0;
        for (const auto& w : words_) any |= w;
        return any == 0;
    }

    [[nodiscard]] std::size_t size() const {
        std::size_t n = 0;
        for (const auto& w : words_) n += static_cast<std::size_t>(std::popcount(w));
        return n;
    }

    /// Raw word access, for intersection scans (pending ∩ enabled).
    [[nodiscard]] std::uint64_t word(int i) const { return words_[i]; }

    /// Forward iterator over set ids, ascending.
    class iterator {
    public:
        iterator(const IrqBitset* set, int word) : set_(set), word_(word) {
            if (word_ < kWords) {
                bits_ = set_->words_[word_];
                skip_empty();
            }
        }
        int operator*() const {
            return word_ * 64 + std::countr_zero(bits_);
        }
        iterator& operator++() {
            bits_ &= bits_ - 1;  // clear lowest set bit
            skip_empty();
            return *this;
        }
        bool operator!=(const iterator& o) const {
            return word_ != o.word_ || bits_ != o.bits_;
        }
        bool operator==(const iterator& o) const { return !(*this != o); }

    private:
        void skip_empty() {
            while (bits_ == 0) {
                ++word_;
                if (word_ >= kWords) {
                    word_ = kWords;
                    return;
                }
                bits_ = set_->words_[word_];
            }
        }
        const IrqBitset* set_;
        int word_;
        std::uint64_t bits_ = 0;
    };

    [[nodiscard]] iterator begin() const { return iterator(this, 0); }
    [[nodiscard]] iterator end() const { return iterator(this, kWords); }

private:
    static constexpr int word_of(int irq) { return (irq & (kBits - 1)) >> 6; }

    std::uint64_t words_[kWords] = {};
};

}  // namespace hpcsec::arch
