// ISA-generic interrupt-controller interface.
//
// Both backends — the ARM GIC (src/arch/arm/) and the RISC-V PLIC+CLINT
// combination (src/arch/riscv/) — implement the same pending/claim
// contract over one shared interrupt-id space:
//   [kIpiBase,      kPrivateBase)   inter-core IPIs (ARM SGIs, RISC-V
//                                   CLINT software interrupts)
//   [kPrivateBase,  kExternalBase)  per-core private lines (timer channels;
//                                   the per-ISA ids live in IrqLayout)
//   [kExternalBase, ...)            shared device interrupts (ARM SPIs,
//                                   RISC-V PLIC gateway sources)
// Keeping the ranges ISA-invariant lets PlatformConfig device tables, the
// IRQ router and check's vGIC auditor stay backend-agnostic; only the timer
// ids differ, and those are published through arch::IsaOps.
//
// Determinism contract: with uniform priorities, ack() always claims the
// lowest pending enabled id, and eoi() re-signals while deliverable
// interrupts remain queued. Both backends honor it, so kernel scheduling
// order is a pure function of the seed on either ISA.
#pragma once

#include <cstdint>
#include <functional>

#include "arch/types.h"

namespace hpcsec::arch {

inline constexpr int kIpiBase = 0;
inline constexpr int kIpiLimit = 16;
inline constexpr int kPrivateBase = 16;
inline constexpr int kExternalBase = 32;

class IrqController {
public:
    /// `signal` is invoked when a core has a deliverable pending interrupt
    /// (the "IRQ line"). The core decides whether its mask bit blocks it.
    using SignalFn = std::function<void(CoreId core)>;

    /// ack() result when nothing is deliverable (GIC spurious id; the PLIC
    /// backend reports the same sentinel rather than its native 0).
    static constexpr int kSpurious = 1023;

    virtual ~IrqController() = default;

    virtual void set_signal(SignalFn fn) = 0;

    // --- distributor / gateway configuration --------------------------------
    virtual void enable_irq(int irq) = 0;
    virtual void disable_irq(int irq) = 0;
    [[nodiscard]] virtual bool irq_enabled(int irq) const = 0;
    /// External (shared device) routing only; IPIs and private lines are
    /// inherently per-core.
    virtual void set_external_target(int irq, CoreId core) = 0;
    [[nodiscard]] virtual CoreId external_target(int irq) const = 0;
    virtual void set_priority(int irq, std::uint8_t prio) = 0;

    // --- interrupt generation ------------------------------------------------
    virtual void raise_external(int irq) = 0;
    virtual void raise_private(CoreId core, int irq) = 0;
    virtual void send_ipi(CoreId target, int irq) = 0;  ///< irq in [0, kIpiLimit)
    /// Clear a level-triggered source before it is acked.
    virtual void clear_pending(CoreId core, int irq) = 0;

    // --- per-CPU interface ---------------------------------------------------
    /// Acknowledge/claim the highest-priority pending enabled interrupt for
    /// `core`. Returns kSpurious when nothing is deliverable.
    virtual int ack(CoreId core) = 0;
    virtual void eoi(CoreId core, int irq) = 0;
    [[nodiscard]] virtual bool has_deliverable(CoreId core) const = 0;
    [[nodiscard]] virtual int active_irq(CoreId core) const = 0;

    [[nodiscard]] virtual std::uint64_t delivered_count() const = 0;
    [[nodiscard]] virtual int ncores() const = 0;
};

}  // namespace hpcsec::arch
