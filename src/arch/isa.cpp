#include "arch/isa.h"

#include <stdexcept>

#include "arch/arm/gic.h"
#include "arch/riscv/plic.h"

namespace hpcsec::arch {

namespace {

const IsaOps kArmOps{
    Isa::kArm,
    "arm",
    "arm,cortex-a53",
    El::kEl0,
    El::kEl1,
    El::kEl2,
    El::kEl3,
    IrqLayout{kIrqPhysTimer, kIrqVirtTimer, kIrqHypTimer},
    PtFormat::armv8_4k(),
    PtFormat::armv8_4k(),
};

const IsaOps kRiscvOps{
    Isa::kRiscv,
    "riscv",
    "riscv,rv64gch",
    El::kEl0,
    El::kEl1,
    El::kEl2,
    El::kEl3,
    IrqLayout{kIrqSupervisorTimer, kIrqVsTimer, kIrqMachineTimer},
    PtFormat::sv39(),
    PtFormat::sv39x4(),
};

}  // namespace

const char* IsaOps::priv_name(El el) const {
    if (isa == Isa::kArm) {
        switch (el) {
            case El::kEl0: return "EL0";
            case El::kEl1: return "EL1";
            case El::kEl2: return "EL2";
            case El::kEl3: return "EL3";
        }
    } else {
        switch (el) {
            case El::kEl0: return "U";
            case El::kEl1: return "VS";
            case El::kEl2: return "HS";
            case El::kEl3: return "M";
        }
    }
    return "?";
}

std::unique_ptr<IrqController> IsaOps::make_irq_controller(int ncores) const {
    if (isa == Isa::kRiscv) return std::make_unique<Plic>(ncores);
    return std::make_unique<Gic>(ncores);
}

const IsaOps& IsaOps::get(Isa isa) {
    return isa == Isa::kRiscv ? kRiscvOps : kArmOps;
}

std::string to_string(Isa isa) { return IsaOps::get(isa).name; }

bool parse_isa(const std::string& token, Isa& out, std::string& error) {
    if (token == "arm") {
        out = Isa::kArm;
        return true;
    }
    if (token == "riscv") {
        out = Isa::kRiscv;
        return true;
    }
    error = "bad isa '" + token + "' (valid: arm, riscv)";
    return false;
}

}  // namespace hpcsec::arch
