// ISA selection and per-ISA operations table.
//
// The arch layer is split into this ISA-generic core plus two backends:
//   src/arch/arm/    ARMv8 + GICv2/3 (EL2 hypervisor, vtimer, 48-bit
//                    4-level stage-1/stage-2 tables)
//   src/arch/riscv/  RISC-V H-extension + PLIC/CLINT (HS-mode hypervisor,
//                    vstimer, Sv39 stage-1 and Sv39x4 stage-2 tables)
// IsaOps is the seam: privilege-level mapping, trap naming, two-stage
// translation formats, interrupt layout and the controller factory. Nothing
// outside src/arch/ may include a backend header (sca rule isa-portability);
// consumers reach backend behavior exclusively through this table.
//
// Privilege mapping. The generic `El` ladder is shared by both ISAs:
//   El::kEl0  ARM EL0 (user)        RISC-V U  (guest user / VU)
//   El::kEl1  ARM EL1 (guest OS)    RISC-V VS (virtualized supervisor)
//   El::kEl2  ARM EL2 (hypervisor)  RISC-V HS (hypervisor-extended S-mode)
//   El::kEl3  ARM EL3 (monitor)     RISC-V M  (machine mode / SBI firmware)
#pragma once

#include <memory>
#include <string>

#include "arch/irq_controller.h"
#include "arch/page_table.h"
#include "arch/types.h"

namespace hpcsec::arch {

enum class Isa : std::uint8_t {
    kArm = 0,
    kRiscv = 1,
};

/// Per-ISA interrupt-id layout. The range structure (IPIs, private lines,
/// external sources) is shared — see irq_controller.h — so only the timer
/// line ids differ between backends.
struct IrqLayout {
    int phys_timer;  ///< kernel-owned timer (ARM PPI 30; RISC-V STI)
    int virt_timer;  ///< guest virtual timer (ARM PPI 27; RISC-V VSTI)
    int hyp_timer;   ///< hypervisor timer (ARM PPI 26; RISC-V MTI analogue)
};

/// The per-ISA operations/constants table. One static instance per backend;
/// everything is immutable, so references stay valid for the process
/// lifetime and the table can be consulted on hot paths without a lock.
struct IsaOps {
    Isa isa;
    const char* name;            ///< "arm" / "riscv" (the --isa token)
    const char* cpu_compatible;  ///< device-tree cpu node compatible string

    // Privilege-level mapping onto the generic El ladder.
    El user_level = El::kEl0;
    El guest_kernel_level = El::kEl1;
    El hyp_level = El::kEl2;
    El monitor_level = El::kEl3;

    IrqLayout irq;

    PtFormat stage1;  ///< VA -> IPA format (ARMv8 4-level 48-bit; Sv39)
    PtFormat stage2;  ///< IPA -> PA format (ARMv8 4-level 48-bit; Sv39x4)

    /// ISA-specific privilege-level name ("EL2" / "HS") for traces & tests.
    [[nodiscard]] const char* priv_name(El el) const;

    /// Construct this ISA's interrupt controller (ARM: Gic; RISC-V: Plic).
    [[nodiscard]] std::unique_ptr<IrqController> make_irq_controller(
        int ncores) const;

    /// The per-ISA singleton table.
    [[nodiscard]] static const IsaOps& get(Isa isa);
};

[[nodiscard]] std::string to_string(Isa isa);

/// Parse an ISA token ("arm", "riscv"). On failure returns false and fills
/// `error` with a message listing the valid names (the --trace-mask/--chaos
/// CLI convention).
[[nodiscard]] bool parse_isa(const std::string& token, Isa& out,
                             std::string& error);

}  // namespace hpcsec::arch
