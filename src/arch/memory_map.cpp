#include "arch/memory_map.h"

#include <algorithm>

namespace hpcsec::arch {

void MemoryMap::add_region(MemRegion region) {
    if (region.size == 0 || (region.base & kPageMask) != 0 || (region.size & kPageMask) != 0) {
        throw std::invalid_argument("MemoryMap: regions must be non-empty and page aligned");
    }
    for (const auto& r : regions_) {
        const bool disjoint = region.end() <= r.base || region.base >= r.end();
        if (!disjoint) throw std::invalid_argument("MemoryMap: overlapping regions");
    }
    regions_.push_back(std::move(region));
    std::sort(regions_.begin(), regions_.end(),
              [](const MemRegion& a, const MemRegion& b) { return a.base < b.base; });
}

const MemRegion* MemoryMap::find_region(PhysAddr a) const {
    for (const auto& r : regions_) {
        if (r.contains(a)) return &r;
    }
    return nullptr;
}

bool MemoryMap::is_ram(PhysAddr a) const {
    const auto* r = find_region(a);
    return r != nullptr && r->kind == RegionKind::kRam;
}

bool MemoryMap::is_mmio(PhysAddr a) const {
    const auto* r = find_region(a);
    return r != nullptr && r->kind == RegionKind::kMmio;
}

World MemoryMap::world_of(PhysAddr a) const {
    const auto* r = find_region(a);
    return r != nullptr ? r->world : World::kNonSecure;
}

std::uint64_t MemoryMap::ram_bytes() const {
    std::uint64_t total = 0;
    for (const auto& r : regions_) {
        if (r.kind == RegionKind::kRam) total += r.size;
    }
    return total;
}

std::uint64_t MemoryMap::ram_bytes(World w) const {
    std::uint64_t total = 0;
    for (const auto& r : regions_) {
        if (r.kind == RegionKind::kRam && r.world == w) total += r.size;
    }
    return total;
}

PhysAddr MemoryMap::alloc_frames(std::uint64_t nframes, VmId owner, World world) {
    if (nframes == 0) throw std::invalid_argument("alloc_frames: zero frames");
    for (const auto& r : regions_) {
        if (r.kind != RegionKind::kRam || r.world != world) continue;
        // First-fit scan within the region.
        std::uint64_t run = 0;
        PhysAddr run_base = r.base;
        for (PhysAddr a = r.base; a < r.end(); a += kPageSize) {
            const auto it = frames_.find(page_index(a));
            const bool busy = it != frames_.end() && it->second.owner.allocated;
            if (busy) {
                run = 0;
                run_base = a + kPageSize;
            } else {
                ++run;
                if (run == nframes) {
                    for (PhysAddr p = run_base; p < run_base + nframes * kPageSize;
                         p += kPageSize) {
                        frames_[page_index(p)] = FrameState{FrameOwner{owner, true}};
                    }
                    allocated_frames_ += nframes;
                    return run_base;
                }
            }
        }
    }
    throw std::runtime_error("MemoryMap: out of contiguous frames");
}

void MemoryMap::free_frames(PhysAddr base, std::uint64_t nframes) {
    for (PhysAddr a = base; a < base + nframes * kPageSize; a += kPageSize) {
        auto it = frames_.find(page_index(a));
        if (it == frames_.end() || !it->second.owner.allocated) {
            throw std::logic_error("free_frames: frame not allocated");
        }
        frames_.erase(it);
    }
    allocated_frames_ -= nframes;
    // Hygiene: a freed frame is no longer critical. Dropping the tag here
    // (rather than at the next tagging) keeps tagged_count_ the exact
    // number of live tagged frames, which the hot-path gate depends on.
    bool changed = false;
    for (PhysAddr a = base; a < base + nframes * kPageSize; a += kPageSize) {
        if (tagged_.erase(page_index(a)) != 0) {
            --tagged_count_;
            changed = true;
        }
    }
    if (changed && tag_change_hook_) tag_change_hook_();
}

void MemoryMap::set_integrity_tag(PhysAddr base, std::uint64_t nframes, bool tagged) {
    bool changed = false;
    for (PhysAddr a = base; a < base + nframes * kPageSize; a += kPageSize) {
        if (!is_ram(a)) {
            throw std::invalid_argument("set_integrity_tag: frame is not RAM");
        }
        if (tagged) {
            if (tagged_.insert(page_index(a)).second) {
                ++tagged_count_;
                changed = true;
            }
        } else if (tagged_.erase(page_index(a)) != 0) {
            --tagged_count_;
            changed = true;
        }
    }
    // Shoot down cached translations even on a clear: a stale "tagged"
    // verdict would fault a now-legal access.
    if (changed && tag_change_hook_) tag_change_hook_();
}

std::vector<PhysAddr> MemoryMap::frames_owned_by(VmId vm) const {
    std::vector<PhysAddr> out;
    // sca-suppress(det-unordered-iter): collected addresses are sorted below,
    // so the result is independent of hash-map iteration order.
    for (const auto& [page, state] : frames_) {
        if (state.owner.allocated && state.owner.vm == vm) {
            out.push_back(page << kPageShift);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

void MemoryMap::set_owner(PhysAddr base, std::uint64_t nframes, VmId owner) {
    for (PhysAddr a = base; a < base + nframes * kPageSize; a += kPageSize) {
        auto it = frames_.find(page_index(a));
        if (it == frames_.end() || !it->second.owner.allocated) {
            throw std::logic_error("set_owner: frame not allocated");
        }
        it->second.owner.vm = owner;
    }
}

std::optional<FrameOwner> MemoryMap::owner_of(PhysAddr a) const {
    const auto it = frames_.find(page_index(a));
    if (it == frames_.end()) return std::nullopt;
    return it->second.owner;
}

bool MemoryMap::owned_span(PhysAddr base, std::uint64_t bytes, VmId vm) const {
    for (PhysAddr a = page_floor(base); a < base + bytes; a += kPageSize) {
        if (!is_ram(a)) return false;
        const auto o = owner_of(a);
        if (!o || !o->allocated || o->vm != vm) return false;
    }
    return true;
}

FaultKind MemoryMap::check_physical_access(PhysAddr a, World accessor) const {
    const auto* r = find_region(a);
    if (r == nullptr) return FaultKind::kAddressSize;
    // TrustZone rule: secure masters may touch both worlds; non-secure
    // masters are confined to non-secure memory.
    if (r->world == World::kSecure && accessor == World::kNonSecure) {
        return FaultKind::kSecurity;
    }
    return FaultKind::kNone;
}

void MemoryMap::register_mmio(PhysAddr region_base, MmioHandler handler) {
    const MemRegion* r = find_region(region_base);
    if (r == nullptr || r->kind != RegionKind::kMmio || r->base != region_base) {
        throw std::invalid_argument("register_mmio: no MMIO region at that base");
    }
    mmio_[region_base] = std::move(handler);
}

std::uint64_t MemoryMap::read64(PhysAddr a, World accessor) const {
    if (const FaultKind f = check_physical_access(a, accessor); f != FaultKind::kNone) {
        throw std::runtime_error("read64: " + to_string(f) + " fault");
    }
    if (const MemRegion* r = find_region(a); r != nullptr && r->kind == RegionKind::kMmio) {
        const auto it = mmio_.find(r->base);
        if (it != mmio_.end() && it->second.read) return it->second.read(a - r->base);
        return 0;
    }
    const auto it = store_.find(a / 8);
    return it == store_.end() ? 0 : it->second;
}

void MemoryMap::write64(PhysAddr a, std::uint64_t value, World accessor) {
    if (const FaultKind f = check_physical_access(a, accessor); f != FaultKind::kNone) {
        throw std::runtime_error("write64: " + to_string(f) + " fault");
    }
    if (const MemRegion* r = find_region(a); r != nullptr && r->kind == RegionKind::kMmio) {
        const auto it = mmio_.find(r->base);
        if (it != mmio_.end() && it->second.write) it->second.write(a - r->base, value);
        return;
    }
    if (value == 0) {
        store_.erase(a / 8);
    } else {
        store_[a / 8] = value;
    }
}

}  // namespace hpcsec::arch
