// Physical memory model: region layout, TrustZone attributes, frame
// ownership, and a sparse functional backing store.
//
// Frame ownership is the ground truth the isolation property tests check
// against: every RAM frame is owned by exactly one entity (hypervisor, a VM,
// or free), and stage-2 translations must never let a VM reach a frame it
// does not own or hold a share-grant for.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "arch/types.h"

namespace hpcsec::arch {

enum class RegionKind : std::uint8_t {
    kRam,
    kMmio,
    kReserved,
};

struct MemRegion {
    std::string name;
    PhysAddr base = 0;
    std::uint64_t size = 0;
    RegionKind kind = RegionKind::kRam;
    World world = World::kNonSecure;

    [[nodiscard]] PhysAddr end() const { return base + size; }
    [[nodiscard]] bool contains(PhysAddr a) const { return a >= base && a < end(); }
};

/// Who owns a physical frame.
struct FrameOwner {
    VmId vm = kHypervisorId;  ///< kHypervisorId also encodes "hypervisor/firmware"
    bool allocated = false;
};

class MemoryMap {
public:
    void add_region(MemRegion region);

    [[nodiscard]] const std::vector<MemRegion>& regions() const { return regions_; }
    [[nodiscard]] const MemRegion* find_region(PhysAddr a) const;
    [[nodiscard]] bool is_ram(PhysAddr a) const;
    [[nodiscard]] bool is_mmio(PhysAddr a) const;
    [[nodiscard]] World world_of(PhysAddr a) const;

    /// Total bytes of RAM across all regions (per world if given).
    [[nodiscard]] std::uint64_t ram_bytes() const;
    [[nodiscard]] std::uint64_t ram_bytes(World w) const;

    // --- frame allocation / ownership -------------------------------------

    /// Allocate `nframes` physically contiguous RAM frames in `world` and tag
    /// them as owned by `owner`. Returns the base PA.
    /// Throws std::runtime_error when no suitable contiguous range exists.
    PhysAddr alloc_frames(std::uint64_t nframes, VmId owner, World world);

    /// Free previously allocated frames (ownership returns to "free").
    void free_frames(PhysAddr base, std::uint64_t nframes);

    /// Transfer ownership of allocated frames (VM image donation etc.).
    void set_owner(PhysAddr base, std::uint64_t nframes, VmId owner);

    [[nodiscard]] std::optional<FrameOwner> owner_of(PhysAddr a) const;

    /// True when every frame in [base, base+bytes) is RAM owned by `vm`.
    [[nodiscard]] bool owned_span(PhysAddr base, std::uint64_t bytes, VmId vm) const;

    [[nodiscard]] std::uint64_t allocated_frames() const { return allocated_frames_; }

    // --- integrity tags (HDFI-style one-bit frame tags) --------------------

    /// Tag (or clear) the one-bit integrity mark on every frame in
    /// [base, base + nframes * page). Tagged frames hold SPM-critical state
    /// (stage-2 tables, attestation log, signature material, manifest); the
    /// MMU raises FaultKind::kTagViolation when a guest translation targets
    /// one. Every change fires the tag-change hook so cached translations
    /// (TLB entries, the L0 line) are shot down — a stale fill must never
    /// outlive a tag flip.
    void set_integrity_tag(PhysAddr base, std::uint64_t nframes, bool tagged);

    /// Fast gate for the translate hot path: with no frame tagged anywhere
    /// this is a single predicted branch, so the tags-off cost floor is one
    /// compare against a resident counter.
    [[nodiscard]] bool has_integrity_tags() const { return tagged_count_ != 0; }

    /// DFITAGCHECK: true when the frame holding `a` carries the tag.
    [[nodiscard]] bool integrity_tagged(PhysAddr a) const {
        if (tagged_count_ == 0) [[likely]] {
            return false;
        }
        return tagged_.find(page_index(a)) != tagged_.end();
    }

    /// Invoked after every tag change (set or clear). The platform wires
    /// this to a full TLB shootdown on every core.
    void set_tag_change_hook(std::function<void()> hook) {
        tag_change_hook_ = std::move(hook);
    }

    /// Frames currently owned by `vm`, ascending by PA — the deterministic
    /// ground-truth enumeration VM teardown reclaims against (a VM's holdings
    /// can differ from its boot window once FFA donations have moved frames).
    [[nodiscard]] std::vector<PhysAddr> frames_owned_by(VmId vm) const;

    // --- functional backing store (sparse, 64-bit words) -------------------

    /// Aligned 64-bit load/store at a physical address. The security check
    /// against `world` enforces TrustZone partitioning at the memory system
    /// level (a non-secure master can never read secure RAM).
    [[nodiscard]] std::uint64_t read64(PhysAddr a, World accessor) const;
    void write64(PhysAddr a, std::uint64_t value, World accessor);

    /// Raises FaultKind::kSecurity as a return instead of throwing.
    [[nodiscard]] FaultKind check_physical_access(PhysAddr a, World accessor) const;

    // --- MMIO dispatch -------------------------------------------------------
    struct MmioHandler {
        std::function<std::uint64_t(std::uint64_t offset)> read;
        std::function<void(std::uint64_t offset, std::uint64_t value)> write;
    };

    /// Attach a device model to an MMIO region (identified by its base).
    /// Accesses to the region route to the handler instead of the RAM store.
    void register_mmio(PhysAddr region_base, MmioHandler handler);

private:
    struct FrameState {
        FrameOwner owner;
    };

    std::vector<MemRegion> regions_;
    // Sparse: only frames that were ever allocated appear here.
    std::unordered_map<std::uint64_t, FrameState> frames_;
    std::unordered_map<std::uint64_t, std::uint64_t> store_;
    std::unordered_map<std::uint64_t, MmioHandler> mmio_;  // keyed by region base
    std::uint64_t allocated_frames_ = 0;
    // Sparse tag bits, keyed by page index; lookup-only on hot paths (never
    // iterated), count-gated so the untagged world pays one branch.
    std::unordered_set<std::uint64_t> tagged_;
    std::uint64_t tagged_count_ = 0;
    std::function<void()> tag_change_hook_;
};

}  // namespace hpcsec::arch
