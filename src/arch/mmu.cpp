#include "arch/mmu.h"

namespace hpcsec::arch {

void Mmu::set_context(const PageTable* stage1, const PageTable* stage2, VmId vmid,
                      Asid asid, World world) {
    stage1_ = stage1;
    stage2_ = stage2;
    vmid_ = vmid;
    asid_ = asid;
    world_ = world;
    l0_ = L0Entry{};  // the cached line belongs to the outgoing context
}

Translation Mmu::translate(VirtAddr va, Access access) {
    // L0 hit: same page as the last successful translation and no TLBI of
    // any scope since the fill. One compare + one epoch check; the
    // permission check still applies, exactly as on the TLB-hit path below.
    const std::uint64_t in_page = page_index(va);
    if (in_page == l0_.in_page && l0_.epoch == tlb_.flush_epoch()) {
        ++l0_hits_;
        tlb_.note_front_hit();
        Translation t;
        if (!perms_allow(l0_.perms, access)) {
            t.fault = FaultKind::kPermission;
            t.fault_stage = stage1_ != nullptr ? 1 : 2;
            return t;
        }
        const PhysAddr pa = (l0_.out_page << kPageShift) | (va & kPageMask);
        // DFITAGCHECK on the hit path too: tag flips flush every TLB scope
        // (which bumps the epoch and so kills this line), but the check must
        // not *depend* on that wiring — a cached translation is never a
        // licence to touch a tagged frame. Tags-off cost: one predicted
        // branch on the resident counter.
        if (mem_->integrity_tagged(pa) && vmid_ != kHypervisorId) {
            t.fault = FaultKind::kTagViolation;
            t.fault_stage = 0;
            return t;
        }
        t.pa = pa;
        t.tlb_hit = true;
        return t;
    }

    // Combined-translation TLB hit short-circuits both walks, but the
    // permission check still applies (perms are cached in the entry).
    if (const TlbEntry* e = tlb_.lookup(vmid_, asid_, page_index(va))) {
        Translation t;
        if (!perms_allow(e->perms, access)) {
            t.fault = FaultKind::kPermission;
            t.fault_stage = stage1_ != nullptr ? 1 : 2;
            return t;
        }
        const PhysAddr pa = (e->out_page << kPageShift) | (va & kPageMask);
        if (mem_->integrity_tagged(pa) && vmid_ != kHypervisorId) {
            t.fault = FaultKind::kTagViolation;
            t.fault_stage = 0;
            return t;
        }
        t.pa = pa;
        t.tlb_hit = true;
        l0_ = {e->in_page, e->out_page, tlb_.flush_epoch(), e->perms};
        return t;
    }

    Translation t = translate_uncached(va, access);
    if (t.fault == FaultKind::kNone) {
        TlbEntry e;
        e.vmid = vmid_;
        e.asid = asid_;
        e.in_page = page_index(va);
        e.out_page = page_index(t.pa);
        // Cache the *combined* permissions so later accesses of other kinds
        // re-check correctly.
        std::uint8_t perms = kPermRWX;
        if (stage1_ != nullptr) perms &= stage1_->walk(va).perms;
        if (stage2_ != nullptr) {
            const std::uint64_t ipa =
                stage1_ != nullptr ? (stage1_->walk(va).out) : va;
            perms &= stage2_->walk(ipa).perms;
        }
        e.perms = perms;
        e.secure = mem_->world_of(t.pa) == World::kSecure;
        tlb_.insert(e);
        l0_ = {e.in_page, e.out_page, tlb_.flush_epoch(), e.perms};
    }
    return t;
}

Translation Mmu::translate_uncached(VirtAddr va, Access access) {
    Translation t;
    IpaAddr ipa = va;
    std::uint8_t perms = kPermRWX;

    if (stage1_ != nullptr) {
        const WalkResult s1 = stage1_->walk(va);
        // Each stage-1 table access is itself an IPA that needs stage-2
        // translation under virtualization: the classic nested-walk blowup.
        // The multiplier is the stage-2 format's depth (4 on ARMv8, 3 on
        // Sv39x4), so the blowup scales with the configured ISA.
        const int s2_per_access = stage2_ != nullptr ? stage2_->format().levels : 0;
        t.table_accesses += s1.table_accesses * (1 + s2_per_access);
        if (s1.fault != FaultKind::kNone) {
            t.fault = s1.fault;
            t.fault_stage = 1;
            return t;
        }
        ipa = s1.out;
        perms &= s1.perms;
    }

    PhysAddr pa = ipa;
    if (stage2_ != nullptr) {
        const WalkResult s2 = stage2_->walk(ipa);
        t.table_accesses += s2.table_accesses;
        if (s2.fault != FaultKind::kNone) {
            t.fault = s2.fault;
            t.fault_stage = 2;
            return t;
        }
        pa = s2.out;
        perms &= s2.perms;
    }

    if (!perms_allow(perms, access)) {
        t.fault = FaultKind::kPermission;
        t.fault_stage = stage1_ != nullptr ? 1 : 2;
        return t;
    }

    // Physical-level TrustZone check.
    if (const FaultKind f = mem_->check_physical_access(pa, world_);
        f != FaultKind::kNone) {
        t.fault = f;
        t.fault_stage = 0;
        return t;
    }

    // DFITAGCHECK: a guest (non-hypervisor) translation must never reach an
    // integrity-tagged frame, read or write — over-reads leak key material
    // just as surely as overwrites corrupt page tables. The tag lives on
    // the physical frame, so no stage-1/stage-2 aliasing can dodge it.
    if (mem_->integrity_tagged(pa) && vmid_ != kHypervisorId) {
        t.fault = FaultKind::kTagViolation;
        t.fault_stage = 0;
        return t;
    }

    t.pa = pa;
    return t;
}

bool Mmu::read64(VirtAddr va, std::uint64_t& value) {
    const Translation t = translate(va, Access::kRead);
    if (t.fault != FaultKind::kNone) return false;
    if (dcache_ != nullptr) dcache_->access(t.pa, /*is_write=*/false);
    value = mem_->read64(t.pa, world_);
    return true;
}

bool Mmu::write64(VirtAddr va, std::uint64_t value) {
    const Translation t = translate(va, Access::kWrite);
    if (t.fault != FaultKind::kNone) return false;
    if (dcache_ != nullptr) dcache_->access(t.pa, /*is_write=*/true);
    mem_->write64(t.pa, value, world_);
    return true;
}

}  // namespace hpcsec::arch
