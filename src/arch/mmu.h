// Per-core MMU front end: one- or two-stage translation with TLB caching.
//
// Stage 1 (VA -> IPA) is owned by the executing kernel; stage 2 (IPA -> PA)
// is owned by the hypervisor and is what provides Hafnium's memory isolation
// guarantee. Natively (no hypervisor) stage 2 is absent and IPA == PA.
//
// translate() is the functional path used for correctness and security
// checks; its `table_accesses` output also feeds the performance model
// (nested walks are what make RandomAccess slower under virtualization).
#pragma once

#include <cstdint>

#include "arch/cache.h"
#include "arch/memory_map.h"
#include "arch/page_table.h"
#include "arch/tlb.h"
#include "arch/types.h"

namespace hpcsec::arch {

struct Translation {
    FaultKind fault = FaultKind::kNone;
    int fault_stage = 0;        ///< 1 or 2 when fault != kNone (0 = physical)
    PhysAddr pa = 0;
    int table_accesses = 0;     ///< memory reads the walk performed
    bool tlb_hit = false;
};

class Mmu {
public:
    explicit Mmu(MemoryMap& mem) : mem_(&mem) {}

    /// Install translation context (what TTBR/VTTBR + VMID/ASID encode).
    /// Either stage may be null: null stage-1 = identity VA->IPA (kernel
    /// idmap); null stage-2 = native execution, IPA == PA.
    void set_context(const PageTable* stage1, const PageTable* stage2, VmId vmid,
                     Asid asid, World world);

    [[nodiscard]] VmId vmid() const { return vmid_; }
    [[nodiscard]] Asid asid() const { return asid_; }
    [[nodiscard]] World world() const { return world_; }

    /// Full translation of a virtual address for an access kind.
    Translation translate(VirtAddr va, Access access);

    /// Functional guest memory access through the full translation path.
    /// Returns false (and leaves `value`) on any fault.
    bool read64(VirtAddr va, std::uint64_t& value);
    bool write64(VirtAddr va, std::uint64_t value);

    Tlb& tlb() { return tlb_; }
    const Tlb& tlb() const { return tlb_; }

    /// Translations served by the L0 single-entry cache (subset of TLB hits).
    [[nodiscard]] std::uint64_t l0_hits() const { return l0_hits_; }

    /// Optional data-cache observer: functional accesses probe it (pure
    /// observability; the statistical perf model is independent).
    void set_dcache(CacheHierarchy* dcache) { dcache_ = dcache; }
    [[nodiscard]] CacheHierarchy* dcache() const { return dcache_; }

private:
    Translation translate_uncached(VirtAddr va, Access access);

    /// L0: the last successful translation, one compare on the hit path.
    /// Streaming workloads touch the same page for many consecutive accesses;
    /// this skips the TLB's set scan entirely. Tagged with the TLB flush
    /// epoch so any TLBI (any scope) invalidates it; set_context resets it.
    struct L0Entry {
        std::uint64_t in_page = ~0ull;
        std::uint64_t out_page = 0;
        std::uint64_t epoch = 0;
        std::uint8_t perms = kPermNone;
    };

    MemoryMap* mem_;
    const PageTable* stage1_ = nullptr;
    const PageTable* stage2_ = nullptr;
    VmId vmid_ = 0;
    Asid asid_ = 0;
    World world_ = World::kNonSecure;
    Tlb tlb_;
    L0Entry l0_;
    std::uint64_t l0_hits_ = 0;
    CacheHierarchy* dcache_ = nullptr;
};

}  // namespace hpcsec::arch
