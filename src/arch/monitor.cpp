#include "arch/monitor.h"

#include <stdexcept>

namespace hpcsec::arch {

SecureMonitor::SecureMonitor(std::vector<Core*> cores) : cores_(std::move(cores)) {}

void SecureMonitor::register_smc(std::uint32_t func_id, SmcHandler handler) {
    services_[func_id] = std::move(handler);
}

std::int64_t SecureMonitor::smc(Core& caller, std::uint32_t func_id, std::uint64_t a0,
                                std::uint64_t a1) {
    switch (static_cast<PsciFn>(func_id)) {
        case PsciFn::kVersion:
            return psci_version();
        case PsciFn::kCpuOff:
            return static_cast<std::int64_t>(cpu_off(caller.id()));
        case PsciFn::kCpuOn:
            // a0 = target MPIDR (== core id here); entry must be registered
            // through the typed cpu_on() API in the model, so plain SMC
            // CPU_ON is rejected.
            return static_cast<std::int64_t>(PsciResult::kDenied);
        case PsciFn::kSystemOff:
            for (Core* c : cores_) c->power_off();
            return 0;
        default:
            break;
    }
    const auto it = services_.find(func_id);
    if (it == services_.end()) return -1;  // PSCI NOT_SUPPORTED convention
    return it->second(caller, a0, a1);
}

PsciResult SecureMonitor::cpu_on(CoreId target, CpuEntry entry) {
    if (target < 0 || target >= static_cast<CoreId>(cores_.size())) {
        return PsciResult::kInvalidParams;
    }
    Core& core = *cores_[static_cast<std::size_t>(target)];
    if (core.powered()) return PsciResult::kAlreadyOn;
    core.power_on();
    // Cores enter the hypervisor privilege level first on boot (ARM EL2 /
    // RISC-V HS), matching ARMv8 EL2-entry and SBI HSM hart_start semantics.
    core.set_el(El::kEl2);
    if (entry) entry(core);
    return PsciResult::kSuccess;
}

PsciResult SecureMonitor::cpu_off(CoreId target) {
    if (target < 0 || target >= static_cast<CoreId>(cores_.size())) {
        return PsciResult::kInvalidParams;
    }
    Core& core = *cores_[static_cast<std::size_t>(target)];
    if (!core.powered()) return PsciResult::kDenied;
    core.power_off();
    return PsciResult::kSuccess;
}

int SecureMonitor::powered_cores() const {
    int n = 0;
    for (const Core* c : cores_) n += c->powered() ? 1 : 0;
    return n;
}

}  // namespace hpcsec::arch
