// EL3 secure monitor: SMC dispatch, PSCI, and TrustZone world switching.
//
// The monitor is the root of trust: it runs the measured boot, owns the
// static secure/non-secure memory partition ("the secure and non-secure
// memory partitions must be statically sized and configured during the early
// boot process"), and implements PSCI so kernels can bring cores up/down.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "arch/core.h"
#include "arch/types.h"

namespace hpcsec::arch {

/// PSCI v1.x function IDs (SMC64 calling convention subset).
enum class PsciFn : std::uint32_t {
    kVersion = 0x84000000,
    kCpuOff = 0x84000002,
    kCpuOn = 0xC4000003,
    kSystemOff = 0x84000008,
};

enum class PsciResult : std::int32_t {
    kSuccess = 0,
    kInvalidParams = -2,
    kDenied = -3,
    kAlreadyOn = -4,
};

class SecureMonitor {
public:
    using CpuEntry = std::function<void(Core&)>;
    using SmcHandler =
        std::function<std::int64_t(Core& caller, std::uint64_t a0, std::uint64_t a1)>;

    explicit SecureMonitor(std::vector<Core*> cores);

    /// Register an OEM/SiP SMC service (e.g. world-switch shims).
    void register_smc(std::uint32_t func_id, SmcHandler handler);

    /// SMC from a core. PSCI functions are built in; others dispatch to
    /// registered handlers. Unknown functions return NOT_SUPPORTED (-1).
    std::int64_t smc(Core& caller, std::uint32_t func_id, std::uint64_t a0 = 0,
                     std::uint64_t a1 = 0);

    /// Boot entry used for the primary core (not via SMC).
    PsciResult cpu_on(CoreId target, CpuEntry entry);
    PsciResult cpu_off(CoreId target);

    [[nodiscard]] int powered_cores() const;
    [[nodiscard]] std::uint32_t psci_version() const { return (1u << 16) | 1u; }  // 1.1

    /// TrustZone: move a core between worlds (monitor-mediated only).
    void switch_world(Core& core, World w) { core.set_world(w); }

private:
    std::vector<Core*> cores_;
    std::map<std::uint32_t, SmcHandler> services_;
};

}  // namespace hpcsec::arch
