#include "arch/page_table.h"

#include <stdexcept>

namespace hpcsec::arch {

struct PageTable::Entry {
    enum class Kind : std::uint8_t { kInvalid, kTable, kLeaf } kind = Kind::kInvalid;
    std::uint64_t out = 0;       // leaf: output base
    std::uint8_t perms = kPermNone;
    bool secure = false;
    std::unique_ptr<Node> child;  // table: next level
};

struct PageTable::Node {
    std::array<Entry, kPtEntries> entries{};
};

PageTable::PageTable() : root_(std::make_unique<Node>()), node_count_(1) {}
PageTable::~PageTable() = default;
PageTable::PageTable(PageTable&&) noexcept = default;
PageTable& PageTable::operator=(PageTable&&) noexcept = default;

PageTable::Node* PageTable::ensure_child(Node& parent, std::uint64_t index,
                                         int /*child_level*/) {
    Entry& e = parent.entries[index];
    if (e.kind == Entry::Kind::kLeaf) {
        throw std::logic_error("PageTable: mapping overlaps existing block entry");
    }
    if (e.kind == Entry::Kind::kInvalid) {
        e.kind = Entry::Kind::kTable;
        // sca-suppress(hot-path-alloc): table nodes are built on the
        // control-plane map/donate/share calls; steady state has no
        // stage-2 churn.
        e.child = std::make_unique<Node>();
        ++node_count_;
    }
    return e.child.get();
}

void PageTable::map(std::uint64_t in_base, std::uint64_t out_base, std::uint64_t size,
                    std::uint8_t perms, bool secure, bool force_pages) {
    if (size == 0) return;
    if ((in_base | out_base | size) & kPageMask) {
        throw std::invalid_argument("PageTable::map: unaligned arguments");
    }
    if (in_base + size > (1ull << kInputAddrBits)) {
        throw std::invalid_argument("PageTable::map: input beyond 48-bit range");
    }
    map_range(*root_, 0, in_base, out_base, size, perms, secure, force_pages);
}

void PageTable::map_range(Node& node, int level, std::uint64_t in, std::uint64_t out,
                          std::uint64_t size, std::uint8_t perms, bool secure,
                          bool force_pages) {
    const std::uint64_t span = level_span(level);
    std::uint64_t remaining = size;
    while (remaining > 0) {
        const std::uint64_t idx = level_index(in, level);
        Entry& e = node.entries[idx];
        const std::uint64_t entry_base = in & ~(span - 1);
        const std::uint64_t within = in - entry_base;
        const std::uint64_t chunk = std::min(remaining, span - within);

        const bool block_allowed =
            !force_pages && (level == 1 || level == 2) && within == 0 &&
            chunk == span && (out & (span - 1)) == 0;

        if (level == kPtLevels - 1 || block_allowed) {
            if (e.kind != Entry::Kind::kInvalid) {
                throw std::logic_error("PageTable: mapping overlaps existing entry");
            }
            e.kind = Entry::Kind::kLeaf;
            e.out = out;
            e.perms = perms;
            e.secure = secure;
            ++mapping_count_;
            mapped_bytes_ += (level == kPtLevels - 1) ? kPageSize : span;
        } else {
            Node* child = ensure_child(node, idx, level + 1);
            map_range(*child, level + 1, in, out, chunk, perms, secure, force_pages);
        }
        in += chunk;
        out += chunk;
        remaining -= chunk;
    }
}

void PageTable::unmap(std::uint64_t in_base, std::uint64_t size) {
    if (size == 0) return;
    if ((in_base | size) & kPageMask) {
        throw std::invalid_argument("PageTable::unmap: unaligned arguments");
    }
    unmap_range(*root_, 0, in_base, size);
}

void PageTable::split_block(Entry& e, int level) {
    // Break-before-make: replace a block leaf with a table of next-level
    // leaves covering the same range (what a real hypervisor does before
    // changing a sub-range of a block mapping).
    if (e.kind != Entry::Kind::kLeaf || level >= kPtLevels - 1) {
        throw std::logic_error("PageTable::split_block: not a splittable block");
    }
    // sca-suppress(hot-path-alloc): block splits happen on control-plane
    // unmap/remap calls, not per-event steady state.
    auto child = std::make_unique<Node>();
    const std::uint64_t child_span = level_span(level + 1);
    for (std::uint64_t i = 0; i < kPtEntries; ++i) {
        Entry& sub = child->entries[i];
        sub.kind = Entry::Kind::kLeaf;
        sub.out = e.out + i * child_span;
        sub.perms = e.perms;
        sub.secure = e.secure;
    }
    e.kind = Entry::Kind::kTable;
    e.out = 0;
    e.child = std::move(child);
    ++node_count_;
    mapping_count_ += kPtEntries - 1;  // one block leaf became 512 leaves
}

void PageTable::unmap_range(Node& node, int level, std::uint64_t in, std::uint64_t size) {
    const std::uint64_t span = level_span(level);
    std::uint64_t remaining = size;
    while (remaining > 0) {
        const std::uint64_t idx = level_index(in, level);
        Entry& e = node.entries[idx];
        const std::uint64_t entry_base = in & ~(span - 1);
        const std::uint64_t within = in - entry_base;
        const std::uint64_t chunk = std::min(remaining, span - within);

        if (e.kind == Entry::Kind::kLeaf) {
            const std::uint64_t leaf_bytes = (level == kPtLevels - 1) ? kPageSize : span;
            if (within != 0 || chunk != leaf_bytes) {
                // Partial unmap of a block: split and recurse.
                split_block(e, level);
                unmap_range(*e.child, level + 1, in, chunk);
            } else {
                e = Entry{};
                --mapping_count_;
                mapped_bytes_ -= leaf_bytes;
            }
        } else if (e.kind == Entry::Kind::kTable) {
            unmap_range(*e.child, level + 1, in, chunk);
        }
        // kInvalid: nothing mapped here; unmap is idempotent.
        in += chunk;
        remaining -= chunk;
    }
}

void PageTable::protect(std::uint64_t in_base, std::uint64_t size, std::uint8_t perms) {
    if ((in_base | size) & kPageMask) {
        throw std::invalid_argument("PageTable::protect: unaligned arguments");
    }
    protect_range(*root_, 0, in_base, size, perms);
}

void PageTable::protect_range(Node& node, int level, std::uint64_t in,
                              std::uint64_t size, std::uint8_t perms) {
    const std::uint64_t span = level_span(level);
    std::uint64_t remaining = size;
    while (remaining > 0) {
        const std::uint64_t idx = level_index(in, level);
        Entry& e = node.entries[idx];
        const std::uint64_t entry_base = in & ~(span - 1);
        const std::uint64_t within = in - entry_base;
        const std::uint64_t chunk = std::min(remaining, span - within);

        if (e.kind == Entry::Kind::kLeaf) {
            const std::uint64_t leaf_bytes = (level == kPtLevels - 1) ? kPageSize : span;
            if (within != 0 || chunk != leaf_bytes) {
                // Partial protect of a block: split and recurse.
                split_block(e, level);
                protect_range(*e.child, level + 1, in, chunk, perms);
            } else {
                e.perms = perms;
            }
        } else if (e.kind == Entry::Kind::kTable) {
            protect_range(*e.child, level + 1, in, chunk, perms);
        } else {
            throw std::logic_error("PageTable::protect: range not mapped");
        }
        in += chunk;
        remaining -= chunk;
    }
}

WalkResult PageTable::walk(std::uint64_t addr) const {
    WalkResult r;
    if (addr >= (1ull << kInputAddrBits)) {
        r.fault = FaultKind::kAddressSize;
        return r;
    }
    const Node* node = root_.get();
    for (int level = 0; level < kPtLevels; ++level) {
        ++r.table_accesses;
        const Entry& e = node->entries[level_index(addr, level)];
        switch (e.kind) {
            case Entry::Kind::kInvalid:
                r.fault = FaultKind::kTranslation;
                r.level = level;
                return r;
            case Entry::Kind::kLeaf: {
                const std::uint64_t span =
                    (level == kPtLevels - 1) ? kPageSize : level_span(level);
                r.out = e.out + (addr & (span - 1));
                r.perms = e.perms;
                r.secure = e.secure;
                r.level = level;
                return r;
            }
            case Entry::Kind::kTable:
                node = e.child.get();
                break;
        }
    }
    r.fault = FaultKind::kTranslation;  // unreachable with well-formed tables
    return r;
}

void PageTable::for_each_mapping(
    const std::function<void(const MappingView&)>& fn) const {
    visit_mappings(*root_, 0, 0, fn);
}

void PageTable::visit_mappings(
    const Node& node, int level, std::uint64_t in_base,
    const std::function<void(const MappingView&)>& fn) const {
    const std::uint64_t span = level_span(level);
    for (std::uint64_t i = 0; i < kPtEntries; ++i) {
        const Entry& e = node.entries[i];
        const std::uint64_t in = in_base + i * span;
        switch (e.kind) {
            case Entry::Kind::kInvalid:
                break;
            case Entry::Kind::kLeaf:
                fn({in, e.out, (level == kPtLevels - 1) ? kPageSize : span,
                    e.perms, e.secure});
                break;
            case Entry::Kind::kTable:
                visit_mappings(*e.child, level + 1, in, fn);
                break;
        }
    }
}

}  // namespace hpcsec::arch
