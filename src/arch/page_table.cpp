#include "arch/page_table.h"

#include <stdexcept>

namespace hpcsec::arch {

namespace {
// Block-mapping spans shared by both backends: ARM level-1/level-2 blocks
// and Sv39 giga/megapages are the same 1 GiB / 2 MiB shapes.
constexpr std::uint64_t kBlockSpanGiB = 1ull << 30;
constexpr std::uint64_t kBlockSpanMiB2 = 1ull << 21;

constexpr bool block_span(std::uint64_t span) {
    return span == kBlockSpanGiB || span == kBlockSpanMiB2;
}
}  // namespace

struct PageTable::Entry {
    enum class Kind : std::uint8_t { kInvalid, kTable, kLeaf } kind = Kind::kInvalid;
    std::uint64_t out = 0;       // leaf: output base
    std::uint8_t perms = kPermNone;
    bool secure = false;
    std::unique_ptr<Node> child;  // table: next level
};

struct PageTable::Node {
    // Sized per level at construction: the format's root may be wider than
    // the inner levels (Sv39x4's 2048-entry concatenated root).
    std::vector<Entry> entries;
};

std::unique_ptr<PageTable::Node> PageTable::make_node(int level) const {
    auto node = std::make_unique<Node>();
    node->entries.resize(fmt_.entries(level));
    return node;
}

PageTable::PageTable(PtFormat format)
    : fmt_(format), root_(make_node(0)), node_count_(1) {}
PageTable::~PageTable() = default;
PageTable::PageTable(PageTable&&) noexcept = default;
PageTable& PageTable::operator=(PageTable&&) noexcept = default;

PageTable::Node* PageTable::ensure_child(Node& parent, std::uint64_t index,
                                         int child_level) {
    Entry& e = parent.entries[index];
    if (e.kind == Entry::Kind::kLeaf) {
        throw std::logic_error("PageTable: mapping overlaps existing block entry");
    }
    if (e.kind == Entry::Kind::kInvalid) {
        e.kind = Entry::Kind::kTable;
        // sca-suppress(hot-path-alloc): table nodes are built on the
        // control-plane map/donate/share calls; steady state has no
        // stage-2 churn.
        e.child = make_node(child_level);
        ++node_count_;
    }
    return e.child.get();
}

void PageTable::map(std::uint64_t in_base, std::uint64_t out_base, std::uint64_t size,
                    std::uint8_t perms, bool secure, bool force_pages) {
    if (size == 0) return;
    if ((in_base | out_base | size) & kPageMask) {
        throw std::invalid_argument("PageTable::map: unaligned arguments");
    }
    if (in_base + size > fmt_.input_limit()) {
        throw std::invalid_argument("PageTable::map: input beyond address range");
    }
    map_range(*root_, 0, in_base, out_base, size, perms, secure, force_pages);
}

void PageTable::map_range(Node& node, int level, std::uint64_t in, std::uint64_t out,
                          std::uint64_t size, std::uint8_t perms, bool secure,
                          bool force_pages) {
    const std::uint64_t span = fmt_.span(level);
    std::uint64_t remaining = size;
    while (remaining > 0) {
        const std::uint64_t idx = fmt_.index(in, level);
        Entry& e = node.entries[idx];
        const std::uint64_t entry_base = in & ~(span - 1);
        const std::uint64_t within = in - entry_base;
        const std::uint64_t chunk = std::min(remaining, span - within);

        // ARM: 1 GiB (level 1) and 2 MiB (level 2) blocks. Sv39: gigapages
        // (root) and megapages (level 1). block_span() excludes the ARM
        // 512 GiB root span, so the predicate is shape-based, not
        // level-number based.
        const bool block_allowed =
            !force_pages && level < fmt_.levels - 1 && block_span(span) &&
            within == 0 && chunk == span && (out & (span - 1)) == 0;

        if (level == fmt_.levels - 1 || block_allowed) {
            if (e.kind != Entry::Kind::kInvalid) {
                throw std::logic_error("PageTable: mapping overlaps existing entry");
            }
            e.kind = Entry::Kind::kLeaf;
            e.out = out;
            e.perms = perms;
            e.secure = secure;
            ++mapping_count_;
            mapped_bytes_ += (level == fmt_.levels - 1) ? kPageSize : span;
        } else {
            Node* child = ensure_child(node, idx, level + 1);
            map_range(*child, level + 1, in, out, chunk, perms, secure, force_pages);
        }
        in += chunk;
        out += chunk;
        remaining -= chunk;
    }
}

void PageTable::unmap(std::uint64_t in_base, std::uint64_t size) {
    if (size == 0) return;
    if ((in_base | size) & kPageMask) {
        throw std::invalid_argument("PageTable::unmap: unaligned arguments");
    }
    unmap_range(*root_, 0, in_base, size);
}

void PageTable::split_block(Entry& e, int level) {
    // Break-before-make: replace a block leaf with a table of next-level
    // leaves covering the same range (what a real hypervisor does before
    // changing a sub-range of a block mapping).
    if (e.kind != Entry::Kind::kLeaf || level >= fmt_.levels - 1) {
        throw std::logic_error("PageTable::split_block: not a splittable block");
    }
    // sca-suppress(hot-path-alloc): block splits happen on control-plane
    // unmap/remap calls, not per-event steady state.
    auto child = make_node(level + 1);
    const std::uint64_t child_span = fmt_.span(level + 1);
    const std::uint64_t child_entries = fmt_.entries(level + 1);
    for (std::uint64_t i = 0; i < child_entries; ++i) {
        Entry& sub = child->entries[i];
        sub.kind = Entry::Kind::kLeaf;
        sub.out = e.out + i * child_span;
        sub.perms = e.perms;
        sub.secure = e.secure;
    }
    e.kind = Entry::Kind::kTable;
    e.out = 0;
    e.child = std::move(child);
    ++node_count_;
    mapping_count_ += child_entries - 1;  // one block leaf became N leaves
}

void PageTable::unmap_range(Node& node, int level, std::uint64_t in, std::uint64_t size) {
    const std::uint64_t span = fmt_.span(level);
    std::uint64_t remaining = size;
    while (remaining > 0) {
        const std::uint64_t idx = fmt_.index(in, level);
        Entry& e = node.entries[idx];
        const std::uint64_t entry_base = in & ~(span - 1);
        const std::uint64_t within = in - entry_base;
        const std::uint64_t chunk = std::min(remaining, span - within);

        if (e.kind == Entry::Kind::kLeaf) {
            const std::uint64_t leaf_bytes =
                (level == fmt_.levels - 1) ? kPageSize : span;
            if (within != 0 || chunk != leaf_bytes) {
                // Partial unmap of a block: split and recurse.
                split_block(e, level);
                unmap_range(*e.child, level + 1, in, chunk);
            } else {
                e = Entry{};
                --mapping_count_;
                mapped_bytes_ -= leaf_bytes;
            }
        } else if (e.kind == Entry::Kind::kTable) {
            unmap_range(*e.child, level + 1, in, chunk);
        }
        // kInvalid: nothing mapped here; unmap is idempotent.
        in += chunk;
        remaining -= chunk;
    }
}

void PageTable::protect(std::uint64_t in_base, std::uint64_t size, std::uint8_t perms) {
    if ((in_base | size) & kPageMask) {
        throw std::invalid_argument("PageTable::protect: unaligned arguments");
    }
    protect_range(*root_, 0, in_base, size, perms);
}

void PageTable::protect_range(Node& node, int level, std::uint64_t in,
                              std::uint64_t size, std::uint8_t perms) {
    const std::uint64_t span = fmt_.span(level);
    std::uint64_t remaining = size;
    while (remaining > 0) {
        const std::uint64_t idx = fmt_.index(in, level);
        Entry& e = node.entries[idx];
        const std::uint64_t entry_base = in & ~(span - 1);
        const std::uint64_t within = in - entry_base;
        const std::uint64_t chunk = std::min(remaining, span - within);

        if (e.kind == Entry::Kind::kLeaf) {
            const std::uint64_t leaf_bytes =
                (level == fmt_.levels - 1) ? kPageSize : span;
            if (within != 0 || chunk != leaf_bytes) {
                // Partial protect of a block: split and recurse.
                split_block(e, level);
                protect_range(*e.child, level + 1, in, chunk, perms);
            } else {
                e.perms = perms;
            }
        } else if (e.kind == Entry::Kind::kTable) {
            protect_range(*e.child, level + 1, in, chunk, perms);
        } else {
            throw std::logic_error("PageTable::protect: range not mapped");
        }
        in += chunk;
        remaining -= chunk;
    }
}

WalkResult PageTable::walk(std::uint64_t addr) const {
    WalkResult r;
    if (addr >= fmt_.input_limit()) {
        r.fault = FaultKind::kAddressSize;
        return r;
    }
    const Node* node = root_.get();
    for (int level = 0; level < fmt_.levels; ++level) {
        ++r.table_accesses;
        const Entry& e = node->entries[fmt_.index(addr, level)];
        switch (e.kind) {
            case Entry::Kind::kInvalid:
                r.fault = FaultKind::kTranslation;
                r.level = level;
                return r;
            case Entry::Kind::kLeaf: {
                const std::uint64_t span =
                    (level == fmt_.levels - 1) ? kPageSize : fmt_.span(level);
                r.out = e.out + (addr & (span - 1));
                r.perms = e.perms;
                r.secure = e.secure;
                r.level = level;
                return r;
            }
            case Entry::Kind::kTable:
                node = e.child.get();
                break;
        }
    }
    r.fault = FaultKind::kTranslation;  // unreachable with well-formed tables
    return r;
}

void PageTable::for_each_mapping(
    const std::function<void(const MappingView&)>& fn) const {
    visit_mappings(*root_, 0, 0, fn);
}

void PageTable::visit_mappings(
    const Node& node, int level, std::uint64_t in_base,
    const std::function<void(const MappingView&)>& fn) const {
    const std::uint64_t span = fmt_.span(level);
    const std::uint64_t nentries = fmt_.entries(level);
    for (std::uint64_t i = 0; i < nentries; ++i) {
        const Entry& e = node.entries[i];
        const std::uint64_t in = in_base + i * span;
        switch (e.kind) {
            case Entry::Kind::kInvalid:
                break;
            case Entry::Kind::kLeaf:
                fn({in, e.out, (level == fmt_.levels - 1) ? kPageSize : span,
                    e.perms, e.secure});
                break;
            case Entry::Kind::kTable:
                visit_mappings(*e.child, level + 1, in, fn);
                break;
        }
    }
}

}  // namespace hpcsec::arch
