// Radix translation tables, parameterized by an ISA page-table format.
//
// The same structure serves stage-1 (VA -> IPA, owned by a guest kernel) and
// stage-2 (IPA -> PA, owned by the hypervisor) on either backend:
//   ARMv8 4 KiB granule: 4 levels x 9 bits, 48-bit input (the default).
//   RISC-V Sv39:         3 levels x 9 bits, 39-bit input (stage-1).
//   RISC-V Sv39x4:       3 levels, 11-bit root index, 41-bit input
//                        (H-extension guest-physical stage-2).
// Block mappings are supported wherever the format has a 1 GiB or 2 MiB
// entry span (ARM levels 1/2; Sv39 giga/megapages), mirroring how Hafnium
// maps VM memory with the largest possible blocks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "arch/types.h"

namespace hpcsec::arch {

// Legacy ARMv8 constants; prefer PtFormat for new code.
inline constexpr int kPtLevels = 4;
inline constexpr int kPtBitsPerLevel = 9;
inline constexpr std::uint64_t kPtEntries = 1ull << kPtBitsPerLevel;  // 512
inline constexpr std::uint64_t kInputAddrBits = 48;

/// Geometry of one translation-table format: how many radix levels, the
/// index width per level (the root may be wider, as in Sv39x4's 2048-entry
/// concatenated root), and the input-address size the walker enforces.
struct PtFormat {
    int levels = 4;
    int bits_per_level = 9;
    int root_bits = 9;
    int input_bits = 48;

    /// Entries in a table node at `level` (0 = root).
    [[nodiscard]] constexpr std::uint64_t entries(int level) const {
        return 1ull << (level == 0 ? root_bits : bits_per_level);
    }

    /// Size of the region covered by one entry at `level`.
    [[nodiscard]] constexpr std::uint64_t span(int level) const {
        return 1ull << (kPageShift +
                        static_cast<std::uint64_t>(bits_per_level) *
                            static_cast<std::uint64_t>(levels - 1 - level));
    }

    /// Index into the table at `level` for input address `a`.
    [[nodiscard]] constexpr std::uint64_t index(std::uint64_t a, int level) const {
        return (a >> (kPageShift + static_cast<std::uint64_t>(bits_per_level) *
                                       static_cast<std::uint64_t>(levels - 1 - level))) &
               (entries(level) - 1);
    }

    [[nodiscard]] constexpr std::uint64_t input_limit() const {
        return 1ull << input_bits;
    }

    /// ARMv8-A 4 KiB granule, 48-bit VA/IPA (stage-1 and stage-2 alike).
    [[nodiscard]] static constexpr PtFormat armv8_4k() { return {4, 9, 9, 48}; }
    /// RISC-V Sv39: 3 x 9-bit levels over a 39-bit VA.
    [[nodiscard]] static constexpr PtFormat sv39() { return {3, 9, 9, 39}; }
    /// RISC-V Sv39x4: stage-2 guest-physical format — the root is four
    /// concatenated Sv39 tables (11 index bits, 2048 entries) giving a
    /// 41-bit guest-physical address space.
    [[nodiscard]] static constexpr PtFormat sv39x4() { return {3, 9, 11, 41}; }
};

/// Size of the region covered by one entry at `level` (ARMv8 default format).
[[nodiscard]] constexpr std::uint64_t level_span(int level) {
    return PtFormat::armv8_4k().span(level);
}

/// Index into the table at `level` for input address `a` (ARMv8 default).
[[nodiscard]] constexpr std::uint64_t level_index(std::uint64_t a, int level) {
    return PtFormat::armv8_4k().index(a, level);
}

struct WalkResult {
    FaultKind fault = FaultKind::kNone;
    std::uint64_t out = 0;          ///< translated output address
    std::uint8_t perms = kPermNone;
    int level = -1;                 ///< level of the terminal entry
    int table_accesses = 0;         ///< memory reads performed by the walk
    bool secure = false;            ///< NS bit of the terminal entry
};

class PageTable {
public:
    explicit PageTable(PtFormat format = PtFormat::armv8_4k());
    ~PageTable();
    PageTable(PageTable&&) noexcept;
    PageTable& operator=(PageTable&&) noexcept;
    PageTable(const PageTable&) = delete;
    PageTable& operator=(const PageTable&) = delete;

    [[nodiscard]] const PtFormat& format() const { return fmt_; }

    /// Map [in_base, in_base+size) to [out_base, ...) with `perms`.
    /// Uses 1 GiB / 2 MiB blocks where alignment allows unless
    /// `force_pages` is set. Overlapping an existing mapping throws.
    void map(std::uint64_t in_base, std::uint64_t out_base, std::uint64_t size,
             std::uint8_t perms, bool secure = false, bool force_pages = false);

    /// Remove all mappings intersecting [in_base, in_base+size). Block
    /// entries partially covered by the range are split first
    /// (break-before-make), so page-granular carve-outs from block-mapped
    /// windows work as on real hardware.
    void unmap(std::uint64_t in_base, std::uint64_t size);

    /// Change permissions on a mapped range (page granularity; splits
    /// blocks as needed). Throws if any page in the range is unmapped.
    void protect(std::uint64_t in_base, std::uint64_t size, std::uint8_t perms);

    /// Walk the tables for one input address.
    [[nodiscard]] WalkResult walk(std::uint64_t addr) const;

    /// One terminal (page or block) mapping, as reported by
    /// for_each_mapping. Adjacent entries are NOT coalesced.
    struct MappingView {
        std::uint64_t in_base = 0;
        std::uint64_t out_base = 0;
        std::uint64_t size = 0;
        std::uint8_t perms = kPermNone;
        bool secure = false;
    };

    /// Enumerate every terminal mapping in input-address order (audit /
    /// introspection path; cold). The callback must not mutate this table.
    void for_each_mapping(const std::function<void(const MappingView&)>& fn) const;

    /// Number of live table nodes (root included) — i.e. translation-table
    /// memory footprint in page units.
    [[nodiscard]] std::uint64_t node_count() const { return node_count_; }

    /// Number of terminal (page or block) mappings.
    [[nodiscard]] std::uint64_t mapping_count() const { return mapping_count_; }

    /// Total bytes covered by terminal mappings.
    [[nodiscard]] std::uint64_t mapped_bytes() const { return mapped_bytes_; }

private:
    struct Entry;
    struct Node;

    [[nodiscard]] std::unique_ptr<Node> make_node(int level) const;
    Node* ensure_child(Node& parent, std::uint64_t index, int child_level);
    void split_block(Entry& e, int level);
    void map_range(Node& node, int level, std::uint64_t in, std::uint64_t out,
                   std::uint64_t size, std::uint8_t perms, bool secure,
                   bool force_pages);
    void unmap_range(Node& node, int level, std::uint64_t in, std::uint64_t size);
    void protect_range(Node& node, int level, std::uint64_t in, std::uint64_t size,
                       std::uint8_t perms);
    void visit_mappings(const Node& node, int level, std::uint64_t in_base,
                        const std::function<void(const MappingView&)>& fn) const;

    PtFormat fmt_;
    std::unique_ptr<Node> root_;
    std::uint64_t node_count_ = 0;
    std::uint64_t mapping_count_ = 0;
    std::uint64_t mapped_bytes_ = 0;
};

}  // namespace hpcsec::arch
