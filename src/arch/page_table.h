// Four-level ARMv8-style translation tables (4 KiB granule, 48-bit input).
//
// The same structure serves stage-1 (VA -> IPA, owned by a guest kernel) and
// stage-2 (IPA -> PA, owned by the hypervisor). Block mappings at level 1
// (1 GiB) and level 2 (2 MiB) are supported, mirroring how Hafnium maps VM
// memory with the largest possible blocks.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "arch/types.h"

namespace hpcsec::arch {

inline constexpr int kPtLevels = 4;
inline constexpr int kPtBitsPerLevel = 9;
inline constexpr std::uint64_t kPtEntries = 1ull << kPtBitsPerLevel;  // 512
inline constexpr std::uint64_t kInputAddrBits = 48;

/// Size of the region covered by one entry at `level` (0 = top).
[[nodiscard]] constexpr std::uint64_t level_span(int level) {
    return 1ull << (kPageShift + kPtBitsPerLevel * (kPtLevels - 1 - level));
}

/// Index into the table at `level` for input address `a`.
[[nodiscard]] constexpr std::uint64_t level_index(std::uint64_t a, int level) {
    return (a >> (kPageShift + kPtBitsPerLevel * (kPtLevels - 1 - level))) &
           (kPtEntries - 1);
}

struct WalkResult {
    FaultKind fault = FaultKind::kNone;
    std::uint64_t out = 0;          ///< translated output address
    std::uint8_t perms = kPermNone;
    int level = -1;                 ///< level of the terminal entry
    int table_accesses = 0;         ///< memory reads performed by the walk
    bool secure = false;            ///< NS bit of the terminal entry
};

class PageTable {
public:
    PageTable();
    ~PageTable();
    PageTable(PageTable&&) noexcept;
    PageTable& operator=(PageTable&&) noexcept;
    PageTable(const PageTable&) = delete;
    PageTable& operator=(const PageTable&) = delete;

    /// Map [in_base, in_base+size) to [out_base, ...) with `perms`.
    /// Uses 1 GiB / 2 MiB blocks where alignment allows unless
    /// `force_pages` is set. Overlapping an existing mapping throws.
    void map(std::uint64_t in_base, std::uint64_t out_base, std::uint64_t size,
             std::uint8_t perms, bool secure = false, bool force_pages = false);

    /// Remove all mappings intersecting [in_base, in_base+size). Block
    /// entries partially covered by the range are split first
    /// (break-before-make), so page-granular carve-outs from block-mapped
    /// windows work as on real hardware.
    void unmap(std::uint64_t in_base, std::uint64_t size);

    /// Change permissions on a mapped range (page granularity; splits
    /// blocks as needed). Throws if any page in the range is unmapped.
    void protect(std::uint64_t in_base, std::uint64_t size, std::uint8_t perms);

    /// Walk the tables for one input address.
    [[nodiscard]] WalkResult walk(std::uint64_t addr) const;

    /// One terminal (page or block) mapping, as reported by
    /// for_each_mapping. Adjacent entries are NOT coalesced.
    struct MappingView {
        std::uint64_t in_base = 0;
        std::uint64_t out_base = 0;
        std::uint64_t size = 0;
        std::uint8_t perms = kPermNone;
        bool secure = false;
    };

    /// Enumerate every terminal mapping in input-address order (audit /
    /// introspection path; cold). The callback must not mutate this table.
    void for_each_mapping(const std::function<void(const MappingView&)>& fn) const;

    /// Number of live table nodes (root included) — i.e. translation-table
    /// memory footprint in 4 KiB units.
    [[nodiscard]] std::uint64_t node_count() const { return node_count_; }

    /// Number of terminal (page or block) mappings.
    [[nodiscard]] std::uint64_t mapping_count() const { return mapping_count_; }

    /// Total bytes covered by terminal mappings.
    [[nodiscard]] std::uint64_t mapped_bytes() const { return mapped_bytes_; }

private:
    struct Entry;
    struct Node;

    Node* ensure_child(Node& parent, std::uint64_t index, int child_level);
    void split_block(Entry& e, int level);
    void map_range(Node& node, int level, std::uint64_t in, std::uint64_t out,
                   std::uint64_t size, std::uint8_t perms, bool secure,
                   bool force_pages);
    void unmap_range(Node& node, int level, std::uint64_t in, std::uint64_t size);
    void protect_range(Node& node, int level, std::uint64_t in, std::uint64_t size,
                       std::uint8_t perms);
    void visit_mappings(const Node& node, int level, std::uint64_t in_base,
                        const std::function<void(const MappingView&)>& fn) const;

    std::unique_ptr<Node> root_;
    std::uint64_t node_count_ = 0;
    std::uint64_t mapping_count_ = 0;
    std::uint64_t mapped_bytes_ = 0;
};

}  // namespace hpcsec::arch
