// Cost model calibrated for a Cortex-A53 @ 1.1 GHz (Pine A64-LTS).
//
// All values are cycles. Path costs are taken from published ARM
// virtualization overhead studies and tuned so the *native* configuration
// lands near the paper's raw Fig. 8 / Fig. 10 numbers; the virtualized
// deltas then emerge from the modeled mechanisms (nested walks, world
// switches, tick handling, background noise).
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.h"

namespace hpcsec::arch {

/// How the currently-executing context translates memory accesses.
enum class TranslationMode : std::uint8_t {
    kNative,    ///< stage 1 only (no hypervisor)
    kTwoStage,  ///< stage 1 + stage 2 (VM under Hafnium)
};

/// Statistical memory/compute profile of a workload, per abstract work unit.
/// Profiles are extracted from the real benchmark kernels in src/workloads.
struct WorkProfile {
    double cycles_per_unit = 1000.0;   ///< base compute+memory cost per unit
    double mem_refs_per_unit = 0.0;    ///< TLB-relevant references per unit
    double tlb_miss_rate = 0.0;        ///< per-reference miss probability
    double working_set_pages = 64.0;   ///< pages re-touched after a TLB flush
};

struct PerfModel {
    // --- trap / switch path costs -----------------------------------------
    sim::Cycles irq_entry_exit_kernel = 400;  ///< native kernel IRQ prologue+epilogue
    sim::Cycles trap_to_hyp = 700;            ///< guest exit to the hypervisor (EL2/HS)
    sim::Cycles world_switch = 2600;          ///< full VM context switch through the hyp
    sim::Cycles hypercall_roundtrip = 1100;   ///< kernel -> hyp -> kernel, no VM switch
    sim::Cycles virq_inject = 350;            ///< para-virtual interrupt injection
    sim::Cycles smc_roundtrip = 900;          ///< monitor (EL3/M-mode firmware) call
    sim::Cycles thread_switch = 800;         ///< same-kernel context switch

    // --- translation costs --------------------------------------------------
    sim::Cycles stage1_walk = 35;    ///< avg penalty per stage-1 TLB miss
    sim::Cycles nested_walk = 165;   ///< avg penalty per miss with two stages
    double tlb_refill_fraction = 0.5;  ///< share of working set refilled after flush
    double tlb_capacity_pages = 512.0;

    // --- kernel service times -----------------------------------------------
    sim::Cycles kitten_tick_service = 1900;    ///< LWK tick handler
    sim::Cycles kitten_tick_jitter = 160;      ///< small; the LWK path is short
    sim::Cycles linux_tick_service = 7500;     ///< CFS tick: accounting + balance
    sim::Cycles linux_tick_jitter = 2600;      ///< stddev of the above
    sim::Cycles sched_pick_kitten = 250;
    sim::Cycles sched_pick_linux = 1200;

    [[nodiscard]] sim::Cycles walk_penalty(TranslationMode m) const {
        return m == TranslationMode::kNative ? stage1_walk : nested_walk;
    }

    /// Effective cycles per work unit for a profile under a translation mode.
    [[nodiscard]] double unit_cost(const WorkProfile& p, TranslationMode m) const {
        return p.cycles_per_unit +
               p.mem_refs_per_unit * p.tlb_miss_rate *
                   static_cast<double>(walk_penalty(m));
    }

    /// One-off cycles lost re-warming the TLB after a flush/preemption.
    [[nodiscard]] sim::Cycles refill_transient(const WorkProfile& p,
                                               TranslationMode m) const {
        const double pages =
            std::min(p.working_set_pages, tlb_capacity_pages) * tlb_refill_fraction;
        return static_cast<sim::Cycles>(pages *
                                        static_cast<double>(walk_penalty(m)));
    }
};

}  // namespace hpcsec::arch
