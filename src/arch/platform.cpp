#include "arch/platform.h"

#include <span>

namespace hpcsec::arch {

namespace {

// Per-board device tables as static data: board presets are constructed per
// trial (10k times in a fleet sweep), so the literals live in .rodata and
// the ctor does one reserved copy instead of growth reallocations.
struct DevSpec {
    const char* name;
    PhysAddr base;
    std::uint64_t size;
    int spi;
};

// Allwinner A64 peripherals (subset).
constexpr DevSpec kPineA64Devices[] = {
    {"uart0", 0x01C2'8000, 0x1000, 32},
    {"emac", 0x01C3'0000, 0x10000, 114},
    {"mmc0", 0x01C0'F000, 0x1000, 92},
};

constexpr DevSpec kThunderX2Devices[] = {
    {"uart0", 0x0200'0000, 0x1000, 33},
    {"mlx5", 0x0300'0000, 0x10000, 64},
};

// QEMU packs virtio-mmio transports at 0x200 strides; the model rounds
// each window to a page so stage-2 device mappings stay page-granular.
constexpr DevSpec kQemuVirtDevices[] = {
    {"pl011", 0x0900'0000, 0x1000, 33},
    {"virtio-net", 0x0A00'0000, 0x1000, 48},
    {"virtio-blk", 0x0A00'1000, 0x1000, 49},
};

void append_devices(std::vector<MmioDevice>& out,
                    std::span<const DevSpec> specs) {
    out.reserve(out.size() + specs.size());
    for (const DevSpec& s : specs) {
        out.push_back({s.name, s.base, s.size, s.spi});
    }
}

}  // namespace

PlatformConfig PlatformConfig::pine_a64() {
    PlatformConfig c;
    c.name = "pine-a64-lts";
    c.ncores = 4;
    c.clock_hz = 1'100'000'000;
    c.ram_base = 0x4000'0000;
    c.ram_bytes = 2ull << 30;
    c.secure_ram_bytes = 0;
    append_devices(c.devices, kPineA64Devices);
    return c;
}

PlatformConfig PlatformConfig::thunderx2() {
    // One socket of the Astra-class node the paper names as its next target
    // (§VII). 28 cores @2.0 GHz; generous DRAM. Walk costs are a little
    // lower than the A53's (bigger walk caches).
    PlatformConfig c;
    c.name = "thunderx2";
    c.ncores = 28;
    c.clock_hz = 2'000'000'000;
    c.ram_base = 0x80'0000'0000ull >> 8;  // 0x8000'0000
    c.ram_bytes = 32ull << 30;
    append_devices(c.devices, kThunderX2Devices);
    c.perf.stage1_walk = 25;
    c.perf.nested_walk = 120;
    return c;
}

PlatformConfig PlatformConfig::qemu_virt() {
    PlatformConfig c;
    c.name = "qemu-virt";
    c.ncores = 4;
    c.clock_hz = 1'000'000'000;
    c.ram_base = 0x4000'0000;
    c.ram_bytes = 4ull << 30;
    append_devices(c.devices, kQemuVirtDevices);
    return c;
}

Platform::Platform(PlatformConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      engine_(sim::ClockSpec{config_.clock_hz}),
      rng_(seed),
      arena_(config_.arena != nullptr ? config_.arena : &own_arena_) {
    if (config_.secure_ram_bytes >= config_.ram_bytes) {
        throw std::invalid_argument("Platform: secure carve-out exceeds RAM");
    }
    const std::uint64_t ns_bytes = config_.ram_bytes - config_.secure_ram_bytes;
    mem_.add_region({"dram-ns", config_.ram_base, ns_bytes, RegionKind::kRam,
                     World::kNonSecure});
    if (config_.secure_ram_bytes > 0) {
        mem_.add_region({"dram-secure", config_.ram_base + ns_bytes,
                         config_.secure_ram_bytes, RegionKind::kRam, World::kSecure});
    }
    for (const auto& d : config_.devices) {
        mem_.add_region({d.name, d.base, d.size, RegionKind::kMmio, World::kNonSecure});
    }

    ops_ = &IsaOps::get(config_.isa);
    irqc_ = ops_->make_irq_controller(config_.ncores);
    obs_.recorder.set_mask(config_.obs_mask);
    obs_.recorder.set_mirror(&trace_);
    if (config_.profile) {
        obs_.profiler.enable(config_.ncores);
        engine_.set_dispatch_probe(&obs_.profiler);
    }
    if (config_.flight_depth > 0) {
        obs_.flight.arm(config_.ncores, config_.flight_depth);
        obs_.flight.set_dump_sink(engine_.clock(), config_.flight_dump_prefix);
        obs_.recorder.set_flight(&obs_.flight);
    }
    const auto chunk_hist = obs_.metrics.histogram("exec.chunk_us");
    // Cores live contiguously in the arena: the dispatch hot loop indexes
    // core state without a unique_ptr hop per access, and teardown is the
    // arena's O(1) reset.
    cores_ = arena_->allocate_array<Core>(static_cast<std::size_t>(config_.ncores));
    std::vector<Core*> core_ptrs;
    core_ptrs.reserve(static_cast<std::size_t>(config_.ncores));
    for (int i = 0; i < config_.ncores; ++i) {
        Core* c = new (&cores_[i])
            Core(engine_, config_.perf, *irqc_, mem_, i, ops_->irq);
        arena_->register_destructor(c);
        core_ptrs.push_back(c);
        c->exec().set_recorder(&obs_.recorder);
        c->exec().set_chunk_metrics(&obs_.metrics, chunk_hist);
        if (config_.profile) c->exec().set_profiler(&obs_.profiler);
    }
    irqc_->set_signal([this](CoreId id) { cores_[id].signal_irq(); });
    monitor_ = std::make_unique<SecureMonitor>(std::move(core_ptrs));

    // Integrity-tag shootdown: every tag flip broadcasts a full TLBI to all
    // cores. flush_all bumps each TLB's flush epoch, which also invalidates
    // the MMUs' L0 lines — no cached translation filled before a tag change
    // can be consulted after it.
    mem_.set_tag_change_hook([this] {
        for (int i = 0; i < config_.ncores; ++i) {
            cores_[i].mmu().tlb().flush_all();
        }
    });

    for (const auto& d : config_.devices) {
        if (d.name.find("uart") != std::string::npos ||
            d.name.find("pl011") != std::string::npos) {
            uart_ = std::make_unique<Uart>(mem_, irqc_.get(), d.base);
            break;
        }
    }

    build_device_tree();
}

void Platform::build_device_tree() {
    dt_.set("compatible", config_.name);
    auto& cpus = dt_.add_child("cpus");
    for (int i = 0; i < config_.ncores; ++i) {
        auto& cpu = cpus.add_child("cpu@" + std::to_string(i));
        cpu.set("reg", static_cast<std::uint64_t>(i));
        cpu.set("compatible", std::string(ops_->cpu_compatible));
        cpu.set("clock-frequency", config_.clock_hz);
    }
    auto& memory = dt_.add_child("memory");
    memory.set("reg", std::vector<std::uint64_t>{config_.ram_base, config_.ram_bytes});
    auto& soc = dt_.add_child("soc");
    for (const auto& d : config_.devices) {
        auto& dev = soc.add_child(d.name);
        dev.set("reg", std::vector<std::uint64_t>{d.base, d.size});
        if (d.spi >= 0) dev.set("interrupts", static_cast<std::uint64_t>(d.spi));
    }
}

CoreUsage Platform::total_usage() const {
    CoreUsage total;
    for (int i = 0; i < config_.ncores; ++i) {
        const CoreUsage& u = cores_[i].exec().usage();
        total.work += u.work;
        total.transient += u.transient;
        total.overhead += u.overhead;
    }
    return total;
}

void Platform::publish_metrics() {
    auto& m = obs_.metrics;
    m.set(m.gauge("engine.events"),
          static_cast<double>(engine_.events_executed()));
    for (const auto& pc : engine_.executed_by_priority()) {
        m.set(m.gauge("engine.events.p" + std::to_string(pc.priority)),
              static_cast<double>(pc.executed));
    }
    const CoreUsage u = total_usage();
    m.set(m.gauge("cores.work_us"), engine_.clock().to_micros(u.work));
    m.set(m.gauge("cores.transient_us"), engine_.clock().to_micros(u.transient));
    m.set(m.gauge("cores.overhead_us"), engine_.clock().to_micros(u.overhead));
    if (obs_.profiler.enabled()) {
        for (std::size_t p = 0; p < obs::kProfPathCount; ++p) {
            const auto path = static_cast<obs::ProfPath>(p);
            m.set(m.gauge(std::string("prof.cycles.") + obs::to_string(path)),
                  static_cast<double>(obs_.profiler.total(path)));
        }
    }
    if (obs_.flight.armed()) {
        m.set(m.gauge("flight.recorded"),
              static_cast<double>(obs_.flight.total_recorded()));
        m.set(m.gauge("flight.dumps"),
              static_cast<double>(obs_.flight.info().dumps));
    }
}

}  // namespace hpcsec::arch
