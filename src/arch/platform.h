// Machine assembly: everything below the software stack.
//
// A Platform owns the simulation engine, physical memory, the interrupt
// controller (GIC or PLIC, per the configured ISA), cores (MMU + timer +
// executor each), and the monitor — the pieces a real SoC provides. Presets
// mirror the hardware the paper used: the Pine A64-LTS evaluation board and
// the QEMU virt profile Kitten also supports; any preset can be re-based
// onto the RISC-V backend by setting PlatformConfig::isa.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/core.h"
#include "arch/devicetree.h"
#include "arch/irq_controller.h"
#include "arch/isa.h"
#include "arch/memory_map.h"
#include "arch/monitor.h"
#include "arch/perfmodel.h"
#include "arch/uart.h"
#include "obs/obs.h"
#include "sim/arena.h"
#include "sim/engine.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace hpcsec::arch {

struct MmioDevice {
    std::string name;
    PhysAddr base;
    std::uint64_t size;
    int spi = -1;  ///< external interrupt number (>= kExternalBase), -1 if none
};

struct PlatformConfig {
    std::string name = "pine-a64-lts";
    /// Instruction-set backend. Device interrupt numbers are ISA-invariant
    /// (the id ranges in irq_controller.h are shared), so the same preset
    /// works on either backend.
    Isa isa = Isa::kArm;
    int ncores = 4;
    std::uint64_t clock_hz = 1'100'000'000;  // Cortex-A53 @ 1.1 GHz
    PhysAddr ram_base = 0x4000'0000;
    std::uint64_t ram_bytes = 2ull << 30;  // 2 GiB
    std::uint64_t secure_ram_bytes = 0;    ///< carved from the top of RAM
    std::vector<MmioDevice> devices;
    PerfModel perf;
    /// Structured-recorder category mask (obs::Category bits); 0 = off.
    std::uint32_t obs_mask = 0;
    /// Arm the cycle-attribution profiler: engine dispatch probe, executor
    /// walk attribution, and the SPM/kernel charge mirrors all feed
    /// obs::CycleProfiler. Off (default) every hook is one predicted branch.
    bool profile = false;
    /// Always-on flight recorder: last N events per core ring-buffered for
    /// post-mortem dumps. 0 (default) = disarmed.
    std::size_t flight_depth = 0;
    /// Flight dump file prefix; "" keeps dump snapshots in memory only.
    std::string flight_dump_prefix;
    /// External arena for the platform's long-lived objects (cores, VMs,
    /// VCPUs, grants). nullptr (default) = the platform owns a private one.
    /// An external arena must outlive the Platform and be reset() only
    /// after the Platform is destroyed — reuse across trials turns teardown
    /// into one rewind and keeps the warmed chunks.
    sim::Arena* arena = nullptr;

    static PlatformConfig pine_a64();
    static PlatformConfig qemu_virt();
    static PlatformConfig thunderx2();  ///< Astra-class node (paper §VII target)
};

class Platform {
public:
    explicit Platform(PlatformConfig config, std::uint64_t seed = 42);

    Platform(const Platform&) = delete;
    Platform& operator=(const Platform&) = delete;

    [[nodiscard]] const PlatformConfig& config() const { return config_; }

    sim::Engine& engine() { return engine_; }
    sim::Rng& rng() { return rng_; }
    /// Arena backing the platform's long-lived objects (cores, and the
    /// SPM's VMs/VCPUs/grants above this layer).
    sim::Arena& arena() { return *arena_; }
    sim::TraceLog& trace() { return trace_; }
    obs::Obs& obs() { return obs_; }
    obs::MetricsRegistry& metrics() { return obs_.metrics; }
    obs::SpanRecorder& recorder() { return obs_.recorder; }
    obs::CycleProfiler& profiler() { return obs_.profiler; }
    obs::FlightRecorder& flight() { return obs_.flight; }
    MemoryMap& mem() { return mem_; }
    IrqController& irqc() { return *irqc_; }
    SecureMonitor& monitor() { return *monitor_; }
    const PerfModel& perf() const { return config_.perf; }
    /// The per-ISA operations table (privilege names, timer line ids,
    /// translation formats) for this platform's configured backend.
    [[nodiscard]] const IsaOps& isa_ops() const { return *ops_; }

    [[nodiscard]] int ncores() const { return config_.ncores; }
    Core& core(CoreId id) {
        if (id < 0 || id >= config_.ncores) {
            // sca-suppress(no-throw-guest-path): core ids on guest paths
            // are physical dispatch ids from the engine, never guest
            // registers; a bad id is host wiring, same as vector::at was.
            throw std::out_of_range("Platform::core: bad core id");
        }
        return cores_[id];
    }

    /// Hardware description tree (memory, cpus, devices) as firmware would
    /// hand it to the first boot stage.
    [[nodiscard]] const DtNode& device_tree() const { return dt_; }
    DtNode& device_tree() { return dt_; }

    /// Console UART (attached to the first uart-named device), if any.
    [[nodiscard]] Uart* uart() { return uart_.get(); }

    /// Aggregate busy/overhead accounting across cores.
    [[nodiscard]] CoreUsage total_usage() const;

    /// Push derived metrics (engine events by priority, per-bucket core
    /// cycle totals) into the registry. Call before taking a snapshot.
    void publish_metrics();

private:
    void build_device_tree();

    PlatformConfig config_;
    sim::Engine engine_;
    sim::Rng rng_;
    sim::TraceLog trace_;
    obs::Obs obs_;
    MemoryMap mem_;
    // Own arena declared before everything holding arena-backed objects:
    // its destructor runs the registered Core destructors last.
    sim::Arena own_arena_;
    sim::Arena* arena_ = nullptr;
    const IsaOps* ops_ = nullptr;
    std::unique_ptr<IrqController> irqc_;
    Core* cores_ = nullptr;  ///< contiguous array of config_.ncores, arena-owned
    std::unique_ptr<SecureMonitor> monitor_;
    std::unique_ptr<Uart> uart_;
    DtNode dt_{"/"};
};

}  // namespace hpcsec::arch
