#include "arch/riscv/plic.h"

#include <stdexcept>

namespace hpcsec::arch {

Plic::Plic(int ncores, int nsources)
    : sources_(kExternalBase + nsources), harts_(ncores) {
    if (ncores <= 0) throw std::invalid_argument("Plic: need at least one hart");
    if (kExternalBase + nsources > IrqBitset::kBits) {
        throw std::invalid_argument("Plic: irq id space exceeds IrqBitset::kBits");
    }
}

void Plic::enable_irq(int irq) { sources_.at(irq).enabled = true; }
void Plic::disable_irq(int irq) { sources_.at(irq).enabled = false; }
bool Plic::irq_enabled(int irq) const { return sources_.at(irq).enabled; }

void Plic::set_external_target(int irq, CoreId core) {
    if (irq < kExternalBase) {
        throw std::invalid_argument("set_external_target: not a gateway source");
    }
    if (core < 0 || core >= ncores()) throw std::invalid_argument("bad hart");
    sources_.at(irq).target = core;
}

CoreId Plic::external_target(int irq) const { return sources_.at(irq).target; }

void Plic::set_priority(int irq, std::uint8_t prio) {
    sources_.at(irq).priority = prio;
}

void Plic::make_pending(CoreId core, int irq) {
    auto& hs = harts_.at(core);
    hs.pending.insert(irq);
    if (sources_.at(irq).enabled && signal_) signal_(core);
}

void Plic::raise_external(int irq) {
    if (irq < kExternalBase) {
        throw std::invalid_argument("raise_external: not a gateway source");
    }
    make_pending(sources_.at(irq).target, irq);
}

void Plic::raise_private(CoreId core, int irq) {
    if (irq < kPrivateBase || irq >= kExternalBase) {
        // sca-suppress(no-throw-guest-path): every caller passes a
        // compile-time timer-line constant, never guest input; a bad id is
        // a host wiring bug worth fail-stopping.
        throw std::invalid_argument("raise_private: not a CLINT private line");
    }
    make_pending(core, irq);
}

void Plic::send_ipi(CoreId target, int irq) {
    if (irq < kIpiBase || irq >= kIpiLimit) {
        // sca-suppress(no-throw-guest-path): IPI ids come from kernel wakeup
        // constants, never guest registers; a bad id is a host wiring bug.
        throw std::invalid_argument("send_ipi: not a software interrupt");
    }
    make_pending(target, irq);
}

void Plic::clear_pending(CoreId core, int irq) {
    harts_.at(core).pending.erase(irq);
}

bool Plic::has_deliverable(CoreId core) const {
    for (const int irq : harts_.at(core).pending) {
        if (sources_[static_cast<std::size_t>(irq)].enabled) return true;
    }
    return false;
}

int Plic::ack(CoreId core) {
    auto& hs = harts_.at(core);
    // Maximum over priority of pending ∩ enabled — PLIC arbitration, where
    // higher priority values win. Scanning ids in ascending order with a
    // strict compare keeps the lowest id on ties, so the uniform default
    // priorities give the same lowest-id-first claim order as the GIC
    // backend (the cross-ISA determinism contract in irq_controller.h).
    int best_irq = kSpurious;
    int best_prio = -1;
    for (const int irq : hs.pending) {
        const SourceState& s = sources_[static_cast<std::size_t>(irq)];
        if (!s.enabled) continue;
        if (s.priority > best_prio) {
            best_prio = s.priority;
            best_irq = irq;
        }
    }
    if (best_irq == kSpurious) return kSpurious;
    hs.pending.erase(best_irq);
    hs.active = best_irq;
    ++delivered_;
    return best_irq;
}

void Plic::eoi(CoreId core, int irq) {
    auto& hs = harts_.at(core);
    if (hs.active == irq) hs.active = kSpurious;
    // Complete reopens the gateway; re-signal if more is deliverable.
    if (has_deliverable(core) && signal_) signal_(core);
}

}  // namespace hpcsec::arch
