// RISC-V PLIC + CLINT interrupt-controller model — the RISC-V backend of
// arch::IrqController.
//
// Real hardware splits delivery between two blocks: the CLINT raises
// software (IPI) and timer interrupts directly per hart, while the PLIC
// gateways shared external sources and arbitrates claim/complete per
// context. This model folds both into one object behind the generic id
// layout from arch/irq_controller.h:
//   0..15   CLINT software interrupts (the IPI range)
//   16..31  per-hart private lines (STI/VSTI/MTI timer ids live here)
//   32..    PLIC gateway sources (external devices)
// External routing is modeled as a single claiming hart per source — the
// way kernels program PLIC enable bits for affinity — so PlatformConfig
// device tables carry the same ids on either ISA.
//
// Claim semantics follow the PLIC spec: highest priority wins and ties
// break toward the lowest id (the opposite comparison direction from the
// GIC, where lower priority values win). With the uniform default
// priorities both backends claim the lowest pending enabled id, which is
// what keeps same-seed runs deterministic across ISAs.
//
// Backend header: only src/arch/ may include this (sca rule isa-portability).
// Everything else reaches it through IsaOps::make_irq_controller.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/irq_bitset.h"
#include "arch/irq_controller.h"
#include "arch/types.h"

namespace hpcsec::arch {

// RISC-V timer line ids inside the private range (published via IsaOps::irq).
// These are model-local ids, not mcause codes: the CLINT lines are folded
// into the generic private range so the timer plumbing is ISA-invariant.
inline constexpr int kIrqSupervisorTimer = 21;  ///< STI: HS/kernel timer
inline constexpr int kIrqVsTimer = 22;          ///< VSTI: guest virtual timer
inline constexpr int kIrqMachineTimer = 23;     ///< MTI: firmware/hyp timer

class Plic final : public IrqController {
public:
    explicit Plic(int ncores, int nsources = 224);

    void set_signal(SignalFn fn) override { signal_ = std::move(fn); }

    // --- gateway / enable configuration -------------------------------------
    void enable_irq(int irq) override;
    void disable_irq(int irq) override;
    [[nodiscard]] bool irq_enabled(int irq) const override;
    /// External (PLIC gateway) routing only; CLINT lines are per-hart.
    void set_external_target(int irq, CoreId core) override;
    [[nodiscard]] CoreId external_target(int irq) const override;
    void set_priority(int irq, std::uint8_t prio) override;

    // --- interrupt generation ------------------------------------------------
    void raise_external(int irq) override;
    void raise_private(CoreId core, int irq) override;
    void send_ipi(CoreId target, int irq) override;  ///< irq in [0,16)
    /// Drop a level-triggered source before it is claimed.
    void clear_pending(CoreId core, int irq) override;

    // --- per-hart interface --------------------------------------------------
    /// Claim the highest-priority pending enabled interrupt for `core`
    /// (ties break to the lowest id, per the PLIC spec). Returns the
    /// generic kSpurious sentinel — not the PLIC's native 0 — when nothing
    /// is deliverable, so core dispatch loops are backend-agnostic.
    int ack(CoreId core) override;
    /// PLIC "complete": reopens the gateway and re-signals if more
    /// deliverable interrupts are queued.
    void eoi(CoreId core, int irq) override;
    [[nodiscard]] bool has_deliverable(CoreId core) const override;
    [[nodiscard]] int active_irq(CoreId core) const override {
        return harts_[core].active;
    }

    [[nodiscard]] std::uint64_t delivered_count() const override {
        return delivered_;
    }
    [[nodiscard]] int ncores() const override {
        return static_cast<int>(harts_.size());
    }

private:
    struct SourceState {
        bool enabled = false;
        std::uint8_t priority = 1;  // PLIC: higher wins; 1 is the uniform default
        CoreId target = 0;          // external sources only
    };
    struct HartState {
        // Pending per-hart (CLINT lines and routed gateway sources) as a
        // bitmap, mirroring the Gic backend's zero-alloc representation.
        IrqBitset pending;
        int active = kSpurious;
    };

    void make_pending(CoreId core, int irq);

    std::vector<SourceState> sources_;
    std::vector<HartState> harts_;
    SignalFn signal_;
    std::uint64_t delivered_ = 0;
};

}  // namespace hpcsec::arch
