#include "arch/timer.h"

namespace hpcsec::arch {

GenericTimer::GenericTimer(sim::Engine& engine, IrqController& irqc, CoreId core,
                           const IrqLayout& layout)
    : engine_(&engine), irqc_(&irqc), core_(core), layout_(layout) {}

sim::SimTime GenericTimer::counter() const { return engine_->now(); }

void GenericTimer::set_deadline(TimerChannel ch, sim::SimTime deadline) {
    Channel& c = ch_[static_cast<int>(ch)];
    if (c.armed) engine_->cancel(c.event);
    c.deadline = deadline;
    c.armed = true;
    // A deadline in the past fires immediately (condition already met).
    // Timer deadlines are the periodic tick storm — they go on the batched
    // timer wheel, not the heap queue (same dispatch order, cheaper re-arm).
    const sim::SimTime when = std::max(deadline, engine_->now());
    c.event = engine_->at_timer(when, [this, ch] { fire(ch); }, sim::kPrioInterrupt);
}

void GenericTimer::cancel(TimerChannel ch) {
    Channel& c = ch_[static_cast<int>(ch)];
    if (c.armed) {
        engine_->cancel(c.event);
        c.armed = false;
        c.deadline = sim::kTimeNever;
    }
}

bool GenericTimer::armed(TimerChannel ch) const {
    return ch_[static_cast<int>(ch)].armed;
}

sim::SimTime GenericTimer::deadline(TimerChannel ch) const {
    return ch_[static_cast<int>(ch)].deadline;
}

std::uint64_t GenericTimer::fired_count(TimerChannel ch) const {
    return ch_[static_cast<int>(ch)].fired;
}

void GenericTimer::fire(TimerChannel ch) {
    Channel& c = ch_[static_cast<int>(ch)];
    c.armed = false;
    c.deadline = sim::kTimeNever;
    ++c.fired;
    irqc_->raise_private(core_, ch == TimerChannel::kPhys ? layout_.phys_timer
                                                         : layout_.virt_timer);
}

}  // namespace hpcsec::arch
