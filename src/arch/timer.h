// ARM generic timer model: per-core physical and virtual channels.
//
// The physical channel (PPI 30) belongs to whoever owns the hardware — the
// native kernel, or the primary VM under Hafnium (the paper: "the Kitten
// Primary VM requires that all hardware timer interrupts be routed directly
// to it"). The virtual channel (PPI 27) is what Hafnium exposes to secondary
// VMs as their "dedicated virtual architectural timer channel".
#pragma once

#include <array>
#include <cstdint>

#include "arch/gic.h"
#include "arch/types.h"
#include "sim/engine.h"

namespace hpcsec::arch {

enum class TimerChannel : int {
    kPhys = 0,
    kVirt = 1,
};

class GenericTimer {
public:
    GenericTimer(sim::Engine& engine, Gic& gic, CoreId core);

    /// System counter value (== simulated cycles; CNTFRQ == CPU clock here).
    [[nodiscard]] sim::SimTime counter() const;

    /// Program the compare register: fire at absolute time `deadline`.
    void set_deadline(TimerChannel ch, sim::SimTime deadline);

    /// Disable the channel (CNTx_CTL.ENABLE = 0).
    void cancel(TimerChannel ch);

    [[nodiscard]] bool armed(TimerChannel ch) const;
    [[nodiscard]] sim::SimTime deadline(TimerChannel ch) const;

    [[nodiscard]] std::uint64_t fired_count(TimerChannel ch) const;

private:
    void fire(TimerChannel ch);

    sim::Engine* engine_;
    Gic* gic_;
    CoreId core_;

    struct Channel {
        sim::EventId event;
        sim::SimTime deadline = sim::kTimeNever;
        bool armed = false;
        std::uint64_t fired = 0;
    };
    std::array<Channel, 2> ch_;
};

}  // namespace hpcsec::arch
