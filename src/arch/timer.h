// Guest timer model: per-core physical and virtual channels.
//
// The physical channel belongs to whoever owns the hardware — the native
// kernel, or the primary VM under Hafnium (the paper: "the Kitten Primary VM
// requires that all hardware timer interrupts be routed directly to it").
// The virtual channel is what Hafnium exposes to secondary VMs as their
// "dedicated virtual architectural timer channel". On ARM these are the
// generic-timer PPIs 30/27; on RISC-V the STI/VSTI lines — the per-ISA line
// ids arrive via IrqLayout, the cadence logic is identical.
#pragma once

#include <array>
#include <cstdint>

#include "arch/irq_controller.h"
#include "arch/isa.h"
#include "arch/types.h"
#include "sim/engine.h"

namespace hpcsec::arch {

enum class TimerChannel : int {
    kPhys = 0,
    kVirt = 1,
};

class GenericTimer {
public:
    GenericTimer(sim::Engine& engine, IrqController& irqc, CoreId core,
                 const IrqLayout& layout);

    /// System counter value (== simulated cycles; counter freq == CPU clock).
    [[nodiscard]] sim::SimTime counter() const;

    /// Program the compare register: fire at absolute time `deadline`.
    void set_deadline(TimerChannel ch, sim::SimTime deadline);

    /// Disable the channel (compare-register ENABLE = 0).
    void cancel(TimerChannel ch);

    [[nodiscard]] bool armed(TimerChannel ch) const;
    [[nodiscard]] sim::SimTime deadline(TimerChannel ch) const;

    [[nodiscard]] std::uint64_t fired_count(TimerChannel ch) const;

private:
    void fire(TimerChannel ch);

    sim::Engine* engine_;
    IrqController* irqc_;
    CoreId core_;
    IrqLayout layout_;

    struct Channel {
        sim::EventId event;
        sim::SimTime deadline = sim::kTimeNever;
        bool armed = false;
        std::uint64_t fired = 0;
    };
    std::array<Channel, 2> ch_;
};

}  // namespace hpcsec::arch
