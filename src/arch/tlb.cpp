#include "arch/tlb.h"

#include <stdexcept>

namespace hpcsec::arch {

Tlb::Tlb(std::size_t entries, std::size_t ways) : ways_(ways) {
    if (ways == 0 || entries == 0 || entries % ways != 0) {
        throw std::invalid_argument("Tlb: entries must be a positive multiple of ways");
    }
    sets_.resize(entries / ways);
    for (auto& s : sets_) s.ways.resize(ways);
}

const TlbEntry* Tlb::lookup(VmId vmid, Asid asid, std::uint64_t in_page) {
    Set& set = sets_[set_of(in_page)];
    for (const auto& e : set.ways) {
        if (e.valid && e.vmid == vmid && e.asid == asid && e.in_page == in_page) {
            ++stats_.hits;
            return &e;
        }
    }
    ++stats_.misses;
    return nullptr;
}

void Tlb::insert(const TlbEntry& entry) {
    Set& set = sets_[set_of(entry.in_page)];
    // Re-inserting an existing translation updates it in place — a duplicate
    // would let lookups return whichever copy is found first (stale data).
    for (auto& e : set.ways) {
        if (e.valid && e.vmid == entry.vmid && e.asid == entry.asid &&
            e.in_page == entry.in_page) {
            e = entry;
            e.valid = true;
            return;
        }
    }
    // Prefer an invalid way; otherwise round-robin evict.
    for (auto& e : set.ways) {
        if (!e.valid) {
            e = entry;
            e.valid = true;
            return;
        }
    }
    TlbEntry& victim = set.ways[set.next_victim];
    set.next_victim = (set.next_victim + 1) % ways_;
    ++stats_.evictions;
    victim = entry;
    victim.valid = true;
}

void Tlb::flush_all() {
    ++stats_.flushes;
    ++flush_epoch_;
    for (auto& s : sets_) {
        for (auto& e : s.ways) e.valid = false;
    }
}

void Tlb::flush_vmid(VmId vmid) {
    ++stats_.flushes;
    ++flush_epoch_;
    for (auto& s : sets_) {
        for (auto& e : s.ways) {
            if (e.valid && e.vmid == vmid) e.valid = false;
        }
    }
}

void Tlb::flush_asid(VmId vmid, Asid asid) {
    ++stats_.flushes;
    ++flush_epoch_;
    for (auto& s : sets_) {
        for (auto& e : s.ways) {
            if (e.valid && e.vmid == vmid && e.asid == asid) e.valid = false;
        }
    }
}

void Tlb::flush_page(VmId vmid, std::uint64_t in_page) {
    ++flush_epoch_;
    for (auto& e : sets_[set_of(in_page)].ways) {
        if (e.valid && e.vmid == vmid && e.in_page == in_page) e.valid = false;
    }
}

std::size_t Tlb::valid_entries() const {
    std::size_t n = 0;
    for (const auto& s : sets_) {
        for (const auto& e : s.ways) n += e.valid ? 1 : 0;
    }
    return n;
}

}  // namespace hpcsec::arch
