// Set-associative TLB model with VMID/ASID tagging.
//
// Caches *combined* final translations (input page -> output page), the way
// modern ARM cores cache two-stage walks. Flush semantics follow the ARM
// TLBI instructions we need: full flush, by-VMID, and by-ASID. Replacement
// is deterministic round-robin so simulations are reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/types.h"

namespace hpcsec::arch {

struct TlbEntry {
    bool valid = false;
    VmId vmid = 0;
    Asid asid = 0;
    std::uint64_t in_page = 0;   ///< input address >> kPageShift
    std::uint64_t out_page = 0;  ///< output address >> kPageShift
    std::uint8_t perms = kPermNone;
    bool secure = false;
};

struct TlbStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t flushes = 0;
    std::uint64_t evictions = 0;

    [[nodiscard]] double hit_rate() const {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    }
};

class Tlb {
public:
    /// A53 main TLB: 512 entries, 4-way.
    explicit Tlb(std::size_t entries = 512, std::size_t ways = 4);

    /// nullptr on miss; also bumps hit/miss counters.
    const TlbEntry* lookup(VmId vmid, Asid asid, std::uint64_t in_page);

    void insert(const TlbEntry& entry);

    void flush_all();
    void flush_vmid(VmId vmid);
    void flush_asid(VmId vmid, Asid asid);
    void flush_page(VmId vmid, std::uint64_t in_page);

    /// Monotonic count of flush operations of any scope. Front-side caches
    /// (the MMU's L0 line) tag their fill with this and re-validate on hit,
    /// so every TLBI reaches them without a registration scheme.
    [[nodiscard]] std::uint64_t flush_epoch() const { return flush_epoch_; }

    /// Account a hit that was served by a front-side cache above this TLB
    /// (the combined translation is still logically cached here).
    void note_front_hit() { ++stats_.hits; }

    [[nodiscard]] const TlbStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

    [[nodiscard]] std::size_t valid_entries() const;
    [[nodiscard]] std::size_t capacity() const { return sets_.size() * ways_; }

private:
    [[nodiscard]] std::size_t set_of(std::uint64_t in_page) const {
        return in_page % sets_.size();
    }

    struct Set {
        std::vector<TlbEntry> ways;
        std::size_t next_victim = 0;
    };

    std::vector<Set> sets_;
    std::size_t ways_;
    TlbStats stats_;
    std::uint64_t flush_epoch_ = 0;
};

}  // namespace hpcsec::arch
