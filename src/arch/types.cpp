#include "arch/types.h"

namespace hpcsec::arch {

std::string to_string(FaultKind k) {
    switch (k) {
        case FaultKind::kNone: return "none";
        case FaultKind::kTranslation: return "translation";
        case FaultKind::kPermission: return "permission";
        case FaultKind::kSecurity: return "security";
        case FaultKind::kAddressSize: return "address-size";
        case FaultKind::kTagViolation: return "tag-violation";
    }
    return "?";
}

std::string to_string(El el) {
    switch (el) {
        case El::kEl0: return "EL0";
        case El::kEl1: return "EL1";
        case El::kEl2: return "EL2";
        case El::kEl3: return "EL3";
    }
    return "?";
}

std::string to_string(World w) {
    return w == World::kSecure ? "secure" : "non-secure";
}

}  // namespace hpcsec::arch
