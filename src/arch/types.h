// Fundamental architectural types for the ARMv8-ish machine model.
#pragma once

#include <cstdint>
#include <string>

namespace hpcsec::arch {

/// Physical address (PA): the real machine address space.
using PhysAddr = std::uint64_t;
/// Intermediate physical address (IPA): a VM's view of "physical" memory,
/// translated to PA by the hypervisor's stage-2 tables.
using IpaAddr = std::uint64_t;
/// Virtual address (VA): translated to IPA (or PA natively) by stage-1.
using VirtAddr = std::uint64_t;

using CoreId = int;

/// VM identifiers follow Hafnium's convention: the primary VM is ID 1,
/// secondaries count up from 2. 0 means "the hypervisor itself".
using VmId = std::uint16_t;
inline constexpr VmId kHypervisorId = 0;
inline constexpr VmId kPrimaryVmId = 1;

/// Address-space ID for stage-1 TLB tagging.
using Asid = std::uint16_t;

inline constexpr std::uint64_t kPageShift = 12;
inline constexpr std::uint64_t kPageSize = 1ull << kPageShift;  // 4 KiB granule
inline constexpr std::uint64_t kPageMask = kPageSize - 1;

[[nodiscard]] constexpr std::uint64_t page_floor(std::uint64_t a) { return a & ~kPageMask; }
[[nodiscard]] constexpr std::uint64_t page_ceil(std::uint64_t a) {
    return (a + kPageMask) & ~kPageMask;
}
[[nodiscard]] constexpr std::uint64_t page_index(std::uint64_t a) { return a >> kPageShift; }

/// Privilege levels, named after the ARMv8 exception-level ladder but
/// ISA-generic: the RISC-V H-extension modes map onto the same four rungs
/// (U -> kEl0, VS -> kEl1, HS -> kEl2, M -> kEl3). Backends publish their
/// native names via arch::IsaOps::priv_name.
enum class El : std::uint8_t {
    kEl0 = 0,  ///< user space (ARM EL0 / RISC-V U)
    kEl1 = 1,  ///< guest OS kernel (ARM EL1 / RISC-V VS)
    kEl2 = 2,  ///< hypervisor — Hafnium/SPM (ARM EL2 / RISC-V HS)
    kEl3 = 3,  ///< monitor/firmware (ARM EL3+TF-A / RISC-V M+SBI)
};

/// TrustZone security state.
enum class World : std::uint8_t {
    kNonSecure = 0,
    kSecure = 1,
};

/// Memory access kinds for permission checks.
enum class Access : std::uint8_t {
    kRead,
    kWrite,
    kExec,
};

/// Page permissions, OR-able.
enum Perms : std::uint8_t {
    kPermNone = 0,
    kPermR = 1 << 0,
    kPermW = 1 << 1,
    kPermX = 1 << 2,
    kPermRW = kPermR | kPermW,
    kPermRX = kPermR | kPermX,
    kPermRWX = kPermR | kPermW | kPermX,
};

[[nodiscard]] constexpr bool perms_allow(std::uint8_t perms, Access a) {
    switch (a) {
        case Access::kRead: return (perms & kPermR) != 0;
        case Access::kWrite: return (perms & kPermW) != 0;
        case Access::kExec: return (perms & kPermX) != 0;
    }
    return false;
}

/// Translation fault classification (subset of ARM DFSC codes we need).
enum class FaultKind : std::uint8_t {
    kNone = 0,
    kTranslation,   ///< no mapping at some level
    kPermission,    ///< mapped but access kind not permitted
    kSecurity,      ///< non-secure access to secure memory
    kAddressSize,   ///< address outside the configured range
    kTagViolation,  ///< untagged writer touched an integrity-tagged frame
};

[[nodiscard]] std::string to_string(FaultKind k);
[[nodiscard]] std::string to_string(El el);
[[nodiscard]] std::string to_string(World w);

}  // namespace hpcsec::arch
