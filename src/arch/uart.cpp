#include "arch/uart.h"

namespace hpcsec::arch {

Uart::Uart(MemoryMap& mem, Gic* gic, PhysAddr base, int tx_spi)
    : gic_(gic), tx_spi_(tx_spi) {
    MemoryMap::MmioHandler handler;
    handler.read = [](std::uint64_t offset) -> std::uint64_t {
        if (offset == kFlagReg) return kFlagTxReady;  // TX FIFO never fills
        return 0;
    };
    handler.write = [this](std::uint64_t offset, std::uint64_t value) {
        if (offset != kDataReg) return;
        output_.push_back(static_cast<char>(value & 0xff));
        ++tx_count_;
        if (gic_ != nullptr && tx_spi_ >= 0) gic_->raise_spi(tx_spi_);
    };
    mem.register_mmio(base, std::move(handler));
}

}  // namespace hpcsec::arch
