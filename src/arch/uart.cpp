#include "arch/uart.h"

namespace hpcsec::arch {

Uart::Uart(MemoryMap& mem, IrqController* irqc, PhysAddr base, int tx_spi)
    : irqc_(irqc), tx_spi_(tx_spi) {
    MemoryMap::MmioHandler handler;
    handler.read = [](std::uint64_t offset) -> std::uint64_t {
        if (offset == kFlagReg) return kFlagTxReady;  // TX FIFO never fills
        return 0;
    };
    handler.write = [this](std::uint64_t offset, std::uint64_t value) {
        if (offset != kDataReg) return;
        output_.push_back(static_cast<char>(value & 0xff));
        ++tx_count_;
        if (irqc_ != nullptr && tx_spi_ >= 0) irqc_->raise_external(tx_spi_);
    };
    mem.register_mmio(base, std::move(handler));
}

}  // namespace hpcsec::arch
