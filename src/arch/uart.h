// 16550/PL011-flavoured UART model.
//
// The minimal functional console: writes to the data register append to a
// capture buffer (and optionally raise the RX/TX SPI), reads of the flag
// register report "always ready". Whichever VM owns the UART's MMIO window
// in its stage-2 tables — the primary by default, the super-secondary
// "login" VM in the paper's extended configuration — gets a console; every
// other partition's access faults, which the isolation tests exploit.
#pragma once

#include <cstdint>
#include <string>

#include "arch/irq_controller.h"
#include "arch/memory_map.h"
#include "arch/types.h"

namespace hpcsec::arch {

class Uart {
public:
    // Register offsets (PL011-ish).
    static constexpr std::uint64_t kDataReg = 0x00;   ///< DR: TX on write
    static constexpr std::uint64_t kFlagReg = 0x18;   ///< FR: status
    static constexpr std::uint64_t kFlagTxReady = 0x80;

    /// Attach to the platform memory map at `base` (must be an MMIO region
    /// base). When `tx_spi` >= 0 every transmitted byte raises that
    /// external interrupt line.
    Uart(MemoryMap& mem, IrqController* irqc, PhysAddr base, int tx_spi = -1);

    [[nodiscard]] const std::string& output() const { return output_; }
    void clear_output() { output_.clear(); }
    [[nodiscard]] std::uint64_t bytes_transmitted() const { return tx_count_; }

private:
    IrqController* irqc_;
    int tx_spi_;
    std::string output_;
    std::uint64_t tx_count_ = 0;
};

}  // namespace hpcsec::arch
