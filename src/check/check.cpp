#include "check/check.h"

#include <algorithm>
#include <cstdint>

#include "arch/isa.h"
#include "arch/memory_map.h"
#include "arch/platform.h"
#include "obs/events.h"

namespace hpcsec::check {

namespace {

/// One past the largest interrupt id the controller models distribute
/// (kExternalBase + the default external-source count).
constexpr int kIrqIdLimit = 256;

/// Largest mapping (in frames) that is ownership-probed exhaustively;
/// larger windows are probed at both ends plus every kProbeStride frames
/// (allocations are physically contiguous, so a stride catches any
/// ownership change inside a big block mapping).
constexpr std::uint64_t kExhaustiveProbeFrames = 1024;
constexpr std::uint64_t kProbeStride = 64;

[[nodiscard]] std::string hex(std::uint64_t v) {
    constexpr const char* digits = "0123456789abcdef";
    std::string s;
    do {
        s.insert(s.begin(), digits[v & 0xf]);
        v >>= 4;
    } while (v != 0);
    return "0x" + s;
}

[[nodiscard]] bool routed_irq_id(int irq, const arch::IrqLayout& layout) {
    return (irq >= arch::kIpiBase && irq < arch::kIpiLimit) ||  // IPIs
           irq == layout.virt_timer || irq == layout.phys_timer ||
           (irq >= arch::kExternalBase && irq < kIrqIdLimit);  // device irqs
}

/// A stage-2 terminal mapping tagged with its VM, flattened to PA space.
struct PaMapping {
    arch::VmId vm = 0;
    arch::IpaAddr ipa = 0;
    arch::PhysAddr pa = 0;
    std::uint64_t size = 0;
    std::uint8_t perms = arch::kPermNone;
    bool secure = false;
};

/// A share/lend grant resolved to the PA range it covers.
struct GrantRange {
    arch::VmId owner = 0;
    arch::VmId borrower = 0;
    arch::PhysAddr pa = 0;
    std::uint64_t size = 0;
};

}  // namespace

const char* to_string(Rule r) {
    switch (r) {
        case Rule::kStage2Exclusive: return "stage2-exclusive";
        case Rule::kStage2Ownership: return "stage2-ownership";
        case Rule::kTrustZone: return "trustzone-world";
        case Rule::kVcpuTransition: return "vcpu-transition";
        case Rule::kCoreLocality: return "core-locality";
        case Rule::kVgicSanity: return "vgic-sanity";
        case Rule::kAccounting: return "accounting";
    }
    return "?";
}

const char* to_string(Mode m) {
    switch (m) {
        case Mode::kOff: return "off";
        case Mode::kSampled: return "sampled";
        case Mode::kStrict: return "strict";
    }
    return "?";
}

std::string CheckFailure::format() const {
    std::string s = "[";
    s += to_string(rule);
    s += "] vm=" + std::to_string(vm);
    if (vcpu >= 0) s += " vcpu=" + std::to_string(vcpu);
    s += ": " + description;
    return s;
}

Auditor::Auditor(hafnium::Spm& spm) : Auditor(spm, Options{}) {}

Auditor::Auditor(hafnium::Spm& spm, Options options)
    : hafnium::HypercallInterceptor(hafnium::HypercallInterceptor::Stage::kAudit),
      spm_(&spm),
      options_(options) {
    spm_->attach_audit(this);
    spm_->attach_interceptor(this);
}

Auditor::~Auditor() {
    spm_->detach_interceptor(this);
    if (spm_->audit() == this) spm_->attach_audit(nullptr);
}

std::size_t Auditor::count(Rule r) const {
    return static_cast<std::size_t>(
        std::count_if(failures_.begin(), failures_.end(),
                      [r](const CheckFailure& f) { return f.rule == r; }));
}

void Auditor::clear() {
    failures_.clear();
    seen_.clear();
}

std::string Auditor::report() const {
    std::string out;
    for (const auto& f : failures_) {
        out += f.format();
        out += '\n';
    }
    return out;
}

void Auditor::publish_metrics() {
    auto& m = spm_->platform().metrics();
    m.set(m.gauge("check.failures"), static_cast<double>(failures_.size()));
    m.set(m.gauge("check.audits"), static_cast<double>(audits_));
    m.set(m.gauge("check.transitions"), static_cast<double>(transitions_));
}

void Auditor::record(CheckFailure f) {
    std::string key = std::to_string(static_cast<int>(f.rule)) + '|' +
                      std::to_string(f.vm) + '|' + std::to_string(f.vcpu) + '|' +
                      f.description;
    if (!seen_.insert(std::move(key)).second) return;  // already reported
    auto& platform = spm_->platform();
    platform.recorder().instant(platform.engine().now(), obs::EventType::kCheckFail,
                                /*core=*/-1, static_cast<std::int64_t>(f.rule),
                                f.vm, f.vcpu);
    // sca-suppress(hot-path-alloc): grows only when an isolation invariant
    // is already violated — the run is off its steady-state contract.
    failures_.push_back(f);
    // Post-mortem context: every *new* finding flushes the flight recorder
    // (no-op when disarmed) — before the strict throw, so the dump exists
    // even when the violation unwinds the run.
    platform.flight().dump("check-violation");
    // sca-suppress(no-throw-guest-path): strict mode is the documented
    // fail-stop contract — an isolation violation must abort the run, not
    // be swallowed; kLog mode is the non-throwing alternative.
    if (options_.mode == Mode::kStrict) throw CheckViolation(std::move(f));
}

std::size_t Auditor::validate() {
    const std::size_t before = failures_.size();
    ++audits_;
    calls_since_scan_ = 0;
    events_at_last_scan_ = spm_->platform().engine().events_executed();
    check_stage2();
    check_core_locality();
    check_vgic();
    check_accounting();
    return failures_.size() - before;
}

// --------------------------------------------------------------------------
// Hook points
// --------------------------------------------------------------------------

void Auditor::on_vcpu_state(hafnium::Vcpu& vcpu, hafnium::VcpuState from,
                            hafnium::VcpuState to) {
    if (options_.mode == Mode::kOff) return;
    ++transitions_;
    if (hafnium::vcpu_transition_legal(from, to)) return;
    record({Rule::kVcpuTransition, vcpu.vm().id(), vcpu.index(),
            std::string("illegal transition ") + hafnium::to_string(from) +
                " -> " + hafnium::to_string(to)});
}

void Auditor::after(const hafnium::HypercallSite& site,
                    const hafnium::HfResult& result) {
    (void)site;
    (void)result;
    if (options_.mode == Mode::kStrict) {
        validate();
        return;
    }
    if (options_.mode != Mode::kSampled) return;
    ++calls_since_scan_;
    const std::uint64_t events = spm_->platform().engine().events_executed();
    if (calls_since_scan_ >= static_cast<std::uint64_t>(options_.period) ||
        (options_.event_period != 0 &&
         events - events_at_last_scan_ >= options_.event_period)) {
        validate();
    }
}

// --------------------------------------------------------------------------
// Rule: stage-2 exclusivity / ownership / TrustZone worlds
// --------------------------------------------------------------------------

void Auditor::check_stage2() {
    auto& mem = spm_->platform().mem();

    // Resolve every live grant to the PA range it covers.
    std::vector<GrantRange> grant_ranges;
    for (const auto& g : spm_->grants()) {
        const arch::WalkResult w = spm_->vm_translate(g.owner, g.owner_ipa);
        if (w.fault != arch::FaultKind::kNone) continue;  // owner unmapped: stale
        grant_ranges.push_back({g.owner, g.borrower, w.out, g.pages * arch::kPageSize});
    }
    const auto borrowed = [&grant_ranges](arch::VmId vm, arch::PhysAddr pa) {
        for (const auto& gr : grant_ranges) {
            if (gr.borrower == vm && pa >= gr.pa && pa < gr.pa + gr.size) return true;
        }
        return false;
    };
    const auto grant_pair = [&grant_ranges](arch::VmId a, arch::VmId b,
                                            arch::PhysAddr pa) {
        for (const auto& gr : grant_ranges) {
            if (pa < gr.pa || pa >= gr.pa + gr.size) continue;
            if ((gr.owner == a && gr.borrower == b) ||
                (gr.owner == b && gr.borrower == a)) {
                return true;
            }
        }
        return false;
    };

    std::vector<PaMapping> ram_maps;
    for (int id = 1; id <= spm_->vm_count(); ++id) {
        hafnium::Vm& vm = spm_->vm(static_cast<arch::VmId>(id));
        if (vm.destroyed) continue;
        const bool may_own_devices = vm.role() != hafnium::VmRole::kSecondary;

        vm.stage2().for_each_mapping([&](const arch::PageTable::MappingView& m) {
            const arch::MemRegion* region = mem.find_region(m.out_base);
            if (region == nullptr) {
                record({Rule::kStage2Ownership, vm.id(), -1,
                        "maps unbacked PA " + hex(m.out_base) +
                            " (" + std::to_string(m.size) + " bytes)"});
                return;
            }
            if (region->kind == arch::RegionKind::kMmio) {
                if (!may_own_devices) {
                    record({Rule::kStage2Ownership, vm.id(), -1,
                            "secondary maps MMIO region '" + region->name + "'"});
                }
                return;  // device windows are exempt from RAM rules
            }

            // TrustZone: the NS bit must match the frame's world, and a
            // normal-world VM must never reach secure RAM.
            const bool frame_secure = mem.world_of(m.out_base) == arch::World::kSecure;
            if (m.secure != frame_secure) {
                record({Rule::kTrustZone, vm.id(), -1,
                        std::string("stage-2 secure attribute ") +
                            (m.secure ? "set" : "clear") + " but frame world is " +
                            (frame_secure ? "secure" : "non-secure")});
            }
            if (vm.world() == arch::World::kNonSecure && frame_secure) {
                record({Rule::kTrustZone, vm.id(), -1,
                        "normal-world VM maps secure RAM at PA " +
                            hex(m.out_base)});
            }

            // Ownership: every frame must belong to the mapping VM or be
            // covered by a grant that names it as borrower.
            const std::uint64_t frames = m.size >> arch::kPageShift;
            const auto probe = [&](std::uint64_t fi) {
                const arch::PhysAddr pa = m.out_base + fi * arch::kPageSize;
                const auto owner = mem.owner_of(pa);
                if (owner && owner->allocated && owner->vm == vm.id()) return;
                if (borrowed(vm.id(), pa)) return;
                record({Rule::kStage2Ownership, vm.id(), -1,
                        "maps PA " + hex(pa) + " owned by vm " +
                            std::to_string(owner ? owner->vm : 0) +
                            " without a grant"});
            };
            if (frames <= kExhaustiveProbeFrames) {
                for (std::uint64_t f = 0; f < frames; ++f) probe(f);
            } else {
                probe(0);
                probe(frames - 1);
                for (std::uint64_t f = kProbeStride; f < frames - 1;
                     f += kProbeStride) {
                    probe(f);
                }
            }
            ram_maps.push_back(
                {vm.id(), m.in_base, m.out_base, m.size, m.perms, m.secure});
        });
    }

    // Exclusivity sweep: writable RAM present in two different VMs' tables
    // must be covered by an explicit grant between exactly those VMs.
    std::sort(ram_maps.begin(), ram_maps.end(),
              [](const PaMapping& a, const PaMapping& b) { return a.pa < b.pa; });
    for (std::size_t i = 0; i < ram_maps.size(); ++i) {
        const PaMapping& a = ram_maps[i];
        if ((a.perms & arch::kPermW) == 0) continue;
        for (std::size_t j = i + 1; j < ram_maps.size(); ++j) {
            const PaMapping& b = ram_maps[j];
            if (b.pa >= a.pa + a.size) break;  // sorted: no further overlap
            if (b.vm == a.vm || (b.perms & arch::kPermW) == 0) continue;
            if (grant_pair(a.vm, b.vm, b.pa)) continue;
            record({Rule::kStage2Exclusive, b.vm, -1,
                    "PA " + hex(b.pa) + " writable in vm " +
                        std::to_string(a.vm) + " and vm " + std::to_string(b.vm) +
                        " without a grant"});
        }
    }
}

// --------------------------------------------------------------------------
// Rule: core locality
// --------------------------------------------------------------------------

void Auditor::check_core_locality() {
    const int ncores = spm_->platform().ncores();
    std::vector<const hafnium::Vcpu*> running(static_cast<std::size_t>(ncores),
                                              nullptr);
    for (int id = 1; id <= spm_->vm_count(); ++id) {
        hafnium::Vm& vm = spm_->vm(static_cast<arch::VmId>(id));
        for (int v = 0; v < vm.vcpu_count(); ++v) {
            const hafnium::Vcpu& vcpu = vm.vcpu(v);
            if (vcpu.assigned_core < -1 || vcpu.assigned_core >= ncores) {
                record({Rule::kCoreLocality, vm.id(), v,
                        "assigned_core " + std::to_string(vcpu.assigned_core) +
                            " out of range"});
            }
            if (vcpu.state() == hafnium::VcpuState::kRunning) {
                if (vcpu.running_core < 0 || vcpu.running_core >= ncores) {
                    record({Rule::kCoreLocality, vm.id(), v,
                            "running with running_core " +
                                std::to_string(vcpu.running_core)});
                    continue;
                }
                const auto slot = static_cast<std::size_t>(vcpu.running_core);
                if (running[slot] != nullptr) {
                    record({Rule::kCoreLocality, vm.id(), v,
                            "two running VCPUs on core " +
                                std::to_string(vcpu.running_core)});
                } else {
                    running[slot] = &vcpu;
                }
                if (spm_->running_vcpu(vcpu.running_core) != &vcpu) {
                    record({Rule::kCoreLocality, vm.id(), v,
                            "running_core " + std::to_string(vcpu.running_core) +
                                " disagrees with the SPM's per-core table"});
                }
            } else if (vcpu.running_core != -1) {
                record({Rule::kCoreLocality, vm.id(), v,
                        std::string("state ") + to_string(vcpu.state()) +
                            " but running_core " +
                            std::to_string(vcpu.running_core)});
            }
        }
    }
    for (int c = 0; c < ncores; ++c) {
        const hafnium::Vcpu* rv = spm_->running_vcpu(c);
        if (rv != nullptr && rv->state() != hafnium::VcpuState::kRunning) {
            record({Rule::kCoreLocality, rv->vm().id(), rv->index(),
                    std::string("per-core table lists a ") + to_string(rv->state()) +
                        " VCPU on core " + std::to_string(c)});
        }
    }
}

// --------------------------------------------------------------------------
// Rule: vGIC sanity
// --------------------------------------------------------------------------

void Auditor::check_vgic() {
    const arch::IrqLayout& layout = spm_->platform().isa_ops().irq;
    for (int id = 1; id <= spm_->vm_count(); ++id) {
        hafnium::Vm& vm = spm_->vm(static_cast<arch::VmId>(id));
        if (vm.destroyed) continue;
        for (int v = 0; v < vm.vcpu_count(); ++v) {
            const hafnium::Vcpu& vcpu = vm.vcpu(v);
            for (const int irq : vcpu.vgic.pending) {
                if (!routed_irq_id(irq, layout)) {
                    record({Rule::kVgicSanity, vm.id(), v,
                            "pending virq " + std::to_string(irq) +
                                " is not a routed interrupt id"});
                }
            }
            for (const int irq : vcpu.vgic.enabled) {
                if (!routed_irq_id(irq, layout)) {
                    record({Rule::kVgicSanity, vm.id(), v,
                            "enabled virq " + std::to_string(irq) +
                                " is not a routed interrupt id"});
                }
            }
        }
    }
}

// --------------------------------------------------------------------------
// Rule: accounting cross-checks
// --------------------------------------------------------------------------

void Auditor::check_accounting() {
    const hafnium::Spm::Stats& s = spm_->stats();

    const std::uint64_t exits = s.exits_preempted + s.exits_blocked +
                                s.exits_yield + s.exits_aborted;
    if (s.vm_exits != exits) {
        record({Rule::kAccounting, 0, -1,
                "vm_exits " + std::to_string(s.vm_exits) +
                    " != preempted+blocked+yield+aborted " + std::to_string(exits)});
    }

    if (s.mem_grants < s.mem_revokes ||
        spm_->grants().size() != s.mem_grants - s.mem_revokes) {
        record({Rule::kAccounting, 0, -1,
                "live grants " + std::to_string(spm_->grants().size()) +
                    " != mem_grants " + std::to_string(s.mem_grants) +
                    " - mem_revokes " + std::to_string(s.mem_revokes)});
    }

    std::uint64_t runs = 0;
    for (int id = 1; id <= spm_->vm_count(); ++id) {
        hafnium::Vm& vm = spm_->vm(static_cast<arch::VmId>(id));
        for (int v = 0; v < vm.vcpu_count(); ++v) runs += vm.vcpu(v).runs;
    }
    if (s.vm_exits > runs) {
        record({Rule::kAccounting, 0, -1,
                "vm_exits " + std::to_string(s.vm_exits) + " exceeds VCPU entries " +
                    std::to_string(runs)});
    }

    // Reconcile against the published obs metrics: what publish_metrics
    // exports must match the live counters (tools/lint.py separately proves
    // every Stats field is published at all).
    spm_->publish_metrics();
    auto& m = spm_->platform().metrics();
    const auto reconcile = [&](const char* name, std::uint64_t value) {
        const double g = m.gauge_value(m.gauge(name));
        if (g != static_cast<double>(value)) {
            record({Rule::kAccounting, 0, -1,
                    std::string(name) + " gauge " + std::to_string(g) +
                        " != stats counter " + std::to_string(value)});
        }
    };
    reconcile("hf.vm_exits", s.vm_exits);
    reconcile("hf.exits_preempted", s.exits_preempted);
    reconcile("hf.exits_blocked", s.exits_blocked);
    reconcile("hf.exits_yield", s.exits_yield);
    reconcile("hf.exits_aborted", s.exits_aborted);
    reconcile("hf.mem_grants", s.mem_grants);
    reconcile("hf.mem_revokes", s.mem_revokes);
    reconcile("hf.bad_state_calls", s.bad_state_calls);
}

}  // namespace hpcsec::check
