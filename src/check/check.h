// Isolation-invariant auditor for the SPM.
//
// The paper's argument rests on properties no single unit test states
// globally: stage-2 tables never leak one VM's frames to another, VCPUs
// only move through legal scheduling states, a physical core never hosts
// two running VCPUs, the para-virtual GIC only carries routed interrupt
// ids, and the SPM's own accounting stays internally consistent. The
// Auditor checks all of them continuously: transition hooks fire on every
// VCPU state change, and full scans run after hypercalls at a configurable
// cadence. When detached, every hook site in the SPM costs one predicted
// branch — the same discipline as the obs recorder.
//
// See docs/CHECKING.md for the rule catalog and how to add a rule.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "hafnium/spm.h"

namespace hpcsec::check {

/// Every invariant the auditor enforces. Keep to_string in check.cpp in
/// sync (tools/lint.py fails the build otherwise).
enum class Rule : std::uint8_t {
    kStage2Exclusive,  ///< writable frame in >1 VM without a covering grant
    kStage2Ownership,  ///< VM maps a frame it neither owns nor borrows
    kTrustZone,        ///< stage-2 secure attribute contradicts the frame's world
    kVcpuTransition,   ///< illegal VcpuState transition
    kCoreLocality,     ///< >1 running VCPU per core / incoherent core fields
    kVgicSanity,       ///< pending/enabled virq id is not a routed interrupt
    kAccounting,       ///< Spm::Stats identities / obs-metrics reconciliation
};

[[nodiscard]] const char* to_string(Rule r);

enum class Mode : std::uint8_t {
    kOff,      ///< hooks attached but inert (overhead measurement baseline)
    kSampled,  ///< audit every N hypercalls / sim events, report at the end
    kStrict,   ///< audit every hypercall, throw on the first violation
};

[[nodiscard]] const char* to_string(Mode m);

/// One violated invariant, with enough context to locate the culprit.
struct CheckFailure {
    Rule rule = Rule::kStage2Exclusive;
    arch::VmId vm = 0;   ///< 0 when the failure is not VM-specific
    int vcpu = -1;       ///< -1 when the failure is not VCPU-specific
    std::string description;

    [[nodiscard]] std::string format() const;
};

/// Thrown by strict mode at the point of detection.
class CheckViolation : public std::runtime_error {
public:
    explicit CheckViolation(CheckFailure f)
        : std::runtime_error("check violation: " + f.format()),
          failure(std::move(f)) {}

    const CheckFailure failure;
};

/// Attaches to an Spm and audits the isolation invariants. Construction
/// registers both hooks — the per-VCPU state-transition sink and a
/// Stage::kAudit interceptor on the hypercall chain; destruction detaches
/// them.
class Auditor final : public hafnium::HypercallInterceptor,
                      public hafnium::VcpuAuditSink {
public:
    struct Options {
        Mode mode = Mode::kSampled;
        /// Sampled mode: full scan every `period` observed hypercalls...
        int period = 64;
        /// ...or whenever this many sim-engine events elapsed since the
        /// last scan, whichever comes first. 0 disables the event cadence.
        std::uint64_t event_period = 100'000;
    };

    explicit Auditor(hafnium::Spm& spm);
    Auditor(hafnium::Spm& spm, Options options);
    ~Auditor() override;
    Auditor(const Auditor&) = delete;
    Auditor& operator=(const Auditor&) = delete;

    /// Run every scan rule now. Returns the number of *new* findings
    /// (repeats of an already-recorded failure are deduplicated). In
    /// strict mode the first new finding throws CheckViolation instead.
    std::size_t validate();

    [[nodiscard]] const std::vector<CheckFailure>& failures() const {
        return failures_;
    }
    [[nodiscard]] std::size_t count(Rule r) const;
    [[nodiscard]] std::uint64_t audits() const { return audits_; }
    [[nodiscard]] std::uint64_t transitions_checked() const { return transitions_; }
    [[nodiscard]] const Options& options() const { return options_; }
    void clear();

    /// Multi-line human-readable findings report ("" when clean).
    [[nodiscard]] std::string report() const;

    /// Gauges check.failures / check.audits / check.transitions.
    void publish_metrics();

    // --- SPM hook points ----------------------------------------------------
    /// VcpuAuditSink: every VCPU state transition.
    void on_vcpu_state(hafnium::Vcpu& vcpu, hafnium::VcpuState from,
                       hafnium::VcpuState to) override;
    /// HypercallInterceptor (Stage::kAudit): scan cadence after every call.
    /// Strict mode may throw CheckViolation from here.
    void after(const hafnium::HypercallSite& site,
               const hafnium::HfResult& result) override;

private:
    void record(CheckFailure f);  ///< dedup, retain, obs event, strict throw

    // Scan rules (each may record any number of failures).
    void check_stage2();
    void check_core_locality();
    void check_vgic();
    void check_accounting();

    hafnium::Spm* spm_;
    Options options_;
    std::vector<CheckFailure> failures_;
    std::unordered_set<std::string> seen_;
    std::uint64_t audits_ = 0;
    std::uint64_t transitions_ = 0;
    std::uint64_t calls_since_scan_ = 0;
    std::uint64_t events_at_last_scan_ = 0;
};

}  // namespace hpcsec::check
