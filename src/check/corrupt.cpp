#include "check/corrupt.h"

#include <stdexcept>

#include "arch/memory_map.h"
#include "arch/platform.h"

namespace hpcsec::check {

namespace {

// IPAs far above any legitimate guest window, so the rogue mappings never
// collide with boot-time or grant mappings.
constexpr arch::IpaAddr kRogueIpa = 0x6000'0000;
constexpr arch::IpaAddr kMismatchIpa = 0x6800'0000;

// A PPI that is never distributed (only the timer PPIs are routed), kept
// inside the vGIC's 256-id hardware space so the bitmap can represent it.
constexpr int kStrayVirq = 17;

[[nodiscard]] hafnium::Vm& first_secondary(hafnium::Spm& spm) {
    for (int id = 1; id <= spm.vm_count(); ++id) {
        hafnium::Vm& vm = spm.vm(static_cast<arch::VmId>(id));
        if (vm.role() == hafnium::VmRole::kSecondary && !vm.destroyed) return vm;
    }
    throw std::runtime_error("inject_corruption: no live secondary VM");
}

}  // namespace

arch::IpaAddr CorruptionAccess::map_rogue_window(hafnium::Spm& spm,
                                                 arch::VmId attacker,
                                                 arch::PhysAddr target_pa,
                                                 std::uint64_t pages) {
    hafnium::Vm& vm = spm.vm(attacker);
    if (vm.destroyed) {
        throw std::runtime_error("map_rogue_window: attacker VM is destroyed");
    }
    const arch::IpaAddr window = vm.ipa_base + vm.mem_bytes();
    vm.stage2().map(window, target_pa, pages * arch::kPageSize, arch::kPermRW,
                    /*secure=*/false, /*force_pages=*/true);
    return window;
}

const char* to_string(CorruptionKind k) {
    switch (k) {
        case CorruptionKind::kRogueStage2Map: return "rogue-stage2-map";
        case CorruptionKind::kForgedTransition: return "forged-transition";
        case CorruptionKind::kStrayVgicPending: return "stray-vgic-pending";
        case CorruptionKind::kSkewedStats: return "skewed-stats";
        case CorruptionKind::kWorldMismatch: return "world-mismatch";
    }
    return "?";
}

Rule inject_corruption(hafnium::Spm& spm, CorruptionKind kind) {
    switch (kind) {
        case CorruptionKind::kRogueStage2Map: {
            // A secondary gains a writable window onto the primary's RAM —
            // the exact leak stage-2 isolation exists to prevent.
            hafnium::Vm& victim = spm.primary_vm();
            hafnium::Vm& rogue = first_secondary(spm);
            rogue.stage2().map(kRogueIpa, victim.mem_base, arch::kPageSize,
                               arch::kPermRW, /*secure=*/false,
                               /*force_pages=*/true);
            return Rule::kStage2Ownership;
        }
        case CorruptionKind::kForgedTransition: {
            // Drive a VCPU through a transition the state machine forbids
            // (kOff never jumps straight to kRunning; nothing returns to
            // kOff). Reported by the transition hook at the set_state call.
            hafnium::Vcpu& vcpu = first_secondary(spm).vcpu(0);
            const auto target = vcpu.state() == hafnium::VcpuState::kOff
                                    ? hafnium::VcpuState::kRunning
                                    : hafnium::VcpuState::kOff;
            vcpu.set_state(target);
            return Rule::kVcpuTransition;
        }
        case CorruptionKind::kStrayVgicPending: {
            first_secondary(spm).vcpu(0).vgic.pending.insert(kStrayVirq);
            return Rule::kVgicSanity;
        }
        case CorruptionKind::kSkewedStats: {
            // An exit that never happened: breaks the vm_exits identity.
            CorruptionAccess::stats(spm).vm_exits += 1;
            return Rule::kAccounting;
        }
        case CorruptionKind::kWorldMismatch: {
            // Remap a VM's own first frame claiming the opposite TrustZone
            // world from what the memory map records.
            hafnium::Vm& vm = first_secondary(spm);
            const bool frame_secure =
                spm.platform().mem().world_of(vm.mem_base) == arch::World::kSecure;
            vm.stage2().map(kMismatchIpa, vm.mem_base, arch::kPageSize,
                            arch::kPermR, /*secure=*/!frame_secure,
                            /*force_pages=*/true);
            return Rule::kTrustZone;
        }
    }
    throw std::runtime_error("inject_corruption: unknown kind");
}

}  // namespace hpcsec::check
