// Fault injection for the invariant auditor: deliberately corrupt SPM
// state in ways a buggy (or compromised) hypervisor could, so tests can
// prove each check::Rule fires on a live violation rather than only on
// synthetic inputs. The corruptions bypass the hypercall interface via a
// friend backdoor — exactly the kind of tampering the auditor exists to
// catch.
#pragma once

#include "check/check.h"
#include "hafnium/spm.h"

namespace hpcsec::check {

/// Friend backdoor into private Spm state (declared friend in spm.h).
/// Test/injection use only.
struct CorruptionAccess {
    [[nodiscard]] static hafnium::Spm::Stats& stats(hafnium::Spm& spm) {
        return spm.stats_;
    }

    /// Exploit primitive for the adversarial suite (src/workloads/attack.*):
    /// splice a writable stage-2 window onto an arbitrary physical frame
    /// directly after `attacker`'s RAM, so its address space continues
    /// seamlessly into the target — the post-exploitation state every ported
    /// attack shape starts from (an over-read walks off the end of a legit
    /// buffer straight into the window; overwrites land through it). Returns
    /// the window's IPA. Throws if the attacker VM is destroyed.
    static arch::IpaAddr map_rogue_window(hafnium::Spm& spm,
                                          arch::VmId attacker,
                                          arch::PhysAddr target_pa,
                                          std::uint64_t pages = 1);
};

enum class CorruptionKind : std::uint8_t {
    kRogueStage2Map,    ///< map the primary's RAM writable into a secondary
    kForgedTransition,  ///< drive a VCPU through an illegal state change
    kStrayVgicPending,  ///< pend a virq id the GIC never distributes
    kSkewedStats,       ///< bump an exit counter without a matching exit
    kWorldMismatch,     ///< stage-2 NS attribute contradicting the frame world
};

[[nodiscard]] const char* to_string(CorruptionKind k);

/// Apply the corruption to a booted SPM and return the Rule the auditor is
/// expected to flag. kForgedTransition reports through the transition hook
/// immediately (throwing CheckViolation under a strict auditor); the others
/// surface on the next scan. Throws std::runtime_error when the topology
/// lacks a target (e.g. no secondary VM).
Rule inject_corruption(hafnium::Spm& spm, CorruptionKind kind);

}  // namespace hpcsec::check
