#include "cluster/scale_model.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace hpcsec::cluster {

NodeTrace trace_from_step_times(const std::vector<sim::SimTime>& times,
                                sim::SimTime start) {
    NodeTrace t;
    sim::SimTime prev = start;
    for (const sim::SimTime ts : times) {
        t.step_cycles.push_back(ts - prev);
        prev = ts;
    }
    return t;
}

double InterconnectModel::allreduce_us(int nodes) const {
    if (nodes <= 1) return 0.0;
    const int rounds = std::bit_width(static_cast<unsigned>(nodes - 1));
    const double wire_us =
        bytes_per_allreduce * 8.0 / (bandwidth_gbps * 1e3);  // bytes over Gbit/s
    return rounds * (latency_us + wire_us);
}

ScaleModel::ScaleModel(std::vector<NodeTrace> traces, sim::ClockSpec clock,
                       InterconnectModel net)
    : traces_(std::move(traces)), clock_(clock), net_(net) {
    if (traces_.empty()) throw std::invalid_argument("ScaleModel: no traces");
    nsteps_ = traces_[0].step_cycles.size();
    for (const auto& t : traces_) {
        if (t.step_cycles.size() != nsteps_) {
            throw std::invalid_argument("ScaleModel: trace step counts differ");
        }
    }
    if (nsteps_ == 0) throw std::invalid_argument("ScaleModel: empty traces");

    // Pool every observed step duration across traces AND steps: BSP steps
    // of one workload are statistically homogeneous here, and the combined
    // pool (traces x steps samples) gives the noise distribution a real
    // tail for the max() to find. ideal = the fastest observed step.
    pool_.assign(1, {});
    ideal_step_ = ~sim::Cycles{0};
    for (const auto& t : traces_) {
        for (const auto c : t.step_cycles) {
            pool_[0].push_back(c);
            ideal_step_ = std::min(ideal_step_, c);
        }
    }
}

ScaleResult ScaleModel::project(int nodes, std::uint64_t seed) const {
    if (nodes <= 0) throw std::invalid_argument("ScaleModel::project: nodes >= 1");
    sim::Rng rng(seed ^ (static_cast<std::uint64_t>(nodes) << 32));
    const double allreduce_cycles =
        clock_.from_seconds(net_.allreduce_us(nodes) * 1e-6);

    const auto& samples = pool_[0];
    double total_cycles = 0.0;
    for (std::size_t s = 0; s < nsteps_; ++s) {
        sim::Cycles slowest = 0;
        for (int n = 0; n < nodes; ++n) {
            // Each node's step duration is an independent draw from the
            // pooled noise distribution.
            const sim::Cycles draw = samples[rng.next_below(samples.size())];
            slowest = std::max(slowest, draw);
        }
        total_cycles += static_cast<double>(slowest) + allreduce_cycles;
    }

    ScaleResult r;
    r.nodes = nodes;
    r.total_us = clock_.to_micros(static_cast<sim::SimTime>(total_cycles));
    r.mean_step_us = r.total_us / static_cast<double>(nsteps_);
    // Efficiency against the *noise- and network-free* ideal: both OS noise
    // and interconnect time count as parallelization overhead.
    const double ideal_total =
        static_cast<double>(ideal_step_) * static_cast<double>(nsteps_);
    r.efficiency = ideal_total / total_cycles;
    return r;
}

std::vector<ScaleResult> ScaleModel::sweep(const std::vector<int>& node_counts,
                                           int trials, std::uint64_t seed) const {
    std::vector<ScaleResult> out;
    for (const int n : node_counts) {
        ScaleResult acc;
        acc.nodes = n;
        for (int t = 0; t < trials; ++t) {
            const ScaleResult r =
                project(n, seed + 977ull * static_cast<std::uint64_t>(t));
            acc.mean_step_us += r.mean_step_us / trials;
            acc.total_us += r.total_us / trials;
            acc.efficiency += r.efficiency / trials;
        }
        out.push_back(acc);
    }
    return out;
}

}  // namespace hpcsec::cluster
