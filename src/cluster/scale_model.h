// Trace-based multi-node scale projection.
//
// Paper §VII: "we intend to not only study the scalability but also the
// performance isolation capabilities of our approach" on larger systems
// (the Astra ThunderX2 machine). One node is what we can simulate in
// detail; this module composes *measured single-node superstep traces*
// into an N-node BSP execution the standard way (Ferreira/Hoefler noise-
// amplification methodology):
//
//   step_time(N) = max over N nodes of (sampled per-node step duration)
//                  + allreduce_time(N)
//
// Node samples are drawn (deterministically, per seed) from a pool of
// detailed single-node runs with different seeds, so the projection
// inherits the full modeled noise distribution — including the heavy tail
// of the Linux-scheduled configuration that the max() amplifies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace hpcsec::cluster {

/// Durations (cycles) of each superstep on one simulated node.
struct NodeTrace {
    std::vector<sim::Cycles> step_cycles;

    [[nodiscard]] sim::Cycles total() const {
        sim::Cycles sum = 0;
        for (const auto c : step_cycles) sum += c;
        return sum;
    }
};

/// Extract a trace from barrier completion timestamps.
[[nodiscard]] NodeTrace trace_from_step_times(const std::vector<sim::SimTime>& times,
                                              sim::SimTime start);

struct InterconnectModel {
    double latency_us = 2.0;        ///< per-hop message latency
    double bytes_per_allreduce = 64;
    double bandwidth_gbps = 12.5;   ///< per-link

    /// Cost of a dissemination allreduce over `nodes` (ceil(log2 N) rounds).
    [[nodiscard]] double allreduce_us(int nodes) const;
};

struct ScaleResult {
    int nodes = 0;
    double mean_step_us = 0.0;
    double total_us = 0.0;
    double efficiency = 0.0;  ///< single-node-ideal time / projected time
};

class ScaleModel {
public:
    /// `traces` are detailed single-node runs of the SAME workload with
    /// different seeds (>= 1). `ideal_step_cycles` is the noise-free step
    /// duration used as the efficiency baseline (typically the min observed).
    ScaleModel(std::vector<NodeTrace> traces, sim::ClockSpec clock,
               InterconnectModel net = {});

    /// Project an N-node run: for every superstep, each node's duration is
    /// an independent draw from the pooled per-step samples; the step
    /// completes at the slowest node plus the allreduce.
    [[nodiscard]] ScaleResult project(int nodes, std::uint64_t seed) const;

    /// Sweep of node counts (each point averaged over `trials` seeds).
    [[nodiscard]] std::vector<ScaleResult> sweep(const std::vector<int>& node_counts,
                                                 int trials,
                                                 std::uint64_t seed) const;

    [[nodiscard]] sim::Cycles ideal_step_cycles() const { return ideal_step_; }
    [[nodiscard]] std::size_t steps() const { return nsteps_; }

private:
    std::vector<NodeTrace> traces_;
    sim::ClockSpec clock_;
    InterconnectModel net_;
    std::size_t nsteps_ = 0;
    sim::Cycles ideal_step_ = 0;
    // Pooled step-duration samples (all traces x all steps; BSP steps of a
    // workload are statistically homogeneous, and pooling gives the noise
    // distribution a real tail).
    std::vector<std::vector<sim::Cycles>> pool_;
};

}  // namespace hpcsec::cluster
