#include "cluster/trace_collect.h"

#include "core/harness.h"

namespace hpcsec::cluster {

std::vector<NodeTrace> collect_traces(core::SchedulerKind kind,
                                      const wl::WorkloadSpec& spec, int samples,
                                      std::uint64_t base_seed) {
    std::vector<NodeTrace> traces;
    traces.reserve(static_cast<std::size_t>(samples));
    for (int s = 0; s < samples; ++s) {
        core::Node node(core::Harness::default_config(
            kind, base_seed + 6151ull * static_cast<std::uint64_t>(s)));
        node.boot();
        wl::ParallelWorkload w(spec);
        const sim::SimTime start = node.platform().engine().now();
        (void)node.run_workload(w);
        traces.push_back(trace_from_step_times(w.step_completion_times(), start));
    }
    return traces;
}

}  // namespace hpcsec::cluster
