// Detailed-node trace collection for the scale model.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/scale_model.h"
#include "core/node.h"
#include "workloads/workload.h"

namespace hpcsec::cluster {

/// Run `samples` detailed single-node simulations of `spec` under the given
/// scheduler configuration (distinct seeds) and return one superstep trace
/// per run. The traces feed ScaleModel.
[[nodiscard]] std::vector<NodeTrace> collect_traces(core::SchedulerKind kind,
                                                    const wl::WorkloadSpec& spec,
                                                    int samples,
                                                    std::uint64_t base_seed);

}  // namespace hpcsec::cluster
