#include "core/attest.h"

namespace hpcsec::core {

AttestationChain::AttestationChain() {
    acc_.fill(0);  // PCR reset value
}

void AttestationChain::extend(const std::string& name,
                              std::span<const std::uint8_t> data) {
    extend_digest(name, crypto::Sha256::hash(data));
}

void AttestationChain::extend_digest(const std::string& name,
                                     const crypto::Digest& measurement) {
    crypto::Sha256 h;
    h.update(acc_);
    h.update(measurement);
    acc_ = h.finalize();
    log_.push_back({name, measurement});
}

crypto::Digest AttestationChain::replay(const std::vector<BootStage>& log) {
    crypto::Digest acc{};
    acc.fill(0);
    for (const auto& stage : log) {
        crypto::Sha256 h;
        h.update(acc);
        h.update(stage.measurement);
        acc = h.finalize();
    }
    return acc;
}

bool AttestationChain::replay_matches() const {
    return crypto::digest_equal(replay(log_), acc_);
}

std::optional<AttestationChain::Quote> AttestationChain::quote(
    crypto::LamportKeyPair& device_key, const crypto::Digest& nonce) const {
    crypto::Sha256 h;
    h.update(acc_);
    h.update(nonce);
    const crypto::Digest msg = h.finalize();
    auto sig = device_key.sign(msg);
    if (!sig) return std::nullopt;
    return Quote{acc_, nonce, *sig};
}

bool AttestationChain::verify_quote(const Quote& q,
                                    const crypto::Digest& expected_accumulator,
                                    const crypto::LamportPublicKey& pub) {
    if (!crypto::digest_equal(q.accumulator, expected_accumulator)) return false;
    crypto::Sha256 h;
    h.update(q.accumulator);
    h.update(q.nonce);
    return crypto::lamport_verify(pub, h.finalize(), q.signature);
}

}  // namespace hpcsec::core
