// Measured / trusted boot chain.
//
// TrustZone's verifiable boot chain is what anchors Hafnium's guarantees:
// "the security guarantees provided by Hafnium are dependent on the attested
// boot chain as well as the correctness of Hafnium itself". The chain is a
// PCR-style hash ledger: each boot stage extends the accumulator with the
// measurement of the next image before handing control to it. A quote is
// the accumulator signed with the device key (Lamport OTS).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/lamport.h"
#include "crypto/sha256.h"

namespace hpcsec::core {

struct BootStage {
    std::string name;
    crypto::Digest measurement;  ///< H(image)
};

class AttestationChain {
public:
    AttestationChain();

    /// Measure a boot stage: log H(data) and extend the accumulator with
    /// accumulator = H(accumulator || H(data)).
    void extend(const std::string& name, std::span<const std::uint8_t> data);
    void extend_digest(const std::string& name, const crypto::Digest& measurement);

    [[nodiscard]] const std::vector<BootStage>& log() const { return log_; }
    [[nodiscard]] const crypto::Digest& accumulator() const { return acc_; }

    /// Recompute the accumulator from the event log; true iff it matches
    /// (the standard TPM-style log-vs-PCR check).
    [[nodiscard]] bool replay_matches() const;
    [[nodiscard]] static crypto::Digest replay(const std::vector<BootStage>& log);

    struct Quote {
        crypto::Digest accumulator;
        crypto::Digest nonce;
        crypto::LamportSignature signature;
    };

    /// Sign accumulator||nonce with a (one-time) device key.
    [[nodiscard]] std::optional<Quote> quote(crypto::LamportKeyPair& device_key,
                                             const crypto::Digest& nonce) const;

    /// Verifier side: check a quote against an expected accumulator value
    /// and the device public key.
    [[nodiscard]] static bool verify_quote(const Quote& q,
                                           const crypto::Digest& expected_accumulator,
                                           const crypto::LamportPublicKey& pub);

private:
    crypto::Digest acc_{};
    std::vector<BootStage> log_;
};

}  // namespace hpcsec::core
