#include "core/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/parallel.h"
#include "obs/report.h"
#include "sim/rng.h"

namespace hpcsec::core {

Harness::Harness(Options options) : options_(std::move(options)) {
    if (!options_.config_factory) {
        options_.config_factory = [](SchedulerKind kind, std::uint64_t seed) {
            return default_config(kind, seed);
        };
    }
}

NodeConfig Harness::default_config(SchedulerKind kind, std::uint64_t seed) {
    NodeConfig cfg;
    cfg.platform = arch::PlatformConfig::pine_a64();
    cfg.scheduler = kind;
    cfg.seed = seed;
    return cfg;
}

TrialResult Harness::run_trial(SchedulerKind kind, const wl::WorkloadSpec& spec,
                               std::uint64_t seed) {
    return run_trial_impl(kind, spec, seed, nullptr);
}

// callback_mutex is non-null on pooled workers: everything user-provided
// (config_factory, pre_trial, post_trial, attachment destruction) runs
// mutually exclusive so existing single-threaded rigging keeps working.
// The trial body itself — one private Node — runs lock-free.
TrialResult Harness::run_trial_impl(SchedulerKind kind,
                                    const wl::WorkloadSpec& spec,
                                    std::uint64_t seed,
                                    std::mutex* callback_mutex) {
    auto locked = [callback_mutex] {
        return callback_mutex != nullptr ? std::unique_lock<std::mutex>(*callback_mutex)
                                         : std::unique_lock<std::mutex>();
    };
    NodeConfig cfg;
    {
        auto lock = locked();
        cfg = options_.config_factory(kind, seed);
    }
    cfg.platform.obs_mask |= options_.obs_mask;
    if (options_.isa) cfg.platform.isa = *options_.isa;
    if (options_.check_mode != check::Mode::kOff) {
        cfg.check_mode = options_.check_mode;
        cfg.check_period = options_.check_period;
    }
    Node node(std::move(cfg));
    // Declared after node so it is torn down first even when a trial throws.
    std::shared_ptr<void> attachment;
    node.boot();
    if (options_.pre_trial) {
        auto lock = locked();
        attachment = options_.pre_trial(kind, seed, node);
    }
    wl::ParallelWorkload workload(spec);
    const double seconds = node.run_workload(workload, options_.timeout_s);
    TrialResult r;
    r.seconds = seconds;
    r.score = workload.score(seconds);
    if (options_.measurement_noise && spec.measurement_noise_sigma > 0.0) {
        sim::Rng rng(seed ^ 0x5eedf00dULL);
        r.score *= 1.0 + spec.measurement_noise_sigma * rng.normal(0.0, 1.0);
    }
    if (check::Auditor* auditor = node.auditor()) {
        auditor->validate();  // end-of-trial sweep (throws under strict)
        r.check_failures = auditor->failures().size();
        r.check_report = auditor->report();
    }
    r.metrics = node.publish_metrics();
    {
        auto lock = locked();
        if (options_.post_trial) options_.post_trial(kind, seed, node);
        attachment.reset();
    }
    return r;
}

int Harness::effective_jobs(std::size_t tasks) const {
    int jobs = options_.jobs;
    if (jobs <= 0) jobs = ThreadPool::default_jobs();
    return static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs), tasks));
}

std::vector<TrialResult> Harness::run_trials(
    SchedulerKind kind, const wl::WorkloadSpec& spec,
    const std::vector<std::uint64_t>& seeds) {
    std::vector<TrialResult> results(seeds.size());
    const int jobs = effective_jobs(seeds.size());
    if (jobs <= 1) {
        for (std::size_t i = 0; i < seeds.size(); ++i) {
            results[i] = run_trial_impl(kind, spec, seeds[i], nullptr);
        }
        return results;
    }
    std::mutex callback_mutex;
    ThreadPool pool(jobs);
    parallel_for_indexed(pool, seeds.size(), [&](std::size_t i) {
        results[i] = run_trial_impl(kind, spec, seeds[i], &callback_mutex);
    });
    return results;
}

ExperimentRow Harness::run_row(const wl::WorkloadSpec& spec) {
    return run_rows({spec}).front();
}

std::vector<ExperimentRow> Harness::run_rows(
    const std::vector<wl::WorkloadSpec>& specs) {
    const std::size_t ntasks =
        specs.size() * kAllConfigs.size() * static_cast<std::size_t>(options_.trials);
    const int jobs = effective_jobs(ntasks);
    if (jobs > 1) return run_rows_parallel(specs, jobs);

    std::vector<ExperimentRow> rows;
    rows.reserve(specs.size());
    for (const auto& spec : specs) {
        ExperimentRow row;
        row.workload = spec.name;
        row.metric = spec.metric;
        if (options_.obs_window > 0) {
            for (auto& agg : row.metrics) {
                agg.set_window(static_cast<std::size_t>(options_.obs_window));
            }
        }
        for (std::size_t c = 0; c < kAllConfigs.size(); ++c) {
            sim::RunningStats stats;
            for (int t = 0; t < options_.trials; ++t) {
                const TrialResult r =
                    run_trial_impl(kAllConfigs[c], spec, trial_seed(c, t), nullptr);
                stats.add(r.score);
                row.metrics[c].add(r.metrics);
            }
            row.cells[c] = {stats.mean(), stats.stddev(),
                            static_cast<int>(stats.count())};
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

// The full specs x configs x trials cross-product fans out as one flat task
// list; results merge *eagerly* in exactly the serial loop's order — a
// cursor under the merge mutex folds every completed prefix task into the
// row aggregates and drops its snapshot immediately. Every RunningStats/
// MetricsAggregate sees the same sequence of adds as jobs=1 (bit-identical
// output), and snapshot memory stays bounded by the out-of-order window
// (~O(jobs)) instead of O(specs x configs x trials).
std::vector<ExperimentRow> Harness::run_rows_parallel(
    const std::vector<wl::WorkloadSpec>& specs, int jobs) {
    std::vector<RowTask> tasks;
    for (std::size_t r = 0; r < specs.size(); ++r) {
        for (std::size_t c = 0; c < kAllConfigs.size(); ++c) {
            for (int t = 0; t < options_.trials; ++t) tasks.push_back({r, c, t});
        }
    }

    std::vector<ExperimentRow> rows(specs.size());
    std::vector<sim::RunningStats> cell_stats(specs.size() * kAllConfigs.size());
    for (std::size_t r = 0; r < specs.size(); ++r) {
        rows[r].workload = specs[r].name;
        rows[r].metric = specs[r].metric;
        if (options_.obs_window > 0) {
            for (auto& agg : rows[r].metrics) {
                agg.set_window(static_cast<std::size_t>(options_.obs_window));
            }
        }
    }

    std::vector<TrialResult> results(tasks.size());
    std::vector<char> done(tasks.size(), 0);
    std::size_t merged = 0;
    std::mutex merge_mutex;
    std::mutex callback_mutex;
    {
        ThreadPool pool(jobs);
        parallel_for_indexed(pool, tasks.size(), [&](std::size_t i) {
            const RowTask& task = tasks[i];
            results[i] = run_trial_impl(kAllConfigs[task.config], specs[task.row],
                                        trial_seed(task.config, task.trial),
                                        &callback_mutex);
            std::lock_guard<std::mutex> lock(merge_mutex);
            done[i] = 1;
            while (merged < tasks.size() && done[merged] != 0) {
                const RowTask& m = tasks[merged];
                TrialResult& res = results[merged];
                cell_stats[m.row * kAllConfigs.size() + m.config].add(res.score);
                rows[m.row].metrics[m.config].add(res.metrics);
                res = TrialResult{};  // free the snapshot now, not at the end
                ++merged;
            }
        });
    }

    for (std::size_t r = 0; r < specs.size(); ++r) {
        for (std::size_t c = 0; c < kAllConfigs.size(); ++c) {
            const sim::RunningStats& stats = cell_stats[r * kAllConfigs.size() + c];
            rows[r].cells[c] = {stats.mean(), stats.stddev(),
                                static_cast<int>(stats.count())};
        }
    }
    return rows;
}

namespace {
std::string fmt(double v) {
    char buf[64];
    if (v != 0.0 && (std::fabs(v) < 1e-2 || std::fabs(v) >= 1e5)) {
        std::snprintf(buf, sizeof(buf), "%.3e", v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.4g", v);
    }
    return buf;
}
}  // namespace

std::string Harness::format_raw(const std::vector<ExperimentRow>& rows) {
    std::ostringstream os;
    os << "config  ";
    for (const auto& row : rows) {
        os << "| " << row.workload << " (" << row.metric << ") mean/stdev ";
    }
    os << "\n";
    static constexpr const char* kNames[3] = {"Native", "Kitten", "Linux"};
    for (std::size_t c = 0; c < 3; ++c) {
        os << kNames[c] << "  ";
        for (const auto& row : rows) {
            os << "| " << fmt(row.cells[c].mean) << " / " << fmt(row.cells[c].stdev)
               << " ";
        }
        os << "\n";
    }
    return os.str();
}

std::string Harness::format_normalized(const std::vector<ExperimentRow>& rows) {
    std::ostringstream os;
    os << "normalized to Native (1.0):\n";
    static constexpr const char* kNames[3] = {"Native", "Kitten", "Linux"};
    os << "config  ";
    for (const auto& row : rows) os << "| " << row.workload << " ";
    os << "\n";
    for (std::size_t c = 0; c < 3; ++c) {
        os << kNames[c] << "  ";
        for (const auto& row : rows) {
            const double base = row.cells[0].mean;
            os << "| " << fmt(base != 0.0 ? row.cells[c].mean / base : 0.0) << " ";
        }
        os << "\n";
    }
    return os.str();
}

std::string Harness::format_metrics_json(const std::vector<ExperimentRow>& rows) {
    static constexpr const char* kNames[3] = {"Native", "Kitten", "Linux"};
    std::ostringstream os;
    os << "{\"rows\":[\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (r != 0) os << ",\n";
        os << " {\"workload\":\"" << rows[r].workload << "\",\"metric\":\""
           << rows[r].metric << "\",\"configs\":[";
        for (std::size_t c = 0; c < 3; ++c) {
            if (c != 0) os << ",";
            os << "\n  {\"config\":\"" << kNames[c] << "\",\"data\":";
            rows[r].metrics[c].write_json(os);
            os << "}";
        }
        os << "]}";
    }
    os << "\n]}\n";
    return os.str();
}

bool Harness::write_bench_report(const std::string& bench,
                                 const std::vector<ExperimentRow>& rows) {
    obs::BenchReport report(bench);
    static constexpr const char* kNames[3] = {"native", "kitten", "linux"};
    for (const auto& row : rows) {
        for (std::size_t c = 0; c < 3; ++c) {
            report.add(row.workload + "." + kNames[c], row.cells[c].mean,
                       row.cells[c].stdev, static_cast<std::size_t>(row.cells[c].n));
        }
    }
    return report.write_default();
}

// ---------------------------------------------------------------------------
// Selfish
// ---------------------------------------------------------------------------

SelfishSeries run_selfish_experiment(SchedulerKind kind, double seconds,
                                     std::uint64_t seed, const NodeConfig* base) {
    NodeConfig cfg = base != nullptr ? *base : Harness::default_config(kind, seed);
    cfg.scheduler = kind;
    cfg.seed = seed;
    Node node(cfg);
    node.boot();

    wl::SelfishBenchmark selfish(node.platform().ncores(),
                                 node.platform().engine().clock());
    selfish.attach_obs(node.platform().obs());
    node.run_selfish(selfish, seconds);

    SelfishSeries out;
    out.config = kind;
    out.duration_s = seconds;
    out.ncores = node.platform().ncores();
    out.detours = selfish.recorder(0).detours();
    for (int t = 0; t < selfish.nthreads(); ++t) {
        out.detours_all_cores += selfish.recorder(t).detours().size();
        out.total_detour_us_all += selfish.recorder(t).total_detour_us();
        out.max_detour_us = std::max(out.max_detour_us, selfish.recorder(t).max_detour_us());
    }
    out.metrics = node.publish_metrics();
    out.events = node.platform().recorder().events();
    return out;
}

std::vector<SelfishSeries> run_selfish_experiments(
    const std::vector<SelfishJob>& runs, int jobs) {
    std::vector<SelfishSeries> out(runs.size());
    if (jobs <= 0) jobs = ThreadPool::default_jobs();
    jobs = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs), runs.size()));
    auto one = [&](std::size_t i) {
        const SelfishJob& job = runs[i];
        out[i] = run_selfish_experiment(job.kind, job.seconds, job.seed,
                                        job.config ? &*job.config : nullptr);
    };
    if (jobs <= 1) {
        for (std::size_t i = 0; i < runs.size(); ++i) one(i);
    } else {
        ThreadPool pool(jobs);
        parallel_for_indexed(pool, runs.size(), one);
    }
    return out;
}

std::string format_selfish(const SelfishSeries& series, std::size_t max_points) {
    std::ostringstream os;
    os << "config=" << to_string(series.config) << " duration=" << series.duration_s
       << "s detours(core0)=" << series.detours.size()
       << " detours(all)=" << series.detours_all_cores
       << " lost=" << fmt(series.total_detour_us_all) << "us"
       << " max=" << fmt(series.max_detour_us) << "us\n";
    os << "  t[s]      detour[us]\n";
    const std::size_t n = series.detours.size();
    const std::size_t stride = std::max<std::size_t>(1, n / max_points);
    for (std::size_t i = 0; i < n; i += stride) {
        const auto& d = series.detours[i];
        char buf[80];
        std::snprintf(buf, sizeof(buf), "  %8.3f  %10.2f\n", d.at_seconds,
                      d.duration_us);
        os << buf;
    }
    return os.str();
}

}  // namespace hpcsec::core
