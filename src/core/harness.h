// Experiment harness: regenerates the paper's tables and figures.
//
// Runs a workload spec across the three node configurations (Native /
// Kitten-scheduled / Linux-scheduled), multiple seeded trials each, and
// reports mean +/- stdev in the workload's metric — the structure of
// Figs. 7-10. Per-trial measurement noise (documented in DESIGN.md §5)
// models the run-to-run variation a real board exhibits (DRAM refresh,
// thermal/DVFS wiggle) that a deterministic simulator otherwise lacks;
// the paper's own stdevs size it.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "core/node.h"
#include "sim/stats.h"
#include "workloads/selfish.h"
#include "workloads/workload.h"

namespace hpcsec::core {

inline constexpr std::array<SchedulerKind, 3> kAllConfigs = {
    SchedulerKind::kNativeKitten, SchedulerKind::kKittenPrimary,
    SchedulerKind::kLinuxPrimary};

struct TrialResult {
    double seconds = 0.0;
    double score = 0.0;
};

struct CellStats {
    double mean = 0.0;
    double stdev = 0.0;
    int n = 0;
};

struct ExperimentRow {
    std::string workload;
    std::string metric;
    std::array<CellStats, 3> cells;  ///< Native, Kitten, Linux
};

class Harness {
public:
    struct Options {
        int trials = 10;
        double timeout_s = 600.0;
        std::uint64_t base_seed = 20210101;
        bool measurement_noise = true;
        /// Override node construction (ablations swap this out).
        std::function<NodeConfig(SchedulerKind, std::uint64_t seed)> config_factory;
    };

    Harness() : Harness(Options()) {}
    explicit Harness(Options options);

    /// Default paper-faithful node configuration.
    static NodeConfig default_config(SchedulerKind kind, std::uint64_t seed);

    TrialResult run_trial(SchedulerKind kind, const wl::WorkloadSpec& spec,
                          std::uint64_t seed);

    ExperimentRow run_row(const wl::WorkloadSpec& spec);
    std::vector<ExperimentRow> run_rows(const std::vector<wl::WorkloadSpec>& specs);

    // --- formatting (paper-shaped output) ------------------------------------
    static std::string format_raw(const std::vector<ExperimentRow>& rows);
    static std::string format_normalized(const std::vector<ExperimentRow>& rows);

    [[nodiscard]] const Options& options() const { return options_; }

private:
    Options options_;
};

// --- selfish-detour experiment (Figs. 4-6) ----------------------------------

struct SelfishSeries {
    SchedulerKind config;
    double duration_s = 0.0;
    std::vector<wl::Detour> detours;   ///< thread 0 (the plotted core)
    std::uint64_t detours_all_cores = 0;
    double total_detour_us_all = 0.0;
    double max_detour_us = 0.0;
};

SelfishSeries run_selfish_experiment(SchedulerKind kind, double seconds,
                                     std::uint64_t seed,
                                     const NodeConfig* base = nullptr);

/// Scatter-style text rendering (time vs detour length) plus summary.
std::string format_selfish(const SelfishSeries& series, std::size_t max_points = 40);

}  // namespace hpcsec::core
