// Experiment harness: regenerates the paper's tables and figures.
//
// Runs a workload spec across the three node configurations (Native /
// Kitten-scheduled / Linux-scheduled), multiple seeded trials each, and
// reports mean +/- stdev in the workload's metric — the structure of
// Figs. 7-10. Per-trial measurement noise (documented in DESIGN.md §5)
// models the run-to-run variation a real board exhibits (DRAM refresh,
// thermal/DVFS wiggle) that a deterministic simulator otherwise lacks;
// the paper's own stdevs size it.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/node.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "sim/stats.h"
#include "workloads/selfish.h"
#include "workloads/workload.h"

namespace hpcsec::core {

inline constexpr std::array<SchedulerKind, 3> kAllConfigs = {
    SchedulerKind::kNativeKitten, SchedulerKind::kKittenPrimary,
    SchedulerKind::kLinuxPrimary};

struct TrialResult {
    double seconds = 0.0;
    double score = 0.0;
    obs::MetricsSnapshot metrics;  ///< per-trial metrics (Node::publish_metrics)
    std::size_t check_failures = 0;  ///< auditor findings (0 when audit off)
    std::string check_report;        ///< formatted findings ("" when clean)
};

struct CellStats {
    double mean = 0.0;
    double stdev = 0.0;
    int n = 0;
};

struct ExperimentRow {
    std::string workload;
    std::string metric;
    std::array<CellStats, 3> cells;  ///< Native, Kitten, Linux
    /// Per-config metrics aggregated across the row's trials.
    std::array<obs::MetricsAggregate, 3> metrics;
};

class Harness {
public:
    struct Options {
        int trials = 10;
        double timeout_s = 600.0;
        std::uint64_t base_seed = 20210101;
        bool measurement_noise = true;
        /// Worker threads for fanning trials out in run_trials/run_row/
        /// run_rows. 1 = the legacy serial path (no pool, no locks);
        /// 0 = one worker per hardware thread. Each trial owns a private
        /// Node, and results are merged in trial order, so aggregate output
        /// is bit-identical for every jobs value. config_factory must be
        /// thread-safe when jobs != 1; pre_trial/post_trial (and attachment
        /// destruction) are serialized under a harness mutex.
        int jobs = 1;
        /// Structured-recorder categories to enable on every trial node
        /// (obs::Category bits, OR-ed into the platform config).
        std::uint32_t obs_mask = 0;
        /// Force every trial node onto this ISA backend (applied after
        /// config_factory, like obs_mask). Unset = keep whatever the
        /// factory's platform preset chose (ARM for all built-in presets).
        std::optional<arch::Isa> isa;
        /// Close a windowed aggregate snapshot every N trials in each row
        /// cell (obs::MetricsAggregate::set_window). 0 = totals only.
        /// Windows follow merge order — trial order within the cell — so
        /// windowed output stays bit-identical for every jobs value.
        int obs_window = 0;
        /// Invariant auditing on every trial node (hypervisor configs only;
        /// the native baseline has no SPM to audit). A trial ends with a
        /// final full validate() so sampled mode can't miss late damage.
        check::Mode check_mode = check::Mode::kOff;
        int check_period = 64;
        /// Override node construction (ablations swap this out).
        std::function<NodeConfig(SchedulerKind, std::uint64_t seed)> config_factory;
        /// Invoked after each trial, before the node is destroyed (trace
        /// harvesting, extra assertions).
        std::function<void(SchedulerKind, std::uint64_t seed, Node&)> post_trial;
        /// Invoked after boot, before the workload runs. The returned
        /// attachment lives for the rest of the trial and is destroyed
        /// before the node — rigging for per-trial machinery that watches
        /// the node (e.g. a resil::Supervisor + ChaosInjector).
        std::function<std::shared_ptr<void>(SchedulerKind, std::uint64_t seed,
                                            Node&)>
            pre_trial;
    };

    Harness() : Harness(Options()) {}
    explicit Harness(Options options);

    /// Default paper-faithful node configuration.
    static NodeConfig default_config(SchedulerKind kind, std::uint64_t seed);

    TrialResult run_trial(SchedulerKind kind, const wl::WorkloadSpec& spec,
                          std::uint64_t seed);

    /// Run one seeded trial per entry of `seeds`, fanned across
    /// Options::jobs worker threads. Results come back in seed order.
    std::vector<TrialResult> run_trials(SchedulerKind kind,
                                        const wl::WorkloadSpec& spec,
                                        const std::vector<std::uint64_t>& seeds);

    ExperimentRow run_row(const wl::WorkloadSpec& spec);
    std::vector<ExperimentRow> run_rows(const std::vector<wl::WorkloadSpec>& specs);

    /// The seed for trial `t` of config cell `c` (the row fan-out order).
    [[nodiscard]] std::uint64_t trial_seed(std::size_t c, int t) const {
        return options_.base_seed + 7919ull * static_cast<std::uint64_t>(t) +
               131ull * c;
    }

    // --- formatting (paper-shaped output) ------------------------------------
    static std::string format_raw(const std::vector<ExperimentRow>& rows);
    static std::string format_normalized(const std::vector<ExperimentRow>& rows);
    /// Per-row, per-config aggregated metrics as JSON (for --metrics-out).
    static std::string format_metrics_json(const std::vector<ExperimentRow>& rows);
    /// Flatten rows into BENCH_<bench>.json (one entry per workload/config
    /// cell) via obs::BenchReport. Returns false when the file can't open.
    static bool write_bench_report(const std::string& bench,
                                   const std::vector<ExperimentRow>& rows);

    [[nodiscard]] const Options& options() const { return options_; }

private:
    struct RowTask {
        std::size_t row;
        std::size_t config;
        int trial;
    };

    TrialResult run_trial_impl(SchedulerKind kind, const wl::WorkloadSpec& spec,
                               std::uint64_t seed, std::mutex* callback_mutex);
    std::vector<ExperimentRow> run_rows_parallel(
        const std::vector<wl::WorkloadSpec>& specs, int jobs);

    [[nodiscard]] int effective_jobs(std::size_t tasks) const;

    Options options_;
};

// --- selfish-detour experiment (Figs. 4-6) ----------------------------------

struct SelfishSeries {
    SchedulerKind config;
    double duration_s = 0.0;
    std::vector<wl::Detour> detours;   ///< thread 0 (the plotted core)
    std::uint64_t detours_all_cores = 0;
    double total_detour_us_all = 0.0;
    double max_detour_us = 0.0;
    int ncores = 0;
    obs::MetricsSnapshot metrics;      ///< end-of-run metrics snapshot
    std::vector<obs::Event> events;    ///< structured events (per obs_mask)
};

SelfishSeries run_selfish_experiment(SchedulerKind kind, double seconds,
                                     std::uint64_t seed,
                                     const NodeConfig* base = nullptr);

/// One selfish-detour run for the parallel fan-out below.
struct SelfishJob {
    SchedulerKind kind = SchedulerKind::kNativeKitten;
    double seconds = 0.0;
    std::uint64_t seed = 0;
    std::optional<NodeConfig> config;  ///< overrides default_config when set
};

/// Run each job on its own worker thread (jobs semantics as in
/// Harness::Options::jobs). Each run owns a private Node; results come back
/// in job order, bit-identical to calling run_selfish_experiment serially.
std::vector<SelfishSeries> run_selfish_experiments(
    const std::vector<SelfishJob>& runs, int jobs);

/// Scatter-style text rendering (time vs detour length) plus summary.
std::string format_selfish(const SelfishSeries& series, std::size_t max_points = 40);

}  // namespace hpcsec::core
