#include "core/jobproto.h"

#include "crypto/sha256.h"

namespace hpcsec::core {

std::vector<std::uint64_t> encode(const JobCommand& cmd) {
    return {kJobMagic, static_cast<std::uint64_t>(cmd.op), cmd.vm, cmd.vcpu,
            cmd.arg, cmd.tag};
}

std::optional<JobCommand> decode_command(const std::vector<std::uint64_t>& words) {
    if (words.size() < 6 || words[0] != kJobMagic) return std::nullopt;
    if (words[1] < 1 || words[1] > 7) return std::nullopt;
    JobCommand cmd;
    cmd.op = static_cast<JobOp>(words[1]);
    cmd.vm = words[2];
    cmd.vcpu = words[3];
    cmd.arg = words[4];
    cmd.tag = words[5];
    return cmd;
}

std::vector<std::uint64_t> encode(const JobReply& reply) {
    return {kReplyMagic, reply.tag, static_cast<std::uint64_t>(reply.status),
            reply.value};
}

std::optional<JobReply> decode_reply(const std::vector<std::uint64_t>& words) {
    if (words.size() < 4 || words[0] != kReplyMagic) return std::nullopt;
    JobReply r;
    r.tag = words[1];
    r.status = static_cast<std::int64_t>(words[2]);
    r.value = words[3];
    return r;
}

ChannelKey derive_channel_key(std::span<const std::uint8_t> secret,
                              std::string_view label) {
    ChannelKey key;
    const std::vector<std::uint8_t> msg(label.begin(), label.end());
    key.bytes = crypto::hmac_sha256(secret, msg);
    return key;
}

namespace {
std::array<std::uint64_t, 4> frame_mac(const std::vector<std::uint64_t>& payload,
                                       std::uint64_t counter,
                                       const ChannelKey& key) {
    std::vector<std::uint8_t> bytes;
    bytes.reserve((payload.size() + 1) * 8);
    const auto push_word = [&bytes](std::uint64_t w) {
        for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    };
    for (const std::uint64_t w : payload) push_word(w);
    push_word(counter);
    const crypto::Digest d = crypto::hmac_sha256(key.bytes, bytes);
    std::array<std::uint64_t, 4> mac{};
    for (int i = 0; i < 4; ++i) {
        std::uint64_t w = 0;
        for (int b = 0; b < 8; ++b) {
            w |= static_cast<std::uint64_t>(d[static_cast<std::size_t>(i * 8 + b)])
                 << (8 * b);
        }
        mac[static_cast<std::size_t>(i)] = w;
    }
    return mac;
}
}  // namespace

std::vector<std::uint64_t> seal(std::vector<std::uint64_t> frame,
                                const ChannelKey& key, std::uint64_t counter) {
    const auto mac = frame_mac(frame, counter, key);
    frame.push_back(counter);
    frame.insert(frame.end(), mac.begin(), mac.end());
    return frame;
}

std::optional<std::vector<std::uint64_t>> unseal(
    const std::vector<std::uint64_t>& sealed, const ChannelKey& key,
    std::uint64_t& last_counter) {
    if (sealed.size() < 5) return std::nullopt;  // counter + 4 MAC words minimum
    const std::size_t payload_len = sealed.size() - 5;
    std::vector<std::uint64_t> payload(sealed.begin(),
                                       sealed.begin() + static_cast<long>(payload_len));
    const std::uint64_t counter = sealed[payload_len];
    if (counter <= last_counter) return std::nullopt;  // replay or reorder
    const auto expect = frame_mac(payload, counter, key);
    std::uint64_t diff = 0;
    for (int i = 0; i < 4; ++i) {
        diff |= expect[static_cast<std::size_t>(i)] ^
                sealed[payload_len + 1 + static_cast<std::size_t>(i)];
    }
    if (diff != 0) return std::nullopt;  // forged or corrupted
    last_counter = counter;
    return payload;
}

std::string to_string(JobOp op) {
    switch (op) {
        case JobOp::kLaunchVm: return "launch-vm";
        case JobOp::kStopVm: return "stop-vm";
        case JobOp::kMigrateVcpu: return "migrate-vcpu";
        case JobOp::kQueryVm: return "query-vm";
        case JobOp::kPing: return "ping";
        case JobOp::kCreateVm: return "create-vm";
        case JobOp::kDestroyVm: return "destroy-vm";
    }
    return "?";
}

}  // namespace hpcsec::core
