// Job-control wire protocol between the login (super-secondary) VM and the
// Kitten control task in the primary VM.
//
// Paper §III.b: "VM management is handled by a secure communication channel
// between the super-secondary and primary VMs allowing the super-secondary
// to issue commands to a control task executing in the Kitten VM instance."
// Messages travel through the Hafnium mailbox (one 4 KiB page), encoded as
// little 64-bit word frames.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hpcsec::core {

enum class JobOp : std::uint64_t {
    kLaunchVm = 1,
    kStopVm = 2,
    kMigrateVcpu = 3,
    kQueryVm = 4,
    kPing = 5,
    kCreateVm = 6,   ///< launch a pre-staged signed image (arg = stage index)
    kDestroyVm = 7,  ///< tear a dynamic partition down, reclaim its memory
};

struct JobCommand {
    JobOp op = JobOp::kPing;
    std::uint64_t vm = 0;
    std::uint64_t vcpu = 0;
    std::uint64_t arg = 0;   ///< e.g. target core for migrate
    std::uint64_t tag = 0;   ///< request id echoed in the reply
};

struct JobReply {
    std::uint64_t tag = 0;
    std::int64_t status = 0;     ///< 0 ok, negative error
    std::uint64_t value = 0;     ///< query payload
};

/// Synthesized login-side when no reply arrived within the retry policy —
/// the channel never hangs a caller forever.
inline constexpr std::int64_t kStatusTimeout = -110;

inline constexpr std::uint64_t kJobMagic = 0x004A4F4243545243ULL;   // "JOBCTRC"
inline constexpr std::uint64_t kReplyMagic = 0x004A4F4252504C59ULL; // "JOBRPLY"

/// Encode/decode to mailbox word frames. Decoding returns nullopt on a bad
/// magic or short frame (robustness against a malicious login VM).
[[nodiscard]] std::vector<std::uint64_t> encode(const JobCommand& cmd);
[[nodiscard]] std::optional<JobCommand> decode_command(
    const std::vector<std::uint64_t>& words);
[[nodiscard]] std::vector<std::uint64_t> encode(const JobReply& reply);
[[nodiscard]] std::optional<JobReply> decode_reply(
    const std::vector<std::uint64_t>& words);

// --- authenticated framing -----------------------------------------------------
// The paper calls the link a *secure* communication channel. On top of the
// hypervisor-mediated mailbox (which already provides isolation), the
// authenticated framing adds integrity and replay protection: every frame
// carries a monotonically increasing counter and an HMAC-SHA256 tag over
// the payload+counter, keyed with a session key derived at boot (from the
// attestation accumulator).

struct ChannelKey {
    std::array<std::uint8_t, 32> bytes{};
};

/// Derive a direction-specific session key from boot-time secret material.
[[nodiscard]] ChannelKey derive_channel_key(std::span<const std::uint8_t> secret,
                                            std::string_view label);

/// Append counter + 4 MAC words to an encoded frame.
[[nodiscard]] std::vector<std::uint64_t> seal(std::vector<std::uint64_t> frame,
                                              const ChannelKey& key,
                                              std::uint64_t counter);

/// Verify MAC and counter monotonicity (counter must be > last_counter).
/// On success, updates last_counter and returns the payload words.
[[nodiscard]] std::optional<std::vector<std::uint64_t>> unseal(
    const std::vector<std::uint64_t>& sealed, const ChannelKey& key,
    std::uint64_t& last_counter);

[[nodiscard]] std::string to_string(JobOp op);

}  // namespace hpcsec::core
