#include "core/jobs.h"

#include <stdexcept>

namespace hpcsec::core {

void ControlTaskCtx::enqueue(JobCommand cmd) {
    // sca-suppress(hot-path-alloc): job-control commands are control-plane
    // operations (launch/destroy), not the per-event dispatch path.
    inbox_.push_back(cmd);
    if (remaining_ <= 0.0) remaining_ = budget_;
}

void ControlTaskCtx::advance(double units, sim::SimTime /*now*/) {
    if (units < remaining_) {
        remaining_ -= units;
        return;
    }
    remaining_ = 0.0;
    if (inbox_.empty()) return;
    const JobCommand cmd = inbox_.front();
    inbox_.pop_front();
    ++processed_;
    if (handler) handler(cmd);
    if (!inbox_.empty()) remaining_ = budget_;
}

JobControl::JobControl(Node& node) : node_(&node) {
    if (!node.booted() || node.spm() == nullptr || node.kitten() == nullptr ||
        !node.kitten()->is_primary_vm() || node.login_vm() == nullptr) {
        throw std::logic_error(
            "JobControl: needs a booted Kitten-primary node with a login VM");
    }
    hafnium::Spm& spm = *node.spm();
    kitten::KittenKernel& kernel = *node.kitten();

    // Mailbox pages. The primary allocates from its kernel heap (buddy);
    // the login VM uses a fixed window in its own IPA space.
    const auto send_off = kernel.kmem().alloc(arch::kPageSize);
    const auto recv_off = kernel.kmem().alloc(arch::kPageSize);
    if (!send_off || !recv_off) throw std::runtime_error("JobControl: kmem exhausted");
    // Mailboxes live inside each VM's own RAM window (the primary and the
    // login VM are identity-mapped, so offsets are relative to ipa_base).
    constexpr arch::IpaAddr kHeapOffset = 0x20'0000;
    const arch::IpaAddr primary_base = spm.primary_vm().ipa_base;
    const arch::IpaAddr login_base = node.login_vm()->ipa_base;
    primary_send_ = primary_base + kHeapOffset + *send_off;
    primary_recv_ = primary_base + kHeapOffset + *recv_off;
    login_send_ = login_base + 0x1000;
    login_recv_ = login_base + 0x2000;

    const arch::VmId primary_id = arch::kPrimaryVmId;
    const arch::VmId login_id = node.login_vm()->id();
    auto check = [](const hafnium::HfResult& r, const char* what) {
        if (!r.ok()) throw std::runtime_error(std::string("JobControl: ") + what);
    };
    check(hf::vm_configure(spm, 0, primary_id, primary_send_, primary_recv_),
          "primary mailbox configure failed");
    check(hf::vm_configure(spm, 0, login_id, login_send_, login_recv_),
          "login mailbox configure failed");

    // Session keys for the authenticated channel, derived from the measured
    // boot state (both ends observe the same accumulator at provisioning).
    const crypto::Digest& acc = node.attestation().accumulator();
    cmd_key_ = derive_channel_key(acc, "hpcsec:jobctl:cmd");
    reply_key_ = derive_channel_key(acc, "hpcsec:jobctl:reply");

    // Control task on core 0 of the primary.
    ctl_.handler = [this](const JobCommand& cmd) { execute(cmd); };
    ctl_thread_ = &kernel.add_control_task(0, &ctl_, "control");

    // Message plumbing.
    kernel.message_hook = [this](arch::VmId from) { on_primary_message(from); };
    node.login_guest()->message_hook = [this] { on_login_message(); };
}

bool JobControl::try_send_words(arch::VmId from, arch::VmId to,
                                const std::vector<std::uint64_t>& words) {
    hafnium::Spm& spm = *node_->spm();
    const arch::IpaAddr send = from == arch::kPrimaryVmId ? primary_send_ : login_send_;
    for (std::size_t i = 0; i < words.size(); ++i) {
        if (!spm.vm_write64(from, send + i * 8, words[i])) {
            throw std::runtime_error("JobControl: send buffer write failed");
        }
    }
    return hf::msg_send(spm, 0, from, to,
                        static_cast<std::uint32_t>(words.size() * 8))
        .ok();
}

void JobControl::on_primary_message(arch::VmId from) {
    hafnium::Spm& spm = *node_->spm();
    hafnium::Vm& primary = spm.primary_vm();
    if (!primary.mailbox.recv_full) return;
    std::vector<std::uint64_t> words(primary.mailbox.recv_size / 8);
    for (std::size_t i = 0; i < words.size(); ++i) {
        spm.vm_read64(arch::kPrimaryVmId, primary_recv_ + i * 8, words[i]);
    }
    hf::rx_release(spm, 0, arch::kPrimaryVmId);
    (void)from;
    const auto payload = unseal(words, cmd_key_, cmd_recv_ctr_);
    if (!payload) {
        ++rejected_frames_;  // forged, corrupted, or replayed
        return;
    }
    if (const auto cmd = decode_command(*payload)) {
        ctl_.enqueue(*cmd);
        node_->kitten()->wake(*ctl_thread_);
    }
}

void JobControl::on_login_message() {
    hafnium::Spm& spm = *node_->spm();
    hafnium::Vm& login = *node_->login_vm();
    if (!login.mailbox.recv_full) return;
    std::vector<std::uint64_t> words(login.mailbox.recv_size / 8);
    for (std::size_t i = 0; i < words.size(); ++i) {
        spm.vm_read64(login.id(), login_recv_ + i * 8, words[i]);
    }
    hf::rx_release(spm, login.vcpu(0).assigned_core, login.id());
    const auto payload = unseal(words, reply_key_, reply_recv_ctr_);
    if (!payload) {
        ++rejected_frames_;
        return;
    }
    if (const auto reply = decode_reply(*payload)) {
        if (awaiting_tag_ != 0 && reply->tag == awaiting_tag_) {
            pending_reply_ = *reply;
        } else {
            // A reply for a request we already answered (retransmit raced
            // the original) or gave up on: suppress, don't clobber state.
            ++channel_stats_.duplicate_replies;
        }
    }
}

void JobControl::execute(const JobCommand& cmd) {
    if (const auto it = reply_cache_.find(cmd.tag); it != reply_cache_.end()) {
        // Duplicate command (a login-side retransmit whose original went
        // through): resend the recorded reply without re-executing, so
        // lifecycle operations stay idempotent under retry.
        ++channel_stats_.replayed_replies;
        queue_reply(it->second);
        return;
    }
    kitten::KittenKernel& kernel = *node_->kitten();
    hafnium::Spm& spm = *node_->spm();
    JobReply reply;
    reply.tag = cmd.tag;
    switch (cmd.op) {
        case JobOp::kPing:
            reply.value = 0x706f6e67;  // "pong"
            break;
        case JobOp::kLaunchVm: {
            const auto id = static_cast<arch::VmId>(cmd.vm);
            if (id == 0 || id > static_cast<arch::VmId>(spm.vm_count())) {
                reply.status = -1;
                break;
            }
            kernel.launch_vm(id);
            break;
        }
        case JobOp::kStopVm: {
            const auto id = static_cast<arch::VmId>(cmd.vm);
            if (id == 0 || id > static_cast<arch::VmId>(spm.vm_count())) {
                reply.status = -1;
                break;
            }
            kernel.stop_vm(id);
            break;
        }
        case JobOp::kMigrateVcpu:
            reply.status = kernel.migrate_vcpu(static_cast<arch::VmId>(cmd.vm),
                                               static_cast<int>(cmd.vcpu),
                                               static_cast<arch::CoreId>(cmd.arg))
                               ? 0
                               : -1;
            break;
        case JobOp::kCreateVm: {
            // arg = staged-image index, vcpu = vcpu count, vm = mem MiB.
            const auto& staged = node_->staged_images();
            if (cmd.arg >= staged.size()) {
                reply.status = -1;
                break;
            }
            try {
                const std::uint64_t mem =
                    (cmd.vm != 0 ? cmd.vm : 64) << 20;  // MiB -> bytes
                const int vcpus = cmd.vcpu != 0 ? static_cast<int>(cmd.vcpu) : 1;
                reply.value = node_->launch_dynamic_vm(staged[cmd.arg], mem, vcpus);
            } catch (const std::exception&) {
                reply.status = -2;  // signature/resource failure
            }
            break;
        }
        case JobOp::kDestroyVm: {
            try {
                node_->destroy_dynamic_vm(static_cast<arch::VmId>(cmd.vm));
            } catch (const std::exception&) {
                reply.status = -1;
            }
            break;
        }
        case JobOp::kQueryVm: {
            const hafnium::HfResult r =
                hf::vm_get_info(spm, 0, arch::kPrimaryVmId, cmd.vm);
            reply.status = r.ok() ? 0 : -1;
            reply.value = static_cast<std::uint64_t>(r.value);
            break;
        }
    }
    constexpr std::size_t kReplyCacheSize = 32;
    reply_cache_[cmd.tag] = reply;
    reply_cache_order_.push_back(cmd.tag);
    while (reply_cache_order_.size() > kReplyCacheSize) {
        reply_cache_.erase(reply_cache_order_.front());
        reply_cache_order_.pop_front();
    }
    queue_reply(reply);
}

void JobControl::queue_reply(const JobReply& reply) {
    reply_outbox_.push_back(reply);
    flush_replies();
}

void JobControl::flush_replies() {
    while (!reply_outbox_.empty()) {
        // Seal at send time so every (re)attempt carries a fresh counter —
        // the login side only requires monotonicity, gaps are fine.
        if (!try_send_words(arch::kPrimaryVmId, node_->login_vm()->id(),
                            seal(encode(reply_outbox_.front()), reply_key_,
                                 ++reply_send_ctr_))) {
            // Login mailbox still holds an unconsumed frame: park the reply
            // and retry shortly instead of throwing inside an engine event.
            ++channel_stats_.deferred_replies;
            if (!flush_pending_) {
                flush_pending_ = true;
                auto& engine = node_->platform().engine();
                engine.at(engine.now() + engine.clock().from_millis(1.0),
                          [this] {
                              flush_pending_ = false;
                              flush_replies();
                          },
                          sim::kPrioKernel);
            }
            return;
        }
        reply_outbox_.pop_front();
    }
}

std::optional<JobReply> JobControl::request(const JobCommand& cmd_in,
                                            double timeout_s) {
    // Legacy single-shot semantics on top of the hardened path.
    const JobReply r =
        request_reliable(cmd_in, RetryPolicy{timeout_s, /*max_attempts=*/1});
    if (r.status == kStatusTimeout) return std::nullopt;
    return r;
}

JobReply JobControl::request_reliable(const JobCommand& cmd_in,
                                      const RetryPolicy& policy) {
    JobCommand cmd = cmd_in;
    cmd.tag = next_tag_++;
    pending_reply_.reset();
    awaiting_tag_ = cmd.tag;
    auto& engine = node_->platform().engine();

    for (int attempt = 0; attempt < std::max(1, policy.max_attempts); ++attempt) {
        if (attempt > 0) ++channel_stats_.retransmits;
        // Same tag every attempt (the control side's replay cache keeps
        // re-execution idempotent), fresh counter every frame. A busy
        // primary mailbox just means this attempt waits; the next one
        // retransmits.
        (void)try_send_words(node_->login_vm()->id(), arch::kPrimaryVmId,
                             seal(encode(cmd), cmd_key_, ++cmd_send_ctr_));
        const sim::SimTime deadline =
            engine.now() + engine.clock().from_seconds(policy.attempt_timeout_s);
        // Pump the simulation in slices until the reply lands.
        while (engine.now() < deadline) {
            if (pending_reply_ && pending_reply_->tag == cmd.tag) break;
            engine.run_until(std::min<sim::SimTime>(
                deadline, engine.now() + engine.clock().from_millis(10.0)));
        }
        if (pending_reply_ && pending_reply_->tag == cmd.tag) {
            awaiting_tag_ = 0;
            return *pending_reply_;
        }
    }
    awaiting_tag_ = 0;
    ++channel_stats_.timeouts;
    JobReply timed_out;
    timed_out.tag = cmd.tag;
    timed_out.status = kStatusTimeout;
    return timed_out;
}

}  // namespace hpcsec::core
