// Job control: login VM  <-- secure mailbox channel -->  Kitten control task.
//
// Paper §III.b / §IV.a: the Kitten primary runs a user-space control task
// responsible for VM lifecycle management; the Linux login environment
// issues job-control commands to it over a hypervisor-mediated channel.
// JobControl wires both ends onto an existing Node and exposes the
// login-side request API.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "arch/exec.h"
#include "core/jobproto.h"
#include "core/node.h"

namespace hpcsec::core {

/// The control task's execution context: a runnable that consumes a fixed
/// processing budget per queued command, then acts on it.
class ControlTaskCtx : public arch::Runnable {
public:
    explicit ControlTaskCtx(double cycles_per_command = 25000.0)
        : budget_(cycles_per_command) {}

    void enqueue(JobCommand cmd);

    std::function<void(const JobCommand&)> handler;

    [[nodiscard]] std::string_view label() const override { return "control-task"; }
    [[nodiscard]] double remaining_units() const override { return remaining_; }
    void advance(double units, sim::SimTime now) override;
    [[nodiscard]] const arch::WorkProfile& profile() const override { return profile_; }
    [[nodiscard]] arch::TranslationMode mode() const override {
        return arch::TranslationMode::kTwoStage;
    }

    [[nodiscard]] std::uint64_t processed() const { return processed_; }

private:
    double budget_;
    double remaining_ = 0.0;
    std::deque<JobCommand> inbox_;
    arch::WorkProfile profile_{/*cycles_per_unit=*/1.0, 0.02, 0.05, 8.0};
    std::uint64_t processed_ = 0;
};

class JobControl {
public:
    /// Requires a booted Node with a Kitten primary and a super-secondary.
    explicit JobControl(Node& node);

    /// Retransmission policy for request_reliable: up to `max_attempts`
    /// transmissions of the same tagged command, each waiting
    /// `attempt_timeout_s` of sim time for the reply.
    struct RetryPolicy {
        double attempt_timeout_s = 0.5;
        int max_attempts = 4;
    };

    /// Issue a command from the login VM and pump the simulation until the
    /// reply arrives (or timeout). nullopt on timeout.
    std::optional<JobReply> request(const JobCommand& cmd, double timeout_s = 2.0);

    /// Hardened request: retransmits the same tag on a lost frame (the
    /// control side's replay cache keeps re-execution idempotent) and
    /// always returns a reply — kStatusTimeout when every attempt expired.
    JobReply request_reliable(const JobCommand& cmd, const RetryPolicy& policy);
    JobReply request_reliable(const JobCommand& cmd) {
        return request_reliable(cmd, RetryPolicy{});
    }

    [[nodiscard]] std::uint64_t commands_processed() const { return ctl_.processed(); }
    [[nodiscard]] ControlTaskCtx& control_ctx() { return ctl_; }

    struct ChannelStats {
        std::uint64_t timeouts = 0;          ///< request_reliable exhausted
        std::uint64_t retransmits = 0;       ///< command frames re-sent
        std::uint64_t duplicate_replies = 0; ///< stale reply frames suppressed
        std::uint64_t replayed_replies = 0;  ///< control-side replay-cache hits
        std::uint64_t deferred_replies = 0;  ///< reply sends parked on a busy mailbox
    };
    [[nodiscard]] const ChannelStats& channel_stats() const { return channel_stats_; }

private:
    void on_primary_message(arch::VmId from);
    void on_login_message();
    void execute(const JobCommand& cmd);
    /// Write + FFA_MSG_SEND; false when the target mailbox is busy (or the
    /// send was otherwise refused). Throws only on host-side misuse.
    bool try_send_words(arch::VmId from, arch::VmId to,
                        const std::vector<std::uint64_t>& words);
    void queue_reply(const JobReply& reply);
    void flush_replies();

    Node* node_;
    ControlTaskCtx ctl_;
    kitten::KThread* ctl_thread_ = nullptr;
    arch::IpaAddr primary_send_ = 0, primary_recv_ = 0;
    arch::IpaAddr login_send_ = 0, login_recv_ = 0;
    std::optional<JobReply> pending_reply_;
    std::uint64_t awaiting_tag_ = 0;  ///< tag of the in-flight request, 0 = none
    std::uint64_t next_tag_ = 1;
    // Control-side idempotency: recently answered tags and their replies, so
    // a retransmitted command is answered without re-execution.
    std::map<std::uint64_t, JobReply> reply_cache_;
    std::deque<std::uint64_t> reply_cache_order_;
    // Replies waiting for the login mailbox to drain (never throw from the
    // control task's engine event on a busy mailbox).
    std::deque<JobReply> reply_outbox_;
    bool flush_pending_ = false;
    // Authenticated channel state: per-direction keys (derived from the
    // boot-time attestation accumulator) and anti-replay counters.
    ChannelKey cmd_key_{}, reply_key_{};
    std::uint64_t cmd_send_ctr_ = 0, cmd_recv_ctr_ = 0;
    std::uint64_t reply_send_ctr_ = 0, reply_recv_ctr_ = 0;
    std::uint64_t rejected_frames_ = 0;
    ChannelStats channel_stats_;

public:
    /// Frames dropped by MAC/replay verification (observability for tests).
    [[nodiscard]] std::uint64_t rejected_frames() const { return rejected_frames_; }
};

}  // namespace hpcsec::core
