#include "core/node.h"

#include <stdexcept>

namespace hpcsec::core {

namespace {
constexpr char kComputeVmName[] = "compute";
constexpr char kLoginVmName[] = "login";
}  // namespace

std::string to_string(SchedulerKind k) {
    switch (k) {
        case SchedulerKind::kNativeKitten: return "Native";
        case SchedulerKind::kKittenPrimary: return "Kitten";
        case SchedulerKind::kLinuxPrimary: return "Linux";
    }
    return "?";
}

Node::Node(NodeConfig config) : config_(std::move(config)) {}
Node::~Node() = default;

std::vector<std::uint8_t> Node::make_image(const std::string& name,
                                           std::size_t bytes) {
    // Deterministic synthetic "kernel image": a header plus a keyed stream.
    std::vector<std::uint8_t> img;
    img.reserve(bytes);
    std::uint64_t state = 0;
    for (const char c : name) state = state * 131 + static_cast<unsigned char>(c);
    for (std::size_t i = 0; i < bytes; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        img.push_back(static_cast<std::uint8_t>(state >> 56));
    }
    return img;
}

hafnium::Vm* Node::compute_vm() {
    return spm_ ? spm_->find_vm(kComputeVmName) : nullptr;
}

hafnium::Vm* Node::login_vm() {
    return spm_ ? spm_->find_vm(kLoginVmName) : nullptr;
}

hafnium::PrimaryOsItf* Node::primary_os() {
    if (kitten_ && kitten_->is_primary_vm()) return kitten_.get();
    return linux_.get();
}

void Node::boot() {
    if (booted_) throw std::logic_error("Node::boot: already booted");
    if (config_.secure_compute_vm && config_.platform.secure_ram_bytes == 0) {
        // TrustZone partitions are static: carve out secure RAM at boot.
        config_.platform.secure_ram_bytes = config_.compute_mem_bytes + (64ull << 20);
    }
    platform_ = std::make_unique<arch::Platform>(config_.platform, config_.seed);

    // --- measured boot: TF-A stages, then the system software ---------------
    const auto bl2 = make_image("tf-a-bl2");
    const auto bl31 = make_image("tf-a-bl31");
    chain_.extend("tf-a-bl2", bl2);
    chain_.extend("tf-a-bl31", bl31);
    if (config_.verify_signatures) {
        for (const auto& key : config_.trusted_keys) verifier_.enroll(key);
        chain_.extend_digest("image-keystore", verifier_.keystore_measurement());
        for (const auto& img : config_.signed_images) {
            if (!verifier_.verify(img)) {
                throw std::runtime_error("Node::boot: image signature check failed for " +
                                         img.name);
            }
        }
    }

    if (config_.scheduler == SchedulerKind::kNativeKitten) {
        boot_native();
    } else {
        boot_hafnium();
    }
    booted_ = true;
}

void Node::boot_native() {
    const auto kitten_img = make_image("kitten-native-arm64");
    chain_.extend("kitten-native-arm64", kitten_img);
    kitten_ = std::make_unique<kitten::KittenKernel>(*platform_, config_.kitten);
    kitten_->boot();
}

void Node::boot_hafnium() {
    const auto hafnium_img = make_image("hafnium-spm");
    chain_.extend("hafnium-spm", hafnium_img);

    hafnium::Manifest manifest;
    {
        hafnium::VmSpec primary;
        primary.name = config_.scheduler == SchedulerKind::kKittenPrimary
                           ? "kitten-primary"
                           : "linux-primary";
        primary.role = hafnium::VmRole::kPrimary;
        primary.mem_bytes = 128ull << 20;
        primary.vcpu_count = config_.platform.ncores;
        primary.image = make_image(primary.name);
        manifest.vms.push_back(std::move(primary));
    }
    if (config_.with_super_secondary) {
        hafnium::VmSpec login;
        login.name = kLoginVmName;
        login.role = hafnium::VmRole::kSuperSecondary;
        login.mem_bytes = config_.login_mem_bytes;
        login.vcpu_count = 1;
        for (const auto& dev : config_.platform.devices) login.devices.push_back(dev.name);
        login.image = make_image("linux-login");
        manifest.vms.push_back(std::move(login));
    }
    {
        hafnium::VmSpec compute;
        compute.name = kComputeVmName;
        compute.role = hafnium::VmRole::kSecondary;
        compute.mem_bytes = config_.compute_mem_bytes;
        compute.vcpu_count =
            config_.compute_vcpus > 0 ? config_.compute_vcpus : config_.platform.ncores;
        compute.world = config_.secure_compute_vm ? arch::World::kSecure
                                                  : arch::World::kNonSecure;
        compute.image = make_image("kitten-guest");
        if (config_.verify_signatures) {
            // Require a matching signed image for the compute partition.
            bool found = false;
            for (const auto& img : config_.signed_images) {
                if (img.name == kComputeVmName) {
                    compute.image = img.bytes;
                    found = true;
                }
            }
            if (!found) {
                throw std::runtime_error(
                    "Node::boot: signature verification enabled but no signed "
                    "compute image provided");
            }
        }
        manifest.vms.push_back(std::move(compute));
    }

    spm_ = std::make_unique<hafnium::Spm>(*platform_, manifest, config_.routing);

    // The kHypercall trace instant comes from the interceptor chain, not an
    // inline recorder call in the SPM hot path; attach it before boot so the
    // event stream starts with the first hypercall, as it always did.
    telemetry_ = std::make_unique<hafnium::TelemetryInterceptor>(*platform_);
    spm_->attach_interceptor(telemetry_.get());
    if (config_.call_metrics) {
        call_metrics_ = std::make_unique<hafnium::CallMetricsInterceptor>(
            platform_->metrics());
        spm_->attach_interceptor(call_metrics_.get());
    }
    if (platform_->config().profile) {
        profiling_ = std::make_unique<hafnium::ProfilingInterceptor>(*platform_);
        spm_->attach_interceptor(profiling_.get());
        // Collapsed stacks / perf-top print FFA call names, not raw numbers.
        platform_->profiler().set_call_namer([](unsigned n) {
            return hafnium::to_string(static_cast<hafnium::Call>(n));
        });
    }

    // Attach the invariant auditor before boot so the whole boot sequence
    // (stage-2 construction, first VCPU transitions) is already audited.
    if (config_.check_mode != check::Mode::kOff) {
        auditor_ = std::make_unique<check::Auditor>(
            *spm_,
            check::Auditor::Options{config_.check_mode, config_.check_period,
                                    config_.check_event_period});
    }

    if (config_.scheduler == SchedulerKind::kKittenPrimary) {
        kitten_ = std::make_unique<kitten::KittenKernel>(*platform_, *spm_,
                                                         config_.kitten);
    } else {
        linux_ = std::make_unique<linux_fwk::LinuxKernel>(*platform_, *spm_,
                                                          config_.linux);
    }

    spm_->boot();
    // Extend the chain with the SPM's own image measurements (in manifest
    // order), exactly what an attested Hafnium boot would log.
    for (const auto& [name, digest] : spm_->measurements()) {
        chain_.extend_digest(name, digest);
    }

    // Tag SPM-critical state before any guest instruction runs, so there is
    // no boot window in which an early-compromised partition could touch it
    // unchecked.
    if (config_.protect_critical) spm_->protect_critical_state();

    if (kitten_) kitten_->boot();
    if (linux_) linux_->boot();

    // Guest personalities.
    compute_guest_ = std::make_unique<kitten::KittenGuestOs>(
        *spm_, *spm_->find_vm(kComputeVmName), config_.guest);
    compute_guest_->start();
    if (config_.with_super_secondary) {
        login_guest_ = std::make_unique<linux_fwk::LinuxGuestOs>(
            *spm_, *spm_->find_vm(kLoginVmName), config_.login);
        login_guest_->start();
    }

    // The primary launches the super-secondary first ("it then immediately
    // launches the super-secondary VM instance"), then the compute VM.
    const auto launch = [&](arch::VmId id) {
        if (kitten_) kitten_->launch_vm(id);
        if (linux_) linux_->launch_vm(id);
    };
    if (hafnium::Vm* login = login_vm()) launch(login->id());
    launch(spm_->find_vm(kComputeVmName)->id());
}

// ---------------------------------------------------------------------------
// Workload execution
// ---------------------------------------------------------------------------

void Node::kick_vcpus(hafnium::Vm& vm, int count) {
    for (int i = 0; i < count && i < vm.vcpu_count(); ++i) {
        hafnium::Vcpu& vcpu = vm.vcpu(i);
        if (vcpu.state() == hafnium::VcpuState::kBlocked) {
            spm_->wake_vcpu(vcpu);
        } else if (vcpu.state() == hafnium::VcpuState::kOff) {
            spm_->make_vcpu_ready(vcpu);
            primary_os()->on_vcpu_wake(vcpu);
        } else if (vcpu.state() == hafnium::VcpuState::kReady) {
            primary_os()->on_vcpu_wake(vcpu);
        }
    }
}

void Node::reprice_workload_cores(wl::ParallelWorkload& workload) {
    // Barrier release while threads busy-wait: re-price the spinning chunks
    // so the refilled work drains at the right rate (zero-cost bookkeeping).
    for (int c = 0; c < platform_->ncores(); ++c) {
        arch::Executor& ex = platform_->core(c).exec();
        arch::Runnable* cur = ex.current();
        if (cur == nullptr) continue;
        for (int i = 0; i < workload.nthreads(); ++i) {
            if (cur == &workload.thread(i)) {
                ex.reprice();
                break;
            }
        }
    }
}

void Node::attach_guest_workload(kitten::KittenGuestOs& guest, hafnium::Vm& vm,
                                 wl::ParallelWorkload& workload) {
    workload.set_mode(arch::TranslationMode::kTwoStage);
    for (int i = 0; i < workload.nthreads(); ++i) {
        guest.set_thread(i, &workload.thread(i));
    }
    guest.wake_runnable_vcpus();
    // Resolve the guest by VM name at release time: the partition may have
    // been restarted (new id, new personality) between barrier phases, and a
    // release can fire while it is down entirely.
    const std::string name = vm.name();
    workload.on_release = [this, name, &workload] {
        if (hafnium::Vm* v = spm_->find_vm(name)) {
            if (kitten::KittenGuestOs* g = guest_of(v->id())) {
                g->wake_runnable_vcpus();
            }
        }
        reprice_workload_cores(workload);
    };
}

void Node::register_reattach(const std::string& vm_name,
                             wl::ParallelWorkload& workload) {
    reattach_[vm_name] = [this, &workload](arch::VmId nid) {
        kitten::KittenGuestOs* g = guest_of(nid);
        if (g == nullptr) return;
        attach_guest_workload(*g, spm_->vm(nid), workload);
        kick_vcpus(spm_->vm(nid), workload.nthreads());
    };
}

double Node::run_workload(wl::ParallelWorkload& workload, double timeout_s) {
    if (!booted_) throw std::logic_error("Node::run_workload: boot first");
    auto& engine = platform_->engine();
    const sim::SimTime start = engine.now();

    workload.on_finished = [this, &engine, &workload](sim::SimTime) {
        // Kick the now-done spin chunks so they retire cleanly (each VCPU
        // blocks / each native thread parks), then stop the clock.
        reprice_workload_cores(workload);
        engine.stop();
    };

    if (config_.scheduler == SchedulerKind::kNativeKitten) {
        workload.set_mode(arch::TranslationMode::kNative);
        std::vector<kitten::KThread*> threads;
        for (int i = 0; i < workload.nthreads(); ++i) {
            threads.push_back(&kitten_->add_app_thread(
                i % platform_->ncores(), &workload.thread(i),
                workload.spec().name + "-t" + std::to_string(i)));
        }
        workload.on_release = [this, threads, &workload] {
            for (kitten::KThread* t : threads) {
                if (t->ctx->remaining_units() > 0) kitten_->wake(*t);
            }
            reprice_workload_cores(workload);
        };
    } else {
        attach_guest_workload(*compute_guest_, *compute_vm(), workload);
        kick_vcpus(*compute_vm(), workload.nthreads());
        register_reattach(compute_vm()->name(), workload);
    }

    engine.run_until(start + engine.clock().from_seconds(timeout_s));
    reattach_.clear();
    if (!workload.finished()) {
        throw std::runtime_error("Node::run_workload: '" + workload.spec().name +
                                 "' did not finish within the timeout");
    }
    return engine.clock().to_seconds(workload.finish_time() - start);
}

double Node::run_workload_on(arch::VmId vm_id, wl::ParallelWorkload& workload,
                             double timeout_s) {
    if (!booted_ || spm_ == nullptr) {
        throw std::logic_error("Node::run_workload_on: needs a booted hafnium node");
    }
    kitten::KittenGuestOs* guest = guest_of(vm_id);
    if (guest == nullptr) {
        throw std::invalid_argument("Node::run_workload_on: VM has no guest kernel");
    }
    auto& engine = platform_->engine();
    const sim::SimTime start = engine.now();
    workload.on_finished = [this, &engine, &workload](sim::SimTime) {
        reprice_workload_cores(workload);
        engine.stop();
    };
    attach_guest_workload(*guest, spm_->vm(vm_id), workload);
    kick_vcpus(spm_->vm(vm_id), workload.nthreads());
    register_reattach(spm_->vm(vm_id).name(), workload);
    engine.run_until(start + engine.clock().from_seconds(timeout_s));
    reattach_.clear();
    if (!workload.finished()) {
        throw std::runtime_error("Node::run_workload_on: '" + workload.spec().name +
                                 "' did not finish within the timeout");
    }
    return engine.clock().to_seconds(workload.finish_time() - start);
}

void Node::run_selfish(wl::SelfishBenchmark& selfish, double seconds) {
    if (!booted_) throw std::logic_error("Node::run_selfish: boot first");
    auto& engine = platform_->engine();
    const sim::SimTime start = engine.now();
    wl::ParallelWorkload& w = selfish.workload();

    if (config_.scheduler == SchedulerKind::kNativeKitten) {
        w.set_mode(arch::TranslationMode::kNative);
        for (int i = 0; i < w.nthreads(); ++i) {
            kitten_->add_app_thread(i % platform_->ncores(), &w.thread(i),
                                    "selfish-t" + std::to_string(i));
        }
    } else {
        attach_guest_workload(*compute_guest_, *compute_vm(), w);
        kick_vcpus(*compute_vm(), w.nthreads());
        register_reattach(compute_vm()->name(), w);
    }
    engine.run_until(start + engine.clock().from_seconds(seconds));
    reattach_.clear();
}

void Node::run_for(double seconds) {
    auto& engine = platform_->engine();
    engine.run_until(engine.now() + engine.clock().from_seconds(seconds));
}

obs::MetricsSnapshot Node::publish_metrics() {
    if (platform_ == nullptr) return {};
    platform_->publish_metrics();
    if (spm_) spm_->publish_metrics();
    if (auditor_) auditor_->publish_metrics();
    auto& m = platform_->metrics();
    const auto set = [&m](const char* name, double v) { m.set(m.gauge(name), v); };
    if (kitten_) {
        const auto& s = kitten_->stats();
        set("kitten.ticks", static_cast<double>(s.ticks));
        set("kitten.dispatches", static_cast<double>(s.dispatches));
        set("kitten.forwarded_irqs", static_cast<double>(s.forwarded_irqs));
        set("kitten.resched_ipis", static_cast<double>(s.resched_ipis));
    }
    if (linux_) {
        const auto& s = linux_->stats();
        set("linux.ticks", static_cast<double>(s.ticks));
        set("linux.dispatches", static_cast<double>(s.dispatches));
        set("linux.kworker_wakes", static_cast<double>(s.kworker_wakes));
        set("linux.softirqs", static_cast<double>(s.softirqs));
        set("linux.preemptions_by_noise",
            static_cast<double>(s.preemptions_by_noise));
        set("linux.forwarded_irqs", static_cast<double>(s.forwarded_irqs));
        set("linux.noise_cycles", s.noise_cycles);
    }
    if (compute_guest_) {
        const auto& s = compute_guest_->stats();
        set("guest.ticks", static_cast<double>(s.ticks));
        set("guest.messages", static_cast<double>(s.messages));
    }
    if (login_guest_) {
        const auto& s = login_guest_->stats();
        set("login.ticks", static_cast<double>(s.ticks));
        set("login.device_irqs", static_cast<double>(s.device_irqs));
        set("login.messages", static_cast<double>(s.messages));
    }
    return m.snapshot();
}

// ---------------------------------------------------------------------------
// Dynamic partitioning (paper §VII)
// ---------------------------------------------------------------------------

kitten::KittenGuestOs* Node::guest_of(arch::VmId id) {
    if (hafnium::Vm* cvm = compute_vm(); cvm != nullptr && cvm->id() == id) {
        return compute_guest_.get();
    }
    const auto it = dynamic_guests_.find(id);
    return it == dynamic_guests_.end() ? nullptr : it->second.get();
}

std::size_t Node::stage_image(SignedImage image) {
    staged_images_.push_back(std::move(image));
    return staged_images_.size() - 1;
}

arch::VmId Node::launch_dynamic_vm(const SignedImage& image,
                                   std::uint64_t mem_bytes, int vcpus,
                                   arch::World world) {
    if (!booted_ || spm_ == nullptr) {
        throw std::logic_error("launch_dynamic_vm: needs a booted hafnium node");
    }
    // The paper's trust requirement: without hardware attestation of
    // runtime-supplied images, the SPM must verify a signature against a
    // key from the trusted boot sequence. No enrolled keys -> no dynamic VMs.
    if (verifier_.enrolled() == 0) {
        throw std::runtime_error(
            "launch_dynamic_vm: no trusted signing keys enrolled at boot");
    }
    if (!verifier_.verify(image)) {
        throw std::runtime_error("launch_dynamic_vm: signature verification failed for " +
                                 image.name);
    }

    hafnium::VmSpec spec;
    spec.name = image.name;
    spec.role = hafnium::VmRole::kSecondary;
    spec.mem_bytes = mem_bytes;
    spec.vcpu_count = vcpus;
    spec.world = world;
    spec.image = image.bytes;
    const arch::VmId id = spm_->create_vm(spec);

    // Runtime measurements extend the chain like a TPM's runtime PCR.
    chain_.extend_digest("runtime:" + image.name,
                         crypto::Sha256::hash(std::span<const std::uint8_t>(image.bytes)));

    auto guest = std::make_unique<kitten::KittenGuestOs>(*spm_, spm_->vm(id),
                                                         config_.guest);
    guest->start();
    dynamic_guests_[id] = std::move(guest);
    if (kitten_) kitten_->launch_vm(id);
    if (linux_) linux_->launch_vm(id);
    return id;
}

void Node::destroy_dynamic_vm(arch::VmId id) { retire_vm(id); }

// ---------------------------------------------------------------------------
// Fault-tolerant lifecycle
// ---------------------------------------------------------------------------

void Node::retire_vm(arch::VmId id) {
    if (spm_ == nullptr) throw std::logic_error("Node::retire_vm: no SPM");
    hafnium::Vm& vm = spm_->vm(id);
    if (vm.destroyed) return;
    const bool was_compute = compute_vm() != nullptr && compute_vm()->id() == id;
    // Pull its VCPUs off the cores without requeueing them, then reap the
    // proxies (a kYield notification would let the scheduler re-enter the
    // VM before stop_vm runs).
    for (int v = 0; v < vm.vcpu_count(); ++v) {
        spm_->force_stop_vcpu(vm.vcpu(v), /*notify_primary=*/false);
    }
    if (kitten_) kitten_->stop_vm(id);
    if (linux_) linux_->stop_vm(id);
    spm_->destroy_vm(id);
    dynamic_guests_.erase(id);
    if (was_compute) compute_guest_.reset();
}

arch::VmId Node::restart_vm(arch::VmId id) {
    if (!booted_ || spm_ == nullptr) {
        throw std::logic_error("Node::restart_vm: needs a booted hafnium node");
    }
    hafnium::Vm& old = spm_->vm(id);
    if (old.role() != hafnium::VmRole::kSecondary) {
        throw std::invalid_argument("Node::restart_vm: only secondaries restart");
    }
    hafnium::VmSpec spec = old.spec();
    // The relaunch must run exactly the code that was attested: pin the
    // expected hash to the partition's *first* (boot/launch-time)
    // measurement so create_vm re-verifies the image.
    for (const auto& [name, digest] : spm_->measurements()) {
        if (name == spec.name) {
            spec.expected_hash = digest;
            break;
        }
    }
    const bool was_compute = compute_vm() != nullptr && compute_vm()->id() == id;
    retire_vm(id);

    const arch::VmId nid = spm_->create_vm(spec);
    chain_.extend_digest("restart:" + spec.name, spec.image_hash());
    auto guest = std::make_unique<kitten::KittenGuestOs>(*spm_, spm_->vm(nid),
                                                         config_.guest);
    guest->start();
    if (was_compute) {
        compute_guest_ = std::move(guest);
    } else {
        dynamic_guests_[nid] = std::move(guest);
    }
    if (kitten_) kitten_->launch_vm(nid);
    if (linux_) linux_->launch_vm(nid);

    // Resume whatever workload was attached to the partition when it died.
    const auto it = reattach_.find(spec.name);
    if (it != reattach_.end()) it->second(nid);
    return nid;
}

}  // namespace hpcsec::core
