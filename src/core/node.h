// hpcsec::core::Node — the paper's system, assembled.
//
// A Node is one securely partitioned compute node: the ARM platform, the
// Hafnium SPM, a scheduling primary VM (Kitten or Linux), an isolated
// compute VM running a Kitten guest, and optionally the super-secondary
// "login" VM that owns I/O and drives job control. A Node can also be
// built in the native configuration (Kitten on bare metal, no hypervisor),
// which is the paper's baseline.
//
// This is the public entry point of the library; see examples/quickstart.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "check/check.h"
#include "core/attest.h"
#include "core/signature.h"
#include "hafnium/spm.h"
#include "kitten/guest.h"
#include "kitten/kitten.h"
#include "linux_fwk/guest.h"
#include "linux_fwk/linux.h"
#include "workloads/selfish.h"
#include "workloads/workload.h"

namespace hpcsec::core {

/// Which kernel schedules the node (the paper's three configurations).
enum class SchedulerKind : std::uint8_t {
    kNativeKitten,   ///< Fig. 4 baseline: Kitten on bare metal
    kKittenPrimary,  ///< Fig. 5: Kitten secondary VM, Kitten scheduler VM
    kLinuxPrimary,   ///< Fig. 6: Kitten secondary VM, Linux scheduler VM
};

[[nodiscard]] std::string to_string(SchedulerKind k);

struct NodeConfig {
    arch::PlatformConfig platform = arch::PlatformConfig::pine_a64();
    SchedulerKind scheduler = SchedulerKind::kKittenPrimary;
    std::uint64_t seed = 42;

    /// Compute (secondary) VM shape. vcpus == 0 means one per core.
    std::uint64_t compute_mem_bytes = 256ull << 20;
    int compute_vcpus = 0;
    /// Place the compute VM in the TrustZone secure world (requires a
    /// secure RAM carve-out in the platform config).
    bool secure_compute_vm = false;

    /// Host the Linux login VM (the paper's super-secondary extension).
    bool with_super_secondary = false;
    std::uint64_t login_mem_bytes = 128ull << 20;
    hafnium::IrqRoutingPolicy routing = hafnium::IrqRoutingPolicy::kAllToPrimary;

    kitten::KittenConfig kitten{};
    linux_fwk::LinuxConfig linux{};
    kitten::GuestConfig guest{};
    linux_fwk::LinuxGuestConfig login{};

    /// Isolation-invariant auditor (src/check). kOff keeps the audit hooks
    /// detached (their cost is one predicted branch per site); kSampled
    /// scans every `check_period` hypercalls or `check_event_period` sim
    /// events; kStrict scans every hypercall and throws on a violation.
    check::Mode check_mode = check::Mode::kOff;
    int check_period = 64;
    std::uint64_t check_event_period = 100'000;

    /// Attach a CallMetricsInterceptor at boot: per-call-number invocation
    /// and error counters published as "hf.call.*" / "hf.call_err.*".
    bool call_metrics = false;

    /// Arm HDFI-style integrity tags over SPM-critical state at boot
    /// (Spm::protect_critical_state): stage-2 table frames, attestation log,
    /// Lamport key material, manifest. Off by default so the tags-off hot
    /// path keeps its one-predicted-branch floor.
    bool protect_critical = false;

    /// When set, VM images must verify against `trusted_keys` at boot.
    bool verify_signatures = false;
    std::vector<SignedImage> signed_images;
    std::vector<crypto::LamportPublicKey> trusted_keys;
};

class Node {
public:
    explicit Node(NodeConfig config);
    ~Node();
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    /// Full boot: measured boot chain -> (SPM -> primary VM -> guests) or
    /// native Kitten. Throws on manifest/signature failures.
    void boot();
    [[nodiscard]] bool booted() const { return booted_; }

    // --- workload execution ----------------------------------------------------
    /// Run a parallel workload to completion on the compute partition
    /// (secondary VM, or bare metal natively). Returns elapsed seconds.
    double run_workload(wl::ParallelWorkload& workload, double timeout_s = 600.0);

    /// Run a workload on a specific (e.g. dynamically created) VM.
    double run_workload_on(arch::VmId vm, wl::ParallelWorkload& workload,
                           double timeout_s = 600.0);

    /// Run the selfish-detour spinner for `seconds` of simulated time.
    void run_selfish(wl::SelfishBenchmark& selfish, double seconds);

    // --- dynamic partitioning (paper §VII future work) --------------------------
    /// Launch a signed VM image after boot. The signature must verify
    /// against a key enrolled at provisioning time (the enrolled keystore is
    /// measured into the boot chain) — "Hafnium is able to verify VM
    /// signatures using a known public key that is included as part of the
    /// trusted boot sequence". Returns the new VM id; the partition gets a
    /// Kitten guest personality and VCPU proxies in the primary.
    arch::VmId launch_dynamic_vm(const SignedImage& image,
                                 std::uint64_t mem_bytes, int vcpus,
                                 arch::World world = arch::World::kNonSecure);

    /// Stop and tear down a dynamically launched VM; its memory is scrubbed
    /// and returned to the allocator.
    void destroy_dynamic_vm(arch::VmId id);

    // --- fault-tolerant lifecycle (src/resil/ drives these) ---------------------
    /// Permanently stop a secondary partition (boot-time compute or dynamic):
    /// VCPUs are pulled off the cores and the proxies reaped, stage-2 memory
    /// is scrubbed and reclaimed, grants revoked. The node keeps serving the
    /// remaining partitions — this is the quarantine primitive.
    void retire_vm(arch::VmId id);

    /// Tear a crashed/hung secondary down and relaunch it from its manifest
    /// spec. The image is re-verified against the boot-time measurement, the
    /// restart is recorded in the attestation chain, and any workload that
    /// was running on the partition is reattached (by VM name) so it resumes
    /// from its last barrier state. Returns the new VM id (ids are never
    /// reused).
    arch::VmId restart_vm(arch::VmId id);

    /// Guest personality of a VM (the boot-time compute VM or a dynamic one).
    [[nodiscard]] kitten::KittenGuestOs* guest_of(arch::VmId id);

    /// Pre-stage a signed image so the login VM can launch it by index over
    /// the job-control channel.
    std::size_t stage_image(SignedImage image);
    [[nodiscard]] const std::vector<SignedImage>& staged_images() const {
        return staged_images_;
    }

    /// Let the node run idle/background work for `seconds`.
    void run_for(double seconds);

    // --- observability -------------------------------------------------------
    /// Publish every component's stats (SPM, kernels, guests, engine, core
    /// usage) into the platform's metrics registry and return a snapshot.
    obs::MetricsSnapshot publish_metrics();

    // --- components ---------------------------------------------------------------
    [[nodiscard]] const NodeConfig& config() const { return config_; }
    arch::Platform& platform() { return *platform_; }
    [[nodiscard]] hafnium::Spm* spm() { return spm_.get(); }
    /// nullptr natively or when check_mode is kOff.
    [[nodiscard]] check::Auditor* auditor() { return auditor_.get(); }
    [[nodiscard]] kitten::KittenKernel* kitten() { return kitten_.get(); }
    [[nodiscard]] linux_fwk::LinuxKernel* linux_kernel() { return linux_.get(); }
    [[nodiscard]] kitten::KittenGuestOs* compute_guest() { return compute_guest_.get(); }
    [[nodiscard]] linux_fwk::LinuxGuestOs* login_guest() { return login_guest_.get(); }
    [[nodiscard]] hafnium::Vm* compute_vm();
    [[nodiscard]] hafnium::Vm* login_vm();
    [[nodiscard]] hafnium::PrimaryOsItf* primary_os();
    AttestationChain& attestation() { return chain_; }
    ImageVerifier& verifier() { return verifier_; }

    /// Build a deterministic synthetic VM image (for manifests/tests).
    [[nodiscard]] static std::vector<std::uint8_t> make_image(const std::string& name,
                                                              std::size_t bytes = 4096);

private:
    void boot_native();
    void boot_hafnium();
    void attach_guest_workload(kitten::KittenGuestOs& guest, hafnium::Vm& vm,
                               wl::ParallelWorkload& workload);
    void kick_vcpus(hafnium::Vm& vm, int count);
    void reprice_workload_cores(wl::ParallelWorkload& workload);
    void register_reattach(const std::string& vm_name, wl::ParallelWorkload& workload);

    NodeConfig config_;
    std::unique_ptr<arch::Platform> platform_;
    std::unique_ptr<hafnium::Spm> spm_;
    /// Boot-time interceptors (after spm_: they die first, the SPM never
    /// invokes its chain from its own destructor).
    std::unique_ptr<hafnium::TelemetryInterceptor> telemetry_;
    std::unique_ptr<hafnium::CallMetricsInterceptor> call_metrics_;
    std::unique_ptr<hafnium::ProfilingInterceptor> profiling_;
    std::unique_ptr<check::Auditor> auditor_;  ///< after spm_: detaches first
    std::unique_ptr<kitten::KittenKernel> kitten_;
    std::unique_ptr<linux_fwk::LinuxKernel> linux_;
    std::unique_ptr<kitten::KittenGuestOs> compute_guest_;
    std::unique_ptr<linux_fwk::LinuxGuestOs> login_guest_;
    AttestationChain chain_;
    ImageVerifier verifier_;
    std::map<arch::VmId, std::unique_ptr<kitten::KittenGuestOs>> dynamic_guests_;
    /// Active-workload reattach hooks, keyed by VM name (ids change across
    /// restarts, names do not). restart_vm invokes these after relaunch.
    std::map<std::string, std::function<void(arch::VmId)>> reattach_;
    std::vector<SignedImage> staged_images_;
    bool booted_ = false;
};

}  // namespace hpcsec::core
