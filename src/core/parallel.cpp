#include "core/parallel.h"

#include <exception>
#include <utility>

namespace hpcsec::core {

int ThreadPool::default_jobs() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
    if (threads <= 0) threads = default_jobs();
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++outstanding_;
    }
    work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
            if (queue_.empty()) return;  // shutdown with a drained queue
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--outstanding_ == 0) idle_cv_.notify_all();
        }
    }
}

void parallel_for_indexed(ThreadPool& pool, std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
    std::vector<std::exception_ptr> errors(n);
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([i, &fn, &errors] {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool.wait_idle();
    for (auto& e : errors) {
        if (e) std::rethrow_exception(e);
    }
}

}  // namespace hpcsec::core
