// Host-side worker pool for fanning embarrassingly parallel trials across
// threads.
//
// The simulator itself stays single-threaded and deterministic: one trial =
// one private sim::Engine/Node owned entirely by one worker. Parallelism
// lives strictly *between* trials — the pool hands out independent tasks
// and the caller merges results in task-index order, so aggregate output is
// bit-identical to a serial run regardless of scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hpcsec::core {

class ThreadPool {
public:
    /// threads <= 0 selects one worker per hardware thread.
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

    /// std::thread::hardware_concurrency(), never less than 1.
    static int default_jobs();

    /// Enqueue a task. Tasks must not throw (wrap work that can throw; see
    /// parallel_for_indexed, which captures exceptions per index).
    void submit(std::function<void()> task);

    /// Block until every submitted task has finished executing.
    void wait_idle();

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_cv_;   ///< workers wait for tasks
    std::condition_variable idle_cv_;   ///< wait_idle waits for drain
    std::size_t outstanding_ = 0;       ///< queued + running tasks
    bool shutdown_ = false;
};

/// Run fn(0..n-1) across the pool's workers and block until all complete.
/// Exceptions are captured per index and the lowest-index one is rethrown
/// after the fan-in, mirroring where a serial loop would have thrown first.
void parallel_for_indexed(ThreadPool& pool, std::size_t n,
                          const std::function<void(std::size_t)>& fn);

}  // namespace hpcsec::core
