#include "core/signature.h"

namespace hpcsec::core {

std::optional<SignedImage> ImageSigner::sign(std::string name,
                                             std::vector<std::uint8_t> bytes) {
    const crypto::Digest digest =
        crypto::Sha256::hash(std::span<const std::uint8_t>(bytes));
    auto sig = key_.sign(digest);
    if (!sig) return std::nullopt;
    SignedImage img;
    img.name = std::move(name);
    img.bytes = std::move(bytes);
    img.signature = *sig;
    img.key_fingerprint = key_.public_key().fingerprint();
    return img;
}

crypto::Digest ImageVerifier::enroll(const crypto::LamportPublicKey& pub) {
    const crypto::Digest fp = pub.fingerprint();
    keys_[crypto::to_hex(fp)] = pub;
    return fp;
}

bool ImageVerifier::verify(const SignedImage& image) const {
    const auto it = keys_.find(crypto::to_hex(image.key_fingerprint));
    if (it == keys_.end()) return false;  // unknown signing key
    const crypto::Digest digest =
        crypto::Sha256::hash(std::span<const std::uint8_t>(image.bytes));
    return crypto::lamport_verify(it->second, digest, image.signature);
}

crypto::Digest ImageVerifier::keystore_measurement() const {
    crypto::Sha256 h;
    for (const auto& [fp, key] : keys_) {
        h.update(fp);
        (void)key;
    }
    return h.finalize();
}

}  // namespace hpcsec::core
