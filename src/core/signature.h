// VM image signature verification.
//
// Paper §VII: "hafnium will require some mechanisms of verifying VM
// signatures to ensure their authenticity and provenance. One potential
// solution would be to leverage certificate verification, where Hafnium is
// able to verify VM signatures using a known public key that is included as
// part of the trusted boot sequence." This implements that design with
// Lamport one-time signatures: each image carries a signature made with a
// per-image key whose public half is enrolled into the verifier at
// provisioning time (and measured into the boot chain).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "crypto/lamport.h"
#include "crypto/sha256.h"

namespace hpcsec::core {

struct SignedImage {
    std::string name;
    std::vector<std::uint8_t> bytes;
    crypto::LamportSignature signature;
    crypto::Digest key_fingerprint;  ///< which enrolled key signed it
};

/// Signer side (build/provisioning system, off-node).
class ImageSigner {
public:
    explicit ImageSigner(std::span<const std::uint8_t> provisioning_seed)
        : key_(crypto::LamportKeyPair::generate(provisioning_seed)) {}

    [[nodiscard]] const crypto::LamportPublicKey& public_key() const {
        return key_.public_key();
    }

    /// Sign an image; a key signs exactly one image (one-time property).
    [[nodiscard]] std::optional<SignedImage> sign(std::string name,
                                                  std::vector<std::uint8_t> bytes);

private:
    crypto::LamportKeyPair key_;
};

/// Verifier side (lives in the trusted boot path / SPM).
class ImageVerifier {
public:
    /// Enroll a trusted public key. Returns its fingerprint.
    crypto::Digest enroll(const crypto::LamportPublicKey& pub);

    [[nodiscard]] bool verify(const SignedImage& image) const;

    /// Measurement of the enrolled key set, to be extended into the boot
    /// chain ("included as part of the trusted boot sequence").
    [[nodiscard]] crypto::Digest keystore_measurement() const;

    [[nodiscard]] std::size_t enrolled() const { return keys_.size(); }

private:
    std::map<std::string, crypto::LamportPublicKey> keys_;  // hex fp -> key
};

}  // namespace hpcsec::core
