#include "crypto/lamport.h"

namespace hpcsec::crypto {

Digest LamportPublicKey::fingerprint() const {
    Sha256 h;
    for (const auto& pair : hashes) {
        h.update(pair[0]);
        h.update(pair[1]);
    }
    return h.finalize();
}

LamportKeyPair LamportKeyPair::generate(std::span<const std::uint8_t> seed) {
    LamportKeyPair kp;
    for (std::size_t bit = 0; bit < kLamportBits; ++bit) {
        for (std::size_t v = 0; v < 2; ++v) {
            const std::uint8_t label[3] = {
                static_cast<std::uint8_t>(bit & 0xff),
                static_cast<std::uint8_t>(bit >> 8),
                static_cast<std::uint8_t>(v)};
            std::array<std::uint8_t, 3> msg{label[0], label[1], label[2]};
            kp.secret_[bit][v] = hmac_sha256(seed, msg);
            kp.pub_.hashes[bit][v] = Sha256::hash(kp.secret_[bit][v]);
        }
    }
    return kp;
}

std::optional<LamportSignature> LamportKeyPair::sign(const Digest& message_digest) {
    if (used_) return std::nullopt;
    used_ = true;
    LamportSignature sig;
    for (std::size_t bit = 0; bit < kLamportBits; ++bit) {
        const std::size_t byte = bit / 8;
        const int shift = static_cast<int>(bit % 8);
        const std::size_t v = (message_digest[byte] >> shift) & 1u;
        sig.preimages[bit] = secret_[bit][v];
    }
    return sig;
}

bool lamport_verify(const LamportPublicKey& pub, const Digest& message_digest,
                    const LamportSignature& sig) {
    std::uint8_t bad = 0;
    for (std::size_t bit = 0; bit < kLamportBits; ++bit) {
        const std::size_t byte = bit / 8;
        const int shift = static_cast<int>(bit % 8);
        const std::size_t v = (message_digest[byte] >> shift) & 1u;
        const Digest h = Sha256::hash(sig.preimages[bit]);
        bad |= digest_equal(h, pub.hashes[bit][v]) ? 0 : 1;
    }
    return bad == 0;
}

}  // namespace hpcsec::crypto
