// Lamport one-time signatures over SHA-256.
//
// The paper's future-work section (§VII) calls for Hafnium to "verify VM
// signatures using a known public key that is included as part of the
// trusted boot sequence". A hash-based one-time signature gives us a real,
// self-contained signature primitive without a bignum library: the signer
// holds 2x256 random 32-byte preimages, the public key is their hashes, and
// a signature reveals one preimage per message-digest bit.
//
// One-time caveat: a key pair must sign exactly one message. That matches
// the VM-image use case (one key per image, provisioned at build time).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "crypto/sha256.h"

namespace hpcsec::crypto {

inline constexpr std::size_t kLamportBits = 256;

struct LamportPublicKey {
    // hashes[bit][value] for value in {0,1}
    std::array<std::array<Digest, 2>, kLamportBits> hashes{};

    /// Fingerprint used to embed the key into the trusted boot measurements.
    [[nodiscard]] Digest fingerprint() const;

    bool operator==(const LamportPublicKey&) const = default;
};

struct LamportSignature {
    std::array<Digest, kLamportBits> preimages{};
};

class LamportKeyPair {
public:
    /// Deterministically derive a key pair from a seed (e.g. provisioning
    /// secret). Each preimage is an HMAC of the seed and its index.
    static LamportKeyPair generate(std::span<const std::uint8_t> seed);

    [[nodiscard]] const LamportPublicKey& public_key() const { return pub_; }

    /// Sign a message digest. Returns nullopt if this key already signed
    /// (one-time property enforced).
    std::optional<LamportSignature> sign(const Digest& message_digest);

    [[nodiscard]] bool used() const { return used_; }

private:
    LamportKeyPair() = default;

    std::array<std::array<Digest, 2>, kLamportBits> secret_{};
    LamportPublicKey pub_{};
    bool used_ = false;
};

/// Verify a signature over a message digest against a public key.
[[nodiscard]] bool lamport_verify(const LamportPublicKey& pub,
                                  const Digest& message_digest,
                                  const LamportSignature& sig);

}  // namespace hpcsec::crypto
