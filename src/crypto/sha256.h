// SHA-256 (FIPS 180-4), self-contained implementation.
//
// Used by the measured-boot attestation chain and the Lamport signature
// scheme. Verified against the FIPS test vectors in tests/test_crypto.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace hpcsec::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
public:
    Sha256();

    void update(std::span<const std::uint8_t> data);
    void update(std::string_view text);

    /// Finalize and return the digest. The object must not be reused
    /// afterwards without calling reset().
    Digest finalize();

    void reset();

    /// One-shot helpers.
    static Digest hash(std::span<const std::uint8_t> data);
    static Digest hash(std::string_view text);

private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 8> h_{};
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffered_ = 0;
    std::uint64_t total_bits_ = 0;
};

/// Hex-encode a digest (lowercase).
[[nodiscard]] std::string to_hex(const Digest& d);

/// Constant-time digest comparison.
[[nodiscard]] bool digest_equal(const Digest& a, const Digest& b);

/// HMAC-SHA256 (RFC 2104).
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

/// Convenience: bytes view of a trivially-copyable object.
template <typename T>
[[nodiscard]] std::span<const std::uint8_t> bytes_of(const T& obj) {
    return {reinterpret_cast<const std::uint8_t*>(&obj), sizeof(T)};
}

}  // namespace hpcsec::crypto
