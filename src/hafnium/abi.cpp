#include "hafnium/abi.h"

#include "hafnium/spm.h"

namespace hpcsec::hf {

using hafnium::Call;
using hafnium::Spm;
namespace abi = hafnium::abi;

HfResult version(Spm& spm, arch::CoreId core, arch::VmId caller) {
    return spm.hypercall(core, caller, Call::kVersion, abi::Empty{}.encode());
}

HfResult vm_get_count(Spm& spm, arch::CoreId core, arch::VmId caller) {
    return spm.hypercall(core, caller, Call::kVmGetCount, abi::Empty{}.encode());
}

HfResult vcpu_get_count(Spm& spm, arch::CoreId core, arch::VmId caller,
                        arch::VmId target) {
    return spm.hypercall(core, caller, Call::kVcpuGetCount,
                         abi::VcpuGetCountArgs{target}.encode());
}

HfResult vm_get_info(Spm& spm, arch::CoreId core, arch::VmId caller,
                     arch::VmId target) {
    return spm.hypercall(core, caller, Call::kVmGetInfo,
                         abi::VmGetInfoArgs{target}.encode());
}

HfResult vcpu_run(Spm& spm, arch::CoreId core, arch::VmId caller,
                  arch::VmId target, int vcpu) {
    return spm.hypercall(core, caller, Call::kVcpuRun,
                         abi::VcpuRunArgs{target, vcpu}.encode());
}

HfResult vm_configure(Spm& spm, arch::CoreId core, arch::VmId caller,
                      arch::IpaAddr send_ipa, arch::IpaAddr recv_ipa) {
    return spm.hypercall(core, caller, Call::kVmConfigure,
                         abi::VmConfigureArgs{send_ipa, recv_ipa}.encode());
}

HfResult msg_send(Spm& spm, arch::CoreId core, arch::VmId caller, arch::VmId to,
                  std::uint32_t size) {
    return spm.hypercall(core, caller, Call::kMsgSend,
                         abi::MsgSendArgs{to, size}.encode());
}

HfResult msg_wait(Spm& spm, arch::CoreId core, arch::VmId caller) {
    return spm.hypercall(core, caller, Call::kMsgWait, abi::Empty{}.encode());
}

HfResult yield(Spm& spm, arch::CoreId core, arch::VmId caller) {
    return spm.hypercall(core, caller, Call::kYield, abi::Empty{}.encode());
}

HfResult rx_release(Spm& spm, arch::CoreId core, arch::VmId caller) {
    return spm.hypercall(core, caller, Call::kRxRelease, abi::Empty{}.encode());
}

HfResult mem_share(Spm& spm, arch::CoreId core, arch::VmId caller, arch::VmId to,
                   arch::IpaAddr owner_ipa, std::uint64_t pages,
                   arch::IpaAddr borrower_ipa) {
    return spm.hypercall(
        core, caller, Call::kMemShare,
        abi::MemShareArgs{to, owner_ipa, pages, borrower_ipa}.encode());
}

HfResult mem_lend(Spm& spm, arch::CoreId core, arch::VmId caller, arch::VmId to,
                  arch::IpaAddr owner_ipa, std::uint64_t pages,
                  arch::IpaAddr borrower_ipa) {
    return spm.hypercall(
        core, caller, Call::kMemLend,
        abi::MemLendArgs{to, owner_ipa, pages, borrower_ipa}.encode());
}

HfResult mem_donate(Spm& spm, arch::CoreId core, arch::VmId caller, arch::VmId to,
                    arch::IpaAddr owner_ipa, std::uint64_t pages,
                    arch::IpaAddr borrower_ipa) {
    return spm.hypercall(
        core, caller, Call::kMemDonate,
        abi::MemDonateArgs{to, owner_ipa, pages, borrower_ipa}.encode());
}

HfResult mem_reclaim(Spm& spm, arch::CoreId core, arch::VmId caller,
                     arch::VmId borrower, arch::IpaAddr owner_ipa) {
    return spm.hypercall(core, caller, Call::kMemReclaim,
                         abi::MemReclaimArgs{borrower, owner_ipa}.encode());
}

HfResult interrupt_enable(Spm& spm, arch::CoreId core, arch::VmId caller,
                          int virq, int vcpu) {
    return spm.hypercall(core, caller, Call::kInterruptEnable,
                         abi::InterruptEnableArgs{virq, vcpu}.encode());
}

HfResult interrupt_get(Spm& spm, arch::CoreId core, arch::VmId caller) {
    return spm.hypercall(core, caller, Call::kInterruptGet, abi::Empty{}.encode());
}

HfResult interrupt_inject(Spm& spm, arch::CoreId core, arch::VmId caller,
                          arch::VmId target, int vcpu, int virq) {
    return spm.hypercall(core, caller, Call::kInterruptInject,
                         abi::InterruptInjectArgs{target, vcpu, virq}.encode());
}

HfResult vtimer_set(Spm& spm, arch::CoreId core, arch::VmId caller,
                    sim::SimTime deadline, int vcpu) {
    return spm.hypercall(core, caller, Call::kVtimerSet,
                         abi::VtimerSetArgs{deadline, vcpu}.encode());
}

HfResult vtimer_cancel(Spm& spm, arch::CoreId core, arch::VmId caller, int vcpu) {
    return spm.hypercall(core, caller, Call::kVtimerCancel,
                         abi::VtimerCancelArgs{vcpu}.encode());
}

}  // namespace hpcsec::hf
