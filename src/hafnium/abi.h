// Typed hypercall ABI: one request struct per hafnium::Call, plus the
// `hf::` wrapper functions every caller outside src/hafnium uses.
//
// The structs are the single source of truth for register marshalling.
// encode() packs a request into the four call registers (HfArgs a0..a3);
// decode() is the gate-side inverse and *range-checks every narrowing*:
// a register value that does not fit the typed field (e.g. a VM id above
// 0xffff, a VCPU index above INT32_MAX) fails the decode and the gate
// answers kInvalid without the handler ever seeing the call. Registers a
// call does not use are ignored on decode, like a real SMCCC interface.
//
// See docs/ABI.md for the call table and how to add a call.
#pragma once

#include <cstdint>

#include "arch/types.h"
#include "hafnium/hypercall.h"
#include "hafnium/manifest.h"
#include "sim/time.h"

namespace hpcsec::hafnium::abi {

namespace detail {
inline bool fits_vm_id(std::uint64_t v) { return v <= 0xffffu; }
inline bool fits_i32(std::uint64_t v) { return v <= 0x7fffffffu; }
inline bool fits_u32(std::uint64_t v) { return v <= 0xffffffffu; }
}  // namespace detail

/// kVersion, kVmGetCount, kMsgWait, kYield, kRxRelease, kInterruptGet.
struct Empty {
    [[nodiscard]] HfArgs encode() const { return {}; }
    static bool decode(const HfArgs&, Empty&) { return true; }
};

/// kVcpuGetCount, kVmGetInfo: a0 = target VM id.
struct VmTarget {
    arch::VmId vm = 0;

    [[nodiscard]] HfArgs encode() const { return {vm, 0, 0, 0}; }
    static bool decode(const HfArgs& a, VmTarget& out) {
        if (!detail::fits_vm_id(a.a0)) return false;
        out.vm = static_cast<arch::VmId>(a.a0);
        return true;
    }
};
using VcpuGetCountArgs = VmTarget;
using VmGetInfoArgs = VmTarget;

/// kVcpuRun: a0 = target VM id, a1 = VCPU index.
struct VcpuRunArgs {
    arch::VmId vm = 0;
    std::int32_t vcpu = 0;

    [[nodiscard]] HfArgs encode() const {
        return {vm, static_cast<std::uint64_t>(vcpu), 0, 0};
    }
    static bool decode(const HfArgs& a, VcpuRunArgs& out) {
        if (!detail::fits_vm_id(a.a0) || !detail::fits_i32(a.a1)) return false;
        out.vm = static_cast<arch::VmId>(a.a0);
        out.vcpu = static_cast<std::int32_t>(a.a1);
        return true;
    }
};

/// kVmConfigure: a0 = send page IPA, a1 = recv page IPA.
struct VmConfigureArgs {
    arch::IpaAddr send_ipa = 0;
    arch::IpaAddr recv_ipa = 0;

    [[nodiscard]] HfArgs encode() const { return {send_ipa, recv_ipa, 0, 0}; }
    static bool decode(const HfArgs& a, VmConfigureArgs& out) {
        out.send_ipa = a.a0;
        out.recv_ipa = a.a1;
        return true;
    }
};

/// kMsgSend: a0 = destination VM id, a1 = payload size in bytes.
struct MsgSendArgs {
    arch::VmId to = 0;
    std::uint32_t size = 0;

    [[nodiscard]] HfArgs encode() const { return {to, size, 0, 0}; }
    static bool decode(const HfArgs& a, MsgSendArgs& out) {
        if (!detail::fits_vm_id(a.a0) || !detail::fits_u32(a.a1)) return false;
        out.to = static_cast<arch::VmId>(a.a0);
        out.size = static_cast<std::uint32_t>(a.a1);
        return true;
    }
};

/// kMemShare / kMemLend / kMemDonate: a0 = borrower VM id, a1 = owner IPA,
/// a2 = page count, a3 = IPA in the borrower's address space.
struct MemShareArgs {
    arch::VmId to = 0;
    arch::IpaAddr owner_ipa = 0;
    std::uint64_t pages = 0;
    arch::IpaAddr borrower_ipa = 0;

    [[nodiscard]] HfArgs encode() const {
        return {to, owner_ipa, pages, borrower_ipa};
    }
    static bool decode(const HfArgs& a, MemShareArgs& out) {
        if (!detail::fits_vm_id(a.a0)) return false;
        out.to = static_cast<arch::VmId>(a.a0);
        out.owner_ipa = a.a1;
        out.pages = a.a2;
        out.borrower_ipa = a.a3;
        return true;
    }
};
using MemLendArgs = MemShareArgs;
using MemDonateArgs = MemShareArgs;

/// kMemReclaim: a0 = borrower VM id, a1 = owner IPA of the grant.
struct MemReclaimArgs {
    arch::VmId borrower = 0;
    arch::IpaAddr owner_ipa = 0;

    [[nodiscard]] HfArgs encode() const { return {borrower, owner_ipa, 0, 0}; }
    static bool decode(const HfArgs& a, MemReclaimArgs& out) {
        if (!detail::fits_vm_id(a.a0)) return false;
        out.borrower = static_cast<arch::VmId>(a.a0);
        out.owner_ipa = a.a1;
        return true;
    }
};

/// kInterruptEnable: a0 = virq id, a1 = VCPU index (used when the caller is
/// not currently running on the calling core).
struct InterruptEnableArgs {
    std::int32_t virq = 0;
    std::int32_t vcpu = 0;

    [[nodiscard]] HfArgs encode() const {
        return {static_cast<std::uint64_t>(virq), static_cast<std::uint64_t>(vcpu),
                0, 0};
    }
    static bool decode(const HfArgs& a, InterruptEnableArgs& out) {
        if (!detail::fits_i32(a.a0) || !detail::fits_i32(a.a1)) return false;
        out.virq = static_cast<std::int32_t>(a.a0);
        out.vcpu = static_cast<std::int32_t>(a.a1);
        return true;
    }
};

/// kInterruptInject: a0 = target VM id, a1 = VCPU index, a2 = virq id.
struct InterruptInjectArgs {
    arch::VmId vm = 0;
    std::int32_t vcpu = 0;
    std::int32_t virq = 0;

    [[nodiscard]] HfArgs encode() const {
        return {vm, static_cast<std::uint64_t>(vcpu),
                static_cast<std::uint64_t>(virq), 0};
    }
    static bool decode(const HfArgs& a, InterruptInjectArgs& out) {
        if (!detail::fits_vm_id(a.a0) || !detail::fits_i32(a.a1) ||
            !detail::fits_i32(a.a2)) {
            return false;
        }
        out.vm = static_cast<arch::VmId>(a.a0);
        out.vcpu = static_cast<std::int32_t>(a.a1);
        out.virq = static_cast<std::int32_t>(a.a2);
        return true;
    }
};

/// kVtimerSet: a0 = absolute deadline (sim time), a1 = VCPU index.
struct VtimerSetArgs {
    sim::SimTime deadline = 0;
    std::int32_t vcpu = 0;

    [[nodiscard]] HfArgs encode() const {
        return {deadline, static_cast<std::uint64_t>(vcpu), 0, 0};
    }
    static bool decode(const HfArgs& a, VtimerSetArgs& out) {
        if (!detail::fits_i32(a.a1)) return false;
        out.deadline = a.a0;
        out.vcpu = static_cast<std::int32_t>(a.a1);
        return true;
    }
};

/// kVtimerCancel: a1 = VCPU index (a0 unused, mirrors kVtimerSet's layout).
struct VtimerCancelArgs {
    std::int32_t vcpu = 0;

    [[nodiscard]] HfArgs encode() const {
        return {0, static_cast<std::uint64_t>(vcpu), 0, 0};
    }
    static bool decode(const HfArgs& a, VtimerCancelArgs& out) {
        if (!detail::fits_i32(a.a1)) return false;
        out.vcpu = static_cast<std::int32_t>(a.a1);
        return true;
    }
};

/// Decoded kVmGetInfo result word (role | world | vcpus).
struct VmInfo {
    VmRole role = VmRole::kSecondary;
    arch::World world = arch::World::kNonSecure;
    int vcpus = 0;
};

[[nodiscard]] inline std::int64_t encode_vm_info(VmRole role, arch::World world,
                                                 int vcpus) {
    return (static_cast<std::int64_t>(role) << 32) |
           (static_cast<std::int64_t>(world) << 16) | vcpus;
}

[[nodiscard]] inline VmInfo decode_vm_info(std::int64_t value) {
    VmInfo info;
    info.role = static_cast<VmRole>((value >> 32) & 0xffff);
    info.world = static_cast<arch::World>((value >> 16) & 0xffff);
    info.vcpus = static_cast<int>(value & 0xffff);
    return info;
}

}  // namespace hpcsec::hafnium::abi

namespace hpcsec::hafnium {
class Spm;
}  // namespace hpcsec::hafnium

// Typed call wrappers: the only way code outside src/hafnium issues
// hypercalls. Each wrapper packs its request through the abi:: struct and
// goes through the full gate (privilege check, interceptors, stats), so a
// wrapper call is indistinguishable from a guest-marshalled one.
namespace hpcsec::hf {

using hafnium::HfResult;

HfResult version(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller);
HfResult vm_get_count(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller);
HfResult vcpu_get_count(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller,
                        arch::VmId target);
HfResult vm_get_info(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller,
                     arch::VmId target);
HfResult vcpu_run(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller,
                  arch::VmId target, int vcpu);
HfResult vm_configure(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller,
                      arch::IpaAddr send_ipa, arch::IpaAddr recv_ipa);
HfResult msg_send(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller,
                  arch::VmId to, std::uint32_t size);
HfResult msg_wait(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller);
HfResult yield(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller);
HfResult rx_release(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller);
HfResult mem_share(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller,
                   arch::VmId to, arch::IpaAddr owner_ipa, std::uint64_t pages,
                   arch::IpaAddr borrower_ipa);
HfResult mem_lend(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller,
                  arch::VmId to, arch::IpaAddr owner_ipa, std::uint64_t pages,
                  arch::IpaAddr borrower_ipa);
HfResult mem_donate(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller,
                    arch::VmId to, arch::IpaAddr owner_ipa, std::uint64_t pages,
                    arch::IpaAddr borrower_ipa);
HfResult mem_reclaim(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller,
                     arch::VmId borrower, arch::IpaAddr owner_ipa);
HfResult interrupt_enable(hafnium::Spm& spm, arch::CoreId core,
                          arch::VmId caller, int virq, int vcpu);
HfResult interrupt_get(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller);
HfResult interrupt_inject(hafnium::Spm& spm, arch::CoreId core,
                          arch::VmId caller, arch::VmId target, int vcpu,
                          int virq);
HfResult vtimer_set(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller,
                    sim::SimTime deadline, int vcpu);
HfResult vtimer_cancel(hafnium::Spm& spm, arch::CoreId core, arch::VmId caller,
                       int vcpu);

}  // namespace hpcsec::hf
