#include "hafnium/hypercall.h"

namespace hpcsec::hafnium {

std::string to_string(Call c) {
    switch (c) {
        case Call::kVersion: return "HF_VERSION";
        case Call::kVmGetCount: return "HF_VM_GET_COUNT";
        case Call::kVcpuGetCount: return "HF_VCPU_GET_COUNT";
        case Call::kVmGetInfo: return "HF_VM_GET_INFO";
        case Call::kVcpuRun: return "HF_VCPU_RUN";
        case Call::kVmConfigure: return "HF_VM_CONFIGURE";
        case Call::kMsgSend: return "FFA_MSG_SEND";
        case Call::kMsgWait: return "FFA_MSG_WAIT";
        case Call::kRxRelease: return "FFA_RX_RELEASE";
        case Call::kYield: return "FFA_YIELD";
        case Call::kMemShare: return "FFA_MEM_SHARE";
        case Call::kMemReclaim: return "FFA_MEM_RECLAIM";
        case Call::kMemLend: return "FFA_MEM_LEND";
        case Call::kMemDonate: return "FFA_MEM_DONATE";
        case Call::kInterruptEnable: return "HF_INTERRUPT_ENABLE";
        case Call::kInterruptGet: return "HF_INTERRUPT_GET";
        case Call::kInterruptInject: return "HF_INTERRUPT_INJECT";
        case Call::kVtimerSet: return "HF_VTIMER_SET";
        case Call::kVtimerCancel: return "HF_VTIMER_CANCEL";
    }
    return "?";
}

std::string to_string(HfError e) {
    switch (e) {
        case HfError::kOk: return "ok";
        case HfError::kDenied: return "denied";
        case HfError::kInvalid: return "invalid";
        case HfError::kBusy: return "busy";
        case HfError::kNotFound: return "not-found";
        case HfError::kInterrupted: return "interrupted";
        case HfError::kRetry: return "retry";
    }
    return "?";
}

}  // namespace hpcsec::hafnium
