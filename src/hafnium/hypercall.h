// Hypercall ABI between EL1 kernels and the EL2 SPM.
//
// A blend of Hafnium's legacy hf_* interface and the FF-A calls it evolved
// into — the subset the paper's system exercises. Crucially, the interface
// is *core local* ("Hafnium's hypercall interface is core local … it is not
// possible for Linux to invoke a VM context switch on another core"): every
// call carries the calling core, and HF_VCPU_RUN only ever switches the
// calling core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "arch/types.h"

namespace hpcsec::hafnium {

enum class Call : std::uint32_t {
    kVersion = 0x01,
    kVmGetCount = 0x02,
    kVcpuGetCount = 0x03,
    kVmGetInfo = 0x04,      ///< role/world/memory of a VM id
    kVcpuRun = 0x10,        ///< primary only; switches *this* core to a VCPU
    kVmConfigure = 0x11,    ///< set mailbox send/recv IPA pages
    kMsgSend = 0x12,        ///< copy send buffer to target's recv buffer
    kMsgWait = 0x13,        ///< block until a message arrives
    kYield = 0x14,          ///< give the slice back to the scheduler
    kRxRelease = 0x15,      ///< mark the recv buffer consumed (FFA_RX_RELEASE)
    kMemShare = 0x20,       ///< share own pages with another VM (both keep access)
    kMemReclaim = 0x21,     ///< revoke a previous share/lend
    kMemLend = 0x22,        ///< lend pages: borrower gains, owner loses access
    kMemDonate = 0x23,      ///< transfer ownership permanently
    kInterruptEnable = 0x30,///< para-virtual GIC: enable a virtual IRQ
    kInterruptGet = 0x31,   ///< ack the next pending virtual IRQ
    kInterruptInject = 0x32,///< primary/super-secondary: inject into a VM
    kVtimerSet = 0x33,      ///< arm the virtual timer (secondaries)
    kVtimerCancel = 0x34,
};

[[nodiscard]] std::string to_string(Call c);

/// Number of distinct hypercalls in the ABI. Must match the number of Call
/// enumerators and the number of rows in Spm::call_table() (tools/lint.py
/// cross-checks both).
inline constexpr std::size_t kCallCount = 19;

/// One past the highest call number; sizes the O(1) dispatch lookup table.
inline constexpr std::uint32_t kCallNumberSpace = 0x35;

enum class HfError : std::int32_t {
    kOk = 0,
    kDenied = -1,        ///< caller lacks the privilege (role check failed)
    kInvalid = -2,       ///< bad arguments
    kBusy = -3,          ///< target mailbox full
    kNotFound = -4,      ///< no such VM/VCPU
    kInterrupted = -5,   ///< wait aborted
    kRetry = -6,         ///< target VCPU not in a runnable state
};

[[nodiscard]] std::string to_string(HfError e);

struct HfResult {
    HfError error = HfError::kOk;
    std::int64_t value = 0;

    [[nodiscard]] bool ok() const { return error == HfError::kOk; }
};

/// Arguments bundle (registers x1..x4 of the call).
struct HfArgs {
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
    std::uint64_t a2 = 0;
    std::uint64_t a3 = 0;
};

}  // namespace hpcsec::hafnium
