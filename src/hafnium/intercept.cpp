#include "hafnium/intercept.h"

#include "arch/platform.h"
#include "hafnium/spm.h"

namespace hpcsec::hafnium {

// --------------------------------------------------------------------------
// TelemetryInterceptor
// --------------------------------------------------------------------------

TelemetryInterceptor::TelemetryInterceptor(arch::Platform& platform)
    : HypercallInterceptor(Stage::kTelemetry), platform_(&platform) {}

std::optional<HfResult> TelemetryInterceptor::before(const HypercallSite& site) {
    platform_->recorder().instant(platform_->engine().now(),
                                  obs::EventType::kHypercall, site.core,
                                  static_cast<std::int64_t>(site.call),
                                  site.caller);
    return std::nullopt;
}

// --------------------------------------------------------------------------
// CallMetricsInterceptor
// --------------------------------------------------------------------------

CallMetricsInterceptor::CallMetricsInterceptor(obs::MetricsRegistry& metrics)
    : HypercallInterceptor(Stage::kMetrics), metrics_(&metrics) {
    by_number_.resize(kCallNumberSpace);
    for (const auto& row : Spm::call_table()) {
        const auto n = static_cast<std::size_t>(row.call);
        by_number_[n].calls = metrics.counter("hf.call." + to_string(row.call));
        by_number_[n].errors =
            metrics.counter("hf.call_err." + to_string(row.call));
    }
}

void CallMetricsInterceptor::after(const HypercallSite& site,
                                   const HfResult& result) {
    const auto n = static_cast<std::size_t>(site.call);
    if (n >= by_number_.size()) return;  // unknown call number: no counter
    metrics_->add(by_number_[n].calls, 1);
    if (!result.ok()) metrics_->add(by_number_[n].errors, 1);
}

// --------------------------------------------------------------------------
// ProfilingInterceptor
// --------------------------------------------------------------------------

ProfilingInterceptor::ProfilingInterceptor(arch::Platform& platform)
    : HypercallInterceptor(Stage::kMetrics), platform_(&platform) {}

void ProfilingInterceptor::after(const HypercallSite& site, const HfResult&) {
    const Spm::CallDescriptor* desc = Spm::descriptor(site.call);
    const sim::Cycles cost =
        desc != nullptr && desc->cost == Spm::CallCost::kHandlerCharged
            ? platform_->perf().hypercall_roundtrip
            : 0;
    obs::CycleProfiler& prof = platform_->profiler();
    prof.charge_call(site.core, static_cast<unsigned>(site.call), cost);
    // One hop through the interceptor pipeline per call: counted so the
    // observation plane's own activity shows up in the tree (0 cycles —
    // interceptors never charge modeled time).
    prof.count(site.core, obs::ProfPath::kInterceptor);
}

// --------------------------------------------------------------------------
// HypercallLog
// --------------------------------------------------------------------------

void HypercallLog::start_record() {
    mode_ = Mode::kRecord;
    tape_.clear();
    cursor_ = 0;
    mismatches_ = 0;
    first_divergence_.clear();
}

void HypercallLog::start_verify(std::vector<Entry> tape) {
    mode_ = Mode::kVerify;
    tape_ = std::move(tape);
    cursor_ = 0;
    mismatches_ = 0;
    first_divergence_.clear();
}

namespace {

bool entries_equal(const HypercallLog::Entry& e, const HypercallSite& site,
                   const HfResult& result) {
    return e.core == site.core && e.caller == site.caller &&
           e.call == site.call && e.args.a0 == site.args.a0 &&
           e.args.a1 == site.args.a1 && e.args.a2 == site.args.a2 &&
           e.args.a3 == site.args.a3 && e.result.error == result.error &&
           e.result.value == result.value;
}

}  // namespace

void HypercallLog::after(const HypercallSite& site, const HfResult& result) {
    switch (mode_) {
        case Mode::kIdle:
            return;
        case Mode::kRecord:
            tape_.push_back({site.core, site.caller, site.call, site.args, result});
            return;
        case Mode::kVerify: {
            if (cursor_ >= tape_.size()) {
                ++mismatches_;
                if (first_divergence_.empty()) {
                    first_divergence_ = "call #" + std::to_string(cursor_) +
                                        " past end of tape: " +
                                        to_string(site.call);
                }
                ++cursor_;
                return;
            }
            const Entry& expect = tape_[cursor_];
            if (!entries_equal(expect, site, result)) {
                ++mismatches_;
                if (first_divergence_.empty()) {
                    first_divergence_ =
                        "call #" + std::to_string(cursor_) + ": expected " +
                        to_string(expect.call) + " from vm " +
                        std::to_string(expect.caller) + " -> " +
                        to_string(expect.result.error) + ", observed " +
                        to_string(site.call) + " from vm " +
                        std::to_string(site.caller) + " -> " +
                        to_string(result.error);
                }
            }
            ++cursor_;
            return;
        }
    }
}

}  // namespace hpcsec::hafnium
