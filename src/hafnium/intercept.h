// Composable hypercall interceptor chain.
//
// PRs 1-3 each grew a bespoke hook on the hypercall path: the obs recorder
// instant was hard-coded in Spm::hypercall_impl, the check auditor hung off
// an AuditItf pointer, and chaos injection worked around the gate entirely.
// This file unifies them: an interceptor registers at a fixed Stage and the
// gate runs the chain around every call. The empty chain costs one
// predicted branch in Spm::hypercall — the same discipline as the recorder.
//
// Ordering contract (documented in docs/ABI.md):
//   before() hooks run in ascending Stage order *before* dispatch;
//   after() hooks run in descending Stage order *after* dispatch (onion).
// A before() hook may short-circuit by returning a result: the handler and
// any later before() hooks are skipped, but every after() hook still runs
// and sees the injected result.
//
// Interceptors must not charge modeled cycles: observation and fault
// injection are control-plane concerns, and figure benches must produce
// bit-identical results with any observation chain attached.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/types.h"
#include "hafnium/hypercall.h"
#include "obs/metrics.h"

namespace hpcsec::arch {
class Platform;
}  // namespace hpcsec::arch

namespace hpcsec::hafnium {

/// Everything an interceptor can see about one hypercall.
struct HypercallSite {
    arch::CoreId core;
    arch::VmId caller;
    Call call;
    const HfArgs& args;
};

class HypercallInterceptor {
public:
    /// Fixed chain positions. Attaching sorts by stage; two interceptors at
    /// the same stage keep their attach order.
    enum class Stage : std::uint8_t {
        kTelemetry = 0,  ///< obs trace events (first in, last out)
        kMetrics = 1,    ///< per-call counters
        kAudit = 2,      ///< invariant checking (check::Auditor)
        kChaos = 3,      ///< fault injection (resil::CallFaultInjector)
        kReplay = 4,     ///< record/replay log (innermost: sees what the
                         ///< handler actually saw, including injected faults)
    };

    explicit HypercallInterceptor(Stage stage) : stage_(stage) {}
    virtual ~HypercallInterceptor() = default;

    [[nodiscard]] Stage stage() const { return stage_; }

    /// Runs before dispatch. Returning a result short-circuits the call.
    virtual std::optional<HfResult> before(const HypercallSite&) {
        return std::nullopt;
    }
    /// Runs after dispatch (or after a short-circuit) with the final result.
    virtual void after(const HypercallSite&, const HfResult&) {}

private:
    Stage stage_;
};

/// Stage kTelemetry: emits the obs kHypercall instant for every call (the
/// event Spm::hypercall_impl used to emit inline). core::Node attaches one
/// at boot, so CLI traces are unchanged; a bare Spm has no chain and pays
/// nothing.
class TelemetryInterceptor final : public HypercallInterceptor {
public:
    explicit TelemetryInterceptor(arch::Platform& platform);
    std::optional<HfResult> before(const HypercallSite& site) override;

private:
    arch::Platform* platform_;
};

/// Stage kMetrics: per-call invocation and error counters, registered as
/// "hf.call.<NAME>" / "hf.call_err.<NAME>". Opt-in (NodeConfig::call_metrics)
/// because 2 x kCallCount counters per node is snapshot noise most runs
/// don't want.
class CallMetricsInterceptor final : public HypercallInterceptor {
public:
    explicit CallMetricsInterceptor(obs::MetricsRegistry& metrics);
    void after(const HypercallSite& site, const HfResult& result) override;

private:
    struct PerCall {
        obs::MetricsRegistry::Handle calls = 0;
        obs::MetricsRegistry::Handle errors = 0;
    };
    obs::MetricsRegistry* metrics_;
    std::vector<PerCall> by_number_;  ///< indexed by raw call number
};

/// Stage kMetrics: mirrors each call's modeled cost into the cycle
/// profiler's per-call attribution. The dispatch table's CallCost rule
/// decides the charge — kHandlerCharged calls cost a hypercall round trip
/// at the gate, kFree calls are counted with zero cycles (their handlers
/// charge nothing). Mirrors only: per the interceptor contract this never
/// charges the Executor, so attaching it cannot perturb modeled results.
/// core::Node attaches one when the platform profiler is enabled.
class ProfilingInterceptor final : public HypercallInterceptor {
public:
    explicit ProfilingInterceptor(arch::Platform& platform);
    void after(const HypercallSite& site, const HfResult& result) override;

private:
    arch::Platform* platform_;
};

/// Stage kReplay: records the complete hypercall sequence, or verifies a
/// live run against a previously recorded tape. Sits innermost so it sees
/// exactly what the guest saw — including faults injected by outer stages.
/// Divergence is counted, never thrown: replay is a diagnosis tool.
class HypercallLog final : public HypercallInterceptor {
public:
    struct Entry {
        arch::CoreId core = 0;
        arch::VmId caller = 0;
        Call call = Call::kVersion;
        HfArgs args;
        HfResult result;
    };

    HypercallLog() : HypercallInterceptor(Stage::kReplay) {}

    /// Start recording into an internal tape (clears any previous state).
    void start_record();
    /// Verify subsequent calls against `tape`, in order.
    void start_verify(std::vector<Entry> tape);

    [[nodiscard]] const std::vector<Entry>& tape() const { return tape_; }
    [[nodiscard]] std::size_t cursor() const { return cursor_; }
    [[nodiscard]] std::uint64_t mismatches() const { return mismatches_; }
    /// Human-readable description of the first divergence ("" when clean).
    [[nodiscard]] const std::string& first_divergence() const {
        return first_divergence_;
    }
    /// True after a verify pass consumed the whole tape without divergence.
    [[nodiscard]] bool verified() const {
        return mode_ == Mode::kVerify && mismatches_ == 0 &&
               cursor_ == tape_.size();
    }

    void after(const HypercallSite& site, const HfResult& result) override;

private:
    enum class Mode : std::uint8_t { kIdle, kRecord, kVerify };

    Mode mode_ = Mode::kIdle;
    std::vector<Entry> tape_;
    std::size_t cursor_ = 0;
    std::uint64_t mismatches_ = 0;
    std::string first_divergence_;
};

}  // namespace hpcsec::hafnium
