// Contracts between the SPM and the kernels it hosts.
//
// The SPM owns every core's exception vector (EL2). Kernels never see raw
// hardware interrupts; they receive upcalls through these interfaces, the
// model analogue of Hafnium returning from HF_VCPU_RUN or injecting a
// virtual interrupt.
#pragma once

#include <cstdint>

#include "arch/types.h"
#include "hafnium/vm.h"
#include "sim/time.h"

namespace hpcsec::hafnium {

/// Implemented by the primary VM's kernel (Kitten or Linux model).
class PrimaryOsItf {
public:
    virtual ~PrimaryOsItf() = default;

    /// A physical interrupt was routed to the primary on `core`. The EL2
    /// trap and world-switch costs have already been charged; the kernel
    /// must charge its own handler cost and then redispatch the core
    /// (usually by calling HF_VCPU_RUN again).
    virtual void on_interrupt(arch::CoreId core, int irq) = 0;

    /// The VCPU the primary ran on `core` exited back to the scheduler.
    virtual void on_vcpu_exit(arch::CoreId core, Vcpu& vcpu, ExitReason reason) = 0;

    /// A blocked VCPU became runnable again (message/interrupt/barrier).
    /// May be raised from another core's context.
    virtual void on_vcpu_wake(Vcpu& vcpu) = 0;

    /// One of the primary's own tasks (control task, background kthread)
    /// ran out of work on `core`.
    virtual void on_task_complete(arch::CoreId core, arch::Runnable* task) {
        (void)core;
        (void)task;
    }

    /// A message landed in the primary's mailbox (sender given).
    virtual void on_message(arch::VmId from) { (void)from; }
};

/// Virtual interrupt id used to notify a VM of a mailbox message
/// (Hafnium's HF_MAILBOX_READABLE_INTID analogue; sits in the SGI range).
inline constexpr int kMessageVirq = 5;

/// Implemented by secondary (and super-secondary) guest kernels.
class GuestOsItf {
public:
    virtual ~GuestOsItf() = default;

    /// A virtual interrupt was injected while the VCPU is being resumed.
    /// Returns the guest handler's service cost in cycles; the SPM charges
    /// it to the core before guest work continues.
    virtual sim::Cycles on_virq(Vcpu& vcpu, int virq) = 0;

    /// The guest context on `vcpu` ran out of work (its thread completed or
    /// blocked). Returns the runnable to continue with, or nullptr if the
    /// VCPU should block (FFA_MSG_WAIT semantics).
    virtual arch::Runnable* on_idle(Vcpu& vcpu) = 0;
};

}  // namespace hpcsec::hafnium
