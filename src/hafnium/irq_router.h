// Interrupt routing policy between the primary and super-secondary VMs.
//
// The paper: "it is necessary to provide some form of selective IRQ routing
// where timer interrupts are delivered to the primary VM, while device IRQs
// are instead routed to the super-secondary. This is an area of future work
// for us, and our current approach is to continue to route all interrupts
// to the primary VM which is then responsible for forwarding any device IRQ
// on to the super-secondary."
//
// Both policies are implemented here so the ablation bench can quantify the
// forwarding overhead the future-work design would remove.
#pragma once

#include <cstdint>

#include "arch/irq_controller.h"
#include "arch/types.h"

namespace hpcsec::hafnium {

enum class IrqRoutingPolicy : std::uint8_t {
    /// Paper's current approach: everything traps to the primary; the
    /// primary forwards device IRQs to the super-secondary via injection.
    kAllToPrimary,
    /// Paper's future work: the SPM routes device SPIs straight to the
    /// super-secondary; timer PPIs still go to the primary.
    kSelective,
};

enum class IrqDestination : std::uint8_t {
    kPrimary,
    kSuperSecondaryDirect,   ///< inject into super-secondary, skip primary
    kHypervisorInternal,     ///< e.g. a secondary's virtual timer
};

struct IrqRouter {
    IrqRoutingPolicy policy = IrqRoutingPolicy::kAllToPrimary;
    bool has_super_secondary = false;

    /// Classify a physical interrupt. `virt_timer_for_running_guest` is true
    /// when the IRQ is the virtual-timer PPI of the guest currently on core.
    [[nodiscard]] IrqDestination route(int irq,
                                       bool virt_timer_for_running_guest) const {
        if (virt_timer_for_running_guest) return IrqDestination::kHypervisorInternal;
        const bool device_spi = irq >= arch::kExternalBase;
        if (device_spi && has_super_secondary &&
            policy == IrqRoutingPolicy::kSelective) {
            return IrqDestination::kSuperSecondaryDirect;
        }
        return IrqDestination::kPrimary;
    }
};

}  // namespace hpcsec::hafnium
