#include "hafnium/manifest.h"

#include <set>

namespace hpcsec::hafnium {

std::string to_string(VmRole role) {
    switch (role) {
        case VmRole::kPrimary: return "primary";
        case VmRole::kSuperSecondary: return "super-secondary";
        case VmRole::kSecondary: return "secondary";
    }
    return "?";
}

std::vector<std::string> Manifest::validate() const {
    std::vector<std::string> problems;
    int primaries = 0;
    int supers = 0;
    std::set<std::string> names;
    for (const auto& vm : vms) {
        if (vm.name.empty()) problems.push_back("VM with empty name");
        if (!names.insert(vm.name).second) {
            problems.push_back("duplicate VM name: " + vm.name);
        }
        if (vm.role == VmRole::kPrimary) ++primaries;
        if (vm.role == VmRole::kSuperSecondary) ++supers;
        if (vm.mem_bytes == 0 || (vm.mem_bytes & arch::kPageMask) != 0) {
            problems.push_back(vm.name + ": memory size must be non-zero pages");
        }
        if (vm.vcpu_count <= 0) {
            problems.push_back(vm.name + ": needs at least one VCPU");
        }
        if (vm.role == VmRole::kSecondary && !vm.devices.empty()) {
            problems.push_back(vm.name + ": secondaries cannot own devices");
        }
        if (vm.role == VmRole::kPrimary && vm.world == arch::World::kSecure) {
            problems.push_back(vm.name + ": the primary VM must be non-secure");
        }
    }
    if (primaries != 1) problems.push_back("manifest needs exactly one primary VM");
    if (supers > 1) problems.push_back("at most one super-secondary VM allowed");
    return problems;
}

const VmSpec* Manifest::primary() const {
    for (const auto& vm : vms) {
        if (vm.role == VmRole::kPrimary) return &vm;
    }
    return nullptr;
}

const VmSpec* Manifest::super_secondary() const {
    for (const auto& vm : vms) {
        if (vm.role == VmRole::kSuperSecondary) return &vm;
    }
    return nullptr;
}

arch::DtNode Manifest::to_devicetree() const {
    arch::DtNode root("hypervisor");
    root.set("compatible", std::string("hafnium,hafnium"));
    int index = 1;
    for (const auto& vm : vms) {
        auto& node = root.add_child("vm" + std::to_string(index++));
        node.set("debug_name", vm.name);
        node.set("role", to_string(vm.role));
        node.set("mem_size", vm.mem_bytes);
        node.set("vcpu_count", static_cast<std::uint64_t>(vm.vcpu_count));
        node.set("world", std::string(vm.world == arch::World::kSecure ? "secure"
                                                                       : "non-secure"));
        if (!vm.devices.empty()) {
            std::string devs;
            for (const auto& d : vm.devices) {
                if (!devs.empty()) devs += ",";
                devs += d;
            }
            node.set("devices", devs);
        }
        node.set("image_hash", crypto::to_hex(vm.image_hash()));
    }
    return root;
}

Manifest Manifest::from_devicetree(const arch::DtNode& node) {
    Manifest m;
    for (const auto& child : node.children()) {
        VmSpec spec;
        spec.name = child->get_string("debug_name").value_or(child->name());
        const std::string role = child->get_string("role").value_or("secondary");
        if (role == "primary") {
            spec.role = VmRole::kPrimary;
        } else if (role == "super-secondary") {
            spec.role = VmRole::kSuperSecondary;
        } else {
            spec.role = VmRole::kSecondary;
        }
        spec.mem_bytes = child->get_u64("mem_size").value_or(0);
        spec.vcpu_count = static_cast<int>(child->get_u64("vcpu_count").value_or(1));
        spec.world = child->get_string("world").value_or("non-secure") == "secure"
                         ? arch::World::kSecure
                         : arch::World::kNonSecure;
        if (const auto devs = child->get_string("devices")) {
            std::size_t pos = 0;
            while (pos <= devs->size()) {
                const std::size_t comma = devs->find(',', pos);
                const std::string d = comma == std::string::npos
                                          ? devs->substr(pos)
                                          : devs->substr(pos, comma - pos);
                if (!d.empty()) spec.devices.push_back(d);
                if (comma == std::string::npos) break;
                pos = comma + 1;
            }
        }
        m.vms.push_back(std::move(spec));
    }
    return m;
}

}  // namespace hpcsec::hafnium
