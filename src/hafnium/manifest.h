// Boot-time partition manifest.
//
// Hafnium requires "that secure partitions and VM images be defined at boot
// time" — this manifest is the model of that contract. It is handed to the
// SPM before any OS runs; the SPM carves memory, builds stage-2 tables and
// creates VCPUs from it. The manifest can round-trip through the device-tree
// representation, mirroring Hafnium's FDT manifest format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/devicetree.h"
#include "arch/types.h"
#include "crypto/sha256.h"

namespace hpcsec::hafnium {

enum class VmRole : std::uint8_t {
    kPrimary,         ///< the scheduling VM (Kitten or Linux)
    kSuperSecondary,  ///< semi-privileged login/IO VM (this paper's extension)
    kSecondary,       ///< fully isolated compute VM
};

[[nodiscard]] std::string to_string(VmRole role);

/// One VM image entry in the boot manifest.
struct VmSpec {
    std::string name;
    VmRole role = VmRole::kSecondary;
    std::uint64_t mem_bytes = 64ull << 20;
    int vcpu_count = 1;
    arch::World world = arch::World::kNonSecure;
    /// MMIO device names (from the platform config) assigned to this VM.
    /// Only the primary or super-secondary may own devices.
    std::vector<std::string> devices;
    /// Opaque kernel-image bytes; hashed into the attestation chain and
    /// checked against `expected_hash` when present (tamper detection).
    std::vector<std::uint8_t> image;
    std::optional<crypto::Digest> expected_hash;

    [[nodiscard]] crypto::Digest image_hash() const {
        return crypto::Sha256::hash(std::span<const std::uint8_t>(image));
    }
};

struct Manifest {
    std::vector<VmSpec> vms;

    /// Structural validation. Returns a list of human-readable problems;
    /// empty means OK. Rules modeled on Hafnium plus this paper's extension:
    ///  - exactly one primary;
    ///  - at most one super-secondary;
    ///  - plain secondaries own no devices;
    ///  - every VM needs memory and at least one VCPU;
    ///  - names are unique and non-empty.
    [[nodiscard]] std::vector<std::string> validate() const;

    [[nodiscard]] const VmSpec* primary() const;
    [[nodiscard]] const VmSpec* super_secondary() const;

    /// Device-tree encoding ("hypervisor" node with per-VM children), the
    /// shape Hafnium's FDT manifest uses.
    [[nodiscard]] arch::DtNode to_devicetree() const;
    static Manifest from_devicetree(const arch::DtNode& node);
};

}  // namespace hpcsec::hafnium
