#include "hafnium/spm.h"

#include <algorithm>
#include <stdexcept>

namespace hpcsec::hafnium {

namespace {
constexpr std::uint32_t kSpmVersion = (1u << 16) | 1u;  // 1.1
}

Spm::Spm(arch::Platform& platform, Manifest manifest, IrqRoutingPolicy policy)
    : platform_(&platform),
      manifest_(std::move(manifest)),
      grants_(sim::ArenaAllocator<ShareGrant>(platform.arena())) {
    router_.policy = policy;
    router_.has_super_secondary = manifest_.super_secondary() != nullptr;
    vcpu_on_core_.assign(static_cast<std::size_t>(platform.ncores()), nullptr);
    vcpu_run_hist_ = platform.metrics().histogram("hf.vcpu_run_us");
}

void Spm::boot() {
    if (booted_) throw std::logic_error("Spm::boot: already booted");
    const auto problems = manifest_.validate();
    if (!problems.empty()) {
        std::string msg = "Spm::boot: invalid manifest:";
        for (const auto& p : problems) msg += "\n  " + p;
        throw std::runtime_error(msg);
    }

    // Assign IDs: primary = 1; super-secondary (if any) = 2 (the paper adds
    // "an additional hardcoded VM ID for the super-secondary"); secondaries
    // count up after that.
    std::vector<const VmSpec*> ordered;
    ordered.push_back(manifest_.primary());
    if (const VmSpec* ss = manifest_.super_secondary()) ordered.push_back(ss);
    for (const auto& spec : manifest_.vms) {
        if (spec.role == VmRole::kSecondary) ordered.push_back(&spec);
    }

    auto& mem = platform_->mem();
    for (std::size_t i = 0; i < ordered.size(); ++i) {
        const VmSpec& spec = *ordered[i];
        // Measured boot: hash every image before it is given memory.
        measurements_.emplace_back(spec.name, spec.image_hash());
        if (spec.expected_hash &&
            !crypto::digest_equal(*spec.expected_hash, spec.image_hash())) {
            throw std::runtime_error("Spm::boot: image hash mismatch for " + spec.name);
        }

        Vm* vm = platform_->arena().make<Vm>(static_cast<arch::VmId>(i + 1), spec,
                                             platform_->arena(),
                                             platform_->isa_ops().stage2);
        const std::uint64_t nframes = spec.mem_bytes >> arch::kPageShift;
        vm->mem_base = mem.alloc_frames(nframes, vm->id(), spec.world);
        // Secondaries get a fully virtualized view (RAM at IPA 0); the
        // primary and super-secondary are identity-mapped so device MMIO
        // (below the DRAM base) fits into their address space.
        vm->ipa_base = spec.role == VmRole::kSecondary ? 0 : vm->mem_base;
        vm->stage2().map(vm->ipa_base, vm->mem_base, spec.mem_bytes, arch::kPermRWX,
                         spec.world == arch::World::kSecure);
        // Default incremental VCPU spread across cores.
        for (int v = 0; v < vm->vcpu_count(); ++v) {
            vm->vcpu(v).assigned_core = v % platform_->ncores();
            vm->vcpu(v).set_audit(audit_);  // auditor may pre-date boot
        }
        vms_.push_back(vm);
    }

    // MMIO: "Hafnium already maps all the MMIO regions to the primary VM, so
    // this simply needs to be changed to map those regions into the
    // super-secondary instead."
    Vm* io_owner = super_secondary() != nullptr ? super_secondary() : &primary_vm();
    for (const auto& dev : platform_->config().devices) {
        io_owner->stage2().map(dev.base, dev.base, dev.size, arch::kPermRW);
        device_map_[io_owner->id()].push_back(dev.name);
        if (dev.spi >= 0) {
            platform_->irqc().enable_irq(dev.spi);
            platform_->irqc().set_external_target(dev.spi, 0);
        }
    }
    // Explicit per-VM device requests from the manifest are honored for the
    // primary/super-secondary as well (validated by Manifest::validate).
    const arch::IrqLayout& layout = platform_->isa_ops().irq;
    platform_->irqc().enable_irq(layout.phys_timer);
    platform_->irqc().enable_irq(layout.virt_timer);
    for (int s = 0; s < 16; ++s) platform_->irqc().enable_irq(s);  // IPIs

    // Take over the exception vectors and power every core on. On either
    // ISA the hypervisor boots before any OS: cores enter at the hypervisor
    // privilege level (ARM EL2 / RISC-V HS).
    for (int c = 0; c < platform_->ncores(); ++c) {
        arch::Core& core = platform_->core(c);
        core.set_irq_handler([this, c](int irq) { handle_phys_irq(c, irq); });
        core.exec().set_on_complete(
            [this, c](arch::Runnable* r) { on_core_idle(c, r); });
        const arch::IsaOps& ops = platform_->isa_ops();
        platform_->monitor().cpu_on(
            c, [&ops](arch::Core& k) { k.set_el(ops.hyp_level); });
        core.set_el(ops.guest_kernel_level);  // drop to the primary VM's kernel
        set_core_context(c, &primary_vm());
        core.set_irq_masked(false);
    }
    booted_ = true;
}

arch::VmId Spm::create_vm(const VmSpec& spec) {
    if (!booted_) throw std::logic_error("Spm::create_vm: boot first");
    if (spec.role != VmRole::kSecondary) {
        throw std::invalid_argument(
            "Spm::create_vm: only secondary partitions can be created at runtime");
    }
    if (spec.name.empty() || find_vm(spec.name) != nullptr) {
        throw std::invalid_argument("Spm::create_vm: bad or duplicate name");
    }
    if (spec.mem_bytes == 0 || (spec.mem_bytes & arch::kPageMask) != 0 ||
        spec.vcpu_count <= 0) {
        throw std::invalid_argument("Spm::create_vm: bad memory/vcpu shape");
    }
    if (spec.expected_hash &&
        !crypto::digest_equal(*spec.expected_hash, spec.image_hash())) {
        throw std::runtime_error("Spm::create_vm: image hash mismatch");
    }

    Vm* vm = platform_->arena().make<Vm>(static_cast<arch::VmId>(vms_.size() + 1),
                                         spec, platform_->arena(),
                                         platform_->isa_ops().stage2);
    const std::uint64_t nframes = spec.mem_bytes >> arch::kPageShift;
    vm->mem_base = platform_->mem().alloc_frames(nframes, vm->id(), spec.world);
    vm->ipa_base = 0;
    vm->stage2().map(0, vm->mem_base, spec.mem_bytes, arch::kPermRWX,
                     spec.world == arch::World::kSecure);
    for (int v = 0; v < vm->vcpu_count(); ++v) {
        vm->vcpu(v).assigned_core = v % platform_->ncores();
        vm->vcpu(v).set_audit(audit_);
    }
    measurements_.emplace_back(spec.name, spec.image_hash());
    vms_.push_back(vm);
    // Under integrity protection every partition's stage-2 table frames are
    // tagged from the moment they exist — restarted VMs included.
    if (critical_armed_) {
        protect_new_region("stage2:" + spec.name, 1);
    }
    return vms_.back()->id();
}

void Spm::destroy_vm(arch::VmId id) {
    Vm& victim = vm(id);
    if (victim.destroyed) return;
    if (victim.role() != VmRole::kSecondary) {
        throw std::invalid_argument("Spm::destroy_vm: only secondaries");
    }
    for (int v = 0; v < victim.vcpu_count(); ++v) {
        if (victim.vcpu(v).state() == VcpuState::kRunning) {
            throw std::logic_error("Spm::destroy_vm: VCPU still running");
        }
    }
    // Revoke every grant the victim participates in (as owner or borrower).
    for (auto it = grants_.begin(); it != grants_.end();) {
        if (it->owner == id || it->borrower == id) {
            vm(it->borrower).stage2().unmap(it->borrower_ipa,
                                            it->pages * arch::kPageSize);
            if (it->exclusive && it->borrower == id) {
                // The borrower of a lend died: the owner regains access.
                vm(it->owner).stage2().protect(
                    it->owner_ipa, it->pages * arch::kPageSize, arch::kPermRWX);
            }
            it = grants_.erase(it);
            ++stats_.mem_revokes;
        } else {
            ++it;
        }
    }
    // Detach guest contexts, drop translations, scrub and free the frames.
    for (int v = 0; v < victim.vcpu_count(); ++v) {
        set_guest_context(victim.vcpu(v), nullptr);
        victim.vcpu(v).set_state(VcpuState::kAborted);
    }
    guest_os_.erase(id);
    // Unmap the victim's *entire* stage-2, not just the boot window:
    // donated-in windows live outside [ipa_base, ipa_base + mem_bytes) and
    // would otherwise survive as dangling translations onto freed frames.
    std::vector<std::pair<arch::IpaAddr, std::uint64_t>> mappings;
    victim.stage2().for_each_mapping(
        [&mappings](const arch::PageTable::MappingView& m) {
            mappings.emplace_back(m.in_base, m.size);
        });
    for (const auto& [in_base, size] : mappings) {
        victim.stage2().unmap(in_base, size);
    }
    // Reclaim by *current ownership*, not the boot window. FFA donations
    // move frames both ways after boot: frames donated away belong to
    // another live partition now (scrubbing/freeing them here was the
    // lifecycle twin of the reclaim-under-grant donate bug), and frames
    // donated in would otherwise leak. Grants were revoked above, so no
    // borrower window outlives the reclaim.
    for (const arch::PhysAddr frame : platform_->mem().frames_owned_by(id)) {
        // Sparse store: clearing word 0 of each frame suffices for the
        // model (reads of freed memory return zero anyway after reuse).
        platform_->mem().write64(frame, 0, victim.world());
        platform_->mem().free_frames(frame, 1);
    }
    if (critical_armed_) release_critical("stage2:" + victim.name());
    victim.destroyed = true;
}

Vm& Spm::vm(arch::VmId id) {
    if (id == 0 || id > vms_.size()) throw std::out_of_range("Spm::vm: bad id");
    return *vms_[id - 1];
}

Vm* Spm::find_vm(const std::string& name) {
    // Destroyed partitions keep their slot (ids are never reused) but no
    // longer resolve by name, so a restarted VM can claim the same name.
    for (auto& vm : vms_) {
        if (!vm->destroyed && vm->name() == name) return vm;
    }
    return nullptr;
}

GuestOsItf* Spm::find_guest_os(arch::VmId id) {
    auto it = guest_os_.find(id);
    return it == guest_os_.end() ? nullptr : it->second;
}

Vm* Spm::super_secondary() {
    for (auto& vm : vms_) {
        if (vm->role() == VmRole::kSuperSecondary) return vm;
    }
    return nullptr;
}

void Spm::attach_guest(arch::VmId id, GuestOsItf* os) { guest_os_[id] = os; }

void Spm::attach_audit(VcpuAuditSink* audit) {
    audit_ = audit;
    for (auto& vm : vms_) {
        for (int v = 0; v < vm->vcpu_count(); ++v) vm->vcpu(v).set_audit(audit);
    }
}

void Spm::set_guest_context(Vcpu& vcpu, arch::Runnable* ctx) {
    if (vcpu.guest_context != nullptr) ctx_to_vcpu_.erase(vcpu.guest_context);
    vcpu.guest_context = ctx;
    if (ctx != nullptr) ctx_to_vcpu_[ctx] = &vcpu;
}

void Spm::make_vcpu_ready(Vcpu& vcpu) {
    if (vcpu.state() == VcpuState::kOff || vcpu.state() == VcpuState::kBlocked) {
        vcpu.set_state(VcpuState::kReady);
    }
}

void Spm::wake_vcpu(Vcpu& vcpu) {
    if (vcpu.state() != VcpuState::kBlocked) return;
    vcpu.set_state(VcpuState::kReady);
    if (primary_os_ != nullptr) primary_os_->on_vcpu_wake(vcpu);
}

void Spm::force_stop_vcpu(Vcpu& vcpu, bool notify_primary) {
    if (vcpu.state() != VcpuState::kRunning || vcpu.running_core < 0) return;
    const arch::CoreId core = vcpu.running_core;
    arch::Core& c = platform_->core(core);
    c.exec().preempt();
    c.timer().cancel(arch::TimerChannel::kVirt);
    vcpu.set_state(VcpuState::kReady);
    vcpu.running_core = -1;
    vcpu_on_core_[static_cast<std::size_t>(core)] = nullptr;
    set_core_context(core, &primary_vm());
    if (notify_primary && primary_os_ != nullptr) {
        primary_os_->on_vcpu_exit(core, vcpu, ExitReason::kYield);
    }
}

bool Spm::guest_access(Vcpu& vcpu, arch::IpaAddr ipa, arch::Access access) {
    Vm& vm = vcpu.vm();
    const arch::WalkResult w = vm.stage2().walk(ipa);
    bool ok = w.fault == arch::FaultKind::kNone && perms_allow(w.perms, access);
    if (ok) {
        ok = platform_->mem().check_physical_access(w.out, vm.world()) ==
             arch::FaultKind::kNone;
    }
    // DFITAGCHECK last: a stage-2 walk that *resolves* to a tagged frame is
    // the integrity violation (the walk succeeding is what makes it an
    // exploit rather than a plain fault).
    if (ok) ok = tag_check(vm.id(), ipa, w.out, access);
    if (!ok) abort_vcpu(vcpu);
    return ok;
}

void Spm::abort_vcpu(Vcpu& vcpu) {
    ++stats_.guest_aborts;
    if (vcpu.state() == VcpuState::kRunning && vcpu.running_core >= 0) {
        const arch::CoreId core = vcpu.running_core;
        platform_->core(core).exec().preempt();
        exit_vcpu(core, vcpu, ExitReason::kAborted,
                  platform_->perf().trap_to_hyp + platform_->perf().world_switch);
        return;
    }
    vcpu.set_state(VcpuState::kAborted);
    vcpu.running_core = -1;
}

Vcpu* Spm::running_vcpu_on(arch::CoreId core) {
    return vcpu_on_core_[static_cast<std::size_t>(core)];
}

void Spm::set_core_context(arch::CoreId core, Vm* vmctx) {
    arch::Core& c = platform_->core(core);
    platform_->profiler().set_context(core,
                                      vmctx != nullptr ? vmctx->id() : 0);
    if (vmctx == nullptr) {
        c.mmu().set_context(nullptr, nullptr, 0, 0, arch::World::kNonSecure);
        return;
    }
    // Guests run with an identity stage-1 (their kernels' idmap); isolation
    // comes from stage 2.
    c.mmu().set_context(nullptr, &vmctx->stage2(), vmctx->id(), 0, vmctx->world());
    c.set_world(vmctx->world());
}

// --------------------------------------------------------------------------
// Interrupt path (EL2 vector)
// --------------------------------------------------------------------------

void Spm::handle_phys_irq(arch::CoreId core, int irq) {
    const arch::PerfModel& perf = platform_->perf();
    arch::Core& c = platform_->core(core);
    arch::Executor& ex = c.exec();
    Vcpu* rv = running_vcpu_on(core);

    const int virt_timer = platform_->isa_ops().irq.virt_timer;
    const bool guest_vtimer = irq == virt_timer && rv != nullptr;
    const IrqDestination dest = router_.route(irq, guest_vtimer);
    platform_->recorder().instant(platform_->engine().now(),
                                  obs::EventType::kIrqDeliver, core, irq,
                                  static_cast<std::int64_t>(dest));

    switch (dest) {
        case IrqDestination::kHypervisorInternal: {
            // The running guest's virtual timer: handled entirely at EL2 +
            // an injection. No world switch to the primary.
            ++stats_.vtimer_fires;
            ex.preempt();
            rv->vtimer_armed = false;
            GuestOsItf* gos = find_guest_os(rv->vm().id());
            // A guest without a personality (detached mid-teardown) just
            // swallows the tick.
            const sim::Cycles service =
                gos != nullptr ? gos->on_virq(*rv, virt_timer) : 0;
            ++rv->injected_virqs;
            ++stats_.virq_injections;
            platform_->recorder().instant(platform_->engine().now(),
                                          obs::EventType::kVirqInject, core,
                                          virt_timer, rv->vm().id());
            platform_->profiler().charge(core, obs::ProfPath::kTimerTick,
                                         perf.trap_to_hyp + perf.virq_inject +
                                             service);
            ex.charge(perf.trap_to_hyp + perf.virq_inject + service);
            ex.begin(rv->guest_context);
            // The handler may have re-armed the vtimer via hypercall.
            if (rv->vtimer_armed) {
                c.timer().set_deadline(arch::TimerChannel::kVirt, rv->vtimer_deadline);
            }
            break;
        }
        case IrqDestination::kSuperSecondaryDirect: {
            // Future-work selective routing: hand the device IRQ straight to
            // the super-secondary, bypassing the primary.
            Vm* ss = super_secondary();
            if (ss == nullptr) {
                // Selective routing configured without a super-secondary:
                // fall back to the primary rather than crashing the node.
                if (primary_os_ != nullptr) primary_os_->on_interrupt(core, irq);
                break;
            }
            Vcpu& target = ss->vcpu(0);
            arch::Runnable* interrupted = ex.preempt();
            ex.charge(perf.trap_to_hyp + perf.virq_inject);
            platform_->profiler().charge(core, obs::ProfPath::kIrqRoute,
                                         perf.trap_to_hyp + perf.virq_inject);
            if (running_vcpu_on(core) == &target || interrupted == target.guest_context) {
                // SS is on this very core: deliver inline.
                GuestOsItf* gos = find_guest_os(ss->id());
                const sim::Cycles service =
                    gos != nullptr ? gos->on_virq(target, irq) : 0;
                ex.charge(service);
                platform_->profiler().charge(core, obs::ProfPath::kIrqRoute,
                                             service);
                ++stats_.virq_injections;
                platform_->recorder().instant(platform_->engine().now(),
                                              obs::EventType::kVirqInject, core,
                                              irq, ss->id());
            } else {
                inject_virq(target, irq);
            }
            if (interrupted != nullptr) ex.begin(interrupted);
            ++stats_.forwarded_device_irqs;
            break;
        }
        case IrqDestination::kPrimary: {
            if (rv != nullptr) {
                // Full VM exit: guest out, primary in.
                ex.preempt();
                exit_vcpu(core, *rv, ExitReason::kPreempted,
                          perf.trap_to_hyp + perf.world_switch);
            } else {
                arch::Runnable* interrupted = ex.preempt();
                ex.charge(perf.trap_to_hyp + perf.irq_entry_exit_kernel);
                platform_->profiler().charge(
                    core, obs::ProfPath::kIrqRoute,
                    perf.trap_to_hyp + perf.irq_entry_exit_kernel);
                // The primary's own task was interrupted; its scheduler will
                // redispatch it (we leave it detached, matching a real IRQ
                // frame on the kernel stack).
                (void)interrupted;
            }
            if (primary_os_ != nullptr) primary_os_->on_interrupt(core, irq);
            break;
        }
    }
    platform_->irqc().eoi(core, irq);
}

// --------------------------------------------------------------------------
// VCPU entry/exit
// --------------------------------------------------------------------------

void Spm::enter_vcpu(arch::CoreId core, Vcpu& vcpu, sim::Cycles base_cost) {
    const arch::PerfModel& perf = platform_->perf();
    arch::Core& c = platform_->core(core);
    arch::Executor& ex = c.exec();

    vcpu.set_state(VcpuState::kRunning);
    vcpu.running_core = core;
    vcpu.last_enter = platform_->engine().now();
    ++vcpu.runs;
    vcpu_on_core_[static_cast<std::size_t>(core)] = &vcpu;
    set_core_context(core, &vcpu.vm());

    const sim::Cycles drain_cost = drain_virqs(vcpu);
    ex.charge(base_cost + drain_cost);
    auto& prof = platform_->profiler();
    prof.charge(core, obs::ProfPath::kWorldSwitch, base_cost);
    prof.charge(core, obs::ProfPath::kVgicRoute, drain_cost);
    ++stats_.world_switches;
    if (vcpu.guest_context == nullptr) {
        // Interrupt-service-only entry: the guest handled its virqs and has
        // no thread to run; it executes WFI and control returns to the
        // primary as a blocked exit.
        exit_vcpu(core, vcpu, ExitReason::kBlocked,
                  perf.hypercall_roundtrip + perf.world_switch);
        return;
    }
    ex.add_refill_transient(vcpu.guest_context->profile(),
                            arch::TranslationMode::kTwoStage);
    ex.begin(vcpu.guest_context);
    if (vcpu.vtimer_armed) {
        c.timer().set_deadline(arch::TimerChannel::kVirt, vcpu.vtimer_deadline);
    }
}

void Spm::exit_vcpu(arch::CoreId core, Vcpu& vcpu, ExitReason reason,
                    sim::Cycles cost) {
    arch::Core& c = platform_->core(core);
    arch::Executor& ex = c.exec();

    const sim::SimTime now = platform_->engine().now();
    auto& rec = platform_->recorder();
    rec.span(vcpu.last_enter, now, obs::EventType::kVmRun, core, vcpu.vm().id(),
             vcpu.index(), static_cast<std::int64_t>(reason));
    rec.instant(now, obs::EventType::kVmExit, core, vcpu.vm().id(),
                vcpu.index(), static_cast<std::int64_t>(reason));
    platform_->metrics().observe(
        vcpu_run_hist_, platform_->engine().clock().to_micros(now - vcpu.last_enter));

    switch (reason) {
        case ExitReason::kPreempted:
            vcpu.set_state(VcpuState::kReady);
            ++vcpu.preemptions;
            ++stats_.exits_preempted;
            break;
        case ExitReason::kYield:
            vcpu.set_state(VcpuState::kReady);
            ++stats_.exits_yield;
            break;
        case ExitReason::kBlocked:
            vcpu.set_state(VcpuState::kBlocked);
            ++stats_.exits_blocked;
            break;
        case ExitReason::kAborted:
            vcpu.set_state(VcpuState::kAborted);
            ++stats_.exits_aborted;
            break;
    }
    vcpu.running_core = -1;
    vcpu_on_core_[static_cast<std::size_t>(core)] = nullptr;
    c.timer().cancel(arch::TimerChannel::kVirt);  // deadline kept in vcpu state
    // Exit cost is the hypervisor working on the exiting guest's behalf:
    // attribute before the context flips back to the primary.
    platform_->profiler().charge(core, obs::ProfPath::kWorldSwitch, cost);
    set_core_context(core, &primary_vm());
    ex.charge(cost);
    ++stats_.vm_exits;
    ++stats_.world_switches;
    if (primary_os_ != nullptr) primary_os_->on_vcpu_exit(core, vcpu, reason);
}

sim::Cycles Spm::drain_virqs(Vcpu& vcpu) {
    const arch::PerfModel& perf = platform_->perf();
    GuestOsItf* gos = nullptr;
    const auto it = guest_os_.find(vcpu.vm().id());
    if (it != guest_os_.end()) gos = it->second;
    sim::Cycles cost = 0;
    while (auto next = vcpu.vgic.next_deliverable()) {
        vcpu.vgic.pending.erase(*next);
        ++vcpu.injected_virqs;
        ++stats_.virq_injections;
        platform_->recorder().instant(platform_->engine().now(),
                                      obs::EventType::kVirqInject,
                                      vcpu.running_core, *next, vcpu.vm().id());
        cost += perf.virq_inject;
        if (gos != nullptr) cost += gos->on_virq(vcpu, *next);
    }
    return cost;
}

void Spm::inject_virq(Vcpu& vcpu, int virq) {
    vcpu.vgic.pending.insert(virq);
    if (vcpu.state() == VcpuState::kBlocked) {
        wake_vcpu(vcpu);
    } else if (vcpu.state() == VcpuState::kReady && vcpu.running_core < 0 &&
               primary_os_ != nullptr) {
        // The primary's proxy thread may have parked after an earlier
        // empty-run; nudge the scheduler so the virq is serviced.
        primary_os_->on_vcpu_wake(vcpu);
    }
    // If the vcpu is running on another core right now, the virq is
    // delivered at its next entry (our model does not interrupt remote
    // cores for injection, matching Hafnium's core-local design).
}

void Spm::on_core_idle(arch::CoreId core, arch::Runnable* finished) {
    const arch::PerfModel& perf = platform_->perf();
    const auto it = ctx_to_vcpu_.find(finished);
    if (it == ctx_to_vcpu_.end()) {
        // A primary-VM task finished.
        if (primary_os_ != nullptr) primary_os_->on_task_complete(core, finished);
        return;
    }
    Vcpu& vcpu = *it->second;
    if (vcpu.running_core != core) return;  // stale completion
    GuestOsItf* gos = find_guest_os(vcpu.vm().id());
    arch::Runnable* next = gos != nullptr ? gos->on_idle(vcpu) : nullptr;
    if (next != nullptr) {
        arch::Executor& ex = platform_->core(core).exec();
        // Continuing the same context (e.g. it transitioned to a busy-wait
        // spin) costs nothing; switching guest threads costs a switch.
        if (next != finished) {
            set_guest_context(vcpu, next);
            ex.charge(perf.thread_switch);
        }
        ex.begin(next);
        return;
    }
    // Guest has nothing to run: VCPU blocks (FFA_MSG_WAIT semantics) and
    // control returns to the primary scheduler.
    exit_vcpu(core, vcpu, ExitReason::kBlocked,
              perf.hypercall_roundtrip + perf.world_switch);
}

// --------------------------------------------------------------------------
// Hypercalls
// --------------------------------------------------------------------------

// The dispatch table: one declarative row per call — privilege mask, cost
// rule, typed-decode thunk, handler. Adding a call is one row here plus a
// handler; tools/lint.py fails the build unless every Call enumerator has
// a row.
const std::array<Spm::CallDescriptor, kCallCount>& Spm::call_table() {
    static const std::array<CallDescriptor, kCallCount> kCallTable{{
        {Call::kVersion, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::Empty, &Spm::on_version>},
        {Call::kVmGetCount, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::Empty, &Spm::on_vm_get_count>},
        {Call::kVcpuGetCount, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::VcpuGetCountArgs, &Spm::on_vcpu_get_count>},
        {Call::kVmGetInfo, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::VmGetInfoArgs, &Spm::on_vm_get_info>},
        // "These privileges include … the ability to assume control over
        // CPU cores" — primary only; the super-secondary is explicitly
        // denied.
        {Call::kVcpuRun, kRolePrimary, CallCost::kHandlerCharged,
         &Spm::invoke_thunk<abi::VcpuRunArgs, &Spm::on_vcpu_run>},
        {Call::kVmConfigure, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::VmConfigureArgs, &Spm::on_vm_configure>},
        {Call::kMsgSend, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::MsgSendArgs, &Spm::on_msg_send>},
        {Call::kMsgWait, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::Empty, &Spm::on_msg_wait>},
        {Call::kYield, kAnyRole, CallCost::kHandlerCharged,
         &Spm::invoke_thunk<abi::Empty, &Spm::on_yield>},
        {Call::kRxRelease, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::Empty, &Spm::on_rx_release>},
        {Call::kMemShare, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::MemShareArgs, &Spm::on_mem_share>},
        {Call::kMemReclaim, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::MemReclaimArgs, &Spm::on_mem_reclaim>},
        {Call::kMemLend, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::MemLendArgs, &Spm::on_mem_lend>},
        {Call::kMemDonate, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::MemDonateArgs, &Spm::on_mem_donate>},
        {Call::kInterruptEnable, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::InterruptEnableArgs, &Spm::on_interrupt_enable>},
        {Call::kInterruptGet, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::Empty, &Spm::on_interrupt_get>},
        // Primary (or super-secondary forwarding path) only.
        {Call::kInterruptInject, kRolePrimary | kRoleSuperSecondary,
         CallCost::kFree,
         &Spm::invoke_thunk<abi::InterruptInjectArgs, &Spm::on_interrupt_inject>},
        {Call::kVtimerSet, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::VtimerSetArgs, &Spm::on_vtimer_set>},
        {Call::kVtimerCancel, kAnyRole, CallCost::kFree,
         &Spm::invoke_thunk<abi::VtimerCancelArgs, &Spm::on_vtimer_cancel>},
    }};
    return kCallTable;
}

namespace {

// O(1) number -> row lookup, built once from the table.
std::array<const Spm::CallDescriptor*, kCallNumberSpace> build_call_index() {
    std::array<const Spm::CallDescriptor*, kCallNumberSpace> index{};
    for (const auto& row : Spm::call_table()) {
        index[static_cast<std::size_t>(row.call)] = &row;
    }
    return index;
}

const std::array<const Spm::CallDescriptor*, kCallNumberSpace> kCallIndex =
    build_call_index();

}  // namespace

const Spm::CallDescriptor* Spm::descriptor(Call call) {
    const auto number = static_cast<std::uint32_t>(call);
    return number < kCallNumberSpace ? kCallIndex[number] : nullptr;
}

HfResult Spm::dispatch(arch::CoreId core, arch::VmId caller, Call call,
                       const HfArgs& args) {
    const CallDescriptor* desc = descriptor(call);
    if (desc == nullptr) {
        // Unknown call number: malformed guest input stops at the gate.
        ++stats_.invalid_calls;
        return {HfError::kInvalid, 0};
    }
    if (caller == 0 || caller > vms_.size()) return {HfError::kNotFound, 0};
    const auto role_bit = static_cast<std::uint8_t>(
        1u << static_cast<unsigned>(vms_[caller - 1]->role()));
    if ((desc->privilege & role_bit) == 0) {
        ++stats_.denied_calls;
        return {HfError::kDenied, 0};
    }
    return desc->invoke(*this, core, caller, args);
}

HfResult Spm::hypercall(arch::CoreId core, arch::VmId caller, Call call, HfArgs args) {
    ++stats_.hypercalls;
    if (interceptors_.empty()) [[likely]] {
        return dispatch(core, caller, call, args);
    }
    return hypercall_intercepted(core, caller, call, args);
}

HfResult Spm::hypercall_intercepted(arch::CoreId core, arch::VmId caller,
                                    Call call, const HfArgs& args) {
    const HypercallSite site{core, caller, call, args};
    HfResult result{};
    bool injected = false;
    for (HypercallInterceptor* icpt : interceptors_) {
        if (auto forced = icpt->before(site)) {
            result = *forced;
            injected = true;
            break;
        }
    }
    if (!injected) result = dispatch(core, caller, call, args);
    for (auto it = interceptors_.rbegin(); it != interceptors_.rend(); ++it) {
        (*it)->after(site, result);
    }
    return result;
}

void Spm::attach_interceptor(HypercallInterceptor* interceptor) {
    if (interceptor == nullptr) return;
    if (std::find(interceptors_.begin(), interceptors_.end(), interceptor) !=
        interceptors_.end()) {
        return;
    }
    const auto pos = std::upper_bound(
        interceptors_.begin(), interceptors_.end(), interceptor,
        [](const HypercallInterceptor* a, const HypercallInterceptor* b) {
            return a->stage() < b->stage();
        });
    interceptors_.insert(pos, interceptor);
}

void Spm::detach_interceptor(HypercallInterceptor* interceptor) {
    const auto it =
        std::find(interceptors_.begin(), interceptors_.end(), interceptor);
    if (it != interceptors_.end()) interceptors_.erase(it);
}

// --------------------------------------------------------------------------
// Call handlers (one per table row)
// --------------------------------------------------------------------------

HfResult Spm::on_version(arch::CoreId, arch::VmId, const abi::Empty&) {
    return {HfError::kOk, kSpmVersion};
}

HfResult Spm::on_vm_get_count(arch::CoreId, arch::VmId, const abi::Empty&) {
    return {HfError::kOk, vm_count()};
}

HfResult Spm::on_vcpu_get_count(arch::CoreId, arch::VmId,
                                const abi::VcpuGetCountArgs& a) {
    if (a.vm == 0 || a.vm > vms_.size()) return {HfError::kNotFound, 0};
    return {HfError::kOk, vm(a.vm).vcpu_count()};
}

HfResult Spm::on_vm_get_info(arch::CoreId, arch::VmId, const abi::VmGetInfoArgs& a) {
    if (a.vm == 0 || a.vm > vms_.size()) return {HfError::kNotFound, 0};
    const Vm& target = vm(a.vm);
    return {HfError::kOk,
            abi::encode_vm_info(target.role(), target.world(), target.vcpu_count())};
}

HfResult Spm::on_vm_configure(arch::CoreId, arch::VmId caller,
                              const abi::VmConfigureArgs& a) {
    // Both mailbox pages must be mapped in the caller's stage-2.
    if (vm_translate(caller, a.send_ipa).fault != arch::FaultKind::kNone ||
        vm_translate(caller, a.recv_ipa).fault != arch::FaultKind::kNone) {
        return {HfError::kInvalid, 0};
    }
    Vm& cvm = vm(caller);
    cvm.mailbox.configured = true;
    cvm.mailbox.send_ipa = a.send_ipa;
    cvm.mailbox.recv_ipa = a.recv_ipa;
    return {HfError::kOk, 0};
}

HfResult Spm::on_msg_wait(arch::CoreId, arch::VmId caller, const abi::Empty&) {
    Vm& cvm = vm(caller);
    if (cvm.mailbox.configured && cvm.mailbox.recv_full) {
        return {HfError::kOk, cvm.mailbox.recv_size};
    }
    return {HfError::kRetry, 0};
}

HfResult Spm::on_rx_release(arch::CoreId, arch::VmId caller, const abi::Empty&) {
    Vm& cvm = vm(caller);
    if (!cvm.mailbox.configured) return {HfError::kInvalid, 0};
    cvm.mailbox.recv_full = false;
    cvm.mailbox.recv_size = 0;
    return {HfError::kOk, 0};
}

HfResult Spm::on_yield(arch::CoreId core, arch::VmId caller, const abi::Empty&) {
    Vcpu* rv = running_vcpu_on(core);
    if (rv == nullptr || &rv->vm() != &vm(caller)) return {HfError::kInvalid, 0};
    platform_->core(core).exec().preempt();
    exit_vcpu(core, *rv, ExitReason::kYield,
              platform_->perf().hypercall_roundtrip +
                  platform_->perf().world_switch);
    return {HfError::kOk, 0};
}

HfResult Spm::on_interrupt_enable(arch::CoreId core, arch::VmId caller,
                                  const abi::InterruptEnableArgs& a) {
    Vm& cvm = vm(caller);
    if (a.virq < 0 || a.virq >= arch::IrqBitset::kBits) {
        return {HfError::kInvalid, 0};  // outside the vGIC id space
    }
    Vcpu* rv = running_vcpu_on(core);
    Vcpu* target = rv != nullptr && &rv->vm() == &cvm
                       ? rv
                       : (a.vcpu >= 0 && a.vcpu < cvm.vcpu_count()
                              ? &cvm.vcpu(a.vcpu)
                              : nullptr);
    if (target == nullptr) return {HfError::kInvalid, 0};
    target->vgic.enabled.insert(a.virq);
    return {HfError::kOk, 0};
}

HfResult Spm::on_interrupt_get(arch::CoreId core, arch::VmId caller,
                               const abi::Empty&) {
    Vcpu* rv = running_vcpu_on(core);
    if (rv == nullptr || &rv->vm() != &vm(caller)) return {HfError::kInvalid, 0};
    if (const auto next = rv->vgic.next_deliverable()) {
        rv->vgic.pending.erase(*next);
        return {HfError::kOk, *next};
    }
    return {HfError::kOk, -1};
}

HfResult Spm::on_interrupt_inject(arch::CoreId, arch::VmId caller,
                                  const abi::InterruptInjectArgs& a) {
    if (a.vm == 0 || a.vm > vms_.size()) return {HfError::kNotFound, 0};
    Vm& target = vm(a.vm);
    if (a.vcpu < 0 || a.vcpu >= target.vcpu_count()) {
        return {HfError::kInvalid, 0};
    }
    if (a.virq < 0 || a.virq >= arch::IrqBitset::kBits) {
        return {HfError::kInvalid, 0};  // outside the vGIC id space
    }
    inject_virq(target.vcpu(a.vcpu), a.virq);
    if (vm(caller).role() == VmRole::kPrimary && a.virq >= arch::kExternalBase) {
        ++stats_.forwarded_device_irqs;
    }
    return {HfError::kOk, 0};
}

HfResult Spm::on_vtimer_set(arch::CoreId core, arch::VmId caller,
                            const abi::VtimerSetArgs& a) {
    Vm& cvm = vm(caller);
    if (a.vcpu < 0 || a.vcpu >= cvm.vcpu_count()) return {HfError::kInvalid, 0};
    Vcpu& target = cvm.vcpu(a.vcpu);
    target.vtimer_armed = true;
    target.vtimer_deadline = a.deadline;
    if (target.running_core == core && running_vcpu_on(core) == &target) {
        platform_->core(core).timer().set_deadline(arch::TimerChannel::kVirt,
                                                   target.vtimer_deadline);
    }
    return {HfError::kOk, 0};
}

HfResult Spm::on_vtimer_cancel(arch::CoreId core, arch::VmId caller,
                               const abi::VtimerCancelArgs& a) {
    Vm& cvm = vm(caller);
    if (a.vcpu < 0 || a.vcpu >= cvm.vcpu_count()) return {HfError::kInvalid, 0};
    Vcpu& target = cvm.vcpu(a.vcpu);
    target.vtimer_armed = false;
    target.vtimer_deadline = sim::kTimeNever;
    if (target.running_core == core && running_vcpu_on(core) == &target) {
        platform_->core(core).timer().cancel(arch::TimerChannel::kVirt);
    }
    return {HfError::kOk, 0};
}

HfResult Spm::on_vcpu_run(arch::CoreId core, arch::VmId caller,
                          const abi::VcpuRunArgs& a) {
    (void)caller;  // privilege (primary only) already enforced by the gate
    const arch::VmId target_id = a.vm;
    const int vcpu_idx = a.vcpu;
    if (target_id == 0 || target_id > vms_.size()) return {HfError::kNotFound, 0};
    Vm& target = vm(target_id);
    if (target.destroyed) return {HfError::kNotFound, 0};
    if (target.role() == VmRole::kPrimary) return {HfError::kInvalid, 0};
    if (vcpu_idx < 0 || vcpu_idx >= target.vcpu_count()) return {HfError::kInvalid, 0};
    Vcpu& vcpu = target.vcpu(vcpu_idx);
    if (vcpu.state() != VcpuState::kReady) return {HfError::kRetry, 0};
    // A VCPU with no runnable guest thread may still be entered to service
    // pending virtual interrupts (it handles them and drops back to WFI).
    if (vcpu.guest_context == nullptr && !vcpu.vgic.next_deliverable()) {
        vcpu.set_state(VcpuState::kBlocked);  // nothing to do: park in WFI
        return {HfError::kRetry, 0};
    }
    if (platform_->core(core).exec().running()) {
        // A buggy primary driver can issue HF_VCPU_RUN while the core is
        // still executing a context; Hafnium rejects the call rather than
        // bringing the node down.
        ++stats_.bad_state_calls;
        return {HfError::kBusy, 0};
    }
    enter_vcpu(core, vcpu,
               platform_->perf().hypercall_roundtrip + platform_->perf().world_switch);
    return {HfError::kOk, 0};
}

HfResult Spm::on_msg_send(arch::CoreId core, arch::VmId caller,
                          const abi::MsgSendArgs& a) {
    (void)core;
    Vm& from = vm(caller);
    const arch::VmId target_id = a.to;
    const std::uint32_t size = a.size;
    if (target_id == 0 || target_id > vms_.size()) return {HfError::kNotFound, 0};
    Vm& to = vm(target_id);
    if (from.destroyed || to.destroyed) return {HfError::kNotFound, 0};
    if (!from.mailbox.configured || !to.mailbox.configured) return {HfError::kInvalid, 0};
    if (size > arch::kPageSize) return {HfError::kInvalid, 0};
    if (to.mailbox.recv_full) return {HfError::kBusy, 0};

    // Functional copy through both stage-2 translations, word by word. This
    // is the only cross-VM data path, and it is hypervisor-mediated.
    const std::uint64_t words = (size + 7) / 8;
    for (std::uint64_t w = 0; w < words; ++w) {
        std::uint64_t value = 0;
        if (!vm_read64(caller, from.mailbox.send_ipa + w * 8, value)) {
            return {HfError::kInvalid, 0};
        }
        if (!vm_write64(target_id, to.mailbox.recv_ipa + w * 8, value)) {
            return {HfError::kInvalid, 0};
        }
    }
    to.mailbox.recv_full = true;
    to.mailbox.recv_size = size;
    to.mailbox.recv_from = caller;
    ++stats_.messages;

    // Wake the receiver. Secondary/super-secondary: wake VCPU 0 if blocked.
    // Primary: notify its kernel (the control task waits on the mailbox).
    if (to.role() == VmRole::kPrimary) {
        if (primary_os_ != nullptr) primary_os_->on_message(caller);
    } else {
        inject_virq(to.vcpu(0), kMessageVirq);
    }
    return {HfError::kOk, 0};
}

namespace {

// Guest-supplied IPA windows must be rejected before they reach the
// stage-2 PageTable APIs: map/unmap/protect treat unaligned or
// beyond-range arguments as host API misuse and throw. The limit is the
// stage-2 format's input size (48-bit on ARMv8, 41-bit on Sv39x4). The
// pages bound also rules out overflow in `pages * kPageSize`.
bool valid_ipa_window(std::uint64_t base, std::uint64_t pages,
                      std::uint64_t ipa_limit) {
    return (base & arch::kPageMask) == 0 &&
           pages <= ipa_limit / arch::kPageSize &&
           base <= ipa_limit - pages * arch::kPageSize;
}

}  // namespace

HfResult Spm::on_mem_share(arch::CoreId, arch::VmId caller,
                           const abi::MemShareArgs& a) {
    return mem_grant(caller, a, /*exclusive=*/false);
}

HfResult Spm::on_mem_lend(arch::CoreId, arch::VmId caller,
                          const abi::MemLendArgs& a) {
    // FFA_MEM_LEND: the owner relinquishes access until reclaim.
    return mem_grant(caller, a, /*exclusive=*/true);
}

HfResult Spm::mem_grant(arch::VmId caller, const abi::MemShareArgs& a,
                        bool exclusive) {
    const arch::VmId target_id = a.to;
    const arch::IpaAddr own_ipa = a.owner_ipa;
    const std::uint64_t pages = a.pages;
    const arch::IpaAddr borrower_ipa = a.borrower_ipa;
    if (target_id == 0 || target_id > vms_.size()) return {HfError::kNotFound, 0};
    if (target_id == caller || pages == 0) return {HfError::kInvalid, 0};
    const std::uint64_t ipa_limit = platform_->isa_ops().stage2.input_limit();
    if (!valid_ipa_window(own_ipa, pages, ipa_limit) ||
        !valid_ipa_window(borrower_ipa, pages, ipa_limit)) {
        return {HfError::kInvalid, 0};
    }
    Vm& to = vm(target_id);
    if (to.destroyed) return {HfError::kNotFound, 0};

    // The caller must own every frame it shares/lends.
    const arch::WalkResult w0 = vm_translate(caller, own_ipa);
    if (w0.fault != arch::FaultKind::kNone) return {HfError::kInvalid, 0};
    for (std::uint64_t p = 0; p < pages; ++p) {
        const arch::WalkResult w = vm_translate(caller, own_ipa + p * arch::kPageSize);
        if (w.fault != arch::FaultKind::kNone) return {HfError::kInvalid, 0};
        if (!platform_->mem().owned_span(w.out, arch::kPageSize, caller)) {
            return {HfError::kDenied, 0};
        }
    }
    // The borrower window must be a hole in the target's stage-2: map()
    // refuses overlap, and this also rejects duplicate grants of the same
    // window.
    for (std::uint64_t p = 0; p < pages; ++p) {
        if (to.stage2().walk(borrower_ipa + p * arch::kPageSize).fault ==
            arch::FaultKind::kNone) {
            return {HfError::kDenied, 0};
        }
    }
    // Contiguity in PA space follows from per-VM contiguous allocation.
    // sca-suppress(no-throw-guest-path): window validated above — aligned,
    // in range, and unmapped in the target, so map() cannot throw.
    to.stage2().map(borrower_ipa, w0.out, pages * arch::kPageSize, arch::kPermRW);
    if (exclusive) {
        // FFA_MEM_LEND: the owner relinquishes access until reclaim
        // (block mappings split on demand).
        // sca-suppress(no-throw-guest-path): aligned window, every page
        // walk-checked mapped above, so protect() cannot throw.
        vm(caller).stage2().protect(own_ipa, pages * arch::kPageSize,
                                    arch::kPermNone);
    }
    // sca-suppress(hot-path-alloc): GrantList is arena-backed — growth
    // bumps the trial arena, never the global heap.
    grants_.push_back({caller, target_id, own_ipa, borrower_ipa, pages, exclusive});
    ++stats_.mem_grants;
    return {HfError::kOk, 0};
}

HfResult Spm::on_mem_donate(arch::CoreId, arch::VmId caller,
                            const abi::MemDonateArgs& a) {
    const arch::VmId target_id = a.to;
    const arch::IpaAddr own_ipa = a.owner_ipa;
    const std::uint64_t pages = a.pages;
    const arch::IpaAddr borrower_ipa = a.borrower_ipa;
    if (target_id == 0 || target_id > vms_.size()) return {HfError::kNotFound, 0};
    if (target_id == caller || pages == 0) return {HfError::kInvalid, 0};
    const std::uint64_t ipa_limit = platform_->isa_ops().stage2.input_limit();
    if (!valid_ipa_window(own_ipa, pages, ipa_limit) ||
        !valid_ipa_window(borrower_ipa, pages, ipa_limit)) {
        return {HfError::kInvalid, 0};
    }
    Vm& to = vm(target_id);
    if (to.destroyed) return {HfError::kNotFound, 0};

    const arch::WalkResult w0 = vm_translate(caller, own_ipa);
    if (w0.fault != arch::FaultKind::kNone) return {HfError::kInvalid, 0};
    for (std::uint64_t p = 0; p < pages; ++p) {
        const arch::WalkResult w = vm_translate(caller, own_ipa + p * arch::kPageSize);
        if (w.fault != arch::FaultKind::kNone) return {HfError::kInvalid, 0};
        if (!platform_->mem().owned_span(w.out, arch::kPageSize, caller)) {
            return {HfError::kDenied, 0};
        }
    }
    // Frames under an active share/lend cannot be donated: the borrower
    // would keep a live mapping to frames it no longer owns, and a later
    // reclaim would find the donor's translation gone. Reclaim first.
    for (const auto& g : grants_) {
        if (g.owner == caller &&
            own_ipa < g.owner_ipa + g.pages * arch::kPageSize &&
            g.owner_ipa < own_ipa + pages * arch::kPageSize) {
            return {HfError::kDenied, 0};
        }
    }
    // The new owner's window must be a hole in its stage-2 (map() refuses
    // overlap).
    for (std::uint64_t p = 0; p < pages; ++p) {
        if (to.stage2().walk(borrower_ipa + p * arch::kPageSize).fault ==
            arch::FaultKind::kNone) {
            return {HfError::kDenied, 0};
        }
    }
    // TrustZone: frames cannot silently change worlds via donation.
    if (platform_->mem().world_of(w0.out) != to.world()) {
        return {HfError::kDenied, 0};
    }
    // Ownership transfer: remove the donor's translation entirely, retag
    // the frames, map them for the new owner.
    // sca-suppress(no-throw-guest-path): window aligned (validated above),
    // and unmap() is idempotent on holes, so it cannot throw.
    vm(caller).stage2().unmap(own_ipa, pages * arch::kPageSize);
    // sca-suppress(no-throw-guest-path): every frame walk-checked and
    // owned_span-checked above, so the frames are allocated.
    platform_->mem().set_owner(w0.out, pages, target_id);
    // sca-suppress(no-throw-guest-path): window validated above — aligned,
    // in range, and unmapped in the target, so map() cannot throw.
    to.stage2().map(borrower_ipa, w0.out, pages * arch::kPageSize, arch::kPermRWX,
                    to.world() == arch::World::kSecure);
    ++stats_.mem_donates;
    return {HfError::kOk, 0};
}

HfResult Spm::on_mem_reclaim(arch::CoreId, arch::VmId caller,
                             const abi::MemReclaimArgs& a) {
    const arch::VmId target_id = a.borrower;
    const arch::IpaAddr own_ipa = a.owner_ipa;
    for (auto it = grants_.begin(); it != grants_.end(); ++it) {
        if (it->owner == caller && it->borrower == target_id &&
            it->owner_ipa == own_ipa) {
            // sca-suppress(no-throw-guest-path): grant records only hold
            // windows mem_grant validated as aligned; unmap() is idempotent
            // on holes, so it cannot throw.
            vm(target_id).stage2().unmap(it->borrower_ipa, it->pages * arch::kPageSize);
            if (it->exclusive) {
                // Lend reclaim: the owner regains access. The owner window
                // stays mapped (perms-none) for the grant's lifetime:
                // donation of granted frames is rejected, and no other
                // hypercall unmaps the owner's own translation.
                // sca-suppress(no-throw-guest-path): aligned, mapped window
                // per the grant invariant above, so protect() cannot throw.
                vm(caller).stage2().protect(it->owner_ipa,
                                            it->pages * arch::kPageSize,
                                            arch::kPermRWX);
            }
            grants_.erase(it);
            ++stats_.mem_revokes;
            return {HfError::kOk, 0};
        }
    }
    return {HfError::kNotFound, 0};
}

// --------------------------------------------------------------------------
// Functional guest memory
// --------------------------------------------------------------------------

arch::WalkResult Spm::vm_translate(arch::VmId id, arch::IpaAddr ipa) {
    return vm(id).stage2().walk(ipa);
}

bool Spm::vm_read64(arch::VmId id, arch::IpaAddr ipa, std::uint64_t& out) {
    const arch::WalkResult w = vm_translate(id, ipa);
    if (w.fault != arch::FaultKind::kNone || !perms_allow(w.perms, arch::Access::kRead)) {
        return false;
    }
    if (platform_->mem().check_physical_access(w.out, vm(id).world()) !=
        arch::FaultKind::kNone) {
        return false;
    }
    // Over-reads leak key material as surely as overwrites corrupt tables:
    // the FFA-window read path tag-checks too (heartbleed shape).
    if (!tag_check(id, ipa, w.out, arch::Access::kRead)) return false;
    // sca-suppress(no-throw-guest-path): check_physical_access verified the
    // same (frame, world) pair read64 re-checks, so it cannot throw here.
    out = platform_->mem().read64(w.out, vm(id).world());
    return true;
}

bool Spm::vm_write64(arch::VmId id, arch::IpaAddr ipa, std::uint64_t value) {
    const arch::WalkResult w = vm_translate(id, ipa);
    if (w.fault != arch::FaultKind::kNone ||
        !perms_allow(w.perms, arch::Access::kWrite)) {
        return false;
    }
    if (platform_->mem().check_physical_access(w.out, vm(id).world()) !=
        arch::FaultKind::kNone) {
        return false;
    }
    // DFITAGCHECK before the store mutates anything: a blocked write leaves
    // the tagged frame bit-identical, which is what lets recovery re-verify
    // it against the attestation hash and keep serving.
    if (!tag_check(id, ipa, w.out, arch::Access::kWrite)) return false;
    // sca-suppress(no-throw-guest-path): check_physical_access verified the
    // same (frame, world) pair write64 re-checks, so it cannot throw here.
    platform_->mem().write64(w.out, value, vm(id).world());
    return true;
}

// --------------------------------------------------------------------------
// Integrity tagging (detect of detect → contain → recover)
// --------------------------------------------------------------------------

void Spm::protect_critical_state() {
    if (critical_armed_) return;
    critical_armed_ = true;
    // Per-VM stage-2 table frames. The PageTable object itself is a model,
    // but the frames its nodes would occupy are real hypervisor-owned
    // allocations here, so a corrupting guest access has a concrete target.
    for (const auto& vm : vms_) {
        if (!vm->destroyed) protect_new_region("stage2:" + vm->name(), 1);
    }
    protect_new_region("attestation-log", 1);
    protect_new_region("lamport-keys", 2);
    protect_new_region("manifest", 1);
}

void Spm::protect_new_region(const std::string& name, std::uint64_t pages) {
    auto& mem = platform_->mem();
    const arch::PhysAddr base =
        mem.alloc_frames(pages, arch::kHypervisorId, arch::World::kNonSecure);
    // Deterministic fill derived from the region name, so the measurement
    // covers real content rather than a page of zeros (a zeroing attack
    // must not re-verify clean).
    const crypto::Digest seed = crypto::Sha256::hash(name);
    const std::uint64_t words = pages * (arch::kPageSize / 8);
    for (std::uint64_t w = 0; w < words; ++w) {
        std::uint64_t v = 0;
        for (std::uint64_t b = 0; b < 8; ++b) {
            v = (v << 8) | seed[(w + b) % seed.size()];
        }
        mem.write64(base + w * 8, v ^ w, arch::World::kSecure);
    }
    mem.set_integrity_tag(base, pages, true);
    critical_.push_back({name, base, pages, measure_region(base, pages), false});
}

crypto::Digest Spm::measure_region(arch::PhysAddr base, std::uint64_t pages) const {
    crypto::Sha256 h;
    const std::uint64_t words = pages * (arch::kPageSize / 8);
    for (std::uint64_t w = 0; w < words; ++w) {
        const std::uint64_t v =
            platform_->mem().read64(base + w * 8, arch::World::kSecure);
        h.update(crypto::bytes_of(v));
    }
    return h.finalize();
}

const Spm::CriticalRegion* Spm::find_critical(const std::string& name) const {
    for (const auto& r : critical_) {
        if (r.name == name) return &r;
    }
    return nullptr;
}

bool Spm::reverify_critical(const std::string& name) {
    for (auto& r : critical_) {
        if (r.name != name) continue;
        const bool ok =
            crypto::digest_equal(r.measurement, measure_region(r.base, r.pages));
        if (!ok) r.embargoed = true;
        return ok;
    }
    return false;
}

void Spm::release_critical(const std::string& name) {
    for (auto it = critical_.begin(); it != critical_.end(); ++it) {
        if (it->name != name) continue;
        // An embargoed region failed re-verification: its frames stay out
        // of the allocator forever rather than risk reuse of corrupt state.
        if (it->embargoed) return;
        platform_->mem().set_integrity_tag(it->base, it->pages, false);
        const std::uint64_t words = it->pages * (arch::kPageSize / 8);
        for (std::uint64_t w = 0; w < words; ++w) {
            platform_->mem().write64(it->base + w * 8, 0, arch::World::kSecure);
        }
        platform_->mem().free_frames(it->base, it->pages);
        critical_.erase(it);
        return;
    }
}

bool Spm::tag_check(arch::VmId accessor, arch::IpaAddr ipa, arch::PhysAddr pa,
                    arch::Access access) {
    if (!platform_->mem().integrity_tagged(pa)) [[likely]] {
        return true;
    }
    ++stats_.tag_violations;
    std::string region;
    for (const auto& r : critical_) {
        if (pa >= r.base && pa < r.base + r.pages * arch::kPageSize) {
            region = r.name;
            break;
        }
    }
    platform_->recorder().instant(platform_->engine().now(),
                                  obs::EventType::kTagViolation, -1, accessor,
                                  static_cast<std::int64_t>(pa),
                                  static_cast<std::int64_t>(access));
    if (tag_violation_hook) {
        tag_violation_hook(TagViolation{accessor, ipa, pa, access, region});
    }
    return false;
}

void Spm::publish_metrics() {
    auto& m = platform_->metrics();
    const auto set = [&m](const char* name, std::uint64_t v) {
        m.set(m.gauge(name), static_cast<double>(v));
    };
    set("hf.hypercalls", stats_.hypercalls);
    set("hf.world_switches", stats_.world_switches);
    set("hf.vm_exits", stats_.vm_exits);
    set("hf.exits_preempted", stats_.exits_preempted);
    set("hf.exits_blocked", stats_.exits_blocked);
    set("hf.exits_yield", stats_.exits_yield);
    set("hf.exits_aborted", stats_.exits_aborted);
    set("hf.virq_injections", stats_.virq_injections);
    set("hf.vtimer_fires", stats_.vtimer_fires);
    set("hf.forwarded_device_irqs", stats_.forwarded_device_irqs);
    set("hf.denied_calls", stats_.denied_calls);
    set("hf.bad_state_calls", stats_.bad_state_calls);
    set("hf.invalid_calls", stats_.invalid_calls);
    set("hf.messages", stats_.messages);
    set("hf.guest_aborts", stats_.guest_aborts);
    set("hf.mem_grants", stats_.mem_grants);
    set("hf.mem_revokes", stats_.mem_revokes);
    set("hf.mem_donates", stats_.mem_donates);
    set("hf.tag_violations", stats_.tag_violations);
}

std::vector<std::string> Spm::devices_of(arch::VmId id) const {
    const auto it = device_map_.find(id);
    return it == device_map_.end() ? std::vector<std::string>{} : it->second;
}

}  // namespace hpcsec::hafnium
