// The Secure Partition Manager (Hafnium model), executing at EL2.
//
// Responsibilities mirror the reference implementation the paper describes:
//  * boot-time construction of per-VM stage-2 tables from a static manifest
//    (memory isolation is hardware-enforced from that point on);
//  * a core-local hypercall interface — HF_VCPU_RUN only ever context
//    switches the calling core;
//  * VM exit handling: most exits are internal (virtual timers), only timer
//    and device IRQs bounce to the primary VM;
//  * the paper's super-secondary extension: a semi-privileged VM that owns
//    the MMIO map and receives device IRQs (forwarded by the primary, or
//    directly under the selective-routing policy);
//  * FFA-style mailboxes and memory sharing between partitions.
//
// Deliberately *not* here, matching Hafnium's design: a CPU scheduler (the
// primary VM owns scheduling) and I/O virtualization.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/platform.h"
#include "crypto/sha256.h"
#include "hafnium/hypercall.h"
#include "hafnium/interfaces.h"
#include "hafnium/irq_router.h"
#include "hafnium/manifest.h"
#include "hafnium/vm.h"

namespace hpcsec::check {
struct CorruptionAccess;  // fault injection backdoor (src/check/corrupt.h)
}  // namespace hpcsec::check

namespace hpcsec::hafnium {

/// Invariant-audit hook points the SPM exposes (implemented by
/// check::Auditor). Each hook site costs one predicted branch when no
/// auditor is attached.
class AuditItf : public VcpuAuditSink {
public:
    /// Invoked after every completed hypercall, result included.
    virtual void on_hypercall(arch::CoreId core, arch::VmId caller, Call call,
                              const HfResult& result) = 0;
};

class Spm {
public:
    struct Stats {
        std::uint64_t hypercalls = 0;
        std::uint64_t world_switches = 0;
        std::uint64_t vm_exits = 0;
        std::uint64_t exits_preempted = 0;
        std::uint64_t exits_blocked = 0;
        std::uint64_t exits_yield = 0;
        std::uint64_t exits_aborted = 0;
        std::uint64_t virq_injections = 0;
        std::uint64_t vtimer_fires = 0;
        std::uint64_t forwarded_device_irqs = 0;
        std::uint64_t denied_calls = 0;
        std::uint64_t bad_state_calls = 0;  ///< kBusy: call illegal in the current state
        std::uint64_t messages = 0;
        std::uint64_t guest_aborts = 0;
        std::uint64_t mem_grants = 0;   ///< successful FFA_MEM_SHARE/LEND
        std::uint64_t mem_revokes = 0;  ///< reclaims + teardown revocations
        std::uint64_t mem_donates = 0;  ///< successful FFA_MEM_DONATE
    };

    Spm(arch::Platform& platform, Manifest manifest,
        IrqRoutingPolicy policy = IrqRoutingPolicy::kAllToPrimary);

    /// EL2 boot: validate manifest, measure images, allocate VM memory,
    /// build stage-2 tables, map MMIO into the I/O-owning VM, take over the
    /// exception vectors, power on all cores. Throws on manifest errors.
    void boot();
    [[nodiscard]] bool booted() const { return booted_; }

    void attach_primary(PrimaryOsItf* os) { primary_os_ = os; }
    void attach_guest(arch::VmId vm, GuestOsItf* os);

    // --- dynamic partitioning (paper §VII future work) -----------------------
    /// Create a secondary partition after boot: allocate memory, build its
    /// stage-2 tables, measure the image. Image authenticity is the caller's
    /// responsibility (core::Node gates this on signature verification —
    /// "Hafnium is able to verify VM signatures using a known public key").
    /// Returns the new VM id. Throws on invalid spec or memory exhaustion.
    arch::VmId create_vm(const VmSpec& spec);

    /// Tear a dynamic (or boot-time secondary) partition down: every VCPU
    /// must be off the cores; stage-2 mappings are removed, grants revoked,
    /// frames scrubbed and returned to the allocator. Throws if the VM is
    /// the primary/super-secondary or still running.
    void destroy_vm(arch::VmId id);

    /// The hypercall gate. `core` is the calling physical core (the
    /// interface is core local), `caller` the calling VM.
    HfResult hypercall(arch::CoreId core, arch::VmId caller, Call call,
                       HfArgs args = {});

    // --- topology ------------------------------------------------------------
    [[nodiscard]] int vm_count() const { return static_cast<int>(vms_.size()); }
    [[nodiscard]] Vm& vm(arch::VmId id);
    [[nodiscard]] Vm* find_vm(const std::string& name);
    [[nodiscard]] Vm& primary_vm() { return vm(arch::kPrimaryVmId); }
    [[nodiscard]] Vm* super_secondary();
    [[nodiscard]] arch::Platform& platform() { return *platform_; }
    [[nodiscard]] const IrqRouter& router() const { return router_; }

    /// VCPU currently executing on `core` (nullptr when the core belongs to
    /// the primary). Ground truth for the checker's core-locality rule.
    [[nodiscard]] const Vcpu* running_vcpu(arch::CoreId core) const {
        return vcpu_on_core_.at(static_cast<std::size_t>(core));
    }

    /// Attach (or detach, with nullptr) the invariant auditor. Installs the
    /// VCPU state-transition sink on every existing VCPU; VMs created later
    /// inherit it.
    void attach_audit(AuditItf* audit);
    [[nodiscard]] AuditItf* audit() const { return audit_; }

    // --- guest-side services (called by guest kernel models) -----------------
    /// Install/replace the runnable that consumes CPU when `vcpu` runs.
    void set_guest_context(Vcpu& vcpu, arch::Runnable* ctx);
    /// Mark a fresh VCPU schedulable.
    void make_vcpu_ready(Vcpu& vcpu);
    /// Wake a blocked VCPU (message, barrier, injected interrupt).
    void wake_vcpu(Vcpu& vcpu);

    /// Forcibly pull a VCPU off its core (management path for stop/destroy).
    /// No world-switch cost is charged to the guest; the core context
    /// returns to the primary. With `notify_primary` (the default) the
    /// primary receives a kYield exit so its proxy bookkeeping stays
    /// coherent; teardown paths pass false and reap the proxies themselves.
    /// No-op when the VCPU is not running.
    void force_stop_vcpu(Vcpu& vcpu, bool notify_primary = true);

    /// Guest memory access with fault semantics: checks the VM's stage-2
    /// (and TrustZone) for `ipa`; on a fault while the VCPU is running the
    /// SPM takes the data abort — the VCPU is killed and the primary gets a
    /// kAborted exit, exactly how Hafnium treats stage-2 violations.
    /// Returns true when the access is allowed.
    bool guest_access(Vcpu& vcpu, arch::IpaAddr ipa, arch::Access access);

    /// Abort a running/ready VCPU (stage-2 violation, undefined sysreg
    /// access to a blocked feature, ...). Safe from any context.
    void abort_vcpu(Vcpu& vcpu);

    // --- functional guest memory (through stage-2, for tests/channels) -------
    bool vm_read64(arch::VmId id, arch::IpaAddr ipa, std::uint64_t& out);
    bool vm_write64(arch::VmId id, arch::IpaAddr ipa, std::uint64_t value);
    /// Translate an IPA through a VM's stage-2 (functional walk).
    [[nodiscard]] arch::WalkResult vm_translate(arch::VmId id, arch::IpaAddr ipa);

    [[nodiscard]] const Stats& stats() const { return stats_; }

    /// Push Stats into the platform's metrics registry as "hf.*" gauges.
    /// Cold path: call before taking a snapshot.
    void publish_metrics();

    /// Boot-time image measurements, in manifest order (attestation input).
    [[nodiscard]] const std::vector<std::pair<std::string, crypto::Digest>>&
    measurements() const {
        return measurements_;
    }

    /// MMIO regions mapped into a VM (device assignment ground truth).
    [[nodiscard]] std::vector<std::string> devices_of(arch::VmId id) const;

    struct ShareGrant {
        arch::VmId owner;
        arch::VmId borrower;
        arch::IpaAddr owner_ipa;
        arch::IpaAddr borrower_ipa;
        std::uint64_t pages;
        bool exclusive = false;  ///< FFA_MEM_LEND: the owner loses access
    };
    [[nodiscard]] const std::vector<ShareGrant>& grants() const { return grants_; }

private:
    friend struct hpcsec::check::CorruptionAccess;

    HfResult hypercall_impl(arch::CoreId core, arch::VmId caller, Call call,
                            const HfArgs& args);
    void handle_phys_irq(arch::CoreId core, int irq);
    void enter_vcpu(arch::CoreId core, Vcpu& vcpu, sim::Cycles base_cost);
    void exit_vcpu(arch::CoreId core, Vcpu& vcpu, ExitReason reason,
                   sim::Cycles cost);
    void on_core_idle(arch::CoreId core, arch::Runnable* finished);
    /// Deliver pending virqs to a *running-on-this-core* vcpu; returns cost.
    sim::Cycles drain_virqs(Vcpu& vcpu);
    void inject_virq(Vcpu& vcpu, int virq);
    [[nodiscard]] Vcpu* running_vcpu_on(arch::CoreId core);
    /// Guest personality for `id`, nullptr when none attached (or torn down).
    [[nodiscard]] GuestOsItf* find_guest_os(arch::VmId id);
    void set_core_context(arch::CoreId core, Vm* vmctx);

    HfResult call_vcpu_run(arch::CoreId core, arch::VmId caller, const HfArgs& a);
    HfResult call_msg_send(arch::CoreId core, arch::VmId caller, const HfArgs& a);
    HfResult call_mem_share(arch::VmId caller, const HfArgs& a, bool exclusive);
    HfResult call_mem_reclaim(arch::VmId caller, const HfArgs& a);
    HfResult call_mem_donate(arch::VmId caller, const HfArgs& a);

    arch::Platform* platform_;
    Manifest manifest_;
    IrqRouter router_;
    bool booted_ = false;

    std::vector<std::unique_ptr<Vm>> vms_;  // index = id - 1
    PrimaryOsItf* primary_os_ = nullptr;
    std::unordered_map<arch::VmId, GuestOsItf*> guest_os_;
    std::unordered_map<arch::Runnable*, Vcpu*> ctx_to_vcpu_;
    std::vector<Vcpu*> vcpu_on_core_;  // running vcpu per core, nullptr if none

    std::vector<std::pair<std::string, crypto::Digest>> measurements_;
    std::vector<ShareGrant> grants_;
    std::map<arch::VmId, std::vector<std::string>> device_map_;
    Stats stats_;
    AuditItf* audit_ = nullptr;
    obs::MetricsRegistry::Handle vcpu_run_hist_ = 0;  ///< hf.vcpu_run_us
};

}  // namespace hpcsec::hafnium
