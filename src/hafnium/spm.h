// The Secure Partition Manager (Hafnium model), executing at EL2.
//
// Responsibilities mirror the reference implementation the paper describes:
//  * boot-time construction of per-VM stage-2 tables from a static manifest
//    (memory isolation is hardware-enforced from that point on);
//  * a core-local hypercall interface — HF_VCPU_RUN only ever context
//    switches the calling core;
//  * VM exit handling: most exits are internal (virtual timers), only timer
//    and device IRQs bounce to the primary VM;
//  * the paper's super-secondary extension: a semi-privileged VM that owns
//    the MMIO map and receives device IRQs (forwarded by the primary, or
//    directly under the selective-routing policy);
//  * FFA-style mailboxes and memory sharing between partitions.
//
// Deliberately *not* here, matching Hafnium's design: a CPU scheduler (the
// primary VM owns scheduling) and I/O virtualization.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/platform.h"
#include "crypto/sha256.h"
#include "hafnium/abi.h"
#include "hafnium/hypercall.h"
#include "hafnium/intercept.h"
#include "hafnium/interfaces.h"
#include "hafnium/irq_router.h"
#include "hafnium/manifest.h"
#include "hafnium/vm.h"

namespace hpcsec::check {
struct CorruptionAccess;  // fault injection backdoor (src/check/corrupt.h)
}  // namespace hpcsec::check

namespace hpcsec::hafnium {

class Spm {
public:
    struct Stats {
        std::uint64_t hypercalls = 0;
        std::uint64_t world_switches = 0;
        std::uint64_t vm_exits = 0;
        std::uint64_t exits_preempted = 0;
        std::uint64_t exits_blocked = 0;
        std::uint64_t exits_yield = 0;
        std::uint64_t exits_aborted = 0;
        std::uint64_t virq_injections = 0;
        std::uint64_t vtimer_fires = 0;
        std::uint64_t forwarded_device_irqs = 0;
        std::uint64_t denied_calls = 0;
        std::uint64_t bad_state_calls = 0;  ///< kBusy: call illegal in the current state
        std::uint64_t invalid_calls = 0;    ///< kInvalid at the gate: unknown call
                                            ///< number or failed typed decode
        std::uint64_t messages = 0;
        std::uint64_t guest_aborts = 0;
        std::uint64_t mem_grants = 0;   ///< successful FFA_MEM_SHARE/LEND
        std::uint64_t mem_revokes = 0;  ///< reclaims + teardown revocations
        std::uint64_t mem_donates = 0;  ///< successful FFA_MEM_DONATE
        std::uint64_t tag_violations = 0;  ///< DFITAGCHECK hits on guest paths
    };

    Spm(arch::Platform& platform, Manifest manifest,
        IrqRoutingPolicy policy = IrqRoutingPolicy::kAllToPrimary);

    /// EL2 boot: validate manifest, measure images, allocate VM memory,
    /// build stage-2 tables, map MMIO into the I/O-owning VM, take over the
    /// exception vectors, power on all cores. Throws on manifest errors.
    void boot();
    [[nodiscard]] bool booted() const { return booted_; }

    void attach_primary(PrimaryOsItf* os) { primary_os_ = os; }
    void attach_guest(arch::VmId vm, GuestOsItf* os);

    // --- dynamic partitioning (paper §VII future work) -----------------------
    /// Create a secondary partition after boot: allocate memory, build its
    /// stage-2 tables, measure the image. Image authenticity is the caller's
    /// responsibility (core::Node gates this on signature verification —
    /// "Hafnium is able to verify VM signatures using a known public key").
    /// Returns the new VM id. Throws on invalid spec or memory exhaustion.
    arch::VmId create_vm(const VmSpec& spec);

    /// Tear a dynamic (or boot-time secondary) partition down: every VCPU
    /// must be off the cores; stage-2 mappings are removed, grants revoked,
    /// frames scrubbed and returned to the allocator. Throws if the VM is
    /// the primary/super-secondary or still running.
    void destroy_vm(arch::VmId id);

    // --- the hypercall gate --------------------------------------------------
    /// Privilege bits: which VmRole may issue a call. A row's mask is
    /// checked uniformly in the gate; a miss answers kDenied and counts
    /// Stats::denied_calls.
    static constexpr std::uint8_t kRolePrimary = 1u << 0;
    static constexpr std::uint8_t kRoleSuperSecondary = 1u << 1;
    static constexpr std::uint8_t kRoleSecondary = 1u << 2;
    static constexpr std::uint8_t kAnyRole =
        kRolePrimary | kRoleSuperSecondary | kRoleSecondary;

    /// Cost-charging rule. The gate itself never charges modeled cycles —
    /// kFree calls are pure bookkeeping, kHandlerCharged calls account the
    /// world-switch/roundtrip inside the handler (enter_vcpu/exit_vcpu),
    /// where the amount depends on the outcome.
    enum class CallCost : std::uint8_t { kFree, kHandlerCharged };

    /// One row per hafnium::Call: the complete, declarative description of
    /// a hypercall. `invoke` is a thunk that decodes the typed request
    /// (kInvalid on range failure) and calls the member handler.
    /// tools/lint.py proves the table covers every Call enumerator.
    struct CallDescriptor {
        Call call;
        std::uint8_t privilege;
        CallCost cost;
        HfResult (*invoke)(Spm&, arch::CoreId, arch::VmId, const HfArgs&);
    };

    /// The dispatch table, in call-number order.
    [[nodiscard]] static const std::array<CallDescriptor, kCallCount>& call_table();
    /// Descriptor for `call`, nullptr for numbers outside the ABI.
    [[nodiscard]] static const CallDescriptor* descriptor(Call call);

    /// The hypercall gate. `core` is the calling physical core (the
    /// interface is core local), `caller` the calling VM. Order: interceptor
    /// before() hooks (ascending stage), then unknown-call / caller-validity
    /// / privilege-mask / typed-decode checks, then the handler, then
    /// after() hooks (descending stage). Malformed input never escapes the
    /// gate: unknown numbers and failed decodes answer kInvalid.
    HfResult hypercall(arch::CoreId core, arch::VmId caller, Call call,
                       HfArgs args = {});

    /// Attach an interceptor (sorted by Stage, stable within a stage).
    /// Attaching the same interceptor twice is a no-op.
    void attach_interceptor(HypercallInterceptor* interceptor);
    /// Detach; unknown pointers are ignored.
    void detach_interceptor(HypercallInterceptor* interceptor);
    [[nodiscard]] const std::vector<HypercallInterceptor*>& interceptors() const {
        return interceptors_;
    }

    // --- topology ------------------------------------------------------------
    [[nodiscard]] int vm_count() const { return static_cast<int>(vms_.size()); }
    [[nodiscard]] Vm& vm(arch::VmId id);
    [[nodiscard]] Vm* find_vm(const std::string& name);
    [[nodiscard]] Vm& primary_vm() { return vm(arch::kPrimaryVmId); }
    [[nodiscard]] Vm* super_secondary();
    [[nodiscard]] arch::Platform& platform() { return *platform_; }
    [[nodiscard]] const IrqRouter& router() const { return router_; }

    /// VCPU currently executing on `core` (nullptr when the core belongs to
    /// the primary). Ground truth for the checker's core-locality rule.
    [[nodiscard]] const Vcpu* running_vcpu(arch::CoreId core) const {
        return vcpu_on_core_.at(static_cast<std::size_t>(core));
    }

    /// Attach (or detach, with nullptr) the VCPU state-transition audit
    /// sink. Installs it on every existing VCPU; VMs created later inherit
    /// it. Hypercall-level auditing goes through the interceptor chain —
    /// check::Auditor registers as both.
    void attach_audit(VcpuAuditSink* audit);
    [[nodiscard]] VcpuAuditSink* audit() const { return audit_; }

    // --- guest-side services (called by guest kernel models) -----------------
    /// Install/replace the runnable that consumes CPU when `vcpu` runs.
    void set_guest_context(Vcpu& vcpu, arch::Runnable* ctx);
    /// Mark a fresh VCPU schedulable.
    void make_vcpu_ready(Vcpu& vcpu);
    /// Wake a blocked VCPU (message, barrier, injected interrupt).
    void wake_vcpu(Vcpu& vcpu);

    /// Forcibly pull a VCPU off its core (management path for stop/destroy).
    /// No world-switch cost is charged to the guest; the core context
    /// returns to the primary. With `notify_primary` (the default) the
    /// primary receives a kYield exit so its proxy bookkeeping stays
    /// coherent; teardown paths pass false and reap the proxies themselves.
    /// No-op when the VCPU is not running.
    void force_stop_vcpu(Vcpu& vcpu, bool notify_primary = true);

    /// Guest memory access with fault semantics: checks the VM's stage-2
    /// (and TrustZone) for `ipa`; on a fault while the VCPU is running the
    /// SPM takes the data abort — the VCPU is killed and the primary gets a
    /// kAborted exit, exactly how Hafnium treats stage-2 violations.
    /// Returns true when the access is allowed.
    bool guest_access(Vcpu& vcpu, arch::IpaAddr ipa, arch::Access access);

    /// Abort a running/ready VCPU (stage-2 violation, undefined sysreg
    /// access to a blocked feature, ...). Safe from any context.
    void abort_vcpu(Vcpu& vcpu);

    // --- functional guest memory (through stage-2, for tests/channels) -------
    bool vm_read64(arch::VmId id, arch::IpaAddr ipa, std::uint64_t& out);
    bool vm_write64(arch::VmId id, arch::IpaAddr ipa, std::uint64_t value);
    /// Translate an IPA through a VM's stage-2 (functional walk).
    [[nodiscard]] arch::WalkResult vm_translate(arch::VmId id, arch::IpaAddr ipa);

    [[nodiscard]] const Stats& stats() const { return stats_; }

    /// Push Stats into the platform's metrics registry as "hf.*" gauges.
    /// Cold path: call before taking a snapshot.
    void publish_metrics();

    /// Boot-time image measurements, in manifest order (attestation input).
    [[nodiscard]] const std::vector<std::pair<std::string, crypto::Digest>>&
    measurements() const {
        return measurements_;
    }

    /// MMIO regions mapped into a VM (device assignment ground truth).
    [[nodiscard]] std::vector<std::string> devices_of(arch::VmId id) const;

    struct ShareGrant {
        arch::VmId owner;
        arch::VmId borrower;
        arch::IpaAddr owner_ipa;
        arch::IpaAddr borrower_ipa;
        std::uint64_t pages;
        bool exclusive = false;  ///< FFA_MEM_LEND: the owner loses access
    };
    /// Grant storage lives in the platform arena: share/lend churn in the
    /// steady state reuses arena space instead of reallocating on the heap.
    using GrantList = std::vector<ShareGrant, sim::ArenaAllocator<ShareGrant>>;
    [[nodiscard]] const GrantList& grants() const { return grants_; }

    // --- integrity tagging (HDFI-style; the "detect" of detect→contain→
    // recover) ----------------------------------------------------------------

    /// One tagged block of SPM-critical state. `measurement` is the SHA-256
    /// of the block's content at tagging time; recovery re-verifies against
    /// it before the frames may be trusted again.
    struct CriticalRegion {
        std::string name;
        arch::PhysAddr base = 0;
        std::uint64_t pages = 0;
        crypto::Digest measurement{};
        bool embargoed = false;  ///< re-verification failed; never reuse
    };

    /// Everything a containment policy needs to know about one violation.
    struct TagViolation {
        arch::VmId offender = 0;
        arch::IpaAddr ipa = 0;
        arch::PhysAddr pa = 0;
        arch::Access access = arch::Access::kRead;
        std::string region;  ///< critical-region name, "" if untracked frame
    };

    /// Arm integrity protection: allocate, deterministically fill, measure
    /// and tag one hypervisor-owned frame block per piece of SPM-critical
    /// state — per-VM stage-2 table frames, the attestation log, the Lamport
    /// key material and the manifest. Off by default so the tags-off hot
    /// path stays at its one-predicted-branch floor; idempotent.
    void protect_critical_state();
    [[nodiscard]] bool critical_armed() const { return critical_armed_; }
    [[nodiscard]] const std::vector<CriticalRegion>& critical_regions() const {
        return critical_;
    }
    [[nodiscard]] const CriticalRegion* find_critical(const std::string& name) const;

    /// Recovery step: recompute the region's content hash and compare with
    /// the measurement taken at tagging time. A mismatch embargoes the
    /// region (its frames must never be reused) and returns false.
    bool reverify_critical(const std::string& name);

    /// Detect → contain handoff, invoked after every recorded tag violation.
    /// resil::ContainmentEngine subscribes here; unset costs nothing (the
    /// whole check is behind the tagged-frame lookup).
    std::function<void(const TagViolation&)> tag_violation_hook;

private:
    friend struct hpcsec::check::CorruptionAccess;

    /// The uniform gate body: descriptor lookup, caller validity, privilege
    /// mask, typed decode, handler. Charges nothing itself.
    HfResult dispatch(arch::CoreId core, arch::VmId caller, Call call,
                      const HfArgs& args);
    /// Slow path when interceptors are attached: before() chain (ascending
    /// stage, short-circuit capable), dispatch, after() chain (descending).
    HfResult hypercall_intercepted(arch::CoreId core, arch::VmId caller,
                                   Call call, const HfArgs& args);

    template <typename Req,
              HfResult (Spm::*Handler)(arch::CoreId, arch::VmId, const Req&)>
    static HfResult invoke_thunk(Spm& spm, arch::CoreId core, arch::VmId caller,
                                 const HfArgs& args) {
        Req req;
        if (!Req::decode(args, req)) {
            ++spm.stats_.invalid_calls;
            return {HfError::kInvalid, 0};
        }
        return (spm.*Handler)(core, caller, req);
    }

    void handle_phys_irq(arch::CoreId core, int irq);
    void enter_vcpu(arch::CoreId core, Vcpu& vcpu, sim::Cycles base_cost);
    void exit_vcpu(arch::CoreId core, Vcpu& vcpu, ExitReason reason,
                   sim::Cycles cost);
    void on_core_idle(arch::CoreId core, arch::Runnable* finished);
    /// Deliver pending virqs to a *running-on-this-core* vcpu; returns cost.
    sim::Cycles drain_virqs(Vcpu& vcpu);
    void inject_virq(Vcpu& vcpu, int virq);
    [[nodiscard]] Vcpu* running_vcpu_on(arch::CoreId core);
    /// Guest personality for `id`, nullptr when none attached (or torn down).
    [[nodiscard]] GuestOsItf* find_guest_os(arch::VmId id);
    void set_core_context(arch::CoreId core, Vm* vmctx);

    // Typed call handlers, one per table row. Privilege and argument range
    // checks already happened in the gate; handlers do semantic validation
    // (target exists, state machine, ownership) and the work.
    HfResult on_version(arch::CoreId core, arch::VmId caller, const abi::Empty&);
    HfResult on_vm_get_count(arch::CoreId core, arch::VmId caller,
                             const abi::Empty&);
    HfResult on_vcpu_get_count(arch::CoreId core, arch::VmId caller,
                               const abi::VcpuGetCountArgs& a);
    HfResult on_vm_get_info(arch::CoreId core, arch::VmId caller,
                            const abi::VmGetInfoArgs& a);
    HfResult on_vcpu_run(arch::CoreId core, arch::VmId caller,
                         const abi::VcpuRunArgs& a);
    HfResult on_vm_configure(arch::CoreId core, arch::VmId caller,
                             const abi::VmConfigureArgs& a);
    HfResult on_msg_send(arch::CoreId core, arch::VmId caller,
                         const abi::MsgSendArgs& a);
    HfResult on_msg_wait(arch::CoreId core, arch::VmId caller, const abi::Empty&);
    HfResult on_yield(arch::CoreId core, arch::VmId caller, const abi::Empty&);
    HfResult on_rx_release(arch::CoreId core, arch::VmId caller,
                           const abi::Empty&);
    HfResult on_mem_share(arch::CoreId core, arch::VmId caller,
                          const abi::MemShareArgs& a);
    HfResult on_mem_lend(arch::CoreId core, arch::VmId caller,
                         const abi::MemLendArgs& a);
    HfResult on_mem_donate(arch::CoreId core, arch::VmId caller,
                           const abi::MemDonateArgs& a);
    HfResult on_mem_reclaim(arch::CoreId core, arch::VmId caller,
                            const abi::MemReclaimArgs& a);
    HfResult on_interrupt_enable(arch::CoreId core, arch::VmId caller,
                                 const abi::InterruptEnableArgs& a);
    HfResult on_interrupt_get(arch::CoreId core, arch::VmId caller,
                              const abi::Empty&);
    HfResult on_interrupt_inject(arch::CoreId core, arch::VmId caller,
                                 const abi::InterruptInjectArgs& a);
    HfResult on_vtimer_set(arch::CoreId core, arch::VmId caller,
                           const abi::VtimerSetArgs& a);
    HfResult on_vtimer_cancel(arch::CoreId core, arch::VmId caller,
                              const abi::VtimerCancelArgs& a);
    HfResult mem_grant(arch::VmId caller, const abi::MemShareArgs& a,
                       bool exclusive);

    /// DFITAGCHECK on the SPM-mediated guest paths (guest_access,
    /// vm_read64/vm_write64). True when the access is clean; a violation
    /// counts, records, fires the hook and returns false. One predicted
    /// branch when no frame is tagged.
    bool tag_check(arch::VmId accessor, arch::IpaAddr ipa, arch::PhysAddr pa,
                   arch::Access access);
    /// Allocate + fill + measure + tag one critical region.
    void protect_new_region(const std::string& name, std::uint64_t pages);
    /// Untag and free a critical region (per-VM stage-2 table block on
    /// partition teardown). Embargoed regions keep their frames forever.
    void release_critical(const std::string& name);
    [[nodiscard]] crypto::Digest measure_region(arch::PhysAddr base,
                                                std::uint64_t pages) const;

    arch::Platform* platform_;
    Manifest manifest_;
    IrqRouter router_;
    bool booted_ = false;

    std::vector<Vm*> vms_;  // index = id - 1; objects live in the platform arena
    PrimaryOsItf* primary_os_ = nullptr;
    std::unordered_map<arch::VmId, GuestOsItf*> guest_os_;
    std::unordered_map<arch::Runnable*, Vcpu*> ctx_to_vcpu_;
    std::vector<Vcpu*> vcpu_on_core_;  // running vcpu per core, nullptr if none

    std::vector<std::pair<std::string, crypto::Digest>> measurements_;
    GrantList grants_;
    std::map<arch::VmId, std::vector<std::string>> device_map_;
    std::vector<CriticalRegion> critical_;
    bool critical_armed_ = false;
    Stats stats_;
    VcpuAuditSink* audit_ = nullptr;
    std::vector<HypercallInterceptor*> interceptors_;  ///< sorted by Stage
    obs::MetricsRegistry::Handle vcpu_run_hist_ = 0;  ///< hf.vcpu_run_us
};

}  // namespace hpcsec::hafnium
