#include "hafnium/vm.h"

#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace hpcsec::hafnium {

const char* to_string(VcpuState s) {
    switch (s) {
        case VcpuState::kOff: return "off";
        case VcpuState::kReady: return "ready";
        case VcpuState::kRunning: return "running";
        case VcpuState::kBlocked: return "blocked";
        case VcpuState::kAborted: return "aborted";
    }
    return "?";
}

const char* to_string(ExitReason r) {
    switch (r) {
        case ExitReason::kPreempted: return "preempted";
        case ExitReason::kYield: return "yield";
        case ExitReason::kBlocked: return "blocked";
        case ExitReason::kAborted: return "aborted";
    }
    return "?";
}

Vm::Vm(arch::VmId id, VmSpec spec, sim::Arena& arena, arch::PtFormat stage2_format)
    : id_(id), spec_(std::move(spec)), stage2_(stage2_format) {
    vcpu_count_ = spec_.vcpu_count;
    vcpus_ = arena.allocate_array<Vcpu>(static_cast<std::size_t>(vcpu_count_));
    for (int i = 0; i < vcpu_count_; ++i) {
        new (&vcpus_[i]) Vcpu(*this, i);
        if constexpr (!std::is_trivially_destructible_v<Vcpu>) {
            arena.register_destructor(&vcpus_[i]);
        }
    }
}

void Vm::check_vcpu_index(int i) const {
    if (i < 0 || i >= vcpu_count_) {
        // sca-suppress(no-throw-guest-path): every hypercall handler
        // validates guest-supplied vcpu indices (0 <= i < vcpu_count)
        // before calling vcpu(); an out-of-range index here is host-code
        // misuse worth fail-stopping, same as vector::at was.
        throw std::out_of_range("Vm::vcpu: index out of range");
    }
}

}  // namespace hpcsec::hafnium
