#include "hafnium/vm.h"

namespace hpcsec::hafnium {

const char* to_string(VcpuState s) {
    switch (s) {
        case VcpuState::kOff: return "off";
        case VcpuState::kReady: return "ready";
        case VcpuState::kRunning: return "running";
        case VcpuState::kBlocked: return "blocked";
        case VcpuState::kAborted: return "aborted";
    }
    return "?";
}

const char* to_string(ExitReason r) {
    switch (r) {
        case ExitReason::kPreempted: return "preempted";
        case ExitReason::kYield: return "yield";
        case ExitReason::kBlocked: return "blocked";
        case ExitReason::kAborted: return "aborted";
    }
    return "?";
}

Vm::Vm(arch::VmId id, VmSpec spec) : id_(id), spec_(std::move(spec)) {
    for (int i = 0; i < spec_.vcpu_count; ++i) {
        vcpus_.push_back(std::make_unique<Vcpu>(*this, i));
    }
}

}  // namespace hpcsec::hafnium
