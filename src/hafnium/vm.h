// VM and VCPU state owned by the SPM.
#pragma once

#include <cstdint>
#include <optional>

#include "arch/exec.h"
#include "arch/irq_bitset.h"
#include "arch/page_table.h"
#include "arch/types.h"
#include "hafnium/manifest.h"
#include "sim/arena.h"
#include "sim/time.h"

namespace hpcsec::hafnium {

enum class VcpuState : std::uint8_t {
    kOff,          ///< never started
    kReady,        ///< runnable, waiting for the primary to schedule it
    kRunning,      ///< currently on a physical core
    kBlocked,      ///< waiting for message/interrupt (FFA_MSG_WAIT / WFI)
    kAborted,      ///< faulted; will not run again
};

[[nodiscard]] const char* to_string(VcpuState s);

/// True when `from` -> `to` is a legal transition of the VCPU state
/// machine: kOff -> kReady -> kRunning <-> kBlocked, with kReady <-> kBlocked
/// for WFI parking/waking and kAborted as the terminal state reachable from
/// anywhere. Self-transitions are legal no-ops.
[[nodiscard]] constexpr bool vcpu_transition_legal(VcpuState from, VcpuState to) {
    if (from == to) return true;
    if (to == VcpuState::kAborted) return true;
    switch (from) {
        case VcpuState::kOff:
            return to == VcpuState::kReady;
        case VcpuState::kReady:
            return to == VcpuState::kRunning || to == VcpuState::kBlocked;
        case VcpuState::kRunning:
            return to == VcpuState::kReady || to == VcpuState::kBlocked;
        case VcpuState::kBlocked:
            return to == VcpuState::kReady;
        case VcpuState::kAborted:
            return false;  // terminal
    }
    return false;
}

/// Why control returned from a VCPU to the scheduler.
enum class ExitReason : std::uint8_t {
    kPreempted,   ///< physical interrupt for the primary
    kYield,       ///< guest voluntarily yielded its slice
    kBlocked,     ///< guest waits for message/interrupt
    kAborted,     ///< guest fault (e.g. stage-2 violation)
};

[[nodiscard]] const char* to_string(ExitReason r);

class Vm;

/// Para-virtual interrupt controller state, per VCPU (Hafnium's vGIC: the
/// "para-virtual interrupt controller interface" secondaries must use).
/// Bitmaps instead of std::set<int>: inject/drain on the dispatch hot loop
/// are single bit ops and next_deliverable is a word-wise intersection,
/// with the same ascending-id order the sets gave.
struct VGicState {
    arch::IrqBitset enabled;
    arch::IrqBitset pending;

    /// Next deliverable virtual interrupt, if any (lowest id first).
    [[nodiscard]] std::optional<int> next_deliverable() const {
        for (int w = 0; w < arch::IrqBitset::kWords; ++w) {
            const std::uint64_t hits = pending.word(w) & enabled.word(w);
            if (hits != 0) return w * 64 + std::countr_zero(hits);
        }
        return std::nullopt;
    }
};

class Vcpu;

/// Audit hook for VCPU state transitions (implemented by check::Auditor).
/// Observing costs one predicted branch per state change when no sink is
/// attached — the same pattern as the obs recorder.
class VcpuAuditSink {
public:
    virtual ~VcpuAuditSink() = default;
    /// Invoked *before* the state is written, so the sink sees both sides.
    virtual void on_vcpu_state(Vcpu& vcpu, VcpuState from, VcpuState to) = 0;
};

class Vcpu {
public:
    Vcpu(Vm& vm, int index) : vm_(&vm), index_(index) {}

    [[nodiscard]] Vm& vm() { return *vm_; }
    [[nodiscard]] const Vm& vm() const { return *vm_; }
    [[nodiscard]] int index() const { return index_; }

    /// The scheduling state. Mutations go through set_state() so the state
    /// machine is auditable; the field itself cannot be written directly.
    [[nodiscard]] VcpuState state() const { return state_; }
    void set_state(VcpuState next) {
        if (audit_ != nullptr && next != state_) {
            audit_->on_vcpu_state(*this, state_, next);
        }
        state_ = next;
    }
    void set_audit(VcpuAuditSink* sink) { audit_ = sink; }
    /// Core this VCPU is assigned to (primary VCPUs are pinned 1:1; secondary
    /// VCPUs get a default incremental spread that the primary may change).
    arch::CoreId assigned_core = -1;
    /// Core it is *currently executing* on, -1 when not running.
    arch::CoreId running_core = -1;

    /// The guest context that consumes CPU time when this VCPU runs
    /// (installed by the guest kernel model).
    arch::Runnable* guest_context = nullptr;

    VGicState vgic;

    /// Virtual-timer emulation: armed deadline in absolute sim time.
    bool vtimer_armed = false;
    sim::SimTime vtimer_deadline = sim::kTimeNever;

    // Statistics.
    sim::SimTime last_enter = 0;  ///< when the SPM last entered this VCPU
    std::uint64_t runs = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t injected_virqs = 0;

private:
    Vm* vm_;
    int index_;
    VcpuState state_ = VcpuState::kOff;
    VcpuAuditSink* audit_ = nullptr;
};

class Vm {
public:
    /// VCPUs are carved out of `arena` as one contiguous array — the
    /// scheduler indexes them without pointer-chasing, and teardown is the
    /// platform arena's O(1) reset rather than per-object frees.
    /// `stage2_format` selects the stage-2 table geometry (ARMv8 4-level or
    /// Sv39x4 per the platform ISA).
    Vm(arch::VmId id, VmSpec spec, sim::Arena& arena,
       arch::PtFormat stage2_format = arch::PtFormat::armv8_4k());

    [[nodiscard]] arch::VmId id() const { return id_; }
    [[nodiscard]] const VmSpec& spec() const { return spec_; }
    [[nodiscard]] VmRole role() const { return spec_.role; }
    [[nodiscard]] arch::World world() const { return spec_.world; }
    [[nodiscard]] const std::string& name() const { return spec_.name; }

    /// Set when the partition was torn down at runtime (dynamic VMs). A
    /// destroyed VM keeps its ID (no reuse) but is no longer schedulable or
    /// translatable.
    bool destroyed = false;

    [[nodiscard]] int vcpu_count() const { return vcpu_count_; }
    [[nodiscard]] Vcpu& vcpu(int i) {
        check_vcpu_index(i);
        return vcpus_[i];
    }
    [[nodiscard]] const Vcpu& vcpu(int i) const {
        check_vcpu_index(i);
        return vcpus_[i];
    }

    /// Guest-physical memory layout. Secondaries see their RAM at IPA 0
    /// (fully virtualized view); the primary and super-secondary are
    /// identity-mapped (IPA == PA) so they can own devices, exactly like
    /// the reference Hafnium. `ipa_base` is where the RAM window starts in
    /// the VM's own address space.
    arch::PhysAddr mem_base = 0;
    arch::IpaAddr ipa_base = 0;
    [[nodiscard]] std::uint64_t mem_bytes() const { return spec_.mem_bytes; }

    /// Stage-2 translation table (the isolation boundary).
    arch::PageTable& stage2() { return stage2_; }
    const arch::PageTable& stage2() const { return stage2_; }

    /// FFA-style mailbox: guest-designated send/recv page IPAs.
    struct Mailbox {
        bool configured = false;
        arch::IpaAddr send_ipa = 0;
        arch::IpaAddr recv_ipa = 0;
        bool recv_full = false;
        std::uint32_t recv_size = 0;
        arch::VmId recv_from = 0;
    } mailbox;

private:
    void check_vcpu_index(int i) const;

    arch::VmId id_;
    VmSpec spec_;
    arch::PageTable stage2_;
    Vcpu* vcpus_ = nullptr;  ///< contiguous, arena-owned
    int vcpu_count_ = 0;
};

}  // namespace hpcsec::hafnium
