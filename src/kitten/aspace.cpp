#include "kitten/aspace.h"

namespace hpcsec::kitten {

bool Aspace::add_region(const AspaceRegion& region) {
    if (region.size == 0) return false;
    if ((region.va | region.size | region.backing) & arch::kPageMask) return false;
    for (const auto& r : regions_) {
        const bool disjoint = region.end() <= r.va || region.va >= r.end();
        if (!disjoint) return false;
    }
    table_.map(region.va, region.backing, region.size, region.perms);
    regions_.push_back(region);
    return true;
}

bool Aspace::remove_region(arch::VirtAddr va) {
    for (auto it = regions_.begin(); it != regions_.end(); ++it) {
        if (it->va == va) {
            table_.unmap(it->va, it->size);
            regions_.erase(it);
            return true;
        }
    }
    return false;
}

const AspaceRegion* Aspace::find_region(arch::VirtAddr va) const {
    for (const auto& r : regions_) {
        if (va >= r.va && va < r.end()) return &r;
    }
    return nullptr;
}

bool Aspace::add_idmap(const std::string& name, arch::VirtAddr base,
                       std::uint64_t size, std::uint8_t perms) {
    return add_region({name, base, size, base, perms});
}

}  // namespace hpcsec::kitten
