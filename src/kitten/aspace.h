// Kitten-style address spaces.
//
// Kitten exposes physical resources directly: an aspace is a small list of
// explicitly placed regions (no demand paging, no overcommit), backed by a
// real stage-1 page table. The ARM64 port builds its kernel idmap and task
// aspaces through this interface.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/page_table.h"
#include "arch/types.h"

namespace hpcsec::kitten {

struct AspaceRegion {
    std::string name;
    arch::VirtAddr va = 0;
    std::uint64_t size = 0;
    arch::IpaAddr backing = 0;  ///< guest-physical backing start
    std::uint8_t perms = arch::kPermRW;

    [[nodiscard]] arch::VirtAddr end() const { return va + size; }
};

class Aspace {
public:
    explicit Aspace(std::string name, arch::Asid asid = 1)
        : name_(std::move(name)), asid_(asid) {}

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] arch::Asid asid() const { return asid_; }

    /// Add and map a region. Rejects overlap with existing regions.
    /// Returns false (and maps nothing) on overlap or misalignment.
    bool add_region(const AspaceRegion& region);

    /// Remove a region by exact VA; unmaps it. False if not found.
    bool remove_region(arch::VirtAddr va);

    [[nodiscard]] const AspaceRegion* find_region(arch::VirtAddr va) const;
    [[nodiscard]] const std::vector<AspaceRegion>& regions() const { return regions_; }

    /// Kitten idmap convenience: VA == backing across [base, base+size).
    bool add_idmap(const std::string& name, arch::VirtAddr base, std::uint64_t size,
                   std::uint8_t perms);

    [[nodiscard]] const arch::PageTable& table() const { return table_; }
    [[nodiscard]] arch::PageTable& table() { return table_; }

    /// Translate through the stage-1 table (functional).
    [[nodiscard]] arch::WalkResult walk(arch::VirtAddr va) const { return table_.walk(va); }

private:
    std::string name_;
    arch::Asid asid_;
    std::vector<AspaceRegion> regions_;
    arch::PageTable table_;
};

}  // namespace hpcsec::kitten
