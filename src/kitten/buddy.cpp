#include "kitten/buddy.h"

#include <bit>
#include <stdexcept>

namespace hpcsec::kitten {

BuddyAllocator::BuddyAllocator(std::uint64_t pool_bytes, std::uint64_t min_bytes)
    : pool_bytes_(pool_bytes), min_bytes_(min_bytes) {
    if (pool_bytes == 0 || min_bytes == 0 || !std::has_single_bit(pool_bytes) ||
        !std::has_single_bit(min_bytes) || min_bytes > pool_bytes) {
        throw std::invalid_argument("BuddyAllocator: sizes must be powers of two");
    }
    max_order_ = std::countr_zero(pool_bytes) - std::countr_zero(min_bytes);
    free_lists_.resize(static_cast<std::size_t>(max_order_) + 1);
    free_lists_[static_cast<std::size_t>(max_order_)].insert(0);
}

int BuddyAllocator::order_for(std::uint64_t bytes) const {
    if (bytes == 0) bytes = 1;
    int order = 0;
    while (block_bytes(order) < bytes) ++order;
    return order;
}

std::optional<std::uint64_t> BuddyAllocator::alloc(std::uint64_t bytes) {
    if (bytes > pool_bytes_) return std::nullopt;
    const int want = order_for(bytes);
    if (want > max_order_) return std::nullopt;
    // Find the smallest free block that fits.
    int order = want;
    while (order <= max_order_ && free_lists_[static_cast<std::size_t>(order)].empty()) {
        ++order;
    }
    if (order > max_order_) return std::nullopt;
    // Take it and split down to the wanted order.
    auto& list = free_lists_[static_cast<std::size_t>(order)];
    const std::uint64_t offset = *list.begin();
    list.erase(list.begin());
    while (order > want) {
        --order;
        // Right half becomes free; keep the left half.
        free_lists_[static_cast<std::size_t>(order)].insert(offset + block_bytes(order));
    }
    live_[offset] = want;
    allocated_bytes_ += block_bytes(want);
    return offset;
}

void BuddyAllocator::free(std::uint64_t offset) {
    const auto it = live_.find(offset);
    if (it == live_.end()) throw std::logic_error("BuddyAllocator::free: not allocated");
    int order = it->second;
    live_.erase(it);
    allocated_bytes_ -= block_bytes(order);

    std::uint64_t off = offset;
    // Coalesce with the buddy while possible.
    while (order < max_order_) {
        const std::uint64_t buddy = off ^ block_bytes(order);
        auto& list = free_lists_[static_cast<std::size_t>(order)];
        const auto bit = list.find(buddy);
        if (bit == list.end()) break;
        list.erase(bit);
        off = std::min(off, buddy);
        ++order;
    }
    free_lists_[static_cast<std::size_t>(order)].insert(off);
}

std::uint64_t BuddyAllocator::largest_free_block() const {
    for (int order = max_order_; order >= 0; --order) {
        if (!free_lists_[static_cast<std::size_t>(order)].empty()) {
            return block_bytes(order);
        }
    }
    return 0;
}

std::size_t BuddyAllocator::fragments() const {
    std::size_t n = 0;
    for (const auto& list : free_lists_) n += list.size();
    return n;
}

}  // namespace hpcsec::kitten
