// Buddy allocator — Kitten's kmem physical-page allocator.
//
// Kitten manages each memory pool with a classic binary-buddy system; the
// kernel model uses one to place mailboxes, channel buffers and aspace
// regions inside the VM's own IPA window. Offsets returned are relative to
// the pool base.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace hpcsec::kitten {

class BuddyAllocator {
public:
    /// Pool of `pool_bytes` (power of two) with minimum block `min_bytes`.
    BuddyAllocator(std::uint64_t pool_bytes, std::uint64_t min_bytes);

    /// Allocate at least `bytes`; returns pool-relative offset or nullopt.
    std::optional<std::uint64_t> alloc(std::uint64_t bytes);

    /// Free a previously allocated block (by its offset).
    void free(std::uint64_t offset);

    [[nodiscard]] std::uint64_t pool_bytes() const { return pool_bytes_; }
    [[nodiscard]] std::uint64_t allocated_bytes() const { return allocated_bytes_; }
    [[nodiscard]] std::uint64_t free_bytes() const { return pool_bytes_ - allocated_bytes_; }
    /// Largest single allocation that would currently succeed.
    [[nodiscard]] std::uint64_t largest_free_block() const;
    [[nodiscard]] std::size_t fragments() const;

private:
    [[nodiscard]] int order_for(std::uint64_t bytes) const;
    [[nodiscard]] std::uint64_t block_bytes(int order) const {
        return min_bytes_ << order;
    }

    std::uint64_t pool_bytes_;
    std::uint64_t min_bytes_;
    int max_order_;
    // free_lists_[order] = set of offsets of free blocks of that order.
    std::vector<std::set<std::uint64_t>> free_lists_;
    // offset -> order of live allocations.
    std::map<std::uint64_t, int> live_;
    std::uint64_t allocated_bytes_ = 0;
};

}  // namespace hpcsec::kitten
