#include "kitten/guest.h"

#include "arch/isa.h"

namespace hpcsec::kitten {

KittenGuestOs::KittenGuestOs(hafnium::Spm& spm, hafnium::Vm& vm, GuestConfig config)
    : spm_(&spm), vm_(&vm), config_(config) {
    threads_.assign(static_cast<std::size_t>(vm.vcpu_count()), {});
    spm.attach_guest(vm.id(), this);
}

void KittenGuestOs::set_thread(int vcpu_index, arch::Runnable* thread) {
    auto& q = threads_.at(static_cast<std::size_t>(vcpu_index));
    q.clear();
    if (thread != nullptr) q.push_back(thread);
    spm_->set_guest_context(vm_->vcpu(vcpu_index), thread);
}

void KittenGuestOs::add_thread(int vcpu_index, arch::Runnable* thread) {
    auto& q = threads_.at(static_cast<std::size_t>(vcpu_index));
    q.push_back(thread);
    if (q.size() == 1) {
        spm_->set_guest_context(vm_->vcpu(vcpu_index), thread);
    }
}

void KittenGuestOs::start() {
    for (int v = 0; v < vm_->vcpu_count(); ++v) {
        hafnium::Vcpu& vcpu = vm_->vcpu(v);
        // Para-virtual interrupt controller setup (the features Hafnium
        // actually lets a secondary use).
        hf::interrupt_enable(*spm_, vcpu.assigned_core, vm_->id(),
                             virt_timer_irq(), v);
        hf::interrupt_enable(*spm_, vcpu.assigned_core, vm_->id(),
                             hafnium::kMessageVirq, v);
        if (config_.tick_enabled) arm_vtimer(vcpu);
        if (!threads_[static_cast<std::size_t>(v)].empty()) {
            spm_->make_vcpu_ready(vcpu);
        }
    }
}

void KittenGuestOs::arm_vtimer(hafnium::Vcpu& vcpu) {
    const auto period =
        spm_->platform().engine().clock().period_of_hz(config_.tick_hz);
    const sim::SimTime deadline = spm_->platform().engine().now() + period;
    const arch::CoreId core =
        vcpu.running_core >= 0 ? vcpu.running_core : vcpu.assigned_core;
    hf::vtimer_set(*spm_, core, vm_->id(), deadline, vcpu.index());
}

void KittenGuestOs::wake_runnable_vcpus() {
    for (int v = 0; v < vm_->vcpu_count(); ++v) {
        hafnium::Vcpu& vcpu = vm_->vcpu(v);
        if (vcpu.state() != hafnium::VcpuState::kBlocked) continue;
        for (arch::Runnable* t : threads_[static_cast<std::size_t>(v)]) {
            if (t->remaining_units() > 0) {
                spm_->wake_vcpu(vcpu);
                break;
            }
        }
    }
}

sim::Cycles KittenGuestOs::on_virq(hafnium::Vcpu& vcpu, int virq) {
    // The virtual-timer line id is an ISA runtime property (IrqLayout), so
    // this is an if/else chain rather than a switch on constants.
    if (virq == virt_timer_irq()) {
        ++stats_.ticks;
        spm_->platform().recorder().instant(
            spm_->platform().engine().now(), obs::EventType::kGuestTick,
            vcpu.running_core, vm_->id(), vcpu.index());
        if (heartbeat_hook) heartbeat_hook(vcpu);
        if (config_.tick_enabled) arm_vtimer(vcpu);
        return config_.tick_service;
    }
    if (virq == hafnium::kMessageVirq) {
        ++stats_.messages;
        if (message_hook) message_hook();
        return config_.msg_service;
    }
    // Forwarded device IRQ (super-secondary role): generic handler.
    return config_.msg_service;
}

arch::Runnable* KittenGuestOs::on_idle(hafnium::Vcpu& vcpu) {
    auto& q = threads_.at(static_cast<std::size_t>(vcpu.index()));
    // LWK run queue: the finished/blocked current thread rotates to the
    // back; pick the first thread with work left.
    for (std::size_t probe = 0; probe < q.size(); ++probe) {
        arch::Runnable* t = q.front();
        if (t->remaining_units() > 0) return t;
        q.pop_front();
        q.push_back(t);
    }
    return nullptr;  // run queue empty of work: WFI / FFA_MSG_WAIT
}

}  // namespace hpcsec::kitten
