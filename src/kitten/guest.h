// Kitten as a secondary (or super-secondary) guest under Hafnium.
//
// The paper §IV.b: porting Kitten into a secondary VM required disabling
// blocked architectural features (performance counters, debug registers,
// dc isw cache ops) and switching to the para-virtual interrupt controller
// and the dedicated virtual timer channel. This model captures the
// *behavioural* consequences: the guest ticks via the virtual timer, acks
// interrupts through the vGIC hypercalls, and runs one workload thread per
// VCPU under the LWK's run-to-completion policy.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "hafnium/interfaces.h"
#include "hafnium/spm.h"

namespace hpcsec::kitten {

struct GuestConfig {
    double tick_hz = 10.0;
    sim::Cycles tick_service = 1900;   ///< guest-side tick handler cost
    sim::Cycles msg_service = 1200;    ///< mailbox-notification handler cost
    bool tick_enabled = true;
};

class KittenGuestOs : public hafnium::GuestOsItf {
public:
    KittenGuestOs(hafnium::Spm& spm, hafnium::Vm& vm, GuestConfig config = {});
    ~KittenGuestOs() override = default;

    /// Install the workload thread that runs on a VCPU (replaces any
    /// existing thread list).
    void set_thread(int vcpu_index, arch::Runnable* thread);

    /// Add an additional thread to a VCPU's run queue. The guest's LWK
    /// scheduler runs threads to completion and round-robins the queue
    /// when the current one blocks or finishes its work.
    void add_thread(int vcpu_index, arch::Runnable* thread);

    [[nodiscard]] std::size_t thread_count(int vcpu_index) const {
        return threads_.at(static_cast<std::size_t>(vcpu_index)).size();
    }

    /// Guest kernel boot: registers with the SPM, enables the para-virtual
    /// interrupt lines, arms per-VCPU virtual timers, marks VCPUs ready.
    void start();

    /// Barrier-release helper: wake every blocked VCPU whose thread has
    /// work again (wired to ParallelWorkload::on_release).
    void wake_runnable_vcpus();

    /// Invoked when a mailbox message arrives for this VM.
    std::function<void()> message_hook;

    /// Invoked on every serviced virtual-timer tick — the guest's liveness
    /// signal. The resilience watchdog (src/resil/) feeds per-VCPU heartbeat
    /// timestamps from here; unset in ordinary runs (one branch per tick).
    std::function<void(hafnium::Vcpu&)> heartbeat_hook;

    // --- GuestOsItf -----------------------------------------------------------
    sim::Cycles on_virq(hafnium::Vcpu& vcpu, int virq) override;
    arch::Runnable* on_idle(hafnium::Vcpu& vcpu) override;

    struct Stats {
        std::uint64_t ticks = 0;
        std::uint64_t messages = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    void arm_vtimer(hafnium::Vcpu& vcpu);
    /// Guest virtual-timer line (ARM vtimer PPI / RISC-V VSTI) per the
    /// platform's configured ISA.
    [[nodiscard]] int virt_timer_irq() const {
        return spm_->platform().isa_ops().irq.virt_timer;
    }

    hafnium::Spm* spm_;
    hafnium::Vm* vm_;
    GuestConfig config_;
    /// Per-VCPU run queues (front == current thread).
    std::vector<std::deque<arch::Runnable*>> threads_;
    Stats stats_;
};

}  // namespace hpcsec::kitten
