#include "kitten/kitten.h"

#include <stdexcept>

namespace hpcsec::kitten {

namespace {
/// IPI id (ARM SGI / RISC-V software interrupt) used as the
/// rescheduling kick between Kitten cores.
constexpr int kSgiResched = 1;
}  // namespace

KittenKernel::KittenKernel(arch::Platform& platform, KittenConfig config)
    : platform_(&platform), config_(config), rng_(platform.rng().split()) {
    runq_.resize(static_cast<std::size_t>(platform.ncores()));
    current_.assign(static_cast<std::size_t>(platform.ncores()), nullptr);
}

KittenKernel::KittenKernel(arch::Platform& platform, hafnium::Spm& spm,
                           KittenConfig config)
    : KittenKernel(platform, config) {
    spm_ = &spm;
    spm.attach_primary(this);
}

void KittenKernel::boot() {
    if (booted_) throw std::logic_error("KittenKernel::boot: already booted");
    if (is_primary_vm() && !spm_->booted()) {
        throw std::logic_error("KittenKernel::boot: SPM must boot first");
    }
    // Build the kernel address space: identity map of the kernel's own
    // memory window (native: all of DRAM; primary VM: its identity-mapped
    // partition), with the kmem heap as a distinct RW region.
    {
        arch::VirtAddr base;
        std::uint64_t bytes;
        if (is_primary_vm()) {
            const hafnium::Vm& self = spm_->primary_vm();
            base = self.ipa_base;
            bytes = self.mem_bytes();
        } else {
            base = platform_->config().ram_base;
            bytes = platform_->config().ram_bytes;
        }
        const std::uint64_t heap_bytes = kmem_.pool_bytes();
        const arch::VirtAddr heap_base = base + bytes - heap_bytes;
        kas_.add_idmap("kernel-idmap", base, bytes - heap_bytes,
                       arch::kPermRWX);
        kas_.add_idmap("kmem-heap", heap_base, heap_bytes, arch::kPermRW);
    }
    for (int c = 0; c < platform_->ncores(); ++c) {
        arch::Core& core = platform_->core(c);
        if (!is_primary_vm()) {
            // Native: take over vectors, power the core via PSCI, own the
            // executor completion hook.
            core.set_irq_handler([this, c](int irq) { native_irq(c, irq); });
            core.exec().set_on_complete(
                [this, c](arch::Runnable* r) { on_task_complete(c, r); });
            const arch::El kernel_level = platform_->isa_ops().guest_kernel_level;
            platform_->monitor().cpu_on(
                c, [kernel_level](arch::Core& k) { k.set_el(kernel_level); });
            core.set_irq_masked(false);
            platform_->irqc().enable_irq(platform_->isa_ops().irq.phys_timer);
            for (int s = 0; s < 16; ++s) platform_->irqc().enable_irq(s);
        }
        if (config_.tick_enabled) {
            // First tick with a random per-core phase (cores come online at
            // slightly different times); steady-state period thereafter.
            const auto period =
                platform_->engine().clock().period_of_hz(config_.tick_hz);
            const auto phase = static_cast<sim::Cycles>(
                rng_.next_double() * static_cast<double>(period));
            platform_->core(c).timer().set_deadline(
                arch::TimerChannel::kPhys, platform_->engine().now() + phase + 1);
        }
    }
    booted_ = true;
    for (int c = 0; c < platform_->ncores(); ++c) dispatch(c);
}

void KittenKernel::arm_tick(arch::CoreId core) {
    const auto period = platform_->engine().clock().period_of_hz(config_.tick_hz);
    platform_->core(core).timer().set_deadline(arch::TimerChannel::kPhys,
                                               platform_->engine().now() + period);
}

KThread& KittenKernel::add_app_thread(arch::CoreId core, arch::Runnable* ctx,
                                      std::string name) {
    auto t = std::make_unique<KThread>();
    t->name = std::move(name);
    t->kind = KThread::Kind::kApp;
    t->core = core;
    t->ctx = ctx;
    threads_.push_back(std::move(t));
    wake(*threads_.back());
    return *threads_.back();
}

KThread& KittenKernel::add_worker_thread(arch::CoreId core, arch::Runnable* ctx,
                                         std::string name) {
    KThread& t = add_app_thread(core, ctx, std::move(name));
    t.kind = KThread::Kind::kWorker;
    return t;
}

KThread& KittenKernel::add_control_task(arch::CoreId core, arch::Runnable* ctx,
                                        std::string name) {
    auto t = std::make_unique<KThread>();
    t->name = std::move(name);
    t->kind = KThread::Kind::kControl;
    t->core = core;
    t->ctx = ctx;
    t->state = KThread::State::kBlocked;  // waits for messages
    threads_.push_back(std::move(t));
    return *threads_.back();
}

void KittenKernel::launch_vm(arch::VmId vm_id) {
    if (!is_primary_vm()) {
        throw std::logic_error("launch_vm: only the primary-VM personality hosts VMs");
    }
    hafnium::Vm& vm = spm_->vm(vm_id);
    for (int v = 0; v < vm.vcpu_count(); ++v) {
        hafnium::Vcpu& vcpu = vm.vcpu(v);
        auto t = std::make_unique<KThread>();
        t->name = vm.name() + "-vcpu" + std::to_string(v);
        t->kind = KThread::Kind::kVcpuProxy;
        t->core = vcpu.assigned_core;
        t->vcpu = &vcpu;
        threads_.push_back(std::move(t));
        KThread& thr = *threads_.back();
        if (vcpu.state() == hafnium::VcpuState::kReady) {
            thr.state = KThread::State::kReady;
            enqueue(thr);
            if (current_[static_cast<std::size_t>(thr.core)] == nullptr && booted_) {
                dispatch(thr.core);
            }
        } else {
            thr.state = KThread::State::kBlocked;
        }
    }
}

void KittenKernel::stop_vm(arch::VmId vm_id) {
    for (auto& t : threads_) {
        if (t->kind == KThread::Kind::kVcpuProxy && t->vcpu != nullptr &&
            t->vcpu->vm().id() == vm_id && t->state != KThread::State::kExited) {
            exit_thread(*t);
        }
    }
}

bool KittenKernel::migrate_vcpu(arch::VmId vm_id, int vcpu, arch::CoreId new_core) {
    if (new_core < 0 || new_core >= platform_->ncores()) return false;
    for (auto& t : threads_) {
        if (t->kind == KThread::Kind::kVcpuProxy && t->vcpu != nullptr &&
            t->vcpu->vm().id() == vm_id && t->vcpu->index() == vcpu) {
            if (t->state == KThread::State::kRunning) return false;  // stop it first
            auto& q = runq_[static_cast<std::size_t>(t->core)];
            for (auto it = q.begin(); it != q.end(); ++it) {
                if (*it == t.get()) {
                    q.erase(it);
                    break;
                }
            }
            t->core = new_core;
            t->vcpu->assigned_core = new_core;
            if (t->state == KThread::State::kReady) {
                enqueue(*t);
                platform_->irqc().send_ipi(new_core, kSgiResched);
                ++stats_.resched_ipis;
            }
            return true;
        }
    }
    return false;
}

void KittenKernel::enqueue(KThread& thread, bool front) {
    auto& q = runq_[static_cast<std::size_t>(thread.core)];
    if (front) {
        q.push_front(&thread);
    } else {
        // sca-suppress(hot-path-alloc): run-queue depth is bounded by the
        // task count; the deque's blocks are warmed in the first rounds.
        q.push_back(&thread);
    }
}

void KittenKernel::wake(KThread& thread) {
    if (thread.state == KThread::State::kReady ||
        thread.state == KThread::State::kRunning ||
        thread.state == KThread::State::kExited) {
        return;
    }
    thread.state = KThread::State::kReady;
    enqueue(thread);
    if (!booted_) return;
    if (current_[static_cast<std::size_t>(thread.core)] == nullptr) {
        // Idle core: kick it with a rescheduling IPI (Hafnium has no
        // cross-core hypercalls, so the primary does its own IPIs).
        platform_->irqc().send_ipi(thread.core, kSgiResched);
        ++stats_.resched_ipis;
    }
}

void KittenKernel::block(KThread& thread) {
    if (thread.state == KThread::State::kReady) {
        auto& q = runq_[static_cast<std::size_t>(thread.core)];
        for (auto it = q.begin(); it != q.end(); ++it) {
            if (*it == &thread) {
                q.erase(it);
                break;
            }
        }
    }
    if (thread.state != KThread::State::kExited) {
        thread.state = KThread::State::kBlocked;
    }
}

void KittenKernel::exit_thread(KThread& thread) {
    block(thread);
    thread.state = KThread::State::kExited;
    KThread*& cur = current_[static_cast<std::size_t>(thread.core)];
    if (cur == &thread) cur = nullptr;
}

KThread* KittenKernel::find_thread(const std::string& name) {
    for (auto& t : threads_) {
        if (t->name == name) return t.get();
    }
    return nullptr;
}

KThread* KittenKernel::proxy_for(const hafnium::Vcpu& vcpu) {
    for (auto& t : threads_) {
        if (t->kind == KThread::Kind::kVcpuProxy && t->vcpu == &vcpu &&
            t->state != KThread::State::kExited) {
            return t.get();
        }
    }
    return nullptr;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void KittenKernel::dispatch(arch::CoreId core) {
    if (!booted_) return;
    if (current_[static_cast<std::size_t>(core)] != nullptr) return;
    auto& q = runq_[static_cast<std::size_t>(core)];
    const arch::PerfModel& perf = platform_->perf();
    arch::Executor& ex = platform_->core(core).exec();

    while (!q.empty()) {
        KThread* t = q.front();
        q.pop_front();
        if (t->state != KThread::State::kReady) continue;

        if (t->kind == KThread::Kind::kVcpuProxy) {
            t->state = KThread::State::kRunning;
            current_[static_cast<std::size_t>(core)] = t;
            ++t->dispatches;
            ++stats_.dispatches;
            platform_->recorder().instant(platform_->engine().now(),
                                          obs::EventType::kContextSwitch, core,
                                          static_cast<std::int64_t>(t->kind));
            ex.charge(perf.sched_pick_kitten);
            const hafnium::HfResult r = hf::vcpu_run(
                *spm_, core, self_id(), t->vcpu->vm().id(), t->vcpu->index());
            if (!r.ok()) {
                // VCPU not runnable after all: block the proxy and retry.
                current_[static_cast<std::size_t>(core)] = nullptr;
                t->state = KThread::State::kBlocked;
                continue;
            }
            return;
        }

        // App / control / worker context runs directly.
        t->state = KThread::State::kRunning;
        current_[static_cast<std::size_t>(core)] = t;
        ++t->dispatches;
        ++stats_.dispatches;
        platform_->recorder().instant(platform_->engine().now(),
                                      obs::EventType::kContextSwitch, core,
                                      static_cast<std::int64_t>(t->kind));
        ex.charge(perf.sched_pick_kitten);
        ex.begin(t->ctx);
        return;
    }
    // Nothing to run: core idles (WFI).
}

// ---------------------------------------------------------------------------
// Interrupts
// ---------------------------------------------------------------------------

void KittenKernel::native_irq(arch::CoreId core, int irq) {
    // Native exception vector: preempt whatever runs, then handle.
    const arch::PerfModel& perf = platform_->perf();
    arch::Executor& ex = platform_->core(core).exec();
    ex.preempt();
    KThread*& cur = current_[static_cast<std::size_t>(core)];
    if (cur != nullptr) {
        // The interrupted thread resumes after the handler (front of queue).
        cur->state = KThread::State::kReady;
        enqueue(*cur, /*front=*/true);
        cur = nullptr;
    }
    ex.charge(perf.irq_entry_exit_kernel);
    if (irq == platform_->isa_ops().irq.phys_timer) {
        handle_tick(core);
    }
    dispatch(core);
}

void KittenKernel::handle_tick(arch::CoreId core) {
    const arch::PerfModel& perf = platform_->perf();
    arch::Executor& ex = platform_->core(core).exec();
    ++stats_.ticks;
    platform_->recorder().instant(platform_->engine().now(),
                                  obs::EventType::kKernelTick, core);
    const double service =
        std::max(500.0, rng_.normal(static_cast<double>(perf.kitten_tick_service),
                                    static_cast<double>(perf.kitten_tick_jitter)));
    ex.charge(static_cast<sim::Cycles>(service));
    platform_->profiler().charge(core, obs::ProfPath::kTimerTick,
                                 static_cast<sim::Cycles>(service));
    if (config_.tick_enabled) arm_tick(core);
    // Round-robin quantum expiry: the interrupted thread sits at the front;
    // rotate it behind any other ready thread. With one runnable thread per
    // core (the common LWK setup) this is a no-op.
    auto& q = runq_[static_cast<std::size_t>(core)];
    if (q.size() > 1) {
        q.push_back(q.front());
        q.pop_front();
    }
}

void KittenKernel::on_interrupt(arch::CoreId core, int irq) {
    // Primary-VM personality: the SPM already charged trap + switch costs
    // and preempted the core; we account the kernel-side handling.
    KThread*& cur = current_[static_cast<std::size_t>(core)];
    if (cur != nullptr && cur->kind != KThread::Kind::kVcpuProxy) {
        // One of our own tasks was interrupted; let it resume first.
        cur->state = KThread::State::kReady;
        enqueue(*cur, /*front=*/true);
        cur = nullptr;
    }
    if (irq == platform_->isa_ops().irq.phys_timer) {
        handle_tick(core);
    } else if (irq >= arch::kExternalBase) {
        // Device IRQ: the paper's current approach — the primary forwards it
        // to the super-secondary VM.
        const arch::PerfModel& perf = platform_->perf();
        platform_->core(core).exec().charge(perf.irq_entry_exit_kernel);
        if (hafnium::Vm* ss = spm_->super_secondary()) {
            hf::interrupt_inject(*spm_, core, self_id(), ss->id(), /*vcpu=*/0, irq);
            ++stats_.forwarded_irqs;
        }
    }
    // SGI rescheduling IPIs just fall through to dispatch.
    dispatch(core);
}

void KittenKernel::on_vcpu_exit(arch::CoreId core, hafnium::Vcpu& vcpu,
                                hafnium::ExitReason reason) {
    KThread* proxy = proxy_for(vcpu);
    if (proxy == nullptr) return;
    KThread*& cur = current_[static_cast<std::size_t>(core)];
    if (cur == proxy) cur = nullptr;
    switch (reason) {
        case hafnium::ExitReason::kPreempted:
            proxy->state = KThread::State::kReady;
            enqueue(*proxy, /*front=*/true);
            // on_interrupt() follows and will dispatch.
            break;
        case hafnium::ExitReason::kYield:
            proxy->state = KThread::State::kReady;
            enqueue(*proxy);
            dispatch(core);
            break;
        case hafnium::ExitReason::kBlocked:
            proxy->state = KThread::State::kBlocked;
            dispatch(core);
            break;
        case hafnium::ExitReason::kAborted:
            exit_thread(*proxy);
            dispatch(core);
            break;
    }
}

void KittenKernel::on_vcpu_wake(hafnium::Vcpu& vcpu) {
    if (KThread* proxy = proxy_for(vcpu)) wake(*proxy);
}

void KittenKernel::on_task_complete(arch::CoreId core, arch::Runnable* task) {
    KThread*& cur = current_[static_cast<std::size_t>(core)];
    if (cur != nullptr && cur->ctx == task) {
        KThread* t = cur;
        cur = nullptr;
        if (task->remaining_units() > 0) {
            // More work appeared during completion (e.g. barrier release):
            // keep it runnable.
            t->state = KThread::State::kReady;
            enqueue(*t, /*front=*/true);
        } else {
            t->state = KThread::State::kBlocked;
        }
    }
    dispatch(core);
}

void KittenKernel::on_message(arch::VmId from) {
    if (message_hook) message_hook(from);
}

}  // namespace hpcsec::kitten
