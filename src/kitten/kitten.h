// The Kitten lightweight kernel model (ARM64 port).
//
// Two personalities, as in the paper:
//  * native: Kitten owns the hardware — exception vectors, physical timer,
//    per-core run queues — and runs application threads directly;
//  * primary VM: Kitten is the Hafnium scheduling VM. Each hosted VCPU gets
//    a kernel thread whose "execution" is an HF_VCPU_RUN hypercall; the
//    physical timer interrupts are routed to Kitten by the SPM, and device
//    IRQs are forwarded on to the super-secondary VM.
//
// Scheduling is deliberately simple (the LWK philosophy): strict per-core
// round-robin run queues, a large quantum (one tick at 10 Hz by default),
// no background tasks, no deferred work, no load balancing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "hafnium/interfaces.h"
#include "hafnium/spm.h"
#include "kitten/aspace.h"
#include "kitten/buddy.h"
#include "kitten/thread.h"

namespace hpcsec::kitten {

struct KittenConfig {
    double tick_hz = 10.0;  ///< "significantly larger time slices … lower
                            ///  timer tick rates" than a FWK
    bool tick_enabled = true;
};

class KittenKernel : public hafnium::PrimaryOsItf {
public:
    /// Native personality: Kitten directly on the platform.
    KittenKernel(arch::Platform& platform, KittenConfig config);

    /// Primary-VM personality: Kitten as Hafnium's scheduling VM.
    KittenKernel(arch::Platform& platform, hafnium::Spm& spm, KittenConfig config);

    ~KittenKernel() override = default;

    [[nodiscard]] bool is_primary_vm() const { return spm_ != nullptr; }

    /// Bring the kernel up: install handlers (native), arm per-core ticks,
    /// start dispatching.
    void boot();
    [[nodiscard]] bool booted() const { return booted_; }

    // --- thread management ---------------------------------------------------
    KThread& add_app_thread(arch::CoreId core, arch::Runnable* ctx, std::string name);
    KThread& add_worker_thread(arch::CoreId core, arch::Runnable* ctx, std::string name);
    KThread& add_control_task(arch::CoreId core, arch::Runnable* ctx, std::string name);

    /// Primary-VM only: create one VCPU-proxy kernel thread per VCPU of the
    /// target VM ("hafnium uses the same approach as the Linux implementation
    /// and creates a dedicated kernel thread for each of the VM's VCPUs").
    void launch_vm(arch::VmId vm);
    /// Tear the proxies down (the VM stops being scheduled).
    void stop_vm(arch::VmId vm);

    /// Move a VCPU proxy to another core ("CPU assignments can be configured
    /// and even modified during the secondary VM's execution").
    bool migrate_vcpu(arch::VmId vm, int vcpu, arch::CoreId new_core);

    void wake(KThread& thread);
    void block(KThread& thread);
    void exit_thread(KThread& thread);

    [[nodiscard]] const std::vector<std::unique_ptr<KThread>>& threads() const {
        return threads_;
    }
    [[nodiscard]] KThread* find_thread(const std::string& name);
    [[nodiscard]] KThread* current_on(arch::CoreId core) {
        return current_[static_cast<std::size_t>(core)];
    }

    /// Kernel heap (buddy-managed, offsets within the kernel's own memory).
    BuddyAllocator& kmem() { return kmem_; }

    /// The kernel address space built at boot: the ARM64 port's idmap over
    /// the kernel's physical window plus the kmem heap region. Stage 1 of
    /// the kernel's own translation regime (stage 2, when present, belongs
    /// to the SPM).
    [[nodiscard]] const Aspace& kernel_aspace() const { return kas_; }

    // --- PrimaryOsItf ---------------------------------------------------------
    void on_interrupt(arch::CoreId core, int irq) override;
    void on_vcpu_exit(arch::CoreId core, hafnium::Vcpu& vcpu,
                      hafnium::ExitReason reason) override;
    void on_vcpu_wake(hafnium::Vcpu& vcpu) override;
    void on_task_complete(arch::CoreId core, arch::Runnable* task) override;
    void on_message(arch::VmId from) override;

    /// Hook invoked when a mailbox message arrives (wired to the control
    /// task by the integration layer).
    std::function<void(arch::VmId from)> message_hook;

    struct Stats {
        std::uint64_t ticks = 0;
        std::uint64_t dispatches = 0;
        std::uint64_t forwarded_irqs = 0;
        std::uint64_t resched_ipis = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

    void dispatch(arch::CoreId core);

private:
    void native_irq(arch::CoreId core, int irq);
    void handle_tick(arch::CoreId core);
    void arm_tick(arch::CoreId core);
    void enqueue(KThread& thread, bool front = false);
    [[nodiscard]] KThread* proxy_for(const hafnium::Vcpu& vcpu);
    [[nodiscard]] arch::VmId self_id() const { return arch::kPrimaryVmId; }

    arch::Platform* platform_;
    hafnium::Spm* spm_ = nullptr;  // null in native personality
    KittenConfig config_;
    bool booted_ = false;
    sim::Rng rng_;

    std::vector<std::unique_ptr<KThread>> threads_;
    std::vector<std::deque<KThread*>> runq_;   // per core
    std::vector<KThread*> current_;            // per core
    BuddyAllocator kmem_{1ull << 24, arch::kPageSize};  // 16 MiB kernel heap
    Aspace kas_{"kitten-kernel"};
    Stats stats_;
};

}  // namespace hpcsec::kitten
