// Kernel threads, shared by the Kitten and Linux kernel models.
#pragma once

#include <cstdint>
#include <string>

#include "arch/exec.h"
#include "arch/types.h"

namespace hpcsec::hafnium {
class Vcpu;
}

namespace hpcsec::kitten {

struct KThread {
    enum class Kind : std::uint8_t {
        kApp,        ///< workload thread (native configuration)
        kVcpuProxy,  ///< kernel thread holding a handle to one Hafnium VCPU
        kControl,    ///< VM-management control task
        kWorker,     ///< background/service thread
    };
    enum class State : std::uint8_t { kReady, kRunning, kBlocked, kExited };

    std::string name;
    Kind kind = Kind::kApp;
    State state = State::kBlocked;
    arch::CoreId core = 0;              ///< affinity (Kitten pins threads)
    arch::Runnable* ctx = nullptr;      ///< app/control/worker context
    hafnium::Vcpu* vcpu = nullptr;      ///< vcpu-proxy target
    std::uint64_t dispatches = 0;
};

}  // namespace hpcsec::kitten
