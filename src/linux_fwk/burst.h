// Finite "background burst" runnable: the unit of kworker/softirq noise.
#pragma once

#include <string>

#include "arch/exec.h"

namespace hpcsec::linux_fwk {

class BurstWork : public arch::Runnable {
public:
    BurstWork(std::string label, arch::TranslationMode mode)
        : label_(std::move(label)), mode_(mode) {
        // Bursts are kernel-ish work: mildly memory-bound, small footprint.
        profile_.cycles_per_unit = 1.0;  // one unit == one cycle of burst
        profile_.mem_refs_per_unit = 0.05;
        profile_.tlb_miss_rate = 0.05;
        profile_.working_set_pages = 16;
    }

    /// Load a fresh burst of `cycles` of work.
    void refill(double cycles) { remaining_ = cycles; total_ += cycles; }

    [[nodiscard]] std::string_view label() const override { return label_; }
    [[nodiscard]] double remaining_units() const override { return remaining_; }
    void advance(double units, sim::SimTime) override {
        remaining_ = units >= remaining_ ? 0.0 : remaining_ - units;
    }
    [[nodiscard]] const arch::WorkProfile& profile() const override { return profile_; }
    [[nodiscard]] arch::TranslationMode mode() const override { return mode_; }

    [[nodiscard]] double total_injected() const { return total_; }

private:
    std::string label_;
    arch::TranslationMode mode_;
    arch::WorkProfile profile_;
    double remaining_ = 0.0;
    double total_ = 0.0;
};

}  // namespace hpcsec::linux_fwk
