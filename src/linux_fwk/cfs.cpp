#include "linux_fwk/cfs.h"

#include <algorithm>

namespace hpcsec::linux_fwk {

void CfsRunqueue::enqueue(SchedEntity& se, bool wakeup) {
    if (wakeup) {
        // Sleeper fairness: a waking task is placed slightly behind
        // min_vruntime so it competes immediately (and often preempts) —
        // this is precisely the behaviour that lets kworkers elbow in
        // front of VCPU threads.
        const double credit = tun_.sched_latency_cycles / 2.0;
        se.vruntime = std::max(se.vruntime, min_vruntime_ - credit);
        ++se.wakeups;
    }
    se.state = SchedEntity::State::kQueued;
    tree_.insert(&se);
}

void CfsRunqueue::dequeue(SchedEntity& se) { tree_.erase(&se); }

SchedEntity* CfsRunqueue::pick_next() {
    if (tree_.empty()) return nullptr;
    SchedEntity* se = *tree_.begin();
    tree_.erase(tree_.begin());
    se->state = SchedEntity::State::kRunning;
    ++se->dispatches;
    min_vruntime_ = std::max(min_vruntime_, se->vruntime);
    return se;
}

void CfsRunqueue::put_prev(SchedEntity& se) {
    se.state = SchedEntity::State::kQueued;
    tree_.insert(&se);
}

void CfsRunqueue::update_curr(SchedEntity& se, double delta_cycles) {
    se.vruntime += delta_cycles * static_cast<double>(kNiceZeroWeight) /
                   static_cast<double>(se.weight);
    min_vruntime_ = std::max(min_vruntime_, std::min(se.vruntime, tree_.empty()
                                                        ? se.vruntime
                                                        : (*tree_.begin())->vruntime));
}

bool CfsRunqueue::should_preempt(const SchedEntity& curr) const {
    if (tree_.empty()) return false;
    const SchedEntity* left = *tree_.begin();
    return left->vruntime + tun_.wakeup_granularity_cycles < curr.vruntime;
}

}  // namespace hpcsec::linux_fwk
