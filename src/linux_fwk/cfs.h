// CFS-style fair scheduler model.
//
// This is the commodity baseline the paper replaces: vruntime-ordered
// entities, sleeper fairness credit on wakeup, wakeup-granularity preemption
// checks — the behaviours that make the Linux scheduler "optimized around a
// time-shared process based model" and noisy for VM workloads.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "arch/exec.h"
#include "arch/types.h"

namespace hpcsec::hafnium {
class Vcpu;
}

namespace hpcsec::linux_fwk {

inline constexpr int kNiceZeroWeight = 1024;

struct SchedEntity {
    enum class Kind : std::uint8_t { kVcpuProxy, kKworker, kKsoftirqd, kTask };
    enum class State : std::uint8_t { kQueued, kRunning, kBlocked, kExited };

    std::string name;
    Kind kind = Kind::kTask;
    State state = State::kBlocked;
    arch::CoreId core = 0;
    int weight = kNiceZeroWeight;
    double vruntime = 0.0;  ///< weight-normalized virtual runtime (cycles)
    arch::Runnable* ctx = nullptr;
    hafnium::Vcpu* vcpu = nullptr;
    std::uint64_t dispatches = 0;
    std::uint64_t wakeups = 0;
};

/// One per core (no load balancing in the model; entities are pinned, which
/// matches how VCPU threads are typically affinitized in HPC deployments).
class CfsRunqueue {
public:
    struct Tunables {
        double sched_latency_cycles = 6'600'000;      // 6 ms @1.1 GHz
        double min_granularity_cycles = 825'000;      // 0.75 ms
        double wakeup_granularity_cycles = 1'100'000; // 1 ms
    };

    CfsRunqueue() = default;
    explicit CfsRunqueue(const Tunables& tun) : tun_(tun) {}

    void enqueue(SchedEntity& se, bool wakeup);
    void dequeue(SchedEntity& se);

    /// Pick the leftmost entity and mark it running. nullptr when empty.
    SchedEntity* pick_next();

    /// Put the previously running entity back into the tree.
    void put_prev(SchedEntity& se);

    /// Account `delta` cycles of runtime to the running entity.
    void update_curr(SchedEntity& se, double delta_cycles);

    /// True when the leftmost queued entity should preempt `curr`.
    [[nodiscard]] bool should_preempt(const SchedEntity& curr) const;

    [[nodiscard]] std::size_t queued() const { return tree_.size(); }
    [[nodiscard]] double min_vruntime() const { return min_vruntime_; }
    [[nodiscard]] const SchedEntity* leftmost() const {
        return tree_.empty() ? nullptr : *tree_.begin();
    }

private:
    struct ByVruntime {
        bool operator()(const SchedEntity* a, const SchedEntity* b) const {
            if (a->vruntime != b->vruntime) return a->vruntime < b->vruntime;
            return a->name < b->name;  // deterministic tiebreak
        }
    };

    Tunables tun_{};
    std::set<SchedEntity*, ByVruntime> tree_;
    double min_vruntime_ = 0.0;
};

}  // namespace hpcsec::linux_fwk
