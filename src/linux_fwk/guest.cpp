#include "linux_fwk/guest.h"

#include "arch/isa.h"

namespace hpcsec::linux_fwk {

LinuxGuestOs::LinuxGuestOs(hafnium::Spm& spm, hafnium::Vm& vm, LinuxGuestConfig config)
    : spm_(&spm), vm_(&vm), config_(config) {
    threads_.assign(static_cast<std::size_t>(vm.vcpu_count()), nullptr);
    spm.attach_guest(vm.id(), this);
}

void LinuxGuestOs::set_thread(int vcpu_index, arch::Runnable* thread) {
    threads_.at(static_cast<std::size_t>(vcpu_index)) = thread;
    spm_->set_guest_context(vm_->vcpu(vcpu_index), thread);
}

void LinuxGuestOs::start() {
    for (int v = 0; v < vm_->vcpu_count(); ++v) {
        hafnium::Vcpu& vcpu = vm_->vcpu(v);
        hf::interrupt_enable(*spm_, vcpu.assigned_core, vm_->id(),
                             virt_timer_irq(), v);
        hf::interrupt_enable(*spm_, vcpu.assigned_core, vm_->id(),
                             hafnium::kMessageVirq, v);
        // Enable every device SPI the SPM assigned to this VM.
        for (const auto& dev : spm_->platform().config().devices) {
            if (dev.spi >= 0) {
                hf::interrupt_enable(*spm_, vcpu.assigned_core, vm_->id(),
                                     dev.spi, v);
            }
        }
        if (config_.tick_enabled) arm_vtimer(vcpu);
        spm_->make_vcpu_ready(vcpu);
    }
}

void LinuxGuestOs::arm_vtimer(hafnium::Vcpu& vcpu) {
    const auto period =
        spm_->platform().engine().clock().period_of_hz(config_.tick_hz);
    const sim::SimTime deadline = spm_->platform().engine().now() + period;
    const arch::CoreId core =
        vcpu.running_core >= 0 ? vcpu.running_core : vcpu.assigned_core;
    hf::vtimer_set(*spm_, core, vm_->id(), deadline, vcpu.index());
}

sim::Cycles LinuxGuestOs::on_virq(hafnium::Vcpu& vcpu, int virq) {
    if (virq == virt_timer_irq()) {
        ++stats_.ticks;
        spm_->platform().recorder().instant(
            spm_->platform().engine().now(), obs::EventType::kGuestTick,
            vcpu.running_core, vm_->id(), vcpu.index());
        if (config_.tick_enabled) arm_vtimer(vcpu);
        return config_.tick_service;
    }
    if (virq == hafnium::kMessageVirq) {
        ++stats_.messages;
        if (message_hook) message_hook();
        return config_.msg_service;
    }
    ++stats_.device_irqs;
    if (device_irq_hook) device_irq_hook(virq);
    return config_.device_irq_service;
}

arch::Runnable* LinuxGuestOs::on_idle(hafnium::Vcpu& vcpu) {
    arch::Runnable* t = threads_.at(static_cast<std::size_t>(vcpu.index()));
    if (t != nullptr && t->remaining_units() > 0) return t;
    return nullptr;
}

}  // namespace hpcsec::linux_fwk
