// Linux as a super-secondary ("Login") guest VM.
//
// The paper §IV.c: "modifying Linux to run in a semi-privileged VM context
// … the addition of the same para-virtual interrupt controller interface as
// is required in secondary VMs as well as the virtual timer." The login VM
// owns the device MMIO map and services the device IRQs that the primary
// forwards (or that the SPM routes directly under the selective policy).
#pragma once

#include <cstdint>
#include <functional>

#include "hafnium/interfaces.h"
#include "hafnium/spm.h"

namespace hpcsec::linux_fwk {

struct LinuxGuestConfig {
    double tick_hz = 250.0;
    sim::Cycles tick_service = 7500;
    sim::Cycles device_irq_service = 3200;  ///< Linux driver top half + IRQ exit
    sim::Cycles msg_service = 2500;
    bool tick_enabled = true;
};

class LinuxGuestOs : public hafnium::GuestOsItf {
public:
    LinuxGuestOs(hafnium::Spm& spm, hafnium::Vm& vm, LinuxGuestConfig config = {});
    ~LinuxGuestOs() override = default;

    /// Optional user-space workload on a VCPU (the "login environment").
    void set_thread(int vcpu_index, arch::Runnable* thread);

    void start();

    std::function<void()> message_hook;
    std::function<void(int irq)> device_irq_hook;

    // --- GuestOsItf -----------------------------------------------------------
    sim::Cycles on_virq(hafnium::Vcpu& vcpu, int virq) override;
    arch::Runnable* on_idle(hafnium::Vcpu& vcpu) override;

    struct Stats {
        std::uint64_t ticks = 0;
        std::uint64_t device_irqs = 0;
        std::uint64_t messages = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    void arm_vtimer(hafnium::Vcpu& vcpu);
    /// Guest virtual-timer line (ARM vtimer PPI / RISC-V VSTI) per the
    /// platform's configured ISA.
    [[nodiscard]] int virt_timer_irq() const {
        return spm_->platform().isa_ops().irq.virt_timer;
    }

    hafnium::Spm* spm_;
    hafnium::Vm* vm_;
    LinuxGuestConfig config_;
    std::vector<arch::Runnable*> threads_;
    Stats stats_;
};

}  // namespace hpcsec::linux_fwk
