#include "linux_fwk/linux.h"

#include <algorithm>
#include <stdexcept>

namespace hpcsec::linux_fwk {

namespace {
constexpr int kSgiResched = 1;
constexpr int kSgiIrqWork = 2;
}  // namespace

LinuxKernel::LinuxKernel(arch::Platform& platform, hafnium::Spm& spm,
                         LinuxConfig config)
    : platform_(&platform), spm_(&spm), config_(config) {
    const auto n = static_cast<std::size_t>(platform.ncores());
    rq_.assign(n, CfsRunqueue(config_.cfs));
    current_.assign(n, nullptr);
    dispatched_at_.assign(n, 0);
    kworker_.assign(n, nullptr);
    for (std::size_t c = 0; c < n; ++c) noise_rng_.push_back(platform.rng().split());
    spm.attach_primary(this);
}

void LinuxKernel::boot() {
    if (booted_) throw std::logic_error("LinuxKernel::boot: already booted");
    if (!spm_->booted()) throw std::logic_error("LinuxKernel::boot: SPM must boot first");
    for (int c = 0; c < platform_->ncores(); ++c) {
        // Per-core tick phase stagger (Linux offsets per-CPU ticks; cores
        // also come online at different times). Without it the cores pause
        // in lock-step and BSP workloads would see no noise amplification.
        const auto period = platform_->engine().clock().period_of_hz(config_.tick_hz);
        const auto phase = static_cast<sim::Cycles>(
            noise_rng_[static_cast<std::size_t>(c)].next_double() *
            static_cast<double>(period));
        platform_->core(c).timer().set_deadline(arch::TimerChannel::kPhys,
                                                platform_->engine().now() + phase + 1);
        // Per-core kworker (deferred-work kthread).
        auto burst = std::make_unique<BurstWork>("kworker/" + std::to_string(c),
                                                 arch::TranslationMode::kTwoStage);
        auto se = std::make_unique<SchedEntity>();
        se->name = "kworker/" + std::to_string(c) + ":0";
        se->kind = SchedEntity::Kind::kKworker;
        se->core = c;
        se->ctx = burst.get();
        entities_.push_back(std::move(se));
        kworker_[static_cast<std::size_t>(c)] = entities_.back().get();
        bursts_.push_back(std::move(burst));
        if (config_.noise_enabled) schedule_kworker_wake(c);
    }
    booted_ = true;
    for (int c = 0; c < platform_->ncores(); ++c) dispatch(c);
}

void LinuxKernel::arm_tick(arch::CoreId core) {
    const auto period = platform_->engine().clock().period_of_hz(config_.tick_hz);
    platform_->core(core).timer().set_deadline(arch::TimerChannel::kPhys,
                                               platform_->engine().now() + period);
}

void LinuxKernel::schedule_kworker_wake(arch::CoreId core) {
    auto& rng = noise_rng_[static_cast<std::size_t>(core)];
    const double mean_interval_s = 1.0 / config_.kworker_rate_hz;
    const double delay_s = rng.exponential(mean_interval_s);
    const auto delay = platform_->engine().clock().from_seconds(delay_s);
    platform_->engine().after(std::max<sim::Cycles>(delay, 1), [this, core] {
        // Deferred work arrives as irq-work: a self-IPI on the target core.
        platform_->irqc().send_ipi(core, kSgiIrqWork);
    });
}

void LinuxKernel::launch_vm(arch::VmId vm_id) {
    hafnium::Vm& vm = spm_->vm(vm_id);
    for (int v = 0; v < vm.vcpu_count(); ++v) {
        hafnium::Vcpu& vcpu = vm.vcpu(v);
        auto se = std::make_unique<SchedEntity>();
        se->name = vm.name() + "-vcpu" + std::to_string(v);
        se->kind = SchedEntity::Kind::kVcpuProxy;
        se->core = vcpu.assigned_core;
        se->vcpu = &vcpu;
        entities_.push_back(std::move(se));
        SchedEntity& ent = *entities_.back();
        auto& rq = rq_[static_cast<std::size_t>(ent.core)];
        ent.vruntime = rq.min_vruntime();
        if (vcpu.state() == hafnium::VcpuState::kReady) {
            rq.enqueue(ent, /*wakeup=*/false);
            if (booted_ && current_[static_cast<std::size_t>(ent.core)] == nullptr) {
                dispatch(ent.core);
            }
        }
    }
}

void LinuxKernel::stop_vm(arch::VmId vm_id) {
    for (auto& se : entities_) {
        if (se->kind == SchedEntity::Kind::kVcpuProxy && se->vcpu != nullptr &&
            se->vcpu->vm().id() == vm_id && se->state != SchedEntity::State::kExited) {
            if (se->state == SchedEntity::State::kQueued) {
                rq_[static_cast<std::size_t>(se->core)].dequeue(*se);
            }
            se->state = SchedEntity::State::kExited;
            SchedEntity*& cur = current_[static_cast<std::size_t>(se->core)];
            if (cur == se.get()) cur = nullptr;
        }
    }
}

SchedEntity& LinuxKernel::add_task(arch::CoreId core, arch::Runnable* ctx,
                                   std::string name) {
    auto se = std::make_unique<SchedEntity>();
    se->name = std::move(name);
    se->kind = SchedEntity::Kind::kTask;
    se->core = core;
    se->ctx = ctx;
    se->vruntime = rq_[static_cast<std::size_t>(core)].min_vruntime();
    entities_.push_back(std::move(se));
    return *entities_.back();
}

void LinuxKernel::wake_entity(SchedEntity& se) {
    if (se.state != SchedEntity::State::kBlocked) return;
    auto& rq = rq_[static_cast<std::size_t>(se.core)];
    rq.enqueue(se, /*wakeup=*/true);
    if (!booted_) return;
    SchedEntity* cur = current_[static_cast<std::size_t>(se.core)];
    if (cur == nullptr || rq.should_preempt(*cur)) {
        platform_->irqc().send_ipi(se.core, kSgiResched);
    }
}

SchedEntity* LinuxKernel::proxy_for(const hafnium::Vcpu& vcpu) {
    for (auto& se : entities_) {
        if (se->kind == SchedEntity::Kind::kVcpuProxy && se->vcpu == &vcpu &&
            se->state != SchedEntity::State::kExited) {
            return se.get();
        }
    }
    return nullptr;
}

void LinuxKernel::account_current(arch::CoreId core) {
    SchedEntity* cur = current_[static_cast<std::size_t>(core)];
    if (cur == nullptr) return;
    const sim::SimTime now = platform_->engine().now();
    const auto delta =
        static_cast<double>(now - dispatched_at_[static_cast<std::size_t>(core)]);
    rq_[static_cast<std::size_t>(core)].update_curr(*cur, delta);
    dispatched_at_[static_cast<std::size_t>(core)] = now;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void LinuxKernel::dispatch(arch::CoreId core) {
    if (!booted_) return;
    if (current_[static_cast<std::size_t>(core)] != nullptr) return;
    auto& rq = rq_[static_cast<std::size_t>(core)];
    const arch::PerfModel& perf = platform_->perf();
    arch::Executor& ex = platform_->core(core).exec();

    while (SchedEntity* se = rq.pick_next()) {
        ++stats_.dispatches;
        platform_->recorder().instant(platform_->engine().now(),
                                      obs::EventType::kContextSwitch, core,
                                      static_cast<std::int64_t>(se->kind));
        if (se->kind == SchedEntity::Kind::kVcpuProxy) {
            current_[static_cast<std::size_t>(core)] = se;
            dispatched_at_[static_cast<std::size_t>(core)] = platform_->engine().now();
            ex.charge(perf.sched_pick_linux);
            const hafnium::HfResult r =
                hf::vcpu_run(*spm_, core, arch::kPrimaryVmId, se->vcpu->vm().id(),
                             se->vcpu->index());
            if (!r.ok()) {
                current_[static_cast<std::size_t>(core)] = nullptr;
                se->state = SchedEntity::State::kBlocked;
                continue;
            }
            return;
        }
        current_[static_cast<std::size_t>(core)] = se;
        dispatched_at_[static_cast<std::size_t>(core)] = platform_->engine().now();
        ex.charge(perf.sched_pick_linux);
        ex.begin(se->ctx);
        return;
    }
}

// ---------------------------------------------------------------------------
// Interrupts
// ---------------------------------------------------------------------------

void LinuxKernel::handle_tick(arch::CoreId core) {
    const arch::PerfModel& perf = platform_->perf();
    arch::Executor& ex = platform_->core(core).exec();
    auto& rng = noise_rng_[static_cast<std::size_t>(core)];
    ++stats_.ticks;
    platform_->recorder().instant(platform_->engine().now(),
                                  obs::EventType::kKernelTick, core);

    // CFS tick: accounting, runqueue bookkeeping, occasional balancing —
    // heavier and jittery compared to the LWK tick.
    const double service = std::max(
        2000.0, rng.normal(static_cast<double>(perf.linux_tick_service),
                           static_cast<double>(perf.linux_tick_jitter)));
    ex.charge(static_cast<sim::Cycles>(service));
    platform_->profiler().charge(core, obs::ProfPath::kTimerTick,
                                 static_cast<sim::Cycles>(service));

    // Softirq processing rides on a fraction of ticks.
    if (config_.noise_enabled && rng.next_double() < config_.softirq_prob) {
        const double us = rng.exponential(config_.softirq_us_mean);
        const auto cycles = platform_->engine().clock().from_micros(us);
        ex.charge(cycles);
        platform_->profiler().charge(core, obs::ProfPath::kTimerTick, cycles);
        ++stats_.softirqs;
        stats_.noise_cycles += static_cast<double>(cycles);
    }
    arm_tick(core);
}

void LinuxKernel::on_interrupt(arch::CoreId core, int irq) {
    const arch::PerfModel& perf = platform_->perf();
    arch::Executor& ex = platform_->core(core).exec();

    SchedEntity*& cur = current_[static_cast<std::size_t>(core)];
    if (cur != nullptr && cur->kind != SchedEntity::Kind::kVcpuProxy) {
        // Our own task was interrupted: account and requeue it.
        account_current(core);
        rq_[static_cast<std::size_t>(core)].put_prev(*cur);
        cur = nullptr;
    }

    if (irq == platform_->isa_ops().irq.phys_timer) {
        handle_tick(core);
    } else if (irq == kSgiIrqWork) {
        // Deferred work arrival: wake this core's kworker with a fresh burst.
        ex.charge(perf.irq_entry_exit_kernel);
        auto& rng = noise_rng_[static_cast<std::size_t>(core)];
        if (config_.noise_enabled) {
            SchedEntity* kw = kworker_[static_cast<std::size_t>(core)];
            auto* burst = static_cast<BurstWork*>(kw->ctx);
            const double us = rng.exponential(config_.kworker_burst_us_mean);
            const auto cycles =
                static_cast<double>(platform_->engine().clock().from_micros(us));
            burst->refill(cycles);
            stats_.noise_cycles += cycles;
            ++stats_.kworker_wakes;
            if (kw->state == SchedEntity::State::kBlocked) {
                rq_[static_cast<std::size_t>(core)].enqueue(*kw, /*wakeup=*/true);
                ++stats_.preemptions_by_noise;
                platform_->recorder().instant(platform_->engine().now(),
                                              obs::EventType::kNoisePreempt, core);
            }
            schedule_kworker_wake(core);
        }
    } else if (irq >= arch::kExternalBase) {
        // Device IRQ: forward to the super-secondary, as the reference
        // driver stack would hand it to the owning VM.
        ex.charge(perf.irq_entry_exit_kernel);
        if (hafnium::Vm* ss = spm_->super_secondary()) {
            hf::interrupt_inject(*spm_, core, arch::kPrimaryVmId, ss->id(),
                                 /*vcpu=*/0, irq);
            ++stats_.forwarded_irqs;
        }
    }
    // kSgiResched and anything else: plain reschedule.
    dispatch(core);
}

void LinuxKernel::on_vcpu_exit(arch::CoreId core, hafnium::Vcpu& vcpu,
                               hafnium::ExitReason reason) {
    SchedEntity* proxy = proxy_for(vcpu);
    if (proxy == nullptr) return;
    account_current(core);
    SchedEntity*& cur = current_[static_cast<std::size_t>(core)];
    if (cur == proxy) cur = nullptr;
    switch (reason) {
        case hafnium::ExitReason::kPreempted:
            rq_[static_cast<std::size_t>(core)].put_prev(*proxy);
            // on_interrupt() follows and dispatches.
            break;
        case hafnium::ExitReason::kYield:
            rq_[static_cast<std::size_t>(core)].put_prev(*proxy);
            dispatch(core);
            break;
        case hafnium::ExitReason::kBlocked:
            proxy->state = SchedEntity::State::kBlocked;
            dispatch(core);
            break;
        case hafnium::ExitReason::kAborted:
            proxy->state = SchedEntity::State::kExited;
            dispatch(core);
            break;
    }
}

void LinuxKernel::on_vcpu_wake(hafnium::Vcpu& vcpu) {
    if (SchedEntity* proxy = proxy_for(vcpu)) wake_entity(*proxy);
}

void LinuxKernel::on_task_complete(arch::CoreId core, arch::Runnable* task) {
    SchedEntity*& cur = current_[static_cast<std::size_t>(core)];
    if (cur != nullptr && cur->ctx == task) {
        account_current(core);
        SchedEntity* se = cur;
        cur = nullptr;
        if (task->remaining_units() > 0) {
            rq_[static_cast<std::size_t>(core)].put_prev(*se);
        } else {
            se->state = SchedEntity::State::kBlocked;
        }
    }
    dispatch(core);
}

void LinuxKernel::on_message(arch::VmId from) {
    if (message_hook) message_hook(from);
}

}  // namespace hpcsec::linux_fwk
