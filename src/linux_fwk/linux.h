// Linux full-weight-kernel model in the Hafnium primary-VM role.
//
// This is the configuration the paper measures against: the reference
// Hafnium deployment where "Linux must be running on every core in the
// system (along with its associated kernel threads and background tasks)".
// Modeled behaviours that generate the Fig. 6 noise profile:
//   * 250 Hz scheduler tick per core with a heavier handler than the LWK's;
//   * CFS vruntime accounting and wakeup preemption;
//   * per-core kworker threads woken by irq-work at random (Poisson) times,
//     running bursts of deferred work;
//   * softirq processing piggybacked on a fraction of ticks;
//   * the Hafnium driver's one-kernel-thread-per-VCPU scheduling scheme.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/platform.h"
#include "hafnium/interfaces.h"
#include "hafnium/spm.h"
#include "linux_fwk/burst.h"
#include "linux_fwk/cfs.h"

namespace hpcsec::linux_fwk {

struct LinuxConfig {
    double tick_hz = 250.0;           ///< CONFIG_HZ=250 default
    bool noise_enabled = true;
    double kworker_rate_hz = 2.0;     ///< per-core mean wake rate
    double kworker_burst_us_mean = 150.0;
    double softirq_prob = 0.15;       ///< fraction of ticks with softirq work
    double softirq_us_mean = 30.0;
    CfsRunqueue::Tunables cfs{};
};

class LinuxKernel : public hafnium::PrimaryOsItf {
public:
    LinuxKernel(arch::Platform& platform, hafnium::Spm& spm, LinuxConfig config);
    ~LinuxKernel() override = default;

    /// Bring the kernel up: ticks, background kthreads, noise sources.
    void boot();
    [[nodiscard]] bool booted() const { return booted_; }

    /// hf.ko: create one CFS kernel thread per VCPU of the target VM.
    void launch_vm(arch::VmId vm);
    void stop_vm(arch::VmId vm);

    SchedEntity& add_task(arch::CoreId core, arch::Runnable* ctx, std::string name);
    void wake_entity(SchedEntity& se);

    // --- PrimaryOsItf ---------------------------------------------------------
    void on_interrupt(arch::CoreId core, int irq) override;
    void on_vcpu_exit(arch::CoreId core, hafnium::Vcpu& vcpu,
                      hafnium::ExitReason reason) override;
    void on_vcpu_wake(hafnium::Vcpu& vcpu) override;
    void on_task_complete(arch::CoreId core, arch::Runnable* task) override;
    void on_message(arch::VmId from) override;

    std::function<void(arch::VmId from)> message_hook;

    struct Stats {
        std::uint64_t ticks = 0;
        std::uint64_t dispatches = 0;
        std::uint64_t kworker_wakes = 0;
        std::uint64_t softirqs = 0;
        std::uint64_t preemptions_by_noise = 0;
        std::uint64_t forwarded_irqs = 0;
        double noise_cycles = 0.0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

    void dispatch(arch::CoreId core);

private:
    void handle_tick(arch::CoreId core);
    void arm_tick(arch::CoreId core);
    void schedule_kworker_wake(arch::CoreId core);
    void account_current(arch::CoreId core);
    [[nodiscard]] SchedEntity* proxy_for(const hafnium::Vcpu& vcpu);

    arch::Platform* platform_;
    hafnium::Spm* spm_;
    LinuxConfig config_;
    bool booted_ = false;

    std::vector<std::unique_ptr<SchedEntity>> entities_;
    std::vector<std::unique_ptr<BurstWork>> bursts_;  // kworker contexts
    std::vector<CfsRunqueue> rq_;          // per core
    std::vector<SchedEntity*> current_;    // per core
    std::vector<sim::SimTime> dispatched_at_;  // per core
    std::vector<SchedEntity*> kworker_;    // per core
    std::vector<sim::Rng> noise_rng_;      // per core
    Stats stats_;
};

}  // namespace hpcsec::linux_fwk
