// Structured telemetry event vocabulary.
//
// Every observable action in the stack is an enum type plus up to three
// numeric arguments — no strings are built on the hot path. Categories
// mirror sim::TraceCat bit-for-bit so a structured event can be mirrored
// into the legacy TraceLog (substring-assert tests) without remapping.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace hpcsec::obs {

enum class Category : std::uint32_t {
    kIrq = 1u << 0,
    kSched = 1u << 1,
    kHyp = 1u << 2,
    kVm = 1u << 3,
    kMmu = 1u << 4,
    kWorkload = 1u << 5,
    kBoot = 1u << 6,
    kChannel = 1u << 7,
    kCheck = 1u << 8,  ///< invariant-audit findings (src/check/)
    kResil = 1u << 9,  ///< fault detection / recovery actions (src/resil/)
    kAll = 0xffffffffu,
};

[[nodiscard]] constexpr std::uint32_t to_mask(Category c) {
    return static_cast<std::uint32_t>(c);
}

/// Stable lower-case name for one category bit ("irq", "sched", ...).
[[nodiscard]] const char* category_name(Category c);

/// Parse a comma-separated category list into a bitmask. Tokens are either
/// symbolic names ("irq,sched,hyp", "all") or raw numeric masks ("0x305",
/// "773") which OR in verbatim. On a bad token returns false and fills
/// `error` with the offending token plus the list of valid names.
/// Defined in recorder.cpp.
[[nodiscard]] bool parse_category_list(const std::string& list,
                                       std::uint32_t& out, std::string& error);

enum class EventType : std::uint8_t {
    // Spans (end > start).
    kVmRun,         ///< a0 = vm id, a1 = vcpu index, a2 = ExitReason
    kWorkChunk,     ///< a0 = reserved
    kDetour,        ///< a0 = thread index
    // Instants (end == start).
    kVmExit,        ///< a0 = vm id, a1 = vcpu index, a2 = ExitReason
    kIrqDeliver,    ///< a0 = irq, a1 = IrqDestination
    kVirqInject,    ///< a0 = virq, a1 = vm id
    kHypercall,     ///< a0 = Call number, a1 = caller vm id
    kGuestTick,     ///< a0 = vm id, a1 = vcpu index
    kKernelTick,    ///< primary/native kernel scheduler tick
    kContextSwitch, ///< a0 = kind (0 = thread, 1 = vcpu proxy)
    kNoisePreempt,  ///< background work preempted/competed with the app
    kBarrierStep,   ///< a0 = step index
    kCheckFail,     ///< a0 = check::Rule, a1 = vm id, a2 = vcpu index
    kResilFault,    ///< a0 = resil::FailureKind, a1 = vm id, a2 = vcpu index
    kResilAction,   ///< a0 = action (0 backoff, 1 restart, 2 quarantine), a1 = vm id, a2 = consecutive failures
    kChaosInject,   ///< a0 = resil::ChaosFault, a1 = vm id, a2 = vcpu/word index
    kTagViolation,  ///< a0 = offending vm id, a1 = faulting PA, a2 = Access
    kContainAction, ///< a0 = resil::ContainmentPolicy step, a1 = vm id, a2 = detail
};

/// Stable lower-case name, used for trace export and TraceLog mirroring.
[[nodiscard]] const char* to_string(EventType t);

[[nodiscard]] constexpr Category category_of(EventType t) {
    switch (t) {
        case EventType::kVmRun:
        case EventType::kVmExit:
        case EventType::kGuestTick:
            return Category::kVm;
        case EventType::kWorkChunk:
        case EventType::kDetour:
        case EventType::kBarrierStep:
            return Category::kWorkload;
        case EventType::kIrqDeliver:
        case EventType::kVirqInject:
            return Category::kIrq;
        case EventType::kHypercall:
            return Category::kHyp;
        case EventType::kKernelTick:
        case EventType::kContextSwitch:
        case EventType::kNoisePreempt:
            return Category::kSched;
        case EventType::kCheckFail:
            return Category::kCheck;
        case EventType::kResilFault:
        case EventType::kResilAction:
        case EventType::kChaosInject:
        case EventType::kContainAction:
            return Category::kResil;
        case EventType::kTagViolation:
            return Category::kCheck;
    }
    return Category::kAll;
}

/// One recorded event. Spans carry [start, end); instants have end == start.
struct Event {
    sim::SimTime start = 0;
    sim::SimTime end = 0;
    EventType type = EventType::kVmRun;
    std::int16_t core = -1;
    std::int64_t a0 = 0;
    std::int64_t a1 = 0;
    std::int64_t a2 = 0;

    [[nodiscard]] bool is_span() const { return end > start; }
};

}  // namespace hpcsec::obs
