#include "obs/flight.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "obs/trace_export.h"

namespace hpcsec::obs {

void FlightRecorder::arm(int ncores, std::size_t depth) {
    depth_ = depth;
    rings_.clear();
    if (depth == 0) return;
    rings_.resize(static_cast<std::size_t>(ncores) + 1);
    for (auto& r : rings_) r.buf.reserve(depth);
}

void FlightRecorder::push_slow(const Event& e) {
    // core -1 (sourceless events) lands in ring 0; cores beyond the armed
    // count clamp into the last ring rather than dropping silently.
    std::size_t idx = static_cast<std::size_t>(e.core + 1);
    if (idx >= rings_.size()) idx = rings_.size() - 1;
    Ring& r = rings_[idx];
    if (r.buf.size() < depth_) {
        // sca-suppress(hot-path-alloc): the ring grows once up to the
        // configured depth, then every push overwrites in place.
        r.buf.push_back(e);
    } else {
        r.buf[r.next] = e;
    }
    r.next = (r.next + 1) % depth_;
    ++r.total;
}

std::uint64_t FlightRecorder::total_recorded() const {
    std::uint64_t total = 0;
    for (const auto& r : rings_) total += r.total;
    return total;
}

std::vector<Event> FlightRecorder::snapshot() const {
    std::vector<Event> out;
    for (const auto& r : rings_) {
        if (r.buf.size() < depth_) {
            out.insert(out.end(), r.buf.begin(), r.buf.end());
        } else {
            // Oldest-first: the slot about to be overwritten is the oldest.
            out.insert(out.end(), r.buf.begin() + static_cast<std::ptrdiff_t>(r.next),
                       r.buf.end());
            out.insert(out.end(), r.buf.begin(),
                       r.buf.begin() + static_cast<std::ptrdiff_t>(r.next));
        }
    }
    std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
        return a.start < b.start;
    });
    return out;
}

void FlightRecorder::write_json(std::ostream& os, const std::string& reason,
                                const std::vector<Event>& events) const {
    os << "{\"reason\":\"" << reason << "\",\"depth\":" << depth_
       << ",\"total_recorded\":" << total_recorded() << ",\"events\":[";
    bool first = true;
    for (const auto& e : events) {
        if (!first) os << ",";
        first = false;
        os << "\n {\"start\":" << e.start << ",\"end\":" << e.end << ",\"type\":\""
           << to_string(e.type) << "\",\"core\":" << e.core << ",\"a0\":" << e.a0
           << ",\"a1\":" << e.a1 << ",\"a2\":" << e.a2 << "}";
    }
    os << "\n]}\n";
}

std::size_t FlightRecorder::dump(const std::string& reason) {
    if (depth_ == 0) return 0;
    std::vector<Event> events = snapshot();
    info_.last_reason = reason;
    info_.last_events = events.size();
    info_.last_path.clear();

    if (!dump_prefix_.empty()) {
        const std::string stem =
            dump_prefix_ + "-" + std::to_string(info_.dumps) + "-" + reason;
        std::ofstream flat(stem + ".json");
        if (flat) {
            write_json(flat, reason, events);
            if (flat.good()) info_.last_path = stem + ".json";
        }
        int ncores = static_cast<int>(rings_.size()) - 1;
        TraceExporter exporter(clock_);
        exporter.add_process(0, "flight-" + reason, ncores, events);
        exporter.write_file(stem + ".trace.json");
    }
    info_.last_snapshot = std::move(events);
    ++info_.dumps;
    return info_.last_events;
}

void FlightRecorder::clear() {
    for (auto& r : rings_) {
        r.buf.clear();
        r.next = 0;
        r.total = 0;
    }
    info_ = DumpInfo{};
}

}  // namespace hpcsec::obs
