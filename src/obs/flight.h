// Always-on flight recorder: fixed-size per-core rings of the last N
// structured events.
//
// Full tracing retains everything and is opt-in; the flight recorder keeps
// only the most recent `depth` events per core with O(1) overwrite, so
// post-mortem context (what led up to a CheckViolation, a watchdog
// restart, a chaos-induced abort) survives even when the retained trace is
// off. Dump hooks in check::Auditor, resil::Supervisor, and
// resil::ChaosInjector call dump(reason); each dump freezes a time-ordered
// snapshot and, when a sink is configured, writes it as flat JSON plus a
// Perfetto-loadable trace.
//
// Disarmed (depth 0, the default) push() costs one predicted branch and
// nothing allocates.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/events.h"
#include "sim/time.h"

namespace hpcsec::obs {

class FlightRecorder {
public:
    /// Arm with `depth` retained events per core. Rings are indexed by
    /// core + 1 so sourceless events (core == -1, e.g. check findings)
    /// keep their own ring. depth 0 disarms.
    void arm(int ncores, std::size_t depth);
    [[nodiscard]] bool armed() const { return depth_ != 0; }
    [[nodiscard]] std::size_t depth() const { return depth_; }

    /// Hot path: O(1) ring overwrite; one predicted branch when disarmed.
    void push(const Event& e) {
        if (depth_ == 0) [[likely]] return;
        push_slow(e);
    }

    /// Events ever pushed (retained + overwritten).
    [[nodiscard]] std::uint64_t total_recorded() const;

    /// Current ring contents, merged across cores and time-ordered.
    [[nodiscard]] std::vector<Event> snapshot() const;

    /// Configure file dumps: each dump(reason) writes
    /// `<prefix>-<seq>-<reason>.json` (flat event list) and
    /// `<prefix>-<seq>-<reason>.trace.json` (Perfetto). Empty prefix (the
    /// default) keeps dumps in memory only.
    void set_dump_sink(sim::ClockSpec clock, std::string path_prefix) {
        clock_ = clock;
        dump_prefix_ = std::move(path_prefix);
    }

    struct DumpInfo {
        std::uint64_t dumps = 0;
        std::string last_reason;
        std::string last_path;        ///< "" when no file sink configured
        std::size_t last_events = 0;
        std::vector<Event> last_snapshot;
    };

    /// Freeze and (when a sink is set) write the current snapshot. Returns
    /// the number of events captured; a disarmed recorder returns 0 and
    /// does nothing. Write failures are swallowed — the dump path runs
    /// inside failure handling and must never mask the original fault.
    std::size_t dump(const std::string& reason);

    [[nodiscard]] const DumpInfo& info() const { return info_; }

    void clear();

private:
    struct Ring {
        std::vector<Event> buf;  ///< capacity depth_; grows to it, then wraps
        std::size_t next = 0;
        std::uint64_t total = 0;
    };

    void push_slow(const Event& e);
    void write_json(std::ostream& os, const std::string& reason,
                    const std::vector<Event>& events) const;

    std::size_t depth_ = 0;
    std::vector<Ring> rings_;  ///< index core + 1
    sim::ClockSpec clock_{};
    std::string dump_prefix_;
    DumpInfo info_;
};

}  // namespace hpcsec::obs
