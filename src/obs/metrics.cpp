#include "obs/metrics.h"

#include <ostream>
#include <stdexcept>

namespace hpcsec::obs {

namespace {
const char* kind_name(MetricKind k) {
    switch (k) {
        case MetricKind::kCounter: return "counter";
        case MetricKind::kGauge: return "gauge";
        case MetricKind::kHistogram: return "histogram";
    }
    return "?";
}

void write_json_string(std::ostream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
        if (c == '"' || c == '\\') os << '\\';
        os << c;
    }
    os << '"';
}
}  // namespace

const MetricsSnapshot::Metric* MetricsSnapshot::find(const std::string& name) const {
    for (const auto& m : metrics) {
        if (m.name == name) return &m;
    }
    return nullptr;
}

double MetricsSnapshot::value_of(const std::string& name) const {
    const Metric* m = find(name);
    return m != nullptr ? m->value : 0.0;
}

void MetricsSnapshot::write_json(std::ostream& os) const {
    os << "{\"metrics\":[";
    bool first = true;
    for (const auto& m : metrics) {
        if (!first) os << ",";
        first = false;
        os << "\n  {\"name\":";
        write_json_string(os, m.name);
        os << ",\"kind\":\"" << kind_name(m.kind) << "\",\"value\":" << m.value;
        if (m.kind == MetricKind::kHistogram) {
            os << ",\"count\":" << m.stats.count() << ",\"mean\":" << m.stats.mean()
               << ",\"stdev\":" << m.stats.stddev() << ",\"min\":" << m.stats.min()
               << ",\"max\":" << m.stats.max() << ",\"buckets\":[";
            for (std::size_t i = 0; i < m.buckets.size(); ++i) {
                if (i != 0) os << ",";
                os << "[" << m.buckets[i].lo << "," << m.buckets[i].hi << ","
                   << m.buckets[i].count << "]";
            }
            os << "]";
        }
        os << "}";
    }
    os << "\n]}\n";
}

void MetricsSnapshot::write_csv(std::ostream& os) const {
    os << "name,kind,value,count,mean,stdev,min,max\n";
    for (const auto& m : metrics) {
        os << m.name << "," << kind_name(m.kind) << "," << m.value << ","
           << m.stats.count() << "," << m.stats.mean() << "," << m.stats.stddev()
           << "," << m.stats.min() << "," << m.stats.max() << "\n";
    }
}

MetricsRegistry::Handle MetricsRegistry::find_or_add(const std::string& name,
                                                     Slot slot, double lo,
                                                     double base,
                                                     std::size_t nbuckets) {
    const std::lock_guard<std::mutex> lock(reg_mutex_);
    for (const auto& e : entries_) {
        if (e.name == name) {
            if (e.slot != slot) {
                throw std::logic_error("MetricsRegistry: '" + name +
                                       "' re-registered with a different kind");
            }
            return e.index;
        }
    }
    Handle idx = 0;
    switch (slot) {
        case Slot::kCounter:
            idx = static_cast<Handle>(counters_.size());
            counters_.push_back(0);
            break;
        case Slot::kGauge:
            idx = static_cast<Handle>(gauges_.size());
            gauges_.push_back(0.0);
            break;
        case Slot::kHistogram:
            idx = static_cast<Handle>(hist_log_.size());
            hist_log_.emplace_back(lo, base, nbuckets);
            hist_stats_.emplace_back();
            break;
    }
    entries_.push_back({name, slot, idx});
    return idx;
}

MetricsRegistry::Handle MetricsRegistry::counter(const std::string& name) {
    return find_or_add(name, Slot::kCounter, 0, 0, 0);
}

MetricsRegistry::Handle MetricsRegistry::gauge(const std::string& name) {
    return find_or_add(name, Slot::kGauge, 0, 0, 0);
}

MetricsRegistry::Handle MetricsRegistry::histogram(const std::string& name,
                                                   double lo, double base,
                                                   std::size_t nbuckets) {
    return find_or_add(name, Slot::kHistogram, lo, base, nbuckets);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    const std::lock_guard<std::mutex> lock(reg_mutex_);
    MetricsSnapshot snap;
    snap.metrics.reserve(entries_.size());
    for (const auto& e : entries_) {
        MetricsSnapshot::Metric m;
        m.name = e.name;
        switch (e.slot) {
            case Slot::kCounter:
                m.kind = MetricKind::kCounter;
                m.value = static_cast<double>(counters_[e.index]);
                break;
            case Slot::kGauge:
                m.kind = MetricKind::kGauge;
                m.value = gauges_[e.index];
                break;
            case Slot::kHistogram: {
                m.kind = MetricKind::kHistogram;
                const sim::LogHistogram& h = hist_log_[e.index];
                m.value = static_cast<double>(h.total());
                m.stats = hist_stats_[e.index];
                for (std::size_t b = 0; b < h.bucket_count(); ++b) {
                    if (h.bucket(b) == 0) continue;
                    // hi of the last bucket is open-ended (sentinel -1).
                    const double hi = b + 1 < h.bucket_count()
                                          ? h.bucket_lo(b + 1)
                                          : -1.0;
                    // sca-suppress(hot-path-alloc): snapshot() is
                    // end-of-trial / post-mortem reporting, not the
                    // per-event path.
                    m.buckets.push_back({h.bucket_lo(b), hi, h.bucket(b)});
                }
                break;
            }
        }
        // sca-suppress(hot-path-alloc): see above — reporting path.
        snap.metrics.push_back(std::move(m));
    }
    return snap;
}

void MetricsRegistry::reset() {
    const std::lock_guard<std::mutex> lock(reg_mutex_);
    for (auto& c : counters_) c = 0;
    for (auto& g : gauges_) g = 0.0;
    for (std::size_t i = 0; i < hist_log_.size(); ++i) {
        // LogHistogram has no reset; rebuild with the same shape.
        sim::LogHistogram fresh(hist_log_[i].bucket_lo(1) > 0 ? hist_log_[i].bucket_lo(1) : 1.0,
                                2.0, hist_log_[i].bucket_count());
        hist_log_[i] = fresh;
        hist_stats_[i].reset();
    }
}

MetricsAggregate::Row& MetricsAggregate::row_for(std::vector<Row>& rows,
                                                 const std::string& name,
                                                 MetricKind kind) {
    for (auto& r : rows) {
        if (r.name == name) return r;
    }
    rows.push_back({name, kind, {}, {}});
    return rows.back();
}

void MetricsAggregate::fold(std::vector<Row>& rows, const MetricsSnapshot& snap) {
    for (const auto& m : snap.metrics) {
        Row& row = row_for(rows, m.name, m.kind);
        // Histograms aggregate their per-trial mean; counters/gauges the value.
        row.stats.add(m.kind == MetricKind::kHistogram ? m.stats.mean() : m.value);
        // Exact bucket merge: bounds travel with the snapshot, so buckets
        // from equally-shaped histograms line up by (lo, hi) and others
        // interleave in lo order.
        for (const auto& b : m.buckets) {
            auto it = row.buckets.begin();
            for (; it != row.buckets.end(); ++it) {
                if (it->lo == b.lo && it->hi == b.hi) {
                    it->count += b.count;
                    break;
                }
                if (it->lo > b.lo) break;
            }
            if (it == row.buckets.end() || it->lo != b.lo || it->hi != b.hi) {
                row.buckets.insert(it, b);
            }
        }
    }
}

void MetricsAggregate::set_window(std::size_t trials_per_window,
                                  std::size_t retain) {
    window_trials_ = trials_per_window;
    window_retain_ = retain;
}

void MetricsAggregate::add(const MetricsSnapshot& snap) {
    fold(rows_, snap);
    ++trials_;
    if (window_trials_ == 0) return;
    fold(window_rows_, snap);
    if (++window_fill_ < window_trials_) return;
    Window w;
    w.index = windows_.empty() ? 0 : windows_.back().index + 1;
    w.first_trial = trials_ - window_fill_;
    w.trials = window_fill_;
    w.rows = std::move(window_rows_);
    windows_.push_back(std::move(w));
    if (windows_.size() > window_retain_ && window_retain_ > 0) {
        windows_.erase(windows_.begin());
    }
    window_rows_.clear();
    window_fill_ = 0;
}

namespace {
void write_rows_json(std::ostream& os, const std::vector<MetricsAggregate::Row>& rows) {
    os << "[";
    bool first = true;
    for (const auto& r : rows) {
        if (!first) os << ",";
        first = false;
        os << "\n  {\"name\":";
        write_json_string(os, r.name);
        os << ",\"kind\":\"" << kind_name(r.kind) << "\",\"mean\":" << r.stats.mean()
           << ",\"stdev\":" << r.stats.stddev() << ",\"n\":" << r.stats.count();
        if (!r.buckets.empty()) {
            os << ",\"buckets\":[";
            for (std::size_t i = 0; i < r.buckets.size(); ++i) {
                if (i != 0) os << ",";
                os << "[" << r.buckets[i].lo << "," << r.buckets[i].hi << ","
                   << r.buckets[i].count << "]";
            }
            os << "]";
        }
        os << "}";
    }
    os << "\n]";
}
}  // namespace

void MetricsAggregate::write_json(std::ostream& os) const {
    os << "{\"metrics\":";
    write_rows_json(os, rows_);
    if (!windows_.empty()) {
        os << ",\"window_trials\":" << window_trials_ << ",\"windows\":[";
        for (std::size_t i = 0; i < windows_.size(); ++i) {
            if (i != 0) os << ",";
            os << "\n {\"index\":" << windows_[i].index
               << ",\"first_trial\":" << windows_[i].first_trial
               << ",\"trials\":" << windows_[i].trials << ",\"metrics\":";
            write_rows_json(os, windows_[i].rows);
            os << "}";
        }
        os << "\n]";
    }
    os << "}\n";
}

}  // namespace hpcsec::obs
