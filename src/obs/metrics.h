// Low-overhead metrics registry: named counters, gauges, and log-scale
// latency histograms.
//
// Registration (name lookup) happens once at wiring time and returns a
// small integer handle; the hot path is a bounds-unchecked vector slot
// update. Snapshots are taken at reporting boundaries and can be merged
// across trials or written as flat JSON/CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/stats.h"

namespace hpcsec::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
    struct Metric {
        std::string name;
        MetricKind kind = MetricKind::kCounter;
        double value = 0.0;              ///< counter/gauge value; histogram count
        sim::RunningStats stats;         ///< histogram observations
        /// Histogram buckets as (lower bound, count), zero buckets omitted.
        std::vector<std::pair<double, std::uint64_t>> buckets;
    };

    std::vector<Metric> metrics;

    [[nodiscard]] const Metric* find(const std::string& name) const;
    [[nodiscard]] double value_of(const std::string& name) const;

    /// Flat JSON: {"metrics":[{"name":...,"kind":...,"value":...},...]}.
    void write_json(std::ostream& os) const;
    /// CSV: name,kind,value,count,mean,stdev,min,max.
    void write_csv(std::ostream& os) const;
};

/// Threading model: one registry belongs to one trial node, which runs
/// entirely on one thread (the parallel harness gives every worker its own
/// Node and merges snapshots in trial order on the caller). Registration is
/// mutex-protected so wiring code is safe even if components register from
/// helper threads; the hot-path slot updates are intentionally unsynchronized
/// and guarded in debug builds by a thread-ownership check that throws on
/// cross-thread mutation (the bug tsan would otherwise find on day one).
class MetricsRegistry {
public:
    using Handle = std::uint32_t;

    /// Register (or look up) a metric. Re-registering an existing name with
    /// the same kind returns the existing handle. Thread-safe.
    Handle counter(const std::string& name);
    Handle gauge(const std::string& name);
    Handle histogram(const std::string& name, double lo = 1.0, double base = 2.0,
                     std::size_t nbuckets = 24);

    // --- hot path (single-owner; see threading model above) -----------------
    void add(Handle h, std::uint64_t delta = 1) {
        debug_assert_owner();
        counters_[h] += delta;
    }
    void set(Handle h, double value) {
        debug_assert_owner();
        gauges_[h] = value;
    }
    void observe(Handle h, double value) {
        debug_assert_owner();
        hist_log_[h].add(value);
        hist_stats_[h].add(value);
    }

    /// Release single-owner binding after a deliberate, synchronized handoff
    /// to another thread (debug builds bind the owner on first mutation).
    void reset_owner() {
#ifndef NDEBUG
        owner_bound_ = false;
#endif
    }

    [[nodiscard]] std::uint64_t counter_value(Handle h) const { return counters_[h]; }
    [[nodiscard]] double gauge_value(Handle h) const { return gauges_[h]; }

    [[nodiscard]] MetricsSnapshot snapshot() const;
    void reset();

private:
    enum class Slot : std::uint8_t { kCounter, kGauge, kHistogram };
    struct Entry {
        std::string name;
        Slot slot;
        Handle index;  ///< into the per-kind storage
    };

    Handle find_or_add(const std::string& name, Slot slot, double lo, double base,
                       std::size_t nbuckets);

    void debug_assert_owner() {
#ifndef NDEBUG
        const std::thread::id self = std::this_thread::get_id();
        if (!owner_bound_) {
            owner_ = self;
            owner_bound_ = true;
        } else if (owner_ != self) {
            throw std::logic_error(
                "MetricsRegistry: hot-path mutation from a second thread; "
                "give each worker its own registry (or reset_owner() after a "
                "synchronized handoff)");
        }
#endif
    }

    mutable std::mutex reg_mutex_;  ///< guards entries_/storage registration
#ifndef NDEBUG
    std::thread::id owner_{};
    bool owner_bound_ = false;
#endif

    std::vector<Entry> entries_;
    std::vector<std::uint64_t> counters_;
    std::vector<double> gauges_;
    std::vector<sim::LogHistogram> hist_log_;
    std::vector<sim::RunningStats> hist_stats_;
};

/// Aggregates snapshots across trials: per metric name, the distribution of
/// scalar values (counter/gauge value, histogram mean). Produces the
/// (name, mean, stdev, n) rows the experiment harness and benches report.
class MetricsAggregate {
public:
    void add(const MetricsSnapshot& snap);

    struct Row {
        std::string name;
        MetricKind kind;
        sim::RunningStats stats;
    };
    [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
    [[nodiscard]] bool empty() const { return rows_.empty(); }

    /// {"metrics":[{"name":...,"mean":...,"stdev":...,"n":...},...]}
    void write_json(std::ostream& os) const;

private:
    std::vector<Row> rows_;
};

}  // namespace hpcsec::obs
