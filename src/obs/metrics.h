// Low-overhead metrics registry: named counters, gauges, and log-scale
// latency histograms.
//
// Registration (name lookup) happens once at wiring time and returns a
// small integer handle; the hot path is a bounds-unchecked vector slot
// update. Snapshots are taken at reporting boundaries and can be merged
// across trials or written as flat JSON/CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/stats.h"

namespace hpcsec::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
    /// One histogram bucket with explicit bounds [lo, hi), so downstream
    /// tooling can merge snapshots without consulting the source histogram
    /// shape. hi < 0 marks the open-ended top bucket.
    struct Bucket {
        double lo = 0.0;
        double hi = 0.0;
        std::uint64_t count = 0;
    };

    struct Metric {
        std::string name;
        MetricKind kind = MetricKind::kCounter;
        double value = 0.0;              ///< counter/gauge value; histogram count
        sim::RunningStats stats;         ///< histogram observations
        /// Histogram buckets with explicit bounds, zero buckets omitted.
        std::vector<Bucket> buckets;
    };

    std::vector<Metric> metrics;

    [[nodiscard]] const Metric* find(const std::string& name) const;
    [[nodiscard]] double value_of(const std::string& name) const;

    /// Flat JSON: {"metrics":[{"name":...,"kind":...,"value":...},...]}.
    void write_json(std::ostream& os) const;
    /// CSV: name,kind,value,count,mean,stdev,min,max.
    void write_csv(std::ostream& os) const;
};

/// Threading model: one registry belongs to one trial node, which runs
/// entirely on one thread (the parallel harness gives every worker its own
/// Node and merges snapshots in trial order on the caller). Registration is
/// mutex-protected so wiring code is safe even if components register from
/// helper threads; the hot-path slot updates are intentionally unsynchronized
/// and guarded in debug builds by a thread-ownership check that throws on
/// cross-thread mutation (the bug tsan would otherwise find on day one).
class MetricsRegistry {
public:
    using Handle = std::uint32_t;

    /// Register (or look up) a metric. Re-registering an existing name with
    /// the same kind returns the existing handle. Thread-safe.
    Handle counter(const std::string& name);
    Handle gauge(const std::string& name);
    Handle histogram(const std::string& name, double lo = 1.0, double base = 2.0,
                     std::size_t nbuckets = 24);

    // --- hot path (single-owner; see threading model above) -----------------
    void add(Handle h, std::uint64_t delta = 1) {
        debug_assert_owner();
        counters_[h] += delta;
    }
    void set(Handle h, double value) {
        debug_assert_owner();
        gauges_[h] = value;
    }
    void observe(Handle h, double value) {
        debug_assert_owner();
        hist_log_[h].add(value);
        hist_stats_[h].add(value);
    }

    /// Release single-owner binding after a deliberate, synchronized handoff
    /// to another thread (debug builds bind the owner on first mutation).
    void reset_owner() {
#ifndef NDEBUG
        owner_bound_ = false;
#endif
    }

    [[nodiscard]] std::uint64_t counter_value(Handle h) const { return counters_[h]; }
    [[nodiscard]] double gauge_value(Handle h) const { return gauges_[h]; }

    [[nodiscard]] MetricsSnapshot snapshot() const;
    void reset();

private:
    enum class Slot : std::uint8_t { kCounter, kGauge, kHistogram };
    struct Entry {
        std::string name;
        Slot slot;
        Handle index;  ///< into the per-kind storage
    };

    Handle find_or_add(const std::string& name, Slot slot, double lo, double base,
                       std::size_t nbuckets);

    void debug_assert_owner() {
#ifndef NDEBUG
        const std::thread::id self = std::this_thread::get_id();
        if (!owner_bound_) {
            owner_ = self;
            owner_bound_ = true;
        } else if (owner_ != self) {
            // sca-suppress(no-throw-guest-path): debug-only (compiled out
            // under NDEBUG) trap for cross-thread registry misuse — a host
            // threading bug, not reachable from guest-controlled input.
            throw std::logic_error(
                "MetricsRegistry: hot-path mutation from a second thread; "
                "give each worker its own registry (or reset_owner() after a "
                "synchronized handoff)");
        }
#endif
    }

    mutable std::mutex reg_mutex_;  ///< guards entries_/storage registration
#ifndef NDEBUG
    std::thread::id owner_{};
    bool owner_bound_ = false;
#endif

    std::vector<Entry> entries_;
    std::vector<std::uint64_t> counters_;
    std::vector<double> gauges_;
    std::vector<sim::LogHistogram> hist_log_;
    std::vector<sim::RunningStats> hist_stats_;
};

/// Streams snapshots across trials: per metric name, the distribution of
/// scalar values (counter/gauge value, histogram mean) plus exact bucket
/// merging for histograms. Produces the (name, mean, stdev, n) rows the
/// experiment harness and benches report.
///
/// Memory is O(metric names), never O(trials): each add() folds the
/// snapshot into running accumulators and drops it. Optional windowing
/// (set_window) additionally keeps summaries of the last `retain` windows
/// of `trials_per_window` adds each, so long sweeps can report recent
/// behavior without retaining history. Determinism contract: add() order
/// alone defines the result — callers that merge in serial trial order get
/// bit-identical output at every --jobs value.
class MetricsAggregate {
public:
    void add(const MetricsSnapshot& snap);

    struct Row {
        std::string name;
        MetricKind kind;
        sim::RunningStats stats;
        /// Exact bucket-wise histogram merge across all added snapshots
        /// (empty for counters/gauges). Buckets keep snapshot bounds.
        std::vector<MetricsSnapshot::Bucket> buckets;
    };
    [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
    [[nodiscard]] bool empty() const { return rows_.empty(); }
    [[nodiscard]] std::size_t trials() const { return trials_; }

    /// Enable windowed summaries: every `trials_per_window` adds close one
    /// window; the most recent `retain` window summaries are kept (older
    /// ones drop off). Call before the first add().
    void set_window(std::size_t trials_per_window, std::size_t retain = 8);
    [[nodiscard]] std::size_t window_size() const { return window_trials_; }

    struct Window {
        std::size_t index = 0;        ///< 0-based window sequence number
        std::size_t first_trial = 0;  ///< first add() folded into this window
        std::size_t trials = 0;
        std::vector<Row> rows;        ///< same shape as the global rows
    };
    /// Closed windows, oldest first (bounded by `retain`).
    [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }

    /// {"metrics":[{"name":...,"mean":...,"stdev":...,"n":...,
    ///   "buckets":[[lo,hi,count],...]},...],"windows":[...]}
    /// (buckets/windows only when present, so PR 1 consumers are unchanged).
    void write_json(std::ostream& os) const;

private:
    Row& row_for(std::vector<Row>& rows, const std::string& name, MetricKind kind);
    void fold(std::vector<Row>& rows, const MetricsSnapshot& snap);

    std::vector<Row> rows_;
    std::size_t trials_ = 0;
    std::size_t window_trials_ = 0;  ///< 0 = windowing off
    std::size_t window_retain_ = 8;
    std::vector<Row> window_rows_;   ///< accumulator for the open window
    std::size_t window_fill_ = 0;
    std::vector<Window> windows_;
};

}  // namespace hpcsec::obs
