// Umbrella: the per-platform observability bundle.
//
// One Obs instance rides on each arch::Platform: the always-on metrics
// registry (handle-based counters/gauges/histograms), the opt-in
// structured span recorder, the cycle-attribution profiler, and the
// always-on flight recorder. Exporters (trace_export.h, report.h) consume
// these at reporting boundaries. Profiler and flight recorder are null
// objects until enabled/armed — one predicted branch per hook site.
#pragma once

#include "obs/events.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"

namespace hpcsec::obs {

struct Obs {
    MetricsRegistry metrics;
    SpanRecorder recorder;
    CycleProfiler profiler;
    FlightRecorder flight;
};

}  // namespace hpcsec::obs
