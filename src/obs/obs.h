// Umbrella: the per-platform observability bundle.
//
// One Obs instance rides on each arch::Platform: the always-on metrics
// registry (handle-based counters/gauges/histograms) and the opt-in
// structured span recorder. Exporters (trace_export.h, report.h) consume
// these at reporting boundaries.
#pragma once

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace hpcsec::obs {

struct Obs {
    MetricsRegistry metrics;
    SpanRecorder recorder;
};

}  // namespace hpcsec::obs
