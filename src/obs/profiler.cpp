#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace hpcsec::obs {

const char* to_string(ProfPath p) {
    switch (p) {
        case ProfPath::kWorldSwitch: return "world-switch";
        case ProfPath::kHypercall: return "hypercall";
        case ProfPath::kStage2Walk: return "stage2-walk";
        case ProfPath::kVgicRoute: return "vgic-route";
        case ProfPath::kIrqRoute: return "irq-route";
        case ProfPath::kTimerTick: return "timer-tick";
        case ProfPath::kInterceptor: return "interceptor";
    }
    return "?";
}

void CycleProfiler::enable(int ncores) {
    if (enabled_ && ncores == ncores_) return;
    enabled_ = true;
    ncores_ = ncores;
    current_.assign(static_cast<std::size_t>(ncores), 0);
    // Slot 0..ncores-1: the EL2/host context of each core, pre-allocated so
    // current_ always points at a valid slot.
    if (slots_.empty()) {
        slots_.reserve(static_cast<std::size_t>(ncores) * 2);
        for (int c = 0; c < ncores; ++c) {
            Slot s;
            s.vm = 0;
            s.core = c;
            slots_.push_back(std::move(s));
        }
    }
    for (int c = 0; c < ncores; ++c) {
        current_[static_cast<std::size_t>(c)] = static_cast<std::uint32_t>(c);
    }
}

CycleProfiler::Slot& CycleProfiler::slot_for(int core, int vm) {
    for (auto& s : slots_) {
        if (s.vm == vm && s.core == core) return s;
    }
    Slot s;
    s.vm = vm;
    s.core = core;
    // sca-suppress(hot-path-alloc): one slot per distinct (vm, core)
    // context — the table is warmed within the first dispatches.
    slots_.push_back(std::move(s));
    return slots_.back();
}

void CycleProfiler::set_context_slow(int core, int vm) {
    if (core < 0 || core >= ncores_) return;
    const Slot& s = slot_for(core, vm);
    current_[static_cast<std::size_t>(core)] =
        static_cast<std::uint32_t>(&s - slots_.data());
}

void CycleProfiler::charge_slow(int core, ProfPath p, sim::Cycles cycles) {
    if (core < 0 || core >= ncores_) return;
    Slot& s = slots_[current_[static_cast<std::size_t>(core)]];
    PathCell& cell = s.paths[static_cast<std::size_t>(p)];
    cell.cycles += static_cast<std::uint64_t>(cycles);
    ++cell.count;
}

void CycleProfiler::charge_call_slow(int core, unsigned call_number,
                                     sim::Cycles cycles) {
    if (core < 0 || core >= ncores_) return;
    Slot& s = slots_[current_[static_cast<std::size_t>(core)]];
    if (s.calls.size() <= call_number) s.calls.resize(call_number + 1);
    PathCell& cell = s.calls[call_number];
    cell.cycles += static_cast<std::uint64_t>(cycles);
    ++cell.count;
    PathCell& path = s.paths[static_cast<std::size_t>(ProfPath::kHypercall)];
    path.cycles += static_cast<std::uint64_t>(cycles);
    ++path.count;
}

void CycleProfiler::on_dispatch(sim::SimTime now, int priority) {
    (void)priority;
    if (!enabled_ || sample_period_ == 0) return;
    if (++dispatches_ % sample_period_ != 0) return;
    CounterSample sample;
    sample.when = now;
    for (std::size_t p = 0; p < kProfPathCount; ++p) {
        sample.cycles[p] = total(static_cast<ProfPath>(p));
    }
    // sca-suppress(hot-path-alloc): the profiler is opt-in (profile=false
    // keeps the dispatch probe detached); armed runs trade the zero-alloc
    // budget for attribution data.
    samples_.push_back(sample);
}

std::uint64_t CycleProfiler::total(ProfPath p) const {
    std::uint64_t sum = 0;
    for (const auto& s : slots_) sum += s.paths[static_cast<std::size_t>(p)].cycles;
    return sum;
}

std::uint64_t CycleProfiler::total_cycles() const {
    std::uint64_t sum = 0;
    for (std::size_t p = 0; p < kProfPathCount; ++p) {
        sum += total(static_cast<ProfPath>(p));
    }
    return sum;
}

CycleProfiler::PathCell CycleProfiler::call_total(unsigned call_number) const {
    PathCell out;
    for (const auto& s : slots_) {
        if (call_number < s.calls.size()) {
            out.cycles += s.calls[call_number].cycles;
            out.count += s.calls[call_number].count;
        }
    }
    return out;
}

void CycleProfiler::merge(const CycleProfiler& other) {
    if (!enabled_) {
        enabled_ = true;
        ncores_ = other.ncores_;
        current_.assign(static_cast<std::size_t>(std::max(ncores_, 0)), 0);
    }
    for (const auto& os : other.slots_) {
        Slot& s = slot_for(os.core, os.vm);
        for (std::size_t p = 0; p < kProfPathCount; ++p) {
            s.paths[p].cycles += os.paths[p].cycles;
            s.paths[p].count += os.paths[p].count;
        }
        if (s.calls.size() < os.calls.size()) s.calls.resize(os.calls.size());
        for (std::size_t n = 0; n < os.calls.size(); ++n) {
            s.calls[n].cycles += os.calls[n].cycles;
            s.calls[n].count += os.calls[n].count;
        }
    }
}

void CycleProfiler::clear() {
    for (auto& s : slots_) {
        s.paths.fill(PathCell{});
        s.calls.clear();
    }
    samples_.clear();
    dispatches_ = 0;
}

std::string CycleProfiler::call_name(unsigned call_number) const {
    if (call_namer_) {
        std::string name = call_namer_(call_number);
        if (!name.empty()) return name;
    }
    return "call_" + std::to_string(call_number);
}

void CycleProfiler::write_collapsed(std::ostream& os) const {
    for (const auto& s : slots_) {
        const std::string prefix =
            "vm" + std::to_string(s.vm) + ";core" + std::to_string(s.core) + ";";
        for (std::size_t p = 0; p < kProfPathCount; ++p) {
            const auto path = static_cast<ProfPath>(p);
            const PathCell& cell = s.paths[p];
            if (cell.count == 0) continue;
            if (path == ProfPath::kHypercall && !s.calls.empty()) {
                // Expanded per-call leaves below; skip the aggregate frame
                // so cycles are not double-counted in the flamegraph.
                continue;
            }
            os << prefix << to_string(path) << ' ' << cell.cycles << '\n';
        }
        for (std::size_t n = 0; n < s.calls.size(); ++n) {
            if (s.calls[n].count == 0) continue;
            os << prefix << to_string(ProfPath::kHypercall) << ';'
               << call_name(static_cast<unsigned>(n)) << ' ' << s.calls[n].cycles
               << '\n';
        }
    }
}

std::string CycleProfiler::perf_top(const sim::ClockSpec& clock,
                                    std::size_t max_rows) const {
    struct RowRef {
        std::string label;
        PathCell cell;
    };
    std::vector<RowRef> rows;
    for (const auto& s : slots_) {
        const std::string prefix =
            "vm" + std::to_string(s.vm) + "/core" + std::to_string(s.core) + "/";
        for (std::size_t p = 0; p < kProfPathCount; ++p) {
            if (s.paths[p].count == 0) continue;
            rows.push_back({prefix + to_string(static_cast<ProfPath>(p)),
                            s.paths[p]});
        }
        for (std::size_t n = 0; n < s.calls.size(); ++n) {
            if (s.calls[n].count == 0) continue;
            rows.push_back({prefix + "hypercall/" +
                                call_name(static_cast<unsigned>(n)),
                            s.calls[n]});
        }
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const RowRef& a, const RowRef& b) {
                         return a.cell.cycles > b.cell.cycles;
                     });
    const std::uint64_t grand = total_cycles();
    std::ostringstream os;
    os << "cycle attribution (total " << grand << " cycles, "
       << clock.to_micros(static_cast<sim::Cycles>(grand)) << " us):\n";
    const std::size_t n = std::min(rows.size(), max_rows);
    for (std::size_t i = 0; i < n; ++i) {
        const double pct =
            grand != 0 ? 100.0 * static_cast<double>(rows[i].cell.cycles) /
                             static_cast<double>(grand)
                       : 0.0;
        char line[160];
        std::snprintf(line, sizeof(line), "  %6.2f%%  %12llu cy  %8llu x  %s\n",
                      pct,
                      static_cast<unsigned long long>(rows[i].cell.cycles),
                      static_cast<unsigned long long>(rows[i].cell.count),
                      rows[i].label.c_str());
        os << line;
    }
    if (rows.size() > n) os << "  ... " << rows.size() - n << " more rows\n";
    return os.str();
}

}  // namespace hpcsec::obs
