// Cycle-attribution profiler: a "perf top" for the simulator.
//
// PR 1's metrics can say *that* hypervisor overhead exists; this sink says
// *where* it went. Every modeled cycle the SPM, the kernels, or the
// executor charges can be mirrored here under an attribution path
// (world-switch, stage-2 walk, vGIC route, ...), bucketed per (VM, core)
// plus per call number for hypercalls. Attribution is purely
// observational: the profiler never charges the Executor itself, so figure
// benches stay bit-identical with the profiler attached (the interceptor
// discipline from src/hafnium/intercept.h).
//
// Cost model: one predicted branch per charge site when disabled. When
// enabled, the engine's dispatch probe drives deterministic sampling of
// the cumulative per-path totals, which export as Perfetto counter tracks;
// the final tree exports as collapsed-stack text ("vm;core;path cycles")
// that flamegraph.pl / speedscope consume directly.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/time.h"

namespace hpcsec::obs {

/// Attribution paths — the SPM/kernel code paths the paper's figures
/// account cycles to. Keep to_string in profiler.cpp in sync (tools/lint.py
/// fails the build otherwise).
enum class ProfPath : std::uint8_t {
    kWorldSwitch,  ///< full VM context switch through EL2 (enter/exit)
    kHypercall,    ///< EL1 -> EL2 -> EL1 roundtrip charged by a handler
    kStage2Walk,   ///< nested-walk TLB refill transients under stage 2
    kVgicRoute,    ///< virq drain/injection on VCPU entry
    kIrqRoute,     ///< physical IRQ routing (direct delivery, primary path)
    kTimerTick,    ///< vtimer/kernel tick service
    kInterceptor,  ///< hypercall interceptor chain (counts; zero cycles)
};
inline constexpr std::size_t kProfPathCount = 7;

[[nodiscard]] const char* to_string(ProfPath p);

/// Hierarchical cycle sink. Disabled (the default) it is a null object:
/// charge()/charge_call() cost one predicted branch, set_context() is a
/// store, and nothing allocates.
class CycleProfiler final : public sim::DispatchProbe {
public:
    struct PathCell {
        std::uint64_t cycles = 0;
        std::uint64_t count = 0;
    };

    /// One (vm, core) attribution bucket. vm 0 is the EL2/host context
    /// (charges landing before any VM context is installed).
    struct Slot {
        int vm = 0;
        int core = 0;
        std::array<PathCell, kProfPathCount> paths{};
        std::vector<PathCell> calls;  ///< indexed by raw hypercall number
    };

    /// Cumulative per-path totals sampled at a deterministic event cadence.
    struct CounterSample {
        sim::SimTime when = 0;
        std::array<std::uint64_t, kProfPathCount> cycles{};
    };

    /// Arm the profiler for `ncores` cores. Idempotent; resets nothing on
    /// a second call with the same core count.
    void enable(int ncores);
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Counter-track sampling cadence in engine dispatches (default 4096;
    /// 0 disables sampling but keeps attribution).
    void set_sample_period(std::uint64_t dispatches) { sample_period_ = dispatches; }

    /// Resolve hypercall numbers to names in exports (set by core::Node so
    /// obs never depends on the hafnium layer). Unset numbers render as
    /// "call_<n>".
    void set_call_namer(std::function<std::string(unsigned)> namer) {
        call_namer_ = std::move(namer);
    }

    // --- hot paths ----------------------------------------------------------
    /// Install the VM context charges on `core` attribute to. Called at
    /// world-switch cadence (cold relative to charge sites).
    void set_context(int core, int vm) {
        if (!enabled_) [[likely]] return;
        set_context_slow(core, vm);
    }

    /// Mirror `cycles` already charged to the core's Executor under `p`.
    void charge(int core, ProfPath p, sim::Cycles cycles) {
        if (!enabled_) [[likely]] return;
        charge_slow(core, p, cycles);
    }

    /// Count a path occurrence without cycles (e.g. interceptor hops).
    void count(int core, ProfPath p) { charge(core, p, 0); }

    /// Attribute a hypercall by raw number (also feeds ProfPath::kHypercall).
    void charge_call(int core, unsigned call_number, sim::Cycles cycles) {
        if (!enabled_) [[likely]] return;
        charge_call_slow(core, call_number, cycles);
    }

    /// sim::DispatchProbe: deterministic sampling clock for counter tracks.
    void on_dispatch(sim::SimTime now, int priority) override;

    // --- inspection ---------------------------------------------------------
    [[nodiscard]] const std::vector<Slot>& slots() const { return slots_; }
    [[nodiscard]] const std::vector<CounterSample>& samples() const {
        return samples_;
    }
    [[nodiscard]] std::uint64_t total(ProfPath p) const;
    [[nodiscard]] std::uint64_t total_cycles() const;
    [[nodiscard]] PathCell call_total(unsigned call_number) const;

    /// Fold another profiler's tree into this one (cross-trial totals).
    /// Samples are not merged (they are per-run timelines).
    void merge(const CycleProfiler& other);

    void clear();

    // --- export -------------------------------------------------------------
    /// Collapsed-stack text: one "vm<N>;core<M>;<path>[;<call>] <cycles>"
    /// line per non-empty leaf — flamegraph.pl / speedscope input.
    void write_collapsed(std::ostream& os) const;

    /// Human-readable top-N attribution table ("perf top").
    [[nodiscard]] std::string perf_top(const sim::ClockSpec& clock,
                                       std::size_t max_rows = 16) const;

    /// Resolved display name for a call number ("call_<n>" without a namer).
    [[nodiscard]] std::string call_name(unsigned call_number) const;

private:
    void set_context_slow(int core, int vm);
    void charge_slow(int core, ProfPath p, sim::Cycles cycles);
    void charge_call_slow(int core, unsigned call_number, sim::Cycles cycles);
    Slot& slot_for(int core, int vm);

    bool enabled_ = false;
    int ncores_ = 0;
    std::uint64_t sample_period_ = 4096;
    std::uint64_t dispatches_ = 0;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> current_;  ///< per-core index into slots_
    std::vector<CounterSample> samples_;
    std::function<std::string(unsigned)> call_namer_;
};

}  // namespace hpcsec::obs
