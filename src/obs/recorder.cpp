#include "obs/recorder.h"

#include <array>
#include <cstdlib>
#include <string>
#include <utility>

namespace hpcsec::obs {

namespace {
constexpr std::array<std::pair<const char*, Category>, 11> kCategoryNames{{
    {"irq", Category::kIrq},
    {"sched", Category::kSched},
    {"hyp", Category::kHyp},
    {"vm", Category::kVm},
    {"mmu", Category::kMmu},
    {"workload", Category::kWorkload},
    {"boot", Category::kBoot},
    {"channel", Category::kChannel},
    {"check", Category::kCheck},
    {"resil", Category::kResil},
    {"all", Category::kAll},
}};
}  // namespace

const char* category_name(Category c) {
    for (const auto& [name, cat] : kCategoryNames) {
        if (cat == c) return name;
    }
    return "?";
}

bool parse_category_list(const std::string& list, std::uint32_t& out,
                         std::string& error) {
    out = 0;
    error.clear();
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (!tok.empty()) {
            bool matched = false;
            for (const auto& [name, cat] : kCategoryNames) {
                if (tok == name) {
                    out |= to_mask(cat);
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                // Raw bitmask tokens ("0x305", "773") OR in verbatim.
                char* end = nullptr;
                const unsigned long long raw = std::strtoull(tok.c_str(), &end, 0);
                if (end != nullptr && *end == '\0' && end != tok.c_str()) {
                    out |= static_cast<std::uint32_t>(raw);
                    matched = true;
                }
            }
            if (!matched) {
                error = "unknown trace category '" + tok + "' (valid: ";
                for (std::size_t i = 0; i < kCategoryNames.size(); ++i) {
                    if (i != 0) error += ",";
                    error += kCategoryNames[i].first;
                }
                error += ", or a numeric mask like 0x305)";
                return false;
            }
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return true;
}

const char* to_string(EventType t) {
    switch (t) {
        case EventType::kVmRun: return "vm-run";
        case EventType::kWorkChunk: return "work-chunk";
        case EventType::kDetour: return "detour";
        case EventType::kVmExit: return "vm-exit";
        case EventType::kIrqDeliver: return "irq-deliver";
        case EventType::kVirqInject: return "virq-inject";
        case EventType::kHypercall: return "hypercall";
        case EventType::kGuestTick: return "guest-tick";
        case EventType::kKernelTick: return "kernel-tick";
        case EventType::kContextSwitch: return "context-switch";
        case EventType::kNoisePreempt: return "noise-preempt";
        case EventType::kBarrierStep: return "barrier-step";
        case EventType::kCheckFail: return "check-fail";
        case EventType::kResilFault: return "resil-fault";
        case EventType::kResilAction: return "resil-action";
        case EventType::kChaosInject: return "chaos-inject";
        case EventType::kTagViolation: return "tag-violation";
        case EventType::kContainAction: return "contain-action";
    }
    return "?";
}

std::size_t SpanRecorder::count(EventType t) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
        if (e.type == t) ++n;
    }
    return n;
}

void SpanRecorder::record(Event e) {
    if (flight_ != nullptr) flight_->push(e);
    // Retain/mirror only when the event's category is enabled proper; an
    // armed flight recorder routes everything here but keeps only its rings.
    if ((mask_ & to_mask(category_of(e.type))) == 0) return;
    // sca-suppress(hot-path-alloc): category retention is opt-in via
    // obs_mask; a disarmed recorder returns before this line.
    events_.push_back(e);
    if (mirror_ == nullptr) return;
    // TraceCat bit layout matches Category, so the cast is exact.
    const auto cat = static_cast<sim::TraceCat>(to_mask(category_of(e.type)));
    if (!mirror_->enabled(cat)) return;
    std::string text = to_string(e.type);
    text += " a0=" + std::to_string(e.a0) + " a1=" + std::to_string(e.a1) +
            " a2=" + std::to_string(e.a2);
    if (e.is_span()) text += " dur=" + std::to_string(e.end - e.start);
    mirror_->log(e.start, cat, e.core, std::move(text));
}

}  // namespace hpcsec::obs
