#include "obs/recorder.h"

#include <string>

namespace hpcsec::obs {

const char* to_string(EventType t) {
    switch (t) {
        case EventType::kVmRun: return "vm-run";
        case EventType::kWorkChunk: return "work-chunk";
        case EventType::kDetour: return "detour";
        case EventType::kVmExit: return "vm-exit";
        case EventType::kIrqDeliver: return "irq-deliver";
        case EventType::kVirqInject: return "virq-inject";
        case EventType::kHypercall: return "hypercall";
        case EventType::kGuestTick: return "guest-tick";
        case EventType::kKernelTick: return "kernel-tick";
        case EventType::kContextSwitch: return "context-switch";
        case EventType::kNoisePreempt: return "noise-preempt";
        case EventType::kBarrierStep: return "barrier-step";
        case EventType::kCheckFail: return "check-fail";
        case EventType::kResilFault: return "resil-fault";
        case EventType::kResilAction: return "resil-action";
        case EventType::kChaosInject: return "chaos-inject";
    }
    return "?";
}

std::size_t SpanRecorder::count(EventType t) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
        if (e.type == t) ++n;
    }
    return n;
}

void SpanRecorder::record(Event e) {
    events_.push_back(e);
    if (mirror_ == nullptr) return;
    // TraceCat bit layout matches Category, so the cast is exact.
    const auto cat = static_cast<sim::TraceCat>(to_mask(category_of(e.type)));
    if (!mirror_->enabled(cat)) return;
    std::string text = to_string(e.type);
    text += " a0=" + std::to_string(e.a0) + " a1=" + std::to_string(e.a1) +
            " a2=" + std::to_string(e.a2);
    if (e.is_span()) text += " dur=" + std::to_string(e.end - e.start);
    mirror_->log(e.start, cat, e.core, std::move(text));
}

}  // namespace hpcsec::obs
