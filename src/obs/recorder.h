// Structured span/event recorder.
//
// Recording is off by default and costs exactly one branch per call site
// when disabled (a bitmask test; no allocation, no string formatting).
// When enabled, events are retained in memory for export. An optional
// TraceLog mirror renders enabled events as text so the legacy
// substring-assert API keeps working for tests.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/events.h"
#include "obs/flight.h"
#include "sim/trace.h"

namespace hpcsec::obs {

class SpanRecorder {
public:
    [[nodiscard]] bool enabled(Category c) const { return (mask_ & to_mask(c)) != 0; }
    [[nodiscard]] std::uint32_t mask() const { return mask_; }
    void set_mask(std::uint32_t mask) { mask_ = mask; }
    void enable(Category c) { mask_ |= to_mask(c); }
    void disable(Category c) { mask_ &= ~to_mask(c); }

    /// Mirror enabled events into the legacy string TraceLog (cold path
    /// only; nothing is formatted unless the event's category is enabled
    /// here AND in the mirror).
    void set_mirror(sim::TraceLog* log) { mirror_ = log; }

    /// Feed every event (all categories) into an armed flight recorder's
    /// rings in addition to normal retention. The hot path stays one branch:
    /// arming ORs kAll into the gate mask, and the cold path decides what is
    /// retained vs. only ring-buffered.
    void set_flight(FlightRecorder* flight) {
        flight_ = flight;
        flight_mask_ =
            flight != nullptr && flight->armed() ? to_mask(Category::kAll) : 0;
    }
    [[nodiscard]] FlightRecorder* flight() const { return flight_; }

    // --- hot path -----------------------------------------------------------
    void instant(sim::SimTime when, EventType t, int core, std::int64_t a0 = 0,
                 std::int64_t a1 = 0, std::int64_t a2 = 0) {
        if (((mask_ | flight_mask_) & to_mask(category_of(t))) == 0) return;
        record({when, when, t, static_cast<std::int16_t>(core), a0, a1, a2});
    }

    void span(sim::SimTime start, sim::SimTime end, EventType t, int core,
              std::int64_t a0 = 0, std::int64_t a1 = 0, std::int64_t a2 = 0) {
        if (((mask_ | flight_mask_) & to_mask(category_of(t))) == 0) return;
        record({start, end, t, static_cast<std::int16_t>(core), a0, a1, a2});
    }

    // --- inspection ---------------------------------------------------------
    [[nodiscard]] const std::vector<Event>& events() const { return events_; }
    [[nodiscard]] std::size_t count(EventType t) const;
    void clear() { events_.clear(); }

private:
    void record(Event e);  ///< cold path: flight ring, retain, optional mirror

    std::uint32_t mask_ = 0;
    std::uint32_t flight_mask_ = 0;  ///< kAll while a flight recorder is armed
    std::vector<Event> events_;
    sim::TraceLog* mirror_ = nullptr;
    FlightRecorder* flight_ = nullptr;
};

}  // namespace hpcsec::obs
