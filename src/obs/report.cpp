#include "obs/report.h"

#include <fstream>
#include <ostream>

namespace hpcsec::obs {

void BenchReport::add(const std::string& metric, double mean, double stdev,
                      std::size_t n) {
    rows_.push_back({metric, mean, stdev, n});
}

void BenchReport::add(const std::string& metric, const sim::RunningStats& stats) {
    rows_.push_back({metric, stats.mean(), stats.stddev(), stats.count()});
}

void BenchReport::add(const std::string& prefix, const MetricsAggregate& agg) {
    for (const auto& r : agg.rows()) {
        rows_.push_back({prefix + r.name, r.stats.mean(), r.stats.stddev(),
                         r.stats.count()});
    }
}

void BenchReport::write(std::ostream& os) const {
    os << "{\"bench\":\"" << name_ << "\",\"metrics\":[";
    bool first = true;
    for (const auto& r : rows_) {
        if (!first) os << ",";
        first = false;
        os << "\n  {\"name\":\"" << r.metric << "\",\"mean\":" << r.mean
           << ",\"stdev\":" << r.stdev << ",\"n\":" << r.n << "}";
    }
    os << "\n]}\n";
}

bool BenchReport::write_default(const std::string& dir) const {
    std::ofstream f(dir + "/BENCH_" + name_ + ".json");
    if (!f) return false;
    write(f);
    return f.good();
}

}  // namespace hpcsec::obs
