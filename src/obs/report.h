// Machine-readable benchmark reports: every bench target writes a
// BENCH_<name>.json next to its stdout output so the perf trajectory is
// tracked across PRs. Rows are (metric name, mean, stdev, n).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/stats.h"

namespace hpcsec::obs {

class BenchReport {
public:
    explicit BenchReport(std::string bench_name) : name_(std::move(bench_name)) {}

    void add(const std::string& metric, double mean, double stdev, std::size_t n);
    void add(const std::string& metric, const sim::RunningStats& stats);
    /// Import every row of an aggregated metrics set under a prefix.
    void add(const std::string& prefix, const MetricsAggregate& agg);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::size_t size() const { return rows_.size(); }

    void write(std::ostream& os) const;
    /// Write to `dir`/BENCH_<name>.json ("." by default). Returns false when
    /// the file cannot be opened; never throws.
    bool write_default(const std::string& dir = ".") const;

private:
    struct Row {
        std::string metric;
        double mean;
        double stdev;
        std::size_t n;
    };
    std::string name_;
    std::vector<Row> rows_;
};

}  // namespace hpcsec::obs
