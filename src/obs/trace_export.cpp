#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace hpcsec::obs {

namespace {

/// Exit-reason track names, matching hafnium::ExitReason's enumerators.
constexpr const char* kExitNames[4] = {"preempted", "yield", "blocked", "aborted"};

std::string fmt_us(double us) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

/// Named args per event type (keeps the Perfetto UI readable).
void write_args(std::ostream& os, const Event& e) {
    os << "\"args\":{";
    switch (e.type) {
        case EventType::kVmRun:
        case EventType::kVmExit:
            os << "\"vm\":" << e.a0 << ",\"vcpu\":" << e.a1 << ",\"exit\":\""
               << (e.a2 >= 0 && e.a2 < 4 ? kExitNames[e.a2] : "?") << "\"";
            break;
        case EventType::kIrqDeliver:
            os << "\"irq\":" << e.a0 << ",\"dest\":" << e.a1;
            break;
        case EventType::kVirqInject:
            os << "\"virq\":" << e.a0 << ",\"vm\":" << e.a1;
            break;
        case EventType::kHypercall:
            os << "\"call\":" << e.a0 << ",\"caller\":" << e.a1;
            break;
        case EventType::kGuestTick:
            os << "\"vm\":" << e.a0 << ",\"vcpu\":" << e.a1;
            break;
        default:
            os << "\"a0\":" << e.a0 << ",\"a1\":" << e.a1 << ",\"a2\":" << e.a2;
            break;
    }
    os << "}";
}

}  // namespace

void TraceExporter::add_process(int pid, const std::string& name, int ncores,
                                std::vector<Event> events) {
    // sca-suppress(hot-path-alloc): the exporter runs post-mortem / at end
    // of run, never on the dispatch path.
    processes_.push_back({pid, name, ncores, std::move(events), {}});
}

void TraceExporter::add_counter_tracks(int pid, std::vector<CounterTrack> tracks) {
    for (auto& p : processes_) {
        if (p.pid != pid) continue;
        for (auto& t : tracks) p.counters.push_back(std::move(t));
        return;
    }
    // No events for this pid yet: carry the tracks on an empty process.
    processes_.push_back({pid, "counters", 0, {}, std::move(tracks)});
}

void TraceExporter::write(std::ostream& os) const {
    os << "{\"traceEvents\":[\n";
    bool first = true;
    const auto emit = [&](const std::string& line) {
        if (!first) os << ",\n";
        first = false;
        os << line;
    };

    for (const auto& p : processes_) {
        // Metadata: process/thread names.
        emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
             std::to_string(p.pid) + ",\"args\":{\"name\":\"" + p.name + "\"}}");
        for (int c = 0; c < p.ncores; ++c) {
            emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
                 std::to_string(p.pid) + ",\"tid\":" + std::to_string(c) +
                 ",\"args\":{\"name\":\"core " + std::to_string(c) + "\"}}");
        }

        // Cumulative per-reason exit counters (one "C" track per process).
        std::uint64_t exits[4] = {0, 0, 0, 0};
        std::vector<const Event*> exit_events;
        for (const auto& e : p.events) {
            // sca-suppress(hot-path-alloc): post-mortem export path.
            if (e.type == EventType::kVmExit) exit_events.push_back(&e);
        }
        std::stable_sort(exit_events.begin(), exit_events.end(),
                         [](const Event* a, const Event* b) { return a->start < b->start; });
        for (const Event* e : exit_events) {
            if (e->a2 >= 0 && e->a2 < 4) ++exits[e->a2];
            std::string line = "{\"ph\":\"C\",\"name\":\"vm_exits\",\"pid\":" +
                               std::to_string(p.pid) +
                               ",\"ts\":" + fmt_us(clock_.to_micros(e->start)) +
                               ",\"args\":{";
            for (int r = 0; r < 4; ++r) {
                if (r != 0) line += ",";
                line += "\"" + std::string(kExitNames[r]) + "\":" + std::to_string(exits[r]);
            }
            line += "}}";
            emit(line);
        }

        // Generic counter tracks (e.g. profiler cycle attribution).
        for (const auto& track : p.counters) {
            for (const auto& [when, value] : track.samples) {
                emit("{\"ph\":\"C\",\"name\":\"" + track.name + "\",\"pid\":" +
                     std::to_string(p.pid) +
                     ",\"ts\":" + fmt_us(clock_.to_micros(when)) +
                     ",\"args\":{\"value\":" + fmt_us(value) + "}}");
            }
        }

        // Spans and instants, sorted per core so every tid's ts column is
        // monotonically non-decreasing (spans are recorded at their *end*
        // in sim order, so a raw dump would interleave).
        std::vector<const Event*> ordered;
        ordered.reserve(p.events.size());
        // sca-suppress(hot-path-alloc): post-mortem export path.
        for (const auto& e : p.events) ordered.push_back(&e);
        std::stable_sort(ordered.begin(), ordered.end(),
                         [](const Event* a, const Event* b) {
                             if (a->core != b->core) return a->core < b->core;
                             if (a->start != b->start) return a->start < b->start;
                             return (a->end - a->start) > (b->end - b->start);
                         });
        for (const Event* e : ordered) {
            std::string line = "{\"name\":\"";
            line += to_string(e->type);
            line += "\",\"cat\":\"hpcsec\",\"ph\":\"";
            if (e->is_span()) {
                line += "X\",\"ts\":" + fmt_us(clock_.to_micros(e->start)) +
                        ",\"dur\":" + fmt_us(clock_.to_micros(e->end - e->start));
            } else {
                line += "i\",\"s\":\"t\",\"ts\":" + fmt_us(clock_.to_micros(e->start));
            }
            line += ",\"pid\":" + std::to_string(p.pid) +
                    ",\"tid\":" + std::to_string(e->core) + ",";
            std::ostringstream args;
            write_args(args, *e);
            line += args.str();
            line += "}";
            emit(line);
        }
    }
    os << "\n]}\n";
}

bool TraceExporter::write_file(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    write(f);
    return f.good();
}

}  // namespace hpcsec::obs
