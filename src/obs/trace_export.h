// Chrome trace-event JSON exporter (Perfetto / chrome://tracing loadable).
//
// Each node configuration is a trace "process" (pid), each physical core a
// "thread" (tid). VM-run and work-chunk spans become complete ("X") events,
// instants become "i" events, and per-reason VM-exit counts are synthesized
// into cumulative counter ("C") tracks so the exit mix is visible as a
// timeline graph.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/events.h"
#include "sim/time.h"

namespace hpcsec::obs {

class TraceExporter {
public:
    explicit TraceExporter(sim::ClockSpec clock) : clock_(clock) {}

    /// Add one process (e.g. one scheduler configuration) worth of events.
    /// `pid` must be unique per process; `ncores` names tid metadata rows.
    void add_process(int pid, const std::string& name, int ncores,
                     std::vector<Event> events);

    /// One generic counter track: cumulative `value` samples over time
    /// rendered as a Perfetto "C" graph (the profiler's per-path cycle
    /// tracks use this). Attach to an added process's pid.
    struct CounterTrack {
        std::string name;
        std::vector<std::pair<sim::SimTime, double>> samples;
    };
    void add_counter_tracks(int pid, std::vector<CounterTrack> tracks);

    /// Write the full trace as {"traceEvents":[...]}. One event per line.
    void write(std::ostream& os) const;
    /// Returns false (and writes nothing) when the file cannot be opened.
    bool write_file(const std::string& path) const;

private:
    struct Process {
        int pid;
        std::string name;
        int ncores;
        std::vector<Event> events;
        std::vector<CounterTrack> counters;
    };

    sim::ClockSpec clock_;
    std::vector<Process> processes_;
};

}  // namespace hpcsec::obs
