#include "resil/chaos.h"

#include <vector>

#include "hafnium/hypercall.h"

namespace hpcsec::resil {

const char* to_string(ChaosFault f) {
    switch (f) {
        case ChaosFault::kKillVcpu: return "kill-vcpu";
        case ChaosFault::kWedgeVcpu: return "wedge-vcpu";
        case ChaosFault::kDropFrame: return "drop-frame";
        case ChaosFault::kGarbleFrame: return "garble-frame";
        case ChaosFault::kSpuriousVirq: return "spurious-virq";
    }
    return "?";
}

ChaosInjector::ChaosInjector(core::Node& node, ChaosConfig config)
    : node_(&node), config_(config), rng_(node.platform().rng().split()) {}

ChaosInjector::~ChaosInjector() { stop(); }

void ChaosInjector::start() {
    if (armed_) return;
    armed_ = true;
    schedule();
}

void ChaosInjector::stop() {
    if (!armed_) return;
    node_->platform().engine().cancel(event_);
    armed_ = false;
}

void ChaosInjector::schedule() {
    auto& engine = node_->platform().engine();
    double delay_s = rng_.exponential(1.0 / config_.rate_hz);
    if (delay_s < 1e-9) delay_s = 1e-9;
    event_ = engine.at(engine.now() + engine.clock().from_seconds(delay_s),
                       [this] { inject(); }, sim::kPrioDefault);
}

hafnium::Vcpu* ChaosInjector::pick_secondary_vcpu(bool running_only) {
    hafnium::Spm* spm = node_->spm();
    std::vector<hafnium::Vcpu*> candidates;
    for (int id = 1; id <= spm->vm_count(); ++id) {
        hafnium::Vm& vm = spm->vm(static_cast<arch::VmId>(id));
        if (vm.destroyed || vm.role() != hafnium::VmRole::kSecondary) continue;
        for (int v = 0; v < vm.vcpu_count(); ++v) {
            hafnium::Vcpu& vcpu = vm.vcpu(v);
            if (vcpu.state() == hafnium::VcpuState::kAborted) continue;
            if (running_only &&
                vcpu.state() != hafnium::VcpuState::kRunning) {
                continue;
            }
            candidates.push_back(&vcpu);
        }
    }
    if (candidates.empty()) return nullptr;
    return candidates[rng_.next_below(candidates.size())];
}

hafnium::Vm* ChaosInjector::pick_full_mailbox() {
    hafnium::Spm* spm = node_->spm();
    std::vector<hafnium::Vm*> candidates;
    for (int id = 1; id <= spm->vm_count(); ++id) {
        hafnium::Vm& vm = spm->vm(static_cast<arch::VmId>(id));
        if (vm.destroyed || !vm.mailbox.configured || !vm.mailbox.recv_full) {
            continue;
        }
        candidates.push_back(&vm);
    }
    if (candidates.empty()) return nullptr;
    return candidates[rng_.next_below(candidates.size())];
}

void ChaosInjector::record(ChaosFault fault, std::int64_t a1, std::int64_t a2) {
    node_->platform().recorder().instant(
        node_->platform().engine().now(), obs::EventType::kChaosInject, -1,
        static_cast<std::int64_t>(fault), a1, a2);
}

void ChaosInjector::inject() {
    if (!armed_) return;
    ++stats_.injections;
    hafnium::Spm* spm = node_->spm();
    if (spm == nullptr) {
        // Native configuration: nothing to attack; the soak still runs.
        ++stats_.no_target;
        publish_metrics();
        schedule();
        return;
    }

    std::vector<ChaosFault> kinds;
    for (std::uint8_t f = 0; f < 5; ++f) {
        if ((config_.fault_mask & (1u << f)) != 0) {
            kinds.push_back(static_cast<ChaosFault>(f));
        }
    }
    if (kinds.empty()) {
        ++stats_.no_target;
        publish_metrics();
        schedule();
        return;
    }
    const ChaosFault fault = kinds[rng_.next_below(kinds.size())];

    switch (fault) {
        case ChaosFault::kKillVcpu: {
            hafnium::Vcpu* vcpu = pick_secondary_vcpu(/*running_only=*/false);
            if (vcpu == nullptr) {
                ++stats_.no_target;
                break;
            }
            record(fault, vcpu->vm().id(), vcpu->index());
            spm->abort_vcpu(*vcpu);
            ++stats_.vcpu_kills;
            node_->platform().flight().dump("chaos-kill");
            break;
        }
        case ChaosFault::kWedgeVcpu: {
            // A buggy guest disables its own timer: heartbeats stop while
            // the VCPU keeps spinning — the watchdog's hang path.
            hafnium::Vcpu* vcpu = pick_secondary_vcpu(/*running_only=*/true);
            if (vcpu == nullptr || !vcpu->vtimer_armed) {
                ++stats_.no_target;
                break;
            }
            record(fault, vcpu->vm().id(), vcpu->index());
            const arch::CoreId core = vcpu->running_core >= 0
                                          ? vcpu->running_core
                                          : vcpu->assigned_core;
            hf::vtimer_cancel(*spm, core, vcpu->vm().id(), vcpu->index());
            ++stats_.vcpu_wedges;
            break;
        }
        case ChaosFault::kDropFrame: {
            hafnium::Vm* vm = pick_full_mailbox();
            if (vm == nullptr) {
                ++stats_.no_target;
                break;
            }
            record(fault, vm->id(), vm->mailbox.recv_size);
            vm->mailbox.recv_full = false;
            vm->mailbox.recv_size = 0;
            ++stats_.frames_dropped;
            break;
        }
        case ChaosFault::kGarbleFrame: {
            hafnium::Vm* vm = pick_full_mailbox();
            if (vm == nullptr) {
                ++stats_.no_target;
                break;
            }
            const std::uint64_t words =
                std::max<std::uint64_t>(1, (vm->mailbox.recv_size + 7) / 8);
            const std::uint64_t w = rng_.next_below(words);
            record(fault, vm->id(), static_cast<std::int64_t>(w));
            spm->vm_write64(vm->id(), vm->mailbox.recv_ipa + w * 8,
                            rng_.next_u64());
            ++stats_.frames_garbled;
            break;
        }
        case ChaosFault::kSpuriousVirq: {
            // Models a spurious notification from the primary; SGI-range id,
            // so the vGIC sanity rule stays clean.
            hafnium::Vcpu* vcpu = pick_secondary_vcpu(/*running_only=*/false);
            if (vcpu == nullptr) {
                ++stats_.no_target;
                break;
            }
            record(fault, vcpu->vm().id(), vcpu->index());
            hf::interrupt_inject(*spm, 0, arch::kPrimaryVmId, vcpu->vm().id(),
                                 vcpu->index(), hafnium::kMessageVirq);
            ++stats_.spurious_virqs;
            break;
        }
    }
    publish_metrics();
    schedule();
}

std::optional<hafnium::HfResult> CallFaultInjector::before(
    const hafnium::HypercallSite& site) {
    if (options_.only && site.call != *options_.only) return std::nullopt;
    ++observed_;
    const std::uint64_t period = options_.period == 0 ? 1 : options_.period;
    if (observed_ % period != 0) return std::nullopt;
    ++injected_;
    return hafnium::HfResult{options_.error, 0};
}

void ChaosInjector::publish_metrics() {
    auto& m = node_->platform().metrics();
    const auto set = [&m](const char* name, std::uint64_t v) {
        m.set(m.gauge(name), static_cast<double>(v));
    };
    set("chaos.injections", stats_.injections);
    set("chaos.vcpu_kills", stats_.vcpu_kills);
    set("chaos.vcpu_wedges", stats_.vcpu_wedges);
    set("chaos.frames_dropped", stats_.frames_dropped);
    set("chaos.frames_garbled", stats_.frames_garbled);
    set("chaos.spurious_virqs", stats_.spurious_virqs);
    set("chaos.no_target", stats_.no_target);
}

}  // namespace hpcsec::resil
