// ChaosInjector — seed-deterministic runtime fault injection.
//
// Extends src/check/corrupt.*'s idea (deliberately break an invariant,
// prove the checker sees it) from state corruption to *runtime* faults:
// kill VCPUs, wedge a secondary's heartbeat, drop or garble mailbox
// frames, raise spurious vIRQs. Faults arrive with exponential
// inter-arrival times from a sim::Rng split off the platform stream, so a
// seed reproduces the exact fault timeline. Every fault models something a
// hostile or buggy partition (or flaky hardware) could cause — none of
// them may produce an isolation finding under the strict auditor.
#pragma once

#include <cstdint>
#include <optional>

#include "core/node.h"
#include "hafnium/intercept.h"
#include "sim/rng.h"

namespace hpcsec::resil {

enum class ChaosFault : std::uint8_t {
    kKillVcpu,      ///< abort a secondary VCPU (models a fatal guest fault)
    kWedgeVcpu,     ///< cancel a secondary's vtimer: heartbeats stop
    kDropFrame,     ///< discard a full mailbox recv frame
    kGarbleFrame,   ///< flip a word inside a full mailbox recv frame
    kSpuriousVirq,  ///< inject an unexpected message virq
};

[[nodiscard]] const char* to_string(ChaosFault f);

struct ChaosConfig {
    double rate_hz = 20.0;           ///< mean fault arrival rate (sim time)
    std::uint32_t fault_mask = 0x1f; ///< bit per ChaosFault value
};

class ChaosInjector {
public:
    ChaosInjector(core::Node& node, ChaosConfig config = {});
    ~ChaosInjector();
    ChaosInjector(const ChaosInjector&) = delete;
    ChaosInjector& operator=(const ChaosInjector&) = delete;

    /// Arm the injector (idempotent).
    void start();
    /// Cancel the pending injection.
    void stop();

    struct Stats {
        std::uint64_t injections = 0;
        std::uint64_t vcpu_kills = 0;
        std::uint64_t vcpu_wedges = 0;
        std::uint64_t frames_dropped = 0;
        std::uint64_t frames_garbled = 0;
        std::uint64_t spurious_virqs = 0;
        std::uint64_t no_target = 0;  ///< fault drawn but nothing to hit
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

    /// Push Stats into the platform's metrics registry as "chaos.*" gauges.
    void publish_metrics();

private:
    void schedule();
    void inject();
    [[nodiscard]] hafnium::Vcpu* pick_secondary_vcpu(bool running_only);
    [[nodiscard]] hafnium::Vm* pick_full_mailbox();
    void record(ChaosFault fault, std::int64_t a1, std::int64_t a2);

    core::Node* node_;
    ChaosConfig config_;
    sim::Rng rng_;
    sim::EventId event_{};
    bool armed_ = false;
    Stats stats_;
};

/// CallFaultInjector — deterministic ABI-level fault injection.
///
/// Sits at HypercallInterceptor::Stage::kChaos and short-circuits every
/// Nth matching hypercall with a configurable error before the handler
/// runs, modeling a transiently failing secure monitor (SMC worlds
/// returning BUSY/RETRY under interrupt pressure). Unlike ChaosInjector's
/// stochastic timeline this is purely counter-based, so tests can assert
/// the exact set of failed calls. The injected failure never mutates SPM
/// state — the gate has not admitted the call — so strict auditing must
/// stay clean while it runs.
class CallFaultInjector final : public hafnium::HypercallInterceptor {
public:
    struct Options {
        /// Fail one call out of every `period` matching calls (>= 1).
        std::uint64_t period = 16;
        /// Restrict injection to one call number; nullopt = every call.
        std::optional<hafnium::Call> only;
        /// Error returned instead of running the handler.
        hafnium::HfError error = hafnium::HfError::kRetry;
    };

    CallFaultInjector() : CallFaultInjector(Options{}) {}
    explicit CallFaultInjector(Options options)
        : hafnium::HypercallInterceptor(Stage::kChaos), options_(options) {}

    std::optional<hafnium::HfResult> before(
        const hafnium::HypercallSite& site) override;

    /// Calls that matched the filter (injected + passed through).
    [[nodiscard]] std::uint64_t observed() const { return observed_; }
    /// Calls short-circuited with options().error.
    [[nodiscard]] std::uint64_t injected() const { return injected_; }
    [[nodiscard]] const Options& options() const { return options_; }

private:
    Options options_;
    std::uint64_t observed_ = 0;
    std::uint64_t injected_ = 0;
};

}  // namespace hpcsec::resil
