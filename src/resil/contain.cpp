#include "resil/contain.h"

#include <algorithm>
#include <stdexcept>

namespace hpcsec::resil {

const char* to_string(ContainmentPolicy p) {
    switch (p) {
        case ContainmentPolicy::kDetected: return "detected";
        case ContainmentPolicy::kDumped: return "dumped";
        case ContainmentPolicy::kQuarantined: return "quarantined";
        case ContainmentPolicy::kReverified: return "reverified";
        case ContainmentPolicy::kEmbargoed: return "embargoed";
    }
    return "?";
}

ContainmentEngine::ContainmentEngine(core::Node& node, ContainmentConfig config)
    : node_(&node), config_(config) {
    if (node.spm() == nullptr) {
        throw std::logic_error("resil::ContainmentEngine: needs a hafnium node");
    }
    if (config_.defer_s <= 0.0) {
        throw std::invalid_argument(
            "resil::ContainmentEngine: defer_s must be > 0 (teardown cannot "
            "run inside the offender's own hypercall)");
    }
}

ContainmentEngine::~ContainmentEngine() { disarm(); }

void ContainmentEngine::arm() {
    if (armed_) return;
    armed_ = true;
    node_->spm()->tag_violation_hook =
        [this](const hafnium::Spm::TagViolation& v) { on_violation(v); };
}

void ContainmentEngine::disarm() {
    if (!armed_) return;
    armed_ = false;
    node_->spm()->tag_violation_hook = nullptr;
    for (const sim::EventId& e : pending_) {
        node_->platform().engine().cancel(e);
    }
    pending_.clear();
}

void ContainmentEngine::record(ContainmentPolicy step, arch::VmId vm,
                               const std::string& region) {
    // sca-suppress(hot-path-alloc): containment actions are failure-path
    // responses to a detected violation, not steady-state dispatch.
    action_log_.push_back({step, vm, region});
    node_->platform().recorder().instant(
        node_->platform().engine().now(), obs::EventType::kContainAction, -1,
        static_cast<std::int64_t>(step), vm, 0);
}

void ContainmentEngine::on_violation(const hafnium::Spm::TagViolation& v) {
    ++stats_.violations;
    record(ContainmentPolicy::kDetected, v.offender, v.region);
    // An attack is usually a burst (over-reads walk word by word): the first
    // violation starts containment, the rest only count. The offender keeps
    // bouncing off the tag check in the meantime — detection blocks the
    // access itself, so nothing leaks while teardown is pending.
    if (std::find(handled_.begin(), handled_.end(), v.offender) !=
        handled_.end()) {
        return;
    }
    handled_.push_back(v.offender);

    // Dump first: capture the rings leading up to the violation before the
    // containment events start overwriting them (no-op when disarmed).
    node_->platform().flight().dump("tag-violation");
    ++stats_.dumps;
    record(ContainmentPolicy::kDumped, v.offender, v.region);

    // Defer the destructive half: the hook runs inside the offender's own
    // access path and a VM must never be torn down mid-hypercall.
    auto& engine = node_->platform().engine();
    const arch::VmId offender = v.offender;
    const std::string region = v.region;
    pending_.push_back(engine.at(
        engine.now() + engine.clock().from_seconds(config_.defer_s),
        [this, offender, region] { contain(offender, region); },
        sim::kPrioKernel));
}

void ContainmentEngine::contain(arch::VmId offender, const std::string& region) {
    if (config_.quarantine) {
        try {
            node_->retire_vm(offender);
            ++stats_.quarantines;
            record(ContainmentPolicy::kQuarantined, offender, region);
        } catch (const std::exception&) {
            // Best effort (e.g. the offender was already retired by the
            // watchdog); recovery below proceeds regardless.
        }
    }
    // Recover: prove the tag check fired before any byte changed. A clean
    // re-measurement keeps the region in service; a mismatch poisons it —
    // Spm::release_critical will refuse to ever return those frames.
    if (!region.empty()) {
        if (node_->spm()->reverify_critical(region)) {
            ++stats_.reverified;
            record(ContainmentPolicy::kReverified, offender, region);
        } else {
            ++stats_.embargoes;
            record(ContainmentPolicy::kEmbargoed, offender, region);
        }
    }
    publish_metrics();
}

void ContainmentEngine::publish_metrics() {
    auto& m = node_->platform().metrics();
    const auto set = [&m](const char* name, std::uint64_t v) {
        m.set(m.gauge(name), static_cast<double>(v));
    };
    set("contain.violations", stats_.violations);
    set("contain.dumps", stats_.dumps);
    set("contain.quarantines", stats_.quarantines);
    set("contain.reverified", stats_.reverified);
    set("contain.embargoes", stats_.embargoes);
}

}  // namespace hpcsec::resil
