// ContainmentEngine — the contain → recover half of the memory-integrity
// pipeline (the detect half lives in arch::Mmu / hafnium::Spm tag checks).
//
// HDFI-style one-bit tags turn a corrupting access into a TagViolation the
// moment it happens; this engine decides what the node does next. The
// sequence mirrors the watchdog's quarantine path so both failure classes
// (crash/hang and active attack) share one recovery vocabulary:
//
//  * dump    — flight-recorder rings are flushed first, so the lead-up to
//              the violation is captured before recovery events overwrite it.
//  * contain — the offending partition is retired via the same quarantine
//              primitive the restart-budget machinery uses (core::Node::
//              retire_vm): VCPUs reaped, stage-2 reclaimed, grants revoked.
//              Retirement is deferred by one short engine event — a VM is
//              never torn down in the middle of its own hypercall.
//  * recover — the tagged frame is re-measured against the hash taken when
//              the tag was set. A match proves the check fired before any
//              byte changed and the region is safe to keep serving; a
//              mismatch embargoes the frames forever (never reused).
//
// The node keeps serving the remaining partitions throughout — graceful
// degradation, never node death. Every step lands in a deterministic
// action log so a seed reproduces the exact containment timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/node.h"

namespace hpcsec::resil {

/// One step of the detect → contain → recover pipeline, in the order the
/// engine performs them. Also the a0 payload of kContainAction events.
enum class ContainmentPolicy : std::uint8_t {
    kDetected,     ///< tag violation delivered by the SPM hook
    kDumped,       ///< flight-recorder rings flushed
    kQuarantined,  ///< offender retired; node keeps serving the rest
    kReverified,   ///< tagged frames re-measured clean: safe for reuse
    kEmbargoed,    ///< re-measurement failed: frames withheld forever
};

[[nodiscard]] const char* to_string(ContainmentPolicy p);

struct ContainmentConfig {
    /// Retire the offending VM. false = alarm-only mode: detect, dump and
    /// re-verify but leave the partition running (forensics setups).
    bool quarantine = true;
    /// Delay before the deferred containment step runs. Must be > 0: the
    /// violation hook fires mid-hypercall and teardown cannot happen there.
    double defer_s = 0.0005;
};

class ContainmentEngine {
public:
    explicit ContainmentEngine(core::Node& node, ContainmentConfig config = {});
    ~ContainmentEngine();
    ContainmentEngine(const ContainmentEngine&) = delete;
    ContainmentEngine& operator=(const ContainmentEngine&) = delete;

    /// Install the SPM tag-violation hook (idempotent). Requires the node's
    /// critical state to be protected (Spm::protect_critical_state).
    void arm();
    /// Detach the hook and cancel any deferred containment.
    void disarm();
    [[nodiscard]] bool armed() const { return armed_; }

    /// One recorded pipeline step. The log is a pure function of the seed
    /// and config — determinism tests compare it byte for byte.
    struct Action {
        ContainmentPolicy step = ContainmentPolicy::kDetected;
        arch::VmId vm = 0;
        std::string region;  ///< critical region hit ("" when unknown)
    };
    [[nodiscard]] const std::vector<Action>& action_log() const {
        return action_log_;
    }

    struct Stats {
        std::uint64_t violations = 0;   ///< hook deliveries
        std::uint64_t dumps = 0;        ///< flight dumps triggered
        std::uint64_t quarantines = 0;  ///< offenders retired
        std::uint64_t reverified = 0;   ///< regions re-measured clean
        std::uint64_t embargoes = 0;    ///< regions poisoned + withheld
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

    /// Push Stats into the platform's metrics registry as "contain.*" gauges.
    void publish_metrics();

private:
    void on_violation(const hafnium::Spm::TagViolation& v);
    void contain(arch::VmId offender, const std::string& region);
    void record(ContainmentPolicy step, arch::VmId vm, const std::string& region);

    core::Node* node_;
    ContainmentConfig config_;
    bool armed_ = false;
    std::vector<arch::VmId> handled_;  ///< offenders already being contained
    std::vector<sim::EventId> pending_;
    std::vector<Action> action_log_;
    Stats stats_;
};

}  // namespace hpcsec::resil
