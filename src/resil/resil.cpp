#include "resil/resil.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpcsec::resil {

const char* to_string(VmHealth h) {
    switch (h) {
        case VmHealth::kHealthy: return "healthy";
        case VmHealth::kCrashed: return "crashed";
        case VmHealth::kHung: return "hung";
        case VmHealth::kRestartPending: return "restart-pending";
        case VmHealth::kQuarantined: return "quarantined";
    }
    return "?";
}

const char* to_string(FailureKind k) {
    switch (k) {
        case FailureKind::kCrash: return "crash";
        case FailureKind::kHang: return "hang";
        case FailureKind::kRestartFailed: return "restart-failed";
    }
    return "?";
}

Supervisor::Supervisor(core::Node& node, PolicyConfig config)
    : node_(&node), config_(config), rng_(node.platform().rng().split()) {
    if (node.spm() == nullptr) {
        throw std::logic_error("resil::Supervisor: needs a hafnium node");
    }
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::supervise(arch::VmId id) {
    hafnium::Vm& vm = node_->spm()->vm(id);
    if (vm.role() != hafnium::VmRole::kSecondary) {
        throw std::invalid_argument(
            "resil::Supervisor: only secondary partitions are supervised");
    }
    Record r;
    r.id = id;
    r.name = vm.name();
    r.last_beat.assign(static_cast<std::size_t>(vm.vcpu_count()),
                       node_->platform().engine().now());
    r.beaten.assign(static_cast<std::size_t>(vm.vcpu_count()), false);
    records_.push_back(std::move(r));
    hook_guest(records_.back());
}

void Supervisor::hook_guest(Record& r) {
    kitten::KittenGuestOs* guest = node_->guest_of(r.id);
    if (guest == nullptr) return;
    guest->heartbeat_hook = [this, &r](hafnium::Vcpu& vcpu) {
        ++stats_.heartbeats;
        const auto i = static_cast<std::size_t>(vcpu.index());
        if (i < r.last_beat.size()) {
            r.last_beat[i] = node_->platform().engine().now();
            r.beaten[i] = true;
        }
    };
}

void Supervisor::start() {
    if (scanning_) return;
    scanning_ = true;
    schedule_scan();
}

void Supervisor::stop() {
    if (scanning_) {
        node_->platform().engine().cancel(scan_event_);
        scanning_ = false;
    }
    for (Record& r : records_) {
        if (r.pending_restart.valid()) {
            node_->platform().engine().cancel(r.pending_restart);
            r.pending_restart = {};
        }
        if (kitten::KittenGuestOs* guest = node_->guest_of(r.id)) {
            guest->heartbeat_hook = nullptr;
        }
    }
}

void Supervisor::schedule_scan() {
    auto& engine = node_->platform().engine();
    scan_event_ = engine.at(
        engine.now() + engine.clock().from_seconds(config_.scan_period_s),
        [this] { scan(); }, sim::kPrioKernel);
}

void Supervisor::scan() {
    if (!scanning_) return;
    ++stats_.scans;
    auto& engine = node_->platform().engine();
    const sim::SimTime now = engine.now();
    const sim::SimTime hang_window =
        engine.clock().from_seconds(config_.hang_timeout_s);

    for (Record& r : records_) {
        if (r.health == VmHealth::kRestartPending ||
            r.health == VmHealth::kQuarantined) {
            continue;
        }
        hafnium::Vm& vm = node_->spm()->vm(r.id);
        if (vm.destroyed) {
            // Torn down behind our back (operator action): treat as
            // quarantined without charging the failure budget.
            r.health = VmHealth::kQuarantined;
            continue;
        }
        int bad_vcpu = -1;
        FailureKind kind = FailureKind::kCrash;
        for (int v = 0; v < vm.vcpu_count() && bad_vcpu < 0; ++v) {
            const hafnium::Vcpu& vcpu = vm.vcpu(v);
            if (vcpu.state() == hafnium::VcpuState::kAborted) {
                bad_vcpu = v;
                kind = FailureKind::kCrash;
            } else if (vcpu.state() == hafnium::VcpuState::kRunning) {
                // A running VCPU that has proven it ticks must keep beating.
                // Re-entry alone is no sign of life: the primary re-dispatches
                // even a wedged VCPU, so only the heartbeat counts.
                const auto i = static_cast<std::size_t>(v);
                if (i < r.last_beat.size() && r.beaten[i] &&
                    now > r.last_beat[i] && now - r.last_beat[i] > hang_window) {
                    bad_vcpu = v;
                    kind = FailureKind::kHang;
                }
            }
        }
        if (bad_vcpu >= 0) {
            fail(r, kind, bad_vcpu);
        } else if (r.consecutive_failures > 0 && now > r.last_failure &&
                   now - r.last_failure >
                       engine.clock().from_seconds(config_.healthy_reset_s)) {
            r.consecutive_failures = 0;
        }
    }
    publish_metrics();
    if (scanning_) schedule_scan();
}

void Supervisor::fail(Record& r, FailureKind kind, int vcpu) {
    auto& engine = node_->platform().engine();
    const sim::SimTime now = engine.now();
    switch (kind) {
        case FailureKind::kCrash: ++stats_.crashes; break;
        case FailureKind::kHang: ++stats_.hangs; break;
        case FailureKind::kRestartFailed: ++stats_.restart_failures; break;
    }
    node_->platform().recorder().instant(
        now, obs::EventType::kResilFault, -1,
        static_cast<std::int64_t>(kind), r.id, vcpu);
    r.health = kind == FailureKind::kHang ? VmHealth::kHung : VmHealth::kCrashed;
    r.last_failure = now;
    ++r.consecutive_failures;
    if (r.consecutive_failures > config_.restart_budget) {
        quarantine(r);
        return;
    }
    // Bounded exponential backoff with deterministic jitter: the schedule
    // is a pure function of the seed (backoff_log() proves it in tests).
    double delay = std::min(
        config_.backoff_max_s,
        config_.backoff_base_s *
            std::pow(config_.backoff_factor, r.consecutive_failures - 1));
    delay *= 1.0 + config_.jitter_frac * (2.0 * rng_.next_double() - 1.0);
    backoff_log_.push_back(delay);
    r.health = VmHealth::kRestartPending;
    node_->platform().recorder().instant(now, obs::EventType::kResilAction, -1,
                                         0, r.id, r.consecutive_failures);
    r.pending_restart =
        engine.at(now + engine.clock().from_seconds(delay),
                  [this, &r] { do_restart(r); }, sim::kPrioKernel);
}

void Supervisor::do_restart(Record& r) {
    r.pending_restart = {};
    auto& engine = node_->platform().engine();
    // Capture the lead-up to the failure before the restart's own events
    // start overwriting the rings (no-op when the recorder is disarmed).
    node_->platform().flight().dump("watchdog-restart");
    try {
        const arch::VmId nid = node_->restart_vm(r.id);
        r.id = nid;
        r.health = VmHealth::kHealthy;
        r.last_beat.assign(
            static_cast<std::size_t>(node_->spm()->vm(nid).vcpu_count()),
            engine.now());
        r.beaten.assign(r.last_beat.size(), false);
        ++stats_.restarts;
        hook_guest(r);
        node_->platform().recorder().instant(engine.now(),
                                             obs::EventType::kResilAction, -1,
                                             1, r.id, r.consecutive_failures);
    } catch (const std::exception&) {
        fail(r, FailureKind::kRestartFailed, -1);
    }
}

void Supervisor::quarantine(Record& r) {
    ++stats_.quarantines;
    r.health = VmHealth::kQuarantined;
    node_->platform().flight().dump("quarantine");
    node_->platform().recorder().instant(
        node_->platform().engine().now(), obs::EventType::kResilAction, -1, 2,
        r.id, r.consecutive_failures);
    try {
        node_->retire_vm(r.id);
    } catch (const std::exception&) {
        // Best effort: the partition stays marked down either way.
    }
}

arch::VmId Supervisor::current_id(const std::string& vm_name) const {
    for (const Record& r : records_) {
        if (r.name == vm_name) return r.id;
    }
    throw std::out_of_range("resil::Supervisor: not supervised: " + vm_name);
}

VmHealth Supervisor::health_of(const std::string& vm_name) const {
    for (const Record& r : records_) {
        if (r.name == vm_name) return r.health;
    }
    throw std::out_of_range("resil::Supervisor: not supervised: " + vm_name);
}

void Supervisor::publish_metrics() {
    auto& m = node_->platform().metrics();
    const auto set = [&m](const char* name, std::uint64_t v) {
        m.set(m.gauge(name), static_cast<double>(v));
    };
    set("resil.scans", stats_.scans);
    set("resil.heartbeats", stats_.heartbeats);
    set("resil.crashes", stats_.crashes);
    set("resil.hangs", stats_.hangs);
    set("resil.restarts", stats_.restarts);
    set("resil.restart_failures", stats_.restart_failures);
    set("resil.quarantines", stats_.quarantines);
}

}  // namespace hpcsec::resil
