// Fault-tolerant VM lifecycle: heartbeat watchdog + restart policy engine.
//
// Static-partitioning hypervisors for mixed-criticality systems treat
// failure containment *plus partition restart* as a first-class requirement
// (Martins & Pinto; Ramsauer et al. restart cells without disturbing
// neighbors). The Supervisor closes the detect→decide→recover loop on top
// of the primitives the stack already has:
//
//  * detect — each secondary VCPU is expected to check in on its
//    virtual-timer cadence (KittenGuestOs::heartbeat_hook feeds per-VCPU
//    timestamps); a periodic low-priority scan flags VCPUs that aborted
//    (crash) or stopped beating while running (hang). Detection is entirely
//    event-driven: nothing is added to the hypercall hot path.
//  * decide — a per-VM restart budget with bounded exponential backoff;
//    deterministic jitter comes from a sim::Rng split off the platform
//    stream, so a seed reproduces the exact recovery timeline.
//  * recover — teardown via core::Node::restart_vm (stage-2 memory
//    reclaimed, image hash re-verified against the boot-time measurement,
//    relaunch from the manifest spec, workload reattached). After the
//    budget is exhausted the partition is quarantined (memory reclaimed,
//    cores returned) and the node keeps serving the remaining partitions —
//    graceful degradation, never node death.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/node.h"
#include "sim/rng.h"

namespace hpcsec::resil {

enum class VmHealth : std::uint8_t {
    kHealthy,         ///< beating on schedule
    kCrashed,         ///< a VCPU aborted (stage-2 fault, kill, ...)
    kHung,            ///< running but heartbeats stopped
    kRestartPending,  ///< torn down, relaunch scheduled after backoff
    kQuarantined,     ///< budget exhausted: memory reclaimed, stays down
};

[[nodiscard]] const char* to_string(VmHealth h);

enum class FailureKind : std::uint8_t {
    kCrash,          ///< VCPU reached kAborted
    kHang,           ///< heartbeat deadline missed while running
    kRestartFailed,  ///< relaunch itself threw (treated as another failure)
};

[[nodiscard]] const char* to_string(FailureKind k);

struct PolicyConfig {
    double scan_period_s = 0.05;   ///< watchdog scan cadence
    double hang_timeout_s = 0.5;   ///< missed-heartbeat window (≥ a few ticks)
    int restart_budget = 3;        ///< consecutive failures before quarantine
    double backoff_base_s = 0.05;  ///< first restart delay
    double backoff_factor = 2.0;   ///< exponential growth per failure
    double backoff_max_s = 2.0;    ///< delay ceiling
    double jitter_frac = 0.1;      ///< +/- fraction of deterministic jitter
    double healthy_reset_s = 5.0;  ///< failure-free time that clears the count
};

class Supervisor {
public:
    Supervisor(core::Node& node, PolicyConfig config = {});
    ~Supervisor();
    Supervisor(const Supervisor&) = delete;
    Supervisor& operator=(const Supervisor&) = delete;

    /// Put a secondary partition under watchdog supervision.
    void supervise(arch::VmId id);

    /// Arm the periodic scan (idempotent).
    void start();
    /// Disarm the scan and any pending restart; heartbeat hooks detach.
    void stop();

    /// Current VM id of a supervised partition (changes across restarts).
    [[nodiscard]] arch::VmId current_id(const std::string& vm_name) const;
    [[nodiscard]] VmHealth health_of(const std::string& vm_name) const;

    /// Every backoff delay (seconds) chosen so far, in order — the
    /// deterministic recovery schedule a seed reproduces exactly.
    [[nodiscard]] const std::vector<double>& backoff_log() const {
        return backoff_log_;
    }

    struct Stats {
        std::uint64_t scans = 0;
        std::uint64_t heartbeats = 0;
        std::uint64_t crashes = 0;
        std::uint64_t hangs = 0;
        std::uint64_t restarts = 0;
        std::uint64_t restart_failures = 0;
        std::uint64_t quarantines = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

    /// Push Stats into the platform's metrics registry as "resil.*" gauges.
    void publish_metrics();

private:
    struct Record {
        arch::VmId id = 0;
        std::string name;
        VmHealth health = VmHealth::kHealthy;
        int consecutive_failures = 0;
        sim::SimTime last_failure = 0;
        sim::EventId pending_restart{};
        std::vector<sim::SimTime> last_beat;  ///< per VCPU
        /// VCPUs that have beaten at least once since (re)launch. Hang
        /// detection only applies to them, so a guest that never ticks
        /// (heartbeats disabled) can't be flagged hung by mistake.
        std::vector<bool> beaten;
    };

    void schedule_scan();
    void scan();
    void fail(Record& r, FailureKind kind, int vcpu);
    void do_restart(Record& r);
    void quarantine(Record& r);
    void hook_guest(Record& r);

    core::Node* node_;
    PolicyConfig config_;
    sim::Rng rng_;
    std::deque<Record> records_;  ///< deque: stable addresses for callbacks
    std::vector<double> backoff_log_;
    sim::EventId scan_event_{};
    bool scanning_ = false;
    Stats stats_;
};

}  // namespace hpcsec::resil
