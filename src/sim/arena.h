// Bump/arena allocator family for zero-alloc steady state.
//
// A trial's long-lived simulation objects (VMs, VCPUs, cores, grants) are
// carved out of one Arena owned by the platform. Teardown is then an O(1)
// rewind — run the registered destructors and reset the bump pointers —
// instead of a unique_ptr graveyard walking thousands of individual frees.
// Chunks are retained across reset(), so a harness that reuses one arena
// across trials touches the global heap only while the first trial warms
// the chunk list up.
//
// Not thread-safe by design: one arena belongs to one trial, and the
// parallel experiment engine gives every trial a private node (the same
// ownership rule that makes jobs=1 ≡ jobs=N bit-identical).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace hpcsec::sim {

class Arena {
public:
    /// Chunks grow geometrically from `first_chunk_bytes` up to
    /// `max_chunk_bytes`; oversized single allocations get a chunk of
    /// their own.
    explicit Arena(std::size_t first_chunk_bytes = 64 * 1024,
                   std::size_t max_chunk_bytes = 4 * 1024 * 1024)
        : next_chunk_bytes_(first_chunk_bytes),
          max_chunk_bytes_(max_chunk_bytes) {}

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;
    ~Arena() { reset(); }

    /// Raw bump allocation. Alignment must be a power of two.
    void* allocate(std::size_t bytes, std::size_t align) {
        if (active_ < chunks_.size()) {
            Chunk& c = chunks_[active_];
            const std::size_t aligned = align_up(c.used, align);
            if (aligned + bytes <= c.cap) {
                c.used = aligned + bytes;
                ++allocations_;
                return c.mem.get() + aligned;
            }
        }
        return allocate_slow(bytes, align);
    }

    /// Construct a T in the arena. Non-trivially-destructible types get a
    /// destructor record (itself arena-allocated) so reset() can run them
    /// in reverse construction order.
    template <typename T, typename... Args>
    T* make(Args&&... args) {
        T* obj = static_cast<T*>(allocate(sizeof(T), alignof(T)));
        new (obj) T(std::forward<Args>(args)...);
        if constexpr (!std::is_trivially_destructible_v<T>) {
            register_destructor(obj);
        }
        return obj;
    }

    /// Uninitialized storage for `n` contiguous T. The caller placement-news
    /// each element (useful for non-movable types with per-index ctor args)
    /// and registers destructors as it goes.
    template <typename T>
    [[nodiscard]] T* allocate_array(std::size_t n) {
        return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    }

    /// Enroll an already-constructed arena object for destruction at
    /// reset(). Pair with allocate_array + placement new.
    template <typename T>
    void register_destructor(T* obj) {
        auto* rec = static_cast<DtorRec*>(allocate(sizeof(DtorRec), alignof(DtorRec)));
        rec->fn = [](void* p) { static_cast<T*>(p)->~T(); };
        rec->obj = obj;
        rec->next = dtors_;
        dtors_ = rec;
    }

    /// Run registered destructors (reverse construction order) and rewind
    /// every chunk. Chunk memory is retained for reuse — after the first
    /// trial warms the arena, reset + rebuild performs no heap traffic.
    void reset() {
        for (DtorRec* rec = dtors_; rec != nullptr; rec = rec->next) {
            rec->fn(rec->obj);
        }
        dtors_ = nullptr;
        for (Chunk& c : chunks_) c.used = 0;
        active_ = 0;
        allocations_ = 0;
    }

    /// Live bytes across all chunks (current high-water of this cycle).
    [[nodiscard]] std::size_t bytes_used() const {
        std::size_t total = 0;
        for (const Chunk& c : chunks_) total += c.used;
        return total;
    }
    /// Bytes reserved from the heap (survives reset()).
    [[nodiscard]] std::size_t bytes_reserved() const {
        std::size_t total = 0;
        for (const Chunk& c : chunks_) total += c.cap;
        return total;
    }
    [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
    [[nodiscard]] std::uint64_t allocation_count() const { return allocations_; }

private:
    struct Chunk {
        std::unique_ptr<std::byte[]> mem;
        std::size_t cap = 0;
        std::size_t used = 0;
    };
    struct DtorRec {
        void (*fn)(void*);
        void* obj;
        DtorRec* next;
    };

    static constexpr std::size_t align_up(std::size_t v, std::size_t a) {
        return (v + a - 1) & ~(a - 1);
    }

    void* allocate_slow(std::size_t bytes, std::size_t align) {
        // Chunk bases come from operator new[] and are aligned to the
        // default new alignment, so aligning *offsets* suffices for every
        // type the simulator allocates (align <= 16).
        // Advance through retained chunks first (post-reset reuse), then
        // grow. A request larger than the growth cap gets a bespoke chunk.
        while (++active_ < chunks_.size()) {
            Chunk& c = chunks_[active_];
            if (bytes <= c.cap) {
                c.used = bytes;
                ++allocations_;
                return c.mem.get();
            }
        }
        std::size_t cap = next_chunk_bytes_;
        if (cap < bytes + align) cap = bytes + align;
        next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, max_chunk_bytes_);
        Chunk c;
        c.mem = std::make_unique<std::byte[]>(cap);
        c.cap = cap;
        c.used = bytes;
        chunks_.push_back(std::move(c));
        active_ = chunks_.size() - 1;
        ++allocations_;
        return chunks_.back().mem.get();
    }

    std::vector<Chunk> chunks_;
    std::size_t active_ = 0;
    std::size_t next_chunk_bytes_;
    std::size_t max_chunk_bytes_;
    std::uint64_t allocations_ = 0;
    DtorRec* dtors_ = nullptr;
};

/// STL-compatible allocator over an Arena: deallocate is a no-op (space
/// comes back at reset()). Lets hot containers (grant lists, interceptor
/// frames) live in the per-trial arena without changing their call sites.
template <typename T>
class ArenaAllocator {
public:
    using value_type = T;

    explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
    template <typename U>
    ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

    T* allocate(std::size_t n) {
        return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    void deallocate(T*, std::size_t) {}  // arena memory frees at reset()

    [[nodiscard]] Arena* arena() const { return arena_; }

    template <typename U>
    bool operator==(const ArenaAllocator<U>& other) const {
        return arena_ == other.arena();
    }

private:
    Arena* arena_;
};

}  // namespace hpcsec::sim
