#include "sim/engine.h"

#include <utility>

namespace hpcsec::sim {

EventId Engine::at(SimTime when, EventFn fn, int priority) {
    if (when < now_) throw std::logic_error("Engine::at: scheduling in the past");
    return queue_.schedule(when, priority, std::move(fn), next_order_++);
}

EventId Engine::after(Cycles delay, EventFn fn, int priority) {
    return queue_.schedule(now_ + delay, priority, std::move(fn), next_order_++);
}

EventId Engine::at_timer(SimTime when, EventFn fn, int priority) {
    if (when < now_) {
        // sca-suppress(no-throw-guest-path): unreachable from guest-driven
        // callers — GenericTimer::set_deadline clamps the deadline to now()
        // before arming. A past deadline here is host-code misuse.
        throw std::logic_error("Engine::at_timer: scheduling in the past");
    }
    return wheel_.schedule(when, priority, std::move(fn), next_order_++, now_);
}

void Engine::dispatch_one() {
    // Merge the heap queue and the timer wheel by the shared
    // (when, priority, order) key: identical dispatch order to a single
    // queue, bit-for-bit.
    const EventQueue::Key qk = queue_.next_key();
    const TimerWheel::Key wk = wheel_.next_key();
    SimTime when;
    int priority;
    EventFn fn;
    if (wk < qk) {
        auto popped = wheel_.pop();
        when = popped.when;
        priority = popped.priority;
        fn = std::move(popped.fn);
    } else {
        auto popped = queue_.pop();
        when = popped.when;
        priority = popped.priority;
        fn = std::move(popped.fn);
    }
    now_ = when;
    ++executed_;
    auto it = by_priority_.begin();
    for (; it != by_priority_.end() && it->priority < priority; ++it) {}
    if (it == by_priority_.end() || it->priority != priority) {
        it = by_priority_.insert(it, {priority, 0});
    }
    ++it->executed;
    if (probe_ != nullptr) [[unlikely]] probe_->on_dispatch(now_, priority);
    fn();
}

void Engine::run() {
    stopped_ = false;
    while (!stopped_ && (!queue_.empty() || !wheel_.empty())) dispatch_one();
}

void Engine::run_until(SimTime deadline) {
    stopped_ = false;
    while (!stopped_) {
        const SimTime qnext = queue_.next_time();
        const SimTime wnext = wheel_.next_key().when;
        const SimTime next = qnext < wnext ? qnext : wnext;
        if (next == kTimeNever || next > deadline) break;
        dispatch_one();
    }
    if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace hpcsec::sim
