#include "sim/engine.h"

#include <utility>

namespace hpcsec::sim {

EventId Engine::at(SimTime when, EventFn fn, int priority) {
    if (when < now_) throw std::logic_error("Engine::at: scheduling in the past");
    return queue_.schedule(when, priority, std::move(fn));
}

EventId Engine::after(Cycles delay, EventFn fn, int priority) {
    return queue_.schedule(now_ + delay, priority, std::move(fn));
}

void Engine::dispatch_one() {
    auto [when, priority, fn] = queue_.pop();
    now_ = when;
    ++executed_;
    auto it = by_priority_.begin();
    for (; it != by_priority_.end() && it->priority < priority; ++it) {}
    if (it == by_priority_.end() || it->priority != priority) {
        it = by_priority_.insert(it, {priority, 0});
    }
    ++it->executed;
    if (probe_ != nullptr) [[unlikely]] probe_->on_dispatch(now_, priority);
    fn();
}

void Engine::run() {
    stopped_ = false;
    while (!stopped_ && !queue_.empty()) dispatch_one();
}

void Engine::run_until(SimTime deadline) {
    stopped_ = false;
    while (!stopped_) {
        const SimTime next = queue_.next_time();
        if (next == kTimeNever || next > deadline) break;
        dispatch_one();
    }
    if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace hpcsec::sim
