// Discrete-event simulation engine.
//
// One Engine instance drives an entire simulated node: every core, timer,
// hypervisor and guest-kernel action is an event on this queue. The engine
// is single-threaded and fully deterministic.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "sim/timer_wheel.h"

namespace hpcsec::sim {

/// Event priorities: lower runs first at equal timestamps.
enum Priority : int {
    kPrioInterrupt = 0,   ///< hardware interrupt assertion
    kPrioKernel = 10,     ///< kernel/hypervisor bookkeeping
    kPrioCompletion = 20, ///< workload chunk completions
    kPrioDefault = 50,
};

/// Observes every event dispatch. Implementations live above the sim layer
/// (obs::CycleProfiler uses it as a deterministic sampling clock); the
/// engine pays one predicted branch per dispatch when no probe is set.
class DispatchProbe {
public:
    virtual ~DispatchProbe() = default;
    virtual void on_dispatch(SimTime now, int priority) = 0;
};

class Engine {
public:
    explicit Engine(ClockSpec clock = {}) : clock_(clock) {}

    [[nodiscard]] SimTime now() const { return now_; }
    [[nodiscard]] const ClockSpec& clock() const { return clock_; }

    EventId at(SimTime when, EventFn fn, int priority = kPrioDefault);
    EventId after(Cycles delay, EventFn fn, int priority = kPrioDefault);

    /// Schedule a periodic-cadence event (timer re-arms, heartbeats,
    /// watchdog ticks) on the batched timer wheel instead of the heap
    /// queue. Dispatch order is identical to at() — both sources share one
    /// insertion counter and merge by (when, priority, order) — but N cores
    /// re-arming the same cadence cost one wheel-slot batch instead of N
    /// heap sifts. Use for events that recur on a fixed cadence; one-shot
    /// aperiodic events belong on at().
    EventId at_timer(SimTime when, EventFn fn, int priority = kPrioInterrupt);

    bool cancel(EventId id) {
        return (id.seq & TimerWheel::kHandleFlag) != 0 ? wheel_.cancel(id)
                                                       : queue_.cancel(id);
    }

    /// Run until the queue drains or `stop()` is called.
    void run();

    /// Run events with timestamp <= deadline; afterwards now() == deadline
    /// (unless stopped earlier). Pending later events remain queued.
    void run_until(SimTime deadline);

    /// Request that run()/run_until() return after the current event.
    void stop() { stopped_ = true; }

    [[nodiscard]] bool stopped() const { return stopped_; }
    [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
    [[nodiscard]] std::size_t pending_events() const {
        return queue_.size() + wheel_.size();
    }

    /// Wheel pops served from a pre-sorted batch in O(1) (heap work elided).
    [[nodiscard]] std::uint64_t timer_batched_pops() const {
        return wheel_.batched_pops();
    }

    /// Events executed per priority level, sorted by priority. The list is
    /// tiny (one entry per distinct Priority value used), so lookups are a
    /// short linear scan on dispatch.
    struct PriorityCount {
        int priority;
        std::uint64_t executed;
    };
    [[nodiscard]] const std::vector<PriorityCount>& executed_by_priority() const {
        return by_priority_;
    }

    /// Attach/detach the dispatch probe (purely observational; nullptr = off).
    void set_dispatch_probe(DispatchProbe* probe) { probe_ = probe; }
    [[nodiscard]] DispatchProbe* dispatch_probe() const { return probe_; }

private:
    void dispatch_one();

    ClockSpec clock_;
    EventQueue queue_;
    TimerWheel wheel_;
    std::uint64_t next_order_ = 1;  ///< shared across queue_ and wheel_
    SimTime now_ = 0;
    bool stopped_ = false;
    std::uint64_t executed_ = 0;
    std::vector<PriorityCount> by_priority_;
    DispatchProbe* probe_ = nullptr;
};

}  // namespace hpcsec::sim
