#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace hpcsec::sim {

EventId EventQueue::schedule(SimTime when, int priority, EventFn fn) {
    return schedule(when, priority, std::move(fn), next_order_++);
}

EventId EventQueue::schedule(SimTime when, int priority, EventFn fn,
                             std::uint64_t order) {
    std::uint32_t slot;
    if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slab_.size());
        slab_.emplace_back();
    }
    Entry& e = slab_[slot];
    e.when = when;
    e.order = order;
    e.id = (static_cast<std::uint64_t>(slot) + 1) << kSlotShift | (order & kSeqMask);
    e.fn = std::move(fn);
    e.priority = priority;
    e.cancelled = false;

    heap_.push_back(slot);
    sift_up(heap_.size() - 1);
    ++live_;
    return EventId{e.id};
}

bool EventQueue::cancel(EventId id) {
    const std::uint64_t slot_part = id.seq >> kSlotShift;
    if (slot_part == 0 || slot_part > slab_.size()) return false;
    Entry& e = slab_[static_cast<std::size_t>(slot_part - 1)];
    if (e.id != id.seq || e.cancelled) return false;  // ran, cancelled, or stale
    e.cancelled = true;
    e.fn = nullptr;  // release captured resources immediately
    --live_;
    return true;
}

void EventQueue::sift_up(std::size_t pos) {
    const std::uint32_t slot = heap_[pos];
    while (pos != 0) {
        const std::size_t parent = (pos - 1) >> 2;
        if (!before(slot, heap_[parent])) break;
        heap_[pos] = heap_[parent];
        pos = parent;
    }
    heap_[pos] = slot;
}

void EventQueue::sift_down(std::size_t pos) {
    const std::size_t n = heap_.size();
    const std::uint32_t slot = heap_[pos];
    for (;;) {
        const std::size_t first_child = 4 * pos + 1;
        if (first_child >= n) break;
        const std::size_t last_child = std::min(first_child + 4, n);
        std::size_t best = first_child;
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (before(heap_[c], heap_[best])) best = c;
        }
        if (!before(heap_[best], slot)) break;
        heap_[pos] = heap_[best];
        pos = best;
    }
    heap_[pos] = slot;
}

void EventQueue::remove_top() {
    const std::uint32_t slot = heap_[0];
    Entry& e = slab_[slot];
    e.id = 0;
    e.fn = nullptr;
    // sca-suppress(hot-path-alloc): freelist depth is bounded by the slab
    // high-water mark; growth stops once the queue is warmed.
    free_.push_back(slot);
    const std::uint32_t last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        sift_down(0);
    }
}

void EventQueue::skim_cancelled() {
    while (!heap_.empty() && slab_[heap_[0]].cancelled) remove_top();
}

SimTime EventQueue::next_time() {
    skim_cancelled();
    return heap_.empty() ? kTimeNever : slab_[heap_[0]].when;
}

EventQueue::Key EventQueue::next_key() {
    skim_cancelled();
    if (heap_.empty()) return Key{};
    const Entry& top = slab_[heap_[0]];
    return Key{top.when, top.priority, top.order};
}

EventQueue::Popped EventQueue::pop() {
    skim_cancelled();
    Entry& top = slab_[heap_[0]];
    Popped out{top.when, top.priority, std::move(top.fn)};
    remove_top();
    --live_;
    return out;
}

void EventQueue::clear() {
    slab_.clear();
    heap_.clear();
    free_.clear();
    // next_order_ is deliberately not reset: stale EventIds from before the
    // clear must keep failing the id check once slots are reused.
    live_ = 0;
}

}  // namespace hpcsec::sim
