#include "sim/event_queue.h"

#include <utility>

namespace hpcsec::sim {

EventId EventQueue::schedule(SimTime when, int priority, EventFn fn) {
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{when, priority, seq, std::move(fn)});
    pending_.insert(seq);
    ++live_;
    return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
    if (!id.valid()) return false;
    const auto it = pending_.find(id.seq);
    if (it == pending_.end()) return false;  // already ran or cancelled
    pending_.erase(it);
    cancelled_.insert(id.seq);
    --live_;
    return true;
}

void EventQueue::drop_tombstones() {
    while (!heap_.empty()) {
        auto it = cancelled_.find(heap_.top().seq);
        if (it == cancelled_.end()) return;
        cancelled_.erase(it);
        heap_.pop();
    }
}

SimTime EventQueue::next_time() {
    drop_tombstones();
    return heap_.empty() ? kTimeNever : heap_.top().when;
}

EventQueue::Popped EventQueue::pop() {
    drop_tombstones();
    // const_cast to move the closure out; the entry is popped immediately.
    auto& top = const_cast<Entry&>(heap_.top());
    Popped out{top.when, top.priority, std::move(top.fn)};
    pending_.erase(top.seq);
    heap_.pop();
    --live_;
    return out;
}

void EventQueue::clear() {
    heap_ = {};
    cancelled_.clear();
    pending_.clear();
    live_ = 0;
}

}  // namespace hpcsec::sim
