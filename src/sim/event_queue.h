// Deterministic discrete-event queue.
//
// Events at equal timestamps are ordered by (priority, insertion sequence) so
// runs are bit-reproducible regardless of container internals.
//
// Implementation: a slab of recycled entries indexed by a 4-ary heap. The
// hot path (schedule/pop tens of millions of times per trial) does no
// per-event container allocation once the slab is warm: scheduling reuses a
// free slot, popping moves the callback out, and cancellation is O(1) — it
// flips a flag on the slab entry addressed by the handle (no tombstone hash
// sets, no heap fix-up; cancelled entries are skimmed off lazily when they
// reach the top). The 4-ary layout halves the tree depth of a binary heap
// and keeps children of a node on one cache line of indices.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace hpcsec::sim {

/// Handle identifying a scheduled event, usable for cancellation. The value
/// is opaque: it encodes the slab slot plus enough of the insertion sequence
/// to reject stale handles after the slot is recycled.
struct EventId {
    std::uint64_t seq = 0;
    [[nodiscard]] bool valid() const { return seq != 0; }
};

using EventFn = std::function<void()>;

class EventQueue {
public:
    /// The engine-wide dispatch order: lexicographic (when, priority,
    /// insertion order). Shared with TimerWheel so the two event sources
    /// merge into one deterministic total order.
    struct Key {
        SimTime when = kTimeNever;
        int priority = 0;
        std::uint64_t order = 0;
        [[nodiscard]] bool operator<(const Key& o) const {
            if (when != o.when) return when < o.when;
            if (priority != o.priority) return priority < o.priority;
            return order < o.order;
        }
    };

    /// Lower `priority` runs first among events with equal timestamps.
    /// Ties break by an internally assigned insertion sequence.
    EventId schedule(SimTime when, int priority, EventFn fn);

    /// Same, with a caller-supplied insertion sequence — the engine passes
    /// its shared counter here so queue and timer-wheel events interleave
    /// exactly as if they lived in one queue. Orders must be unique and
    /// increasing across calls; mixing with the self-ordering overload on
    /// one queue is a caller bug.
    EventId schedule(SimTime when, int priority, EventFn fn, std::uint64_t order);

    /// Cancel a pending event. Returns false if it already ran or was
    /// cancelled (cancelling an invalid id is a harmless no-op).
    bool cancel(EventId id);

    [[nodiscard]] bool empty() const { return live_ == 0; }
    [[nodiscard]] std::size_t size() const { return live_; }

    /// Timestamp of the next live event; kTimeNever when empty.
    [[nodiscard]] SimTime next_time();

    /// Full dispatch key of the next live event; when == kTimeNever if
    /// empty. Used by the engine to merge with the timer wheel.
    [[nodiscard]] Key next_key();

    /// Pop and return the next live event. Precondition: !empty().
    struct Popped {
        SimTime when;
        int priority;
        EventFn fn;
    };
    Popped pop();

    void clear();

private:
    // Slot index and sequence share the 64-bit handle: high 24 bits carry
    // slot+1 (so 0 stays the invalid id), low 40 bits the insertion
    // sequence, which disambiguates recycled slots.
    static constexpr int kSlotShift = 40;
    static constexpr std::uint64_t kSeqMask = (1ull << kSlotShift) - 1;

    struct Entry {
        SimTime when = 0;
        std::uint64_t order = 0;  ///< full insertion sequence (tie-break)
        std::uint64_t id = 0;     ///< composite handle; 0 while the slot is free
        EventFn fn;
        int priority = 0;
        bool cancelled = false;
    };

    [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
        const Entry& ea = slab_[a];
        const Entry& eb = slab_[b];
        if (ea.when != eb.when) return ea.when < eb.when;
        if (ea.priority != eb.priority) return ea.priority < eb.priority;
        return ea.order < eb.order;
    }

    void sift_up(std::size_t pos);
    void sift_down(std::size_t pos);
    void remove_top();
    void skim_cancelled();

    std::vector<Entry> slab_;
    std::vector<std::uint32_t> heap_;  ///< slab indices, 4-ary min-heap
    std::vector<std::uint32_t> free_;  ///< recycled slab slots
    std::uint64_t next_order_ = 1;
    std::size_t live_ = 0;
};

}  // namespace hpcsec::sim
