// Deterministic discrete-event queue.
//
// Events at equal timestamps are ordered by (priority, insertion sequence) so
// runs are bit-reproducible regardless of container internals. Cancellation
// is O(1) via a tombstone set; tombstoned events are skipped on pop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace hpcsec::sim {

/// Handle identifying a scheduled event, usable for cancellation.
struct EventId {
    std::uint64_t seq = 0;
    [[nodiscard]] bool valid() const { return seq != 0; }
};

using EventFn = std::function<void()>;

class EventQueue {
public:
    /// Lower `priority` runs first among events with equal timestamps.
    EventId schedule(SimTime when, int priority, EventFn fn);

    /// Cancel a pending event. Returns false if it already ran or was
    /// cancelled (cancelling an invalid id is a harmless no-op).
    bool cancel(EventId id);

    [[nodiscard]] bool empty() const { return live_ == 0; }
    [[nodiscard]] std::size_t size() const { return live_; }

    /// Timestamp of the next live event; kTimeNever when empty.
    [[nodiscard]] SimTime next_time();

    /// Pop and return the next live event. Precondition: !empty().
    struct Popped {
        SimTime when;
        int priority;
        EventFn fn;
    };
    Popped pop();

    void clear();

private:
    struct Entry {
        SimTime when;
        int priority;
        std::uint64_t seq;
        EventFn fn;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.when != b.when) return a.when > b.when;
            if (a.priority != b.priority) return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    void drop_tombstones();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::unordered_set<std::uint64_t> pending_;
    std::uint64_t next_seq_ = 1;
    std::size_t live_ = 0;
};

}  // namespace hpcsec::sim
