// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic behaviour in the simulation (background-noise arrival times,
// workload seeds, benchmark trials) flows through Rng so that a single seed
// reproduces an identical timeline. The generator is xoshiro256**, seeded via
// SplitMix64 per the reference recommendation.
#pragma once

#include <array>
#include <cstdint>

namespace hpcsec::sim {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** — fast, high-quality, deterministic 64-bit PRNG.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Uniform 64-bit value.
    std::uint64_t next_u64();

    /// Uniform in [0, bound) without modulo bias (Lemire reduction).
    std::uint64_t next_below(std::uint64_t bound);

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Exponentially distributed value with the given mean (> 0).
    double exponential(double mean);

    /// Normal deviate via Marsaglia polar method.
    double normal(double mean, double stddev);

    /// Derive an independent child stream (for per-trial / per-core streams).
    [[nodiscard]] Rng split();

private:
    std::array<std::uint64_t, 4> s_{};
    // Cached second deviate for the polar method.
    bool have_spare_ = false;
    double spare_ = 0.0;
};

}  // namespace hpcsec::sim
