#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hpcsec::sim {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    mean_ += delta * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {
double sorted_percentile(const std::vector<double>& sorted, double p) {
    p = std::clamp(p, 0.0, 100.0);
    const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

double Sample::percentile(double p) {
    if (values_.empty()) return 0.0;
    if (!sorted_) {
        std::sort(values_.begin(), values_.end());
        sorted_ = true;
    }
    return sorted_percentile(values_, p);
}

double Sample::percentile(double p) const {
    if (values_.empty()) return 0.0;
    if (sorted_) return sorted_percentile(values_, p);
    std::vector<double> copy(values_);
    std::sort(copy.begin(), copy.end());
    return sorted_percentile(copy, p);
}

RunningStats Sample::stats() const {
    RunningStats s;
    for (double v : values_) s.add(v);
    return s;
}

LogHistogram::LogHistogram(double lo, double base, std::size_t nbuckets)
    : lo_(lo), base_(base), counts_(nbuckets, 0) {}

void LogHistogram::add(double x) {
    ++total_;
    std::size_t i = 0;
    if (x > lo_) {
        i = static_cast<std::size_t>(std::log(x / lo_) / std::log(base_)) + 1;
        i = std::min(i, counts_.size() - 1);
    }
    ++counts_[i];
}

double LogHistogram::bucket_lo(std::size_t i) const {
    return i == 0 ? 0.0 : lo_ * std::pow(base_, static_cast<double>(i - 1));
}

std::string LogHistogram::format(const std::string& unit) const {
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0) continue;
        os << "  >= " << bucket_lo(i) << " " << unit << ": " << counts_[i] << "\n";
    }
    return os.str();
}

}  // namespace hpcsec::sim
