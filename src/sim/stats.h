// Online statistics and histograms for benchmark reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hpcsec::sim {

/// Welford online mean/variance accumulator.
class RunningStats {
public:
    void add(double x);
    void merge(const RunningStats& other);
    void reset();

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
    [[nodiscard]] double variance() const;       ///< sample variance (n-1)
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
    [[nodiscard]] double sum() const { return sum_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Exact-percentile sample set (stores all values; fine at benchmark scale).
class Sample {
public:
    void add(double x) { values_.push_back(x); sorted_ = false; }
    [[nodiscard]] std::size_t count() const { return values_.size(); }
    /// p is clamped to [0,100]; returns 0.0 on an empty sample. The
    /// non-const overload sorts in place (and caches); the const overload
    /// never mutates, so reporting loops can't invalidate iterators.
    [[nodiscard]] double percentile(double p);
    [[nodiscard]] double percentile(double p) const;
    [[nodiscard]] double median() { return percentile(50.0); }
    [[nodiscard]] double median() const { return percentile(50.0); }
    [[nodiscard]] const std::vector<double>& values() const { return values_; }
    [[nodiscard]] RunningStats stats() const;

private:
    std::vector<double> values_;
    bool sorted_ = false;
};

/// Log-scaled histogram for latency distributions (detour durations etc.).
class LogHistogram {
public:
    /// Buckets are powers of `base` starting at `lo`.
    LogHistogram(double lo, double base, std::size_t nbuckets);

    void add(double x);
    [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
    [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
    [[nodiscard]] double bucket_lo(std::size_t i) const;
    [[nodiscard]] std::uint64_t total() const { return total_; }
    [[nodiscard]] std::string format(const std::string& unit) const;

private:
    double lo_;
    double base_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

}  // namespace hpcsec::sim
