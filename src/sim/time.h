// Simulated-time primitives.
//
// The simulation's base unit of time is one CPU cycle of the modeled SoC
// clock (the Pine A64's Cortex-A53 runs at 1.1 GHz). Using integral cycles
// everywhere keeps the discrete-event engine exact and deterministic;
// conversions to seconds happen only at reporting boundaries.
#pragma once

#include <cstdint>

namespace hpcsec::sim {

/// A point in simulated time, measured in CPU cycles since boot.
using SimTime = std::uint64_t;

/// A duration in CPU cycles.
using Cycles = std::uint64_t;

/// Sentinel for "never" / unset deadlines.
inline constexpr SimTime kTimeNever = ~SimTime{0};

/// Clock description used for unit conversion.
struct ClockSpec {
    std::uint64_t hz = 1'100'000'000;  ///< default: Pine A64 A53 @ 1.1 GHz

    [[nodiscard]] constexpr double to_seconds(SimTime t) const {
        return static_cast<double>(t) / static_cast<double>(hz);
    }
    [[nodiscard]] constexpr double to_millis(SimTime t) const { return to_seconds(t) * 1e3; }
    [[nodiscard]] constexpr double to_micros(SimTime t) const { return to_seconds(t) * 1e6; }
    [[nodiscard]] constexpr double to_nanos(SimTime t) const { return to_seconds(t) * 1e9; }

    [[nodiscard]] constexpr Cycles from_seconds(double s) const {
        return static_cast<Cycles>(s * static_cast<double>(hz));
    }
    [[nodiscard]] constexpr Cycles from_millis(double ms) const { return from_seconds(ms * 1e-3); }
    [[nodiscard]] constexpr Cycles from_micros(double us) const { return from_seconds(us * 1e-6); }
    [[nodiscard]] constexpr Cycles from_nanos(double ns) const { return from_seconds(ns * 1e-9); }

    /// Cycles per period of a given frequency (e.g. timer tick rate).
    [[nodiscard]] constexpr Cycles period_of_hz(double rate_hz) const {
        return static_cast<Cycles>(static_cast<double>(hz) / rate_hz);
    }
};

}  // namespace hpcsec::sim
