#include "sim/timeline.h"

#include <algorithm>
#include <sstream>

namespace hpcsec::sim {

void Timeline::record(int core, SimTime start, SimTime end, char kind,
                      std::string_view label) {
    if (spans_.size() >= max_spans_ || end <= start) return;
    // sca-suppress(hot-path-alloc): timeline capture is opt-in tracing,
    // bounded by max_spans_; production nodes run with it detached.
    spans_.push_back(Span{core, start, end, kind, std::string(label)});
}

Cycles Timeline::total(char kind, int core, SimTime from, SimTime to) const {
    Cycles sum = 0;
    for (const auto& s : spans_) {
        if (s.kind != kind || (core >= 0 && s.core != core)) continue;
        const SimTime lo = std::max(s.start, from);
        const SimTime hi = std::min(s.end, to);
        if (hi > lo) sum += hi - lo;
    }
    return sum;
}

std::string Timeline::render(SimTime from, SimTime to, int ncores, int cols) const {
    if (to <= from || cols <= 0 || ncores <= 0) return {};
    const double bucket =
        static_cast<double>(to - from) / static_cast<double>(cols);

    // weight[core][col][kind-index]; kinds: 0 '#'(W), 1 'o'(O), 2 't'(T)
    std::vector<std::vector<std::array<double, 3>>> weight(
        static_cast<std::size_t>(ncores),
        std::vector<std::array<double, 3>>(static_cast<std::size_t>(cols),
                                           {0.0, 0.0, 0.0}));
    const auto kind_index = [](char k) {
        switch (k) {
            case 'W': return 0;
            case 'O': return 1;
            default: return 2;
        }
    };
    for (const auto& s : spans_) {
        if (s.core < 0 || s.core >= ncores || s.end <= from || s.start >= to) continue;
        const SimTime lo = std::max(s.start, from);
        const SimTime hi = std::min(s.end, to);
        const int c0 = static_cast<int>(static_cast<double>(lo - from) / bucket);
        const int c1 = std::min(
            cols - 1, static_cast<int>(static_cast<double>(hi - 1 - from) / bucket));
        for (int c = c0; c <= c1; ++c) {
            const double cell_lo = static_cast<double>(from) + c * bucket;
            const double cell_hi = cell_lo + bucket;
            const double overlap = std::min(static_cast<double>(hi), cell_hi) -
                                   std::max(static_cast<double>(lo), cell_lo);
            if (overlap > 0) {
                weight[static_cast<std::size_t>(s.core)][static_cast<std::size_t>(c)]
                      [static_cast<std::size_t>(kind_index(s.kind))] += overlap;
            }
        }
    }

    static constexpr char kGlyph[3] = {'#', 'o', 't'};
    std::ostringstream os;
    for (int core = 0; core < ncores; ++core) {
        os << "core" << core << " |";
        for (int c = 0; c < cols; ++c) {
            const auto& w = weight[static_cast<std::size_t>(core)]
                                  [static_cast<std::size_t>(c)];
            const double busy = w[0] + w[1] + w[2];
            if (busy < bucket * 0.05) {
                os << '.';
                continue;
            }
            // Overhead/transients are what the strip exists to show:
            // highlight them whenever they are a meaningful share of the
            // bucket, even if workload cycles dominate in absolute terms.
            if (w[1] + w[2] >= bucket * 0.10) {
                os << (w[1] >= w[2] ? kGlyph[1] : kGlyph[2]);
            } else {
                os << kGlyph[0];
            }
        }
        os << "|\n";
    }
    return os.str();
}

}  // namespace hpcsec::sim
