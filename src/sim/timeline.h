// Execution timeline recorder.
//
// Collects per-core spans (workload execution vs. kernel/hypervisor
// overhead) emitted by the executors and renders them as an ASCII Gantt
// strip — the quickest way to *see* Fig. 5 vs Fig. 6 style noise. Purely
// observational: attaching a timeline never changes simulated timing.
#pragma once

#include <cstdint>
#include <array>
#include <string>
#include <vector>

#include "sim/time.h"

namespace hpcsec::sim {

class Timeline {
public:
    /// Span kinds: 'W' workload, 'O' kernel/hyp overhead, 'T' TLB transient.
    struct Span {
        int core;
        SimTime start;
        SimTime end;
        char kind;
        std::string label;
    };

    explicit Timeline(std::size_t max_spans = 1u << 20) : max_spans_(max_spans) {}

    void record(int core, SimTime start, SimTime end, char kind,
                std::string_view label);

    [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
    [[nodiscard]] bool saturated() const { return spans_.size() >= max_spans_; }
    void clear() { spans_.clear(); }

    /// Total span time per kind on one core (or all cores with core == -1),
    /// clamped to the window [from, to).
    [[nodiscard]] Cycles total(char kind, int core = -1, SimTime from = 0,
                               SimTime to = kTimeNever) const;

    /// Render [from, to) as one text row per core, `cols` characters wide.
    /// Each cell shows the kind that dominates its time bucket:
    /// '#' workload, 'o' overhead, 't' transient, '.' idle.
    [[nodiscard]] std::string render(SimTime from, SimTime to, int ncores,
                                     int cols = 100) const;

private:
    std::size_t max_spans_;
    std::vector<Span> spans_;
};

}  // namespace hpcsec::sim
