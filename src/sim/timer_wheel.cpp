#include "sim/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace hpcsec::sim {

TimerWheel::TimerWheel() {
    for (auto& level : heads_) {
        for (auto& head : level) head = kNil;
    }
}

int TimerWheel::level_of(SimTime when, SimTime base) {
    const std::uint64_t diff = when ^ base;
    // Precondition when > base implies diff != 0.
    const int high_bit = 63 - std::countl_zero(diff);
    return high_bit / kLevelBits;
}

std::uint32_t TimerWheel::alloc_entry() {
    if (!free_.empty()) {
        const std::uint32_t idx = free_.back();
        free_.pop_back();
        return idx;
    }
    const auto idx = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
    return idx;
}

void TimerWheel::free_entry(std::uint32_t idx) {
    Entry& e = slab_[idx];
    e.id = 0;
    e.fn = nullptr;
    e.next = kNil;
    // sca-suppress(hot-path-alloc): freelist depth is bounded by the slab
    // high-water mark; growth stops once the wheel is warmed.
    free_.push_back(idx);
}

void TimerWheel::place(std::uint32_t idx) {
    Entry& e = slab_[idx];
    const int level = level_of(e.when, base_);
    const std::uint32_t slot = slot_of(level, e.when);
    e.next = heads_[level][slot];
    heads_[level][slot] = idx;
    occupied_[level] |= 1ull << slot;
    // The memoized slot minimum survives placements into *other* slots;
    // only an insert into the memoized list itself can stale it.
    if (scan_.valid && scan_.level == level && scan_.slot == slot) {
        scan_.valid = false;
    }
}

void TimerWheel::batch_insert(std::uint32_t idx) {
    const Key k = key_of(slab_[idx]);
    const auto begin = batch_.begin() + static_cast<std::ptrdiff_t>(batch_head_);
    const auto pos = std::lower_bound(
        begin, batch_.end(), k,
        [this](std::uint32_t i, const Key& key) { return key_of(slab_[i]) < key; });
    batch_.insert(pos, idx);
}

void TimerWheel::batch_slot(int level, std::uint32_t slot) {
    group_.clear();
    std::uint32_t idx = heads_[level][slot];
    heads_[level][slot] = kNil;
    occupied_[level] &= ~(1ull << slot);
    while (idx != kNil) {
        const std::uint32_t next = slab_[idx].next;
        slab_[idx].next = kNil;
        if (slab_[idx].cancelled) {
            free_entry(idx);
        } else {
            // sca-suppress(hot-path-alloc): scratch vector bounded by the
            // largest slot collision group; warmed after the first cascade.
            group_.push_back(idx);
        }
        idx = next;
    }
    if (group_.empty()) return;
    const auto by_key = [this](std::uint32_t a, std::uint32_t b) {
        return key_of(slab_[a]) < key_of(slab_[b]);
    };
    std::sort(group_.begin(), group_.end(), by_key);
    if (batch_head_ == batch_.size()) {
        batch_.clear();
        batch_head_ = 0;
        batch_.insert(batch_.end(), group_.begin(), group_.end());
        return;
    }
    const auto mid = batch_.size();
    batch_.insert(batch_.end(), group_.begin(), group_.end());
    std::inplace_merge(batch_.begin() + static_cast<std::ptrdiff_t>(batch_head_),
                       batch_.begin() + static_cast<std::ptrdiff_t>(mid),
                       batch_.end(), by_key);
}

void TimerWheel::advance_to(SimTime now) {
    if (now <= base_) return;
    const std::uint64_t changed = now ^ base_;
    base_ = now;
    scan_.valid = false;
    const int top = (63 - std::countl_zero(changed)) / kLevelBits;
    // Demote the now-current slot of every level whose block index moved,
    // highest first (demoted entries land strictly lower, or — when their
    // deadline IS `now` — in the ready batch as one sorted group).
    for (int level = top; level >= 0; --level) {
        const std::uint32_t slot = slot_of(level, base_);
        if ((occupied_[level] & 1ull << slot) == 0) continue;
        std::uint32_t idx = heads_[level][slot];
        heads_[level][slot] = kNil;
        occupied_[level] &= ~(1ull << slot);
        group_.clear();
        while (idx != kNil) {
            const std::uint32_t next = slab_[idx].next;
            slab_[idx].next = kNil;
            if (slab_[idx].cancelled) {
                free_entry(idx);
            } else if (slab_[idx].when == base_) {
                // sca-suppress(hot-path-alloc): scratch vector bounded by
                // the slot group size; warmed after the first cascade.
                group_.push_back(idx);
            } else {
                place(idx);
            }
            idx = next;
        }
        if (group_.empty()) continue;
        const auto by_key = [this](std::uint32_t a, std::uint32_t b) {
            return key_of(slab_[a]) < key_of(slab_[b]);
        };
        std::sort(group_.begin(), group_.end(), by_key);
        if (batch_head_ == batch_.size()) {
            batch_.clear();
            batch_head_ = 0;
            batch_.insert(batch_.end(), group_.begin(), group_.end());
        } else {
            const auto mid = batch_.size();
            batch_.insert(batch_.end(), group_.begin(), group_.end());
            std::inplace_merge(
                batch_.begin() + static_cast<std::ptrdiff_t>(batch_head_),
                batch_.begin() + static_cast<std::ptrdiff_t>(mid), batch_.end(),
                by_key);
        }
    }
}

EventId TimerWheel::schedule(SimTime when, int priority, EventFn fn,
                             std::uint64_t order, SimTime now) {
    advance_to(now);
    if (when < base_) {
        throw std::logic_error("TimerWheel::schedule: deadline in the past");
    }
    const std::uint32_t idx = alloc_entry();
    Entry& e = slab_[idx];
    e.when = when;
    e.order = order;
    e.id = kHandleFlag | (static_cast<std::uint64_t>(idx) + 1) << kSlotShift |
           (order & kSeqMask);
    e.fn = std::move(fn);
    e.priority = priority;
    e.cancelled = false;
    if (when == base_) {
        // Batch inserts never stale the memo: it tracks a wheel slot, and
        // next_key() re-reads the batch front on every call.
        batch_insert(idx);
    } else {
        place(idx);  // invalidates the memo iff it hits the memoized slot
    }
    ++live_;
    return EventId{e.id};
}

bool TimerWheel::cancel(EventId id) {
    if ((id.seq & kHandleFlag) == 0) return false;
    const std::uint64_t slot_part = (id.seq & ~kHandleFlag) >> kSlotShift;
    if (slot_part == 0 || slot_part > slab_.size()) return false;
    Entry& e = slab_[static_cast<std::size_t>(slot_part - 1)];
    if (e.id != id.seq || e.cancelled) return false;  // ran, cancelled, or stale
    e.cancelled = true;
    e.fn = nullptr;  // release captured resources immediately
    --live_;
    scan_.valid = false;
    return true;
}

void TimerWheel::skim_batch() {
    while (batch_head_ < batch_.size() && slab_[batch_[batch_head_]].cancelled) {
        free_entry(batch_[batch_head_]);
        ++batch_head_;
    }
    if (batch_head_ == batch_.size() && batch_head_ != 0) {
        batch_.clear();
        batch_head_ = 0;
    }
}

TimerWheel::Key TimerWheel::next_key() {
    skim_batch();
    for (;;) {
        const bool have_batch = batch_head_ < batch_.size();
        const Key batch_key =
            have_batch ? key_of(slab_[batch_[batch_head_]]) : Key{};

        // Lowest occupied level holds the earliest wheel entry (level-0
        // spans end before any higher level's first out-of-window slot).
        int level = -1;
        for (int l = 0; l < kLevels; ++l) {
            if (occupied_[l] != 0) {
                level = l;
                break;
            }
        }
        if (level < 0) return have_batch ? batch_key : Key{};
        const auto slot =
            static_cast<std::uint32_t>(std::countr_zero(occupied_[level]));

        if (level == 0) {
            // A level-0 slot shares one exact deadline; its slot time is
            // base_'s upper bits with the slot index as the low block.
            const SimTime w0 =
                (base_ & ~static_cast<SimTime>(kSlotMask)) | slot;
            // Strict <: at equal times the slot may hold a smaller
            // (priority, order) and must merge into the batch first.
            if (have_batch && batch_key.when < w0) return batch_key;
            batch_slot(0, slot);  // one sort for the whole collision group
            skim_batch();
            continue;  // batch front now covers this slot
        }

        // A future higher-level slot. No live entry in it can fire before
        // the slot's time window opens (live entries are never overdue), so
        // when the batch front precedes the window the batch wins without
        // touching the list — the steady-state batched pop stays O(1).
        const SimTime window_start =
            (base_ &
             ~((static_cast<SimTime>(1) << ((level + 1) * kLevelBits)) - 1)) |
            (static_cast<SimTime>(slot) << (level * kLevelBits));
        if (have_batch && batch_key.when < window_start) return batch_key;

        // Otherwise the minimum needs one list scan (memoized until a
        // mutation touches this slot). Cancelled entries compact out here;
        // an emptied slot clears its occupancy bit and we rescan.
        if (scan_.valid && scan_.level == level && scan_.slot == slot) {
            const Key k = key_of(slab_[scan_.idx]);
            return have_batch && batch_key < k ? batch_key : k;
        }
        std::uint32_t prev = kNil;
        std::uint32_t idx = heads_[level][slot];
        std::uint32_t best = kNil;
        std::uint32_t best_prev = kNil;
        while (idx != kNil) {
            Entry& e = slab_[idx];
            if (e.cancelled) {
                const std::uint32_t next = e.next;
                if (prev == kNil) {
                    heads_[level][slot] = next;
                } else {
                    slab_[prev].next = next;
                }
                free_entry(idx);
                idx = next;
                continue;
            }
            if (best == kNil || key_of(e) < key_of(slab_[best])) {
                best = idx;
                best_prev = prev;
            }
            prev = idx;
            idx = e.next;
        }
        if (best == kNil) {
            occupied_[level] &= ~(1ull << slot);
            continue;
        }
        scan_ = SlotScan{true, level, slot, best, best_prev};
        const Key k = key_of(slab_[best]);
        return have_batch && batch_key < k ? batch_key : k;
    }
}

TimerWheel::Popped TimerWheel::pop() {
    const Key k = next_key();
    Popped out;
    if (batch_head_ < batch_.size() &&
        !(k < key_of(slab_[batch_[batch_head_]]))) {
        const std::uint32_t idx = batch_[batch_head_++];
        Entry& e = slab_[idx];
        out = Popped{e.when, e.priority, std::move(e.fn)};
        free_entry(idx);
        ++batched_pops_;
        if (batch_head_ == batch_.size()) {
            batch_.clear();
            batch_head_ = 0;
        }
    } else {
        // Direct pop from a far slot whose turn arrived: unlink the scanned
        // minimum; the subsequent advance cascades its batch-mates down.
        Entry& e = slab_[scan_.idx];
        if (scan_.prev == kNil) {
            heads_[scan_.level][scan_.slot] = e.next;
        } else {
            slab_[scan_.prev].next = e.next;
        }
        if (heads_[scan_.level][scan_.slot] == kNil) {
            occupied_[scan_.level] &= ~(1ull << scan_.slot);
        }
        out = Popped{e.when, e.priority, std::move(e.fn)};
        free_entry(scan_.idx);
        scan_.valid = false;  // the unlink restructured the memoized list
    }
    --live_;
    // Time reached out.when: demote every slot that became current so the
    // rest of the collision group is one sorted batch away. (A batched pop
    // that does not move base_ keeps the far-slot memo intact.)
    advance_to(out.when);
    return out;
}

}  // namespace hpcsec::sim
