// Hierarchical batched timer wheel for the periodic tick storm.
//
// The vtimer/heartbeat/watchdog cadences re-arm one timer per core per
// tick. On the 4-ary EventQueue that is one heap sift per operation; with
// many cores firing the same cadence the deadlines collide, and a timing
// wheel turns each collision group into one slot operation: N cores on one
// cadence land in one slot, are demoted as a batch when time reaches them,
// sorted once, and then popped in O(1) each.
//
// Layout: 11 levels of 64 slots (6 bits per level), so any 64-bit deadline
// fits without an overflow list. An entry's level is the highest 6-bit
// block in which its deadline differs from the wheel's current time
// (Tokio/kernel-timer style XOR leveling), which makes slot indices
// unambiguous: a slot can only ever hold entries of the current rotation.
// Per-level occupancy bitmasks find the next non-empty slot with one
// count-trailing-zeros.
//
// Determinism contract: the wheel never orders events itself — every entry
// carries the engine-wide (when, priority, order) key, with `order` drawn
// from the same counter the EventQueue uses. The engine merges both
// sources by that key, so moving the periodic storm onto the wheel is
// bit-invisible to simulation output. Handles are EventIds with bit 63
// set, disjoint from EventQueue handles, and cancellation is O(1) (flag
// the slab entry; slot lists are compacted lazily).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace hpcsec::sim {

class TimerWheel {
public:
    /// Bit 63 of EventId::seq marks wheel handles (EventQueue slots encode
    /// slot+1 in bits [40,64), far below the 2^23 live-event count that
    /// could reach the flag bit).
    static constexpr std::uint64_t kHandleFlag = 1ull << 63;

    /// Total order shared with the EventQueue: lexicographic
    /// (when, priority, order).
    using Key = EventQueue::Key;

    TimerWheel();

    /// Schedule at absolute time `when` >= `now` (the engine's clock; the
    /// wheel advances its base to it). `order` comes from the engine's
    /// shared insertion counter.
    EventId schedule(SimTime when, int priority, EventFn fn,
                     std::uint64_t order, SimTime now);

    /// O(1): flags the slab entry. Returns false for stale/foreign ids.
    bool cancel(EventId id);

    [[nodiscard]] bool empty() const { return live_ == 0; }
    [[nodiscard]] std::size_t size() const { return live_; }

    /// Key of the earliest live entry; when == kTimeNever if empty. May
    /// demote higher-level slots down (amortized O(levels) per entry).
    Key next_key();

    /// Pop the earliest live entry. Precondition: !empty().
    struct Popped {
        SimTime when;
        int priority;
        EventFn fn;
    };
    Popped pop();

    /// Pops served from the sorted ready batch in O(1) — the measure of
    /// heap-ordering work the wheel elided versus the EventQueue.
    [[nodiscard]] std::uint64_t batched_pops() const { return batched_pops_; }

private:
    static constexpr int kLevelBits = 6;
    static constexpr int kSlots = 1 << kLevelBits;  // 64
    static constexpr std::uint32_t kSlotMask = kSlots - 1;
    static constexpr int kLevels = 11;  // 66 bits: every uint64 delta fits
    static constexpr std::uint32_t kNil = 0xffff'ffffu;

    static constexpr int kSlotShift = 40;  // handle layout mirrors EventQueue
    static constexpr std::uint64_t kSeqMask = (1ull << kSlotShift) - 1;

    struct Entry {
        SimTime when = 0;
        std::uint64_t order = 0;
        std::uint64_t id = 0;  ///< composite handle; 0 while the slot is free
        EventFn fn;
        std::uint32_t next = kNil;  ///< intrusive slot-list link
        int priority = 0;
        bool cancelled = false;
    };

    [[nodiscard]] Key key_of(const Entry& e) const {
        return Key{e.when, e.priority, e.order};
    }
    [[nodiscard]] static int level_of(SimTime when, SimTime base);
    [[nodiscard]] static std::uint32_t slot_of(int level, SimTime when) {
        return static_cast<std::uint32_t>(when >> (kLevelBits * level)) & kSlotMask;
    }

    std::uint32_t alloc_entry();
    void free_entry(std::uint32_t idx);
    /// File an entry under (level, slot) relative to base_. Precondition:
    /// when > base_ (when == base_ entries belong in the ready batch).
    void place(std::uint32_t idx);
    /// Sorted insert into the ready batch (rare path: delta-zero deadlines).
    void batch_insert(std::uint32_t idx);
    /// Detach a whole slot, drop cancelled entries, sort the group once and
    /// merge it into the ready batch.
    void batch_slot(int level, std::uint32_t slot);
    /// Move the wheel's notion of "now" forward and demote every slot the
    /// advance made current (the classic cascade, done lazily).
    void advance_to(SimTime now);
    void skim_batch();

    std::vector<Entry> slab_;
    std::vector<std::uint32_t> free_;
    std::uint64_t live_ = 0;
    SimTime base_ = 0;

    std::uint32_t heads_[kLevels][kSlots];
    std::uint64_t occupied_[kLevels] = {};

    // Ready batch: entries whose turn is imminent, sorted by key and
    // drained front-to-back through batch_head_ (storage reused).
    std::vector<std::uint32_t> batch_;
    std::size_t batch_head_ = 0;
    std::uint64_t batched_pops_ = 0;

    // Scratch for sorting a detached slot group before the batch merge.
    std::vector<std::uint32_t> group_;

    // next_key() scan memo for the direct-from-slot pop path (a far-future
    // slot whose turn arrived with nothing in between). Any mutation
    // invalidates it.
    struct SlotScan {
        bool valid = false;
        int level = 0;
        std::uint32_t slot = 0;
        std::uint32_t idx = kNil;
        std::uint32_t prev = kNil;  ///< predecessor in the slot list
    };
    SlotScan scan_;
};

}  // namespace hpcsec::sim
