#include "sim/trace.h"

#include <cstdio>

namespace hpcsec::sim {

void TraceLog::log(SimTime when, TraceCat cat, int core, std::string text) {
    if (!enabled(cat)) return;
    if (echo_) {
        std::fprintf(stderr, "[%12llu c%d] %s\n",
                     static_cast<unsigned long long>(when), core, text.c_str());
    }
    if (retain_) records_.push_back(Record{when, cat, core, std::move(text)});
}

std::size_t TraceLog::count_matching(const std::string& substr) const {
    std::size_t n = 0;
    for (const auto& r : records_) {
        if (r.text.find(substr) != std::string::npos) ++n;
    }
    return n;
}

}  // namespace hpcsec::sim
