// Lightweight, category-filtered trace log for debugging simulations.
//
// Tracing is off by default and costs one branch per call site when
// disabled. Records can be retained in memory (for tests that assert on
// event ordering) or streamed to stderr.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.h"

namespace hpcsec::sim {

enum class TraceCat : std::uint32_t {
    kIrq = 1u << 0,
    kSched = 1u << 1,
    kHyp = 1u << 2,
    kVm = 1u << 3,
    kMmu = 1u << 4,
    kWorkload = 1u << 5,
    kBoot = 1u << 6,
    kChannel = 1u << 7,
    kCheck = 1u << 8,
    kResil = 1u << 9,
    kAll = 0xffffffffu,
};

class TraceLog {
public:
    struct Record {
        SimTime when;
        TraceCat cat;
        int core;
        std::string text;
    };

    void enable(TraceCat mask) { mask_ |= static_cast<std::uint32_t>(mask); }
    void disable(TraceCat mask) { mask_ &= ~static_cast<std::uint32_t>(mask); }
    void set_retain(bool retain) { retain_ = retain; }
    void set_echo(bool echo) { echo_ = echo; }

    [[nodiscard]] bool enabled(TraceCat cat) const {
        return (mask_ & static_cast<std::uint32_t>(cat)) != 0;
    }

    void log(SimTime when, TraceCat cat, int core, std::string text);

    [[nodiscard]] const std::vector<Record>& records() const { return records_; }
    [[nodiscard]] std::size_t count_matching(const std::string& substr) const;
    void clear() { records_.clear(); }

private:
    std::uint32_t mask_ = 0;
    bool retain_ = false;
    bool echo_ = false;
    std::vector<Record> records_;
};

}  // namespace hpcsec::sim
