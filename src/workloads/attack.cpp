#include "workloads/attack.h"

#include <stdexcept>
#include <utility>

#include "check/corrupt.h"

namespace hpcsec::wl {

namespace {
constexpr std::pair<const char*, AttackKind> kAttackNames[] = {
    {"heartbleed", AttackKind::kHeartbleed},
    {"vtable", AttackKind::kVtableOverwrite},
    {"srop", AttackKind::kSropForgery},
};
}  // namespace

const char* to_string(AttackKind k) {
    switch (k) {
        case AttackKind::kHeartbleed: return "heartbleed";
        case AttackKind::kVtableOverwrite: return "vtable";
        case AttackKind::kSropForgery: return "srop";
    }
    return "?";
}

bool parse_attack_kind(const std::string& token, AttackKind& out,
                       std::string& error) {
    for (const auto& [name, kind] : kAttackNames) {
        if (token == name) {
            out = kind;
            error.clear();
            return true;
        }
    }
    error = "unknown attack shape '" + token + "' (valid: ";
    bool first = true;
    for (const auto& [name, kind] : kAttackNames) {
        if (!first) error += ",";
        error += name;
        first = false;
    }
    error += ")";
    return false;
}

AdversaryWorkload::AdversaryWorkload(hafnium::Spm& spm, arch::VmId attacker,
                                     AttackConfig config)
    : spm_(&spm),
      attacker_(attacker),
      config_(std::move(config)),
      rng_(spm.platform().rng().split()) {
    hafnium::Vm& vm = spm.vm(attacker);
    if (vm.role() != hafnium::VmRole::kSecondary || vm.destroyed) {
        throw std::invalid_argument(
            "AdversaryWorkload: attacker must be a live secondary partition");
    }
}

AdversaryWorkload::~AdversaryWorkload() { stop(); }

void AdversaryWorkload::start() {
    if (armed_ || done_) return;
    armed_ = true;
    auto& engine = spm_->platform().engine();
    event_ = engine.at(
        engine.now() + engine.clock().from_seconds(config_.start_s),
        [this] { launch(); }, sim::kPrioDefault);
}

void AdversaryWorkload::stop() {
    if (!armed_) return;
    spm_->platform().engine().cancel(event_);
    armed_ = false;
}

void AdversaryWorkload::launch() {
    const hafnium::Spm::CriticalRegion* region =
        spm_->find_critical(config_.target_region);
    if (region == nullptr) {
        throw std::runtime_error(
            "AdversaryWorkload: no such critical region (is critical state "
            "protected?): " + config_.target_region);
    }
    window_ipa_ = check::CorruptionAccess::map_rogue_window(*spm_, attacker_,
                                                            region->base);
    step();
}

void AdversaryWorkload::step() {
    if (!armed_) return;
    hafnium::Vm& vm = spm_->vm(attacker_);
    if (vm.destroyed) {
        // Quarantined out from under us: the attack is over.
        finish();
        return;
    }

    const std::uint64_t page_words = arch::kPageSize / 8;
    int total = 1;
    switch (config_.kind) {
        case AttackKind::kHeartbleed: {
            total = config_.legit_words + config_.overread_words;
            // A sequential read that starts inside a legitimate buffer at
            // the very end of the attacker's RAM and just keeps going; the
            // rogue window makes the address space continue into the target.
            const arch::IpaAddr ipa =
                vm.ipa_base + vm.mem_bytes() -
                static_cast<std::uint64_t>(config_.legit_words) * 8 +
                static_cast<std::uint64_t>(cursor_) * 8;
            std::uint64_t word = 0;
            ++stats_.attempts;
            if (spm_->vm_read64(attacker_, ipa, word)) {
                if (ipa >= window_ipa_) ++stats_.leaked_words;
            } else {
                ++stats_.denied;
            }
            break;
        }
        case AttackKind::kVtableOverwrite: {
            total = 1;
            // One forged pointer aimed at a dispatch slot in the target page.
            const std::uint64_t slot = rng_.next_below(page_words);
            ++stats_.attempts;
            if (spm_->vm_write64(attacker_, window_ipa_ + slot * 8,
                                 rng_.next_u64() | 1)) {
                ++stats_.corrupted_words;
            } else {
                ++stats_.denied;
            }
            break;
        }
        case AttackKind::kSropForgery: {
            total = config_.sigframe_words;
            // Forge a saved context word by word; every word must land for
            // the fake sigframe to be accepted, so one denial defeats it.
            if (cursor_ == 0) {
                frame_base_ = rng_.next_below(
                    page_words - static_cast<std::uint64_t>(total));
            }
            ++stats_.attempts;
            if (spm_->vm_write64(
                    attacker_,
                    window_ipa_ + (frame_base_ +
                                   static_cast<std::uint64_t>(cursor_)) * 8,
                    rng_.next_u64())) {
                ++stats_.corrupted_words;
            } else {
                ++stats_.denied;
            }
            break;
        }
    }

    ++cursor_;
    if (cursor_ >= total) {
        finish();
        return;
    }
    auto& engine = spm_->platform().engine();
    event_ = engine.at(
        engine.now() + engine.clock().from_seconds(config_.period_s),
        [this] { step(); }, sim::kPrioDefault);
}

void AdversaryWorkload::finish() {
    done_ = true;
    armed_ = false;
    publish_metrics();
}

void AdversaryWorkload::publish_metrics() {
    auto& m = spm_->platform().metrics();
    const auto set = [&m](const char* name, std::uint64_t v) {
        m.set(m.gauge(name), static_cast<double>(v));
    };
    set("attack.attempts", stats_.attempts);
    set("attack.denied", stats_.denied);
    set("attack.leaked_words", stats_.leaked_words);
    set("attack.corrupted_words", stats_.corrupted_words);
}

}  // namespace hpcsec::wl
