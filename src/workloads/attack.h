// Adversarial attacker workloads — the HDFI attack suite, ported to
// guest-level shapes.
//
// HDFI's evaluation replays real exploit classes against its one-bit data
// tags; this file ports the same three shapes to the SPM's trust boundary
// as deterministic workloads an attacker partition runs:
//
//  * kHeartbleed       — buffer over-read: a sequential read walks off the
//                        end of a legitimate buffer and continues into SPM-
//                        critical state (key material), the over-read shape
//                        of CVE-2014-0160.
//  * kVtableOverwrite  — a single forged-pointer write aimed at a dispatch
//                        slot, the vtable/GOT-overwrite shape behind most
//                        control-flow hijacks.
//  * kSropForgery      — a burst of writes forging saved control state (a
//                        sigreturn frame), the SROP shape: many words must
//                        all land for the forged context to be accepted.
//
// Each attack starts from the post-exploitation state those CVEs reach — a
// corrupted stage-2 window onto the target frame, spliced in through the
// check::CorruptionAccess backdoor — and then drives real SPM access paths.
// With integrity tags armed, every access that reaches the tagged frame is
// denied and reported; the workload's Stats prove the defeat (nothing
// leaked, nothing corrupted). Timing and forged values come from a sim::Rng
// split, so a seed reproduces the attack byte for byte.
#pragma once

#include <cstdint>
#include <string>

#include "hafnium/spm.h"
#include "sim/rng.h"

namespace hpcsec::wl {

enum class AttackKind : std::uint8_t {
    kHeartbleed,       ///< over-read past a legit buffer into tagged state
    kVtableOverwrite,  ///< one forged-pointer write at a dispatch slot
    kSropForgery,      ///< multi-word forged control-state (sigframe) write
};

[[nodiscard]] const char* to_string(AttackKind k);

/// Parse a symbolic attack name ("heartbleed", "vtable", "srop"). Returns
/// false and fills `error` with the valid names on a bad token.
[[nodiscard]] bool parse_attack_kind(const std::string& token, AttackKind& out,
                                     std::string& error);

struct AttackConfig {
    AttackKind kind = AttackKind::kHeartbleed;
    /// Critical region the exploit targets (see Spm::critical_regions()).
    std::string target_region = "lamport-keys";
    double start_s = 0.02;     ///< when the exploit fires after start()
    double period_s = 0.0002;  ///< cadence between accesses of a burst
    int legit_words = 8;       ///< heartbleed: in-bounds reads before the walk
    int overread_words = 24;   ///< heartbleed: words read past the buffer
    int sigframe_words = 16;   ///< srop: forged-frame size in words
};

/// One attacker partition running one attack shape to completion.
class AdversaryWorkload {
public:
    /// `attacker` must be a live secondary partition. Requires the SPM's
    /// critical state to be protected when the exploit fires.
    AdversaryWorkload(hafnium::Spm& spm, arch::VmId attacker,
                      AttackConfig config = {});
    ~AdversaryWorkload();
    AdversaryWorkload(const AdversaryWorkload&) = delete;
    AdversaryWorkload& operator=(const AdversaryWorkload&) = delete;

    /// Schedule the exploit (idempotent).
    void start();
    /// Cancel any pending access.
    void stop();

    /// The attack ran to completion — or was cut short because the attacker
    /// partition was quarantined out from under it, which also counts.
    [[nodiscard]] bool done() const { return done_; }

    struct Stats {
        std::uint64_t attempts = 0;         ///< accesses issued
        std::uint64_t denied = 0;           ///< accesses refused by the SPM
        std::uint64_t leaked_words = 0;     ///< target reads that returned data
        std::uint64_t corrupted_words = 0;  ///< target writes that landed
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

    /// The attack ran, reached the tagged target at least once, and got
    /// nothing: no word leaked, no word corrupted.
    [[nodiscard]] bool defeated() const {
        return done_ && stats_.denied > 0 && stats_.leaked_words == 0 &&
               stats_.corrupted_words == 0;
    }

    /// Push Stats into the platform's metrics registry as "attack.*" gauges.
    void publish_metrics();

private:
    void launch();
    void step();
    void finish();

    hafnium::Spm* spm_;
    arch::VmId attacker_;
    AttackConfig config_;
    sim::Rng rng_;
    arch::IpaAddr window_ipa_ = 0;  ///< rogue window onto the target frame
    int cursor_ = 0;                ///< next access index of the burst
    std::uint64_t frame_base_ = 0;  ///< srop: word slot the forged frame starts at
    bool armed_ = false;
    bool done_ = false;
    sim::EventId event_{};
    Stats stats_;
};

}  // namespace hpcsec::wl
