#include "workloads/hpcg.h"

#include <cmath>

namespace hpcsec::wl {

HpcgKernel::HpcgKernel(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
    // HPCG's right-hand side: b = A * ones has entries 26 - (neighbors).
    b_.assign(rows(), 0.0);
    std::vector<double> ones(rows(), 1.0);
    spmv(ones, b_);
}

template <typename Fn>
void HpcgKernel::row_visit(int i, int j, int k, Fn&& fn) const {
    for (int dk = -1; dk <= 1; ++dk) {
        for (int dj = -1; dj <= 1; ++dj) {
            for (int di = -1; di <= 1; ++di) {
                const int ii = i + di, jj = j + dj, kk = k + dk;
                if (ii < 0 || ii >= nx_ || jj < 0 || jj >= ny_ || kk < 0 || kk >= nz_) {
                    continue;
                }
                const bool diagonal = di == 0 && dj == 0 && dk == 0;
                fn(idx(ii, jj, kk), diagonal ? 26.0 : -1.0);
            }
        }
    }
}

void HpcgKernel::spmv(const std::vector<double>& x, std::vector<double>& y) const {
    for (int k = 0; k < nz_; ++k) {
        for (int j = 0; j < ny_; ++j) {
            for (int i = 0; i < nx_; ++i) {
                double sum = 0.0;
                row_visit(i, j, k, [&](int col, double v) { sum += v * x[static_cast<std::size_t>(col)]; });
                y[static_cast<std::size_t>(idx(i, j, k))] = sum;
            }
        }
    }
}

void HpcgKernel::symgs(const std::vector<double>& r, std::vector<double>& z) const {
    std::fill(z.begin(), z.end(), 0.0);
    // Forward sweep.
    for (int k = 0; k < nz_; ++k) {
        for (int j = 0; j < ny_; ++j) {
            for (int i = 0; i < nx_; ++i) {
                double sum = r[static_cast<std::size_t>(idx(i, j, k))];
                double diag = 26.0;
                row_visit(i, j, k, [&](int col, double v) {
                    if (col == idx(i, j, k)) return;
                    sum -= v * z[static_cast<std::size_t>(col)];
                });
                z[static_cast<std::size_t>(idx(i, j, k))] = sum / diag;
            }
        }
    }
    // Backward sweep.
    for (int k = nz_ - 1; k >= 0; --k) {
        for (int j = ny_ - 1; j >= 0; --j) {
            for (int i = nx_ - 1; i >= 0; --i) {
                double sum = r[static_cast<std::size_t>(idx(i, j, k))];
                double diag = 26.0;
                row_visit(i, j, k, [&](int col, double v) {
                    if (col == idx(i, j, k)) return;
                    sum -= v * z[static_cast<std::size_t>(col)];
                });
                z[static_cast<std::size_t>(idx(i, j, k))] = sum / diag;
            }
        }
    }
}

double HpcgKernel::dot(const std::vector<double>& a,
                       const std::vector<double>& b) const {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

double HpcgKernel::flops_per_iteration() const {
    const auto n = static_cast<double>(rows());
    // SpMV: 27*2 per row; SymGS: two sweeps of ~27*2; dots: 3 * 2n; axpys: 3 * 2n.
    return n * (54.0 + 108.0 + 6.0 + 6.0);
}

HpcgKernel::Result HpcgKernel::solve(int max_iters, double tolerance) {
    const std::size_t n = rows();
    std::vector<double> x(n, 0.0), r = b_, z(n, 0.0), p(n, 0.0), ap(n, 0.0);

    Result res;
    res.initial_residual = std::sqrt(dot(r, r));
    double rz_old = 0.0;
    for (int it = 0; it < max_iters; ++it) {
        symgs(r, z);
        const double rz = dot(r, z);
        if (it == 0) {
            p = z;
        } else {
            const double beta = rz / rz_old;
            for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
        }
        rz_old = rz;
        spmv(p, ap);
        const double alpha = rz / dot(p, ap);
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        ++res.iterations;
        res.flops += flops_per_iteration();
        res.final_residual = std::sqrt(dot(r, r));
        if (res.final_residual <= tolerance * res.initial_residual) break;
    }
    return res;
}

WorkloadSpec hpcg_spec(int nthreads) {
    // Calibration: Fig. 8 native HPCG = 0.0018 GFlops on the 4-core A53 —
    // 2444 cycles/flop (HPCG is brutally memory-latency-bound on this SoC
    // and the paper's binary was unoptimized ARM64). Moderate TLB pressure:
    // the stencil walks three planes per row.
    WorkloadSpec s;
    s.name = "HPCG";
    s.metric = "GFlops";
    s.nthreads = nthreads;
    // 50 CG iterations; each has 2 global reductions (dot products).
    s.supersteps = 100;
    const double total_flops = 9.0e6;  // ~5 s at the paper's rate
    s.units_per_thread_step = total_flops / (nthreads * s.supersteps);
    s.metric_per_unit = 1e-9;
    s.profile.mem_refs_per_unit = 1.5;
    s.profile.tlb_miss_rate = 0.15;
    s.profile.cycles_per_unit = 2444.0 - 1.5 * 0.15 * 35.0;
    s.profile.working_set_pages = 320.0;
    s.measurement_noise_sigma = 0.0167;  // paper stdev 3e-5/0.0018
    return s;
}

}  // namespace hpcsec::wl
