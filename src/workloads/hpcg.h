// HPCG mini-app: real preconditioned-CG kernel + simulation spec.
//
// Like the reference HPCG, the kernel solves A x = b where A is the
// 27-point stencil operator on a 3-D grid (diagonal 26, off-diagonals -1),
// using CG preconditioned with one symmetric Gauss-Seidel sweep. The solver
// is matrix-free; convergence of the residual is the correctness check.
#pragma once

#include <cstddef>
#include <vector>

#include "workloads/workload.h"

namespace hpcsec::wl {

class HpcgKernel {
public:
    explicit HpcgKernel(int nx = 16, int ny = 16, int nz = 16);

    struct Result {
        int iterations = 0;
        double initial_residual = 0.0;
        double final_residual = 0.0;
        double flops = 0.0;
        [[nodiscard]] double reduction() const {
            return final_residual / initial_residual;
        }
    };

    /// Run CG for up to `max_iters` iterations or until ||r|| drops by
    /// `tolerance` relative to the initial residual.
    Result solve(int max_iters = 50, double tolerance = 1e-6);

    [[nodiscard]] std::size_t rows() const { return static_cast<std::size_t>(nx_) * ny_ * nz_; }

    /// Reference flop count per CG iteration (SpMV + SymGS + vector ops).
    [[nodiscard]] double flops_per_iteration() const;

private:
    void spmv(const std::vector<double>& x, std::vector<double>& y) const;
    void symgs(const std::vector<double>& r, std::vector<double>& z) const;
    [[nodiscard]] double dot(const std::vector<double>& a,
                             const std::vector<double>& b) const;
    [[nodiscard]] int idx(int i, int j, int k) const {
        return (k * ny_ + j) * nx_ + i;
    }
    /// Visit the 27-point neighbourhood of (i,j,k); calls fn(col, value).
    template <typename Fn>
    void row_visit(int i, int j, int k, Fn&& fn) const;

    int nx_, ny_, nz_;
    std::vector<double> b_;
};

[[nodiscard]] WorkloadSpec hpcg_spec(int nthreads = 4);

}  // namespace hpcsec::wl
