#include "workloads/nas.h"

#include <cmath>

namespace hpcsec::wl {

// ---------------------------------------------------------------------------
// NAS random stream (randlc)
// ---------------------------------------------------------------------------

namespace {
constexpr double kR23 = 0x1.0p-23;
constexpr double kR46 = 0x1.0p-46;
constexpr double kT23 = 0x1.0p23;
constexpr double kT46 = 0x1.0p46;
constexpr double kNasA = 1220703125.0;  // 5^13

/// One randlc step: x = a*x mod 2^46, returning x * 2^-46.
double randlc(double& x, double a) {
    const double t1a = kR23 * a;
    const double a1 = static_cast<double>(static_cast<long long>(t1a));
    const double a2 = a - kT23 * a1;

    const double t1x = kR23 * x;
    const double x1 = static_cast<double>(static_cast<long long>(t1x));
    const double x2 = x - kT23 * x1;

    const double t1 = a1 * x2 + a2 * x1;
    const double t2 = static_cast<double>(static_cast<long long>(kR23 * t1));
    const double z = t1 - kT23 * t2;
    const double t3 = kT23 * z + a2 * x2;
    const double t4 = static_cast<double>(static_cast<long long>(kR46 * t3));
    x = t3 - kT46 * t4;
    return kR46 * x;
}
}  // namespace

NasRandom::NasRandom(double seed) : x_(seed) {}

double NasRandom::next() { return randlc(x_, kNasA); }

void NasRandom::skip(std::uint64_t n) {
    // Compute t = a^n mod 2^46 by repeated squaring, then x = t*x mod 2^46.
    // randlc(x, a) performs exactly "x = a*x mod 2^46", so it doubles as our
    // 46-bit modular multiplier.
    double an = kNasA;
    double t = 1.0;
    while (n > 0) {
        if (n & 1) (void)randlc(t, an);   // t = an * t mod 2^46
        double sq = an;
        (void)randlc(sq, an);             // sq = an^2 mod 2^46
        an = sq;
        n >>= 1;
    }
    (void)randlc(x_, t);                  // x = t * x mod 2^46
}

// ---------------------------------------------------------------------------
// EP
// ---------------------------------------------------------------------------

EpKernel::Result EpKernel::run(std::uint64_t pairs, double seed) {
    NasRandom rng(seed);
    Result r;
    r.pairs_generated = pairs;
    for (std::uint64_t p = 0; p < pairs; ++p) {
        const double x = 2.0 * rng.next() - 1.0;
        const double y = 2.0 * rng.next() - 1.0;
        const double t = x * x + y * y;
        if (t > 1.0 || t == 0.0) continue;
        ++r.pairs_accepted;
        const double factor = std::sqrt(-2.0 * std::log(t) / t);
        const double gx = x * factor;
        const double gy = y * factor;
        r.sx += gx;
        r.sy += gy;
        const auto annulus = static_cast<std::size_t>(
            std::min(9.0, std::floor(std::max(std::fabs(gx), std::fabs(gy)))));
        ++r.annulus_counts[annulus];
    }
    return r;
}

// ---------------------------------------------------------------------------
// CG (eigenvalue estimation on a Laplacian)
// ---------------------------------------------------------------------------

namespace {
/// y = A x for the 2-D 5-point Laplacian on an n x n grid (Dirichlet).
void laplacian_apply(int n, const std::vector<double>& x, std::vector<double>& y) {
    for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
            const std::size_t p = static_cast<std::size_t>(j) * n + i;
            double v = 4.0 * x[p];
            if (i > 0) v -= x[p - 1];
            if (i < n - 1) v -= x[p + 1];
            if (j > 0) v -= x[p - static_cast<std::size_t>(n)];
            if (j < n - 1) v += -x[p + static_cast<std::size_t>(n)];
            y[p] = v;
        }
    }
}

double vdot(const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}
}  // namespace

double NasCgKernel::analytic_lambda_min(int n) {
    const double s = 2.0 * (1.0 - std::cos(M_PI / (n + 1)));
    return 2.0 * s;  // lambda_x + lambda_y for the smallest mode
}

NasCgKernel::Result NasCgKernel::run(int n, int outer_iters, int cg_iters) {
    const std::size_t size = static_cast<std::size_t>(n) * n;
    std::vector<double> x(size, 1.0), z(size, 0.0), r(size), p(size), q(size);
    Result res;

    // Inverse power iteration: z = A^{-1} x via CG; zeta = x.z / z.z -> lambda_min.
    for (int outer = 0; outer < outer_iters; ++outer) {
        // CG solve A z = x.
        std::fill(z.begin(), z.end(), 0.0);
        r = x;
        p = r;
        double rr = vdot(r, r);
        for (int it = 0; it < cg_iters; ++it) {
            laplacian_apply(n, p, q);
            const double alpha = rr / vdot(p, q);
            for (std::size_t i = 0; i < size; ++i) {
                z[i] += alpha * p[i];
                r[i] -= alpha * q[i];
            }
            const double rr_new = vdot(r, r);
            const double beta = rr_new / rr;
            rr = rr_new;
            for (std::size_t i = 0; i < size; ++i) p[i] = r[i] + beta * p[i];
            res.flops += static_cast<double>(size) * (9.0 + 4.0 + 4.0 + 2.0 + 2.0);
            ++res.iterations;
        }
        res.final_residual = std::sqrt(rr);
        // Rayleigh quotient of the inverse iterate.
        res.zeta = vdot(x, z) / vdot(z, z);
        // Normalize z as the next x.
        const double norm = std::sqrt(vdot(z, z));
        for (std::size_t i = 0; i < size; ++i) x[i] = z[i] / norm;
    }
    return res;
}

// ---------------------------------------------------------------------------
// ADI (BT/SP core)
// ---------------------------------------------------------------------------

AdiKernel::AdiKernel(int nx, int ny, int nz, double dt)
    : nx_(nx), ny_(ny), nz_(nz), dt_(dt), u_(static_cast<std::size_t>(nx) * ny * nz) {
    // Initial condition: a separable bump, decays toward zero steady state.
    for (int k = 0; k < nz; ++k) {
        for (int j = 0; j < ny; ++j) {
            for (int i = 0; i < nx; ++i) {
                u_[idx(i, j, k)] = std::sin(M_PI * (i + 1) / (nx + 1)) *
                                   std::sin(M_PI * (j + 1) / (ny + 1)) *
                                   std::sin(M_PI * (k + 1) / (nz + 1));
            }
        }
    }
}

void AdiKernel::thomas(std::vector<double>& a, std::vector<double>& b,
                       std::vector<double>& c, std::vector<double>& d) {
    const std::size_t n = b.size();
    for (std::size_t i = 1; i < n; ++i) {
        const double m = a[i] / b[i - 1];
        b[i] -= m * c[i - 1];
        d[i] -= m * d[i - 1];
    }
    d[n - 1] /= b[n - 1];
    for (std::size_t i = n - 1; i-- > 0;) {
        d[i] = (d[i] - c[i] * d[i + 1]) / b[i];
    }
}

void AdiKernel::sweep_x() {
    std::vector<double> a(static_cast<std::size_t>(nx_)), b(a.size()), c(a.size()),
        d(a.size());
    for (int k = 0; k < nz_; ++k) {
        for (int j = 0; j < ny_; ++j) {
            for (int i = 0; i < nx_; ++i) {
                a[static_cast<std::size_t>(i)] = -dt_;
                b[static_cast<std::size_t>(i)] = 1.0 + 2.0 * dt_;
                c[static_cast<std::size_t>(i)] = -dt_;
                d[static_cast<std::size_t>(i)] = u_[idx(i, j, k)];
            }
            thomas(a, b, c, d);
            for (int i = 0; i < nx_; ++i) u_[idx(i, j, k)] = d[static_cast<std::size_t>(i)];
        }
    }
}

void AdiKernel::sweep_y() {
    std::vector<double> a(static_cast<std::size_t>(ny_)), b(a.size()), c(a.size()),
        d(a.size());
    for (int k = 0; k < nz_; ++k) {
        for (int i = 0; i < nx_; ++i) {
            for (int j = 0; j < ny_; ++j) {
                a[static_cast<std::size_t>(j)] = -dt_;
                b[static_cast<std::size_t>(j)] = 1.0 + 2.0 * dt_;
                c[static_cast<std::size_t>(j)] = -dt_;
                d[static_cast<std::size_t>(j)] = u_[idx(i, j, k)];
            }
            thomas(a, b, c, d);
            for (int j = 0; j < ny_; ++j) u_[idx(i, j, k)] = d[static_cast<std::size_t>(j)];
        }
    }
}

void AdiKernel::sweep_z() {
    std::vector<double> a(static_cast<std::size_t>(nz_)), b(a.size()), c(a.size()),
        d(a.size());
    for (int j = 0; j < ny_; ++j) {
        for (int i = 0; i < nx_; ++i) {
            for (int k = 0; k < nz_; ++k) {
                a[static_cast<std::size_t>(k)] = -dt_;
                b[static_cast<std::size_t>(k)] = 1.0 + 2.0 * dt_;
                c[static_cast<std::size_t>(k)] = -dt_;
                d[static_cast<std::size_t>(k)] = u_[idx(i, j, k)];
            }
            thomas(a, b, c, d);
            for (int k = 0; k < nz_; ++k) u_[idx(i, j, k)] = d[static_cast<std::size_t>(k)];
        }
    }
}

double AdiKernel::advance(int steps) {
    for (int s = 0; s < steps; ++s) {
        const std::vector<double> before = u_;
        sweep_x();
        sweep_y();
        sweep_z();
        double change = 0.0;
        for (std::size_t i = 0; i < u_.size(); ++i) {
            change = std::max(change, std::fabs(u_[i] - before[i]));
        }
        last_change_ = change;
    }
    return last_change_;
}

double AdiKernel::max_abs() const {
    double m = 0.0;
    for (const double v : u_) m = std::max(m, std::fabs(v));
    return m;
}

// ---------------------------------------------------------------------------
// SSOR (LU core)
// ---------------------------------------------------------------------------

SsorKernel::SsorKernel(int nx, int ny, int nz, double omega)
    : nx_(nx), ny_(ny), nz_(nz), omega_(omega),
      u_(static_cast<std::size_t>(nx) * ny * nz, 0.0),
      f_(static_cast<std::size_t>(nx) * ny * nz, 1.0) {}

void SsorKernel::sweep(bool forward) {
    const auto relax = [&](int i, int j, int k) {
        double sum = f_[idx(i, j, k)];
        if (i > 0) sum += u_[idx(i - 1, j, k)];
        if (i < nx_ - 1) sum += u_[idx(i + 1, j, k)];
        if (j > 0) sum += u_[idx(i, j - 1, k)];
        if (j < ny_ - 1) sum += u_[idx(i, j + 1, k)];
        if (k > 0) sum += u_[idx(i, j, k - 1)];
        if (k < nz_ - 1) sum += u_[idx(i, j, k + 1)];
        const double gs = sum / 6.0;
        u_[idx(i, j, k)] = (1.0 - omega_) * u_[idx(i, j, k)] + omega_ * gs;
    };
    if (forward) {
        for (int k = 0; k < nz_; ++k)
            for (int j = 0; j < ny_; ++j)
                for (int i = 0; i < nx_; ++i) relax(i, j, k);
    } else {
        for (int k = nz_ - 1; k >= 0; --k)
            for (int j = ny_ - 1; j >= 0; --j)
                for (int i = nx_ - 1; i >= 0; --i) relax(i, j, k);
    }
}

double SsorKernel::residual_norm() const {
    double norm = 0.0;
    for (int k = 0; k < nz_; ++k) {
        for (int j = 0; j < ny_; ++j) {
            for (int i = 0; i < nx_; ++i) {
                double sum = f_[idx(i, j, k)];
                if (i > 0) sum += u_[idx(i - 1, j, k)];
                if (i < nx_ - 1) sum += u_[idx(i + 1, j, k)];
                if (j > 0) sum += u_[idx(i, j - 1, k)];
                if (j < ny_ - 1) sum += u_[idx(i, j + 1, k)];
                if (k > 0) sum += u_[idx(i, j, k - 1)];
                if (k < nz_ - 1) sum += u_[idx(i, j, k + 1)];
                const double r = sum - 6.0 * u_[idx(i, j, k)];
                norm += r * r;
            }
        }
    }
    return std::sqrt(norm);
}

SsorKernel::Result SsorKernel::relax(int iterations) {
    Result res;
    res.initial_residual = residual_norm();
    for (int it = 0; it < iterations; ++it) {
        sweep(true);
        sweep(false);
        ++res.iterations;
    }
    res.final_residual = residual_norm();
    return res;
}

// ---------------------------------------------------------------------------
// Simulation specs — calibrated to Fig. 10's native Mop/s on 4x1.1 GHz:
// cycles/op = 4*1.1e9 / (Mop/s * 1e6).
// ---------------------------------------------------------------------------

namespace {
WorkloadSpec nas_spec_common(const char* name, int nthreads, int supersteps,
                             double native_mops, double sim_seconds,
                             double refs, double miss, double ws_pages,
                             double sigma) {
    WorkloadSpec s;
    s.name = name;
    s.metric = "Mop/s";
    s.nthreads = nthreads;
    s.supersteps = supersteps;
    const double total_ops = native_mops * 1e6 * sim_seconds;
    s.units_per_thread_step = total_ops / (nthreads * supersteps);
    s.metric_per_unit = 1e-6;
    const double cycles_per_op = 4.0 * 1.1e9 / (native_mops * 1e6);
    s.profile.mem_refs_per_unit = refs;
    s.profile.tlb_miss_rate = miss;
    s.profile.cycles_per_unit = cycles_per_op - refs * miss * 35.0;
    s.profile.working_set_pages = ws_pages;
    s.measurement_noise_sigma = sigma;
    return s;
}
}  // namespace

// TLB notes: at the paper's problem sizes the NAS working sets fit the
// A53's 512-entry TLB once warm (the Fig. 10 Kitten column is within noise
// of native), so steady-state miss rates are tiny; what distinguishes the
// suite under a noisy scheduler is (a) synchronization granularity — LU's
// SSOR wavefronts sync per plane, BT/SP per ADI sweep, CG per reduction,
// EP once — and (b) the TLB-refill transient each preemption re-incurs
// (working_set_pages).

WorkloadSpec nas_lu_spec(int nthreads) {
    // LU: finest-grained sync of the suite (per-wavefront), which is why it
    // is the one benchmark the paper shows losing ground under Linux.
    return nas_spec_common("LU", nthreads, 1500, 33.16, 5.0, 0.8, 0.002, 288.0,
                           0.0012);
}

WorkloadSpec nas_bt_spec(int nthreads) {
    // BT: block-tridiagonal ADI; coarse sweeps, dense per-point math.
    return nas_spec_common("BT", nthreads, 200, 34.214, 5.0, 0.7, 0.001, 48.0,
                           0.0010);
}

WorkloadSpec nas_cg_spec(int nthreads) {
    // CG: sparse gathers (slightly higher residual miss rate), reductions.
    return nas_spec_common("CG", nthreads, 150, 4.38, 5.0, 1.2, 0.006, 48.0,
                           0.0012);
}

WorkloadSpec nas_ep_spec(int nthreads) {
    // EP: embarrassingly parallel, register-resident, a single join.
    return nas_spec_common("EP", nthreads, 1, 0.77, 5.0, 0.05, 0.001, 8.0, 0.0010);
}

WorkloadSpec nas_sp_spec(int nthreads) {
    // SP: scalar penta-diagonal ADI; between BT and LU in sync intensity.
    return nas_spec_common("SP", nthreads, 400, 15.084, 5.0, 0.7, 0.002, 48.0,
                           0.0011);
}

std::vector<WorkloadSpec> nas_suite(int nthreads) {
    return {nas_lu_spec(nthreads), nas_bt_spec(nthreads), nas_cg_spec(nthreads),
            nas_ep_spec(nthreads), nas_sp_spec(nthreads)};
}

}  // namespace hpcsec::wl
