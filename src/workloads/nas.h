// NAS Parallel Benchmark subset (LU, BT, CG, EP, SP): real mini-kernels +
// simulation specs for Figs. 9-10.
//
// Each kernel is a faithful miniature of the NAS benchmark's numerical
// core, with a built-in correctness check:
//   EP  — NAS linear-congruential stream (a = 5^13, mod 2^46), acceptance-
//         rejection Gaussian pairs, per-annulus counts;
//   CG  — conjugate gradient eigenvalue estimation on a Laplacian system;
//   BT/SP — ADI time stepping with Thomas tridiagonal solves per direction;
//   LU  — SSOR lower/upper wavefront relaxation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace hpcsec::wl {

/// NAS pseudorandom stream: x_{k+1} = a * x_k mod 2^46.
class NasRandom {
public:
    explicit NasRandom(double seed = 314159265.0);
    /// Next uniform deviate in (0, 1).
    double next();
    /// Skip ahead n steps in O(log n) (NAS's randlc power algorithm).
    void skip(std::uint64_t n);

private:
    double x_;
};

class EpKernel {
public:
    struct Result {
        std::uint64_t pairs_generated = 0;
        std::uint64_t pairs_accepted = 0;
        double sx = 0.0;
        double sy = 0.0;
        std::array<std::uint64_t, 10> annulus_counts{};
    };

    /// Generate `pairs` candidate pairs from the NAS stream.
    static Result run(std::uint64_t pairs, double seed = 271828183.0);
};

class NasCgKernel {
public:
    struct Result {
        int iterations = 0;
        double zeta = 0.0;           ///< eigenvalue-shift estimate
        double final_residual = 0.0;
        double flops = 0.0;
    };

    /// CG-based eigenvalue estimation for the 2-D Laplacian on an n x n
    /// grid (smallest eigenvalue has the known closed form
    /// 2*(1-cos(pi/(n+1))) per dimension).
    static Result run(int n = 24, int outer_iters = 5, int cg_iters = 15);

    /// Analytic smallest eigenvalue of the test operator.
    static double analytic_lambda_min(int n);
};

/// Scalar ADI (alternating-direction implicit) heat-equation stepper with
/// Thomas tridiagonal solves — the structural core of SP (scalar penta ->
/// tri here) and BT (block tri; same sweep structure, denser per-point math).
class AdiKernel {
public:
    AdiKernel(int nx, int ny, int nz, double dt = 0.05);

    /// Advance `steps` time steps. Returns the max-norm change of the last
    /// step (monotonically decreasing toward steady state).
    double advance(int steps);

    [[nodiscard]] const std::vector<double>& field() const { return u_; }
    [[nodiscard]] double max_abs() const;

private:
    void sweep_x();
    void sweep_y();
    void sweep_z();
    static void thomas(std::vector<double>& a, std::vector<double>& b,
                       std::vector<double>& c, std::vector<double>& d);
    [[nodiscard]] std::size_t idx(int i, int j, int k) const {
        return (static_cast<std::size_t>(k) * ny_ + j) * nx_ + i;
    }

    int nx_, ny_, nz_;
    double dt_;
    std::vector<double> u_;
    double last_change_ = 0.0;
};

/// SSOR relaxation for the 7-point Poisson system (LU's numerical core:
/// alternating lower/upper wavefront sweeps).
class SsorKernel {
public:
    SsorKernel(int nx, int ny, int nz, double omega = 1.2);

    struct Result {
        int iterations = 0;
        double initial_residual = 0.0;
        double final_residual = 0.0;
    };

    Result relax(int iterations);

private:
    void sweep(bool forward);
    [[nodiscard]] double residual_norm() const;
    [[nodiscard]] std::size_t idx(int i, int j, int k) const {
        return (static_cast<std::size_t>(k) * ny_ + j) * nx_ + i;
    }

    int nx_, ny_, nz_;
    double omega_;
    std::vector<double> u_, f_;
};

// Simulation specs (calibration notes in the .cpp).
[[nodiscard]] WorkloadSpec nas_lu_spec(int nthreads = 4);
[[nodiscard]] WorkloadSpec nas_bt_spec(int nthreads = 4);
[[nodiscard]] WorkloadSpec nas_cg_spec(int nthreads = 4);
[[nodiscard]] WorkloadSpec nas_ep_spec(int nthreads = 4);
[[nodiscard]] WorkloadSpec nas_sp_spec(int nthreads = 4);

/// All five, in the paper's Fig. 9/10 order.
[[nodiscard]] std::vector<WorkloadSpec> nas_suite(int nthreads = 4);

}  // namespace hpcsec::wl
