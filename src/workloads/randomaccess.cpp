#include "workloads/randomaccess.h"

namespace hpcsec::wl {

RandomAccessKernel::RandomAccessKernel(unsigned log2_size)
    : table_(1ull << log2_size) {
    for (std::uint64_t i = 0; i < table_.size(); ++i) table_[i] = i;
}

std::uint64_t RandomAccessKernel::next_random(std::uint64_t x) {
    // The HPCC generator: x_{n+1} = x_n <<< 1 XOR (poly if top bit set).
    constexpr std::uint64_t kPoly = 0x0000000000000007ULL;
    const bool top = (x >> 63) != 0;
    x <<= 1;
    if (top) x ^= kPoly;
    return x;
}

void RandomAccessKernel::run(std::uint64_t updates, std::uint64_t seed) {
    const std::uint64_t mask = table_.size() - 1;
    std::uint64_t ran = seed;
    for (std::uint64_t u = 0; u < updates; ++u) {
        ran = next_random(ran);
        table_[ran & mask] ^= ran;
    }
    updates_done_ += updates;
}

std::uint64_t RandomAccessKernel::verify_and_count_errors(std::uint64_t updates,
                                                          std::uint64_t seed) {
    run(updates, seed);  // XOR involution: same stream undoes itself
    std::uint64_t errors = 0;
    for (std::uint64_t i = 0; i < table_.size(); ++i) {
        if (table_[i] != i) ++errors;
    }
    return errors;
}

WorkloadSpec randomaccess_spec(int nthreads) {
    // Calibration: Fig. 8 native RandomAccess = 6.5e-5 GUP/s on 4 cores,
    // i.e. 65k updates/s -> ~67.7k cycles per update on the platform. Each
    // update is a dependent chain of DRAM misses: the table greatly exceeds
    // TLB reach, so essentially every reference misses. mem_refs_per_unit
    // captures the whole dependent-access chain per update (load, xor,
    // store, verification reads); with the nested walk at 165 cycles the
    // two-stage penalty is ~25*(165-35) = 3250 cycles (~4.8%), matching the
    // paper's Kitten drop, with Linux losing another ~2% to tick-induced
    // TLB-refill transients and stolen time.
    WorkloadSpec s;
    s.name = "RandomAccess";
    s.metric = "GUP/s";
    s.nthreads = nthreads;
    s.supersteps = 4;  // HPCC runs the update loop in a few chunked passes
    const double total_updates = 320000.0;  // ~5 s at the paper's rate
    s.units_per_thread_step = total_updates / (nthreads * s.supersteps);
    s.metric_per_unit = 1e-9;  // updates -> giga-updates
    s.profile.mem_refs_per_unit = 25.0;
    s.profile.tlb_miss_rate = 1.0;
    s.profile.cycles_per_unit = 67692.0 - 25.0 * 35.0;  // native total ~67.7k
    s.profile.working_set_pages = 4096.0;  // >> TLB capacity; capped by model
    s.measurement_noise_sigma = 0.0006;
    return s;
}

}  // namespace hpcsec::wl
