// HPCC RandomAccess (GUPS): real kernel + simulation spec.
//
// The kernel performs the canonical table ^= stream-of-pseudo-randoms
// update loop. Verification uses the HPCC property that re-applying the
// identical update stream restores the table to its initial contents
// (XOR is an involution).
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace hpcsec::wl {

class RandomAccessKernel {
public:
    /// Table of 2^log2_size words.
    explicit RandomAccessKernel(unsigned log2_size = 20);

    /// Apply `updates` random updates starting from a seed.
    void run(std::uint64_t updates, std::uint64_t seed = 1);

    /// Re-apply the same stream; the table must return to pristine state.
    /// Returns the number of mismatching words (0 == verified).
    [[nodiscard]] std::uint64_t verify_and_count_errors(std::uint64_t updates,
                                                        std::uint64_t seed = 1);

    [[nodiscard]] std::uint64_t table_words() const { return table_.size(); }
    [[nodiscard]] std::uint64_t updates_done() const { return updates_done_; }

private:
    static std::uint64_t next_random(std::uint64_t x);

    std::vector<std::uint64_t> table_;
    std::uint64_t updates_done_ = 0;
};

[[nodiscard]] WorkloadSpec randomaccess_spec(int nthreads = 4);

}  // namespace hpcsec::wl
