#include "workloads/selfish.h"

#include <algorithm>

namespace hpcsec::wl {

void DetourRecorder::observe(sim::SimTime start, sim::SimTime end) {
    ++intervals_;
    if (last_end_ != sim::kTimeNever && start > last_end_) {
        const double gap_us = clock_.to_micros(start - last_end_);
        if (gap_us >= threshold_us_) {
            detours_.push_back({clock_.to_seconds(last_end_), gap_us});
            total_us_ += gap_us;
            if (obs_recorder_ != nullptr) {
                obs_recorder_->span(last_end_, start, obs::EventType::kDetour,
                                    obs_core_, obs_thread_);
            }
            if (obs_metrics_ != nullptr) {
                obs_metrics_->observe(detour_hist_, gap_us);
            }
        }
    }
    last_end_ = end;
}

double DetourRecorder::max_detour_us() const {
    double m = 0.0;
    for (const auto& d : detours_) m = std::max(m, d.duration_us);
    return m;
}

void DetourRecorder::clear() {
    detours_.clear();
    intervals_ = 0;
    total_us_ = 0.0;
    last_end_ = sim::kTimeNever;
}

SelfishBenchmark::SelfishBenchmark(int nthreads, sim::ClockSpec clock,
                                   double threshold_us)
    : workload_(spinner_spec(nthreads)) {
    recorders_.reserve(static_cast<std::size_t>(nthreads));
    for (int i = 0; i < nthreads; ++i) {
        recorders_.emplace_back(clock, threshold_us);
        DetourRecorder& rec = recorders_.back();
        workload_.thread(i).interval_hook = [&rec](sim::SimTime s, sim::SimTime e) {
            rec.observe(s, e);
        };
    }
}

void SelfishBenchmark::attach_obs(obs::Obs& obs) {
    const auto hist = obs.metrics.histogram("wl.detour_us");
    for (int i = 0; i < nthreads(); ++i) {
        recorders_[static_cast<std::size_t>(i)].attach_obs(&obs.recorder,
                                                           &obs.metrics, hist, i, i);
    }
}

std::vector<Detour> SelfishBenchmark::all_detours() const {
    std::vector<Detour> all;
    for (const auto& r : recorders_) {
        all.insert(all.end(), r.detours().begin(), r.detours().end());
    }
    std::sort(all.begin(), all.end(),
              [](const Detour& a, const Detour& b) { return a.at_seconds < b.at_seconds; });
    return all;
}

}  // namespace hpcsec::wl
