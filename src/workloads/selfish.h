// Selfish-detour benchmark (Figs. 4-6).
//
// The real benchmark spins reading the cycle counter and records a "detour"
// whenever consecutive samples are further apart than a threshold — i.e.
// whenever the OS stole the CPU. In the simulation the spinner thread
// receives its exact on-CPU intervals from the executor; gaps between
// consecutive intervals are precisely the time the kernel/hypervisor/other
// work held the core, which is what the hardware benchmark measures.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/obs.h"
#include "sim/time.h"
#include "workloads/workload.h"

namespace hpcsec::wl {

struct Detour {
    double at_seconds;      ///< when the detour began
    double duration_us;     ///< how long the loop was off-CPU
};

class DetourRecorder {
public:
    DetourRecorder(sim::ClockSpec clock, double threshold_us)
        : clock_(clock), threshold_us_(threshold_us) {}

    void observe(sim::SimTime start, sim::SimTime end);

    /// Mirror every detour into the structured recorder (a kDetour span
    /// covering the off-CPU gap) and a registry histogram (µs).
    void attach_obs(obs::SpanRecorder* recorder, obs::MetricsRegistry* metrics,
                    obs::MetricsRegistry::Handle detour_hist, int core,
                    int thread) {
        obs_recorder_ = recorder;
        obs_metrics_ = metrics;
        detour_hist_ = detour_hist;
        obs_core_ = core;
        obs_thread_ = thread;
    }

    [[nodiscard]] const std::vector<Detour>& detours() const { return detours_; }
    [[nodiscard]] std::uint64_t intervals() const { return intervals_; }
    [[nodiscard]] double total_detour_us() const { return total_us_; }
    [[nodiscard]] double max_detour_us() const;
    void clear();

private:
    sim::ClockSpec clock_;
    double threshold_us_;
    sim::SimTime last_end_ = sim::kTimeNever;
    std::vector<Detour> detours_;
    std::uint64_t intervals_ = 0;
    double total_us_ = 0.0;
    obs::SpanRecorder* obs_recorder_ = nullptr;
    obs::MetricsRegistry* obs_metrics_ = nullptr;
    obs::MetricsRegistry::Handle detour_hist_ = 0;
    int obs_core_ = -1;
    int obs_thread_ = -1;
};

/// A spinner workload with one recorder per thread.
class SelfishBenchmark {
public:
    SelfishBenchmark(int nthreads, sim::ClockSpec clock, double threshold_us = 1.0);

    [[nodiscard]] ParallelWorkload& workload() { return workload_; }
    [[nodiscard]] DetourRecorder& recorder(int thread) {
        return recorders_.at(static_cast<std::size_t>(thread));
    }
    [[nodiscard]] int nthreads() const { return workload_.nthreads(); }

    /// Wire every per-thread recorder into the platform's observability
    /// sinks ("wl.detour_us" histogram + kDetour spans; thread i is assumed
    /// pinned to core i, the harness's placement).
    void attach_obs(obs::Obs& obs);

    /// All detours across threads, for aggregate statistics.
    [[nodiscard]] std::vector<Detour> all_detours() const;

private:
    ParallelWorkload workload_;
    std::vector<DetourRecorder> recorders_;
};

}  // namespace hpcsec::wl
