// Selfish-detour benchmark (Figs. 4-6).
//
// The real benchmark spins reading the cycle counter and records a "detour"
// whenever consecutive samples are further apart than a threshold — i.e.
// whenever the OS stole the CPU. In the simulation the spinner thread
// receives its exact on-CPU intervals from the executor; gaps between
// consecutive intervals are precisely the time the kernel/hypervisor/other
// work held the core, which is what the hardware benchmark measures.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "workloads/workload.h"

namespace hpcsec::wl {

struct Detour {
    double at_seconds;      ///< when the detour began
    double duration_us;     ///< how long the loop was off-CPU
};

class DetourRecorder {
public:
    DetourRecorder(sim::ClockSpec clock, double threshold_us)
        : clock_(clock), threshold_us_(threshold_us) {}

    void observe(sim::SimTime start, sim::SimTime end);

    [[nodiscard]] const std::vector<Detour>& detours() const { return detours_; }
    [[nodiscard]] std::uint64_t intervals() const { return intervals_; }
    [[nodiscard]] double total_detour_us() const { return total_us_; }
    [[nodiscard]] double max_detour_us() const;
    void clear();

private:
    sim::ClockSpec clock_;
    double threshold_us_;
    sim::SimTime last_end_ = sim::kTimeNever;
    std::vector<Detour> detours_;
    std::uint64_t intervals_ = 0;
    double total_us_ = 0.0;
};

/// A spinner workload with one recorder per thread.
class SelfishBenchmark {
public:
    SelfishBenchmark(int nthreads, sim::ClockSpec clock, double threshold_us = 1.0);

    [[nodiscard]] ParallelWorkload& workload() { return workload_; }
    [[nodiscard]] DetourRecorder& recorder(int thread) {
        return recorders_.at(static_cast<std::size_t>(thread));
    }
    [[nodiscard]] int nthreads() const { return workload_.nthreads(); }

    /// All detours across threads, for aggregate statistics.
    [[nodiscard]] std::vector<Detour> all_detours() const;

private:
    ParallelWorkload workload_;
    std::vector<DetourRecorder> recorders_;
};

}  // namespace hpcsec::wl
