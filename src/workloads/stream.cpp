#include "workloads/stream.h"

#include <cmath>

namespace hpcsec::wl {

StreamKernel::StreamKernel(std::size_t n, double scalar)
    : a_(n, 1.0), b_(n, 2.0), c_(n, 0.0), scalar_(scalar) {}

void StreamKernel::run(int iters) {
    const std::size_t n = a_.size();
    for (int it = 0; it < iters; ++it) {
        for (std::size_t i = 0; i < n; ++i) c_[i] = a_[i];              // copy
        for (std::size_t i = 0; i < n; ++i) b_[i] = scalar_ * c_[i];    // scale
        for (std::size_t i = 0; i < n; ++i) c_[i] = a_[i] + b_[i];      // add
        for (std::size_t i = 0; i < n; ++i) a_[i] = b_[i] + scalar_ * c_[i];  // triad
    }
    iters_done_ += iters;
}

bool StreamKernel::verify(double tolerance) const {
    // Replay the recurrence on scalars (the reference STREAM check).
    double aj = 1.0, bj = 2.0, cj = 0.0;
    for (int it = 0; it < iters_done_; ++it) {
        cj = aj;
        bj = scalar_ * cj;
        cj = aj + bj;
        aj = bj + scalar_ * cj;
    }
    double err_a = 0.0, err_b = 0.0, err_c = 0.0;
    for (std::size_t i = 0; i < a_.size(); ++i) {
        err_a += std::fabs(a_[i] - aj);
        err_b += std::fabs(b_[i] - bj);
        err_c += std::fabs(c_[i] - cj);
    }
    const auto n = static_cast<double>(a_.size());
    return err_a / n <= std::fabs(aj) * tolerance &&
           err_b / n <= std::fabs(bj) * tolerance &&
           err_c / n <= std::fabs(cj) * tolerance;
}

WorkloadSpec stream_spec(int nthreads) {
    // Calibration: the paper's Fig. 8 reports 59.6 (transfer units) for
    // native Kitten on the 4-core A53 @ 1.1 GHz. With units == bytes moved,
    // 4 * 1.1e9 / 59.6e6 = 73.8 cycles per unit lands the native score on
    // the paper's number. Streaming access is TLB-friendly: one miss per
    // 4 KiB page of sequential doubles.
    WorkloadSpec s;
    s.name = "Stream";
    s.metric = "MB/s";
    s.nthreads = nthreads;
    // 20 rounds over 2 MiB arrays with a barrier per round (OpenMP-style).
    s.supersteps = 20;
    const double bytes_per_round = 10.0 * (1u << 20) * sizeof(double) * 4;
    s.units_per_thread_step = bytes_per_round / nthreads;
    s.metric_per_unit = 1e-6;  // bytes -> MB
    s.profile.cycles_per_unit = 73.7;
    s.profile.mem_refs_per_unit = 0.125;      // one 8-byte reference per byte/8
    s.profile.tlb_miss_rate = 1.0 / 512.0;    // sequential page stride
    s.profile.working_set_pages = 24.0;       // streaming: tiny reuse window
    s.measurement_noise_sigma = 0.0023;       // paper stdev 0.14/59.6
    return s;
}

}  // namespace hpcsec::wl
