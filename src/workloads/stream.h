// STREAM memory benchmark: real kernels + simulation spec.
//
// The kernel code computes the canonical Copy/Scale/Add/Triad sequence and
// self-verifies against the analytic closed form (as the reference STREAM
// does); the characterization (bytes moved, TLB behaviour) parameterizes
// the simulated workload for Figs. 7-8.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace hpcsec::wl {

class StreamKernel {
public:
    explicit StreamKernel(std::size_t n = 1u << 20, double scalar = 3.0);

    /// Run `iters` rounds of copy/scale/add/triad over the arrays.
    void run(int iters);

    /// Verify array contents against the closed-form expectation.
    [[nodiscard]] bool verify(double tolerance = 1e-8) const;

    [[nodiscard]] std::size_t n() const { return a_.size(); }
    [[nodiscard]] int iterations() const { return iters_done_; }

    /// Bytes moved per full round (the STREAM counting convention:
    /// copy 2N, scale 2N, add 3N, triad 3N words).
    [[nodiscard]] double bytes_per_round() const {
        return 10.0 * static_cast<double>(n()) * sizeof(double);
    }

    [[nodiscard]] const std::vector<double>& a() const { return a_; }

private:
    std::vector<double> a_, b_, c_;
    double scalar_;
    int iters_done_ = 0;
};

/// Simulation spec for the Pine A64 run (see calibration note in the .cpp).
[[nodiscard]] WorkloadSpec stream_spec(int nthreads = 4);

}  // namespace hpcsec::wl
