#include "workloads/workload.h"

#include <stdexcept>

namespace hpcsec::wl {

WorkThread::WorkThread(ParallelWorkload& owner, int index)
    : owner_(&owner),
      index_(index),
      label_(owner.spec().name + "/t" + std::to_string(index)),
      remaining_(owner.spec().units_per_thread_step) {}

double WorkThread::remaining_units() const {
    switch (phase_) {
        case Phase::kWorking: return remaining_;
        case Phase::kSpinning: return 1e30;  // busy-wait at the barrier
        case Phase::kDone: return 0.0;
    }
    return 0.0;
}

void WorkThread::advance(double units, sim::SimTime now) {
    if (phase_ != Phase::kWorking) return;  // spin cycles are not progress
    if (units >= remaining_) {
        remaining_ = 0.0;
        phase_ = Phase::kSpinning;
        // thread_arrived may synchronously refill us (last arriver) or mark
        // the workload finished.
        owner_->thread_arrived(index_, now);
    } else {
        remaining_ -= units;
    }
}

const arch::WorkProfile& WorkThread::profile() const { return owner_->spec().profile; }

void WorkThread::on_interval(sim::SimTime start, sim::SimTime end) {
    if (interval_hook) interval_hook(start, end);
}

ParallelWorkload::ParallelWorkload(WorkloadSpec spec) : spec_(std::move(spec)) {
    if (spec_.nthreads <= 0 || spec_.supersteps <= 0) {
        throw std::invalid_argument("ParallelWorkload: bad thread/step counts");
    }
    for (int i = 0; i < spec_.nthreads; ++i) {
        threads_.push_back(std::make_unique<WorkThread>(*this, i));
    }
}

void ParallelWorkload::set_mode(arch::TranslationMode m) {
    for (auto& t : threads_) t->set_mode(m);
}

void ParallelWorkload::reset() {
    step_ = 0;
    arrived_ = 0;
    finished_ = false;
    finish_time_ = 0;
    step_times_.clear();
    for (auto& t : threads_) t->refill(spec_.units_per_thread_step);
}

void ParallelWorkload::mark_all_done() {
    for (auto& t : threads_) t->mark_done();
}

void ParallelWorkload::thread_arrived(int /*index*/, sim::SimTime now) {
    ++arrived_;
    if (arrived_ < spec_.nthreads) return;
    // Barrier complete.
    arrived_ = 0;
    ++step_;
    step_times_.push_back(now);
    if (step_ < spec_.supersteps) {
        for (auto& t : threads_) t->refill(spec_.units_per_thread_step);
        if (on_release) on_release();
    } else {
        finished_ = true;
        finish_time_ = now;
        mark_all_done();
        if (on_finished) on_finished(now);
    }
}

WorkloadSpec spinner_spec(int nthreads) {
    WorkloadSpec s;
    s.name = "spinner";
    s.metric = "iterations";
    s.nthreads = nthreads;
    s.supersteps = 1;
    s.units_per_thread_step = 1e30;  // effectively infinite
    s.profile.cycles_per_unit = 1.0;
    s.profile.mem_refs_per_unit = 0.0;
    s.profile.tlb_miss_rate = 0.0;
    s.profile.working_set_pages = 4.0;  // tight loop
    return s;
}

}  // namespace hpcsec::wl
