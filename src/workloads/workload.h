// Parallel workload framework.
//
// Workloads execute as one thread per VCPU/core in BSP (bulk-synchronous)
// supersteps: every thread must finish step k before any starts k+1 — the
// barrier structure of the real benchmarks (CG dot products, ADI sweep
// boundaries, SSOR wavefronts). OS noise on one core therefore delays all
// cores, which is exactly the amplification mechanism the paper's LWK
// scheduling avoids.
//
// A workload's cost profile (cycles/unit, TLB behaviour) is extracted from
// the real computational kernels in this directory; see each *_spec()
// factory for the calibration notes.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "arch/exec.h"
#include "sim/time.h"

namespace hpcsec::wl {

struct WorkloadSpec {
    std::string name;
    std::string metric;             ///< "GFlops", "MB/s", "GUP/s", "Mop/s"
    int nthreads = 4;
    int supersteps = 1;             ///< barrier count is supersteps - 1
    double units_per_thread_step = 0.0;
    arch::WorkProfile profile;
    double metric_per_unit = 1.0;   ///< score = units_total * this / seconds
    double measurement_noise_sigma = 0.0;  ///< run-to-run variation (fraction)

    [[nodiscard]] double total_units() const {
        return units_per_thread_step * nthreads * supersteps;
    }
};

class ParallelWorkload;

/// One benchmark thread (maps onto one VCPU or one native core).
///
/// Barrier semantics are OpenMP-style busy-wait: a thread that reaches the
/// barrier *spins on its CPU* (remaining_units reports "infinite" so the
/// executor keeps it running) until the last arriver releases the step.
/// Spin time is on-CPU but is not counted as work progress.
class WorkThread : public arch::Runnable {
public:
    enum class Phase : std::uint8_t { kWorking, kSpinning, kDone };

    WorkThread(ParallelWorkload& owner, int index);

    [[nodiscard]] std::string_view label() const override { return label_; }
    [[nodiscard]] double remaining_units() const override;
    void advance(double units, sim::SimTime now) override;
    [[nodiscard]] const arch::WorkProfile& profile() const override;
    [[nodiscard]] arch::TranslationMode mode() const override { return mode_; }
    void on_interval(sim::SimTime start, sim::SimTime end) override;

    void set_mode(arch::TranslationMode m) { mode_ = m; }
    void refill(double units) {
        remaining_ = units;
        phase_ = Phase::kWorking;
    }
    void mark_done() { phase_ = Phase::kDone; }
    [[nodiscard]] Phase phase() const { return phase_; }
    [[nodiscard]] int index() const { return index_; }

    /// Interval observer (used by the selfish-detour recorder).
    std::function<void(sim::SimTime, sim::SimTime)> interval_hook;

private:
    ParallelWorkload* owner_;
    int index_;
    std::string label_;
    double remaining_ = 0.0;
    Phase phase_ = Phase::kWorking;
    arch::TranslationMode mode_ = arch::TranslationMode::kNative;
};

class ParallelWorkload {
public:
    explicit ParallelWorkload(WorkloadSpec spec);

    [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }
    [[nodiscard]] int nthreads() const { return spec_.nthreads; }
    [[nodiscard]] WorkThread& thread(int i) { return *threads_.at(static_cast<std::size_t>(i)); }

    void set_mode(arch::TranslationMode m);

    /// Reset to step 0 with full units (for reuse across trials).
    void reset();

    [[nodiscard]] bool finished() const { return finished_; }
    [[nodiscard]] int current_step() const { return step_; }
    [[nodiscard]] sim::SimTime finish_time() const { return finish_time_; }

    /// Completion timestamp of every superstep barrier (for trace-based
    /// scale composition; see cluster::ScaleModel).
    [[nodiscard]] const std::vector<sim::SimTime>& step_completion_times() const {
        return step_times_;
    }

    /// All threads were refilled for the next superstep (barrier release);
    /// the hosting kernel should wake its blocked threads/VCPUs.
    std::function<void()> on_release;
    /// The final superstep completed.
    std::function<void(sim::SimTime)> on_finished;

    /// Benchmark score in spec().metric units given elapsed seconds.
    [[nodiscard]] double score(double seconds) const {
        return spec_.total_units() * spec_.metric_per_unit / seconds;
    }

    // Called by WorkThread.
    void thread_arrived(int index, sim::SimTime now);

    /// Force every thread to the done state (end of run).
    void mark_all_done();

private:
    WorkloadSpec spec_;
    std::vector<std::unique_ptr<WorkThread>> threads_;
    int step_ = 0;
    int arrived_ = 0;
    bool finished_ = false;
    sim::SimTime finish_time_ = 0;
    std::vector<sim::SimTime> step_times_;
};

/// A run-forever spinner (selfish-detour's execution shape).
[[nodiscard]] WorkloadSpec spinner_spec(int nthreads);

}  // namespace hpcsec::wl
