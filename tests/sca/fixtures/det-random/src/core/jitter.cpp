#include <random>

int roll() {
    std::mt19937 gen(42);
    return static_cast<int>(gen());
}

int c_roll() {
    return rand();
}
