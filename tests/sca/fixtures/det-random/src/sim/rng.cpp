#include <random>

// The blessed engine file (config random_allowed_files): std engines are
// legal here and only here.
unsigned long blessed() {
    std::mt19937_64 eng(1);
    return eng();
}
