#include <string>
#include <unordered_map>

struct Export {
    std::unordered_map<std::string, double> gauges;
    std::unordered_map<const void*, int> by_ptr;

    double sum() const {
        double s = 0;
        for (const auto& kv : gauges) s += kv.second;
        return s;
    }
    int first_ptr() const {
        return by_ptr.begin()->second;
    }
    double lookup(const std::string& k) const {
        return gauges.at(k);
    }
};
