#include <chrono>

double now_us() {
    auto t = std::chrono::steady_clock::now();
    return static_cast<double>(t.time_since_epoch().count());
}

long host_probe() {
    // sca-suppress(det-wall-clock): host profiling shim, not simulated time
    return std::chrono::system_clock::now().time_since_epoch().count();
}
