#pragma once

enum class Call {
    kRun = 0,
    kStop = 1,
    kQuery = 2,
};
inline constexpr int kCallCount = 2;
