#include "hafnium/hypercall.h"

struct Row {
    Call call;
    const char* name;
};
static const Row kCallTable[] = {{
    {Call::kRun, "run"},
    {Call::kStop, "stop"},
    {Call::kStop, "stop-again"},
}};
