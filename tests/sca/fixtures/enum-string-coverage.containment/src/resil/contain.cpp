#include "resil/contain.h"

// Deliberately stale: kEmbargoed was added to the enum but not here.
const char* to_string(ContainmentPolicy p) {
    switch (p) {
        case ContainmentPolicy::kDetected: return "detected";
        case ContainmentPolicy::kDumped: return "dumped";
        case ContainmentPolicy::kQuarantined: return "quarantined";
        case ContainmentPolicy::kReverified: return "reverified";
        default: return "?";
    }
}
