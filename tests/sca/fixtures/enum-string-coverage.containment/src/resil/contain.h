#pragma once

// Mirror of the real resil::ContainmentPolicy shape: a new pipeline step
// added to the enum must show up in to_string or the gate fails.
enum class ContainmentPolicy {
    kDetected,
    kDumped,
    kQuarantined,
    kReverified,
    kEmbargoed,
};

const char* to_string(ContainmentPolicy p);
