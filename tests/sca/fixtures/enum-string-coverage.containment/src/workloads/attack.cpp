#include "workloads/attack.h"

const char* to_string(AttackKind k) {
    switch (k) {
        case AttackKind::kHeartbleed: return "heartbleed";
        case AttackKind::kVtable: return "vtable";
        case AttackKind::kSrop: return "srop";
    }
    return "?";
}
