#pragma once

// Mirror of the real workloads::AttackKind shape; fully covered below, so
// this half of the fixture must stay finding-free.
enum class AttackKind {
    kHeartbleed,
    kVtable,
    kSrop,
};

const char* to_string(AttackKind k);
