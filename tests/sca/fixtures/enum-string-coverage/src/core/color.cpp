#include "core/color.h"

const char* to_string(Color c) {
    switch (c) {
        case Color::kRed: return "red";
        case Color::kGreen: return "green";
        default: return "?";
    }
}
