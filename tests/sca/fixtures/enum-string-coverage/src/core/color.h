#pragma once

enum class Color { kRed, kGreen, kBlue };

const char* to_string(Color c);
