enum class Phase { kInit, kRun, kDone };

const char* to_string(Phase p) {
    switch (p) {
        case Phase::kInit: return "init";
        case Phase::kRun: return "run";
        default: return "?";
    }
}

int rank(Phase p) {
    switch (p) {
        case Phase::kInit: return 0;
        case Phase::kRun: return 1;
    }
    return -1;
}

int coarse(Phase p) {
    switch (p) {
        case Phase::kInit: return 0;
        default: return 1;
    }
}
