#pragma once

enum class Call {
    kRun = 0,
    kShare = 1,
};
inline constexpr int kCallCount = 2;
