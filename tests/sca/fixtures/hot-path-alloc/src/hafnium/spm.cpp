#include "hafnium/hypercall.h"

#include <memory>
#include <vector>

struct Grant {
    int vm;
};

struct Spm {
    int on_run();
    int on_share();
    std::vector<Grant> grants_;
    std::unique_ptr<Grant> scratch_;
};

int Spm::on_run() { return 0; }

int Spm::on_share() {
    grants_.push_back({1});  // finding: heap growth in a call handler
    scratch_ = std::make_unique<Grant>();  // finding: make_unique in handler
    return 0;
}

struct Row {
    Call call;
    int (Spm::*fn)();
};
static const Row kCallTable[] = {{
    {Call::kRun, &Spm::on_run},
    {Call::kShare, &Spm::on_share},
}};
