#include <memory>
#include <vector>

struct Timer {
    void fire();
    std::vector<int> pending_;
};

struct Engine {
    void dispatch_one();
    void drain();
    std::vector<int> log_;
    std::vector<int> slab_;
};

// Reached only via the hot_path_extra_edges std::function seam.
void Timer::fire() {
    pending_.push_back(1);  // finding: heap growth on the tick path
}

void Engine::dispatch_one() {
    log_.emplace_back(7);  // finding: heap growth in the dispatch loop
    drain();
}

void Engine::drain() {
    // sca-suppress(hot-path-alloc): slab freelist, warmed after boot
    slab_.push_back(3);
    int* scratch = new int[4];  // finding: non-placement new
    delete[] scratch;
}

// Not reachable from any entry point: no finding even though it allocates.
void cold_report() {
    auto buf = std::make_unique<int[]>(64);
    (void)buf;
}
