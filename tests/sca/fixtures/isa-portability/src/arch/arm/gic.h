// ARM backend header (fixture stand-in).
#pragma once
