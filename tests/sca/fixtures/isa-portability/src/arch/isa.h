// The generic seam: allowed to include backends (it builds them).
#pragma once
#include "arch/arm/gic.h"
#include "arch/riscv/plic.h"
