// RISC-V backend header (fixture stand-in).
#pragma once
