// Out-of-layer consumer: must go through arch/isa.h, not a backend.
#include "arch/arm/gic.h"
#include "arch/isa.h"
