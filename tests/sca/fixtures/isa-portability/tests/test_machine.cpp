// Tests are covered too: backend-specific tests silently drop coverage
// of the other ISA.
#include "arch/isa.h"
#include "arch/riscv/plic.h"
