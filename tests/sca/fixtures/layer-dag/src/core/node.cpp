#include "sim/engine.h"
