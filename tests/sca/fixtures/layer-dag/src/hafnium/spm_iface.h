#pragma once
#include "obs/probe.h"
#include "sim/engine.h"
