#pragma once
#include "hafnium/spm_iface.h"
#include "sim/engine.h"
