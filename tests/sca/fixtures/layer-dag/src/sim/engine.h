#pragma once
#include <cstdint>
