#include <mutex>
#include <vector>

struct Registry {
    std::vector<int> entries_;
    std::mutex mu_;
    void add(int v);
    void drop_all();
};

void Registry::add(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(v);
}

void Registry::drop_all() {
    entries_.clear();
}
