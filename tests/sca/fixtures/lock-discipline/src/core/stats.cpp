#include <mutex>

static int g_counter = 0;
static const int g_limit = 8;
// guarded-by: g_mu (registration path only)
static int g_registered = 0;
static std::mutex g_mu;

void bump() { ++g_counter; }
