#include "hafnium/hypercall.h"

#include <stdexcept>

struct Spm {
    int on_run();
    int on_stop();
    int hypercall(int n);
};

int validate(int x) {
    if (x < 0) {
        throw std::invalid_argument("negative");
    }
    return x;
}

int checked(int x) {
    if (x > 100) {
        throw std::out_of_range("too big");
    }
    return x;
}

int Spm::on_run() { return validate(1); }

int Spm::on_stop() {
    // sca-suppress(no-throw-guest-path): argument is a compile-time constant
    return checked(7);
}

int Spm::hypercall(int n) {
    try {
        return validate(n);
    } catch (const std::exception&) {
        return -1;
    }
}

struct Row {
    Call call;
    int (Spm::*fn)();
};
static const Row kCallTable[] = {{
    {Call::kRun, &Spm::on_run},
    {Call::kStop, &Spm::on_stop},
}};
