#include "core/engine.h"

namespace {
void sink(const char*, std::uint64_t) {}
}  // namespace

void Engine::publish_metrics() {
    sink("engine.ticks", stats_.ticks);
}
