#pragma once

#include <cstdint>

class Engine {
  public:
    struct Stats {
        std::uint64_t ticks = 0;
        std::uint64_t drops = 0;
    };
    void publish_metrics();

  private:
    Stats stats_;
};
