// sca-suppress(det-wall-clock): a well-formed suppression is not a finding
int ok() { return 0; }

// sca-suppress(no-such-rule): points at a rule that does not exist
int a() { return 1; }

// sca-suppress(det-random)
int b() { return 2; }
