#!/usr/bin/env python3
"""Repository-specific static lint gate (registered as ctest label "lint").

Checks that cannot be expressed in the type system and that clang-tidy does
not know about:

  1. Enum/to_string coverage: every enumerator of the listed enums must
     appear as an explicit `Enum::kName` case in its to_string translation
     unit, so log output never degrades to "?" silently when an enum grows.

  2. Stats completeness: every field of each listed class's nested Stats
     struct (hafnium::Spm, resil::Supervisor, resil::ChaosInjector) must be
     published by that class's publish_metrics (the obs reconciliation rule
     in src/check depends on Spm's staying in sync; the resil gauges feed
     the harness's per-trial snapshots).

  3. Dispatch-table completeness: every hafnium::Call enumerator must have
     exactly one CallDescriptor row in Spm's kCallTable (src/hafnium/spm.cpp)
     and the table must not carry rows for calls that no longer exist. A
     call that is declared but not dispatchable would silently return
     kInvalid to guests.

  4. Bench-report schema: every BENCH_*.json under the tree (bench binaries
     and the harness's write_bench_report both emit them) must parse as
     JSON with a "bench" string, a "metrics" array whose rows carry
     name/mean/stdev/n, and no NaN/Inf values — the perf-trajectory tooling
     and the CI artifact upload choke on anything else.

Exit status 0 = clean, 1 = findings (printed one per line).
"""

import json
import math
import re
import sys
from pathlib import Path

# Enum name -> (header that declares it, source file whose to_string must
# cover every enumerator).
ENUMS = {
    "Call": ("src/hafnium/hypercall.h", "src/hafnium/hypercall.cpp"),
    "HfError": ("src/hafnium/hypercall.h", "src/hafnium/hypercall.cpp"),
    "VcpuState": ("src/hafnium/vm.h", "src/hafnium/vm.cpp"),
    "ExitReason": ("src/hafnium/vm.h", "src/hafnium/vm.cpp"),
    "VmRole": ("src/hafnium/manifest.h", "src/hafnium/manifest.cpp"),
    "Rule": ("src/check/check.h", "src/check/check.cpp"),
    "Mode": ("src/check/check.h", "src/check/check.cpp"),
    "CorruptionKind": ("src/check/corrupt.h", "src/check/corrupt.cpp"),
    "EventType": ("src/obs/events.h", "src/obs/recorder.cpp"),
    "ProfPath": ("src/obs/profiler.h", "src/obs/profiler.cpp"),
    "VmHealth": ("src/resil/resil.h", "src/resil/resil.cpp"),
    "FailureKind": ("src/resil/resil.h", "src/resil/resil.cpp"),
    "ChaosFault": ("src/resil/chaos.h", "src/resil/chaos.cpp"),
}

# Class name -> (header declaring its nested `struct Stats`, source defining
# `<Class>::publish_metrics`). Each header must contain exactly one
# `struct Stats` for the first-match regex to be correct.
STATS_CLASSES = [
    ("Spm", "src/hafnium/spm.h", "src/hafnium/spm.cpp"),
    ("Supervisor", "src/resil/resil.h", "src/resil/resil.cpp"),
    ("ChaosInjector", "src/resil/chaos.h", "src/resil/chaos.cpp"),
]


def strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


def enum_members(header_text: str, enum: str) -> list[str]:
    m = re.search(
        r"enum\s+class\s+" + re.escape(enum) + r"\b[^{]*\{(.*?)\};",
        strip_comments(header_text),
        flags=re.S,
    )
    if m is None:
        return []
    return re.findall(r"\b(k[A-Za-z0-9_]+)\b\s*(?:=[^,}]*)?[,}\s]", m.group(1) + ",")


def check_enum_coverage(root: Path) -> list[str]:
    problems = []
    for enum, (header, source) in ENUMS.items():
        header_text = (root / header).read_text()
        members = enum_members(header_text, enum)
        if not members:
            problems.append(f"{header}: enum {enum} not found (lint table stale?)")
            continue
        source_text = strip_comments((root / source).read_text())
        for member in members:
            if not re.search(rf"\b{enum}::{member}\b", source_text):
                problems.append(
                    f"{source}: to_string({enum}) misses {enum}::{member}"
                )
    return problems


def stats_fields(header_text: str) -> list[str]:
    m = re.search(r"struct\s+Stats\s*\{(.*?)\};", strip_comments(header_text), re.S)
    if m is None:
        return []
    return re.findall(r"\b(\w+)\s*=\s*0\s*;", m.group(1))


def check_stats_published(root: Path) -> list[str]:
    problems = []
    for cls, header, source in STATS_CLASSES:
        fields = stats_fields((root / header).read_text())
        if not fields:
            problems.append(f"{header}: {cls}::Stats not found (lint table stale?)")
            continue
        source_text = strip_comments((root / source).read_text())
        m = re.search(
            rf"void\s+{cls}::publish_metrics\s*\(\)\s*\{{(.*?)\n\}}",
            source_text,
            re.S,
        )
        if m is None:
            problems.append(f"{source}: {cls}::publish_metrics not found")
            continue
        body = m.group(1)
        for field in fields:
            if not re.search(rf"\bstats_\.{field}\b", body):
                problems.append(
                    f"{source}: {cls}::publish_metrics does not publish "
                    f"Stats::{field}"
                )
    return problems


def check_dispatch_table(root: Path) -> list[str]:
    header_text = (root / "src/hafnium/hypercall.h").read_text()
    members = enum_members(header_text, "Call")
    if not members:
        return ["src/hafnium/hypercall.h: enum Call not found (lint table stale?)"]
    source_text = strip_comments((root / "src/hafnium/spm.cpp").read_text())
    m = re.search(r"kCallTable\s*(?:\[\]|\{\{)?\s*=?\s*\{\{(.*?)\}\};", source_text, re.S)
    if m is None:
        return ["src/hafnium/spm.cpp: kCallTable not found (dispatch gate stale?)"]
    table = m.group(1)
    problems = []
    for member in members:
        rows = len(re.findall(rf"\bCall::{member}\b", table))
        if rows == 0:
            problems.append(
                f"src/hafnium/spm.cpp: kCallTable has no CallDescriptor row "
                f"for Call::{member}"
            )
        elif rows > 1:
            problems.append(
                f"src/hafnium/spm.cpp: kCallTable lists Call::{member} "
                f"{rows} times"
            )
    for used in set(re.findall(r"\bCall::(k[A-Za-z0-9_]+)\b", table)):
        if used not in members:
            problems.append(
                f"src/hafnium/spm.cpp: kCallTable row references unknown "
                f"Call::{used}"
            )
    count = re.search(r"kCallCount\s*=\s*(\d+)", strip_comments(header_text))
    if count is not None and int(count.group(1)) != len(members):
        problems.append(
            f"src/hafnium/hypercall.h: kCallCount = {count.group(1)} but enum "
            f"Call has {len(members)} enumerators"
        )
    return problems


def check_bench_schema(root: Path) -> list[str]:
    problems = []
    for path in sorted(root.rglob("BENCH_*.json")):
        rel = path.relative_to(root)
        try:
            # parse_constant fires on the non-JSON tokens NaN/Infinity.
            doc = json.loads(path.read_text(), parse_constant=lambda c: math.nan)
        except (OSError, ValueError) as err:
            problems.append(f"{rel}: unparsable bench report ({err})")
            continue
        if not isinstance(doc, dict):
            problems.append(f"{rel}: top level is not an object")
            continue
        if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
            problems.append(f'{rel}: missing/empty "bench" name')
        rows = doc.get("metrics")
        if not isinstance(rows, list) or not rows:
            problems.append(f'{rel}: missing/empty "metrics" array')
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"{rel}: metrics[{i}] is not an object")
                continue
            if not isinstance(row.get("name"), str) or not row.get("name"):
                problems.append(f'{rel}: metrics[{i}] missing "name"')
            for key in ("mean", "stdev", "n"):
                v = row.get(key)
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    problems.append(f'{rel}: metrics[{i}] missing numeric "{key}"')
                elif math.isnan(v) or math.isinf(v):
                    problems.append(f'{rel}: metrics[{i}] "{key}" is NaN/Inf')
    return problems


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
    problems = (
        check_enum_coverage(root)
        + check_stats_published(root)
        + check_dispatch_table(root)
        + check_bench_schema(root)
    )
    for p in problems:
        print(p)
    if problems:
        print(f"lint: {len(problems)} problem(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
