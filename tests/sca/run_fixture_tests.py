#!/usr/bin/env python3
"""Golden-fixture tests for tools/sca (registered as ctest `sca_fixtures`).

Each tests/sca/fixtures/<case>/ directory is a miniature source tree; the
case name up to the first '.' is the rule id to run (so `layer-dag` and
`layer-dag.cycle` both exercise layer-dag). Running

    sca --root <case> --rules <rule-id>

must reproduce <case>/expected.txt line for line in the finding format
`path:line: [rule] message`, and must exit 1 when findings are expected,
0 when the tree is clean. On top of the per-rule goldens this harness
checks the cross-cutting CLI semantics on the det-wall-clock fixture:
baseline round-trip (--write-baseline then --baseline => exit 0) and the
SARIF report (suppressed finding carries an inSource suppression).
"""

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else HERE.parents[1]
SCA = ROOT / "tools" / "sca"
FIXTURES = HERE / "fixtures"

_FINDING_RE = re.compile(r"^\S+:\d+: \[[\w-]+\] ")


def run_sca(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(SCA)] + args,
                          capture_output=True, text=True)


def finding_lines(stdout: str) -> list[str]:
    return [l for l in stdout.splitlines() if _FINDING_RE.match(l)]


def check_fixture(case: Path, failures: list[str]) -> None:
    rule_id = case.name.split(".")[0]
    expected = [l for l in (case / "expected.txt").read_text().splitlines()
                if l.strip()]
    r = run_sca(["--root", str(case), "--rules", rule_id])
    got = finding_lines(r.stdout)
    want_exit = 1 if expected else 0
    if r.returncode != want_exit:
        failures.append(f"{case.name}: exit {r.returncode}, want {want_exit}\n"
                        f"{r.stdout}{r.stderr}")
    if got != expected:
        failures.append(
            f"{case.name}: findings differ\n--- expected:\n"
            + "\n".join(expected) + "\n--- got:\n" + "\n".join(got))


def check_baseline_roundtrip(tmp: Path, failures: list[str]) -> None:
    case = FIXTURES / "det-wall-clock"
    bp = tmp / "baseline.json"
    r1 = run_sca(["--root", str(case), "--rules", "det-wall-clock",
                  "--baseline", str(bp), "--write-baseline"])
    if r1.returncode != 0 or not bp.is_file():
        failures.append(f"baseline: --write-baseline failed\n{r1.stdout}")
        return
    doc = json.loads(bp.read_text())
    if len(doc.get("findings", {})) != 1:
        failures.append(f"baseline: expected 1 fingerprint, got {doc}")
    r2 = run_sca(["--root", str(case), "--rules", "det-wall-clock",
                  "--baseline", str(bp)])
    if r2.returncode != 0 or "1 baselined" not in r2.stdout:
        failures.append(f"baseline: accepted finding still gates\n{r2.stdout}")


def check_sarif(tmp: Path, failures: list[str]) -> None:
    case = FIXTURES / "det-wall-clock"
    out = tmp / "report.sarif"
    run_sca(["--root", str(case), "--rules", "det-wall-clock",
             "--sarif-out", str(out)])
    doc = json.loads(out.read_text())
    try:
        run = doc["runs"][0]
        results = run["results"]
        rules = run["tool"]["driver"]["rules"]
    except (KeyError, IndexError):
        failures.append(f"sarif: malformed document\n{doc}")
        return
    if not any(r.get("id") == "det-wall-clock" for r in rules):
        failures.append("sarif: rule metadata missing det-wall-clock")
    kinds = [s.get("kind") for r in results for s in r.get("suppressions", [])]
    if len(results) != 2 or "inSource" not in kinds:
        failures.append(
            f"sarif: want 2 results with one inSource suppression, got "
            f"{len(results)} results, suppression kinds {kinds}")


def main() -> int:
    failures: list[str] = []
    cases = sorted(p for p in FIXTURES.iterdir() if p.is_dir())
    if not cases:
        print("sca-fixtures: no fixtures found", file=sys.stderr)
        return 1
    for case in cases:
        check_fixture(case, failures)
    tmpbase = ROOT / "build"
    tmpbase.mkdir(exist_ok=True)
    with tempfile.TemporaryDirectory(dir=tmpbase) as td:
        check_baseline_roundtrip(Path(td), failures)
        check_sarif(Path(td), failures)
    if failures:
        for f in failures:
            print(f"FAIL {f}\n")
        print(f"sca-fixtures: {len(failures)} failure(s) "
              f"across {len(cases)} fixtures")
        return 1
    print(f"sca-fixtures: {len(cases)} fixtures + baseline/SARIF checks OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
