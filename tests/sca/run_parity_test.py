#!/usr/bin/env python3
"""Parity proof for the four checks migrated from tools/lint.py into
tools/sca (registered as ctest `sca_parity`).

legacy_lint.py is the frozen pre-migration linter, kept verbatim. This
test builds a hermetic copy of every file the legacy tables reference,
then runs both tools over the clean copy and over copies broken in
targeted ways (new enumerator, unpublished Stats field, duplicated
dispatch row, malformed bench report). The two tools must agree exactly
on the (path, message) set and on the exit code — proving tools/sca is a
drop-in replacement for the retired script.
"""

import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else HERE.parents[1]
LEGACY = HERE / "legacy_lint.py"
SCA = ROOT / "tools" / "sca"
LEGACY_RULES = ("enum-string-coverage,stats-publish-coverage,"
                "dispatch-table-complete,bench-report-schema")

# Union of every file the legacy ENUMS/STATS_CLASSES/dispatch tables read.
FILES = [
    "src/hafnium/hypercall.h", "src/hafnium/hypercall.cpp",
    "src/hafnium/vm.h", "src/hafnium/vm.cpp",
    "src/hafnium/manifest.h", "src/hafnium/manifest.cpp",
    "src/hafnium/spm.h", "src/hafnium/spm.cpp",
    "src/check/check.h", "src/check/check.cpp",
    "src/check/corrupt.h", "src/check/corrupt.cpp",
    "src/obs/events.h", "src/obs/recorder.cpp",
    "src/obs/profiler.h", "src/obs/profiler.cpp",
    "src/resil/resil.h", "src/resil/resil.cpp",
    "src/resil/chaos.h", "src/resil/chaos.cpp",
    # Referenced only by the sca config (post-migration additions): they
    # must exist in the hermetic tree or sca reports them missing, which
    # the frozen legacy linter can never do.
    "src/resil/contain.h", "src/resil/contain.cpp",
    "src/workloads/attack.h", "src/workloads/attack.cpp",
]

GOOD_BENCH = ('{"bench": "parity", "metrics": '
              '[{"name": "x", "mean": 1.0, "stdev": 0.0, "n": 3}]}\n')
BAD_BENCH = ('{"bench": "", "metrics": '
             '[{"name": "x", "mean": NaN, "stdev": 0.0}]}\n')

_SCA_LINE_RE = re.compile(r"^(\S+):\d+: \[[\w-]+\] (.*)$")


def make_tree(base: Path) -> Path:
    tree = base / "tree"
    for rel in FILES:
        dst = tree / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(ROOT / rel, dst)
    (tree / "BENCH_parity.json").write_text(GOOD_BENCH)
    return tree


def mutate(tree: Path, name: str) -> None:
    if name == "clean":
        return
    if name == "enum-grown":
        # A fresh Call enumerator at once breaks to_string coverage, the
        # dispatch table row count, and the kCallCount constant.
        p = tree / "src/hafnium/hypercall.h"
        p.write_text(re.sub(r"(enum\s+class\s+Call\b[^{]*\{)",
                            r"\1 kParityProbe,", p.read_text(), count=1))
    elif name == "stats-unpublished":
        p = tree / "src/hafnium/spm.h"
        p.write_text(re.sub(
            r"(struct\s+Stats\s*\{)",
            r"\1 std::uint64_t parity_probe = 0;", p.read_text(), count=1))
    elif name == "dispatch-dup-row":
        p = tree / "src/hafnium/spm.cpp"
        p.write_text(re.sub(r"([ \t]*\{Call::k\w+[^\n]*\n)", r"\1\1",
                            p.read_text(), count=1))
    elif name == "bench-broken":
        (tree / "BENCH_parity.json").write_text(BAD_BENCH)
    else:
        raise ValueError(name)


def legacy_findings(tree: Path) -> tuple[set, int]:
    r = subprocess.run([sys.executable, str(LEGACY), str(tree)],
                       capture_output=True, text=True)
    out = set()
    for line in r.stdout.splitlines():
        if line.startswith("lint:"):
            continue
        path, _, message = line.partition(": ")
        out.add((path, message))
    return out, r.returncode


def sca_findings(tree: Path) -> tuple[set, int]:
    r = subprocess.run(
        [sys.executable, str(SCA), "--root", str(tree),
         "--rules", LEGACY_RULES],
        capture_output=True, text=True)
    out = set()
    for line in r.stdout.splitlines():
        m = _SCA_LINE_RE.match(line)
        if m:
            out.add((m.group(1), m.group(2)))
    return out, r.returncode


def main() -> int:
    mutations = ["clean", "enum-grown", "stats-unpublished",
                 "dispatch-dup-row", "bench-broken"]
    failures = []
    tmpbase = ROOT / "build"
    tmpbase.mkdir(exist_ok=True)
    for name in mutations:
        with tempfile.TemporaryDirectory(dir=tmpbase) as td:
            tree = make_tree(Path(td))
            mutate(tree, name)
            legacy, legacy_rc = legacy_findings(tree)
            sca, sca_rc = sca_findings(tree)
            if name == "clean" and legacy:
                failures.append(f"{name}: legacy linter not clean: {legacy}")
            if name != "clean" and not legacy:
                failures.append(f"{name}: mutation produced no legacy finding")
            if legacy != sca:
                failures.append(
                    f"{name}: finding sets differ\n"
                    f"  legacy only: {sorted(legacy - sca)}\n"
                    f"  sca only:    {sorted(sca - legacy)}")
            if legacy_rc != sca_rc:
                failures.append(
                    f"{name}: exit codes differ (legacy {legacy_rc}, "
                    f"sca {sca_rc})")
    if failures:
        for f in failures:
            print(f"FAIL {f}\n")
        print(f"sca-parity: {len(failures)} failure(s)")
        return 1
    print(f"sca-parity: identical findings across {len(mutations)} trees")
    return 0


if __name__ == "__main__":
    sys.exit(main())
