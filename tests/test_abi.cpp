// The typed hypercall ABI (src/hafnium/abi.h) and the interceptor pipeline
// (src/hafnium/intercept.h): encode/decode round-trips for every call's
// request struct, the dispatch gate's privilege matrix and malformed-input
// behaviour, interceptor ordering/attach/detach semantics, deterministic
// ABI-level fault injection, and record/replay against a same-seed run.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "check/check.h"
#include "core/harness.h"
#include "core/node.h"
#include "hafnium/abi.h"
#include "hafnium/intercept.h"
#include "hafnium/spm.h"
#include "obs/events.h"
#include "resil/chaos.h"
#include "workloads/randomaccess.h"
#include "workloads/workload.h"

namespace hpcsec {
namespace {

using hafnium::Call;
using hafnium::HfArgs;
using hafnium::HfError;
using hafnium::HfResult;
using hafnium::HypercallInterceptor;
using hafnium::HypercallSite;
using hafnium::Spm;
namespace abi = hafnium::abi;

// --- encode/decode round-trips ----------------------------------------------

template <typename T>
T round_trip(const T& in) {
    T out;
    EXPECT_TRUE(T::decode(in.encode(), out));
    return out;
}

TEST(AbiRoundTrip, EveryRequestStruct) {
    {
        const auto o = round_trip(abi::VmTarget{42});
        EXPECT_EQ(o.vm, 42);
    }
    {
        const auto o = round_trip(abi::VcpuRunArgs{3, 7});
        EXPECT_EQ(o.vm, 3);
        EXPECT_EQ(o.vcpu, 7);
    }
    {
        const auto o = round_trip(abi::VmConfigureArgs{0x8000'0000ull, 0x8000'1000ull});
        EXPECT_EQ(o.send_ipa, 0x8000'0000ull);
        EXPECT_EQ(o.recv_ipa, 0x8000'1000ull);
    }
    {
        const auto o = round_trip(abi::MsgSendArgs{5, 4096});
        EXPECT_EQ(o.to, 5);
        EXPECT_EQ(o.size, 4096u);
    }
    {
        const auto o =
            round_trip(abi::MemShareArgs{2, 0x4000, 16, 0x7000'0000ull});
        EXPECT_EQ(o.to, 2);
        EXPECT_EQ(o.owner_ipa, 0x4000u);
        EXPECT_EQ(o.pages, 16u);
        EXPECT_EQ(o.borrower_ipa, 0x7000'0000ull);
    }
    {
        const auto o = round_trip(abi::MemReclaimArgs{2, 0x4000});
        EXPECT_EQ(o.borrower, 2);
        EXPECT_EQ(o.owner_ipa, 0x4000u);
    }
    {
        const auto o = round_trip(abi::InterruptEnableArgs{27, 3});
        EXPECT_EQ(o.virq, 27);
        EXPECT_EQ(o.vcpu, 3);
    }
    {
        const auto o = round_trip(abi::InterruptInjectArgs{3, 1, 27});
        EXPECT_EQ(o.vm, 3);
        EXPECT_EQ(o.vcpu, 1);
        EXPECT_EQ(o.virq, 27);
    }
    {
        const auto o = round_trip(abi::VtimerSetArgs{123'456'789ull, 2});
        EXPECT_EQ(o.deadline, 123'456'789ull);
        EXPECT_EQ(o.vcpu, 2);
    }
    {
        const auto o = round_trip(abi::VtimerCancelArgs{2});
        EXPECT_EQ(o.vcpu, 2);
    }
    {
        abi::Empty out;
        EXPECT_TRUE(abi::Empty::decode({0xdead, 0xbeef, 0, 0}, out));
    }
}

TEST(AbiRoundTrip, VmInfoWord) {
    const std::int64_t word = abi::encode_vm_info(
        hafnium::VmRole::kSuperSecondary, arch::World::kSecure, 4);
    const abi::VmInfo info = abi::decode_vm_info(word);
    EXPECT_EQ(info.role, hafnium::VmRole::kSuperSecondary);
    EXPECT_EQ(info.world, arch::World::kSecure);
    EXPECT_EQ(info.vcpus, 4);
}

TEST(AbiDecode, RejectsOutOfRangeNarrowings) {
    abi::VcpuRunArgs run;
    EXPECT_FALSE(abi::VcpuRunArgs::decode({0x1'0000, 0, 0, 0}, run));
    EXPECT_FALSE(abi::VcpuRunArgs::decode({1, 1ull << 31, 0, 0}, run));

    abi::MsgSendArgs msg;
    EXPECT_FALSE(abi::MsgSendArgs::decode({1, 1ull << 32, 0, 0}, msg));

    abi::InterruptInjectArgs inj;
    EXPECT_FALSE(abi::InterruptInjectArgs::decode({1, 0, 1ull << 40, 0}, inj));

    abi::VtimerSetArgs vt;
    EXPECT_FALSE(abi::VtimerSetArgs::decode({0, 1ull << 31, 0, 0}, vt));
}

TEST(AbiDecode, IgnoresUnusedRegisters) {
    // SMCCC-style: registers a call does not define carry no meaning and
    // must not fail the decode (kVtimerCancel only reads a1).
    abi::VtimerCancelArgs out;
    EXPECT_TRUE(abi::VtimerCancelArgs::decode({0xdead, 5, 0xbeef, 0xcafe}, out));
    EXPECT_EQ(out.vcpu, 5);
}

// --- dispatch table ----------------------------------------------------------

TEST(AbiDispatchTable, CoversEveryCallExactlyOnce) {
    const auto& table = Spm::call_table();
    ASSERT_EQ(table.size(), hafnium::kCallCount);
    std::vector<Call> seen;
    for (const auto& row : table) {
        EXPECT_NE(row.invoke, nullptr);
        EXPECT_NE(row.privilege, 0);
        EXPECT_NE(to_string(row.call), "?");
        for (const Call c : seen) EXPECT_NE(c, row.call);
        seen.push_back(row.call);
        EXPECT_EQ(Spm::descriptor(row.call), &row);
    }
}

TEST(AbiDispatchTable, UnknownNumbersHaveNoDescriptor) {
    EXPECT_EQ(Spm::descriptor(static_cast<Call>(0x05)), nullptr);  // gap
    EXPECT_EQ(Spm::descriptor(static_cast<Call>(0x2a)), nullptr);  // gap
    EXPECT_EQ(Spm::descriptor(static_cast<Call>(0x35)), nullptr);  // end
    EXPECT_EQ(Spm::descriptor(static_cast<Call>(0xffff'ffff)), nullptr);
}

// --- the gate: privilege matrix and malformed input --------------------------

// Primary (id 1), super-secondary (id 2), secondary (id 3).
struct SpmFixture {
    arch::Platform platform{arch::PlatformConfig::pine_a64()};
    Spm spm;

    SpmFixture() : spm(platform, make_manifest()) { spm.boot(); }

    static hafnium::Manifest make_manifest() {
        hafnium::Manifest m;
        hafnium::VmSpec p;
        p.name = "primary";
        p.role = hafnium::VmRole::kPrimary;
        p.mem_bytes = 64ull << 20;
        p.vcpu_count = 4;
        hafnium::VmSpec ss;
        ss.name = "login";
        ss.role = hafnium::VmRole::kSuperSecondary;
        ss.mem_bytes = 32ull << 20;
        ss.vcpu_count = 1;
        hafnium::VmSpec s;
        s.name = "compute";
        s.role = hafnium::VmRole::kSecondary;
        s.mem_bytes = 64ull << 20;
        s.vcpu_count = 4;
        m.vms = {p, ss, s};
        return m;
    }
};

TEST(AbiPrivilege, MaskMatrixMatchesPaperRoles) {
    for (const auto& row : Spm::call_table()) {
        switch (row.call) {
            case Call::kVcpuRun:
                // "the ability to assume control over CPU cores" is the
                // primary's alone; the login VM is explicitly denied.
                EXPECT_EQ(row.privilege, Spm::kRolePrimary);
                break;
            case Call::kInterruptInject:
                EXPECT_EQ(row.privilege,
                          Spm::kRolePrimary | Spm::kRoleSuperSecondary);
                break;
            default:
                EXPECT_EQ(row.privilege, Spm::kAnyRole)
                    << to_string(row.call);
        }
    }
}

TEST(AbiPrivilege, GateDeniesByRole) {
    SpmFixture f;
    const std::uint64_t denied_before = f.spm.stats().denied_calls;

    // vcpu_run: primary may, super-secondary and secondary may not.
    EXPECT_NE(hf::vcpu_run(f.spm, 0, 1, 3, 0).error, HfError::kDenied);
    EXPECT_EQ(hf::vcpu_run(f.spm, 0, 2, 3, 0).error, HfError::kDenied);
    EXPECT_EQ(hf::vcpu_run(f.spm, 0, 3, 3, 0).error, HfError::kDenied);

    // interrupt_inject: the super-secondary's forwarding path is allowed,
    // an ordinary secondary is not.
    EXPECT_EQ(hf::interrupt_inject(f.spm, 0, 2, 3, 0, hafnium::kMessageVirq)
                  .error,
              HfError::kOk);
    EXPECT_EQ(hf::interrupt_inject(f.spm, 0, 3, 1, 0, hafnium::kMessageVirq)
                  .error,
              HfError::kDenied);

    EXPECT_EQ(f.spm.stats().denied_calls, denied_before + 3);
}

TEST(AbiGate, MalformedInputStopsAtTheGate) {
    SpmFixture f;

    // Unknown call numbers: kInvalid, counted, never dispatched.
    EXPECT_EQ(f.spm.hypercall(0, 1, static_cast<Call>(0x2a), {}).error,
              HfError::kInvalid);
    EXPECT_EQ(f.spm.stats().invalid_calls, 1u);

    // A register value that does not fit the typed field fails the decode.
    EXPECT_EQ(f.spm.hypercall(0, 1, Call::kVcpuRun, {1ull << 32, 0, 0, 0}).error,
              HfError::kInvalid);
    EXPECT_EQ(f.spm.stats().invalid_calls, 2u);

    // Callers outside the VM table are rejected before the privilege check.
    EXPECT_EQ(f.spm.hypercall(0, 0, Call::kVersion, {}).error, HfError::kNotFound);
    EXPECT_EQ(f.spm.hypercall(0, 99, Call::kVersion, {}).error,
              HfError::kNotFound);
}

TEST(AbiGate, MalformedInputUnderStrictAuditNeverThrows) {
    SpmFixture f;
    check::Auditor auditor(f.spm, {check::Mode::kStrict});

    // Every malformed shape a guest could marshal: none may escape the gate
    // as a CheckViolation (or any other exception) — the guest just sees an
    // error code. The giant VCPU index used to reach a throwing .at().
    EXPECT_NO_THROW({
        f.spm.hypercall(0, 3, static_cast<Call>(0x2a), {1, 2, 3, 4});
        f.spm.hypercall(0, 3, static_cast<Call>(0xffff'fff0), {});
        f.spm.hypercall(0, 3, Call::kInterruptEnable, {5, 1ull << 40, 0, 0});
        f.spm.hypercall(0, 3, Call::kVcpuRun, {0xffff'ffff'ffff'ffffull, 0, 0, 0});
        f.spm.hypercall(0, 3, Call::kMsgSend, {1, 1ull << 33, 0, 0});
    });
    EXPECT_GE(f.spm.stats().invalid_calls, 4u);
    EXPECT_TRUE(auditor.failures().empty());
}

// --- interceptor chain -------------------------------------------------------

class ProbeInterceptor final : public HypercallInterceptor {
public:
    ProbeInterceptor(Stage stage, std::string name, std::vector<std::string>& log,
                     std::optional<HfResult> forced = std::nullopt)
        : HypercallInterceptor(stage), name_(std::move(name)), log_(&log),
          forced_(forced) {}

    std::optional<HfResult> before(const HypercallSite&) override {
        log_->push_back(name_ + ".before");
        return forced_;
    }
    void after(const HypercallSite&, const HfResult& result) override {
        log_->push_back(name_ + ".after");
        last_result_ = result;
    }

    HfResult last_result_{};

private:
    std::string name_;
    std::vector<std::string>* log_;
    std::optional<HfResult> forced_;
};

TEST(AbiInterceptors, ChainRunsInStageOrderAndOnion) {
    SpmFixture f;
    std::vector<std::string> log;
    using Stage = HypercallInterceptor::Stage;
    ProbeInterceptor chaos(Stage::kChaos, "chaos", log);
    ProbeInterceptor telemetry(Stage::kTelemetry, "telemetry", log);
    ProbeInterceptor audit(Stage::kAudit, "audit", log);

    // Attach order is deliberately scrambled; stage order must win.
    f.spm.attach_interceptor(&chaos);
    f.spm.attach_interceptor(&telemetry);
    f.spm.attach_interceptor(&audit);
    f.spm.attach_interceptor(&audit);  // duplicate attach is a no-op
    ASSERT_EQ(f.spm.interceptors().size(), 3u);

    EXPECT_EQ(hf::version(f.spm, 0, 1).error, HfError::kOk);
    const std::vector<std::string> want{
        "telemetry.before", "audit.before", "chaos.before",
        "chaos.after",      "audit.after",  "telemetry.after"};
    EXPECT_EQ(log, want);

    log.clear();
    f.spm.detach_interceptor(&audit);
    f.spm.detach_interceptor(&chaos);
    f.spm.detach_interceptor(&telemetry);
    EXPECT_EQ(hf::version(f.spm, 0, 1).error, HfError::kOk);
    EXPECT_TRUE(log.empty());
}

TEST(AbiInterceptors, ShortCircuitSkipsHandlerButRunsEveryAfter) {
    SpmFixture f;
    std::vector<std::string> log;
    using Stage = HypercallInterceptor::Stage;
    ProbeInterceptor telemetry(Stage::kTelemetry, "telemetry", log);
    ProbeInterceptor chaos(Stage::kChaos, "chaos", log,
                           HfResult{HfError::kRetry, 123});
    ProbeInterceptor replay(Stage::kReplay, "replay", log);
    f.spm.attach_interceptor(&telemetry);
    f.spm.attach_interceptor(&chaos);
    f.spm.attach_interceptor(&replay);

    const HfResult r = hf::version(f.spm, 0, 1);
    EXPECT_EQ(r.error, HfError::kRetry);  // handler never ran
    EXPECT_EQ(r.value, 123);
    const std::vector<std::string> want{
        "telemetry.before", "chaos.before",  // replay.before skipped
        "replay.after", "chaos.after", "telemetry.after"};
    EXPECT_EQ(log, want);
    EXPECT_EQ(replay.last_result_.value, 123);  // afters see injected result
}

TEST(AbiInterceptors, SameStageKeepsAttachOrder) {
    SpmFixture f;
    std::vector<std::string> log;
    using Stage = HypercallInterceptor::Stage;
    ProbeInterceptor a(Stage::kAudit, "a", log);
    ProbeInterceptor b(Stage::kAudit, "b", log);
    f.spm.attach_interceptor(&a);
    f.spm.attach_interceptor(&b);
    hf::version(f.spm, 0, 1);
    const std::vector<std::string> want{"a.before", "b.before", "b.after",
                                        "a.after"};
    EXPECT_EQ(log, want);
}

TEST(AbiInterceptors, TelemetryEmitsTheHypercallInstant) {
    SpmFixture f;
    f.platform.recorder().set_mask(obs::to_mask(obs::Category::kHyp));
    hafnium::TelemetryInterceptor telemetry(f.platform);
    f.spm.attach_interceptor(&telemetry);

    hf::vcpu_run(f.spm, 2, 1, 3, 1);
    ASSERT_FALSE(f.platform.recorder().events().empty());
    const obs::Event& e = f.platform.recorder().events().back();
    EXPECT_EQ(e.type, obs::EventType::kHypercall);
    EXPECT_EQ(e.core, 2);
    EXPECT_EQ(e.a0, static_cast<std::int64_t>(Call::kVcpuRun));
    EXPECT_EQ(e.a1, 1);  // caller
}

TEST(AbiInterceptors, CallMetricsCountsPerCallAndErrors) {
    SpmFixture f;
    hafnium::CallMetricsInterceptor metrics(f.platform.metrics());
    f.spm.attach_interceptor(&metrics);

    hf::version(f.spm, 0, 1);
    hf::version(f.spm, 0, 1);
    hf::vcpu_run(f.spm, 0, 3, 1, 0);  // denied: counted as an error

    const auto snap = f.platform.metrics().snapshot();
    const auto value = [&](const std::string& name) -> double {
        const auto* m = snap.find(name);
        return m != nullptr ? m->value : -1.0;
    };
    EXPECT_EQ(value("hf.call.HF_VERSION"), 2.0);
    EXPECT_EQ(value("hf.call_err.HF_VERSION"), 0.0);
    EXPECT_EQ(value("hf.call.HF_VCPU_RUN"), 1.0);
    EXPECT_EQ(value("hf.call_err.HF_VCPU_RUN"), 1.0);
}

// --- deterministic ABI fault injection ---------------------------------------

TEST(AbiFaultInjection, EveryNthMatchingCallFails) {
    SpmFixture f;
    resil::CallFaultInjector::Options opt;
    opt.period = 4;
    opt.only = Call::kVersion;
    opt.error = HfError::kRetry;
    resil::CallFaultInjector inj(opt);
    f.spm.attach_interceptor(&inj);

    int failed = 0;
    for (int i = 1; i <= 8; ++i) {
        const HfResult r = hf::version(f.spm, 0, 1);
        hf::vm_get_count(f.spm, 0, 1);  // filtered out: never injected
        if (r.error == HfError::kRetry) ++failed;
        // Deterministic cadence: exactly calls 4 and 8.
        EXPECT_EQ(r.error, (i % 4 == 0) ? HfError::kRetry : HfError::kOk);
    }
    EXPECT_EQ(failed, 2);
    EXPECT_EQ(inj.observed(), 8u);
    EXPECT_EQ(inj.injected(), 2u);
}

// --- record/replay -----------------------------------------------------------

// A recorded tape from one run verifies bit-exactly against a second run
// with the same seed (the determinism property test_determinism.cpp pins
// for stats, extended to the full hypercall sequence), and diverges for a
// different seed.
TEST(AbiReplay, SameSeedVerifiesDifferentSeedDiverges) {
    hafnium::HypercallLog log;
    const auto run = [&log](std::uint64_t seed, bool record) {
        core::Node node(core::Harness::default_config(
            core::SchedulerKind::kKittenPrimary, seed));
        node.boot();
        if (record) {
            log.start_record();
        } else {
            log.start_verify(log.tape());
        }
        node.spm()->attach_interceptor(&log);
        wl::WorkloadSpec spec = wl::randomaccess_spec();
        spec.units_per_thread_step /= 16;
        wl::ParallelWorkload w(spec);
        node.run_workload(w, 60.0);
        node.spm()->detach_interceptor(&log);
    };

    run(7, /*record=*/true);
    ASSERT_GT(log.tape().size(), 10u);

    run(7, /*record=*/false);
    EXPECT_TRUE(log.verified()) << log.first_divergence();

    run(9, /*record=*/false);
    EXPECT_FALSE(log.verified());
    EXPECT_GT(log.mismatches(), 0u) << "seed 9 should diverge from seed 7";
}

}  // namespace
}  // namespace hpcsec
