// Memory-integrity tagging and the adversarial attack suite: HDFI-style
// one-bit frame tags (detect), the resil::ContainmentEngine pipeline
// (contain → recover), and the three ported HDFI attack shapes — each must
// be defeated end to end while the node keeps serving its other
// partitions, deterministically.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

#include "arch/isa.h"
#include "arch/mmu.h"
#include "arch/platform.h"
#include "check/corrupt.h"
#include "core/harness.h"
#include "core/node.h"
#include "crypto/sha256.h"
#include "hafnium/spm.h"
#include "resil/contain.h"
#include "workloads/attack.h"
#include "workloads/randomaccess.h"

namespace hpcsec {
namespace {

using core::Harness;
using core::Node;
using core::NodeConfig;
using core::SchedulerKind;

// --- arch-level detection: the MMU tag check ---------------------------------

struct MmuTagCheck : ::testing::Test {
    arch::MemoryMap mem;
    arch::PageTable s1;
    arch::Mmu mmu{mem};

    void SetUp() override {
        mem.add_region({"ram", 0x4000'0000, 64ull << 20, arch::RegionKind::kRam,
                        arch::World::kNonSecure});
        s1.map(0, 0x4000'0000, 1ull << 20, arch::kPermRW);
        mmu.set_context(&s1, nullptr, /*vmid=*/1, /*asid=*/1,
                        arch::World::kNonSecure);
    }
};

TEST_F(MmuTagCheck, TaggedFrameFaultsForGuestReadsAndWrites) {
    mem.set_integrity_tag(0x4000'0000, 1, true);
    const auto r = mmu.translate(0x40, arch::Access::kRead);
    EXPECT_EQ(r.fault, arch::FaultKind::kTagViolation);
    // Over-reads leak key material just as surely as overwrites corrupt
    // page tables: reads are violations too.
    const auto w = mmu.translate(0x40, arch::Access::kWrite);
    EXPECT_EQ(w.fault, arch::FaultKind::kTagViolation);
    // The untagged frame next door stays accessible.
    EXPECT_EQ(mmu.translate(arch::kPageSize + 0x40, arch::Access::kWrite).fault,
              arch::FaultKind::kNone);
}

TEST_F(MmuTagCheck, HypervisorContextIsExempt) {
    mem.set_integrity_tag(0x4000'0000, 1, true);
    mmu.set_context(&s1, nullptr, arch::kHypervisorId, 0,
                    arch::World::kNonSecure);
    EXPECT_EQ(mmu.translate(0x40, arch::Access::kWrite).fault,
              arch::FaultKind::kNone);
}

TEST_F(MmuTagCheck, CachedTranslationCannotOutliveATagFlip) {
    // Prime the TLB and the L0 line with a successful translation...
    ASSERT_EQ(mmu.translate(0x40, arch::Access::kRead).fault,
              arch::FaultKind::kNone);
    ASSERT_TRUE(mmu.translate(0x48, arch::Access::kRead).tlb_hit);
    // ...then tag the frame. A cached translation is not a licence to keep
    // touching it: the very next access must fault, hit path included.
    mem.set_integrity_tag(0x4000'0000, 1, true);
    EXPECT_EQ(mmu.translate(0x50, arch::Access::kRead).fault,
              arch::FaultKind::kTagViolation);
    // Clearing the tag restores access (frame reuse after recovery).
    mem.set_integrity_tag(0x4000'0000, 1, false);
    EXPECT_EQ(mmu.translate(0x58, arch::Access::kRead).fault,
              arch::FaultKind::kNone);
}

TEST(MmuTagShootdown, TagFlipInvalidatesEveryCoreTlb) {
    // At Platform level the tag-change hook broadcasts a full TLBI: lines
    // filled before the flip are gone on all cores, not just the one that
    // noticed.
    arch::Platform platform{arch::PlatformConfig::pine_a64()};
    arch::PageTable s1;
    const arch::PhysAddr ram = platform.mem().alloc_frames(
        4, arch::kHypervisorId, arch::World::kNonSecure);
    s1.map(0, ram, 4 * arch::kPageSize, arch::kPermRW);
    for (int c = 0; c < platform.ncores(); ++c) {
        auto& mmu = platform.core(c).mmu();
        mmu.set_context(&s1, nullptr, 1, 1, arch::World::kNonSecure);
        ASSERT_EQ(mmu.translate(0x40, arch::Access::kRead).fault,
                  arch::FaultKind::kNone);
        ASSERT_TRUE(mmu.translate(0x48, arch::Access::kRead).tlb_hit);
    }
    platform.mem().set_integrity_tag(ram, 1, true);
    for (int c = 0; c < platform.ncores(); ++c) {
        auto& mmu = platform.core(c).mmu();
        const auto t = mmu.translate(0x40, arch::Access::kRead);
        EXPECT_EQ(t.fault, arch::FaultKind::kTagViolation) << "core " << c;
        EXPECT_FALSE(t.tlb_hit) << "core " << c;
    }
}

// --- SPM-level detection and recovery ----------------------------------------

struct SpmTagFixture : ::testing::Test {
    arch::Platform platform{arch::PlatformConfig::pine_a64()};
    std::unique_ptr<hafnium::Spm> spm;

    void SetUp() override {
        hafnium::Manifest m;
        hafnium::VmSpec p;
        p.name = "primary";
        p.role = hafnium::VmRole::kPrimary;
        p.mem_bytes = 64ull << 20;
        p.vcpu_count = 4;
        p.image = {1, 2, 3};
        hafnium::VmSpec s;
        s.name = "compute";
        s.role = hafnium::VmRole::kSecondary;
        s.mem_bytes = 32ull << 20;
        s.vcpu_count = 4;
        s.image = {4, 5, 6};
        m.vms = {p, s};
        spm = std::make_unique<hafnium::Spm>(platform, m);
        spm->boot();
    }

    arch::VmId compute_id() { return spm->find_vm("compute")->id(); }
};

TEST_F(SpmTagFixture, ProtectCriticalStateTagsEveryRegionOnce) {
    spm->protect_critical_state();
    EXPECT_TRUE(spm->critical_armed());
    for (const char* name : {"stage2:primary", "stage2:compute",
                             "attestation-log", "lamport-keys", "manifest"}) {
        const auto* r = spm->find_critical(name);
        ASSERT_NE(r, nullptr) << name;
        EXPECT_TRUE(platform.mem().integrity_tagged(r->base)) << name;
        EXPECT_FALSE(r->embargoed) << name;
    }
    const std::size_t n = spm->critical_regions().size();
    spm->protect_critical_state();  // idempotent
    EXPECT_EQ(spm->critical_regions().size(), n);
}

TEST_F(SpmTagFixture, RogueWindowAccessDeniedReportedAndAttributed) {
    spm->protect_critical_state();
    const auto* keys = spm->find_critical("lamport-keys");
    ASSERT_NE(keys, nullptr);
    const arch::IpaAddr window =
        check::CorruptionAccess::map_rogue_window(*spm, compute_id(), keys->base);

    hafnium::Spm::TagViolation seen;
    spm->tag_violation_hook = [&seen](const hafnium::Spm::TagViolation& v) {
        seen = v;
    };
    // The forged write is denied, counted, and attributed to region+offender.
    EXPECT_FALSE(spm->vm_write64(compute_id(), window, 0xbad));
    EXPECT_EQ(spm->stats().tag_violations, 1u);
    EXPECT_EQ(seen.offender, compute_id());
    EXPECT_EQ(seen.region, "lamport-keys");
    EXPECT_EQ(seen.access, arch::Access::kWrite);
    EXPECT_EQ(seen.pa, keys->base);
    // The over-read is denied too, and leaks nothing.
    std::uint64_t leak = 0xdead;
    EXPECT_FALSE(spm->vm_read64(compute_id(), window, leak));
    EXPECT_EQ(leak, 0xdeadu);
    EXPECT_EQ(spm->stats().tag_violations, 2u);
    // Ordinary guest traffic is untouched by the armed tags.
    EXPECT_TRUE(spm->vm_write64(compute_id(), 0x1000, 0x5a));
    EXPECT_EQ(spm->stats().tag_violations, 2u);
}

TEST_F(SpmTagFixture, VmsCreatedAfterArmingAreTaggedFromBirth) {
    spm->protect_critical_state();
    hafnium::VmSpec s;
    s.name = "late";
    s.role = hafnium::VmRole::kSecondary;
    s.mem_bytes = 4ull << 20;
    s.vcpu_count = 1;
    s.image = {9};
    spm->create_vm(s);
    EXPECT_NE(spm->find_critical("stage2:late"), nullptr);
}

TEST_F(SpmTagFixture, ReverifyPassesWhenTheCheckFiredBeforeAnyByteChanged) {
    spm->protect_critical_state();
    const arch::IpaAddr window = check::CorruptionAccess::map_rogue_window(
        *spm, compute_id(), spm->find_critical("lamport-keys")->base);
    EXPECT_FALSE(spm->vm_write64(compute_id(), window, 0xbad));
    // The denial means nothing landed: re-measurement matches the tag-time
    // hash and the region keeps serving.
    EXPECT_TRUE(spm->reverify_critical("lamport-keys"));
    EXPECT_FALSE(spm->find_critical("lamport-keys")->embargoed);
}

TEST_F(SpmTagFixture, CorruptedRegionIsEmbargoedAndNeverFreed) {
    spm->protect_critical_state();
    const auto* region = spm->find_critical("stage2:compute");
    // Model damage the tag check could not have blocked (a physical fault /
    // in-place flip): a raw hypervisor-path store bypasses guest checks.
    platform.mem().write64(region->base + 8, 0x41414141, arch::World::kSecure);
    EXPECT_FALSE(spm->reverify_critical("stage2:compute"));
    EXPECT_TRUE(spm->find_critical("stage2:compute")->embargoed);
    // Embargoed frames are withheld forever: tearing down the VM releases
    // every clean region, but this one (and its tag) must survive so the
    // allocator can never hand the frames out again.
    const arch::PhysAddr base = region->base;
    spm->destroy_vm(compute_id());
    ASSERT_NE(spm->find_critical("stage2:compute"), nullptr);
    EXPECT_TRUE(spm->find_critical("stage2:compute")->embargoed);
    EXPECT_TRUE(platform.mem().integrity_tagged(base));
}

TEST_F(SpmTagFixture, CleanRegionIsReleasedWithItsVm) {
    spm->protect_critical_state();
    const arch::PhysAddr base = spm->find_critical("stage2:compute")->base;
    spm->destroy_vm(compute_id());
    EXPECT_EQ(spm->find_critical("stage2:compute"), nullptr);
    EXPECT_FALSE(platform.mem().integrity_tagged(base));
}

// --- satellite: destroy_vm revokes grants before frame reclaim ---------------

TEST_F(SpmTagFixture, DestroyVmRevokesOutboundGrantBeforeReclaim) {
    using hafnium::Call;
    const arch::VmId compute = compute_id();
    const arch::IpaAddr own = 0x10000;
    const arch::IpaAddr borrower_ipa = 0x5000'0000;
    ASSERT_TRUE(spm->vm_write64(compute, own, 0x77));
    ASSERT_TRUE(
        spm->hypercall(0, compute, Call::kMemShare, {1, own, 2, borrower_ipa})
            .ok());
    const std::uint64_t revokes = spm->stats().mem_revokes;

    spm->destroy_vm(compute);

    // The grant died with the owner — before the frames went back to the
    // allocator, so the borrower's window never dangled onto free memory.
    EXPECT_TRUE(spm->grants().empty());
    EXPECT_EQ(spm->stats().mem_revokes, revokes + 1);
    std::uint64_t v = 0;
    EXPECT_FALSE(spm->vm_read64(1, borrower_ipa, v));
}

TEST_F(SpmTagFixture, DestroyedBorrowerOfALendRestoresOwnerAccess) {
    using hafnium::Call;
    hafnium::VmSpec s;
    s.name = "borrower";
    s.role = hafnium::VmRole::kSecondary;
    s.mem_bytes = 4ull << 20;
    s.vcpu_count = 1;
    s.image = {9};
    const arch::VmId borrower = spm->create_vm(s);
    const arch::VmId compute = compute_id();
    const arch::IpaAddr own = 0x20000;
    ASSERT_TRUE(spm->vm_write64(compute, own, 0x99));
    ASSERT_TRUE(spm->hypercall(0, compute, Call::kMemLend,
                               {borrower, own, 1, 0x5000'0000})
                    .ok());
    // Lend revoked the owner's access for the duration.
    EXPECT_FALSE(spm->vm_write64(compute, own, 0x11));

    spm->destroy_vm(borrower);

    EXPECT_TRUE(spm->grants().empty());
    EXPECT_TRUE(spm->vm_write64(compute, own, 0x11));
}

// --- the full pipeline: every attack shape defeated end to end ---------------

// Every attack shape must be defeated on both machine-model backends.
class AttackDefeated
    : public ::testing::TestWithParam<std::tuple<wl::AttackKind, arch::Isa>> {};

TEST_P(AttackDefeated, DetectContainRecoverLeavesNodeServing) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 83);
    cfg.platform.isa = std::get<1>(GetParam());
    cfg.protect_critical = true;
    Node node(cfg);
    node.boot();

    hafnium::VmSpec aspec;
    aspec.name = "attacker";
    aspec.role = hafnium::VmRole::kSecondary;
    aspec.mem_bytes = 4ull << 20;
    aspec.vcpu_count = 1;
    aspec.image = Node::make_image("attacker");
    const arch::VmId attacker = node.spm()->create_vm(aspec);

    resil::ContainmentEngine contain(node);
    contain.arm();
    wl::AttackConfig ac;
    ac.kind = std::get<0>(GetParam());
    wl::AdversaryWorkload attack(*node.spm(), attacker, ac);
    attack.start();
    node.run_for(1.0);

    // Detect: the exploit reached the tagged frame and got nothing.
    EXPECT_TRUE(attack.done());
    EXPECT_TRUE(attack.defeated()) << to_string(std::get<0>(GetParam()));
    EXPECT_GT(node.spm()->stats().tag_violations, 0u);
    // Contain: exactly the offender was quarantined...
    EXPECT_EQ(contain.stats().quarantines, 1u);
    EXPECT_TRUE(node.spm()->vm(attacker).destroyed);
    // ...and recover: the target re-measured clean, nothing embargoed.
    EXPECT_GE(contain.stats().reverified, 1u);
    EXPECT_EQ(contain.stats().embargoes, 0u);
    EXPECT_FALSE(node.spm()->find_critical(ac.target_region)->embargoed);

    // The pipeline steps land in order, all attributed to the attacker.
    const auto& log = contain.action_log();
    ASSERT_GE(log.size(), 4u);
    EXPECT_EQ(log[0].step, resil::ContainmentPolicy::kDetected);
    EXPECT_EQ(log[1].step, resil::ContainmentPolicy::kDumped);
    for (const auto& a : log) EXPECT_EQ(a.vm, attacker);
    bool quarantined_seen = false;
    for (const auto& a : log) {
        if (a.step == resil::ContainmentPolicy::kQuarantined) {
            quarantined_seen = true;
        }
        // Recovery never precedes containment.
        if (a.step == resil::ContainmentPolicy::kReverified) {
            EXPECT_TRUE(quarantined_seen);
        }
    }
    EXPECT_TRUE(quarantined_seen);

    // Graceful degradation, never node death: the victim partitions are
    // untouched and still reachable.
    ASSERT_NE(node.spm()->find_vm("compute"), nullptr);
    EXPECT_TRUE(node.spm()->vm_write64(node.compute_vm()->id(), 0x1000, 0x1));
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, AttackDefeated,
    ::testing::Combine(::testing::Values(wl::AttackKind::kHeartbleed,
                                         wl::AttackKind::kVtableOverwrite,
                                         wl::AttackKind::kSropForgery),
                       ::testing::Values(arch::Isa::kArm, arch::Isa::kRiscv)),
    [](const ::testing::TestParamInfo<AttackDefeated::ParamType>& info) {
        return std::string(to_string(std::get<0>(info.param))) + "_" +
               arch::to_string(std::get<1>(info.param));
    });

// --- satellite: determinism under attack -------------------------------------

// One trial's externally observable containment story, serialized: the
// attestation measurement log, the quarantine/action sequence, and the
// attack + SPM counters. Byte-identical across reruns and --jobs values.
std::string fingerprint(Node& node, const resil::ContainmentEngine& contain,
                        const wl::AdversaryWorkload& attack) {
    std::ostringstream os;
    for (const auto& [name, digest] : node.spm()->measurements()) {
        os << "measure " << name << ' ' << crypto::to_hex(digest) << '\n';
    }
    for (const auto& a : contain.action_log()) {
        os << "action " << to_string(a.step) << ' ' << a.vm << ' ' << a.region
           << '\n';
    }
    const auto& s = attack.stats();
    os << "attack " << s.attempts << ' ' << s.denied << ' ' << s.leaked_words
       << ' ' << s.corrupted_words << '\n';
    os << "hf.tag_violations " << node.spm()->stats().tag_violations << '\n';
    return os.str();
}

TEST(DeterminismUnderAttack, SameSeedSameContainmentTimelineAtAnyJobs) {
    struct Rig {
        std::unique_ptr<resil::ContainmentEngine> contain;
        std::unique_ptr<wl::AdversaryWorkload> attack;
    };
    const std::vector<std::uint64_t> seeds = {91, 92, 93};

    auto run = [&seeds](int jobs) {
        auto prints = std::make_shared<std::map<std::uint64_t, std::string>>();
        Harness::Options opt;
        opt.trials = 1;
        opt.jobs = jobs;
        opt.measurement_noise = false;
        opt.config_factory = [](SchedulerKind kind, std::uint64_t seed) {
            NodeConfig cfg = Harness::default_config(kind, seed);
            cfg.protect_critical = true;
            return cfg;
        };
        opt.pre_trial = [prints](SchedulerKind, std::uint64_t seed,
                                 Node& n) -> std::shared_ptr<void> {
            auto rig = std::make_shared<Rig>();
            hafnium::VmSpec aspec;
            aspec.name = "attacker";
            aspec.role = hafnium::VmRole::kSecondary;
            aspec.mem_bytes = 4ull << 20;
            aspec.vcpu_count = 1;
            aspec.image = Node::make_image("attacker");
            const arch::VmId attacker = n.spm()->create_vm(aspec);
            resil::ContainmentConfig cc;
            cc.defer_s = 0.0002;
            rig->contain = std::make_unique<resil::ContainmentEngine>(n, cc);
            rig->contain->arm();
            // Fire early and fast: the trial's reduced workload finishes in
            // a few simulated milliseconds, and the whole detect → contain
            // sequence must land inside it.
            wl::AttackConfig ac;
            ac.start_s = 0.0005;
            ac.period_s = 5e-5;
            rig->attack = std::make_unique<wl::AdversaryWorkload>(
                *n.spm(), attacker, ac);
            rig->attack->start();
            // Serialize the story at teardown (the node is still alive then;
            // pre_trial attachments die before it). Harness serializes
            // attachment destruction, so the map needs no extra lock.
            struct Harvest {
                std::shared_ptr<Rig> rig;
                std::shared_ptr<std::map<std::uint64_t, std::string>> out;
                std::uint64_t seed;
                Node* node;
                ~Harvest() {
                    rig->attack->stop();
                    (*out)[seed] =
                        fingerprint(*node, *rig->contain, *rig->attack);
                }
            };
            // No temporary: a moved-from Harvest's destructor would stop the
            // attack (and fingerprint) before the trial even ran.
            return std::shared_ptr<Harvest>(new Harvest{rig, prints, seed, &n});
        };
        Harness h(opt);
        wl::WorkloadSpec spec = wl::randomaccess_spec();
        spec.units_per_thread_step /= 16;
        h.run_trials(SchedulerKind::kKittenPrimary, spec, seeds);
        return *prints;
    };

    const auto serial = run(1);
    const auto fanned = run(8);
    const auto again = run(8);
    ASSERT_EQ(serial.size(), seeds.size());
    for (const std::uint64_t seed : seeds) {
        // The attack fired and was contained in every trial...
        EXPECT_NE(serial.at(seed).find("action quarantined"),
                  std::string::npos)
            << serial.at(seed);
        // ...and the whole story is a pure function of the seed.
        EXPECT_EQ(serial.at(seed), fanned.at(seed)) << "seed " << seed;
        EXPECT_EQ(fanned.at(seed), again.at(seed)) << "seed " << seed;
    }
}

}  // namespace
}  // namespace hpcsec
