// Zero-alloc steady state (docs/PERFORMANCE.md): the dispatch hot loop and
// everything it reaches must not touch the global heap once a node is
// warmed up, and trial teardown must be an arena rewind rather than a
// unique_ptr graveyard. The counting global operator new below is the
// proof: it is armed only inside measurement windows, so gtest's own
// allocations never pollute the counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "core/harness.h"
#include "core/node.h"
#include "core/signature.h"
#include "sim/arena.h"
#include "sim/engine.h"
#include "sim/rng.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<bool> g_counting{false};

void count_alloc() {
    if (g_counting.load(std::memory_order_relaxed)) {
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    }
}

struct CountingWindow {
    CountingWindow() {
        g_allocs.store(0, std::memory_order_relaxed);
        g_counting.store(true, std::memory_order_relaxed);
    }
    ~CountingWindow() { g_counting.store(false, std::memory_order_relaxed); }
    [[nodiscard]] static std::uint64_t count() {
        return g_allocs.load(std::memory_order_relaxed);
    }
};

}  // namespace

// Replacement global operators pair malloc/aligned_alloc with free, which
// is well-formed for replaced operators; GCC's static pairing check does
// not model replacement and misfires here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
    count_alloc();
    if (void* p = std::malloc(n ? n : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
    count_alloc();
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                     (n + static_cast<std::size_t>(a) - 1) &
                                         ~(static_cast<std::size_t>(a) - 1))) {
        return p;
    }
    throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
    return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

#pragma GCC diagnostic pop

namespace hpcsec {
namespace {

// --- arena unit tests --------------------------------------------------------

TEST(Arena, MakeRunsDestructorsInReverseOrderOnReset) {
    sim::Arena arena;
    std::vector<int> order;
    struct Tracked {
        std::vector<int>* order;
        int id;
        ~Tracked() { order->push_back(id); }
    };
    for (int i = 0; i < 4; ++i) arena.make<Tracked>(&order, i);
    arena.reset();
    EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(Arena, TrivialTypesRegisterNoDestructorRecords) {
    sim::Arena arena;
    const std::size_t before = arena.bytes_used();
    arena.make<std::uint64_t>(7);
    // One u64 plus padding, but no DtorRec: under two pointer-triples.
    EXPECT_LT(arena.bytes_used() - before, 24u);
}

TEST(Arena, AllocationsAreAligned) {
    sim::Arena arena;
    arena.allocate(1, 1);  // knock the cursor off alignment
    struct alignas(16) Wide {
        char c;
    };
    auto* w = arena.make<Wide>();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % 16, 0u);
}

TEST(Arena, ResetKeepsChunksAndReusesThem) {
    sim::Arena arena;
    for (int i = 0; i < 1000; ++i) arena.make<std::uint64_t>(i);
    const std::size_t reserved = arena.bytes_reserved();
    const std::size_t chunks = arena.chunk_count();
    arena.reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
    for (int i = 0; i < 1000; ++i) arena.make<std::uint64_t>(i);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
    EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, ArenaAllocatorBacksStdVector) {
    sim::Arena arena;
    std::vector<int, sim::ArenaAllocator<int>> v{
        sim::ArenaAllocator<int>(arena)};
    for (int i = 0; i < 100; ++i) v.push_back(i);
    EXPECT_EQ(v[99], 99);
    EXPECT_GE(arena.bytes_used(), 100 * sizeof(int));
}

// --- timer wheel vs heap queue equivalence ----------------------------------

// The wheel's contract: dispatch order is identical to scheduling the same
// events on the heap queue, because both draw from one insertion counter
// and the engine merges by (when, priority, order).
TEST(TimerWheel, DispatchOrderMatchesHeapQueue) {
    sim::Rng rng(12345);
    struct Ev {
        sim::SimTime when;
        int priority;
        bool on_wheel;
    };
    std::vector<Ev> evs;
    for (int i = 0; i < 2000; ++i) {
        evs.push_back({static_cast<sim::SimTime>(rng.next_below(5000)),
                       static_cast<int>(rng.next_below(3)) * 10,
                       rng.next_below(2) == 0});
    }

    auto run = [&](bool use_wheel) {
        sim::Engine eng;
        std::vector<std::pair<sim::SimTime, int>> seq;
        for (std::size_t i = 0; i < evs.size(); ++i) {
            const Ev& e = evs[i];
            auto fn = [&seq, &eng, i] {
                seq.emplace_back(eng.now(), static_cast<int>(i));
            };
            if (use_wheel && e.on_wheel) {
                eng.at_timer(e.when, fn, e.priority);
            } else {
                eng.at(e.when, fn, e.priority);
            }
        }
        eng.run();
        return seq;
    };

    EXPECT_EQ(run(true), run(false));
}

TEST(TimerWheel, ReschedulingCadencesInterleaveLikeQueue) {
    // Periodic re-arm from inside the handler — the tick-storm shape.
    auto run = [&](bool use_wheel) {
        sim::Engine eng;
        std::vector<std::pair<sim::SimTime, int>> seq;
        std::vector<std::function<void()>> ticks(8);
        for (int core = 0; core < 8; ++core) {
            const sim::Cycles period = 100 + 10 * (core % 3);
            ticks[core] = [&eng, &seq, &ticks, core, period, use_wheel] {
                seq.emplace_back(eng.now(), core);
                if (eng.now() >= 20'000) return;
                if (use_wheel) {
                    eng.at_timer(eng.now() + period, ticks[core]);
                } else {
                    eng.at(eng.now() + period, ticks[core], sim::kPrioInterrupt);
                }
            };
            if (use_wheel) {
                eng.at_timer(100, ticks[core]);
            } else {
                eng.at(100, ticks[core], sim::kPrioInterrupt);
            }
        }
        eng.run();
        return std::make_pair(seq, eng.timer_batched_pops());
    };

    const auto [wheel_seq, wheel_pops] = run(true);
    const auto [queue_seq, queue_pops] = run(false);
    EXPECT_EQ(wheel_seq, queue_seq);
    // Same-cadence cores collide in wheel slots; the whole point is that
    // those collision groups dispatch as pre-sorted batches.
    EXPECT_GT(wheel_pops, 0u);
    EXPECT_EQ(queue_pops, 0u);
}

TEST(TimerWheel, CancelPreventsDispatchAndSurvivesReuse) {
    sim::Engine eng;
    int fired = 0;
    const sim::EventId a = eng.at_timer(100, [&] { ++fired; });
    const sim::EventId b = eng.at_timer(200, [&] { ++fired; });
    eng.at_timer(300, [&] { ++fired; });
    EXPECT_TRUE(eng.cancel(a));
    EXPECT_FALSE(eng.cancel(a));  // already cancelled
    eng.run();
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eng.cancel(b));  // already fired
}

// --- zero-alloc steady state -------------------------------------------------

struct AllocFixture : ::testing::Test {
    core::ImageSigner signer{std::vector<std::uint8_t>(32, 77)};

    /// A 4-VM node: primary + secure compute + login super-secondary,
    /// plus one dynamically launched partition. Kernel and guest tick at
    /// 250 Hz so a 4 s window is a 1000-tick storm per kernel.
    core::NodeConfig four_vm_config() {
        core::NodeConfig cfg = core::Harness::default_config(
            core::SchedulerKind::kKittenPrimary, 17);
        cfg.with_super_secondary = true;
        cfg.kitten.tick_hz = 250.0;
        cfg.guest.tick_hz = 250.0;
        cfg.trusted_keys = {signer.public_key()};
        return cfg;
    }

    void add_fourth_vm(core::Node& node) {
        node.verifier().enroll(signer.public_key());
        auto img = signer.sign("steady-job", core::Node::make_image("steady-job"));
        ASSERT_TRUE(img.has_value());
        node.launch_dynamic_vm(*img, 64ull << 20, 2);
    }
};

TEST_F(AllocFixture, SteadyStateWindowMakesZeroHeapAllocations) {
    core::Node node(four_vm_config());
    node.boot();
    add_fourth_vm(node);
    ASSERT_EQ(node.spm()->vm_count(), 4);

    node.run_for(1.0);  // warm every growable container past its high-water mark
    const std::uint64_t events_before = node.platform().engine().events_executed();

    std::uint64_t allocs = 0;
    {
        CountingWindow window;
        node.run_for(4.0);  // 1000 ticks at 250 Hz, per kernel
        allocs = CountingWindow::count();
    }

    const std::uint64_t events =
        node.platform().engine().events_executed() - events_before;
    EXPECT_GE(events, 1000u) << "window too quiet to prove anything";
    EXPECT_EQ(allocs, 0u) << "steady-state dispatch touched the global heap";
    // Kernel tick deadlines land far enough out that the wheel serves them
    // from high levels (no same-slot batching at this density); the batch
    // path itself is proven by the TimerWheel unit tests above.
}

TEST_F(AllocFixture, TeardownFreesViaArenaResetAcrossTrials) {
    sim::Arena arena;
    std::vector<std::size_t> per_trial_bytes;
    std::size_t reserved_after_first = 0;

    for (int trial = 0; trial < 3; ++trial) {
        core::NodeConfig cfg = core::Harness::default_config(
            core::SchedulerKind::kKittenPrimary, 100 + trial);
        cfg.platform.arena = &arena;
        {
            core::Node node(std::move(cfg));
            node.boot();
            node.run_for(0.05);
        }
        // The Node is gone but its cores/VMs/VCPUs/grants still sit in the
        // arena — teardown deferred to the rewind.
        EXPECT_GT(arena.bytes_used(), 0u);
        per_trial_bytes.push_back(arena.bytes_used());
        arena.reset();
        EXPECT_EQ(arena.bytes_used(), 0u);
        if (trial == 0) {
            reserved_after_first = arena.bytes_reserved();
        } else {
            // Steady state: later trials run entirely inside the chunks the
            // first trial warmed — the reset kept them.
            EXPECT_EQ(arena.bytes_reserved(), reserved_after_first);
        }
    }
    // Identical node shape => identical arena footprint, every trial.
    EXPECT_EQ(per_trial_bytes[1], per_trial_bytes[0]);
    EXPECT_EQ(per_trial_bytes[2], per_trial_bytes[0]);
}

}  // namespace
}  // namespace hpcsec
